// Fuzz harness for the HyperBench hypergraph parser. Any byte string
// must either parse or be rejected with an error — never crash, hang,
// or trip a sanitizer. Accepted inputs must round-trip: writing the
// parsed hypergraph and re-parsing it has to reproduce the same shape.

#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>

#include "hypergraph/hypergraph.h"
#include "hypergraph/parser.h"
#include "util/check.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (size_t{1} << 20)) return 0;  // parsing is linear; cap the cost
  std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  auto h = hypertree::ReadHypergraphFromString(text, &error);
  if (!h.has_value()) return 0;
  // Round trip: the writer's output must be re-readable and identical in
  // shape (names are interned in first-appearance order on both sides).
  std::ostringstream out;
  hypertree::WriteHypergraph(*h, out);
  std::string err2;
  auto h2 = hypertree::ReadHypergraphFromString(out.str(), &err2);
  HT_CHECK(h2.has_value()) << "writer output must re-parse: " << err2;
  HT_CHECK_EQ(h->NumVertices(), h2->NumVertices());
  HT_CHECK_EQ(h->NumEdges(), h2->NumEdges());
  for (int e = 0; e < h->NumEdges(); ++e) {
    HT_CHECK(h->EdgeVertices(e) == h2->EdgeVertices(e));
  }
  return 0;
}
