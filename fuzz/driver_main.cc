// Standalone driver for the fuzz harnesses, used when the toolchain has
// no libFuzzer (gcc builds). Replays every corpus file it is given and
// optionally runs a bounded, fully deterministic mutation loop over the
// corpus — enough to smoke-test the harness body under ASan in CI and
// locally. With clang, the real libFuzzer driver is linked instead and
// this file is not compiled.
//
//   fuzz_x FILE_OR_DIR...                 replay inputs
//   fuzz_x --mutate=N --seed=S DIR...     + N deterministic mutations

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<std::string> CollectInputs(const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const auto& p : paths) {
    std::filesystem::path fp(p);
    if (std::filesystem::is_directory(fp)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(fp)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else if (std::filesystem::is_regular_file(fp)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "driver: no such input: %s\n", p.c_str());
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());  // replay order is deterministic
  return files;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

// One random edit: flip a byte, insert, erase, or truncate. Operating on
// a copy of a corpus input keeps mutants structurally close to valid.
void Mutate(std::vector<uint8_t>* buf, hypertree::Rng* rng) {
  if (buf->empty()) {
    buf->push_back(static_cast<uint8_t>(rng->UniformInt(256)));
    return;
  }
  int n = static_cast<int>(buf->size());
  switch (rng->UniformInt(4)) {
    case 0:
      (*buf)[static_cast<size_t>(rng->UniformInt(n))] =
          static_cast<uint8_t>(rng->UniformInt(256));
      break;
    case 1:
      buf->insert(buf->begin() + rng->UniformInt(n + 1),
                  static_cast<uint8_t>(rng->UniformInt(256)));
      break;
    case 2:
      buf->erase(buf->begin() + rng->UniformInt(n));
      break;
    default:
      buf->resize(static_cast<size_t>(rng->UniformInt(n + 1)));
      break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  long mutate = 0;
  uint64_t seed = 1;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--mutate=", 9) == 0) {
      mutate = std::strtol(a + 9, nullptr, 10);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--", 2) == 0) {
      std::fprintf(stderr, "driver: unknown flag %s\n", a);
      return 2;
    } else {
      paths.emplace_back(a);
    }
  }
  std::vector<std::string> files = CollectInputs(paths);
  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& f : files) {
    corpus.push_back(ReadAll(f));
    LLVMFuzzerTestOneInput(corpus.back().data(), corpus.back().size());
  }
  std::fprintf(stderr, "driver: replayed %zu corpus input(s)\n",
               corpus.size());
  if (mutate > 0 && !corpus.empty()) {
    hypertree::Rng rng(seed);
    for (long round = 0; round < mutate; ++round) {
      std::vector<uint8_t> buf =
          corpus[static_cast<size_t>(rng.UniformInt(
              static_cast<int>(corpus.size())))];
      int edits = 1 + rng.UniformInt(4);
      for (int e = 0; e < edits; ++e) Mutate(&buf, &rng);
      LLVMFuzzerTestOneInput(buf.data(), buf.size());
    }
    std::fprintf(stderr, "driver: ran %ld deterministic mutation(s)\n",
                 mutate);
  }
  return 0;
}
