// Fuzz harness for the serve wire protocol + JSON layer. The fuzz input
// is fed through a pipe as raw frame bytes: ReadFrame must accept,
// report clean EOF, or fail with an error — never crash or allocate
// unbounded memory (hostile length prefixes are capped by max_frame).
// Bodies that frame successfully are handed to the JSON parser, and
// well-framed inputs must round-trip through WriteFrame.

#include <unistd.h>

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/check.h"
#include "util/json.h"

namespace {

// Keep every write below the kernel pipe buffer (64 KiB on Linux) so the
// single-threaded write-then-read never blocks.
constexpr size_t kMaxInput = 60000;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInput) return 0;
  int fds[2];
  if (pipe(fds) != 0) return 0;
  {
    size_t off = 0;
    while (off < size) {
      ssize_t n = write(fds[1], data + off, size - off);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
  }
  close(fds[1]);
  std::string body, error;
  // A small max_frame exercises the oversized-prefix rejection path
  // without letting the fuzzer allocate gigabytes.
  int rc = hypertree::serve::ReadFrame(fds[0], &body, &error,
                                       /*max_frame=*/kMaxInput);
  if (rc > 0) {
    std::string jerr;
    auto doc = hypertree::Json::Parse(body, &jerr);
    (void)doc;
    // Round trip: a body that framed must frame again and read back
    // byte-identically.
    int fds2[2];
    if (pipe(fds2) == 0) {
      std::string werr;
      HT_CHECK(hypertree::serve::WriteFrame(fds2[1], body, &werr)) << werr;
      close(fds2[1]);
      std::string body2, rerr;
      HT_CHECK_EQ(hypertree::serve::ReadFrame(fds2[0], &body2, &rerr,
                                              hypertree::serve::kMaxFrameBytes),
                  1)
          << rerr;
      HT_CHECK(body2 == body);
      close(fds2[0]);
    }
  }
  close(fds[0]);
  return 0;
}
