// Fuzz harness for the GHD interchange-format reader. Arbitrary bytes
// must parse or fail cleanly; accepted decompositions are poked through
// their accessors so malformed-but-accepted structures (out-of-range
// ids, missing nodes) surface as contract violations or sanitizer
// findings instead of lurking until a consumer trips on them.

#include <cstdint>
#include <string>

#include "ghd/ghd.h"
#include "io/ghd_format.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (size_t{1} << 20)) return 0;
  std::string text(reinterpret_cast<const char*>(data), size);
  std::string error;
  auto ghd = hypertree::ReadGhdFromString(text, &error);
  if (!ghd.has_value()) return 0;
  // Walk everything the parser produced.
  volatile long sink = 0;
  const auto& td = ghd->td();
  for (int p = 0; p < td.NumNodes(); ++p) {
    sink += td.Bag(p).Count();
    for (int e : ghd->Lambda(p)) sink += e;
  }
  for (auto [a, b] : td.TreeEdges()) sink += a + b;
  sink += ghd->Width();
  return 0;
}
