// SAT through the structural lens: build a CNF formula whose constraint
// hypergraph is a long chain of overlapping clauses (bounded ghw), compute
// its decomposition, and solve it via the decomposition — demonstrating
// tractability from bounded width where the clause count alone looks
// daunting.

#include <cstdio>
#include <vector>

#include "csp/backtracking.h"
#include "csp/decomposition_solving.h"
#include "csp/generators.h"
#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/acyclicity.h"

using namespace hypertree;

int main() {
  // Chain CNF: clauses (x_i v !x_{i+1} v x_{i+2}) plus closing clauses
  // that make the instance cyclic but still width-bounded.
  const int kVars = 40;
  std::vector<std::vector<int>> clauses;
  for (int i = 1; i + 2 <= kVars; ++i) {
    clauses.push_back({i, -(i + 1), i + 2});
  }
  for (int i = 1; i + 3 <= kVars; i += 4) {
    clauses.push_back({-(i), i + 3});  // local back edges
  }
  Csp csp = SatCsp(kVars, clauses);
  Hypergraph h = csp.ConstraintHypergraph();
  std::printf("CNF: %d variables, %zu clauses\n", kVars, clauses.size());
  std::printf("constraint hypergraph: %d vertices, %d edges, acyclic=%s\n",
              h.NumVertices(), h.NumEdges(),
              IsAlphaAcyclic(h) ? "yes" : "no");

  GhwSearchOptions opts;
  opts.time_limit_seconds = 5.0;
  WidthResult ghw = BranchAndBoundGhw(h, opts);
  std::printf("ghw: %d%s  (lb %d)\n", ghw.upper_bound,
              ghw.exact ? "" : " (ub)", ghw.lower_bound);

  GhwEvaluator eval(h);
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(ghw.best_ordering, CoverMode::kExact);
  DecompositionSolveStats stats;
  auto solution = SolveViaGhd(csp, ghd, &stats);
  std::printf("decomposition solve: %s (%ld bag tuples, max bag %d)\n",
              solution.has_value() ? "SAT" : "UNSAT", stats.bag_tuples,
              stats.max_bag_tuples);

  BacktrackStats bt;
  auto direct = BacktrackingSolve(csp, 0, &bt);
  std::printf("backtracking      : %s (%ld nodes)\n",
              direct.has_value() ? "SAT" : "UNSAT", bt.nodes);

  if (solution.has_value()) {
    std::printf("assignment: ");
    for (int v = 0; v < kVars; ++v) std::printf("%d", (*solution)[v]);
    std::printf("\n");
  }
  return 0;
}
