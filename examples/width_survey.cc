// Width survey: sweep the benchmark hypergraph families and print the
// whole width hierarchy per instance — the "questions and answers" table:
// is it acyclic? what are fhw / ghw / hw / tw? which method answered?

#include <algorithm>
#include <cstdio>
#include <vector>

#include "fhw/fractional_hypertree.h"
#include "ga/ga_ghw.h"
#include "ghd/branch_and_bound.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/generators.h"
#include "td/branch_and_bound.h"

using namespace hypertree;

int main() {
  std::vector<Hypergraph> instances;
  instances.push_back(RandomAcyclicHypergraph(20, 4, 1));
  instances.push_back(CycleHypergraph(12, 2));
  instances.push_back(CycleHypergraph(12, 3));
  instances.push_back(CliqueHypergraph(8));
  instances.push_back(Grid2DHypergraph(4));
  instances.push_back(AdderHypergraph(4));
  instances.push_back(BridgeHypergraph(4));
  instances.push_back(CircuitHypergraph(6, 24, 7));

  std::printf("%-16s %5s %5s %8s %6s %6s %6s %6s\n", "instance", "V", "E",
              "acyclic", "fhw<=", "ghw", "hw", "tw");
  for (const Hypergraph& h : instances) {
    SearchOptions budget;
    budget.time_limit_seconds = 5.0;
    GhwSearchOptions gbudget;
    gbudget.time_limit_seconds = 5.0;

    bool acyclic = IsAlphaAcyclic(h);
    WidthResult ghw = BranchAndBoundGhw(h, gbudget);
    double fhw = std::min(FhwUpperBound(h, 3, 42),
                          FractionalWidthOfOrdering(h, ghw.best_ordering));
    WidthResult hw = HypertreeWidth(h, budget);
    WidthResult tw = BranchAndBoundTreewidth(h.PrimalGraph(), budget);

    char ghw_s[32], hw_s[32], tw_s[32];
    std::snprintf(ghw_s, sizeof(ghw_s), "%d%s", ghw.upper_bound,
                  ghw.exact ? "" : "*");
    std::snprintf(hw_s, sizeof(hw_s), "%d%s", hw.upper_bound,
                  hw.exact ? "" : "*");
    std::snprintf(tw_s, sizeof(tw_s), "%d%s", tw.upper_bound,
                  tw.exact ? "" : "*");
    std::printf("%-16s %5d %5d %8s %6.2f %6s %6s %6s\n", h.name().c_str(),
                h.NumVertices(), h.NumEdges(), acyclic ? "yes" : "no", fhw,
                ghw_s, hw_s, tw_s);
  }
  std::printf("\n(* = upper bound only; budget 5s per measure)\n");
  return 0;
}
