// Quickstart: load a hypergraph, compute width measures, build a verified
// generalized hypertree decomposition, and print it.
//
//   ./examples/quickstart [instance.hg]
//
// Without an argument a built-in instance (thesis Example 5) is used.

#include <cstdio>
#include <string>

#include "bounds/ghw_lower_bounds.h"
#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/parser.h"
#include "td/branch_and_bound.h"

using namespace hypertree;

int main(int argc, char** argv) {
  std::optional<Hypergraph> h;
  if (argc > 1) {
    std::string error;
    h = ReadHypergraphFile(argv[1], &error);
    if (!h.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  } else {
    h = ReadHypergraphFromString(
        "c1(x1,x2,x3), c2(x1,x5,x6), c3(x3,x4,x5).");
    h->set_name("example5");
  }

  std::printf("instance   : %s (%d vertices, %d hyperedges)\n",
              h->name().c_str(), h->NumVertices(), h->NumEdges());
  std::printf("acyclic    : %s\n", IsAlphaAcyclic(*h) ? "yes" : "no");

  WidthResult tw = BranchAndBoundTreewidth(h->PrimalGraph());
  std::printf("treewidth  : %d%s\n", tw.upper_bound, tw.exact ? "" : " (ub)");

  WidthResult ghw = BranchAndBoundGhw(*h);
  std::printf("ghw        : %d%s\n", ghw.upper_bound,
              ghw.exact ? "" : " (ub)");

  WidthResult hw = HypertreeWidth(*h);
  std::printf("hw         : %d%s\n", hw.upper_bound, hw.exact ? "" : " (ub)");

  // Materialize the witness GHD, contract subsumed bags, and print it.
  GhwEvaluator eval(*h);
  GeneralizedHypertreeDecomposition ghd = SimplifyGhd(
      *h, eval.BuildGhd(ghw.best_ordering, CoverMode::kExact));
  std::string why;
  if (!ghd.IsValidFor(*h, &why)) {
    std::fprintf(stderr, "internal error: invalid GHD: %s\n", why.c_str());
    return 1;
  }
  std::printf("\ngeneralized hypertree decomposition (width %d):\n",
              ghd.Width());
  for (int p = 0; p < ghd.NumNodes(); ++p) {
    std::string chi, lambda;
    for (int v : ghd.td().Bag(p).ToVector()) {
      chi += (chi.empty() ? "" : ", ") + h->VertexName(v);
    }
    for (int e : ghd.Lambda(p)) {
      lambda += (lambda.empty() ? "" : ", ") + h->EdgeName(e);
    }
    std::printf("  node %-2d  chi = {%s}  lambda = {%s}\n", p, chi.c_str(),
                lambda.c_str());
  }
  std::printf("\ntree edges: ");
  for (auto [a, b] : ghd.td().TreeEdges()) std::printf("(%d,%d) ", a, b);
  std::printf("\n");
  return 0;
}
