// Query answering: the paper's home setting. Build a small relational
// database, pose acyclic and cyclic conjunctive queries, and answer them
// through generalized hypertree decompositions — printing the widths that
// explain why each query is tractable.

#include <cstdio>
#include <string>
#include <vector>

#include "cq/answer.h"
#include "cq/database.h"
#include "cq/query.h"
#include "hypergraph/acyclicity.h"
#include "util/rng.h"

using namespace hypertree;

int main() {
  // A toy "follows / posts / likes" social database.
  Database db;
  Rng rng(11);
  std::vector<std::vector<int>> follows, posts, likes;
  for (int i = 0; i < 60; ++i) {
    follows.push_back({rng.UniformInt(12), rng.UniformInt(12)});
    posts.push_back({rng.UniformInt(12), rng.UniformInt(30)});
    likes.push_back({rng.UniformInt(12), rng.UniformInt(30)});
  }
  db.AddRows("follows", std::move(follows));
  db.AddRows("posts", std::move(posts));
  db.AddRows("likes", std::move(likes));

  const char* queries[] = {
      // Acyclic chain: posts by people U follows that U liked.
      "ans(U, P) :- follows(U, V), posts(V, P), likes(U, P).",
      // Cyclic triangle: mutual-follow triangles.
      "ans(A, B, C) :- follows(A, B), follows(B, C), follows(C, A).",
      // Boolean: does anyone like their own post?
      "ans() :- posts(U, P), likes(U, P).",
  };
  for (const char* text : queries) {
    std::printf("query: %s\n", text);
    std::string error;
    auto q = ParseConjunctiveQuery(text, &error);
    if (!q.has_value()) {
      std::fprintf(stderr, "  parse error: %s\n", error.c_str());
      return 1;
    }
    Hypergraph h = q->QueryHypergraph();
    std::printf("  structure: %d vars, %d atoms, %s\n", h.NumVertices(),
                h.NumEdges(),
                IsAlphaAcyclic(h) ? "acyclic (ghw 1)" : "cyclic");
    AnswerStats stats;
    auto answer = AnswerQuery(*q, db, &error, &stats);
    if (!answer.has_value()) {
      std::fprintf(stderr, "  evaluation error: %s\n", error.c_str());
      return 1;
    }
    std::printf("  decomposition width: %d, intermediate tuples: %ld\n",
                stats.decomposition_width, stats.intermediate_tuples);
    if (q->head.empty()) {
      std::printf("  answer: %s\n", answer->Empty() ? "false" : "true");
    } else {
      std::printf("  answers: %d tuples", answer->Size());
      int shown = 0;
      for (const auto& t : answer->ToTuples()) {
        if (shown++ == 5) break;
        std::printf(" (");
        for (size_t i = 0; i < t.size(); ++i)
          std::printf("%s%d", i ? "," : "", t[i]);
        std::printf(")");
      }
      std::printf("%s\n", answer->Size() > 5 ? " ..." : "");
    }
    std::printf("\n");
  }
  return 0;
}
