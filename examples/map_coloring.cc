// Map coloring via decompositions: the paper's motivating CSP (Example 1,
// 3-coloring Australia) solved three ways — plain backtracking, Yannakakis
// on a tree decomposition, and Yannakakis on a generalized hypertree
// decomposition — with the work counters printed for comparison.

#include <cstdio>

#include "csp/backtracking.h"
#include "csp/decomposition_solving.h"
#include "csp/generators.h"
#include "ghd/ghw_from_ordering.h"
#include "ordering/heuristics.h"
#include "td/tree_decomposition.h"
#include "util/rng.h"

using namespace hypertree;

namespace {
const char* kRegion[] = {"WA", "NT", "SA", "Q", "NSW", "V", "TAS"};
const char* kColor[] = {"red", "green", "blue"};
}  // namespace

int main() {
  Csp csp = AustraliaMapColoring();
  std::printf("3-coloring the map of Australia (%d regions, %d borders)\n\n",
              csp.NumVariables(), csp.NumConstraints());

  // 1. Structure-blind baseline.
  BacktrackStats stats;
  auto direct = BacktrackingSolve(csp, 0, &stats);
  std::printf("backtracking      : %s (%ld nodes)\n",
              direct.has_value() ? "solution" : "unsat", stats.nodes);

  // 2. Tree decomposition route.
  Hypergraph h = csp.ConstraintHypergraph();
  Graph primal = h.PrimalGraph();
  Rng rng(1);
  EliminationOrdering sigma = MinFillOrdering(primal, &rng);
  TreeDecomposition td = TreeDecompositionFromOrdering(primal, sigma);
  DecompositionSolveStats td_stats;
  auto via_td = SolveViaTreeDecomposition(csp, td, &td_stats);
  std::printf("tree decomposition: %s (width %d, %ld bag tuples)\n",
              via_td.has_value() ? "solution" : "unsat", td.Width(),
              td_stats.bag_tuples);

  // 3. GHD route.
  GhwEvaluator eval(h);
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(sigma, CoverMode::kExact);
  DecompositionSolveStats ghd_stats;
  auto via_ghd = SolveViaGhd(csp, ghd, &ghd_stats);
  std::printf("ghd               : %s (width %d, %ld bag tuples)\n\n",
              via_ghd.has_value() ? "solution" : "unsat", ghd.Width(),
              ghd_stats.bag_tuples);

  if (via_td.has_value()) {
    std::printf("one valid coloring:\n");
    for (int v = 0; v < csp.NumVariables(); ++v) {
      std::printf("  %-4s -> %s\n", kRegion[v], kColor[(*via_td)[v]]);
    }
  }
  return 0;
}
