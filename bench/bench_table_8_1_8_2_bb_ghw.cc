// Reproduces Tables 8.1/8.2 (BB-ghw on benchmark hypergraphs).
// Reproduced shape: exact ghw on the small/structured instances, improved
// upper bounds with proven lower bounds on the hard ones. A greedy-cover
// ablation column shows why exact bag covers matter (DESIGN.md §4).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bounds/ghw_lower_bounds.h"
#include "ghd/branch_and_bound.h"
#include "hypergraph/generators.h"
#include "portfolio/portfolio.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_8_1_8_2_bb_ghw");
  std::vector<Hypergraph> instances = {
      RandomAcyclicHypergraph(25, 4, 2),
      CycleHypergraph(12, 2),
      CliqueHypergraph(8),
      AdderHypergraph(6),
      BridgeHypergraph(6),
      Grid2DHypergraph(4),
      CircuitHypergraph(6, 30, 5),
      RandomHypergraph(20, 22, 2, 4, 8),
  };
  bench::Header(
      "Tables 8.1/8.2: BB-ghw on benchmark hypergraphs",
      "hypergraph            V     H    lb  bb-ghw   greedy    nodes  time[s]"
      "  pfolio  winner");
  for (const Hypergraph& h : instances) {
    Rng rng(2);
    int lb = GhwLowerBound(h, &rng);
    GhwSearchOptions opts;
    opts.time_limit_seconds = 2.0 * scale;
    opts.max_nodes = static_cast<long>(100000 * scale);
    WidthResult exact = BranchAndBoundGhw(h, opts);
    GhwSearchOptions greedy = opts;
    greedy.cover_mode = CoverMode::kGreedy;
    WidthResult ablation = BranchAndBoundGhw(h, greedy);
    PortfolioOptions popts;
    popts.time_limit_seconds = 2.0 * scale;
    popts.max_nodes = static_cast<long>(100000 * scale);
    popts.seed = 2;
    PortfolioResult pf = PortfolioGhw(h, popts);
    report.Record(h.name(), "bb_ghw", exact,
                  Json::Object().Set("static_lb", lb));
    report.Record(h.name(), "bb_ghw_greedy_cover", ablation);
    report.Record(h.name(), "portfolio_ghw", pf.result,
                  Json::Object()
                      .Set("static_lb", lb)
                      .Set("portfolio_rule", Json(pf.plan.rule))
                      .Set("portfolio_winner", Json(pf.winner_name)));
    std::printf("%-20s %4d %5d %5d %7s %8d %8ld %8.2f %7s  %s\n",
                h.name().c_str(), h.NumVertices(), h.NumEdges(), lb,
                bench::Exactness(exact.upper_bound, exact.exact).c_str(),
                ablation.upper_bound, exact.nodes, exact.seconds,
                bench::Exactness(pf.result.upper_bound, pf.result.exact)
                    .c_str(),
                pf.winner_name.c_str());
  }
  std::printf("\n(expected: exact ghw on structured instances; the greedy "
              "ablation is never below bb-ghw; the portfolio column agrees "
              "with bb-ghw everywhere bb-ghw is exact)\n");
  return 0;
}
