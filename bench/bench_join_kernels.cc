// Microbenchmarks for the flat-storage relation kernel: hash join,
// semijoin (copying and in-place), projection and indexed membership over
// generated relations of varying arity, cardinality and join selectivity.
//
// Selectivity is steered through the value domain: keys drawn from a
// domain of size `d` give an expected `rows/d` matches per probe, so
// Arg pairs (rows, domain) sweep from sparse (few matches) to dense
// (many matches) joins.

#include <benchmark/benchmark.h>

#include <vector>

#include "csp/relation.h"
#include "util/rng.h"

namespace hypertree {
namespace {

// Relation over `schema` with `rows` random tuples, values in [0, domain).
Relation MakeRelation(std::vector<int> schema, int rows, int domain,
                      uint64_t seed) {
  Rng rng(seed);
  Relation r(std::move(schema));
  r.Reserve(rows);
  std::vector<int> t(r.Arity());
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < r.Arity(); ++j) t[j] = rng.UniformInt(domain);
    r.AddTuple(t);
  }
  return r;
}

// Binary join on one shared variable: r(0,1) |x| s(1,2).
void BM_JoinBinary(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int domain = static_cast<int>(state.range(1));
  Relation r = MakeRelation({0, 1}, rows, domain, 1);
  Relation s = MakeRelation({1, 2}, rows, domain, 2);
  long out_rows = 0;
  for (auto _ : state) {
    Relation j = r.Join(s);
    out_rows += j.Size();
    benchmark::DoNotOptimize(j.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
  state.counters["out_rows"] =
      benchmark::Counter(static_cast<double>(out_rows),
                         benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_JoinBinary)
    ->Args({1024, 64})     // dense: ~16 matches per probe
    ->Args({1024, 4096})   // sparse: <1 match per probe
    ->Args({16384, 256})
    ->Args({16384, 65536});

// Wider keys: join on two shared variables, arity-4 relations.
void BM_JoinWideKey(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int domain = static_cast<int>(state.range(1));
  Relation r = MakeRelation({0, 1, 2, 3}, rows, domain, 3);
  Relation s = MakeRelation({2, 3, 4, 5}, rows, domain, 4);
  for (auto _ : state) {
    Relation j = r.Join(s);
    benchmark::DoNotOptimize(j.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
}
BENCHMARK(BM_JoinWideKey)->Args({4096, 16})->Args({4096, 512});

void BM_Semijoin(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int domain = static_cast<int>(state.range(1));
  Relation r = MakeRelation({0, 1}, rows, domain, 5);
  Relation s = MakeRelation({1, 2}, rows / 4, domain, 6);
  for (auto _ : state) {
    Relation sj = r.Semijoin(s);
    benchmark::DoNotOptimize(sj.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
}
BENCHMARK(BM_Semijoin)->Args({16384, 64})->Args({16384, 4096});

// In-place variant: copy cost included so the numbers compare directly
// with BM_Semijoin (which also materializes a fresh relation per iter).
void BM_SemijoinInPlace(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int domain = static_cast<int>(state.range(1));
  Relation r = MakeRelation({0, 1}, rows, domain, 5);
  Relation s = MakeRelation({1, 2}, rows / 4, domain, 6);
  for (auto _ : state) {
    Relation work = r;
    work.SemijoinInPlace(s);
    benchmark::DoNotOptimize(work.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
}
BENCHMARK(BM_SemijoinInPlace)->Args({16384, 64})->Args({16384, 4096});

void BM_Project(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int domain = static_cast<int>(state.range(1));
  Relation r = MakeRelation({0, 1, 2, 3}, rows, domain, 7);
  std::vector<int> onto = {2, 0};
  for (auto _ : state) {
    Relation p = r.Project(onto);
    benchmark::DoNotOptimize(p.data().data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(rows));
}
BENCHMARK(BM_Project)->Args({16384, 8})->Args({16384, 1024});

// Indexed membership: the Contains hot path of bag solving and
// backtracking (was a linear scan before the per-relation index).
void BM_Contains(benchmark::State& state) {
  int rows = static_cast<int>(state.range(0));
  int domain = static_cast<int>(state.range(1));
  Relation r = MakeRelation({0, 1, 2}, rows, domain, 8);
  Rng rng(9);
  std::vector<int> probe(3);
  for (int j = 0; j < 3; ++j) probe[j] = rng.UniformInt(domain);
  long hits = 0;
  for (auto _ : state) {
    probe[0] = (probe[0] + 1) % domain;
    hits += r.ContainsRow(probe.data()) ? 1 : 0;
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Contains)->Args({1024, 16})->Args({65536, 64});

}  // namespace
}  // namespace hypertree

BENCHMARK_MAIN();
