// Shared helpers for the table-reproduction benchmark binaries.
//
// Every binary prints the rows of the paper table it reproduces and
// terminates in seconds at the default scale. Set HYPERTREE_BENCH_SCALE
// (e.g. 10) to multiply the time budgets / iteration counts toward the
// paper's original 1h-per-instance scale.
//
// When HYPERTREE_BENCH_JSON names a file, every binary additionally
// appends one machine-readable record per (instance, algorithm) to it as
// NDJSON (one JSON object per line; see docs/BENCHMARKS.md for the
// schema). scripts/run_benchmarks.sh merges those records into BENCH.json
// and scripts/check_bench_regression.py diffs two such files.

#ifndef HYPERTREE_BENCH_BENCH_UTIL_H_
#define HYPERTREE_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "kernels/kernels.h"
#include "td/exact.h"
#include "util/json.h"
#include "util/metrics.h"

namespace hypertree::bench {

/// Parses a HYPERTREE_BENCH_SCALE-style budget multiplier. Unset/empty
/// means 1.0; anything non-numeric, non-positive, or non-finite is
/// rejected with a stderr warning (instead of the old silent atof
/// fallback) and also yields 1.0.
inline double ParseScale(const char* s) {
  if (s == nullptr || *s == '\0') return 1.0;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  while (end != nullptr && (*end == ' ' || *end == '\t')) ++end;
  bool parsed = end != nullptr && end != s && *end == '\0' && errno != ERANGE;
  if (!parsed || !std::isfinite(v) || v <= 0) {
    std::fprintf(stderr,
                 "warning: ignoring invalid HYPERTREE_BENCH_SCALE=\"%s\" "
                 "(expected a positive number); using 1.0\n",
                 s);
    return 1.0;
  }
  return v;
}

/// Budget multiplier from HYPERTREE_BENCH_SCALE (default 1.0).
inline double Scale() { return ParseScale(std::getenv("HYPERTREE_BENCH_SCALE")); }

/// Prints a table header followed by a separator line.
inline void Header(const std::string& title, const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
  std::printf("%s\n", std::string(columns.size(), '-').c_str());
}

/// "12" or "12*" for inexact values.
inline std::string Exactness(int value, bool exact) {
  return std::to_string(value) + (exact ? "" : "*");
}

/// Appends machine-readable benchmark records to the file named by
/// HYPERTREE_BENCH_JSON (no-op when the variable is unset). Records are
/// NDJSON with a fixed field order, so merged reports diff cleanly:
///
///   {"bench":..., "instance":..., "algorithm":..., "width":W,
///    "exact":B, "lower_bound":LB, "nodes":N, "wall_ms":MS,
///    "deterministic":B, "counters":{...}, "kernels":{...}}
///
/// `kernels` reports the active kernel backend and the per-record growth
/// of the kernels.* metrics counters (rows/calls per backend, dispatch
/// decisions).
///
/// `deterministic` marks records whose width/nodes are reproducible
/// run-to-run (seeded, iteration-bounded work); interrupted searches
/// abort at timing-dependent points and must set it false so the
/// regression checker only compares their wall time.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench) : bench_(std::move(bench)) {
    const char* path = std::getenv("HYPERTREE_BENCH_JSON");
    if (path != nullptr && *path != '\0') path_ = path;
  }

  bool enabled() const { return !path_.empty(); }

  /// Appends one record. `counters` carries bench-specific extras (cache
  /// stats, solver node counts, materialized tuples, ...). `throughput`
  /// optionally carries derived rates (rows_per_s, queries_per_s) — the
  /// regression checker reports their drift as informational only, never
  /// as a failure (wall_ms stays the gating time field).
  void Record(const std::string& instance, const std::string& algorithm,
              int width, bool exact, long nodes, double wall_ms,
              bool deterministic = true, int lower_bound = -1,
              Json counters = Json::Object(), Json throughput = Json()) {
    if (!enabled()) return;
    Json rec = Json::Object();
    rec.Set("bench", bench_)
        .Set("instance", instance)
        .Set("algorithm", algorithm)
        .Set("width", width)
        .Set("exact", exact)
        .Set("lower_bound", lower_bound)
        .Set("nodes", nodes)
        .Set("wall_ms", wall_ms)
        .Set("deterministic", deterministic)
        .Set("counters", counters.is_object() ? std::move(counters)
                                              : Json::Object());
    if (throughput.is_object()) rec.Set("throughput", std::move(throughput));
    AttachKernelCounters(&rec);
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot append bench record to %s\n",
                   path_.c_str());
      return;
    }
    std::fprintf(f, "%s\n", rec.Dump().c_str());
    std::fclose(f);
  }

  /// WidthResult convenience: fills width/exact/lb/nodes/wall and the
  /// cache counters. Interrupted results (exact == false) are marked
  /// non-deterministic — where the budget cut the search depends on wall
  /// time, so node counts need not reproduce.
  void Record(const std::string& instance, const std::string& algorithm,
              const WidthResult& res, Json extra_counters = Json::Object()) {
    Json counters = Json::Object();
    counters.Set("cache_hits", res.cache_stats.hits)
        .Set("cache_misses", res.cache_stats.misses)
        .Set("cache_inserts", res.cache_stats.inserts);
    for (const auto& [key, value] : extra_counters.fields()) {
      counters.Set(key, value);
    }
    Record(instance, algorithm, res.upper_bound, res.exact, res.nodes,
           res.seconds * 1000.0, /*deterministic=*/res.exact,
           res.lower_bound, std::move(counters));
  }

 private:
  // Attaches the active kernel backend and the growth of the kernels.*
  // registry counters since the previous record, so each row reports the
  // kernel traffic (rows/calls per backend, dispatch decisions) its own
  // run generated rather than a process-cumulative total.
  void AttachKernelCounters(Json* rec) {
    Json kernels = Json::Object();
    kernels.Set("backend",
                std::string(kernels::BackendName(kernels::ActiveBackend())));
    for (const auto& [name, value] : metrics::Registry::Global().Snapshot()) {
      if (name.rfind("kernels.", 0) != 0) continue;
      long& prev = kernel_last_[name];
      kernels.Set(name.substr(8), value - prev);
      prev = value;
    }
    rec->Set("kernels", std::move(kernels));
  }

  std::string bench_;
  std::string path_;
  std::map<std::string, long> kernel_last_;
};

/// rows / (wall_ms milliseconds) as rows-per-second, 0 when the
/// interval is too small to divide meaningfully.
inline double RowsPerSecond(long rows, double wall_ms) {
  return wall_ms > 0 ? static_cast<double>(rows) * 1000.0 / wall_ms : 0.0;
}

/// queries / (wall_ms milliseconds) as queries-per-second.
inline double QueriesPerSecond(long queries, double wall_ms) {
  return wall_ms > 0 ? static_cast<double>(queries) * 1000.0 / wall_ms : 0.0;
}

}  // namespace hypertree::bench

#endif  // HYPERTREE_BENCH_BENCH_UTIL_H_
