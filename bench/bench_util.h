// Shared helpers for the table-reproduction benchmark binaries.
//
// Every binary prints the rows of the paper table it reproduces and
// terminates in seconds at the default scale. Set HYPERTREE_BENCH_SCALE
// (e.g. 10) to multiply the time budgets / iteration counts toward the
// paper's original 1h-per-instance scale.

#ifndef HYPERTREE_BENCH_BENCH_UTIL_H_
#define HYPERTREE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace hypertree::bench {

/// Budget multiplier from HYPERTREE_BENCH_SCALE (default 1.0).
inline double Scale() {
  const char* s = std::getenv("HYPERTREE_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

/// Prints a table header followed by a separator line.
inline void Header(const std::string& title, const std::string& columns) {
  std::printf("\n=== %s ===\n%s\n", title.c_str(), columns.c_str());
  std::printf("%s\n", std::string(columns.size(), '-').c_str());
}

/// "12" or "12*" for inexact values.
inline std::string Exactness(int value, bool exact) {
  return std::to_string(value) + (exact ? "" : "*");
}

}  // namespace hypertree::bench

#endif  // HYPERTREE_BENCH_BENCH_UTIL_H_
