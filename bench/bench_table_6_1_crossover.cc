// Reproduces Table 6.1 (crossover operator comparison for GA-tw).
// Protocol from the thesis at reduced scale: crossover rate 100%, mutation
// rate 0%, several runs per (instance, operator); report avg/min/max
// width. Reproduced shape: POS dominates, AP/CX trail far behind.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_tw.h"
#include "graph/generators.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_6_1_crossover");
  std::vector<Graph> instances = {
      MycielskiGraph(6),          // myciel5 stand-in for myciel7's class
      GridGraph(7, 7),
      RandomGraph(60, 300, 21),   // queen/le450-style density stand-in
  };
  bench::Header("Table 6.1: GA-tw crossover comparison (pc=1.0, pm=0)",
                "instance            op     avg     min     max");
  for (const Graph& g : instances) {
    struct Row {
      CrossoverOp op;
      double avg;
      int min, max;
    };
    std::vector<Row> rows;
    for (CrossoverOp op : kAllCrossovers) {
      int runs = std::max(1, static_cast<int>(3 * scale));
      double sum = 0;
      int mn = 1 << 30, mx = 0;
      Timer timer;
      for (int run = 0; run < runs; ++run) {
        GaConfig cfg;
        cfg.population_size = 50;
        cfg.max_iterations = static_cast<int>(120 * scale);
        cfg.crossover_rate = 1.0;
        cfg.mutation_rate = 0.0;
        cfg.tournament_size = 2;
        cfg.crossover = op;
        cfg.seed = 1000 + run;
        GaResult res = GaTreewidth(g, cfg);
        sum += res.best_fitness;
        mn = std::min(mn, res.best_fitness);
        mx = std::max(mx, res.best_fitness);
      }
      report.Record(g.name(), "ga_tw_" + CrossoverName(op), mn,
                    /*exact=*/false, /*nodes=*/0, timer.ElapsedMillis(),
                    /*deterministic=*/true, /*lower_bound=*/-1,
                    Json::Object()
                        .Set("runs", runs)
                        .Set("avg_width", sum / runs)
                        .Set("max_width", mx));
      rows.push_back({op, sum / runs, mn, mx});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.avg < b.avg; });
    for (const Row& r : rows) {
      std::printf("%-18s %4s %7.1f %7d %7d\n", g.name().c_str(),
                  CrossoverName(r.op).c_str(), r.avg, r.min, r.max);
    }
  }
  std::printf("\n(expected: POS wins on average, matching Table 6.1)\n");
  return 0;
}
