// Reproduces Table 7.2 (SAIGA-ghw: the self-adaptive island GA).
// Reproduced shape: SAIGA reaches the tuned GA-ghw's upper bounds without
// any externally tuned parameters, and reports the parameters it adapted.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_ghw.h"
#include "ga/saiga.h"
#include "hypergraph/generators.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_7_2_saiga");
  std::vector<Hypergraph> instances = {
      AdderHypergraph(12),
      BridgeHypergraph(10),
      CliqueHypergraph(10),
      Grid2DHypergraph(5),
      CircuitHypergraph(8, 60, 5),
      RandomHypergraph(40, 45, 2, 4, 6),
  };
  bench::Header("Table 7.2: SAIGA-ghw vs tuned GA-ghw",
                "hypergraph            V     H  ga-ghw  saiga   pc*    pm*   s*");
  for (const Hypergraph& h : instances) {
    Timer ga_timer;
    GaConfig tuned;
    tuned.population_size = 60;
    tuned.max_iterations = static_cast<int>(80 * scale);
    tuned.tournament_size = 3;
    tuned.seed = 11;
    GaResult ga = GaGhw(h, tuned, CoverMode::kGreedy);
    report.Record(h.name(), "ga_ghw_tuned", ga.best_fitness, /*exact=*/false,
                  /*nodes=*/0, ga_timer.ElapsedMillis());

    Timer saiga_timer;
    SaigaConfig scfg;
    scfg.num_islands = 4;
    scfg.island_population = 15;
    scfg.epochs = std::max(1, static_cast<int>(4 * scale));
    scfg.generations_per_epoch = static_cast<int>(20 * scale);
    scfg.seed = 12;
    SaigaResult saiga = SaigaGhw(h, scfg, CoverMode::kGreedy);
    report.Record(
        h.name(), "saiga_ghw", saiga.ga.best_fitness, /*exact=*/false,
        /*nodes=*/0, saiga_timer.ElapsedMillis(), /*deterministic=*/true,
        /*lower_bound=*/-1,
        Json::Object()
            .Set("final_crossover_rate", saiga.final_crossover_rate)
            .Set("final_mutation_rate", saiga.final_mutation_rate)
            .Set("final_tournament_size", saiga.final_tournament_size));

    std::printf("%-20s %4d %5d %7d %6d %5.2f %6.2f %4d\n", h.name().c_str(),
                h.NumVertices(), h.NumEdges(), ga.best_fitness,
                saiga.ga.best_fitness, saiga.final_crossover_rate,
                saiga.final_mutation_rate, saiga.final_tournament_size);
  }
  std::printf("\n(expected: saiga column tracks ga-ghw without parameter "
              "tuning, matching Table 7.2)\n");
  return 0;
}
