// Reproduces Table 6.2 (mutation operator comparison for GA-tw).
// Protocol: crossover rate 0%, mutation rate 100%. Reproduced shape:
// ISM/EM lead, IVM/DM trail.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_tw.h"
#include "graph/generators.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_6_2_mutation");
  std::vector<Graph> instances = {
      MycielskiGraph(6),
      GridGraph(7, 7),
      RandomGraph(60, 300, 21),
  };
  bench::Header("Table 6.2: GA-tw mutation comparison (pc=0, pm=1.0)",
                "instance            op     avg     min     max");
  for (const Graph& g : instances) {
    struct Row {
      MutationOp op;
      double avg;
      int min, max;
    };
    std::vector<Row> rows;
    for (MutationOp op : kAllMutations) {
      int runs = std::max(1, static_cast<int>(3 * scale));
      double sum = 0;
      int mn = 1 << 30, mx = 0;
      Timer timer;
      for (int run = 0; run < runs; ++run) {
        GaConfig cfg;
        cfg.population_size = 50;
        cfg.max_iterations = static_cast<int>(120 * scale);
        cfg.crossover_rate = 0.0;
        cfg.mutation_rate = 1.0;
        cfg.tournament_size = 2;
        cfg.mutation = op;
        cfg.seed = 2000 + run;
        GaResult res = GaTreewidth(g, cfg);
        sum += res.best_fitness;
        mn = std::min(mn, res.best_fitness);
        mx = std::max(mx, res.best_fitness);
      }
      report.Record(g.name(), "ga_tw_" + MutationName(op), mn,
                    /*exact=*/false, /*nodes=*/0, timer.ElapsedMillis(),
                    /*deterministic=*/true, /*lower_bound=*/-1,
                    Json::Object()
                        .Set("runs", runs)
                        .Set("avg_width", sum / runs)
                        .Set("max_width", mx));
      rows.push_back({op, sum / runs, mn, mx});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.avg < b.avg; });
    for (const Row& r : rows) {
      std::printf("%-18s %4s %7.1f %7d %7d\n", g.name().c_str(),
                  MutationName(r.op).c_str(), r.avg, r.min, r.max);
    }
  }
  std::printf("\n(expected: ISM leads on average, matching Table 6.2)\n");
  return 0;
}
