// E13 (survey, widths section): the width hierarchy
// fhw <= ghw <= hw <= tw+1 measured across the generator families, plus
// the ghw = 1 <=> alpha-acyclic characterization.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "fhw/fractional_hypertree.h"
#include "ghd/branch_and_bound.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/acyclicity.h"
#include "hypergraph/generators.h"
#include "td/branch_and_bound.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("width_hierarchy");
  std::vector<Hypergraph> instances = {
      RandomAcyclicHypergraph(15, 4, 1),
      CycleHypergraph(10, 2),
      CycleHypergraph(10, 3),
      CliqueHypergraph(7),
      Grid2DHypergraph(3),
      AdderHypergraph(3),
      BridgeHypergraph(3),
      RandomHypergraph(12, 12, 2, 4, 4),
  };
  bench::Header("E13: width hierarchy fhw <= ghw <= hw <= tw+1",
                "hypergraph            V     H  acyc   fhw<=   ghw    hw    tw  ok");
  bool all_ok = true;
  for (const Hypergraph& h : instances) {
    SearchOptions budget;
    budget.time_limit_seconds = 3.0 * scale;
    GhwSearchOptions gbudget;
    gbudget.time_limit_seconds = 3.0 * scale;
    bool acyclic = IsAlphaAcyclic(h);
    WidthResult ghw = BranchAndBoundGhw(h, gbudget);
    double fhw = std::min(FhwUpperBound(h, 2, 5),
                          FractionalWidthOfOrdering(h, ghw.best_ordering));
    WidthResult hw = HypertreeWidth(h, budget);
    WidthResult tw = BranchAndBoundTreewidth(h.PrimalGraph(), budget);
    report.Record(h.name(), "bb_ghw", ghw);
    report.Record(h.name(), "det_k_hw", hw,
                  Json::Object().Set("fhw_ub", fhw));
    report.Record(h.name(), "bb_tw", tw);
    bool ok = true;
    if (ghw.exact && hw.exact && ghw.upper_bound > hw.upper_bound) ok = false;
    if (hw.exact && tw.exact && hw.upper_bound > tw.upper_bound + 1)
      ok = false;
    if (ghw.exact && (ghw.upper_bound == 1) != acyclic) ok = false;
    all_ok &= ok;
    std::printf("%-20s %4d %5d %5s %7.2f %5s %5s %5s  %s\n", h.name().c_str(),
                h.NumVertices(), h.NumEdges(), acyclic ? "yes" : "no", fhw,
                bench::Exactness(ghw.upper_bound, ghw.exact).c_str(),
                bench::Exactness(hw.upper_bound, hw.exact).c_str(),
                bench::Exactness(tw.upper_bound, tw.exact).c_str(),
                ok ? "ok" : "VIOLATION");
  }
  std::printf("\nhierarchy %s on all instances\n",
              all_ok ? "holds" : "VIOLATED");
  return all_ok ? 0 : 1;
}
