// Reproduces Table 5.1 (A*-tw on DIMACS graph-coloring instances).
//
// Structured DIMACS families (queens, Mycielski) are regenerated exactly;
// the random families (DSJC*, le450_*) are substituted by seeded random
// graphs of comparable density (see DESIGN.md). The reproduced shape:
// lb/ub from the heuristics bracket the treewidth, A*-tw closes the gap on
// the easy instances and reports improved lower bounds on the hard ones.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bounds/lower_bounds.h"
#include "graph/generators.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"
#include "td/astar.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_5_1_astar_tw");
  std::vector<Graph> instances = {
      QueensGraph(5),           // queen5_5: tw 18
      QueensGraph(6),           // queen6_6: tw 25
      MycielskiGraph(4),        // myciel3: tw 5
      MycielskiGraph(5),        // myciel4: tw 10
      GridGraph(5, 5),          // tw 5
      RandomKTree(40, 8, 1.0, 3),
      RandomGraph(40, 120, 7),  // DSJC-style stand-in (scaled down)
      RandomGraph(60, 180, 9),  // le450-style stand-in (scaled down)
  };
  bench::Header("Table 5.1: A*-tw on DIMACS-family graphs",
                "graph                 V     E    lb    ub  A*-tw    nodes   time[s]");
  for (const Graph& g : instances) {
    Rng rng(1);
    int lb = TreewidthLowerBound(g, &rng);
    int ub = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    SearchOptions opts;
    opts.time_limit_seconds = 2.0 * scale;
    opts.max_nodes = static_cast<long>(200000 * scale);
    WidthResult res = AStarTreewidth(g, opts);
    report.Record(g.name(), "astar_tw", res,
                  Json::Object().Set("static_lb", lb).Set("minfill_ub", ub));
    std::printf("%-20s %4d %5d %5d %5d %6s %8ld %9.2f\n", g.name().c_str(),
                g.NumVertices(), g.NumEdges(), lb, ub,
                bench::Exactness(res.exact ? res.upper_bound : res.lower_bound,
                                 res.exact)
                    .c_str(),
                res.nodes, res.seconds);
  }
  std::printf("\n(values marked * are proven lower bounds from interrupted "
              "runs, thesis §5.3)\n");
  return 0;
}
