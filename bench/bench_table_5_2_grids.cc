// Reproduces Table 5.2 (A*-tw on grid graphs). The treewidth of the n x n
// grid is n; the reproduced shape: exact up to some budget-dependent size,
// then proven lower bounds from the interrupted search.

#include <cstdio>

#include "bench/bench_util.h"
#include "bounds/lower_bounds.h"
#include "graph/generators.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"
#include "td/astar.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_5_2_grids");
  bench::Header("Table 5.2: A*-tw on n x n grids",
                "graph       V     E    lb    ub  A*-tw    nodes   time[s]");
  for (int n = 2; n <= 7; ++n) {
    Graph g = GridGraph(n, n);
    Rng rng(1);
    int lb = TreewidthLowerBound(g, &rng);
    int ub = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    SearchOptions opts;
    opts.time_limit_seconds = 2.0 * scale;
    opts.max_nodes = static_cast<long>(300000 * scale);
    WidthResult res = AStarTreewidth(g, opts);
    report.Record(g.name(), "astar_tw", res,
                  Json::Object().Set("static_lb", lb).Set("minfill_ub", ub));
    std::printf("grid%-4d %4d %5d %5d %5d %6s %8ld %9.2f\n", n,
                g.NumVertices(), g.NumEdges(), lb, ub,
                bench::Exactness(res.exact ? res.upper_bound : res.lower_bound,
                                 res.exact)
                    .c_str(),
                res.nodes, res.seconds);
  }
  std::printf("\n(expected: A*-tw fixes tw(grid n) = n while the budget "
              "lasts, then lower bounds)\n");
  return 0;
}
