// Reproduces Table 7.1 (GA-ghw upper bounds on benchmark hypergraphs).
// Reproduced shape: the GA matches or improves the single-shot
// bucket-elimination (min-fill + greedy covers) upper bound on most
// instances — the thesis' improvement over the prior published bounds.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_ghw.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_7_1_ga_ghw");
  std::vector<Hypergraph> instances = {
      AdderHypergraph(12),        // adder_* family
      BridgeHypergraph(10),       // bridge_* family
      CliqueHypergraph(10),       // clique_* family
      Grid2DHypergraph(5),        // grid2d_*
      Grid3DHypergraph(3),        // grid3d_*
      CircuitHypergraph(8, 60, 5),   // ISCAS bNN stand-in
      RandomHypergraph(40, 45, 2, 4, 6),
  };
  bench::Header("Table 7.1: GA-ghw upper bounds on benchmark hypergraphs",
                "hypergraph            V     H  bucketelim  ga-min  ga-max  ga-avg  ga+seed");
  int improved = 0, matched = 0, worse = 0;
  for (const Hypergraph& h : instances) {
    GhwEvaluator eval(h);
    Rng rng(3);
    int greedy = eval.EvaluateOrdering(MinFillOrdering(eval.primal(), &rng),
                                       CoverMode::kGreedy, &rng);
    int runs = std::max(1, static_cast<int>(3 * scale));
    double sum = 0;
    int mn = 1 << 30, mx = 0;
    Timer timer;
    for (int run = 0; run < runs; ++run) {
      GaConfig cfg;
      cfg.population_size = 60;
      cfg.max_iterations = static_cast<int>(80 * scale);
      cfg.tournament_size = 3;
      cfg.seed = 7000 + run;
      GaResult res = GaGhw(h, cfg, CoverMode::kGreedy);
      sum += res.best_fitness;
      mn = std::min(mn, res.best_fitness);
      mx = std::max(mx, res.best_fitness);
    }
    if (mn < greedy) {
      ++improved;
    } else if (mn == greedy) {
      ++matched;
    } else {
      ++worse;
    }
    // Extension column: population seeded with greedy orderings (fixes
    // the chain-family weakness without changing the thesis protocol).
    GaConfig seeded_cfg;
    seeded_cfg.population_size = 60;
    seeded_cfg.max_iterations = static_cast<int>(80 * scale);
    seeded_cfg.tournament_size = 3;
    seeded_cfg.seed = 7999;
    GaResult seeded =
        GaGhw(h, seeded_cfg, CoverMode::kGreedy, /*seed_with_heuristics=*/true);
    report.Record(h.name(), "ga_ghw", mn, /*exact=*/false, /*nodes=*/0,
                  timer.ElapsedMillis(), /*deterministic=*/true,
                  /*lower_bound=*/-1,
                  Json::Object()
                      .Set("runs", runs)
                      .Set("avg_width", sum / runs)
                      .Set("max_width", mx)
                      .Set("bucketelim_ub", greedy)
                      .Set("seeded_width", seeded.best_fitness));
    std::printf("%-20s %4d %5d %11d %7d %7d %7.1f %8d\n", h.name().c_str(),
                h.NumVertices(), h.NumEdges(), greedy, mn, mx, sum / runs,
                seeded.best_fitness);
  }
  std::printf("\nGA vs bucket elimination: improved %d, matched %d, worse "
              "%d\n(expected: improved+matched dominate, matching Table "
              "7.1)\n",
              improved, matched, worse);
  return 0;
}
