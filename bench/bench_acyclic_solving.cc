// E12 (survey, acyclicity section): acyclic CSPs are answered in
// polynomial time through their join tree. The crisp separation is
// *counting*: weighted Yannakakis counts all solutions with polynomial
// work while enumeration-based backtracking must visit every solution —
// and loose acyclic instances have exponentially many.

#include <cstdio>

#include "bench/bench_util.h"
#include "csp/backtracking.h"
#include "csp/counting.h"
#include "csp/generators.h"
#include "csp/yannakakis.h"
#include "hypergraph/generators.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("acyclic_solving");
  ThreadPool pool;  // hardware concurrency
  metrics::Counter& rows_joined = metrics::GetCounter("relation.rows_joined");
  metrics::Counter& rows_dropped =
      metrics::GetCounter("relation.rows_semijoin_dropped");
  bench::Header(
      "E12: acyclic CSP answering — Yannakakis counting vs backtracking",
      "edges  vars   solutions  yann[ms]   bt-nodes  bt[ms]  bt-aborted");
  int max_edges = static_cast<int>(12 * scale);
  for (int edges = 2; edges <= max_edges; edges += 2) {
    Hypergraph h = RandomAcyclicHypergraph(edges, 3, 7 + edges);
    // Loose constraints: solution counts grow exponentially with size.
    Csp csp = RandomCspFromHypergraph(h, 2, 0.7, /*plant_solution=*/true,
                                      edges);
    long joined_before = rows_joined.Value();
    long dropped_before = rows_dropped.Value();
    Timer ty;
    long long count = CountAcyclicCsp(csp, &pool);
    double yann_ms = ty.ElapsedMillis();
    long joined = rows_joined.Value() - joined_before;
    long dropped = rows_dropped.Value() - dropped_before;

    Timer tb;
    BacktrackStats stats;
    long bt_count = BacktrackingCountSolutions(csp, /*max_nodes=*/3000000,
                                               &stats);
    double bt_ms = tb.ElapsedMillis();
    report.Record(h.name(), "yannakakis_count", /*width=*/1, /*exact=*/true,
                  /*nodes=*/0, yann_ms, /*deterministic=*/true,
                  /*lower_bound=*/1,
                  Json::Object()
                      .Set("solutions", static_cast<long>(count))
                      .Set("rows_joined", joined)
                      .Set("rows_semijoin_dropped", dropped),
                  Json::Object()
                      .Set("rows_per_s",
                           bench::RowsPerSecond(joined + dropped, yann_ms))
                      .Set("queries_per_s",
                           bench::QueriesPerSecond(1, yann_ms)));
    report.Record(h.name(), "backtracking_count", /*width=*/-1,
                  /*exact=*/false, stats.nodes, bt_ms,
                  /*deterministic=*/!stats.aborted, /*lower_bound=*/-1,
                  Json::Object().Set("aborted", stats.aborted),
                  Json::Object().Set("queries_per_s",
                                     bench::QueriesPerSecond(1, bt_ms)));
    if (!stats.aborted && bt_count != count) {
      std::printf("COUNTING DISAGREEMENT at %d edges (%lld vs %ld)!\n", edges,
                  count, bt_count);
      return 1;
    }
    std::printf("%5d %5d %11lld %9.2f %10ld %7.1f %11s\n", edges,
                h.NumVertices(), count, yann_ms, stats.nodes, bt_ms,
                stats.aborted ? "yes" : "no");
  }
  std::printf("\n(expected: solutions and bt-nodes grow exponentially with "
              "size; yann[ms] stays polynomial)\n");
  return 0;
}
