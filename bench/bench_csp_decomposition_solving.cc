// E14 (survey, answering section): solving CSPs from decompositions.
// Planted instances on grid hypergraphs of growing size, solved by plain
// backtracking, via a tree decomposition, and via a GHD. Reported: wall
// time and the materialized work; the decomposition routes scale with
// n * d^{w+1}, the baseline with its search tree.

#include <cstdio>

#include "bench/bench_util.h"
#include "csp/backtracking.h"
#include "csp/decomposition_solving.h"
#include "csp/generators.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/generators.h"
#include "ordering/heuristics.h"
#include "td/tree_decomposition.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("csp_decomposition_solving");
  ThreadPool pool;  // hardware concurrency
  metrics::Counter& rows_joined = metrics::GetCounter("relation.rows_joined");
  metrics::Counter& rows_dropped =
      metrics::GetCounter("relation.rows_semijoin_dropped");
  bench::Header(
      "E14: CSP solving via decompositions (planted grid CSPs, domain 2)",
      "grid  vars  tdwidth  ghwwidth  td[ms]  ghd[ms]  bagtuples  bt-nodes  bt[ms]");
  int max_n = 4 + static_cast<int>(3 * scale);
  for (int n = 3; n <= max_n; ++n) {
    Hypergraph h = Grid2DHypergraph(n);
    Csp csp = RandomCspFromHypergraph(h, 2, 0.4, /*plant_solution=*/true,
                                      n * 31);
    GhwEvaluator eval(h);
    Rng rng(n);
    EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
    TreeDecomposition td = TreeDecompositionFromOrdering(eval.primal(), sigma);
    GeneralizedHypertreeDecomposition ghd =
        eval.BuildGhd(sigma, CoverMode::kExact);

    long td_joined = rows_joined.Value();
    long td_dropped = rows_dropped.Value();
    Timer t1;
    DecompositionSolveStats td_stats;
    auto via_td = SolveViaTreeDecomposition(csp, td, &td_stats, &pool);
    double td_ms = t1.ElapsedMillis();
    td_joined = rows_joined.Value() - td_joined;
    td_dropped = rows_dropped.Value() - td_dropped;

    long ghd_joined = rows_joined.Value();
    long ghd_dropped = rows_dropped.Value();
    Timer t2;
    auto via_ghd = SolveViaGhd(csp, ghd, nullptr, &pool);
    double ghd_ms = t2.ElapsedMillis();
    ghd_joined = rows_joined.Value() - ghd_joined;
    ghd_dropped = rows_dropped.Value() - ghd_dropped;

    Timer t3;
    BacktrackStats bt;
    auto direct = BacktrackingSolve(csp, 5000000, &bt);
    double bt_ms = t3.ElapsedMillis();

    report.Record(h.name(), "csp_td", td.Width(), /*exact=*/true, /*nodes=*/0,
                  td_ms, /*deterministic=*/true, /*lower_bound=*/-1,
                  Json::Object()
                      .Set("bag_tuples", td_stats.bag_tuples)
                      .Set("rows_joined", td_joined)
                      .Set("rows_semijoin_dropped", td_dropped),
                  Json::Object()
                      .Set("rows_per_s", bench::RowsPerSecond(
                                             td_joined + td_dropped, td_ms))
                      .Set("queries_per_s", bench::QueriesPerSecond(1, td_ms)));
    report.Record(h.name(), "csp_ghd", ghd.Width(), /*exact=*/true,
                  /*nodes=*/0, ghd_ms, /*deterministic=*/true,
                  /*lower_bound=*/-1,
                  Json::Object()
                      .Set("rows_joined", ghd_joined)
                      .Set("rows_semijoin_dropped", ghd_dropped),
                  Json::Object()
                      .Set("rows_per_s", bench::RowsPerSecond(
                                             ghd_joined + ghd_dropped, ghd_ms))
                      .Set("queries_per_s",
                           bench::QueriesPerSecond(1, ghd_ms)));
    report.Record(h.name(), "csp_bt", /*width=*/-1, /*exact=*/false, bt.nodes,
                  bt_ms, /*deterministic=*/!bt.aborted, /*lower_bound=*/-1,
                  Json::Object().Set("aborted", bt.aborted),
                  Json::Object().Set("queries_per_s",
                                     bench::QueriesPerSecond(1, bt_ms)));
    if (!via_td.has_value() || !via_ghd.has_value() ||
        (!bt.aborted && !direct.has_value())) {
      std::printf("UNEXPECTED UNSAT on planted instance, grid %d\n", n);
      return 1;
    }
    std::printf("%4d %5d %8d %9d %7.1f %8.1f %10ld %9ld %7.1f\n", n,
                h.NumVertices(), td.Width(), ghd.Width(), td_ms, ghd_ms,
                td_stats.bag_tuples, bt.nodes, bt_ms);
  }
  std::printf("\n(expected: decomposition times scale with width, not with "
              "instance count; widths grow like the grid dimension)\n");
  return 0;
}
