// Reproduces Table 6.6 (final GA-tw results on the DIMACS family with the
// tuned configuration POS + ISM, pc=1.0, pm=0.3, tournament s=3).
// Reproduced shape: the GA matches or improves the greedy (min-fill)
// upper bound on most instances and never loses by much.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_tw.h"
#include "graph/generators.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_6_6_ga_tw_final");
  std::vector<Graph> instances = {
      QueensGraph(5),  QueensGraph(6),    QueensGraph(7),
      MycielskiGraph(4), MycielskiGraph(5), MycielskiGraph(6),
      GridGraph(6, 6), GridGraph(8, 8),
      RandomGraph(60, 300, 21), RandomGraph(100, 500, 22),
      RandomKTree(50, 7, 0.9, 23),
  };
  bench::Header(
      "Table 6.6: GA-tw final results (POS+ISM, pc=1.0, pm=0.3, s=3)",
      "graph                 V     E  minfill  ga-min  ga-max  ga-avg  evals");
  int improved = 0, matched = 0, worse = 0;
  for (const Graph& g : instances) {
    Rng rng(9);
    int greedy = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    int runs = std::max(1, static_cast<int>(3 * scale));
    long evals = 0;
    double sum = 0;
    int mn = 1 << 30, mx = 0;
    Timer timer;
    for (int run = 0; run < runs; ++run) {
      GaConfig cfg;
      cfg.population_size = 100;
      cfg.max_iterations = static_cast<int>(150 * scale);
      cfg.tournament_size = 3;
      cfg.seed = 6000 + run;
      GaResult res = GaTreewidth(g, cfg);
      sum += res.best_fitness;
      mn = std::min(mn, res.best_fitness);
      mx = std::max(mx, res.best_fitness);
      evals += res.evaluations;
    }
    if (mn < greedy) {
      ++improved;
    } else if (mn == greedy) {
      ++matched;
    } else {
      ++worse;
    }
    report.Record(g.name(), "ga_tw_final", mn, /*exact=*/false, evals,
                  timer.ElapsedMillis(), /*deterministic=*/true,
                  /*lower_bound=*/-1,
                  Json::Object()
                      .Set("runs", runs)
                      .Set("avg_width", sum / runs)
                      .Set("max_width", mx)
                      .Set("minfill_ub", greedy));
    std::printf("%-20s %4d %5d %8d %7d %7d %7.1f %6ld\n", g.name().c_str(),
                g.NumVertices(), g.NumEdges(), greedy, mn, mx, sum / runs,
                evals);
  }
  std::printf("\nGA vs min-fill upper bounds: improved %d, matched %d, "
              "worse %d\n(expected: improved+matched dominate, matching the "
              "22/31/9 split of Table 6.6)\n",
              improved, matched, worse);
  return 0;
}
