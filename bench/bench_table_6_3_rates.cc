// Reproduces Table 6.3 (crossover-rate x mutation-rate sweep for GA-tw
// with POS + ISM). Reproduced shape: high crossover with moderate
// mutation (pc = 1.0, pm = 0.3) is among the best combinations.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_tw.h"
#include "graph/generators.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_6_3_rates");
  std::vector<Graph> instances = {GridGraph(7, 7), RandomGraph(60, 300, 21)};
  bench::Header("Table 6.3: GA-tw pc x pm sweep (POS + ISM)",
                "instance            pc    pm     avg     min     max");
  for (const Graph& g : instances) {
    struct Row {
      double pc, pm, avg;
      int min, max;
    };
    std::vector<Row> rows;
    for (double pc : {0.8, 1.0}) {
      for (double pm : {0.01, 0.1, 0.3}) {
        int runs = std::max(1, static_cast<int>(3 * scale));
        double sum = 0;
        int mn = 1 << 30, mx = 0;
        Timer timer;
        for (int run = 0; run < runs; ++run) {
          GaConfig cfg;
          cfg.population_size = 60;
          cfg.max_iterations = static_cast<int>(120 * scale);
          cfg.crossover_rate = pc;
          cfg.mutation_rate = pm;
          cfg.tournament_size = 2;
          cfg.seed = 3000 + run;
          GaResult res = GaTreewidth(g, cfg);
          sum += res.best_fitness;
          mn = std::min(mn, res.best_fitness);
          mx = std::max(mx, res.best_fitness);
        }
        char algo[64];
        std::snprintf(algo, sizeof(algo), "ga_tw_pc%.1f_pm%.2f", pc, pm);
        report.Record(g.name(), algo, mn, /*exact=*/false, /*nodes=*/0,
                      timer.ElapsedMillis(), /*deterministic=*/true,
                      /*lower_bound=*/-1,
                      Json::Object()
                          .Set("runs", runs)
                          .Set("avg_width", sum / runs)
                          .Set("max_width", mx));
        rows.push_back({pc, pm, sum / runs, mn, mx});
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.avg < b.avg; });
    for (const Row& r : rows) {
      std::printf("%-18s %4.1f %5.2f %7.1f %7d %7d\n", g.name().c_str(), r.pc,
                  r.pm, r.avg, r.min, r.max);
    }
  }
  std::printf("\n(expected: pc=1.0 pm=0.3 near the top, matching Table 6.3)\n");
  return 0;
}
