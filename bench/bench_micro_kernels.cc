// E15: google-benchmark microkernels for the hot paths — ordering width
// evaluation (the GA fitness), greedy/exact bag covers, bitset algebra.

#include <benchmark/benchmark.h>

#include "ghd/ghw_from_ordering.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "ordering/evaluator.h"
#include "setcover/exact.h"
#include "setcover/greedy.h"
#include "util/rng.h"

namespace hypertree {
namespace {

void BM_EvaluateOrderingWidth(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = RandomGraph(n, 4 * n, 1);
  Rng rng(2);
  EliminationOrdering sigma = rng.Permutation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateOrderingWidth(g, sigma));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateOrderingWidth)->Arg(32)->Arg(128)->Arg(512);

void BM_GreedyCover(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 4, 3);
  std::vector<Bitset> sets;
  for (int e = 0; e < h.NumEdges(); ++e) sets.push_back(h.EdgeBits(e));
  Bitset target(n);
  for (int v = 0; v < n; v += 2) target.Set(v);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedySetCover(sets, target, &rng));
  }
}
BENCHMARK(BM_GreedyCover)->Arg(32)->Arg(128);

void BM_ExactCover(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 4, 3);
  std::vector<Bitset> sets;
  for (int e = 0; e < h.NumEdges(); ++e) sets.push_back(h.EdgeBits(e));
  Bitset target(n);
  for (int v = 0; v < n; v += 2) target.Set(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactSetCover(sets, target));
  }
}
BENCHMARK(BM_ExactCover)->Arg(16)->Arg(32);

void BM_GhwOrderingEvaluation(benchmark::State& state) {
  Hypergraph h = RandomHypergraph(64, 80, 2, 4, 5);
  GhwEvaluator eval(h);
  Rng rng(6);
  EliminationOrdering sigma = rng.Permutation(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval.EvaluateOrdering(sigma, CoverMode::kGreedy, &rng));
  }
}
BENCHMARK(BM_GhwOrderingEvaluation);

void BM_BitsetIntersectCount(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  Bitset a(n), b(n);
  for (int i = 0; i < n / 2; ++i) {
    a.Set(rng.UniformInt(n));
    b.Set(rng.UniformInt(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectCount(b));
  }
}
BENCHMARK(BM_BitsetIntersectCount)->Arg(64)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace hypertree

BENCHMARK_MAIN();
