// E15: google-benchmark microkernels for the hot paths — ordering width
// evaluation (the GA fitness), greedy/exact bag covers, bitset algebra.

#include <benchmark/benchmark.h>

#include <cstring>

#include "ghd/ghw_from_ordering.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "hypergraph/incidence_index.h"
#include "kernels/kernels.h"
#include "ordering/evaluator.h"
#include "portfolio/features.h"
#include "setcover/exact.h"
#include "setcover/greedy.h"
#include "util/rng.h"

namespace hypertree {
namespace {

void BM_EvaluateOrderingWidth(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Graph g = RandomGraph(n, 4 * n, 1);
  Rng rng(2);
  EliminationOrdering sigma = rng.Permutation(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateOrderingWidth(g, sigma));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateOrderingWidth)->Arg(32)->Arg(128)->Arg(512);

void BM_GreedyCover(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 4, 3);
  std::vector<Bitset> sets;
  for (int e = 0; e < h.NumEdges(); ++e) sets.push_back(h.EdgeBits(e));
  Bitset target(n);
  for (int v = 0; v < n; v += 2) target.Set(v);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedySetCover(sets, target, &rng));
  }
}
BENCHMARK(BM_GreedyCover)->Arg(32)->Arg(128);

void BM_ExactCover(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 4, 3);
  std::vector<Bitset> sets;
  for (int e = 0; e < h.NumEdges(); ++e) sets.push_back(h.EdgeBits(e));
  Bitset target(n);
  for (int v = 0; v < n; v += 2) target.Set(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactSetCover(sets, target));
  }
}
BENCHMARK(BM_ExactCover)->Arg(16)->Arg(32);

void BM_GhwOrderingEvaluation(benchmark::State& state) {
  Hypergraph h = RandomHypergraph(64, 80, 2, 4, 5);
  GhwEvaluator eval(h);
  Rng rng(6);
  EliminationOrdering sigma = rng.Permutation(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval.EvaluateOrdering(sigma, CoverMode::kGreedy, &rng));
  }
}
BENCHMARK(BM_GhwOrderingEvaluation);

void BM_BitsetIntersectCount(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  Bitset a(n), b(n);
  for (int i = 0; i < n / 2; ++i) {
    a.Set(rng.UniformInt(n));
    b.Set(rng.UniformInt(n));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectCount(b));
  }
}
BENCHMARK(BM_BitsetIntersectCount)->Arg(64)->Arg(1024)->Arg(8192);

// Incidence-index construction (once per instance in the exact searches).
void BM_IncidenceBuild(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 5, 11);
  for (auto _ : state) {
    IncidenceIndex index(h);
    benchmark::DoNotOptimize(index.NumEdges());
  }
}
BENCHMARK(BM_IncidenceBuild)->Arg(32)->Arg(128)->Arg(512);

// Word-parallel component split (det-k's TrySeparator hot path) vs the
// quadratic fixed-point reference it replaced.
void BM_ComponentSplit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 5, 13);
  IncidenceIndex index(h);
  ComponentSplitter splitter(&index);
  Rng rng(14);
  Bitset comp(h.NumEdges());
  comp.SetAll();
  Bitset sep_vars(n);
  for (int i = 0; i < n / 3; ++i) sep_vars.Set(rng.UniformInt(n));
  std::vector<Bitset> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(splitter.Split(comp, sep_vars, &out, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ComponentSplit)->Arg(32)->Arg(128)->Arg(512);

void BM_NaiveComponentSplit(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 5, 13);
  Rng rng(14);
  Bitset comp(h.NumEdges());
  comp.SetAll();
  Bitset sep_vars(n);
  for (int i = 0; i < n / 3; ++i) sep_vars.Set(rng.UniformInt(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveComponents(h, comp, sep_vars));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NaiveComponentSplit)->Arg(32)->Arg(128)->Arg(512);

// Portfolio feature extraction (the router's input, once per instance).
// Budget: the whole prologue must stay well under 1% of a typical exact
// solve, so extraction on table-8-sized instances (n <= 43, m <= 30)
// has to land in the microsecond range.
void BM_ExtractFeatures(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 5, 17);
  IncidenceIndex index(h);
  for (auto _ : state) {
    InstanceFeatures f = ExtractFeatures(index);
    benchmark::DoNotOptimize(f.max_intersection);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtractFeatures)->Arg(32)->Arg(128)->Arg(512);

// Same, including the IncidenceIndex build — the true cold-start cost the
// portfolio prologue pays before routing.
void BM_ExtractFeaturesColdStart(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 5, 17);
  for (auto _ : state) {
    IncidenceIndex index(h);
    InstanceFeatures f = ExtractFeatures(index);
    benchmark::DoNotOptimize(f.max_intersection);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExtractFeaturesColdStart)->Arg(32)->Arg(128);

// Extraction (index build included) across the exact table-8/9 instance
// set, one full sweep per iteration: the per-instance cost is this time
// divided by 8, to compare against the table_8 median solve wall.
void BM_ExtractFeaturesTable8Set(benchmark::State& state) {
  std::vector<Hypergraph> instances;
  instances.push_back(RandomAcyclicHypergraph(25, 4, 2));
  instances.push_back(CycleHypergraph(12, 2));
  instances.push_back(CliqueHypergraph(8));
  instances.push_back(AdderHypergraph(6));
  instances.push_back(BridgeHypergraph(6));
  instances.push_back(Grid2DHypergraph(4));
  instances.push_back(CircuitHypergraph(6, 30, 5));
  instances.push_back(RandomHypergraph(20, 22, 2, 4, 8));
  for (auto _ : state) {
    for (const Hypergraph& h : instances) {
      IncidenceIndex index(h);
      InstanceFeatures f = ExtractFeatures(index);
      benchmark::DoNotOptimize(f.max_intersection);
    }
  }
  state.SetItemsProcessed(state.iterations() * instances.size());
}
BENCHMARK(BM_ExtractFeaturesTable8Set);

// A deterministic row-major arena for the kernel benchmarks: nrows
// rows of nbits bits at a PaddedWords stride, random fill, tail bits
// of the last logical word kept zero (padded-capacity contract).
struct KernelFixture {
  KernelFixture(int nrows, int nbits, uint64_t seed)
      : nrows(nrows),
        nwords((nbits + 63) / 64),
        stride(kernels::PaddedWords(nwords)),
        mask_words((nrows + 63) / 64),
        rows(static_cast<size_t>(nrows) * stride),
        mask(kernels::PaddedWords(mask_words)),
        filter(kernels::PaddedWords(nwords)) {
    Rng rng(seed);
    uint64_t tail = (nbits % 64 == 0) ? ~0ULL : ((1ULL << (nbits % 64)) - 1);
    for (int r = 0; r < nrows; ++r) {
      uint64_t* row = rows.data() + static_cast<size_t>(r) * stride;
      for (int w = 0; w < nwords; ++w) row[w] = rng.Next();
      row[nwords - 1] &= tail;
    }
    // Select roughly half the rows; keep the filter dense so filtered
    // reductions do real work instead of early-exiting.
    for (int r = 0; r < nrows; ++r) {
      if (rng.Bernoulli(0.5)) mask.data()[r / 64] |= 1ULL << (r % 64);
    }
    for (int w = 0; w < nwords; ++w) filter.data()[w] = rng.Next() | rng.Next();
    filter.data()[nwords - 1] &= tail;
  }

  int nrows, nwords;
  size_t stride;
  int mask_words;
  kernels::WordArena rows, mask, filter;
};

// N-way OR-reduce over a row arena, one call per iteration, per
// backend. 300 rows x 4096 bits crosses the batched backend's sharding
// thresholds; the 64-bit shape shows the small-instance dispatch cost
// the inline call-site fast paths avoid (docs/KERNELS.md).
void BM_KernelOrReduce(benchmark::State& state, kernels::Backend backend) {
  const kernels::Ops& ops = kernels::GetOps(backend);
  KernelFixture fx(300, static_cast<int>(state.range(0)), 21);
  kernels::WordArena dst(kernels::PaddedWords(fx.nwords));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.OrReduceRows(dst.data(), fx.nwords,
                                              fx.rows.data(), fx.stride,
                                              fx.mask.data(), fx.mask_words));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ops.name);
}
// The two wide arguments (256k / 1M bits = 4096 / 16384 words) bracket
// kMinColumnsToShard so the column-sharding crossover is visible.
BENCHMARK_CAPTURE(BM_KernelOrReduce, scalar, kernels::Backend::kScalar)
    ->Arg(64)->Arg(4096)->Arg(262144)->Arg(1048576);
BENCHMARK_CAPTURE(BM_KernelOrReduce, avx2, kernels::Backend::kAvx2)
    ->Arg(64)->Arg(4096)->Arg(262144)->Arg(1048576);
BENCHMARK_CAPTURE(BM_KernelOrReduce, batched, kernels::Backend::kBatched)
    ->Arg(64)->Arg(4096)->Arg(262144)->Arg(1048576);

// Row-sharded scoring: the nrows sweep at a fixed 4096-bit universe (64
// words) brackets kMinRowsToShard * kMinWordsToShard, the product guard
// shared by ScoreRows / MaxIntersect / FilterRowsNotSubset.
void BM_KernelScoreRows(benchmark::State& state, kernels::Backend backend) {
  const kernels::Ops& ops = kernels::GetOps(backend);
  const int nrows = static_cast<int>(state.range(0));
  KernelFixture fx(nrows, 4096, 25);
  std::vector<int> idx(nrows);
  for (int i = 0; i < nrows; ++i) idx[i] = i;
  std::vector<int> counts(nrows);
  for (auto _ : state) {
    ops.ScoreRows(counts.data(), fx.rows.data(), fx.stride, idx.data(), nrows,
                  fx.filter.data(), fx.nwords);
    benchmark::DoNotOptimize(counts.data()[0]);
  }
  state.SetItemsProcessed(state.iterations() * nrows);
  state.SetLabel(ops.name);
}
BENCHMARK_CAPTURE(BM_KernelScoreRows, scalar, kernels::Backend::kScalar)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelScoreRows, avx2, kernels::Backend::kAvx2)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelScoreRows, batched, kernels::Backend::kBatched)
    ->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// Batched BFS: filtered frontier expansion + commit, the two-primitive
// round ComponentSplitter runs per component, per backend.
void BM_KernelBatchedBfs(benchmark::State& state, kernels::Backend backend) {
  const kernels::Ops& ops = kernels::GetOps(backend);
  KernelFixture fx(300, static_cast<int>(state.range(0)), 22);
  kernels::WordArena reach(kernels::PaddedWords(fx.nwords));
  kernels::WordArena acc(kernels::PaddedWords(fx.nwords));
  kernels::WordArena pending(kernels::PaddedWords(fx.nwords));
  for (auto _ : state) {
    std::memcpy(pending.data(), fx.filter.data(),
                sizeof(uint64_t) * fx.nwords);
    std::memset(acc.data(), 0, sizeof(uint64_t) * fx.nwords);
    bool any = true;
    for (int round = 0; round < 4 && any; ++round) {
      ops.OrReduceRowsFiltered(reach.data(), fx.nwords, fx.rows.data(),
                               fx.stride, fx.mask.data(), fx.mask_words,
                               pending.data(), &any);
      ops.FrontierCommit(acc.data(), pending.data(), reach.data(), fx.nwords);
    }
    benchmark::DoNotOptimize(acc.data()[0]);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(ops.name);
}
BENCHMARK_CAPTURE(BM_KernelBatchedBfs, scalar, kernels::Backend::kScalar)
    ->Arg(64)->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelBatchedBfs, avx2, kernels::Backend::kAvx2)
    ->Arg(64)->Arg(4096);
BENCHMARK_CAPTURE(BM_KernelBatchedBfs, batched, kernels::Backend::kBatched)
    ->Arg(64)->Arg(4096);

// Key-pipeline kernels (morsel join engine): big-endian key packing and
// hash-table probing per backend. The size sweep brackets the batched
// shard threshold so the scalar/avx2-vs-batched crossover — the basis
// for kMinKeysToShard in kernels.cc — can be read off one run (see
// docs/KERNELS.md, "Calibrating the batched shard thresholds").
void BM_KernelPackKeys(benchmark::State& state, kernels::Backend backend) {
  const kernels::Ops& ops = kernels::GetOps(backend);
  const int nrows = static_cast<int>(state.range(0));
  const int arity = 4;
  const int k = 3;
  const int bits = 16;
  Rng rng(23);
  std::vector<int> rows(static_cast<size_t>(nrows) * arity);
  for (int& v : rows) v = static_cast<int>(rng.UniformInt(1 << bits));
  const int pos[] = {0, 2, 3};
  std::vector<uint64_t> keys(nrows);
  for (auto _ : state) {
    uint64_t mn = 0;
    uint64_t mx = 0;
    ops.PackKeys(keys.data(), rows.data(), arity, pos, k, bits, nrows, &mn,
                 &mx);
    benchmark::DoNotOptimize(mn);
  }
  state.SetItemsProcessed(state.iterations() * nrows);
  state.SetLabel(ops.name);
}
BENCHMARK_CAPTURE(BM_KernelPackKeys, scalar, kernels::Backend::kScalar)
    ->Arg(4096)->Arg(16384)->Arg(65536)->Arg(262144);
BENCHMARK_CAPTURE(BM_KernelPackKeys, avx2, kernels::Backend::kAvx2)
    ->Arg(4096)->Arg(16384)->Arg(65536)->Arg(262144);
BENCHMARK_CAPTURE(BM_KernelPackKeys, batched, kernels::Backend::kBatched)
    ->Arg(4096)->Arg(16384)->Arg(65536)->Arg(262144);

void BM_KernelProbeKeys(benchmark::State& state, kernels::Backend backend) {
  const kernels::Ops& ops = kernels::GetOps(backend);
  const int nrows = static_cast<int>(state.range(0));
  Rng rng(24);
  std::vector<uint64_t> keys(nrows);
  for (uint64_t& key : keys) key = rng.UniformInt(1 << 20);
  // Open-addressed table over every third key, ~50% load factor: probes
  // mix hits and misses the way a semijoin against a filtered build
  // side does.
  size_t cap = 2;
  while (cap < static_cast<size_t>(2) * nrows) cap <<= 1;
  std::vector<uint64_t> slot_keys(cap);
  std::vector<int32_t> slot_vals(cap, -1);
  const uint64_t mask = cap - 1;
  int32_t ordinal = 0;
  for (int i = 0; i < nrows; i += 3) {
    uint64_t s = kernels::SplitMix64(keys[i]) & mask;
    while (slot_vals[s] != -1 && slot_keys[s] != keys[i]) s = (s + 1) & mask;
    if (slot_vals[s] == -1) {
      slot_keys[s] = keys[i];
      slot_vals[s] = ordinal++;
    }
  }
  std::vector<int32_t> out(nrows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.ProbeKeys(out.data(), keys.data(), nrows,
                                           slot_keys.data(), slot_vals.data(),
                                           mask));
  }
  state.SetItemsProcessed(state.iterations() * nrows);
  state.SetLabel(ops.name);
}
BENCHMARK_CAPTURE(BM_KernelProbeKeys, scalar, kernels::Backend::kScalar)
    ->Arg(4096)->Arg(16384)->Arg(65536)->Arg(262144);
BENCHMARK_CAPTURE(BM_KernelProbeKeys, avx2, kernels::Backend::kAvx2)
    ->Arg(4096)->Arg(16384)->Arg(65536)->Arg(262144);
BENCHMARK_CAPTURE(BM_KernelProbeKeys, batched, kernels::Backend::kBatched)
    ->Arg(4096)->Arg(16384)->Arg(65536)->Arg(262144);

// Candidate-separator generation (one OR sweep + decorate-sort).
void BM_SortedCandidates(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Hypergraph h = RandomHypergraph(n, 2 * n, 2, 5, 15);
  IncidenceIndex index(h);
  CandidateGenerator gen(&index);
  Rng rng(16);
  Bitset conn(n), scope(n);
  for (int i = 0; i < n / 4; ++i) conn.Set(rng.UniformInt(n));
  for (int i = 0; i < n / 2; ++i) scope.Set(rng.UniformInt(n));
  scope |= conn;
  std::vector<int> out;
  for (auto _ : state) {
    gen.SortedCandidates(conn, scope, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SortedCandidates)->Arg(32)->Arg(128)->Arg(512);

}  // namespace
}  // namespace hypertree

BENCHMARK_MAIN();
