// E16 (extension; the thesis' future-work direction): local search
// metaheuristics vs the GA and the single-shot greedy heuristic at equal
// evaluation budgets. Reproducible shape: every metaheuristic matches or
// beats min-fill; the population-based GA and iterated local search lead
// on the rugged instances.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_tw.h"
#include "graph/generators.h"
#include "ls/local_search.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"
#include "util/timer.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("local_search");
  long budget = static_cast<long>(12000 * scale);
  std::vector<Graph> instances = {
      QueensGraph(6),
      MycielskiGraph(6),
      GridGraph(8, 8),
      RandomGraph(60, 300, 21),
      RandomKTree(50, 7, 0.9, 23),
  };
  bench::Header(
      "E16: metaheuristic comparison at equal evaluation budgets (tw ub)",
      "graph                 V  minfill     hc     sa    ils     ga");
  for (const Graph& g : instances) {
    Rng rng(5);
    int greedy = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    auto run_ls = [&](LocalSearchMethod m, const char* algo) {
      LocalSearchConfig cfg;
      cfg.method = m;
      cfg.max_evaluations = budget;
      cfg.seed = 42;
      Timer timer;
      int width = LsTreewidth(g, cfg).best_fitness;
      report.Record(g.name(), algo, width, /*exact=*/false, budget,
                    timer.ElapsedMillis());
      return width;
    };
    int hc = run_ls(LocalSearchMethod::kHillClimbing, "ls_hill_climbing");
    int sa = run_ls(LocalSearchMethod::kSimulatedAnnealing, "ls_annealing");
    int ils = run_ls(LocalSearchMethod::kIterated, "ls_iterated");
    GaConfig ga_cfg;
    ga_cfg.population_size = 60;
    ga_cfg.max_iterations = static_cast<int>(budget / 60);
    ga_cfg.seed = 42;
    Timer ga_timer;
    int ga = GaTreewidth(g, ga_cfg).best_fitness;
    report.Record(g.name(), "ga_tw", ga, /*exact=*/false, budget,
                  ga_timer.ElapsedMillis(),
                  /*deterministic=*/true, /*lower_bound=*/-1,
                  Json::Object().Set("minfill_ub", greedy));
    std::printf("%-20s %4d %8d %6d %6d %6d %6d\n", g.name().c_str(),
                g.NumVertices(), greedy, hc, sa, ils, ga);
  }
  std::printf("\n(expected: all metaheuristics <= minfill on most rows; ga "
              "and ils lead)\n");
  return 0;
}
