// E16 (extension; the thesis' future-work direction): local search
// metaheuristics vs the GA and the single-shot greedy heuristic at equal
// evaluation budgets. Reproducible shape: every metaheuristic matches or
// beats min-fill; the population-based GA and iterated local search lead
// on the rugged instances.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_tw.h"
#include "graph/generators.h"
#include "ls/local_search.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  long budget = static_cast<long>(12000 * scale);
  std::vector<Graph> instances = {
      QueensGraph(6),
      MycielskiGraph(6),
      GridGraph(8, 8),
      RandomGraph(60, 300, 21),
      RandomKTree(50, 7, 0.9, 23),
  };
  bench::Header(
      "E16: metaheuristic comparison at equal evaluation budgets (tw ub)",
      "graph                 V  minfill     hc     sa    ils     ga");
  for (const Graph& g : instances) {
    Rng rng(5);
    int greedy = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
    auto run_ls = [&](LocalSearchMethod m) {
      LocalSearchConfig cfg;
      cfg.method = m;
      cfg.max_evaluations = budget;
      cfg.seed = 42;
      return LsTreewidth(g, cfg).best_fitness;
    };
    int hc = run_ls(LocalSearchMethod::kHillClimbing);
    int sa = run_ls(LocalSearchMethod::kSimulatedAnnealing);
    int ils = run_ls(LocalSearchMethod::kIterated);
    GaConfig ga_cfg;
    ga_cfg.population_size = 60;
    ga_cfg.max_iterations = static_cast<int>(budget / 60);
    ga_cfg.seed = 42;
    int ga = GaTreewidth(g, ga_cfg).best_fitness;
    std::printf("%-20s %4d %8d %6d %6d %6d %6d\n", g.name().c_str(),
                g.NumVertices(), greedy, hc, sa, ils, ga);
  }
  std::printf("\n(expected: all metaheuristics <= minfill on most rows; ga "
              "and ils lead)\n");
  return 0;
}
