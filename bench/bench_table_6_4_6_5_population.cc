// Reproduces Tables 6.4 and 6.5 (population size and tournament group
// size sweeps for GA-tw). Reproduced shape: larger populations help at a
// fixed iteration budget; tournament sizes 3-4 beat 2 for large
// populations.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "ga/ga_tw.h"
#include "graph/generators.h"
#include "util/timer.h"

using namespace hypertree;

namespace {

struct Row {
  int param;
  double avg;
  int min, max;
};

void Sweep(const Graph& g, const std::vector<int>& params, bool is_popsize,
           double scale, bench::JsonReporter* report) {
  std::vector<Row> rows;
  for (int param : params) {
    int runs = std::max(1, static_cast<int>(3 * scale));
    double sum = 0;
    int mn = 1 << 30, mx = 0;
    Timer timer;
    for (int run = 0; run < runs; ++run) {
      GaConfig cfg;
      cfg.population_size = is_popsize ? param : 100;
      cfg.tournament_size = is_popsize ? 2 : param;
      cfg.max_iterations = static_cast<int>(100 * scale);
      cfg.seed = 4000 + run;
      GaResult res = GaTreewidth(g, cfg);
      sum += res.best_fitness;
      mn = std::min(mn, res.best_fitness);
      mx = std::max(mx, res.best_fitness);
    }
    char algo[48];
    std::snprintf(algo, sizeof(algo), "ga_tw_%s%d",
                  is_popsize ? "pop" : "tour", param);
    report->Record(g.name(), algo, mn, /*exact=*/false, /*nodes=*/0,
                   timer.ElapsedMillis(), /*deterministic=*/true,
                   /*lower_bound=*/-1,
                   Json::Object()
                       .Set("runs", runs)
                       .Set("avg_width", sum / runs)
                       .Set("max_width", mx));
    rows.push_back({param, sum / runs, mn, mx});
  }
  for (const Row& r : rows) {
    std::printf("%-18s %5d %7.1f %7d %7d\n", g.name().c_str(), r.param, r.avg,
                r.min, r.max);
  }
}

}  // namespace

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_6_4_6_5_population");
  Graph g1 = GridGraph(7, 7);
  Graph g2 = RandomGraph(60, 300, 21);
  bench::Header("Table 6.4: GA-tw population size sweep",
                "instance            n      avg     min     max");
  for (const Graph* g : {&g1, &g2})
    Sweep(*g, {20, 50, 100, 200}, true, scale, &report);
  bench::Header("Table 6.5: GA-tw tournament group size sweep (n=100)",
                "instance            s      avg     min     max");
  for (const Graph* g : {&g1, &g2}) Sweep(*g, {2, 3, 4}, false, scale, &report);
  std::printf("\n(expected: bigger populations and s=3..4 lead, matching "
              "Tables 6.4/6.5)\n");
  return 0;
}
