// Reproduces Tables 9.1/9.2 (A*-ghw on benchmark hypergraphs).
// Reproduced shape: A*-ghw fixes ghw on the instances BB-ghw fixes, agrees
// with BB-ghw everywhere both terminate, and reports improved *lower*
// bounds (nondecreasing popped f) where interrupted.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bounds/ghw_lower_bounds.h"
#include "ghd/astar.h"
#include "ghd/branch_and_bound.h"
#include "hypergraph/generators.h"
#include "portfolio/portfolio.h"

using namespace hypertree;

int main() {
  double scale = bench::Scale();
  bench::JsonReporter report("table_9_1_9_2_astar_ghw");
  std::vector<Hypergraph> instances = {
      RandomAcyclicHypergraph(25, 4, 2),
      CycleHypergraph(12, 2),
      CliqueHypergraph(8),
      AdderHypergraph(6),
      BridgeHypergraph(6),
      Grid2DHypergraph(4),
      CircuitHypergraph(6, 30, 5),
      RandomHypergraph(20, 22, 2, 4, 8),
  };
  bench::Header(
      "Tables 9.1/9.2: A*-ghw on benchmark hypergraphs",
      "hypergraph            V     H    lb  a*-ghw  a*-lb  bb-ghw    nodes  "
      "time[s]  pfolio  winner");
  for (const Hypergraph& h : instances) {
    Rng rng(2);
    int lb = GhwLowerBound(h, &rng);
    GhwSearchOptions opts;
    opts.time_limit_seconds = 2.0 * scale;
    opts.max_nodes = static_cast<long>(100000 * scale);
    WidthResult as = AStarGhw(h, opts);
    WidthResult bb = BranchAndBoundGhw(h, opts);
    PortfolioOptions popts;
    popts.time_limit_seconds = 2.0 * scale;
    popts.max_nodes = static_cast<long>(100000 * scale);
    popts.seed = 2;
    PortfolioResult pf = PortfolioGhw(h, popts);
    report.Record(h.name(), "astar_ghw", as,
                  Json::Object().Set("static_lb", lb));
    report.Record(h.name(), "bb_ghw", bb);
    report.Record(h.name(), "portfolio_ghw", pf.result,
                  Json::Object()
                      .Set("static_lb", lb)
                      .Set("portfolio_rule", Json(pf.plan.rule))
                      .Set("portfolio_winner", Json(pf.winner_name)));
    std::printf("%-20s %4d %5d %5d %7s %6d %7s %8ld %8.2f %7s  %s\n",
                h.name().c_str(), h.NumVertices(), h.NumEdges(), lb,
                bench::Exactness(as.upper_bound, as.exact).c_str(),
                as.lower_bound,
                bench::Exactness(bb.upper_bound, bb.exact).c_str(), as.nodes,
                as.seconds,
                bench::Exactness(pf.result.upper_bound, pf.result.exact)
                    .c_str(),
                pf.winner_name.c_str());
  }
  std::printf("\n(expected: a*-ghw == bb-ghw where both are exact; a*-lb >= "
              "the static lb on interrupted runs; portfolio agrees with the "
              "exact columns)\n");
  return 0;
}
