#!/usr/bin/env bash
# Runs the full benchmark suite and collects every machine-readable record
# into one sorted BENCH.json (see docs/BENCHMARKS.md for the schema).
#
#   scripts/run_benchmarks.sh [options]
#
#   --build-dir=DIR   build tree holding bench/bench_* (default: build)
#   --output=FILE     merged report path (default: BENCH.json)
#   --scale=X         forwarded as HYPERTREE_BENCH_SCALE (default: keep env)
#   --only=REGEX      run only benchmarks whose basename matches REGEX
#   --quiet           discard the human-readable table output
#
# Each bench binary appends NDJSON records to $HYPERTREE_BENCH_JSON while
# still printing its usual table. bench_micro_kernels and bench_join_kernels
# are Google Benchmark binaries, so they are run with
# --benchmark_format=json and their output is converted into the same
# record schema (bench = binary name minus the bench_ prefix). Afterwards
# all records are parsed, sorted by (bench, instance, algorithm), and
# written as a JSON array so two runs of this script are diffable with
# scripts/check_bench_regression.py.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
output="${repo_root}/BENCH.json"
only=""
quiet=0

for arg in "$@"; do
  case "${arg}" in
    --build-dir=*) build_dir="${arg#--build-dir=}" ;;
    --output=*) output="${arg#--output=}" ;;
    --scale=*) export HYPERTREE_BENCH_SCALE="${arg#--scale=}" ;;
    --only=*) only="${arg#--only=}" ;;
    --quiet) quiet=1 ;;
    *)
      echo "unknown option: ${arg}" >&2
      echo "usage: scripts/run_benchmarks.sh [--build-dir=DIR] [--output=FILE] [--scale=X] [--only=REGEX] [--quiet]" >&2
      exit 2
      ;;
  esac
done

bench_dir="${build_dir}/bench"
if [ ! -d "${bench_dir}" ]; then
  echo "error: ${bench_dir} not found — build first: cmake -B ${build_dir} -S ${repo_root} && cmake --build ${build_dir} -j" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT
ndjson="${workdir}/records.ndjson"
gbench_dir="${workdir}/gbench"
mkdir -p "${gbench_dir}"
: > "${ndjson}"
export HYPERTREE_BENCH_JSON="${ndjson}"

# Google Benchmark binaries (no NDJSON reporter of their own).
gbench_binaries="bench_micro_kernels bench_join_kernels"

ran=0
failed=0
for exe in "${bench_dir}"/bench_*; do
  [ -f "${exe}" ] && [ -x "${exe}" ] || continue
  name="$(basename "${exe}")"
  if [ -n "${only}" ] && ! [[ "${name}" =~ ${only} ]]; then
    continue
  fi
  echo "== ${name}" >&2
  ran=$((ran + 1))
  if [[ " ${gbench_binaries} " == *" ${name} "* ]]; then
    # Google Benchmark binary: capture its own JSON format for conversion.
    if ! "${exe}" --benchmark_format=json \
        --benchmark_out="${gbench_dir}/${name}.json" \
        --benchmark_out_format=json >/dev/null; then
      echo "FAILED: ${name}" >&2
      failed=$((failed + 1))
    fi
  elif [ "${quiet}" = 1 ]; then
    "${exe}" >/dev/null || { echo "FAILED: ${name}" >&2; failed=$((failed + 1)); }
  else
    "${exe}" || { echo "FAILED: ${name}" >&2; failed=$((failed + 1)); }
  fi
done

if [ "${ran}" = 0 ]; then
  echo "error: no benchmark binaries matched in ${bench_dir}" >&2
  exit 1
fi

python3 - "${ndjson}" "${gbench_dir}" "${output}" <<'PY'
import glob
import json
import os
import sys

ndjson_path, gbench_dir, out_path = sys.argv[1:4]

records = []
with open(ndjson_path) as f:
    for lineno, line in enumerate(f, 1):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            sys.exit(f"error: bad record at {ndjson_path}:{lineno}: {e}")

# Convert Google Benchmark output into the shared record schema. The
# microbench records have no width/nodes semantics, so those fields are
# null and the records are marked non-deterministic (wall time only).
# bench = binary name minus the bench_ prefix (micro_kernels,
# join_kernels, ...).
for path in sorted(glob.glob(os.path.join(gbench_dir, "bench_*.json"))):
    bench = os.path.basename(path)[len("bench_"):-len(".json")]
    with open(path) as f:
        gbench = json.load(f)
    for b in gbench.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        records.append({
            "bench": bench,
            "instance": b["name"],
            "algorithm": "microbench",
            "width": None,
            "exact": False,
            "lower_bound": None,
            "nodes": int(b.get("iterations", 0)),
            "wall_ms": float(b.get("real_time", 0.0)) / 1e6
            if b.get("time_unit") == "ns"
            else float(b.get("real_time", 0.0)),
            "deterministic": False,
            "counters": {},
        })

records.sort(key=lambda r: (r.get("bench", ""), r.get("instance", ""),
                            r.get("algorithm", "")))
with open(out_path, "w") as f:
    json.dump(records, f, indent=1, sort_keys=False)
    f.write("\n")
print(f"{len(records)} records -> {out_path}")
PY

if [ "${failed}" != 0 ]; then
  echo "error: ${failed} benchmark(s) failed" >&2
  exit 1
fi
