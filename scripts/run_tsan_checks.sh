#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and runs
# the tests that exercise the thread pool and the shared decomposition
# cache, plus the end-to-end determinism suite (which drives the parallel
# det-k root search).
#
#   scripts/run_tsan_checks.sh [build-dir]
#
# The build directory (default: build-tsan) is created next to the source
# tree and is safe to delete afterwards.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build-tsan}"

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHYPERTREE_SANITIZE=thread >/dev/null

tests=(thread_pool_test decomp_cache_test search_acceleration_test
       relation_kernel_test parallel_yannakakis_test shared_bounds_test
       portfolio_test kernels_tsan_test morsel_engine_test)
cmake --build "${build_dir}" -j "$(nproc)" --target "${tests[@]}"

# halt_on_error makes a race fail the script instead of just logging it.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

cd "${build_dir}"
ctest --output-on-failure -R "$(IFS='|'; echo "${tests[*]}")"

echo "tsan checks passed"
