"""Shared plumbing for the repo's source-analysis gates.

Two tools consume this module:

  * scripts/check_determinism_lint.py — regex/line rules (`lint:` prefix)
  * scripts/ht_analyze.py             — token/micro-AST semantic rules
                                        (`ht-analyze:` prefix)

Both speak the same suppression grammar so one parser serves both:

    // <tool>: allow(<rule-id>)            e.g.  // lint: allow(no-wall-clock)
                                                 // ht-analyze: allow(atomic-order)

A suppression names exactly one rule for exactly one tool and silences it
on the line it sits on plus the line directly below (so it can ride above
the offending statement). Nothing else is suppressed: two findings of
different rules on one line need two comments.
"""

import os
import re
import sys

SOURCE_EXTS = (".h", ".cc", ".cpp")

# One grammar for every tool: the prefix picks the rule namespace.
_ALLOW_RE = re.compile(r"//\s*(lint|ht-analyze):\s*allow\(([a-z0-9-]+)\)")


def parse_allows(line):
    """All (tool, rule) suppressions carried by one raw source line."""
    return {(m.group(1), m.group(2)) for m in _ALLOW_RE.finditer(line)}


def allowed(raw_lines, lineno, rule, tool):
    """True when line `lineno` (1-based) or the line directly above carries
    `// <tool>: allow(<rule>)`."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(raw_lines):
            if (tool, rule) in parse_allows(raw_lines[candidate - 1]):
                return True
    return False


class Finding:
    """One rule violation at a source location, sortable and printable in
    the `path:line: [rule] message` format both tools share."""

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal *contents* with spaces,
    preserving line structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "squote"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def collect_files(paths, exts=SOURCE_EXTS):
    """Expands files/directories into a sorted, de-duplicated source list;
    exits with a diagnostic on a missing path."""
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _, names in os.walk(p):
                for name in names:
                    if name.endswith(exts):
                        files.append(os.path.join(root, name))
        else:
            print(f"error: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def run_fixture_suite(good_dir, bad_dir, analyze_fn, expect_re, label):
    """Shared --self-test engine: `analyze_fn(path)` must be clean on every
    file under `good_dir`, and on each file under `bad_dir` must produce
    exactly the multiset of rules its `expect_re` annotations declare.
    Returns True on pass, printing one line per divergence otherwise."""
    ok = True

    for f in collect_files([good_dir]):
        for finding in analyze_fn(f):
            print(f"SELF-TEST FAIL (false positive): {finding}")
            ok = False

    for f in collect_files([bad_dir]):
        with open(f, encoding="utf-8") as fh:
            expected = sorted(expect_re.findall(fh.read()))
        if not expected:
            print(f"SELF-TEST FAIL: {f} declares no expectation annotation")
            ok = False
            continue
        actual = sorted(x.rule for x in analyze_fn(f))
        if actual != expected:
            print(f"SELF-TEST FAIL: {f}: expected rules {expected}, "
                  f"got {actual}")
            ok = False

    print(f"{label} self-test:", "PASS" if ok else "FAIL")
    return ok
