#!/usr/bin/env python3
"""Project-specific determinism / hygiene lint for the hypertree library.

The repo's central claim is bit-identical output for any --threads N; this
pass fails CI on the C++ constructs that historically break that promise
(ambient randomness, wall-clock reads, pointer-keyed ordering, unordered
container iteration feeding user-visible output) plus a couple of include
hygiene rules.

Usage:
    scripts/check_determinism_lint.py             # lint src/ tools/ bench/
    scripts/check_determinism_lint.py PATH...     # lint explicit paths
    scripts/check_determinism_lint.py --self-test # run the fixture suite

Escape hatch: a finding is suppressed when the offending line, or the line
directly above it, carries

    // lint: allow(<rule-id>)

Rules (ids are stable; see docs/STATIC_ANALYSIS.md):
    no-libc-rand        rand()/srand()/drand48()/random() — unseeded or
                        process-global generators; use util/rng.h.
    no-random-device    std::random_device — hardware entropy is
                        nondeterministic by design.
    no-wall-clock       time()/clock()/gettimeofday()/localtime()/
                        system_clock — wall-clock values leaking into
                        results; steady_clock durations are fine.
    no-pointer-key      std::map/std::set keyed by a pointer type —
                        iteration order depends on the allocator.
    unordered-output    range-for over an unordered container whose body
                        prints / builds JSON — emission order is
                        unspecified; sort the keys first.
    include-guard       headers must carry a HYPERTREE_*_H_ include guard.
    banned-header       <ctime>/<time.h>/<sys/time.h> (wall clock) and
                        <random> (use util/rng.h) are off limits.
"""

import os
import re
import sys

DEFAULT_DIRS = ("src", "tools", "bench")
SOURCE_EXTS = (".h", ".cc", ".cpp")

ALLOW_RE = re.compile(r"//\s*lint:\s*allow\(([a-z0-9-]+)\)")

# Content rules applied line-by-line to comment/string-stripped text.
PATTERN_RULES = [
    ("no-libc-rand",
     re.compile(r"\b(rand|srand|drand48|lrand48|random)\s*\("),
     "libc randomness is process-global and unseeded; use util/rng.h"),
    ("no-random-device",
     re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic by design; use util/rng.h"),
    ("no-wall-clock",
     re.compile(r"\b(time|clock|gettimeofday|localtime|gmtime|strftime)\s*\("
                r"|\bsystem_clock\b"),
     "wall-clock reads leak into output; use steady_clock durations"),
    ("no-pointer-key",
     re.compile(r"\b(?:std\s*::\s*)?(?:multi)?(?:map|set)\s*<[^<>]*\*\s*[,>]"),
     "pointer-keyed ordered containers iterate in allocator order"),
    ("banned-header",
     re.compile(r'#\s*include\s*[<"](ctime|time\.h|sys/time\.h|random)[>"]'),
     "banned header: wall clock / stdlib randomness (use util/rng.h)"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;({=]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*(?:\w+\.)?(\w+)\s*\)")
EMIT_SINK_RE = re.compile(
    r"\b(?:printf|fprintf|puts|fputs)\s*\(|<<|\.Set\s*\(|\.Dump\s*\(")
SORT_RE = re.compile(r"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\(")

GUARD_RE = re.compile(r"#\s*ifndef\s+(HYPERTREE_\w+_H_)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal *contents* with spaces,
    preserving line structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "squote"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("dquote", "squote"):
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (macro line continuation etc.)
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def allowed(raw_lines, lineno, rule):
    """True when line `lineno` (1-based) or the line above carries the
    escape hatch for `rule`."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(raw_lines):
            for m in ALLOW_RE.finditer(raw_lines[candidate - 1]):
                if m.group(1) == rule:
                    return True
    return False


def lint_unordered_output(stripped_lines, raw_lines, path, findings):
    """Flags range-for loops over locally declared unordered containers
    whose body emits (print / stream / JSON) before any sort."""
    unordered_vars = set()
    for line in stripped_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_vars.add(m.group(1))
    if not unordered_vars:
        return
    for idx, line in enumerate(stripped_lines):
        m = RANGE_FOR_RE.search(line)
        if not m or m.group(1) not in unordered_vars:
            continue
        # Inspect the loop body: until the braces opened at/after the for
        # close again (cheap depth scan, capped at 30 lines).
        depth = 0
        opened = False
        body_end = min(idx + 30, len(stripped_lines))
        for j in range(idx, body_end):
            depth += stripped_lines[j].count("{") - stripped_lines[j].count("}")
            if "{" in stripped_lines[j]:
                opened = True
            body = stripped_lines[j]
            if j > idx and SORT_RE.search(body):
                break  # sorted before emission: fine
            if EMIT_SINK_RE.search(body) and (j > idx or opened):
                lineno = idx + 1
                if not allowed(raw_lines, lineno, "unordered-output"):
                    findings.append(Finding(
                        path, lineno, "unordered-output",
                        f"iteration over unordered container "
                        f"'{m.group(1)}' feeds output; sort keys first"))
                break
            if opened and depth <= 0:
                break


def lint_include_guard(stripped_text, raw_lines, path, findings):
    if not GUARD_RE.search(stripped_text):
        if not allowed(raw_lines, 1, "include-guard"):
            findings.append(Finding(
                path, 1, "include-guard",
                "header lacks a HYPERTREE_*_H_ include guard"))


def lint_file(path):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()

    findings = []
    for rule, pattern, message in PATTERN_RULES:
        for idx, line in enumerate(stripped_lines):
            if pattern.search(line):
                lineno = idx + 1
                if not allowed(raw_lines, lineno, rule):
                    findings.append(Finding(path, lineno, rule, message))
    lint_unordered_output(stripped_lines, raw_lines, path, findings)
    if path.endswith(".h"):
        lint_include_guard(stripped, raw_lines, path, findings)
    return findings


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
        elif os.path.isdir(p):
            for root, _, names in os.walk(p):
                for name in names:
                    if name.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, name))
        else:
            print(f"error: no such path: {p}", file=sys.stderr)
            sys.exit(2)
    return sorted(set(files))


def run_lint(paths):
    findings = []
    for f in collect_files(paths):
        findings.extend(lint_file(f))
    findings.sort(key=Finding.key)
    for finding in findings:
        print(finding)
    return findings


EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z0-9-]+)")


def self_test(repo_root):
    """Runs the linter over the fixture suite: every `// expect-lint:`
    annotation in tests/lint_fixtures/bad must produce exactly one finding
    of that rule in that file, and the good fixtures must be clean."""
    fixtures = os.path.join(repo_root, "tests", "lint_fixtures")
    good = os.path.join(fixtures, "good")
    bad = os.path.join(fixtures, "bad")
    ok = True

    good_findings = []
    for f in collect_files([good]):
        good_findings.extend(lint_file(f))
    for finding in good_findings:
        print(f"SELF-TEST FAIL (false positive): {finding}")
        ok = False

    for f in collect_files([bad]):
        with open(f, encoding="utf-8") as fh:
            expected = sorted(EXPECT_RE.findall(fh.read()))
        if not expected:
            print(f"SELF-TEST FAIL: {f} declares no expect-lint annotation")
            ok = False
            continue
        actual = sorted(x.rule for x in lint_file(f))
        if actual != expected:
            print(f"SELF-TEST FAIL: {f}: expected rules {expected}, "
                  f"got {actual}")
            ok = False

    print("lint self-test:", "PASS" if ok else "FAIL")
    return ok


def main(argv):
    script_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(script_dir)
    if "--self-test" in argv:
        return 0 if self_test(repo_root) else 1
    paths = [a for a in argv if not a.startswith("--")]
    if not paths:
        paths = [os.path.join(repo_root, d) for d in DEFAULT_DIRS]
    findings = run_lint(paths)
    if findings:
        print(f"\n{len(findings)} determinism lint finding(s). "
              "Suppress a deliberate use with '// lint: allow(<rule>)'.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
