#!/usr/bin/env python3
"""Project-specific determinism / hygiene lint for the hypertree library.

The repo's central claim is bit-identical output for any --threads N; this
pass fails CI on the C++ constructs that historically break that promise
(ambient randomness, wall-clock reads, pointer-keyed ordering, unordered
container iteration feeding user-visible output) plus a couple of include
hygiene rules. Suppression grammar, finding format, and the fixture
engine are shared with scripts/ht_analyze.py via scripts/lint_common.py.

Usage:
    scripts/check_determinism_lint.py             # lint src/ tools/ bench/
    scripts/check_determinism_lint.py PATH...     # lint explicit paths
    scripts/check_determinism_lint.py --self-test # run the fixture suite

Escape hatch: a finding is suppressed when the offending line, or the line
directly above it, carries

    // lint: allow(<rule-id>)

Rules (ids are stable; see docs/STATIC_ANALYSIS.md):
    no-libc-rand        rand()/srand()/drand48()/random() — unseeded or
                        process-global generators; use util/rng.h.
    no-random-device    std::random_device — hardware entropy is
                        nondeterministic by design.
    no-wall-clock       time()/clock()/gettimeofday()/localtime()/
                        system_clock — wall-clock values leaking into
                        results; steady_clock durations are fine.
    no-pointer-key      std::map/std::set keyed by a pointer type —
                        iteration order depends on the allocator.
    unordered-output    range-for over an unordered container whose body
                        prints / builds JSON — emission order is
                        unspecified; sort the keys first. For the
                        compiled directories (src/ tools/ bench/) this
                        textual rule defers to ht_analyze.py's AST-level
                        unordered-output rule, which sees real loop
                        bodies instead of a line window; the regex rule
                        still covers files outside those directories
                        (fixtures, detached snippets). Force it
                        everywhere with --unordered-scope=all.
    include-guard       headers must carry a HYPERTREE_*_H_ include guard.
    banned-header       <ctime>/<time.h>/<sys/time.h> (wall clock) and
                        <random> (use util/rng.h) are off limits.
"""

import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_common import (Finding, allowed, collect_files,
                         run_fixture_suite, strip_comments_and_strings)

TOOL = "lint"
DEFAULT_DIRS = ("src", "tools", "bench", "fuzz")

# Directories whose TUs are compiled and therefore covered by the
# AST-level unordered-output rule in ht_analyze.py.
COMPILED_DIRS = ("src", "tools", "bench", "fuzz")

# Content rules applied line-by-line to comment/string-stripped text.
PATTERN_RULES = [
    ("no-libc-rand",
     re.compile(r"\b(rand|srand|drand48|lrand48|random)\s*\("),
     "libc randomness is process-global and unseeded; use util/rng.h"),
    ("no-random-device",
     re.compile(r"\brandom_device\b"),
     "std::random_device is nondeterministic by design; use util/rng.h"),
    ("no-wall-clock",
     re.compile(r"\b(time|clock|gettimeofday|localtime|gmtime|strftime)\s*\("
                r"|\bsystem_clock\b"),
     "wall-clock reads leak into output; use steady_clock durations"),
    ("no-pointer-key",
     re.compile(r"\b(?:std\s*::\s*)?(?:multi)?(?:map|set)\s*<[^<>]*\*\s*[,>]"),
     "pointer-keyed ordered containers iterate in allocator order"),
    ("banned-header",
     re.compile(r'#\s*include\s*[<"](ctime|time\.h|sys/time\.h|random)[>"]'),
     "banned header: wall clock / stdlib randomness (use util/rng.h)"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<.*>\s+(\w+)\s*[;({=]")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(.*:\s*(?:\w+\.)?(\w+)\s*\)")
EMIT_SINK_RE = re.compile(
    r"\b(?:printf|fprintf|puts|fputs)\s*\(|<<|\.Set\s*\(|\.Dump\s*\(")
SORT_RE = re.compile(r"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\(")

GUARD_RE = re.compile(r"#\s*ifndef\s+(HYPERTREE_\w+_H_)")


def lint_unordered_output(stripped_lines, raw_lines, path, findings):
    """Flags range-for loops over locally declared unordered containers
    whose body emits (print / stream / JSON) before any sort."""
    unordered_vars = set()
    for line in stripped_lines:
        for m in UNORDERED_DECL_RE.finditer(line):
            unordered_vars.add(m.group(1))
    if not unordered_vars:
        return
    for idx, line in enumerate(stripped_lines):
        m = RANGE_FOR_RE.search(line)
        if not m or m.group(1) not in unordered_vars:
            continue
        lineno = idx + 1
        if "{" not in line:
            # Single-statement loop: the body ends at the terminating
            # ';'. Emissions on later lines belong to code after the
            # loop, not to the loop (that false-positive class is now
            # the AST rule's territory).
            for j in range(idx, min(idx + 5, len(stripped_lines))):
                body = stripped_lines[j]
                if j > idx and SORT_RE.search(body):
                    break
                if EMIT_SINK_RE.search(body):
                    if not allowed(raw_lines, lineno, "unordered-output",
                                   TOOL):
                        findings.append(Finding(
                            path, lineno, "unordered-output",
                            f"iteration over unordered container "
                            f"'{m.group(1)}' feeds output; sort keys "
                            f"first"))
                    break
                if ";" in body:
                    break
            continue
        # Braced loop: until the braces opened at/after the for close
        # again (cheap depth scan, capped at 30 lines).
        depth = 0
        opened = False
        body_end = min(idx + 30, len(stripped_lines))
        for j in range(idx, body_end):
            depth += stripped_lines[j].count("{") - stripped_lines[j].count("}")
            if "{" in stripped_lines[j]:
                opened = True
            body = stripped_lines[j]
            if j > idx and SORT_RE.search(body):
                break  # sorted before emission: fine
            if EMIT_SINK_RE.search(body) and (j > idx or opened):
                if not allowed(raw_lines, lineno, "unordered-output", TOOL):
                    findings.append(Finding(
                        path, lineno, "unordered-output",
                        f"iteration over unordered container "
                        f"'{m.group(1)}' feeds output; sort keys first"))
                break
            if opened and depth <= 0:
                break


def lint_include_guard(stripped_text, raw_lines, path, findings):
    if not GUARD_RE.search(stripped_text):
        if not allowed(raw_lines, 1, "include-guard", TOOL):
            findings.append(Finding(
                path, 1, "include-guard",
                "header lacks a HYPERTREE_*_H_ include guard"))


def _in_compiled_dir(path, repo_root):
    rel = os.path.relpath(os.path.abspath(path), repo_root)
    rel = rel.replace(os.sep, "/")
    return any(rel == d or rel.startswith(d + "/") for d in COMPILED_DIRS)


def lint_file(path, repo_root=None, unordered_scope="uncompiled"):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.splitlines()

    findings = []
    for rule, pattern, message in PATTERN_RULES:
        for idx, line in enumerate(stripped_lines):
            if pattern.search(line):
                lineno = idx + 1
                if not allowed(raw_lines, lineno, rule, TOOL):
                    findings.append(Finding(path, lineno, rule, message))
    run_unordered = unordered_scope == "all" or repo_root is None \
        or not _in_compiled_dir(path, repo_root)
    if run_unordered:
        lint_unordered_output(stripped_lines, raw_lines, path, findings)
    if path.endswith(".h"):
        lint_include_guard(stripped, raw_lines, path, findings)
    return findings


def run_lint(paths, repo_root, unordered_scope):
    findings = []
    for f in collect_files(paths):
        findings.extend(lint_file(f, repo_root, unordered_scope))
    findings.sort(key=Finding.key)
    for finding in findings:
        print(finding)
    return findings


EXPECT_RE = re.compile(r"//\s*expect-lint:\s*([a-z0-9-]+)")


def self_test(repo_root):
    fixtures = os.path.join(repo_root, "tests", "lint_fixtures")
    return run_fixture_suite(
        os.path.join(fixtures, "good"), os.path.join(fixtures, "bad"),
        lambda f: lint_file(f, repo_root), EXPECT_RE, "lint")


def main(argv):
    script_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(script_dir)
    unordered_scope = "uncompiled"
    paths = []
    for a in argv:
        if a == "--self-test":
            return 0 if self_test(repo_root) else 1
        if a.startswith("--unordered-scope="):
            unordered_scope = a.split("=", 1)[1]
            if unordered_scope not in ("all", "uncompiled"):
                print(f"error: bad --unordered-scope {unordered_scope}",
                      file=sys.stderr)
                return 2
        elif a.startswith("--"):
            print(f"error: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if not paths:
        paths = [os.path.join(repo_root, d) for d in DEFAULT_DIRS]
    findings = run_lint(paths, repo_root, unordered_scope)
    if findings:
        print(f"\n{len(findings)} determinism lint finding(s). "
              "Suppress a deliberate use with '// lint: allow(<rule>)'.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
