#!/usr/bin/env bash
# Check-only clang-format gate over the C++ sources. Never rewrites files;
# prints a unified diff of what clang-format would change and exits
# nonzero if any file is mis-formatted.
#
#   scripts/check_format.sh [file ...]
#
# With no arguments, checks every tracked .h/.cc/.cpp under src/, tests/,
# tools/, bench/ and examples/. When clang-format is not installed the
# gate is skipped with exit 0 so local builds on minimal containers are
# not blocked; CI installs clang-format explicitly.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

clang_format="${CLANG_FORMAT:-clang-format}"
if ! command -v "${clang_format}" >/dev/null 2>&1; then
  echo "check_format: ${clang_format} not found; skipping (install clang-format to enable)"
  exit 0
fi

if [[ $# -gt 0 ]]; then
  files=("$@")
else
  mapfile -t files < <(git ls-files 'src/*.h' 'src/*.cc' 'src/*.cpp' \
    'tests/*.h' 'tests/*.cc' 'tools/*.h' 'tools/*.cc' \
    'bench/*.h' 'bench/*.cc' 'examples/*.h' 'examples/*.cc')
fi

status=0
for f in "${files[@]}"; do
  if ! diff -u --label "${f}" --label "${f} (formatted)" \
      "${f}" <("${clang_format}" --style=file "${f}") >/tmp/fmt_diff.$$; then
    status=1
    cat /tmp/fmt_diff.$$
  fi
done
rm -f /tmp/fmt_diff.$$

if [[ ${status} -ne 0 ]]; then
  echo ""
  echo "check_format: run '${clang_format} -i <file>' on the files above."
fi
exit "${status}"
