#!/usr/bin/env bash
# End-to-end smoke test for the hypertree_serve daemon (the CI "serve"
# job; see docs/SERVING.md).
#
#   scripts/run_serve_smoke.sh [options]
#
#   --build-dir=DIR   build tree holding tools/hypertree_serve (default:
#                     build)
#   --port=N          loopback port to pin (default 7411)
#   --work-dir=DIR    scratch directory for cache/metrics/witness files
#                     (default: a fresh serve-smoke/ under the build dir)
#
# Phase 1 boots a server with a cold persistent cache and drives it with
# hypertree_client over three bundled instances: every instance must be
# a cold miss (source "solved") first and a warm in-memory hit second,
# an isomorphically renamed copy of the gate instance must hit the SAME
# cache entry, and all hit witnesses must be byte-identical to the miss
# witnesses. Phase 2 kills the server, restarts it against the same
# cache directory, and requires every instance to answer from disk with
# identical bytes again. Finally the NDJSON access metrics are checked:
# the warm hit must be at least 100x faster than the cold solve of the
# gate instance, and a leaked server process fails the run.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${repo_root}/build"
port=7411
work_dir=""

for arg in "$@"; do
  case "${arg}" in
    --build-dir=*) build_dir="${arg#--build-dir=}" ;;
    --port=*) port="${arg#--port=}" ;;
    --work-dir=*) work_dir="${arg#--work-dir=}" ;;
    *)
      echo "unknown option: ${arg}" >&2
      echo "usage: scripts/run_serve_smoke.sh [--build-dir=DIR] [--port=N] [--work-dir=DIR]" >&2
      exit 2
      ;;
  esac
done

serve_bin="${build_dir}/tools/hypertree_serve"
client_bin="${build_dir}/tools/hypertree_client"
for bin in "${serve_bin}" "${client_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "serve-smoke: missing binary ${bin} (build the tools target first)" >&2
    exit 1
  fi
done

if [[ -z "${work_dir}" ]]; then
  work_dir="${build_dir}/serve-smoke"
fi
rm -rf "${work_dir}"
mkdir -p "${work_dir}"
cache_dir="${work_dir}/cache"

# gate instance first: its cold solve is slow enough (~100 ms) to make
# the 100x hit-latency assertion meaningful.
gate_instance="random_25_30"
instances=("${gate_instance}" "adder_8" "cycle_10_3")

server_pid=0
stop_server() {
  if [[ "${server_pid}" -ne 0 ]] && kill -0 "${server_pid}" 2>/dev/null; then
    kill "${server_pid}" 2>/dev/null || true
    wait "${server_pid}" 2>/dev/null || true
  fi
  server_pid=0
}
trap stop_server EXIT

start_server() {
  local metrics_file="$1" log_file="$2"
  "${serve_bin}" --port="${port}" --cache-dir="${cache_dir}" \
    --metrics="${metrics_file}" > "${log_file}" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 50); do
    if grep -q "listening on" "${log_file}" 2>/dev/null; then
      return 0
    fi
    if ! kill -0 "${server_pid}" 2>/dev/null; then
      echo "serve-smoke: server died on startup:" >&2
      cat "${log_file}" >&2
      exit 1
    fi
    sleep 0.1
  done
  echo "serve-smoke: server never reported listening" >&2
  exit 1
}

shutdown_server() {
  "${client_bin}" --port="${port}" shutdown --quiet
  for _ in $(seq 1 50); do
    if ! kill -0 "${server_pid}" 2>/dev/null; then
      wait "${server_pid}" 2>/dev/null || true
      server_pid=0
      return 0
    fi
    sleep 0.1
  done
  echo "serve-smoke: server process ${server_pid} leaked past shutdown" >&2
  exit 1
}

# An isomorphic rename of the gate instance: fresh vertex/edge names,
# shuffled edge order and member order, fixed seed so runs are
# reproducible. Structurally the same hypergraph, so the server must
# answer it from the gate instance's cache entry.
python3 - "${repo_root}/data/${gate_instance}.hg" \
  "${work_dir}/renamed.hg" <<'EOF'
import random
import re
import sys

text = open(sys.argv[1]).read()
edges = [[v.strip() for v in m.group(2).split(",")]
         for m in re.finditer(r"(\w+)\s*\(([^)]*)\)", text)]
vertices = sorted({v for e in edges for v in e})
rng = random.Random(20260808)
new_names = ["q" + str(i) for i in range(len(vertices))]
rng.shuffle(new_names)
rename = dict(zip(vertices, new_names))
rng.shuffle(edges)
lines = []
for i, members in enumerate(edges):
    rng.shuffle(members)
    lines.append("atom%d(%s)" % (i, ",".join(rename[v] for v in members)))
open(sys.argv[2], "w").write(",\n".join(lines) + ".\n")
EOF

echo "serve-smoke: phase 1 (cold misses, warm hits, rename hit) on port ${port}"
start_server "${work_dir}/metrics_phase1.ndjson" "${work_dir}/server_phase1.log"

for name in "${instances[@]}"; do
  "${client_bin}" --port="${port}" decompose "${repo_root}/data/${name}.hg" \
    --expect-source=solved --witness-out="${work_dir}/${name}.cold.ghd" --quiet
  "${client_bin}" --port="${port}" decompose "${repo_root}/data/${name}.hg" \
    --expect-source=memory --witness-out="${work_dir}/${name}.warm.ghd" --quiet
  cmp "${work_dir}/${name}.cold.ghd" "${work_dir}/${name}.warm.ghd" || {
    echo "serve-smoke: warm hit witness differs from cold solve for ${name}" >&2
    exit 1
  }
done

"${client_bin}" --port="${port}" decompose "${work_dir}/renamed.hg" \
  --expect-source=memory --witness-out="${work_dir}/renamed.ghd" --quiet
cmp "${work_dir}/${gate_instance}.cold.ghd" "${work_dir}/renamed.ghd" || {
  echo "serve-smoke: renamed-instance witness differs from the original" >&2
  exit 1
}

"${client_bin}" --port="${port}" stats --quiet
shutdown_server

echo "serve-smoke: phase 2 (restart; every instance must hit the disk cache)"
start_server "${work_dir}/metrics_phase2.ndjson" "${work_dir}/server_phase2.log"

for name in "${instances[@]}"; do
  "${client_bin}" --port="${port}" decompose "${repo_root}/data/${name}.hg" \
    --expect-source=disk --witness-out="${work_dir}/${name}.disk.ghd" --quiet
  cmp "${work_dir}/${name}.cold.ghd" "${work_dir}/${name}.disk.ghd" || {
    echo "serve-smoke: disk hit witness differs from cold solve for ${name}" >&2
    exit 1
  }
done

shutdown_server

cat "${work_dir}/metrics_phase1.ndjson" "${work_dir}/metrics_phase2.ndjson" \
  > "${work_dir}/metrics.ndjson"

# Gate: in the phase-1 metrics, the gate instance's warm memory hit must
# be at least 100x faster than its cold solve.
python3 - "${work_dir}/metrics_phase1.ndjson" <<'EOF'
import json
import sys

records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
solves = {}
for r in records:
    if r.get("op") != "decompose":
        continue
    if r.get("source") == "solved":
        solves[r["key"]] = r["wall_ms"]
    elif r.get("source") == "memory" and r["key"] in solves:
        cold, hit = solves[r["key"]], r["wall_ms"]
        ratio = cold / hit if hit > 0 else float("inf")
        print("serve-smoke: key %s cold %.2f ms, hit %.4f ms (%.0fx)"
              % (r["key"][:12], cold, hit, ratio))
        if cold >= 50 and ratio < 100:
            sys.exit("serve-smoke: hit only %.0fx faster than cold solve "
                     "(needed 100x)" % ratio)
        solves.pop(r["key"])
EOF

echo "serve-smoke: OK (witnesses byte-identical across memory, disk and solve)"
