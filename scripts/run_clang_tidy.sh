#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy at the repo root) over the library
# and tool sources using the compile database that every CMake configure
# exports.
#
#   scripts/run_clang_tidy.sh [build-dir]
#
# The build directory (default: build) must have been configured already;
# CMAKE_EXPORT_COMPILE_COMMANDS is always on, so any configured tree
# works. When clang-tidy is not installed the gate is skipped with exit 0
# so minimal containers are not blocked; CI installs clang-tidy
# explicitly.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

clang_tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${clang_tidy}" >/dev/null 2>&1; then
  echo "run_clang_tidy: ${clang_tidy} not found; skipping (install clang-tidy to enable)"
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run_clang_tidy: ${build_dir}/compile_commands.json missing;" \
       "configure first: cmake -B ${build_dir} -S ${repo_root}" >&2
  exit 2
fi

cd "${repo_root}"
mapfile -t sources < <(git ls-files 'src/*.cc' 'tools/*.cc' 'bench/*.cc')

# run-clang-tidy parallelizes when available; otherwise iterate.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "${clang_tidy}" -p "${build_dir}" \
    -quiet "${sources[@]}"
else
  status=0
  for f in "${sources[@]}"; do
    "${clang_tidy}" -p "${build_dir}" --quiet "${f}" || status=1
  done
  exit "${status}"
fi
