#!/usr/bin/env python3
"""Compare two BENCH.json reports produced by scripts/run_benchmarks.sh.

    scripts/check_bench_regression.py BASELINE.json CURRENT.json \
        [--wall-ratio=1.5] [--wall-floor-ms=50] [--allow-new]

Records are matched on (bench, instance, algorithm). The check fails when

  * a record marked deterministic in both reports differs in width, exact,
    lower_bound or nodes — these must be bit-identical between runs;
  * a deterministic record's wall_ms regresses by more than --wall-ratio
    AND by more than --wall-floor-ms (the absolute floor keeps sub-
    millisecond noise from failing the build);
  * a baseline record is missing from the current report. This is ALWAYS
    a failure — a run that silently drops records (a bench crashed, a row
    was deleted while adding another) must not pass. There is
    deliberately no flag to downgrade it; refresh the baseline when a
    record is removed on purpose;
  * the current report has a record the baseline lacks, unless
    --allow-new is given (use it when a change intentionally adds rows,
    e.g. a new algorithm column).

Records may carry a `throughput` object with derived rates (rows_per_s,
queries_per_s). These are informational only: drift beyond --wall-ratio
in either direction is printed as a warning so dashboards can see it,
but never fails the check — wall_ms is the one gating time field.

--ignore-wall skips the wall_ms comparison and checks only the
bit-identical result fields. Use it (typically with --allow-new) to
validate an intentional performance change: the new report must keep every
deterministic width/exact/lower_bound/nodes value, while wall time is
expected to move.

Exit status: 0 clean, 1 regression(s) found, 2 usage / unreadable input.
"""

import argparse
import json
import signal
import sys

# Die quietly when piped into head/less instead of tracebacking.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not isinstance(data, list):
        sys.exit(f"error: {path}: expected a JSON array of records")
    out = {}
    counts = {}
    for i, rec in enumerate(data):
        if not isinstance(rec, dict):
            sys.exit(f"error: {path}: record {i} is not an object")
        base_key = (rec.get("bench"), rec.get("instance"), rec.get("algorithm"))
        if None in base_key:
            sys.exit(f"error: {path}: record {i} lacks bench/instance/algorithm")
        # A bench may record the same (instance, algorithm) more than once
        # (e.g. one row per table section); the file order is deterministic,
        # so an occurrence index keeps the pairing stable across runs.
        n = counts.get(base_key, 0)
        counts[base_key] = n + 1
        out[base_key + (n,)] = rec
    return out


def fmt(key):
    s = f"{key[0]} / {key[1]} / {key[2]}"
    if key[3] > 0:
        s += f" (occurrence {key[3] + 1})"
    return s


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--wall-ratio", type=float, default=1.5,
                    help="fail when wall_ms grows beyond this factor (default 1.5)")
    ap.add_argument("--wall-floor-ms", type=float, default=50.0,
                    help="ignore wall regressions below this absolute size (default 50)")
    ap.add_argument("--allow-new", action="store_true",
                    help="do not fail on records the baseline lacks "
                         "(dropped baseline records still fail)")
    ap.add_argument("--ignore-wall", action="store_true",
                    help="compare only deterministic result fields, not wall_ms")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = []
    warnings = []
    compared = 0

    for key in sorted(set(base) | set(cur)):
        if key not in cur:
            # A dropped record can hide a crashed bench or a silently
            # deleted row; never downgrade this to a warning.
            failures.append(f"baseline record missing from current: {fmt(key)}")
            continue
        if key not in base:
            msg = f"new record (not in baseline): {fmt(key)}"
            (warnings if args.allow_new else failures).append(msg)
            continue
        b, c = base[key], cur[key]
        compared += 1

        deterministic = b.get("deterministic") and c.get("deterministic")
        if deterministic:
            for field in ("width", "exact", "lower_bound", "nodes"):
                if b.get(field) != c.get(field):
                    failures.append(
                        f"{fmt(key)}: {field} changed "
                        f"{b.get(field)!r} -> {c.get(field)!r}")
        else:
            # Interrupted / budgeted searches abort at timing-dependent
            # points; widths and node counts are allowed to drift.
            warnings.append(f"non-deterministic, widths not compared: {fmt(key)}")
            continue

        # Throughput rates (rows_per_s / queries_per_s) are informational
        # only: their drift is reported as a warning so dashboards can
        # see it, but never fails the check — wall_ms above is the one
        # gating time field.
        bt, ct = b.get("throughput"), c.get("throughput")
        if isinstance(bt, dict) and isinstance(ct, dict):
            for rate in sorted(set(bt) & set(ct)):
                bv, cv = bt.get(rate), ct.get(rate)
                if not isinstance(bv, (int, float)) or not isinstance(cv, (int, float)):
                    continue
                if bv > 0 and (cv < bv / args.wall_ratio or cv > bv * args.wall_ratio):
                    warnings.append(
                        f"informational: {fmt(key)}: {rate} "
                        f"{bv:.0f} -> {cv:.0f} ({cv / bv:.2f}x)")

        if args.ignore_wall:
            continue
        bw, cw = b.get("wall_ms"), c.get("wall_ms")
        if isinstance(bw, (int, float)) and isinstance(cw, (int, float)):
            if cw > bw * args.wall_ratio and cw - bw > args.wall_floor_ms:
                failures.append(
                    f"{fmt(key)}: wall_ms regressed {bw:.1f} -> {cw:.1f} "
                    f"({cw / bw if bw > 0 else float('inf'):.2f}x, "
                    f"threshold {args.wall_ratio:.2f}x)")

    print(f"compared {compared} record(s): "
          f"{len(failures)} failure(s), {len(warnings)} warning(s)")
    for msg in warnings:
        print(f"  warning: {msg}")
    for msg in failures:
        print(f"  FAIL: {msg}")
    if failures:
        print("benchmark regression check FAILED")
        return 1
    print("benchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
