#!/usr/bin/env python3
"""ht-analyze: semantic static analysis enforcing the repo's concurrency,
determinism, and kernel-purity contracts.

The determinism lint (check_determinism_lint.py) bans *textual* hazards;
this pass enforces the contracts that are structural: what a lambda
captures across a thread boundary, whether an `HT_DCHECK` operand has a
side effect that vanishes under NDEBUG, whether a kernel backend stays
pure, and whether every atomic access names its memory order. It runs on
a micro-AST (tokens + matched paren/brace trees + per-TU declaration
tables) built by a tokenizer that needs no compiler, and optionally
sharpens its type facts through clang when one is installed:

  backend 'libclang'   clang.cindex over compile_commands.json — cross-TU
                       type resolution for atomics / unordered containers.
  backend 'clang-json' `clang++ -fsyntax-only -Xclang -ast-dump=json` per
                       TU, declarations harvested from the dump.
  backend 'builtin'    tokenizer-only (always available; the two clang
                       backends *add* declaration facts on top of it).

`--backend=auto` (default) picks the best available. All rules run — and
the self-test passes — under every backend; clang only removes
false-positive risk on receivers declared in headers the builtin
declaration scan cannot see.

Usage:
    scripts/ht_analyze.py                      # analyze src/ tools/ bench/
    scripts/ht_analyze.py PATH...              # analyze explicit paths
    scripts/ht_analyze.py --self-test          # fixture suite
    scripts/ht_analyze.py --build-dir=build    # use build/compile_commands.json
    scripts/ht_analyze.py --cache=FILE         # reuse per-file results across
                                               # runs (keyed by content hash)
    scripts/ht_analyze.py --list-rules         # print the rule catalog

Escape hatch: `// ht-analyze: allow(<rule-id>)` on the offending line or
the line directly above suppresses exactly that rule on that line (shared
grammar with the determinism lint; see scripts/lint_common.py).

Rules (ids are stable; full catalog in docs/STATIC_ANALYSIS.md):
    pool-capture      lambdas handed to ThreadPool::Submit / RunForAll /
                      RunTreeBottomUp / RunTreeTopDown must name every
                      capture: no `[&]` / `[=]` capture-defaults, no
                      `this`. What crosses the thread boundary must be
                      visible at the submission site.
    dcheck-purity     HT_DCHECK* operands must be side-effect free
                      (no assignment, ++/--, or mutating member calls) —
                      they compile to nothing under NDEBUG.
    kernel-purity     compute backends under src/kernels (namespace
                      scalar/avx2 + kernels_avx2.cc/kernels_internal.h)
                      may not allocate, lock, touch the pool, do I/O,
                      bump metrics, or keep function-local statics.
    atomic-order      every atomic load/store/exchange/CAS/fetch-op must
                      pass an explicit std::memory_order (no silent
                      seq_cst), and no ++/--/= operator forms on atomics.
    relaxed-publish   memory_order_relaxed on an atomic whose name says
                      it publishes a result (winner/prover/witness/...)
                      needs a written justification via the allow hatch.
    no-exceptions     no throw/try/catch — the library is contract-
                      checked (HT_CHECK aborts), not exception-safe.
    unordered-output  range-for over an unordered container whose body
                      emits (stream/printf/JSON) without sorting first —
                      AST-level successor of the regex rule, with real
                      loop bodies instead of a 30-line window.
"""

import hashlib
import json
import os
import re
import shutil
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from lint_common import (Finding, allowed, collect_files,
                         run_fixture_suite, strip_comments_and_strings)

TOOL = "ht-analyze"
DEFAULT_DIRS = ("src", "tools", "bench", "fuzz")

# Bump when rule behavior changes: invalidates --cache entries.
RULES_VERSION = 1

# ---------------------------------------------------------------------------
# Tokenizer + micro-AST
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(r"""
    (?P<id>[A-Za-z_]\w*)
  | (?P<num>\.?\d(?:[\w.]|[eEpP][+-])*)
  | (?P<punct><<=|>>=|\.\.\.|->\*|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
             |\+=|-=|\*=|/=|%=|&=|\|=|\^=|[-+*/%&|^!~<>=?:;,.(){}\[\]#\\])
""", re.VERBOSE)

_OPEN = {"(": ")", "{": "}", "[": "]"}


class Tok:
    __slots__ = ("kind", "text", "line", "match")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line
        self.match = -1  # index of partner bracket for ( { [ and ) } ]

    def __repr__(self):
        return f"{self.text}@{self.line}"


def tokenize(stripped_text):
    """Tokens over comment/string-stripped text; string literals collapse
    to an empty-string token so argument structure survives."""
    toks = []
    for lineno, line in enumerate(stripped_text.splitlines(), start=1):
        for m in _TOKEN_RE.finditer(line):
            kind = m.lastgroup
            toks.append(Tok(kind, m.group(), lineno))
    # Match brackets (unbalanced files — macros etc. — leave match = -1).
    stack = []
    for i, t in enumerate(toks):
        if t.text in _OPEN:
            stack.append(i)
        elif t.text in (")", "}", "]"):
            while stack:
                j = stack.pop()
                if _OPEN[toks[j].text] == t.text:
                    toks[j].match = i
                    t.match = j
                    break
    return toks


def prev_sig(toks, i):
    """Index of the previous token, -1 at the start."""
    return i - 1 if i > 0 else -1


def receiver_base(toks, i):
    """Given `i` at a `.` or `->` token, walks the receiver chain left and
    returns the base identifier token (e.g. `pending` for
    `pending[p].fetch_sub`), or None when the receiver is an expression
    with no single base (function call result, cast, ...)."""
    j = i - 1
    # Skip over balanced ] or ) groups and chained member accesses.
    while j >= 0:
        t = toks[j]
        if t.text in ("]", ")") and t.match >= 0:
            j = t.match - 1
            continue
        if t.kind == "id":
            # Continue left through `a.b`, `a->b`, `A::b` chains.
            if j >= 1 and toks[j - 1].text in (".", "->", "::"):
                j -= 2
                continue
            return t
        return None
    return None


# ---------------------------------------------------------------------------
# Declaration tables (builtin backend) — name -> "flavor" facts harvested
# from declarations in the file and the project headers it includes.
# ---------------------------------------------------------------------------

# `std::atomic<int> x;`, `std::atomic_bool f;`, `atomic<T>* p`,
# `std::vector<std::atomic<int>> pending;` — any declaration whose type
# text mentions atomic marks every declared name as atomic-flavored.
_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|inline\s+|const\s+)*"
    r"(?P<type>(?:[\w:]+\s*<[^;={]*>|[\w:]+))\s*[&*]*\s*"
    r"(?P<name>\w+)\s*(?:[;={(,)\[]|$)")

_INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')


_TYPE_WORDS = {"int", "long", "short", "char", "bool", "float", "double",
               "size_t", "auto", "unsigned", "signed", "uint64_t", "int64_t",
               "uint32_t", "int32_t", "uint8_t"}


def _scan_decls(stripped_lines):
    """(atomic names, unordered-container names, shadowed names): a name
    declared atomic in one scope and non-atomic in another (the
    declaration scan is file-global, not scope-aware) lands in `shadowed`
    and is excluded from the receiver-type heuristics."""
    atomics, unordered, plain = set(), set(), set()
    for line in stripped_lines:
        m = _DECL_RE.match(line)
        if not m:
            continue
        type_text = m.group("type")
        name = m.group("name")
        if "atomic" in type_text:
            atomics.add(name)
        else:
            head = type_text.split("<")[0].split("::")[-1].strip()
            if head in _TYPE_WORDS or head[:1].isupper() \
                    or head.endswith("_t") or "unordered_" in type_text \
                    or head in ("vector", "string", "deque", "array"):
                plain.add(name)
        if "unordered_" in type_text:
            unordered.add(name)
    return atomics, unordered, atomics & plain


class DeclTable:
    """Atomic / unordered-container names visible to one file: its own
    declarations plus those of project headers it includes (one level,
    which covers the `foo.cc includes foo.h` member pattern)."""

    _header_cache = {}

    def __init__(self, path, stripped_lines, repo_root):
        self.atomics, self.unordered, self.shadowed = _scan_decls(
            stripped_lines)
        text = "\n".join(stripped_lines)
        for inc in _INCLUDE_RE.findall(text):
            hdr = os.path.join(repo_root, "src", inc)
            if not os.path.isfile(hdr):
                hdr = os.path.join(os.path.dirname(path), inc)
            if not os.path.isfile(hdr):
                continue
            hdr = os.path.normpath(hdr)
            if hdr not in DeclTable._header_cache:
                try:
                    with open(hdr, encoding="utf-8", errors="replace") as f:
                        hdr_stripped = strip_comments_and_strings(f.read())
                    DeclTable._header_cache[hdr] = _scan_decls(
                        hdr_stripped.splitlines())
                except OSError:
                    DeclTable._header_cache[hdr] = (set(), set(), set())
            a, u, s = DeclTable._header_cache[hdr]
            self.atomics |= a
            self.unordered |= u
            self.shadowed |= s


# ---------------------------------------------------------------------------
# Optional clang backends: add declaration facts the builtin scan missed.
# ---------------------------------------------------------------------------

def _load_compile_db(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(path):
        return None
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError):
        return None


def _libclang_available():
    try:
        import clang.cindex  # noqa: F401
        return True
    except ImportError:
        return False


def _clang_json_available():
    return shutil.which("clang++") is not None


def pick_backend(requested):
    if requested != "auto":
        return requested
    if _libclang_available():
        return "libclang"
    if _clang_json_available():
        return "clang-json"
    return "builtin"


def _augment_decls_libclang(path, table, compile_db, warnings):
    """Walks the clang AST for `path` and adds every VarDecl/FieldDecl
    whose canonical type mentions atomic / unordered_. Best effort: any
    failure falls back to the builtin facts."""
    try:
        import clang.cindex as ci
        args = []
        for entry in compile_db or []:
            if os.path.normpath(entry.get("file", "")) == os.path.normpath(
                    path):
                args = [a for a in entry.get("command", "").split()[1:]
                        if a != "-c" and not a.endswith(".cc")
                        and a != "-o" and not a.endswith(".o")]
                break
        index = ci.Index.create()
        tu = index.parse(path, args=args)
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (ci.CursorKind.VAR_DECL, ci.CursorKind.FIELD_DECL,
                            ci.CursorKind.PARM_DECL):
                spelling = cur.type.get_canonical().spelling
                if "atomic" in spelling:
                    table.atomics.add(cur.spelling)
                if "unordered_" in spelling:
                    table.unordered.add(cur.spelling)
    except Exception as e:  # defensive: clang must never break the gate
        warnings.append(f"libclang backend degraded for {path}: {e}")


def _augment_decls_clang_json(path, table, compile_db, warnings):
    """Harvests declarations from `clang++ -Xclang -ast-dump=json`."""
    try:
        args = ["clang++", "-fsyntax-only", "-Xclang", "-ast-dump=json"]
        for entry in compile_db or []:
            if os.path.normpath(entry.get("file", "")) == os.path.normpath(
                    path):
                extra = [a for a in entry.get("command", "").split()[1:]]
                args += [a for a in extra
                         if a.startswith(("-I", "-D", "-std", "-isystem"))]
                break
        out = subprocess.run(args + [path], capture_output=True, text=True,
                             timeout=120)
        if out.returncode != 0 or not out.stdout:
            return
        ast = json.loads(out.stdout)

        def walk(node):
            if isinstance(node, dict):
                if node.get("kind") in ("VarDecl", "FieldDecl", "ParmVarDecl"):
                    qual = node.get("type", {}).get("qualType", "")
                    name = node.get("name")
                    if name:
                        if "atomic" in qual:
                            table.atomics.add(name)
                        if "unordered_" in qual:
                            table.unordered.add(name)
                for v in node.values():
                    walk(v)
            elif isinstance(node, list):
                for v in node:
                    walk(v)

        walk(ast)
    except Exception as e:
        warnings.append(f"clang-json backend degraded for {path}: {e}")


# ---------------------------------------------------------------------------
# Rule implementations. Each takes (ctx) and appends to ctx.findings.
# ---------------------------------------------------------------------------

POOL_ENTRYPOINTS = {"Submit", "RunForAll", "RunTreeBottomUp", "RunTreeTopDown"}

DCHECK_MACROS = {"HT_DCHECK", "HT_DCHECK_EQ", "HT_DCHECK_NE", "HT_DCHECK_LT",
                 "HT_DCHECK_LE", "HT_DCHECK_GT", "HT_DCHECK_GE"}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=",
              ">>="}

MUTATING_METHODS = {"push_back", "pop_back", "emplace", "emplace_back",
                    "insert", "erase", "clear", "reset", "release", "resize",
                    "reserve", "assign", "swap", "store", "exchange",
                    "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
                    "fetch_xor", "Cancel", "Submit", "Increment", "Add"}

ATOMIC_METHODS = {"load", "store", "exchange", "compare_exchange_weak",
                  "compare_exchange_strong", "fetch_add", "fetch_sub",
                  "fetch_and", "fetch_or", "fetch_xor"}

# These member names are atomic-only in practice: require an explicit
# order even when the receiver's declaration is out of scan reach.
ATOMIC_ONLY_METHODS = {"compare_exchange_weak", "compare_exchange_strong",
                       "fetch_add", "fetch_sub", "fetch_and", "fetch_or",
                       "fetch_xor"}

PUBLISH_NAME_RE = re.compile(
    r"best|prover|winner|publish|witness|proved|solved|result",
    re.IGNORECASE)

KERNEL_BANNED = {
    "new": "allocates", "delete": "frees", "malloc": "allocates",
    "calloc": "allocates", "realloc": "allocates", "free": "frees",
    "aligned_alloc": "allocates",
    "push_back": "grows a container", "emplace_back": "grows a container",
    "resize": "grows a container", "reserve": "grows a container",
    "insert": "grows a container",
    "mutex": "takes a lock", "lock_guard": "takes a lock",
    "unique_lock": "takes a lock", "scoped_lock": "takes a lock",
    "condition_variable": "blocks",
    "Submit": "touches the thread pool", "Wait": "touches the thread pool",
    "printf": "does I/O", "fprintf": "does I/O", "cout": "does I/O",
    "cerr": "does I/O", "fopen": "does I/O", "ofstream": "does I/O",
    "ifstream": "does I/O", "fstream": "does I/O",
    "GetCounter": "touches global metrics",
    "Increment": "touches global metrics",
    "throw": "raises", "static": "keeps mutable static state",
    "thread_local": "keeps thread-local state",
}

EMIT_STREAMS = {"os", "out", "cout", "cerr", "oss", "ss", "stream", "o"}
EMIT_CALLS = {"printf", "fprintf", "puts", "fputs", "Set", "Dump", "Append"}
SORT_CALLS = {"sort", "stable_sort"}


class FileContext:
    def __init__(self, path, raw_lines, toks, decls, repo_root):
        self.path = path
        self.raw_lines = raw_lines
        self.toks = toks
        self.decls = decls
        self.repo_root = repo_root
        self.findings = []

    def report(self, lineno, rule, message):
        if not allowed(self.raw_lines, lineno, rule, TOOL):
            self.findings.append(Finding(self.path, lineno, rule, message))


def _lambda_starts(toks, lo, hi):
    """Indices of `[` tokens opening lambda-introducers in argument
    position within [lo, hi): preceded by `(` or `,` (a `[` after an
    identifier or `]`/`)` is a subscript)."""
    out = []
    for i in range(lo, hi):
        if toks[i].text != "[" or toks[i].match < 0:
            continue
        p = prev_sig(toks, i)
        if p >= 0 and toks[p].text in ("(", ","):
            out.append(i)
    return out


def rule_pool_capture(ctx):
    toks = ctx.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in POOL_ENTRYPOINTS:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        # Skip declarations/definitions: in `void Submit(std::function...)`
        # or `int RunForAll(int count, ...)` the name is preceded by a
        # type token; call sites have `.`/`->`/`(`/`,`/`;`/... before it.
        p = prev_sig(toks, i)
        if p >= 0 and toks[p].kind == "id":
            continue
        close = toks[i + 1].match
        if close < 0:
            continue
        for lb in _lambda_starts(toks, i + 2, close):
            rb = toks[lb].match
            # Parse the capture list: top-level comma-separated items.
            j = lb + 1
            depth = 0
            item_start = j
            items = []
            while j <= rb:
                txt = toks[j].text
                if txt in _OPEN:
                    depth += 1
                elif txt in (")", "}", "]") and j != rb:
                    depth -= 1
                if (txt == "," and depth == 0) or j == rb:
                    items.append((item_start, j))
                    item_start = j + 1
                j += 1
            for (s, e) in items:
                item = [tok.text for tok in toks[s:e]]
                if not item:
                    continue
                if item == ["&"]:
                    ctx.report(
                        toks[s].line, "pool-capture",
                        f"lambda passed to {t.text}() uses capture-default "
                        f"[&]: name every capture that crosses the thread "
                        f"boundary explicitly")
                elif item == ["="]:
                    ctx.report(
                        toks[s].line, "pool-capture",
                        f"lambda passed to {t.text}() uses capture-default "
                        f"[=]: name every capture explicitly")
                elif item == ["this"] or item[:1] == ["this"]:
                    ctx.report(
                        toks[s].line, "pool-capture",
                        f"lambda passed to {t.text}() captures `this`: the "
                        f"object must outlive the pool wait; capture the "
                        f"needed members explicitly")


def rule_dcheck_purity(ctx):
    toks = ctx.toks
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in DCHECK_MACROS:
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        p = prev_sig(toks, i)
        if p >= 0 and toks[p].text == "#":  # the macro's own #define lines
            continue
        if p >= 0 and toks[p].kind == "id" and toks[p].text == "define":
            continue
        close = toks[i + 1].match
        if close < 0:
            continue
        j = i + 2
        while j < close:
            tok = toks[j]
            if tok.text in ("++", "--"):
                ctx.report(tok.line, "dcheck-purity",
                           f"{t.text} operand mutates ({tok.text}): "
                           f"DCHECK operands vanish under NDEBUG")
            elif tok.text in ASSIGN_OPS:
                # `=` inside a lambda introducer / default arg is not an
                # operand mutation; lambdas inside DCHECKs are flagged as
                # calls anyway if they mutate. Only top-level-ish `=`.
                ctx.report(tok.line, "dcheck-purity",
                           f"{t.text} operand assigns ({tok.text}): "
                           f"DCHECK operands vanish under NDEBUG")
            elif (tok.kind == "id" and tok.text in MUTATING_METHODS
                  and j + 1 < close and toks[j + 1].text == "("
                  and j > 0 and toks[j - 1].text in (".", "->")):
                ctx.report(tok.line, "dcheck-purity",
                           f"{t.text} operand calls mutating member "
                           f"`{tok.text}()`: DCHECK operands vanish under "
                           f"NDEBUG")
            j += 1


def _kernel_pure_regions(ctx):
    """Line ranges inside src/kernels where purity is enforced: namespace
    blocks literally named scalar or avx2, or the whole file for the
    dedicated compute TUs."""
    base = os.path.basename(ctx.path)
    if base in ("kernels_avx2.cc", "kernels_internal.h"):
        return [(1, len(ctx.raw_lines) + 1)]
    toks = ctx.toks
    regions = []
    for i, t in enumerate(toks):
        if (t.kind == "id" and t.text == "namespace" and i + 2 < len(toks)
                and toks[i + 1].kind == "id"
                and toks[i + 1].text in ("scalar", "avx2")
                and toks[i + 2].text == "{" and toks[i + 2].match >= 0):
            regions.append((t.line, toks[toks[i + 2].match].line + 1))
    return regions


def rule_kernel_purity(ctx):
    # Not path-gated: `namespace scalar` / `namespace avx2` are reserved
    # backend names wherever they appear (which keeps the rule testable
    # from fixtures), and the two dedicated compute TUs are whole-file.
    regions = _kernel_pure_regions(ctx)
    if not regions:
        return

    def in_region(line):
        return any(lo <= line < hi for lo, hi in regions)

    for i, t in enumerate(ctx.toks):
        why = KERNEL_BANNED.get(t.text)
        if why is None or not in_region(t.line):
            continue
        # `static` at namespace scope (internal linkage helpers) is fine;
        # only function-local statics are state. Heuristic: a `static`
        # directly after `{` or `;` inside a function body — approximate
        # by requiring the next tokens NOT to form a function signature
        # `static T Name(`; kernels_internal's `static` dispatch-table
        # members are declarations (followed by a signature).
        if t.text in ("static", "thread_local"):
            # `static const`/`static constexpr` is an immutable init-once
            # value (the dispatch tables), not mutable state.
            if i + 1 < len(ctx.toks) and ctx.toks[i + 1].text in (
                    "const", "constexpr"):
                continue
            k = i + 1
            # Skip type tokens to find `name (` (declaration) vs `name =`.
            sig = False
            steps = 0
            while k < len(ctx.toks) and steps < 8:
                if ctx.toks[k].text == "(":
                    sig = True
                    break
                if ctx.toks[k].text in ("=", "{", ";"):
                    break
                k += 1
                steps += 1
            if sig:
                continue
        if t.kind == "id" and t.text not in ("new", "delete", "throw",
                                             "static", "thread_local"):
            # Require call/type-use position to cut accidental name hits.
            nxt = ctx.toks[i + 1].text if i + 1 < len(ctx.toks) else ""
            prv = ctx.toks[i - 1].text if i > 0 else ""
            if nxt not in ("(", "<", "{") and prv not in ("::",):
                continue
        ctx.report(t.line, "kernel-purity",
                   f"kernel backend {why} (`{t.text}`): compute kernels "
                   f"must stay pure (no allocation/locks/I/O/global state)")


def rule_atomic_order(ctx):
    toks = ctx.toks
    atomics = ctx.decls.atomics
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ATOMIC_METHODS:
            continue
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue
        if i + 1 >= len(toks) or toks[i + 1].text != "(":
            continue
        base = receiver_base(toks, i - 1)
        is_atomic = (t.text in ATOMIC_ONLY_METHODS
                     or (base is not None and base.text in atomics
                         and base.text not in ctx.decls.shadowed))
        if not is_atomic:
            continue
        close = toks[i + 1].match
        if close < 0:
            continue
        args = [tok.text for tok in toks[i + 2:close]]
        has_order = any(a.startswith("memory_order") for a in args)
        if not has_order:
            ctx.report(t.line, "atomic-order",
                       f"atomic {t.text}() without an explicit "
                       f"std::memory_order (silent seq_cst): state the "
                       f"ordering the algorithm actually needs")
        elif "memory_order_relaxed" in args and base is not None \
                and PUBLISH_NAME_RE.search(base.text):
            ctx.report(t.line, "relaxed-publish",
                       f"memory_order_relaxed on publishing atomic "
                       f"`{base.text}`: justify with "
                       f"// ht-analyze: allow(relaxed-publish) why relaxed "
                       f"ordering cannot unpublish or tear the result")
    # Operator forms on known atomics: ++/--/assignment are seq_cst and
    # hide the ordering decision entirely.
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in atomics \
                or t.text in ctx.decls.shadowed:
            continue
        nxt = toks[i + 1] if i + 1 < len(toks) else None
        prv = toks[i - 1] if i > 0 else None
        if nxt is not None and nxt.text in ("++", "--"):
            ctx.report(t.line, "atomic-order",
                       f"operator {nxt.text} on atomic `{t.text}` is an "
                       f"implicit seq_cst RMW: use fetch_add/fetch_sub "
                       f"with an explicit order")
        if prv is not None and prv.text in ("++", "--"):
            ctx.report(t.line, "atomic-order",
                       f"operator {prv.text} on atomic `{t.text}` is an "
                       f"implicit seq_cst RMW: use fetch_add/fetch_sub "
                       f"with an explicit order")
        if (nxt is not None and nxt.text in ASSIGN_OPS and nxt.text == "="
                and prv is not None
                and prv.text in (";", "{", "}", ")", ":")):
            ctx.report(t.line, "atomic-order",
                       f"operator= on atomic `{t.text}` is an implicit "
                       f"seq_cst store: use store() with an explicit order")


def rule_no_exceptions(ctx):
    for t in ctx.toks:
        if t.kind == "id" and t.text in ("throw", "try", "catch"):
            ctx.report(t.line, "no-exceptions",
                       f"`{t.text}` is banned: the library reports broken "
                       f"contracts via HT_CHECK (abort) and recoverable "
                       f"failures via std::optional/error strings")


def _range_for_target(toks, for_idx):
    """For `for (` at for_idx(+1): returns (colon_idx, base_token) of a
    range-for, else (None, None)."""
    if for_idx + 1 >= len(toks) or toks[for_idx + 1].text != "(":
        return None, None
    close = toks[for_idx + 1].match
    if close < 0:
        return None, None
    depth = 0
    for j in range(for_idx + 2, close):
        txt = toks[j].text
        if txt in _OPEN:
            depth += 1
        elif txt in (")", "}", "]"):
            depth -= 1
        elif txt == ":" and depth == 0:
            # Base identifier of the ranged expression.
            k = close - 1
            while k > j:
                t = toks[k]
                if t.text in ("]", ")") and t.match >= 0:
                    k = t.match - 1
                    continue
                if t.kind == "id":
                    if k >= 1 and toks[k - 1].text in (".", "->", "::"):
                        k -= 2
                        continue
                    return j, t
                return j, None
            return j, None
    return None, None


def _body_range(toks, close_paren):
    """Token range [lo, hi) of the statement following `)` at close_paren:
    a braced compound or a single statement up to `;`."""
    j = close_paren + 1
    if j < len(toks) and toks[j].text == "{" and toks[j].match >= 0:
        return j + 1, toks[j].match
    lo = j
    while j < len(toks) and toks[j].text != ";":
        if toks[j].text in _OPEN and toks[j].match >= 0:
            j = toks[j].match
        j += 1
    return lo, j


def rule_unordered_output(ctx):
    toks = ctx.toks
    unordered = ctx.decls.unordered
    if not unordered:
        return
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "for":
            continue
        colon, base = _range_for_target(toks, i)
        if colon is None or base is None or base.text not in unordered:
            continue
        lo, hi = _body_range(toks, toks[i + 1].match)
        sorted_seen = False
        for j in range(lo, hi):
            tok = toks[j]
            if tok.kind == "id" and tok.text in SORT_CALLS \
                    and j + 1 < hi and toks[j + 1].text == "(":
                sorted_seen = True
            emits = False
            if tok.text == "<<":
                k = j - 1
                while k >= lo and toks[k].text in (")", "]") \
                        and toks[k].match >= 0:
                    k = toks[k].match - 1
                if k >= lo and toks[k].kind == "id" \
                        and toks[k].text in EMIT_STREAMS:
                    emits = True
            if tok.kind == "id" and tok.text in EMIT_CALLS \
                    and j + 1 < hi and toks[j + 1].text == "(":
                emits = True
            if emits and not sorted_seen:
                ctx.report(t.line, "unordered-output",
                           f"range-for over unordered container "
                           f"`{base.text}` feeds output: iteration order "
                           f"is unspecified; sort the keys first")
                break


RULES = [rule_pool_capture, rule_dcheck_purity, rule_kernel_purity,
         rule_atomic_order, rule_no_exceptions, rule_unordered_output]

RULE_CATALOG = [
    ("pool-capture", "no [&]/[=]/this captures in lambdas handed to the "
                     "thread pool"),
    ("dcheck-purity", "HT_DCHECK* operands must be side-effect free"),
    ("kernel-purity", "src/kernels compute backends: no "
                      "allocation/locks/I/O/global state"),
    ("atomic-order", "every atomic op names its std::memory_order"),
    ("relaxed-publish", "relaxed ordering on publishing atomics needs a "
                        "written justification"),
    ("no-exceptions", "no throw/try/catch anywhere in the library"),
    ("unordered-output", "no unordered-container iteration feeding output "
                         "(AST-level)"),
]


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def analyze_file(path, repo_root, backend="builtin", compile_db=None,
                 warnings=None):
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    raw_lines = text.splitlines()
    stripped = strip_comments_and_strings(text)
    toks = tokenize(stripped)
    decls = DeclTable(path, stripped.splitlines(), repo_root)
    if backend == "libclang" and path.endswith((".cc", ".cpp")):
        _augment_decls_libclang(path, decls, compile_db,
                                warnings if warnings is not None else [])
    elif backend == "clang-json" and path.endswith((".cc", ".cpp")):
        _augment_decls_clang_json(path, decls, compile_db,
                                  warnings if warnings is not None else [])
    ctx = FileContext(path, raw_lines, toks, decls, repo_root)
    for rule in RULES:
        rule(ctx)
    ctx.findings.sort(key=Finding.key)
    return ctx.findings


def _content_key(path, backend):
    h = hashlib.sha256()
    h.update(f"v{RULES_VERSION}:{backend}:".encode())
    with open(path, "rb") as f:
        h.update(f.read())
    return h.hexdigest()


def run_analysis(paths, repo_root, backend, build_dir, cache_path):
    compile_db = _load_compile_db(build_dir) if build_dir else None
    cache = {}
    if cache_path and os.path.isfile(cache_path):
        try:
            with open(cache_path, encoding="utf-8") as f:
                cache = json.load(f)
        except (OSError, json.JSONDecodeError):
            cache = {}
    findings = []
    warnings = []
    new_cache = {}
    for f in collect_files(paths):
        key = _content_key(f, backend)
        rel = os.path.relpath(f, repo_root)
        if key in cache:
            file_findings = [Finding(x["path"], x["line"], x["rule"],
                                     x["message"])
                             for x in cache[key]]
        else:
            file_findings = analyze_file(f, repo_root, backend, compile_db,
                                         warnings)
        new_cache[key] = [{"path": x.path, "line": x.line, "rule": x.rule,
                           "message": x.message} for x in file_findings]
        del rel
        findings.extend(file_findings)
    if cache_path:
        try:
            with open(cache_path, "w", encoding="utf-8") as f:
                json.dump(new_cache, f)
        except OSError as e:
            warnings.append(f"cannot write cache {cache_path}: {e}")
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    findings.sort(key=Finding.key)
    return findings


EXPECT_RE = re.compile(r"//\s*expect-analyze:\s*([a-z0-9-]+)")


def self_test(repo_root, backend):
    fixtures = os.path.join(repo_root, "tests", "analyze_fixtures")
    return run_fixture_suite(
        os.path.join(fixtures, "good"), os.path.join(fixtures, "bad"),
        lambda f: analyze_file(f, repo_root, backend="builtin"),
        EXPECT_RE, "ht-analyze")


def main(argv):
    script_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(script_dir)
    backend_req = "auto"
    build_dir = None
    cache_path = None
    paths = []
    for a in argv:
        if a == "--list-rules":
            for rule_id, desc in RULE_CATALOG:
                print(f"{rule_id:18s} {desc}")
            return 0
        if a.startswith("--backend="):
            backend_req = a.split("=", 1)[1]
        elif a.startswith("--build-dir="):
            build_dir = a.split("=", 1)[1]
        elif a.startswith("--cache="):
            cache_path = a.split("=", 1)[1]
        elif a == "--self-test":
            backend = pick_backend(backend_req)
            return 0 if self_test(repo_root, backend) else 1
        elif a.startswith("--"):
            print(f"error: unknown flag {a}", file=sys.stderr)
            return 2
        else:
            paths.append(a)
    if backend_req not in ("auto", "builtin", "libclang", "clang-json"):
        print(f"error: unknown backend {backend_req}", file=sys.stderr)
        return 2
    backend = pick_backend(backend_req)
    if backend == "libclang" and not _libclang_available():
        print("error: --backend=libclang but clang.cindex is not importable",
              file=sys.stderr)
        return 2
    if backend == "clang-json" and not _clang_json_available():
        print("error: --backend=clang-json but clang++ is not on PATH",
              file=sys.stderr)
        return 2
    if build_dir is None:
        default_build = os.path.join(repo_root, "build")
        if os.path.isfile(os.path.join(default_build,
                                       "compile_commands.json")):
            build_dir = default_build
    if not paths:
        paths = [os.path.join(repo_root, d) for d in DEFAULT_DIRS]
    findings = run_analysis(paths, repo_root, backend, build_dir, cache_path)
    for finding in findings:
        print(finding)
    if findings:
        print(f"\n{len(findings)} ht-analyze finding(s) [backend: {backend}]."
              f" Suppress a justified use with "
              f"'// ht-analyze: allow(<rule>)'.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
