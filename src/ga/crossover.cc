#include "ga/crossover.h"

#include <algorithm>

#include "util/check.h"

namespace hypertree {

namespace {

// Positions of each value in a permutation.
std::vector<int> PositionsOf(const std::vector<int>& p) {
  std::vector<int> pos(p.size());
  for (size_t i = 0; i < p.size(); ++i) pos[p[i]] = static_cast<int>(i);
  return pos;
}

// PMX offspring: keep p1's segment [a, b), fill the rest from p2 with the
// segment-induced mapping resolving conflicts.
std::vector<int> PmxChild(const std::vector<int>& p1,
                          const std::vector<int>& p2, int a, int b) {
  int n = static_cast<int>(p1.size());
  std::vector<int> child(n, -1);
  std::vector<bool> in_segment(n, false);
  for (int i = a; i < b; ++i) {
    child[i] = p1[i];
    in_segment[p1[i]] = true;
  }
  std::vector<int> pos1 = PositionsOf(p1);
  for (int i = 0; i < n; ++i) {
    if (i >= a && i < b) continue;
    int v = p2[i];
    while (in_segment[v]) v = p2[pos1[v]];
    child[i] = v;
  }
  return child;
}

// CX offspring: the first cycle comes from `first`, everything else from
// `second`.
std::vector<int> CxChild(const std::vector<int>& first,
                         const std::vector<int>& second) {
  int n = static_cast<int>(first.size());
  std::vector<int> pos_first = PositionsOf(first);
  std::vector<bool> in_cycle(n, false);
  int i = 0;
  do {
    in_cycle[i] = true;
    i = pos_first[second[i]];
  } while (i != 0 && !in_cycle[i]);
  std::vector<int> child(n);
  for (int j = 0; j < n; ++j) child[j] = in_cycle[j] ? first[j] : second[j];
  return child;
}

// OX1 offspring: keep p1's segment, fill remaining slots (starting after
// the segment, wrapping) with p2's values in p2 order (starting after the
// segment, wrapping), skipping values already present.
std::vector<int> Ox1Child(const std::vector<int>& p1,
                          const std::vector<int>& p2, int a, int b) {
  int n = static_cast<int>(p1.size());
  std::vector<int> child(n, -1);
  std::vector<bool> used(n, false);
  for (int i = a; i < b; ++i) {
    child[i] = p1[i];
    used[p1[i]] = true;
  }
  int write = b % n;
  for (int step = 0; step < n; ++step) {
    int v = p2[(b + step) % n];
    if (used[v]) continue;
    child[write] = v;
    used[v] = true;
    write = (write + 1) % n;
  }
  return child;
}

// OX2 offspring: take p1 and re-order the values that p2 holds at the
// selected positions so they appear in p2's order.
std::vector<int> Ox2Child(const std::vector<int>& p1,
                          const std::vector<int>& p2,
                          const std::vector<bool>& selected) {
  int n = static_cast<int>(p1.size());
  std::vector<int> values;
  std::vector<bool> moved(n, false);
  for (int i = 0; i < n; ++i) {
    if (selected[i]) {
      values.push_back(p2[i]);
      moved[p2[i]] = true;
    }
  }
  std::vector<int> child = p1;
  size_t next = 0;
  for (int i = 0; i < n; ++i) {
    if (moved[child[i]]) child[i] = values[next++];
  }
  return child;
}

// POS offspring: copy p2's values at the selected positions; fill the rest
// with p1's remaining values in p1 order.
std::vector<int> PosChild(const std::vector<int>& p1,
                          const std::vector<int>& p2,
                          const std::vector<bool>& selected) {
  int n = static_cast<int>(p1.size());
  std::vector<int> child(n, -1);
  std::vector<bool> used(n, false);
  for (int i = 0; i < n; ++i) {
    if (selected[i]) {
      child[i] = p2[i];
      used[p2[i]] = true;
    }
  }
  size_t src = 0;
  for (int i = 0; i < n; ++i) {
    if (child[i] != -1) continue;
    while (used[p1[src]]) ++src;
    child[i] = p1[src];
    used[p1[src]] = true;
  }
  return child;
}

// AP offspring: alternate elements of the two parents, skipping those
// already taken.
std::vector<int> ApChild(const std::vector<int>& p1,
                         const std::vector<int>& p2) {
  int n = static_cast<int>(p1.size());
  std::vector<int> child;
  child.reserve(n);
  std::vector<bool> used(n, false);
  for (int i = 0; i < n && static_cast<int>(child.size()) < n; ++i) {
    if (!used[p1[i]]) {
      child.push_back(p1[i]);
      used[p1[i]] = true;
    }
    if (static_cast<int>(child.size()) < n && !used[p2[i]]) {
      child.push_back(p2[i]);
      used[p2[i]] = true;
    }
  }
  return child;
}

}  // namespace

std::string CrossoverName(CrossoverOp op) {
  switch (op) {
    case CrossoverOp::kPmx: return "PMX";
    case CrossoverOp::kCx: return "CX";
    case CrossoverOp::kOx1: return "OX1";
    case CrossoverOp::kOx2: return "OX2";
    case CrossoverOp::kPos: return "POS";
    case CrossoverOp::kAp: return "AP";
  }
  return "?";
}

void Crossover(CrossoverOp op, const std::vector<int>& p1,
               const std::vector<int>& p2, Rng* rng, std::vector<int>* c1,
               std::vector<int>* c2) {
  HT_CHECK(p1.size() == p2.size() && rng != nullptr);
  int n = static_cast<int>(p1.size());
  if (n <= 1) {
    *c1 = p1;
    *c2 = p2;
    return;
  }
  switch (op) {
    case CrossoverOp::kPmx: {
      int a = rng->UniformInt(n), b = rng->UniformInt(n);
      if (a > b) std::swap(a, b);
      ++b;
      *c1 = PmxChild(p1, p2, a, b);
      *c2 = PmxChild(p2, p1, a, b);
      break;
    }
    case CrossoverOp::kCx: {
      *c1 = CxChild(p1, p2);
      *c2 = CxChild(p2, p1);
      break;
    }
    case CrossoverOp::kOx1: {
      int a = rng->UniformInt(n), b = rng->UniformInt(n);
      if (a > b) std::swap(a, b);
      ++b;
      *c1 = Ox1Child(p1, p2, a, b);
      *c2 = Ox1Child(p2, p1, a, b);
      break;
    }
    case CrossoverOp::kOx2: {
      std::vector<bool> selected(n);
      for (int i = 0; i < n; ++i) selected[i] = rng->Bernoulli(0.5);
      *c1 = Ox2Child(p1, p2, selected);
      *c2 = Ox2Child(p2, p1, selected);
      break;
    }
    case CrossoverOp::kPos: {
      std::vector<bool> selected(n);
      for (int i = 0; i < n; ++i) selected[i] = rng->Bernoulli(0.5);
      *c1 = PosChild(p1, p2, selected);
      *c2 = PosChild(p2, p1, selected);
      break;
    }
    case CrossoverOp::kAp: {
      *c1 = ApChild(p1, p2);
      *c2 = ApChild(p2, p1);
      break;
    }
  }
}

}  // namespace hypertree
