#include "ga/ga_ghw.h"

#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {

GaResult GaGhw(const Hypergraph& h, const GaConfig& config, CoverMode mode,
               bool seed_with_heuristics) {
  GhwEvaluator eval(h);
  GaConfig cfg = config;
  if (seed_with_heuristics && h.NumVertices() > 0) {
    // Deterministic tie-breaking: the seeds are reproducible regardless of
    // the GA seed.
    cfg.initial.push_back(MinFillOrdering(eval.primal(), nullptr));
    cfg.initial.push_back(MinDegreeOrdering(eval.primal(), nullptr));
    cfg.initial.push_back(McsOrdering(eval.primal(), nullptr));
  }
  Rng cover_rng(config.seed ^ 0x5eedc0de);
  GaResult res = RunPermutationGa(
      h.NumVertices(),
      [&eval, mode, &cover_rng](const EliminationOrdering& sigma) {
        return eval.EvaluateOrdering(sigma, mode, &cover_rng);
      },
      cfg);
  DValidateOrderingWitness(h, res.best);
  return res;
}

}  // namespace hypertree
