// GA-tw: genetic algorithm for treewidth upper bounds (thesis ch. 6).

#ifndef HYPERTREE_GA_GA_TW_H_
#define HYPERTREE_GA_GA_TW_H_

#include "ga/ga.h"
#include "graph/graph.h"

namespace hypertree {

/// Evolves elimination orderings of `g`; fitness is the bucket-elimination
/// width. Returns the best width found (a treewidth upper bound) and its
/// witness ordering. With `seed_with_heuristics`, min-fill / min-degree /
/// MCS orderings join the initial population.
GaResult GaTreewidth(const Graph& g, const GaConfig& config = {},
                     bool seed_with_heuristics = false);

}  // namespace hypertree

#endif  // HYPERTREE_GA_GA_TW_H_
