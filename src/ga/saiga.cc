#include "ga/saiga.h"

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hypertree {

namespace {

struct Individual {
  EliminationOrdering genes;
  int fitness = 0;
};

struct Island {
  std::vector<Individual> pop;
  double pc = 1.0;       // crossover rate
  double pm = 0.3;       // mutation rate
  int s = 2;             // tournament size
  int best_fitness = 0;  // best seen this epoch
};

// Clamps island parameters into sane ranges after noise.
void ClampParams(Island* isl) {
  isl->pc = std::clamp(isl->pc, 0.1, 1.0);
  isl->pm = std::clamp(isl->pm, 0.01, 0.9);
  isl->s = std::clamp(isl->s, 2, 6);
}

}  // namespace

SaigaResult SaigaGhw(const Hypergraph& h, const SaigaConfig& config,
                     CoverMode mode) {
  HT_CHECK(config.num_islands >= 1 && config.island_population >= 2);
  Rng rng(config.seed);
  Timer timer;
  Deadline deadline(config.time_limit_seconds);
  GhwEvaluator eval(h);
  auto fitness = [&eval, mode, &rng](const EliminationOrdering& sigma) {
    return eval.EvaluateOrdering(sigma, mode, &rng);
  };

  int num_genes = h.NumVertices();
  SaigaResult res;
  res.ga.best_fitness = 0;

  // Initialize islands with random parameter vectors and populations.
  std::vector<Island> islands(config.num_islands);
  for (Island& isl : islands) {
    isl.pc = 0.5 + 0.5 * rng.UniformDouble();
    isl.pm = 0.05 + 0.45 * rng.UniformDouble();
    isl.s = rng.UniformRange(2, 4);
    isl.pop.resize(config.island_population);
    for (Individual& ind : isl.pop) {
      ind.genes = rng.Permutation(num_genes);
      ind.fitness = fitness(ind.genes);
      ++res.ga.evaluations;
    }
  }
  auto record_best = [&res](const Individual& ind) {
    if (res.ga.best.empty() || ind.fitness < res.ga.best_fitness) {
      res.ga.best_fitness = ind.fitness;
      res.ga.best = ind.genes;
    }
  };
  for (const Island& isl : islands) {
    for (const Individual& ind : isl.pop) record_best(ind);
  }

  int n = config.island_population;
  std::vector<Individual> next(n);
  for (int epoch = 0; epoch < config.epochs && !deadline.Expired(); ++epoch) {
    for (Island& isl : islands) {
      isl.best_fitness = isl.pop[0].fitness;
      for (int gen = 0; gen < config.generations_per_epoch; ++gen) {
        if (deadline.Expired()) break;
        ++res.ga.iterations;
        // Tournament selection.
        for (int i = 0; i < n; ++i) {
          int best = rng.UniformInt(n);
          for (int t = 1; t < isl.s; ++t) {
            int c = rng.UniformInt(n);
            if (isl.pop[c].fitness < isl.pop[best].fitness) best = c;
          }
          next[i] = isl.pop[best];
        }
        // Crossover.
        int recombined = static_cast<int>(isl.pc * n);
        recombined -= recombined % 2;
        for (int i = 0; i + 1 < recombined; i += 2) {
          EliminationOrdering c1, c2;
          Crossover(CrossoverOp::kPos, next[i].genes, next[i + 1].genes, &rng,
                    &c1, &c2);
          next[i].genes = std::move(c1);
          next[i + 1].genes = std::move(c2);
        }
        // Mutation + evaluation.
        for (int i = 0; i < n; ++i) {
          if (rng.Bernoulli(isl.pm)) Mutate(MutationOp::kIsm, &next[i].genes,
                                            &rng);
          next[i].fitness = fitness(next[i].genes);
          ++res.ga.evaluations;
          record_best(next[i]);
          isl.best_fitness = std::min(isl.best_fitness, next[i].fitness);
        }
        isl.pop.swap(next);
      }
    }
    // Ring migration: each island's best replaces the next island's worst.
    int k = config.num_islands;
    for (int i = 0; i < k; ++i) {
      const Island& src = islands[i];
      Island& dst = islands[(i + 1) % k];
      auto best_it =
          std::min_element(src.pop.begin(), src.pop.end(),
                           [](const Individual& a, const Individual& b) {
                             return a.fitness < b.fitness;
                           });
      auto worst_it =
          std::max_element(dst.pop.begin(), dst.pop.end(),
                           [](const Individual& a, const Individual& b) {
                             return a.fitness < b.fitness;
                           });
      *worst_it = *best_it;
    }
    // Neighbor orientation: adopt a better ring neighbor's parameters,
    // then perturb (self-adaptive mutation of the parameter vector).
    std::vector<Island> snapshot = islands;
    for (int i = 0; i < k; ++i) {
      const Island& nb = snapshot[(i + k - 1) % k];
      Island& isl = islands[i];
      if (nb.best_fitness < isl.best_fitness) {
        isl.pc = nb.pc;
        isl.pm = nb.pm;
        isl.s = nb.s;
      }
      isl.pc += 0.1 * rng.Gaussian();
      isl.pm += 0.05 * rng.Gaussian();
      if (rng.Bernoulli(0.3)) isl.s += rng.Bernoulli(0.5) ? 1 : -1;
      ClampParams(&isl);
    }
  }

  // Report the parameters of the island holding the best individual.
  int winner = 0;
  for (int i = 0; i < config.num_islands; ++i) {
    if (islands[i].best_fitness < islands[winner].best_fitness) winner = i;
  }
  res.final_crossover_rate = islands[winner].pc;
  res.final_mutation_rate = islands[winner].pm;
  res.final_tournament_size = islands[winner].s;
  res.ga.seconds = timer.ElapsedSeconds();
  DValidateOrderingWitness(h, res.ga.best);
  return res;
}

}  // namespace hypertree
