// SAIGA-ghw: self-adaptive island genetic algorithm for ghw upper bounds
// (thesis ch. 7.2).
//
// Several GA islands run in a ring, each with its own control-parameter
// vector (crossover rate, mutation rate, tournament size). Every epoch the
// best individual migrates to the next island and each island re-orients
// its parameters: if the ring neighbor performed better, the island adopts
// the neighbor's parameters; either way the vector is perturbed by
// Gaussian noise (self-adaptation), removing the need for the external
// tuning study of ch. 6.

#ifndef HYPERTREE_GA_SAIGA_H_
#define HYPERTREE_GA_SAIGA_H_

#include <cstdint>

#include "ga/ga.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/hypergraph.h"

namespace hypertree {

/// SAIGA control knobs (islands adapt the per-island GA parameters
/// themselves).
struct SaigaConfig {
  int num_islands = 4;
  int island_population = 50;
  int epochs = 10;                  // migration/adaptation rounds
  int generations_per_epoch = 20;   // GA iterations between migrations
  uint64_t seed = 1;
  double time_limit_seconds = 0.0;
};

/// Result of a SAIGA run, including the final adapted parameters of the
/// winning island.
struct SaigaResult {
  GaResult ga;               // best-of-all-islands outcome
  double final_crossover_rate = 0.0;
  double final_mutation_rate = 0.0;
  int final_tournament_size = 0;
};

/// Runs SAIGA-ghw on `h` (greedy bag covers, as in GA-ghw).
SaigaResult SaigaGhw(const Hypergraph& h, const SaigaConfig& config = {},
                     CoverMode mode = CoverMode::kGreedy);

}  // namespace hypertree

#endif  // HYPERTREE_GA_SAIGA_H_
