#include "ga/ga_tw.h"

#include "ordering/evaluator.h"
#include "ordering/heuristics.h"

namespace hypertree {

GaResult GaTreewidth(const Graph& g, const GaConfig& config,
                     bool seed_with_heuristics) {
  GaConfig cfg = config;
  if (seed_with_heuristics && g.NumVertices() > 0) {
    // Deterministic tie-breaking: the seeds are reproducible regardless of
    // the GA seed.
    cfg.initial.push_back(MinFillOrdering(g, nullptr));
    cfg.initial.push_back(MinDegreeOrdering(g, nullptr));
    cfg.initial.push_back(McsOrdering(g, nullptr));
  }
  return RunPermutationGa(
      g.NumVertices(),
      [&g](const EliminationOrdering& sigma) {
        return EvaluateOrderingWidth(g, sigma);
      },
      cfg);
}

}  // namespace hypertree
