// The six permutation mutation operators compared in the thesis (§4.3.3):
// displacement (DM), exchange (EM), insertion (ISM), simple inversion
// (SIM), inversion (IVM) and scramble (SM) mutation.

#ifndef HYPERTREE_GA_MUTATION_H_
#define HYPERTREE_GA_MUTATION_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace hypertree {

/// Mutation operator identifiers.
enum class MutationOp { kDm, kEm, kIsm, kSim, kIvm, kSm };

/// All operators, for sweeps.
inline constexpr MutationOp kAllMutations[] = {
    MutationOp::kDm,  MutationOp::kEm,  MutationOp::kIsm,
    MutationOp::kSim, MutationOp::kIvm, MutationOp::kSm};

/// Short name ("DM", ...).
std::string MutationName(MutationOp op);

/// Mutates `p` in place.
void Mutate(MutationOp op, std::vector<int>* p, Rng* rng);

}  // namespace hypertree

#endif  // HYPERTREE_GA_MUTATION_H_
