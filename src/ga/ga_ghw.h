// GA-ghw: genetic algorithm for generalized hypertree width upper bounds
// (thesis ch. 7.1): the GA-tw loop with greedy bag covers as fitness.

#ifndef HYPERTREE_GA_GA_GHW_H_
#define HYPERTREE_GA_GA_GHW_H_

#include "ga/ga.h"
#include "ghd/ghw_from_ordering.h"
#include "hypergraph/hypergraph.h"

namespace hypertree {

/// Evolves elimination orderings of `h`; fitness is the bucket-elimination
/// width with bag covers in `mode` (greedy is the thesis default; exact
/// gives true width(sigma, H) at higher cost). Returns the best ghw upper
/// bound and its witness ordering.
GaResult GaGhw(const Hypergraph& h, const GaConfig& config = {},
               CoverMode mode = CoverMode::kGreedy,
               bool seed_with_heuristics = false);

}  // namespace hypertree

#endif  // HYPERTREE_GA_GA_GHW_H_
