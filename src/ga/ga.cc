#include "ga/ga.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hypertree {

namespace {

struct Individual {
  EliminationOrdering genes;
  int fitness = 0;
};

}  // namespace

GaResult RunPermutationGa(int num_genes, const FitnessFn& fitness,
                          const GaConfig& config) {
  HT_CHECK(num_genes >= 0);
  HT_CHECK(config.population_size >= 2);
  HT_CHECK(config.tournament_size >= 1);
  Rng rng(config.seed);
  Timer timer;
  Deadline deadline(config.time_limit_seconds);
  GaResult res;
  if (num_genes == 0) {
    res.best_fitness = fitness({});
    res.evaluations = 1;
    res.seconds = timer.ElapsedSeconds();
    return res;
  }

  int n = config.population_size;
  std::vector<Individual> pop(n);
  for (int i = 0; i < n; ++i) {
    if (i < static_cast<int>(config.initial.size())) {
      HT_CHECK(IsValidOrdering(config.initial[i], num_genes));
      pop[i].genes = config.initial[i];
    } else {
      pop[i].genes = rng.Permutation(num_genes);
    }
    pop[i].fitness = fitness(pop[i].genes);
    ++res.evaluations;
  }
  auto record_best = [&res](const Individual& ind) {
    if (res.best.empty() || ind.fitness < res.best_fitness) {
      res.best_fitness = ind.fitness;
      res.best = ind.genes;
    }
  };
  for (const Individual& ind : pop) record_best(ind);

  std::vector<Individual> next(n);
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    if (deadline.Expired()) break;
    res.iterations = iter + 1;
    // Tournament selection.
    for (int i = 0; i < n; ++i) {
      int best = rng.UniformInt(n);
      for (int t = 1; t < config.tournament_size; ++t) {
        int challenger = rng.UniformInt(n);
        if (pop[challenger].fitness < pop[best].fitness) best = challenger;
      }
      next[i] = pop[best];
    }
    // Recombination: the first crossover_rate * n individuals (the
    // selection order is already random) are recombined pairwise.
    int recombined = static_cast<int>(config.crossover_rate * n);
    recombined -= recombined % 2;
    for (int i = 0; i + 1 < recombined; i += 2) {
      EliminationOrdering c1, c2;
      Crossover(config.crossover, next[i].genes, next[i + 1].genes, &rng, &c1,
                &c2);
      next[i].genes = std::move(c1);
      next[i + 1].genes = std::move(c2);
    }
    // Mutation.
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(config.mutation_rate)) {
        Mutate(config.mutation, &next[i].genes, &rng);
      }
    }
    // Evaluation.
    for (int i = 0; i < n; ++i) {
      next[i].fitness = fitness(next[i].genes);
      ++res.evaluations;
      record_best(next[i]);
    }
    pop.swap(next);
  }
  res.seconds = timer.ElapsedSeconds();
  return res;
}

}  // namespace hypertree
