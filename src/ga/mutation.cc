#include "ga/mutation.h"

#include <algorithm>

#include "util/check.h"

namespace hypertree {

namespace {

// Removes p[a, b) and reinserts it (possibly reversed) at a random
// position of the remainder.
void Displace(std::vector<int>* p, Rng* rng, bool reversed) {
  int n = static_cast<int>(p->size());
  int a = rng->UniformInt(n), b = rng->UniformInt(n);
  if (a > b) std::swap(a, b);
  ++b;
  std::vector<int> segment(p->begin() + a, p->begin() + b);
  if (reversed) std::reverse(segment.begin(), segment.end());
  p->erase(p->begin() + a, p->begin() + b);
  int where = rng->UniformInt(static_cast<int>(p->size()) + 1);
  p->insert(p->begin() + where, segment.begin(), segment.end());
}

}  // namespace

std::string MutationName(MutationOp op) {
  switch (op) {
    case MutationOp::kDm: return "DM";
    case MutationOp::kEm: return "EM";
    case MutationOp::kIsm: return "ISM";
    case MutationOp::kSim: return "SIM";
    case MutationOp::kIvm: return "IVM";
    case MutationOp::kSm: return "SM";
  }
  return "?";
}

void Mutate(MutationOp op, std::vector<int>* p, Rng* rng) {
  HT_CHECK(p != nullptr && rng != nullptr);
  int n = static_cast<int>(p->size());
  if (n <= 1) return;
  switch (op) {
    case MutationOp::kDm:
      Displace(p, rng, /*reversed=*/false);
      break;
    case MutationOp::kEm: {
      int a = rng->UniformInt(n), b = rng->UniformInt(n);
      std::swap((*p)[a], (*p)[b]);
      break;
    }
    case MutationOp::kIsm: {
      int a = rng->UniformInt(n);
      int v = (*p)[a];
      p->erase(p->begin() + a);
      int where = rng->UniformInt(n);
      p->insert(p->begin() + where, v);
      break;
    }
    case MutationOp::kSim: {
      int a = rng->UniformInt(n), b = rng->UniformInt(n);
      if (a > b) std::swap(a, b);
      std::reverse(p->begin() + a, p->begin() + b + 1);
      break;
    }
    case MutationOp::kIvm:
      Displace(p, rng, /*reversed=*/true);
      break;
    case MutationOp::kSm: {
      int a = rng->UniformInt(n), b = rng->UniformInt(n);
      if (a > b) std::swap(a, b);
      for (int i = b; i > a; --i) {
        int j = a + rng->UniformInt(i - a + 1);
        std::swap((*p)[i], (*p)[j]);
      }
      break;
    }
  }
}

}  // namespace hypertree
