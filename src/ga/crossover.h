// The six permutation crossover operators compared in the thesis
// (§4.3.2, after Larranaga et al.): partially-mapped (PMX), cycle (CX),
// order (OX1), order-based (OX2), position-based (POS) and
// alternating-position (AP) crossover.

#ifndef HYPERTREE_GA_CROSSOVER_H_
#define HYPERTREE_GA_CROSSOVER_H_

#include <string>
#include <vector>

#include "util/rng.h"

namespace hypertree {

/// Crossover operator identifiers.
enum class CrossoverOp { kPmx, kCx, kOx1, kOx2, kPos, kAp };

/// All operators, for sweeps.
inline constexpr CrossoverOp kAllCrossovers[] = {
    CrossoverOp::kPmx, CrossoverOp::kCx,  CrossoverOp::kOx1,
    CrossoverOp::kOx2, CrossoverOp::kPos, CrossoverOp::kAp};

/// Short name ("PMX", ...).
std::string CrossoverName(CrossoverOp op);

/// Recombines two parent permutations into two offspring permutations.
void Crossover(CrossoverOp op, const std::vector<int>& p1,
               const std::vector<int>& p2, Rng* rng, std::vector<int>* c1,
               std::vector<int>* c2);

}  // namespace hypertree

#endif  // HYPERTREE_GA_CROSSOVER_H_
