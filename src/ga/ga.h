// Generic generational genetic algorithm over permutations with
// tournament selection (thesis Figure 4.4 / Figure 6.1).
//
// Fitness is *minimized* (widths). The GA is generational: tournament
// selection fills the next population, a crossover_rate fraction of it is
// recombined pairwise, each individual mutates with probability
// mutation_rate, and the best individual ever seen is recorded.

#ifndef HYPERTREE_GA_GA_H_
#define HYPERTREE_GA_GA_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ga/crossover.h"
#include "ga/mutation.h"
#include "ordering/ordering.h"

namespace hypertree {

/// Control parameters (thesis defaults from the ch. 6 tuning study:
/// POS crossover, ISM mutation, pc = 1.0, pm = 0.3, n = 2000, s = 3).
struct GaConfig {
  int population_size = 200;
  double crossover_rate = 1.0;
  double mutation_rate = 0.3;
  int tournament_size = 3;
  int max_iterations = 200;
  CrossoverOp crossover = CrossoverOp::kPos;
  MutationOp mutation = MutationOp::kIsm;
  uint64_t seed = 1;
  double time_limit_seconds = 0.0;  // <= 0: unlimited
  /// Orderings injected into the initial population (the rest is random).
  /// The thesis GA starts fully random; seeding with greedy orderings is
  /// the standard fix for its weakness on chain-structured hypergraphs
  /// (adder/bridge families, Table 7.1) — see GaTreewidth/GaGhw's
  /// seed_with_heuristics convenience.
  std::vector<EliminationOrdering> initial;
};

/// Outcome of a GA run.
struct GaResult {
  int best_fitness = 0;
  EliminationOrdering best;
  long evaluations = 0;
  int iterations = 0;
  double seconds = 0.0;
};

/// Fitness of a permutation (lower is better).
using FitnessFn = std::function<int(const EliminationOrdering&)>;

/// Runs the GA on permutations of {0, ..., num_genes-1}.
GaResult RunPermutationGa(int num_genes, const FitnessFn& fitness,
                          const GaConfig& config);

}  // namespace hypertree

#endif  // HYPERTREE_GA_GA_H_
