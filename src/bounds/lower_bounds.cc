#include "bounds/lower_bounds.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/algorithms.h"
#include "kernels/kernels.h"
#include "util/bitset.h"

namespace hypertree {

namespace {

// Scratch structure for contraction-based bounds. The per-row bit work
// (masked neighbor snapshots, degree recomputes) runs through the active
// kernel backend; on multi-word graphs — the only ones that reach this
// generic path — the fused and+popcount ops vectorize under AVX2.
class ContractionGraph {
 public:
  explicit ContractionGraph(const Graph& g)
      : n_(g.NumVertices()), alive_(g.NumVertices()), nb_(g.NumVertices()) {
    alive_.SetAll();
    adj_.reserve(n_);
    for (int v = 0; v < n_; ++v) adj_.push_back(g.NeighborBits(v));
    InitDegrees();
  }

  /// Starts from the remaining graph of a partial elimination: only the
  /// active vertices are alive and rows are masked to them.
  explicit ContractionGraph(const EliminationGraph& eg)
      : n_(eg.NumVertices()),
        alive_(eg.ActiveBits()),
        nb_(eg.NumVertices()) {
    adj_.reserve(n_);
    for (int v = 0; v < n_; ++v)
      adj_.push_back(eg.IsActive(v) ? eg.NeighborBits(v) : Bitset(n_));
    InitDegrees();
  }

  int NumActive() const { return alive_.Count(); }
  const Bitset& Alive() const { return alive_; }

  int Degree(int v) const { return deg_[v]; }

  bool Adjacent(int u, int v) const { return adj_[u].Test(v); }

  /// Contracts v into u (u keeps v's neighbors) and removes v.
  void Contract(int v, int u) {
    const kernels::Ops& ops = kernels::Active();
    const int nwords = alive_.NumWords();
    adj_[u] |= adj_[v];
    adj_[u].Reset(u);
    adj_[u].Reset(v);
    // Redirect v's neighbors to u, adjusting degrees incrementally: w
    // loses v and gains u (net zero) unless it was already adjacent to u.
    // The neighbor set is snapshotted into scratch before the row edits.
    ops.AndCount(nb_.MutableWords(), adj_[v].Words(), alive_.Words(), nwords);
    for (int w = nb_.First(); w >= 0; w = nb_.Next(w)) {
      adj_[w].Reset(v);
      if (w != u) {
        if (adj_[w].Test(u)) --deg_[w];
        adj_[w].Set(u);
      }
    }
    alive_.Reset(v);
    deg_[u] = ops.IntersectCount(adj_[u].Words(), alive_.Words(), nwords);
  }

  /// Removes an isolated vertex.
  void Remove(int v) { alive_.Reset(v); }

  /// Minimum-degree active vertex (random tie-break).
  int MinDegreeVertex(Rng* rng) const {
    int best = -1, best_deg = 0, ties = 0;
    for (int v = alive_.First(); v >= 0; v = alive_.Next(v)) {
      int d = Degree(v);
      if (best == -1 || d < best_deg) {
        best = v;
        best_deg = d;
        ties = 1;
      } else if (d == best_deg && rng != nullptr) {
        ++ties;
        if (rng->UniformInt(ties) == 0) best = v;
      }
    }
    return best;
  }

  /// Minimum-degree active neighbor of v (random tie-break); -1 if none.
  int MinDegreeNeighbor(int v, Rng* rng) const {
    kernels::Active().AndCount(nb_.MutableWords(), adj_[v].Words(),
                               alive_.Words(), alive_.NumWords());
    int best = -1, best_deg = 0, ties = 0;
    for (int u = nb_.First(); u >= 0; u = nb_.Next(u)) {
      int d = Degree(u);
      if (best == -1 || d < best_deg) {
        best = u;
        best_deg = d;
        ties = 1;
      } else if (d == best_deg && rng != nullptr) {
        ++ties;
        if (rng->UniformInt(ties) == 0) best = u;
      }
    }
    return best;
  }

 private:
  void InitDegrees() {
    const kernels::Ops& ops = kernels::Active();
    const int nwords = alive_.NumWords();
    deg_.assign(n_, 0);
    for (int v = alive_.First(); v >= 0; v = alive_.Next(v))
      deg_[v] = ops.IntersectCount(adj_[v].Words(), alive_.Words(), nwords);
  }

  int n_;
  Bitset alive_;
  mutable Bitset nb_;  // masked-neighbor scratch (avoids per-call allocation)
  std::vector<Bitset> adj_;
  std::vector<int> deg_;
};

}  // namespace

namespace {

int MinorMinWidthOn(ContractionGraph& cg, Rng* rng) {
  int lb = 0;
  while (cg.NumActive() > 0) {
    int v = cg.MinDegreeVertex(rng);
    int d = cg.Degree(v);
    lb = std::max(lb, d);
    if (d == 0) {
      cg.Remove(v);
      continue;
    }
    int u = cg.MinDegreeNeighbor(v, rng);
    cg.Contract(v, u);
  }
  return lb;
}

// Single-word specialization of the contraction loop for n <= 64. The
// exact searches evaluate minor-min-width once per generated state, which
// makes it their hottest bound; on one-word graphs the whole contraction
// sequence runs on plain uint64_t rows with no heap allocation. The scan
// order (ascending bit index, matching Bitset::First/Next), the
// incremental degree updates, and the reservoir tie-break draws replicate
// ContractionGraph exactly, so both the value and the rng stream are
// bit-identical to the generic path.

inline uint64_t Bit64(int v) { return uint64_t{1} << v; }

int MinDegree64(const int* deg, uint64_t from, Rng* rng) {
  int best = -1, best_deg = 0, ties = 0;
  for (uint64_t m = from; m != 0; m &= m - 1) {
    int v = __builtin_ctzll(m);
    int d = deg[v];
    if (best == -1 || d < best_deg) {
      best = v;
      best_deg = d;
      ties = 1;
    } else if (d == best_deg && rng != nullptr) {
      ++ties;
      if (rng->UniformInt(ties) == 0) best = v;
    }
  }
  return best;
}

int MinorMinWidth64(uint64_t alive, uint64_t* adj, Rng* rng) {
  int deg[64];
  for (uint64_t m = alive; m != 0; m &= m - 1) {
    int v = __builtin_ctzll(m);
    deg[v] = __builtin_popcountll(adj[v] & alive);
  }
  int lb = 0;
  while (alive != 0) {
    int v = MinDegree64(deg, alive, rng);
    int d = deg[v];
    lb = std::max(lb, d);
    if (d == 0) {
      alive &= ~Bit64(v);
      continue;
    }
    int u = MinDegree64(deg, adj[v] & alive, rng);
    // Contract v into u, mirroring ContractionGraph::Contract: w loses v
    // and gains u (net zero degree change) unless already adjacent to u.
    // The neighbor mask is snapshotted before the row updates, like `nb`
    // there; rows may keep dead bits, which the alive mask screens out.
    adj[u] |= adj[v];
    adj[u] &= ~(Bit64(u) | Bit64(v));
    for (uint64_t m = adj[v] & alive; m != 0; m &= m - 1) {
      int w = __builtin_ctzll(m);
      adj[w] &= ~Bit64(v);
      if (w != u) {
        if ((adj[w] & Bit64(u)) != 0) --deg[w];
        adj[w] |= Bit64(u);
      }
    }
    alive &= ~Bit64(v);
    deg[u] = __builtin_popcountll(adj[u] & alive);
  }
  return lb;
}

}  // namespace

int MinorMinWidthLowerBound(const Graph& g, Rng* rng) {
  const int n = g.NumVertices();
  if (n > 0 && n <= 64) {
    uint64_t adj[64];
    for (int v = 0; v < n; ++v) adj[v] = g.NeighborBits(v).Word(0);
    const uint64_t alive = (n == 64) ? ~uint64_t{0} : Bit64(n) - 1;
    return MinorMinWidth64(alive, adj, rng);
  }
  ContractionGraph cg(g);
  return MinorMinWidthOn(cg, rng);
}

int MinorMinWidthLowerBound(const EliminationGraph& eg, Rng* rng) {
  const int n = eg.NumVertices();
  if (n > 0 && n <= 64) {
    const uint64_t alive = eg.ActiveBits().Word(0);
    uint64_t adj[64] = {};
    for (uint64_t m = alive; m != 0; m &= m - 1) {
      int v = __builtin_ctzll(m);
      adj[v] = eg.RawNeighborBits(v).Word(0) & alive;
    }
    return MinorMinWidth64(alive, adj, rng);
  }
  ContractionGraph cg(eg);
  return MinorMinWidthOn(cg, rng);
}

namespace ht_internal {

int MinorMinWidthLowerBoundGeneric(const Graph& g, Rng* rng) {
  ContractionGraph cg(g);
  return MinorMinWidthOn(cg, rng);
}

int MinorMinWidthLowerBoundGeneric(const EliminationGraph& eg, Rng* rng) {
  ContractionGraph cg(eg);
  return MinorMinWidthOn(cg, rng);
}

}  // namespace ht_internal

int MinorGammaRLowerBound(const Graph& g, Rng* rng) {
  ContractionGraph cg(g);
  int lb = 0;
  while (cg.NumActive() > 1) {
    // Sort active vertices by degree ascending; find the first vertex not
    // adjacent to all its predecessors. Its degree is gamma_R of the
    // current minor (for complete minors gamma_R = n-1).
    std::vector<int> vs = cg.Alive().ToVector();
    std::vector<int> deg(vs.size());
    for (size_t i = 0; i < vs.size(); ++i) deg[i] = cg.Degree(vs[i]);
    std::vector<int> idx(vs.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
    std::stable_sort(idx.begin(), idx.end(),
                     [&deg](int a, int b) { return deg[a] < deg[b]; });
    int pick = -1;
    for (size_t i = 1; i < idx.size() && pick == -1; ++i) {
      int v = vs[idx[i]];
      for (size_t j = 0; j < i; ++j) {
        if (!cg.Adjacent(vs[idx[j]], v)) {
          pick = v;
          break;
        }
      }
    }
    if (pick == -1) {
      // The minor is a clique: treewidth of the original is >= n-1.
      lb = std::max(lb, cg.NumActive() - 1);
      break;
    }
    lb = std::max(lb, cg.Degree(pick));
    int u = cg.MinDegreeNeighbor(pick, rng);
    if (u == -1) {
      cg.Remove(pick);
    } else {
      cg.Contract(pick, u);
    }
  }
  return lb;
}

int DegeneracyLowerBound(const Graph& g) { return Degeneracy(g, nullptr); }

int TreewidthLowerBound(const Graph& g, Rng* rng) {
  int lb = std::max(MinorMinWidthLowerBound(g, rng), DegeneracyLowerBound(g));
  lb = std::max(lb, MinorGammaRLowerBound(g, rng));
  return lb;
}

}  // namespace hypertree
