// Treewidth lower bound heuristics (thesis §4.4.2).
//
// minor-min-width (MMD+/least-c) and minor-gamma_R compute degree-based
// bounds on a sequence of minors obtained by contracting a minimum-degree
// vertex into its smallest-degree neighbor; contraction can only lower the
// treewidth, so the largest bound seen is a valid lower bound for the
// original graph.

#ifndef HYPERTREE_BOUNDS_LOWER_BOUNDS_H_
#define HYPERTREE_BOUNDS_LOWER_BOUNDS_H_

#include "graph/elimination_graph.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace hypertree {

/// minor-min-width (Gogate & Dechter; also MMD+(least-c)): max over
/// contraction steps of the minimum degree. Random tie-breaking when
/// `rng` is non-null.
int MinorMinWidthLowerBound(const Graph& g, Rng* rng = nullptr);

/// Same bound evaluated on the remaining graph of a partial elimination,
/// without materializing it: works on the adjacency rows masked to the
/// active vertices. Produces the same value (and the same rng draw
/// sequence) as MinorMinWidthLowerBound(eg.CurrentGraph(), rng) because
/// the id remap in CurrentGraph() is order-preserving.
///
/// Graphs with at most 64 vertices take an allocation-free single-word
/// fast path (the searches call this once per generated state, making it
/// their hottest bound); the fast path replays the exact scan order and
/// tie-break draw sequence of the generic implementation, so values and
/// rng streams are bit-identical (`lower_bounds_test` asserts this
/// against the exported generic reference).
int MinorMinWidthLowerBound(const EliminationGraph& eg, Rng* rng = nullptr);

namespace ht_internal {
/// The generic (any-n) implementation, exported as the reference the
/// fast-path equivalence tests compare against. Not for production use.
int MinorMinWidthLowerBoundGeneric(const Graph& g, Rng* rng);
int MinorMinWidthLowerBoundGeneric(const EliminationGraph& eg, Rng* rng);
}  // namespace ht_internal

/// minor-gamma_R: the Ramachandramurthi gamma parameter evaluated on the
/// same contraction sequence. gamma(G) = n-1 for complete graphs, else
/// min over non-adjacent pairs {u, v} of max(deg(u), deg(v)).
int MinorGammaRLowerBound(const Graph& g, Rng* rng = nullptr);

/// Degeneracy (max over subgraphs of min degree); weaker than MMW but
/// deterministic and cheap.
int DegeneracyLowerBound(const Graph& g);

/// Best of the above (the lower bound used by the exact algorithms).
int TreewidthLowerBound(const Graph& g, Rng* rng = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_BOUNDS_LOWER_BOUNDS_H_
