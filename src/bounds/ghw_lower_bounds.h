// Lower bounds on generalized hypertree width (thesis §8.1, tw-ksc-width).
//
// Any GHD of H is also a tree decomposition of H, so a treewidth lower
// bound L for the primal graph forces some chi-bag with at least L+1
// vertices. Covering a set of L+1 vertices with hyperedges of cardinality
// at most r takes at least ceil((L+1)/r) edges, which bounds the lambda
// label of that bag, hence ghw(H) >= ceil((tw_lb(H)+1) / r). Additionally
// ghw(H) = 1 iff H is alpha-acyclic, so any cyclic hypergraph has
// ghw >= 2.

#ifndef HYPERTREE_BOUNDS_GHW_LOWER_BOUNDS_H_
#define HYPERTREE_BOUNDS_GHW_LOWER_BOUNDS_H_

#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace hypertree {

/// Combines a treewidth lower bound with the k-set-cover argument
/// (thesis algorithm tw-ksc-width).
int TwKscGhwLowerBound(const Hypergraph& h, Rng* rng = nullptr);

/// Best known ghw lower bound: max of tw-ksc and the acyclicity bound
/// (1 if alpha-acyclic, else >= 2).
int GhwLowerBound(const Hypergraph& h, Rng* rng = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_BOUNDS_GHW_LOWER_BOUNDS_H_
