#include "bounds/ghw_lower_bounds.h"

#include <algorithm>

#include "bounds/lower_bounds.h"
#include "hypergraph/acyclicity.h"

namespace hypertree {

int TwKscGhwLowerBound(const Hypergraph& h, Rng* rng) {
  if (h.NumEdges() == 0) return 0;
  int r = h.MaxEdgeSize();
  int tw_lb = TreewidthLowerBound(h.PrimalGraph(), rng);
  return (tw_lb + 1 + r - 1) / r;  // ceil((tw_lb + 1) / r)
}

int GhwLowerBound(const Hypergraph& h, Rng* rng) {
  if (h.NumEdges() == 0) return 0;
  int lb = TwKscGhwLowerBound(h, rng);
  if (!IsAlphaAcyclic(h)) lb = std::max(lb, 2);
  return std::max(lb, 1);
}

}  // namespace hypertree
