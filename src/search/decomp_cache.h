// Shared memo table for the exact decomposition searches.
//
// Two usage patterns share one keyed store:
//
//  1. det-k-decomp subproblem memoization (Gottlob, Leone & Scarcello's
//     detkdecomp): key (component, connector, k). A *negative* entry
//     records that the component provably has no hypertree decomposition
//     of width <= k under that connector; a *positive* entry additionally
//     stores the witness subtree so later hits splice it instead of
//     re-deriving it. Both are order-independent facts, which is what
//     makes the table safe to share across concurrent search workers.
//
//  2. Transposition / dominance tables for the elimination-ordering
//     searches (BB-ghw, A*-ghw): key is the eliminated vertex set, the
//     value the smallest g (max bag cover so far) the set was reached
//     with. A revisit with g' >= g is dominated and pruned.
//
//  3. Whole-instance witness entries for the decomposition service
//     (src/serve): key is the 128-bit content hash of the normalized
//     instance (as a Bitset), the value a caller-packed meta word plus
//     the full decomposition as a CachedSubtree. This is the in-memory
//     level of the serve cache; the on-disk level serializes the same
//     witnesses through src/io/ghd_format.
//
// The table is sharded by key hash; every shard has its own mutex, so
// concurrent workers rarely contend. Hit/miss/insert counters are
// maintained with relaxed atomics and reported via stats().

#ifndef HYPERTREE_SEARCH_DECOMP_CACHE_H_
#define HYPERTREE_SEARCH_DECOMP_CACHE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "util/bitset.h"
#include "util/check.h"

namespace hypertree {

/// Cache effectiveness counters (plain struct so results can carry it
/// without linking the cache library).
struct DecompCacheStats {
  long hits = 0;     // lookups answered from the table
  long misses = 0;   // lookups that found nothing usable
  long inserts = 0;  // entries written

  DecompCacheStats& operator+=(const DecompCacheStats& o) {
    hits += o.hits;
    misses += o.misses;
    inserts += o.inserts;
    return *this;
  }
};

/// A recorded decomposition subtree: nodes in parent-first order with
/// subtree-relative parent indices (-1 marks the subtree root, which the
/// splicing search re-parents under its current node).
struct CachedSubtree {
  std::vector<Bitset> chi;
  std::vector<std::vector<int>> lambda;
  std::vector<int> parent;
};

/// Thread-safe memo table keyed on (Bitset, Bitset, int).
class DecompCache {
 public:
  enum class Outcome { kUnknown, kPositive, kNegative };

  /// `num_shards` independent lock domains (rounded up to at least 1).
  explicit DecompCache(int num_shards = 16);

  /// Looks up a det-k subproblem. On kPositive, `*subtree` (when non-null)
  /// receives the recorded witness.
  Outcome Lookup(const Bitset& component, const Bitset& connector, int k,
                 std::shared_ptr<const CachedSubtree>* subtree = nullptr);

  /// Records that (component, connector) has no width-<=k decomposition.
  void InsertNegative(const Bitset& component, const Bitset& connector, int k);

  /// Records a witness subtree for (component, connector, k).
  void InsertPositive(const Bitset& component, const Bitset& connector, int k,
                      std::shared_ptr<const CachedSubtree> subtree);

  /// Transposition-table probe: returns true (and counts a hit) when the
  /// state was already reached with a value <= `value`; otherwise records
  /// `value` as the new best and returns false. Atomic per state.
  bool DominatedOrInsert(const Bitset& state, int value);

  /// True when the state's recorded best value is strictly below `value`.
  /// Never inserts (A* uses this to drop stale queue entries).
  bool DominatedStrict(const Bitset& state, int value);

  /// Whole-instance witness lookup (serve keyspace, see file comment).
  /// On kPositive, `*meta` / `*subtree` (when non-null) receive the
  /// stored meta word and decomposition.
  Outcome LookupInstance(const Bitset& key, int* meta = nullptr,
                         std::shared_ptr<const CachedSubtree>* subtree =
                             nullptr);

  /// Records a whole-instance witness under `key`. First write wins (the
  /// witness for a content hash never changes).
  void InsertInstance(const Bitset& key, int meta,
                      std::shared_ptr<const CachedSubtree> subtree);

  /// Snapshot of the counters.
  DecompCacheStats stats() const;

  /// Number of lock shards.
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Entries currently stored, per shard (index-aligned with the shard
  /// ids). Takes each shard lock in turn; values from different shards
  /// are not a consistent cut under concurrent writers.
  std::vector<size_t> ShardEntryCounts() const;

  /// Total entries currently stored (sum of ShardEntryCounts()).
  size_t NumEntries() const;

  /// Drops all entries (counters are kept).
  void Clear();

 private:
  struct Key {
    Bitset a;
    Bitset b;
    int k;
    bool operator==(const Key& o) const {
      return k == o.k && a == o.a && b == o.b;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& key) const {
      uint64_t h = key.a.Hash();
      h ^= key.b.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(key.k) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    Outcome outcome = Outcome::kUnknown;
    int value = 0;
    std::shared_ptr<const CachedSubtree> subtree;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<Key, Entry, KeyHash> map;
  };

  // Bump the per-instance atomic and its process-wide metrics mirror.
  void CountHit();
  void CountMiss();
  void CountInsert();

  Shard& ShardFor(const Key& key) {
    HT_DCHECK(!shards_.empty());
    const size_t shard = KeyHash{}(key) % shards_.size();
    HT_DCHECK_LT(shard, shards_.size());
    HT_DCHECK(shards_[shard] != nullptr);
    return *shards_[shard];
  }
  static Key TranspositionKey(const Bitset& state) {
    // Transposition entries live in the same store under k = -1 (det-k
    // keys always have k >= 1, so the spaces cannot collide).
    return Key{state, Bitset(), -1};
  }
  static Key InstanceKey(const Bitset& key) {
    // Whole-instance witness entries live under k = -2 (disjoint from
    // both the det-k space, k >= 1, and the transposition space, k = -1).
    return Key{key, Bitset(), -2};
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> inserts_{0};
};

}  // namespace hypertree

#endif  // HYPERTREE_SEARCH_DECOMP_CACHE_H_
