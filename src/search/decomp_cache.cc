#include "search/decomp_cache.h"

#include "util/metrics.h"

namespace hypertree {

namespace {

// Process-wide mirrors of the per-instance counters, so cache traffic is
// queryable through the metrics registry (tools --json, bench records)
// without plumbing a cache handle around.
metrics::Counter& HitsMetric() {
  static metrics::Counter& c = metrics::GetCounter("decomp_cache.hits");
  return c;
}
metrics::Counter& MissesMetric() {
  static metrics::Counter& c = metrics::GetCounter("decomp_cache.misses");
  return c;
}
metrics::Counter& InsertsMetric() {
  static metrics::Counter& c = metrics::GetCounter("decomp_cache.inserts");
  return c;
}

}  // namespace

void DecompCache::CountHit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  HitsMetric().Increment();
}

void DecompCache::CountMiss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  MissesMetric().Increment();
}

void DecompCache::CountInsert() {
  inserts_.fetch_add(1, std::memory_order_relaxed);
  InsertsMetric().Increment();
}

DecompCache::DecompCache(int num_shards) {
  int n = num_shards < 1 ? 1 : num_shards;
  shards_.reserve(n);
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

DecompCache::Outcome DecompCache::Lookup(
    const Bitset& component, const Bitset& connector, int k,
    std::shared_ptr<const CachedSubtree>* subtree) {
  // det-k keys use k >= 1; k = -1 is reserved for transposition entries
  // (see TranspositionKey), so a stray non-positive k would silently read
  // the wrong keyspace.
  HT_DCHECK_GE(k, 1);
  Key key{component, connector, k};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.outcome == Outcome::kUnknown) {
    CountMiss();
    return Outcome::kUnknown;
  }
  CountHit();
  if (it->second.outcome == Outcome::kPositive && subtree != nullptr) {
    *subtree = it->second.subtree;
  }
  return it->second.outcome;
}

void DecompCache::InsertNegative(const Bitset& component,
                                 const Bitset& connector, int k) {
  HT_DCHECK_GE(k, 1);
  Key key{component, connector, k};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& e = shard.map[std::move(key)];
  if (e.outcome == Outcome::kUnknown) {
    e.outcome = Outcome::kNegative;
    CountInsert();
  }
}

void DecompCache::InsertPositive(const Bitset& component,
                                 const Bitset& connector, int k,
                                 std::shared_ptr<const CachedSubtree> subtree) {
  HT_DCHECK_GE(k, 1);
  HT_CHECK(subtree != nullptr)
      << "positive det-k entries must carry their witness subtree";
  HT_CHECK_EQ(subtree->chi.size(), subtree->parent.size())
      << "cached subtree chi/parent arrays out of step";
  HT_CHECK_EQ(subtree->lambda.size(), subtree->parent.size())
      << "cached subtree lambda/parent arrays out of step";
  Key key{component, connector, k};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& e = shard.map[std::move(key)];
  if (e.outcome != Outcome::kPositive) {
    e.outcome = Outcome::kPositive;
    e.subtree = std::move(subtree);
    CountInsert();
  }
}

bool DecompCache::DominatedOrInsert(const Bitset& state, int value) {
  Key key = TranspositionKey(state);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(std::move(key));
  Entry& e = it->second;
  if (!inserted && e.outcome == Outcome::kPositive && e.value <= value) {
    CountHit();
    return true;
  }
  CountMiss();
  e.outcome = Outcome::kPositive;
  e.value = value;
  CountInsert();
  return false;
}

bool DecompCache::DominatedStrict(const Bitset& state, int value) {
  Key key = TranspositionKey(state);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  bool dominated = it != shard.map.end() &&
                   it->second.outcome == Outcome::kPositive &&
                   it->second.value < value;
  if (dominated) {
    CountHit();
  } else {
    CountMiss();
  }
  return dominated;
}

DecompCache::Outcome DecompCache::LookupInstance(
    const Bitset& key, int* meta,
    std::shared_ptr<const CachedSubtree>* subtree) {
  Key k = InstanceKey(key);
  Shard& shard = ShardFor(k);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(k);
  if (it == shard.map.end() || it->second.outcome != Outcome::kPositive) {
    CountMiss();
    return Outcome::kUnknown;
  }
  CountHit();
  if (meta != nullptr) *meta = it->second.value;
  if (subtree != nullptr) *subtree = it->second.subtree;
  return Outcome::kPositive;
}

void DecompCache::InsertInstance(const Bitset& key, int meta,
                                 std::shared_ptr<const CachedSubtree> subtree) {
  HT_CHECK(subtree != nullptr)
      << "instance entries must carry their witness subtree";
  HT_CHECK_EQ(subtree->chi.size(), subtree->parent.size())
      << "cached subtree chi/parent arrays out of step";
  HT_CHECK_EQ(subtree->lambda.size(), subtree->parent.size())
      << "cached subtree lambda/parent arrays out of step";
  Key k = InstanceKey(key);
  Shard& shard = ShardFor(k);
  std::lock_guard<std::mutex> lock(shard.mu);
  Entry& e = shard.map[std::move(k)];
  if (e.outcome != Outcome::kPositive) {
    e.outcome = Outcome::kPositive;
    e.value = meta;
    e.subtree = std::move(subtree);
    CountInsert();
  }
}

std::vector<size_t> DecompCache::ShardEntryCounts() const {
  std::vector<size_t> counts;
  counts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    counts.push_back(shard->map.size());
  }
  return counts;
}

size_t DecompCache::NumEntries() const {
  size_t total = 0;
  for (size_t c : ShardEntryCounts()) total += c;
  return total;
}

DecompCacheStats DecompCache::stats() const {
  DecompCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  return s;
}

void DecompCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
  }
}

}  // namespace hypertree
