// Fast evaluation of elimination orderings.
//
// The genetic algorithms evaluate millions of orderings, so the width
// computation avoids materializing fill-in graphs: it propagates each
// eliminated vertex's earlier-neighbor set to the next-eliminated neighbor
// (thesis Figure 6.2, an adaptation of the perfect-elimination-ordering
// test of Golumbic), running in O(V + E') with E' the filled edge set.

#ifndef HYPERTREE_ORDERING_EVALUATOR_H_
#define HYPERTREE_ORDERING_EVALUATOR_H_

#include <vector>

#include "graph/graph.h"
#include "ordering/ordering.h"

namespace hypertree {

/// Width (max bag size - 1) of the tree decomposition that bucket
/// elimination builds from `sigma`; equals BucketEliminate(g, sigma).width.
int EvaluateOrderingWidth(const Graph& g, const EliminationOrdering& sigma);

/// All bags, as vertex lists: result[i] is the bag created when sigma[i]
/// is eliminated (contains sigma[i] itself). Same O(V + E') algorithm.
std::vector<std::vector<int>> OrderingBags(const Graph& g,
                                           const EliminationOrdering& sigma);

}  // namespace hypertree

#endif  // HYPERTREE_ORDERING_EVALUATOR_H_
