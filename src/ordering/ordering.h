// Elimination orderings: the shared search space for treewidth and
// generalized hypertree width (thesis ch. 3).
//
// An elimination ordering sigma = (v_1, ..., v_n) is a permutation of the
// vertices. Following the thesis' bucket-elimination convention, vertices
// are *eliminated from the back*: position n first, position 1 last.

#ifndef HYPERTREE_ORDERING_ORDERING_H_
#define HYPERTREE_ORDERING_ORDERING_H_

#include <vector>

namespace hypertree {

/// A permutation of {0, ..., n-1}; index = position in sigma.
using EliminationOrdering = std::vector<int>;

/// True if `sigma` is a permutation of {0, ..., n-1}.
bool IsValidOrdering(const EliminationOrdering& sigma, int n);

/// Positions: result[v] = index of v in sigma.
std::vector<int> OrderingPositions(const EliminationOrdering& sigma);

}  // namespace hypertree

#endif  // HYPERTREE_ORDERING_ORDERING_H_
