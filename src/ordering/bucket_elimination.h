// Vertex/bucket elimination: turns an elimination ordering into the bag
// tree underlying a tree decomposition (thesis §2.5, Figures 2.10/2.12).

#ifndef HYPERTREE_ORDERING_BUCKET_ELIMINATION_H_
#define HYPERTREE_ORDERING_BUCKET_ELIMINATION_H_

#include <vector>

#include "graph/graph.h"
#include "ordering/ordering.h"
#include "util/bitset.h"

namespace hypertree {

/// The bucket tree produced by eliminating `order` back-to-front: one bag
/// per vertex (bag[v] = {v} union its neighbors at elimination time), and
/// a parent pointer to the bucket of the next-eliminated neighbor.
struct EliminationTree {
  EliminationOrdering order;
  std::vector<Bitset> bags;   // indexed by vertex id
  std::vector<int> parent;    // parent[v] = vertex whose bucket is parent; -1 root
  int width = -1;             // max |bag| - 1 (treewidth-style width)
};

/// Runs vertex elimination (equivalently bucket elimination) of `sigma`
/// on `g`. sigma must be a permutation of g's vertices.
EliminationTree BucketEliminate(const Graph& g, const EliminationOrdering& sigma);

}  // namespace hypertree

#endif  // HYPERTREE_ORDERING_BUCKET_ELIMINATION_H_
