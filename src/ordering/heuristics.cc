#include "ordering/heuristics.h"

#include <vector>

#include "graph/elimination_graph.h"
#include "util/bitset.h"

namespace hypertree {

namespace {

// Shared scaffolding: repeatedly pick a vertex by `score` (lower is
// better, random tie-break), place it at the next back position, then
// apply `remove` to take it out of the working structure.
template <typename ScoreFn, typename RemoveFn>
EliminationOrdering GreedyBackToFront(int n, Rng* rng, ScoreFn score,
                                      RemoveFn remove, const Bitset* seed) {
  EliminationOrdering sigma(n);
  Bitset alive = seed != nullptr ? *seed : Bitset(n);
  if (seed == nullptr) alive.SetAll();
  for (int pos = n - 1; pos >= 0; --pos) {
    int best = -1;
    long best_score = 0;
    int ties = 0;
    for (int v = alive.First(); v >= 0; v = alive.Next(v)) {
      long sc = score(v);
      if (best == -1 || sc < best_score) {
        best = v;
        best_score = sc;
        ties = 1;
      } else if (sc == best_score && rng != nullptr) {
        // Reservoir-style uniform tie-break.
        ++ties;
        if (rng->UniformInt(ties) == 0) best = v;
      }
    }
    sigma[pos] = best;
    alive.Reset(best);
    remove(best);
  }
  return sigma;
}

}  // namespace

EliminationOrdering MinFillOrdering(const Graph& g, Rng* rng) {
  EliminationGraph eg(g);
  return GreedyBackToFront(
      g.NumVertices(), rng, [&eg](int v) { return long{1} * eg.FillIn(v); },
      [&eg](int v) { eg.Eliminate(v); }, nullptr);
}

EliminationOrdering MinDegreeOrdering(const Graph& g, Rng* rng) {
  EliminationGraph eg(g);
  return GreedyBackToFront(
      g.NumVertices(), rng, [&eg](int v) { return long{1} * eg.Degree(v); },
      [&eg](int v) { eg.Eliminate(v); }, nullptr);
}

EliminationOrdering MinWidthOrdering(const Graph& g, Rng* rng) {
  // Track degrees in the shrinking graph without fill edges.
  int n = g.NumVertices();
  Bitset alive(n);
  alive.SetAll();
  return GreedyBackToFront(
      n, rng,
      [&](int v) { return long{1} * g.NeighborBits(v).IntersectCount(alive); },
      [&](int v) { alive.Reset(v); }, nullptr);
}

EliminationOrdering McsOrdering(const Graph& g, Rng* rng) {
  int n = g.NumVertices();
  Bitset visited(n);
  EliminationOrdering sigma(n);
  // Visit order fills positions 0..n-1; elimination later runs back to
  // front, i.e. reverse visit order, as MCS requires.
  for (int pos = 0; pos < n; ++pos) {
    int best = -1, best_score = -1, ties = 0;
    for (int v = 0; v < n; ++v) {
      if (visited.Test(v)) continue;
      int sc = g.NeighborBits(v).IntersectCount(visited);
      if (sc > best_score) {
        best = v;
        best_score = sc;
        ties = 1;
      } else if (sc == best_score && rng != nullptr) {
        ++ties;
        if (rng->UniformInt(ties) == 0) best = v;
      }
    }
    sigma[pos] = best;
    visited.Set(best);
  }
  return sigma;
}

EliminationOrdering RandomOrdering(int n, Rng* rng) {
  HT_CHECK(rng != nullptr);
  return rng->Permutation(n);
}

}  // namespace hypertree
