#include "ordering/evaluator.h"

#include <algorithm>

#include "util/check.h"

namespace hypertree {

namespace {

// Core of the indirect-fill evaluation. Calls visit(i, X) for each
// position i from n-1 down to stop, where X is the set of not-yet-
// eliminated neighbors of sigma[i] in the partially filled graph
// (excluding sigma[i] itself). `visit` returns false to stop early.
template <typename Visit>
void ScanBags(const Graph& g, const EliminationOrdering& sigma, Visit visit) {
  int n = g.NumVertices();
  HT_DCHECK(IsValidOrdering(sigma, n));
  std::vector<int> pos = OrderingPositions(sigma);
  // Adjacency lists that accumulate propagated earlier-neighbors; entries
  // may repeat, deduplication happens with the stamp array.
  std::vector<std::vector<int>> adj(n);
  for (int v = 0; v < n; ++v) adj[v] = g.Neighbors(v);
  std::vector<int> stamp(n, -1);
  std::vector<int> bag;
  for (int i = n - 1; i >= 0; --i) {
    int v = sigma[i];
    bag.clear();
    for (int x : adj[v]) {
      if (pos[x] < i && stamp[x] != i) {
        stamp[x] = i;
        bag.push_back(x);
      }
    }
    if (!visit(i, bag)) return;
    if (!bag.empty()) {
      // Propagate to the neighbor eliminated next (max position).
      int u = bag[0];
      for (int x : bag) {
        if (pos[x] > pos[u]) u = x;
      }
      for (int x : bag) {
        if (x != u) adj[u].push_back(x);
      }
    }
  }
}

}  // namespace

int EvaluateOrderingWidth(const Graph& g, const EliminationOrdering& sigma) {
  int width = 0;
  ScanBags(g, sigma, [&width](int i, const std::vector<int>& bag) {
    width = std::max(width, static_cast<int>(bag.size()));
    // Once width >= i, the remaining i vertices cannot produce a larger
    // bag (their bags live inside the first i positions).
    return width < i;
  });
  return width;
}

std::vector<std::vector<int>> OrderingBags(const Graph& g,
                                           const EliminationOrdering& sigma) {
  std::vector<std::vector<int>> bags(sigma.size());
  ScanBags(g, sigma, [&bags, &sigma](int i, const std::vector<int>& bag) {
    bags[i] = bag;
    bags[i].push_back(sigma[i]);
    return true;
  });
  return bags;
}

}  // namespace hypertree
