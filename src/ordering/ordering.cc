#include "ordering/ordering.h"

#include "util/check.h"

namespace hypertree {

bool IsValidOrdering(const EliminationOrdering& sigma, int n) {
  if (static_cast<int>(sigma.size()) != n) return false;
  std::vector<bool> seen(n, false);
  for (int v : sigma) {
    if (v < 0 || v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

std::vector<int> OrderingPositions(const EliminationOrdering& sigma) {
  std::vector<int> pos(sigma.size());
  for (size_t i = 0; i < sigma.size(); ++i) {
    HT_DCHECK(sigma[i] >= 0 && sigma[i] < static_cast<int>(sigma.size()));
    pos[sigma[i]] = static_cast<int>(i);
  }
  return pos;
}

}  // namespace hypertree
