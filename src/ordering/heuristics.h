// Greedy ordering heuristics for treewidth / ghw upper bounds.
//
// All heuristics fill the ordering from the back: the first vertex chosen
// is eliminated first and therefore sits at position n-1 (bucket
// elimination processes sigma back-to-front, thesis §2.5).

#ifndef HYPERTREE_ORDERING_HEURISTICS_H_
#define HYPERTREE_ORDERING_HEURISTICS_H_

#include "graph/graph.h"
#include "ordering/ordering.h"
#include "util/rng.h"

namespace hypertree {

/// min-fill: repeatedly eliminate the vertex adding the fewest fill edges
/// (ties broken randomly; thesis §4.4.2). The strongest greedy heuristic.
EliminationOrdering MinFillOrdering(const Graph& g, Rng* rng);

/// min-degree: repeatedly eliminate a vertex of minimum current degree.
EliminationOrdering MinDegreeOrdering(const Graph& g, Rng* rng);

/// min-width: like min-degree but without adding fill edges (only removes
/// vertices), so it bounds bag sizes more optimistically.
EliminationOrdering MinWidthOrdering(const Graph& g, Rng* rng);

/// Maximum cardinality search: repeatedly visit the vertex with the most
/// already-visited neighbors; elimination processes the reverse visit
/// order (the returned ordering is already in our back-to-front format).
EliminationOrdering McsOrdering(const Graph& g, Rng* rng);

/// A uniformly random permutation.
EliminationOrdering RandomOrdering(int n, Rng* rng);

}  // namespace hypertree

#endif  // HYPERTREE_ORDERING_HEURISTICS_H_
