#include "ordering/bucket_elimination.h"

#include <algorithm>

#include "graph/elimination_graph.h"
#include "util/check.h"

namespace hypertree {

EliminationTree BucketEliminate(const Graph& g,
                                const EliminationOrdering& sigma) {
  int n = g.NumVertices();
  HT_CHECK(IsValidOrdering(sigma, n));
  EliminationTree t;
  t.order = sigma;
  t.bags.assign(n, Bitset(n));
  t.parent.assign(n, -1);
  t.width = 0;
  std::vector<int> pos = OrderingPositions(sigma);
  EliminationGraph eg(g);
  for (int i = n - 1; i >= 0; --i) {
    int v = sigma[i];
    Bitset nb = eg.NeighborBits(v);
    t.bags[v] = nb;
    t.bags[v].Set(v);
    t.width = std::max(t.width, t.bags[v].Count() - 1);
    // Parent bucket: the neighbor eliminated next (max position < i).
    int best = -1;
    for (int u = nb.First(); u >= 0; u = nb.Next(u)) {
      if (best == -1 || pos[u] > pos[best]) best = u;
    }
    t.parent[v] = best;  // -1 when v had no remaining neighbors
    eg.Eliminate(v);
  }
  return t;
}

}  // namespace hypertree
