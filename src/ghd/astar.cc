#include "ghd/astar.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "bounds/ghw_lower_bounds.h"
#include "ghd/ghw_from_ordering.h"
#include "ghd/search_common.h"
#include "graph/elimination_graph.h"
#include "hypergraph/incidence_index.h"
#include "ordering/heuristics.h"
#include "search/decomp_cache.h"
#include "util/flat_map.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hypertree {

namespace {

metrics::Counter& PoppedMetric() {
  static metrics::Counter& c = metrics::GetCounter("astar_ghw.popped");
  return c;
}
metrics::Counter& GeneratedMetric() {
  static metrics::Counter& c = metrics::GetCounter("astar_ghw.generated");
  return c;
}

struct State {
  Bitset eliminated;
  int parent = -1;
  int vertex = -1;
  int g = 0;
  int f = 0;
  int depth = 0;
};

struct QueueEntry {
  int f;
  int depth;
  long order;
  int index;
  bool operator<(const QueueEntry& o) const {
    if (f != o.f) return f > o.f;
    if (depth != o.depth) return depth < o.depth;
    return order > o.order;
  }
};

}  // namespace

WidthResult AStarGhw(const Hypergraph& h, const GhwSearchOptions& options) {
  Timer timer;
  WidthResult res;
  int n = h.NumVertices();
  Rng rng(options.seed);
  SearchBudget budget(options);
  // One incidence index per instance; every bag-cover candidate
  // restriction (child generation and the greedy goal test) reads it.
  IncidenceIndex index(h);
  GhwEvaluator eval(h, &index);

  int lb = GhwLowerBound(h, &rng);
  EliminationOrdering greedy =
      n == 0 ? EliminationOrdering{} : MinFillOrdering(eval.primal(), &rng);
  int ub = n == 0 ? 0 : eval.EvaluateOrdering(greedy, options.cover_mode, &rng);
  if (options.initial_upper_bound > 0)
    ub = std::min(ub, options.initial_upper_bound);
  res.best_ordering = greedy;
  if (options.exchange) {
    options.exchange->PublishLowerBound(lb);
    if (n > 0 && options.cover_mode == CoverMode::kExact)
      options.exchange->PublishUpperBound(
          eval.EvaluateOrdering(greedy, CoverMode::kExact, &rng));
  }
  if (n == 0 || lb >= ub) {
    res.lower_bound = res.upper_bound = ub;
    res.exact = true;
    res.seconds = timer.ElapsedSeconds();
    return res;
  }

  std::vector<State> arena;
  std::priority_queue<QueueEntry> open;
  // Duplicate detection doubles as the transposition table: the recorded
  // value per eliminated set is the best g it was reached with, and
  // dominated regenerations are dropped before they are stored.
  DecompCache transposition;
  // The minor-min-width heuristic is by far the most expensive per-child
  // computation and the same child set is regenerated from many parents;
  // memoize it per eliminated set (freezing its rng-dependent
  // tie-breaking, which keeps the bound admissible).
  BitsetFlatMap<int> hb_memo;
  bool use_hb_memo = options.use_decomp_cache;
  long push_order = 0;

  State root;
  root.eliminated = Bitset(n);
  root.f = lb;
  arena.push_back(root);
  open.push({lb, 0, push_order++, 0});
  if (options.use_duplicate_detection)
    transposition.DominatedOrInsert(root.eliminated, 0);

  EliminationGraph eg(eval.primal());
  auto rebuild = [&eg](const Bitset& eliminated) {
    while (eg.UndoDepth() > 0) eg.UndoElimination();
    for (int v = eliminated.First(); v >= 0; v = eliminated.Next(v)) {
      eg.Eliminate(v);
    }
  };
  // Scratch bag: bag_cover_of runs once per child per pop, and the
  // temporary NeighborBits() materializes otherwise dominates the
  // allocation profile of child generation.
  Bitset bag_scratch(n);
  auto bag_cover_of = [&](int v) {
    bag_scratch.AssignAnd(eg.RawNeighborBits(v), eg.ActiveBits());
    bag_scratch.Set(v);
    return eval.CoverBag(bag_scratch, options.cover_mode, &rng, nullptr);
  };

  long popped = 0;
  int best_f_seen = lb;
  int goal = -1;
  std::vector<int> children;  // reused across pops

  while (!open.empty()) {
    if ((popped & 31) == 0 && budget.PollDeadline()) break;
    if (budget.ExceedsNodeBudget(static_cast<long>(arena.size()))) break;
    // Live racing: a better incumbent from a concurrent engine tightens
    // the pruning cutoff (sound: pruning at f >= ub with a witnessed ub
    // never discards a strictly better solution).
    if (options.exchange) {
      int inc = options.exchange->IncumbentUpperBound();
      if (inc < ub) ub = inc;
    }
    QueueEntry top = open.top();
    open.pop();
    const State& s = arena[top.index];
    if (options.use_duplicate_detection &&
        transposition.DominatedStrict(s.eliminated, s.g)) {
      continue;  // stale: regenerated since with a smaller g
    }
    ++popped;
    PoppedMetric().Increment();
    best_f_seen = std::max(best_f_seen, s.f);
    rebuild(s.eliminated);
    int remaining = eg.NumActive();
    // Goal test: covering the whole remainder with at most g hyperedges
    // caps every remaining bag cover at g, so the optimum through s is g.
    // The s.g < ub guard matters only in live-exchange mode, where ub may
    // have shrunk below the g of an already-stored state: such a state
    // cannot beat the incumbent and proves nothing (without an exchange,
    // generation-time pruning already guarantees g < ub).
    if (s.g < ub &&
        (remaining == 0 ||
         eval.CoverBag(eg.ActiveBits(), CoverMode::kGreedy, &rng, nullptr) <=
             s.g)) {
      goal = top.index;
      break;
    }

    children.clear();
    if (options.use_simplicial_reduction) {
      for (int v = eg.ActiveBits().First(); v >= 0;
           v = eg.ActiveBits().Next(v)) {
        if (eg.Degree(v) == 0) {
          children.push_back(v);
          break;
        }
      }
    }
    if (children.empty()) eg.ActiveBits().AppendTo(&children);

    int parent_index = top.index;
    int parent_g = s.g;
    int parent_f = s.f;
    Bitset parent_set = s.eliminated;
    int parent_depth = s.depth;
    for (int v : children) {
      // Exact bag covers dominate per-child cost; poll between them so
      // cancellation latency stays bounded by one cover.
      if (budget.PollDeadline()) break;
      int c = bag_cover_of(v);
      int child_g = std::max(parent_g, c);
      if (child_g >= ub) continue;
      Bitset child_set = parent_set;
      child_set.Set(v);
      int hb;
      if (use_hb_memo) {
        auto [slot, inserted] = hb_memo.TryEmplace(child_set, -1);
        if (inserted) {
          eg.Eliminate(v);
          *slot = RemainingGhwLowerBound(eg, index, &rng);
          eg.UndoElimination();
        }
        hb = *slot;
      } else {
        eg.Eliminate(v);
        hb = RemainingGhwLowerBound(eg, index, &rng);
        eg.UndoElimination();
      }
      int f = std::max({child_g, hb, parent_f});
      if (f >= ub) continue;
      if (options.use_duplicate_detection &&
          transposition.DominatedOrInsert(child_set, child_g)) {
        continue;
      }
      State t;
      t.eliminated = std::move(child_set);
      t.parent = parent_index;
      t.vertex = v;
      t.g = child_g;
      t.f = f;
      t.depth = parent_depth + 1;
      arena.push_back(std::move(t));
      GeneratedMetric().Increment();
      open.push({f, parent_depth + 1, push_order++,
                 static_cast<int>(arena.size()) - 1});
    }
  }

  res.nodes = popped;
  res.seconds = timer.ElapsedSeconds();
  res.cache_stats = transposition.stats();
  bool aborted = budget.Exceeded();
  if (goal >= 0) {
    EliminationOrdering sigma(n);
    std::vector<bool> used(n, false);
    std::vector<int> path;
    for (int i = goal; arena[i].parent != -1; i = arena[i].parent) {
      path.push_back(arena[i].vertex);
    }
    std::reverse(path.begin(), path.end());
    int pos = n - 1;
    for (int v : path) {
      sigma[pos--] = v;
      used[v] = true;
    }
    for (int v = 0; v < n; ++v) {
      if (!used[v]) sigma[pos--] = v;
    }
    res.best_ordering = sigma;
    res.upper_bound = arena[goal].g;
    res.exact = options.cover_mode == CoverMode::kExact;
    if (options.exchange && res.exact) {
      options.exchange->PublishUpperBound(res.upper_bound);
      options.exchange->PublishLowerBound(res.upper_bound);
    }
    // With greedy covers the g/f values overestimate bag costs, so they
    // prove nothing about the true ghw: fall back to the static bound.
    res.lower_bound = res.exact ? arena[goal].g : lb;
  } else if (aborted) {
    res.upper_bound = ub;
    res.lower_bound =
        options.cover_mode == CoverMode::kExact ? best_f_seen : lb;
    res.exact = false;
  } else {
    res.upper_bound = ub;
    res.exact = options.cover_mode == CoverMode::kExact;
    res.lower_bound = res.exact ? ub : lb;
  }
  DValidateOrderingWitness(h, res.best_ordering);
  return res;
}

}  // namespace hypertree
