#include "ghd/astar.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "bounds/ghw_lower_bounds.h"
#include "ghd/search_common.h"
#include "graph/elimination_graph.h"
#include "ordering/heuristics.h"
#include "util/timer.h"

namespace hypertree {

namespace {

struct State {
  Bitset eliminated;
  int parent = -1;
  int vertex = -1;
  int g = 0;
  int f = 0;
  int depth = 0;
};

struct QueueEntry {
  int f;
  int depth;
  long order;
  int index;
  bool operator<(const QueueEntry& o) const {
    if (f != o.f) return f > o.f;
    if (depth != o.depth) return depth < o.depth;
    return order > o.order;
  }
};

}  // namespace

WidthResult AStarGhw(const Hypergraph& h, const GhwSearchOptions& options) {
  Timer timer;
  WidthResult res;
  int n = h.NumVertices();
  Rng rng(options.seed);
  Deadline deadline(options.time_limit_seconds);
  GhwEvaluator eval(h);

  int lb = GhwLowerBound(h, &rng);
  EliminationOrdering greedy =
      n == 0 ? EliminationOrdering{} : MinFillOrdering(eval.primal(), &rng);
  int ub = n == 0 ? 0 : eval.EvaluateOrdering(greedy, options.cover_mode, &rng);
  if (options.initial_upper_bound > 0)
    ub = std::min(ub, options.initial_upper_bound);
  res.best_ordering = greedy;
  if (n == 0 || lb >= ub) {
    res.lower_bound = res.upper_bound = ub;
    res.exact = true;
    res.seconds = timer.ElapsedSeconds();
    return res;
  }

  std::vector<State> arena;
  std::priority_queue<QueueEntry> open;
  std::unordered_map<Bitset, int> best_g;
  long push_order = 0;

  State root;
  root.eliminated = Bitset(n);
  root.f = lb;
  arena.push_back(root);
  open.push({lb, 0, push_order++, 0});
  if (options.use_duplicate_detection) best_g[root.eliminated] = 0;

  EliminationGraph eg(eval.primal());
  auto rebuild = [&eg](const Bitset& eliminated) {
    while (eg.UndoDepth() > 0) eg.UndoElimination();
    for (int v = eliminated.First(); v >= 0; v = eliminated.Next(v)) {
      eg.Eliminate(v);
    }
  };
  auto bag_cover_of = [&](int v) {
    Bitset bag = eg.NeighborBits(v);
    bag.Set(v);
    return eval.CoverBag(bag, options.cover_mode, &rng, nullptr);
  };

  long popped = 0;
  bool aborted = false;
  int best_f_seen = lb;
  int goal = -1;

  while (!open.empty()) {
    if ((popped & 31) == 0 && deadline.Expired()) {
      aborted = true;
      break;
    }
    if (options.max_nodes > 0 &&
        static_cast<long>(arena.size()) > options.max_nodes) {
      aborted = true;
      break;
    }
    QueueEntry top = open.top();
    open.pop();
    const State& s = arena[top.index];
    if (options.use_duplicate_detection && best_g[s.eliminated] < s.g) {
      continue;  // stale
    }
    ++popped;
    best_f_seen = std::max(best_f_seen, s.f);
    rebuild(s.eliminated);
    int remaining = eg.NumActive();
    // Goal test: covering the whole remainder with at most g hyperedges
    // caps every remaining bag cover at g, so the optimum through s is g.
    if (remaining == 0 ||
        eval.CoverBag(eg.ActiveBits(), CoverMode::kGreedy, &rng, nullptr) <=
            s.g) {
      goal = top.index;
      break;
    }

    std::vector<int> children;
    if (options.use_simplicial_reduction) {
      for (int v = eg.ActiveBits().First(); v >= 0;
           v = eg.ActiveBits().Next(v)) {
        if (eg.Degree(v) == 0) {
          children.push_back(v);
          break;
        }
      }
    }
    if (children.empty()) children = eg.ActiveBits().ToVector();

    int parent_index = top.index;
    int parent_g = s.g;
    int parent_f = s.f;
    Bitset parent_set = s.eliminated;
    int parent_depth = s.depth;
    for (int v : children) {
      int c = bag_cover_of(v);
      int child_g = std::max(parent_g, c);
      if (child_g >= ub) continue;
      eg.Eliminate(v);
      int hb = RemainingGhwLowerBound(eg, h, &rng);
      eg.UndoElimination();
      int f = std::max({child_g, hb, parent_f});
      if (f >= ub) continue;
      Bitset child_set = parent_set;
      child_set.Set(v);
      if (options.use_duplicate_detection) {
        auto it = best_g.find(child_set);
        if (it != best_g.end() && it->second <= child_g) continue;
        best_g[child_set] = child_g;
      }
      State t;
      t.eliminated = std::move(child_set);
      t.parent = parent_index;
      t.vertex = v;
      t.g = child_g;
      t.f = f;
      t.depth = parent_depth + 1;
      arena.push_back(std::move(t));
      open.push({f, parent_depth + 1, push_order++,
                 static_cast<int>(arena.size()) - 1});
    }
  }

  res.nodes = popped;
  res.seconds = timer.ElapsedSeconds();
  if (goal >= 0) {
    EliminationOrdering sigma(n);
    std::vector<bool> used(n, false);
    std::vector<int> path;
    for (int i = goal; arena[i].parent != -1; i = arena[i].parent) {
      path.push_back(arena[i].vertex);
    }
    std::reverse(path.begin(), path.end());
    int pos = n - 1;
    for (int v : path) {
      sigma[pos--] = v;
      used[v] = true;
    }
    for (int v = 0; v < n; ++v) {
      if (!used[v]) sigma[pos--] = v;
    }
    res.best_ordering = sigma;
    res.upper_bound = arena[goal].g;
    res.exact = options.cover_mode == CoverMode::kExact;
    // With greedy covers the g/f values overestimate bag costs, so they
    // prove nothing about the true ghw: fall back to the static bound.
    res.lower_bound = res.exact ? arena[goal].g : lb;
  } else if (aborted) {
    res.upper_bound = ub;
    res.lower_bound =
        options.cover_mode == CoverMode::kExact ? best_f_seen : lb;
    res.exact = false;
  } else {
    res.upper_bound = ub;
    res.exact = options.cover_mode == CoverMode::kExact;
    res.lower_bound = res.exact ? ub : lb;
  }
  return res;
}

}  // namespace hypertree
