#include "ghd/ghw_from_ordering.h"

#include <algorithm>

#include "ordering/bucket_elimination.h"
#include "ordering/evaluator.h"
#include "setcover/exact.h"
#include "setcover/greedy.h"
#include "util/check.h"
#include "util/metrics.h"

namespace hypertree {

namespace {

metrics::Counter& CoverRestrictionsMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("incidence.cover_restrictions");
  return c;
}
metrics::Counter& CoverCandidatesMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("incidence.cover_candidates");
  return c;
}

}  // namespace

GhwEvaluator::GhwEvaluator(const Hypergraph& h)
    : GhwEvaluator(h, nullptr) {}

GhwEvaluator::GhwEvaluator(const Hypergraph& h, const IncidenceIndex* index)
    : h_(h), primal_(h.PrimalGraph()), touched_scratch_(h.NumEdges()) {
  if (index == nullptr) {
    owned_index_ = std::make_unique<IncidenceIndex>(h);
    index_ = owned_index_.get();
  } else {
    index_ = index;
  }
  edge_sets_.reserve(h.NumEdges());
  for (int e = 0; e < h.NumEdges(); ++e) edge_sets_.push_back(h.EdgeBits(e));
}

int GhwEvaluator::CoverBag(const Bitset& bag, CoverMode mode, Rng* rng,
                           std::vector<int>* chosen) {
  if (mode == CoverMode::kExact && chosen == nullptr) {
    if (const int* hit = exact_cache_.Find(bag)) return *hit;
  }
  // Restrict the cover scans to the edges the incidence index reports as
  // touching the bag: edges disjoint from the bag can never join a cover
  // (and never influence greedy tie-break draws), so the result — and in
  // greedy mode the rng state — is bit-identical to the full scan.
  //
  // Greedy covers are the per-child hot path; they run on the index's
  // flat edge->vertex arena through the batched candidate-evaluation
  // kernel (GreedySetCoverRows). The restriction must pay for its own
  // EdgesTouching OR: with a one-word candidate universe the
  // unrestricted packed scan is strictly cheaper, so only larger
  // universes take the mask.
  if (mode == CoverMode::kGreedy) {
    if (h_.NumEdges() <= 64) {
      return GreedySetCoverRows(index_->EdgeVarRows(),
                                index_->EdgeVarStride(), h_.NumEdges(),
                                nullptr, bag, rng, chosen, &greedy_scratch_);
    }
    index_->EdgesTouching(bag, &touched_scratch_);
    CoverRestrictionsMetric().Increment();
    CoverCandidatesMetric().Add(touched_scratch_.Count());
    return GreedySetCoverRows(index_->EdgeVarRows(), index_->EdgeVarStride(),
                              h_.NumEdges(), &touched_scratch_, bag, rng,
                              chosen, &greedy_scratch_);
  }
  index_->EdgesTouching(bag, &touched_scratch_);
  CoverRestrictionsMetric().Increment();
  CoverCandidatesMetric().Add(touched_scratch_.Count());
  active_scratch_.clear();
  touched_scratch_.AppendTo(&active_scratch_);
  int k = ExactSetCover(edge_sets_, active_scratch_, bag, chosen);
  if (chosen == nullptr) exact_cache_.TryEmplace(bag, k);
  return k;
}

int GhwEvaluator::EvaluateOrdering(const EliminationOrdering& sigma,
                                   CoverMode mode, Rng* rng) {
  int width = 0;
  std::vector<std::vector<int>> bags = OrderingBags(primal_, sigma);
  Bitset bag_bits(h_.NumVertices());
  for (const std::vector<int>& bag : bags) {
    bag_bits.Clear();
    for (int v : bag) bag_bits.Set(v);
    width = std::max(width, CoverBag(bag_bits, mode, rng, nullptr));
  }
  return width;
}

GeneralizedHypertreeDecomposition GhwEvaluator::BuildGhd(
    const EliminationOrdering& sigma, CoverMode mode, Rng* rng) {
  EliminationTree t = BucketEliminate(primal_, sigma);
  TreeDecomposition td = TreeDecompositionFromEliminationTree(t);
  GeneralizedHypertreeDecomposition ghd(std::move(td));
  for (int v = 0; v < h_.NumVertices(); ++v) {
    std::vector<int> chosen;
    CoverBag(t.bags[v], mode, rng, &chosen);
    ghd.SetLambda(v, std::move(chosen));
  }
  if (ht_internal::kDCheckEnabled) ValidateDecomposition(h_, ghd);
  return ghd;
}

void DValidateOrderingWitness(const Hypergraph& h,
                              const EliminationOrdering& sigma) {
  if (!ht_internal::kDCheckEnabled) return;
  if (static_cast<int>(sigma.size()) != h.NumVertices()) return;
  GhwEvaluator eval(h);
  // Exact covers keep the check independent of any greedy tie-break rng;
  // BuildGhd validates the result before returning it.
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(sigma, CoverMode::kExact);
  ValidateDecomposition(h, ghd);
}

}  // namespace hypertree
