#include "ghd/ghw_from_ordering.h"

#include <algorithm>

#include "ordering/bucket_elimination.h"
#include "ordering/evaluator.h"
#include "setcover/exact.h"
#include "setcover/greedy.h"
#include "util/check.h"

namespace hypertree {

GhwEvaluator::GhwEvaluator(const Hypergraph& h)
    : h_(h), primal_(h.PrimalGraph()) {
  edge_sets_.reserve(h.NumEdges());
  for (int e = 0; e < h.NumEdges(); ++e) edge_sets_.push_back(h.EdgeBits(e));
}

int GhwEvaluator::CoverBag(const Bitset& bag, CoverMode mode, Rng* rng,
                           std::vector<int>* chosen) {
  if (mode == CoverMode::kGreedy) {
    return GreedySetCover(edge_sets_, bag, rng, chosen);
  }
  if (chosen == nullptr) {
    auto it = exact_cache_.find(bag);
    if (it != exact_cache_.end()) return it->second;
    int k = ExactSetCover(edge_sets_, bag, nullptr);
    exact_cache_.emplace(bag, k);
    return k;
  }
  return ExactSetCover(edge_sets_, bag, chosen);
}

int GhwEvaluator::EvaluateOrdering(const EliminationOrdering& sigma,
                                   CoverMode mode, Rng* rng) {
  int width = 0;
  std::vector<std::vector<int>> bags = OrderingBags(primal_, sigma);
  Bitset bag_bits(h_.NumVertices());
  for (const std::vector<int>& bag : bags) {
    bag_bits.Clear();
    for (int v : bag) bag_bits.Set(v);
    width = std::max(width, CoverBag(bag_bits, mode, rng, nullptr));
  }
  return width;
}

GeneralizedHypertreeDecomposition GhwEvaluator::BuildGhd(
    const EliminationOrdering& sigma, CoverMode mode, Rng* rng) {
  EliminationTree t = BucketEliminate(primal_, sigma);
  TreeDecomposition td = TreeDecompositionFromEliminationTree(t);
  GeneralizedHypertreeDecomposition ghd(std::move(td));
  for (int v = 0; v < h_.NumVertices(); ++v) {
    std::vector<int> chosen;
    CoverBag(t.bags[v], mode, rng, &chosen);
    ghd.SetLambda(v, std::move(chosen));
  }
  if (ht_internal::kDCheckEnabled) ValidateDecomposition(h_, ghd);
  return ghd;
}

void DValidateOrderingWitness(const Hypergraph& h,
                              const EliminationOrdering& sigma) {
  if (!ht_internal::kDCheckEnabled) return;
  if (static_cast<int>(sigma.size()) != h.NumVertices()) return;
  GhwEvaluator eval(h);
  // Exact covers keep the check independent of any greedy tie-break rng;
  // BuildGhd validates the result before returning it.
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(sigma, CoverMode::kExact);
  ValidateDecomposition(h, ghd);
}

}  // namespace hypertree
