// BB-ghw: branch and bound for generalized hypertree width (thesis ch. 8).
//
// Searches elimination orderings (complete for ghw by Theorem 3) with
// exact cached bag covers as step costs, the tw-ksc lower bound for
// pruning, a whole-remainder cover analog of PR1, and the PR2 swap rule.

#ifndef HYPERTREE_GHD_BRANCH_AND_BOUND_H_
#define HYPERTREE_GHD_BRANCH_AND_BOUND_H_

#include "ghd/ghw_from_ordering.h"
#include "hypergraph/hypergraph.h"
#include "td/exact.h"

namespace hypertree {

/// Extra knobs for the ghw searches.
struct GhwSearchOptions : SearchOptions {
  /// Bag covers inside the search: exact (Definition 17, default) or
  /// greedy (ablation: may overestimate bag costs and lose optimality).
  CoverMode cover_mode = CoverMode::kExact;
};

/// Computes ghw(h) (exact when cover_mode is kExact and the budget
/// suffices; otherwise anytime bounds).
WidthResult BranchAndBoundGhw(const Hypergraph& h,
                              const GhwSearchOptions& options = {});

}  // namespace hypertree

#endif  // HYPERTREE_GHD_BRANCH_AND_BOUND_H_
