#include "ghd/branch_and_bound.h"

#include <algorithm>

#include "bounds/ghw_lower_bounds.h"
#include "ghd/search_common.h"
#include "graph/elimination_graph.h"
#include "ordering/heuristics.h"
#include "util/timer.h"

namespace hypertree {

namespace {

class GhwBbSearch {
 public:
  GhwBbSearch(const Hypergraph& h, const GhwSearchOptions& opts)
      : h_(h),
        opts_(opts),
        rng_(opts.seed),
        deadline_(opts.time_limit_seconds),
        eval_(h),
        eg_(eval_.primal()),
        n_(h.NumVertices()) {}

  WidthResult Run() {
    WidthResult res;
    Timer timer;
    int lb = GhwLowerBound(h_, &rng_);
    // Warm-start upper bound: min-fill and min-degree orderings.
    EliminationOrdering best = MinFillOrdering(eval_.primal(), &rng_);
    int ub = eval_.EvaluateOrdering(best, opts_.cover_mode, &rng_);
    {
      EliminationOrdering md = MinDegreeOrdering(eval_.primal(), &rng_);
      int w = eval_.EvaluateOrdering(md, opts_.cover_mode, &rng_);
      if (w < ub) {
        ub = w;
        best = md;
      }
    }
    ub_ = ub;
    best_ = best;
    if (opts_.initial_upper_bound > 0 && opts_.initial_upper_bound < ub_)
      ub_ = opts_.initial_upper_bound;
    if (n_ > 0 && lb < ub_) {
      Dfs(/*g_val=*/0, /*f_parent=*/lb, /*prev_vertex=*/-1, Bitset(n_),
          /*parent_free=*/false);
    }
    res.upper_bound = ub_;
    res.exact = !aborted_ && opts_.cover_mode == CoverMode::kExact;
    res.lower_bound = res.exact ? ub_ : lb;
    res.nodes = nodes_;
    res.seconds = timer.ElapsedSeconds();
    res.best_ordering = best_;
    return res;
  }

 private:
  EliminationOrdering BuildOrdering() const {
    EliminationOrdering sigma(n_);
    std::vector<bool> used(n_, false);
    int pos = n_ - 1;
    for (int v : suffix_) {
      sigma[pos--] = v;
      used[v] = true;
    }
    for (int v = 0; v < n_; ++v) {
      if (!used[v]) sigma[pos--] = v;
    }
    return sigma;
  }

  bool BudgetExceeded() {
    if (aborted_) return true;
    if (opts_.max_nodes > 0 && nodes_ >= opts_.max_nodes) aborted_ = true;
    if ((nodes_ & 127) == 0 && deadline_.Expired()) aborted_ = true;
    return aborted_;
  }

  int BagCoverOf(int v) {
    Bitset bag = eg_.NeighborBits(v);
    bag.Set(v);
    return eval_.CoverBag(bag, opts_.cover_mode, &rng_, nullptr);
  }

  void Dfs(int g_val, int f_parent, int prev_vertex, const Bitset& prev_nb,
           bool parent_free) {
    if (BudgetExceeded()) return;
    ++nodes_;
    int remaining = eg_.NumActive();
    if (remaining == 0) {
      if (g_val < ub_) {
        ub_ = g_val;
        best_ = BuildOrdering();
      }
      return;
    }
    // PR1 analog: bag covers are monotone under subsets, so covering the
    // whole active set bounds every remaining bag cover.
    int all_cover =
        eval_.CoverBag(eg_.ActiveBits(), CoverMode::kGreedy, &rng_, nullptr);
    int w = std::max(g_val, all_cover);
    if (w < ub_) {
      ub_ = w;
      best_ = BuildOrdering();
    }
    if (all_cover <= g_val) return;  // completions below cannot beat g_val

    int hb = RemainingGhwLowerBound(eg_, h_, &rng_);
    int f = std::max({g_val, hb, f_parent});
    if (f >= ub_) return;

    // Safe reduction: an isolated active vertex always forms the bag {v}
    // with cover 1 <= any width; eliminate it immediately.
    int forced = -1;
    if (opts_.use_simplicial_reduction) {
      for (int v = eg_.ActiveBits().First(); v >= 0;
           v = eg_.ActiveBits().Next(v)) {
        if (eg_.Degree(v) == 0) {
          forced = v;
          break;
        }
      }
    }

    std::vector<int> children;
    if (forced >= 0) {
      children.push_back(forced);
    } else {
      children = eg_.ActiveBits().ToVector();
      // Cheapest bags first.
      std::vector<int> cost(children.size());
      for (size_t i = 0; i < children.size(); ++i)
        cost[i] = BagCoverOf(children[i]);
      std::vector<int> idx(children.size());
      for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
      std::stable_sort(idx.begin(), idx.end(),
                       [&cost](int a, int b) { return cost[a] < cost[b]; });
      std::vector<int> sorted;
      sorted.reserve(children.size());
      for (int i : idx) sorted.push_back(children[i]);
      children = std::move(sorted);
    }

    for (int v : children) {
      if (opts_.use_pr2 && forced < 0 && parent_free && prev_vertex >= 0 &&
          v < prev_vertex && !prev_nb.Test(v)) {
        continue;  // PR2: swap-equivalent ordering explored elsewhere
      }
      int c = BagCoverOf(v);
      if (std::max(g_val, c) >= ub_) continue;
      Bitset nb = eg_.NeighborBits(v);
      suffix_.push_back(v);
      eg_.Eliminate(v);
      Dfs(std::max(g_val, c), f, v, nb, forced < 0);
      eg_.UndoElimination();
      suffix_.pop_back();
      if (aborted_) return;
    }
  }

  const Hypergraph& h_;
  GhwSearchOptions opts_;
  Rng rng_;
  Deadline deadline_;
  GhwEvaluator eval_;
  EliminationGraph eg_;
  int n_;
  int ub_ = 0;
  EliminationOrdering best_;
  std::vector<int> suffix_;
  long nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

WidthResult BranchAndBoundGhw(const Hypergraph& h,
                              const GhwSearchOptions& options) {
  return GhwBbSearch(h, options).Run();
}

}  // namespace hypertree
