#include "ghd/branch_and_bound.h"

#include <algorithm>

#include "bounds/ghw_lower_bounds.h"
#include "ghd/ghw_from_ordering.h"
#include "ghd/search_common.h"
#include "graph/elimination_graph.h"
#include "hypergraph/incidence_index.h"
#include "ordering/heuristics.h"
#include "search/decomp_cache.h"
#include "util/flat_map.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hypertree {

namespace {

metrics::Counter& NodesMetric() {
  static metrics::Counter& c = metrics::GetCounter("bb_ghw.nodes");
  return c;
}

class GhwBbSearch {
 public:
  GhwBbSearch(const Hypergraph& h, const GhwSearchOptions& opts)
      : h_(h),
        opts_(opts),
        rng_(opts.seed),
        budget_(opts),
        // One incidence index per instance, shared read-only by every
        // bag-cover candidate restriction below it.
        index_(h),
        eval_(h, &index_),
        eg_(eval_.primal()),
        n_(h.NumVertices()),
        // The transposition table is only sound with exact covers: greedy
        // g-values are not functions of the eliminated set, so pruning
        // revisits can change which orderings the ablation completes.
        use_cache_(opts.use_decomp_cache &&
                   opts.cover_mode == CoverMode::kExact),
        use_memos_(opts.use_decomp_cache) {}

  WidthResult Run() {
    WidthResult res;
    Timer timer;
    int lb = GhwLowerBound(h_, &rng_);
    // Warm-start upper bound: min-fill and min-degree orderings.
    EliminationOrdering best = MinFillOrdering(eval_.primal(), &rng_);
    int ub = eval_.EvaluateOrdering(best, opts_.cover_mode, &rng_);
    {
      EliminationOrdering md = MinDegreeOrdering(eval_.primal(), &rng_);
      int w = eval_.EvaluateOrdering(md, opts_.cover_mode, &rng_);
      if (w < ub) {
        ub = w;
        best = md;
      }
    }
    ub_ = ub;
    best_ = best;
    if (opts_.initial_upper_bound > 0 && opts_.initial_upper_bound < ub_)
      ub_ = opts_.initial_upper_bound;
    if (opts_.exchange) {
      opts_.exchange->PublishLowerBound(lb);
      if (opts_.cover_mode == CoverMode::kExact)
        opts_.exchange->PublishUpperBound(ub);
    }
    if (n_ > 0 && lb < ub_) {
      child_scratch_.assign(n_ + 1, {});
      nb_scratch_.assign(n_ + 1, Bitset(n_));
      bag_scratch_ = Bitset(n_);
      Dfs(/*g_val=*/0, /*f_parent=*/lb, /*prev_vertex=*/-1, Bitset(n_),
          /*parent_free=*/false);
    }
    res.upper_bound = ub_;
    res.exact = !budget_.Exceeded() && opts_.cover_mode == CoverMode::kExact;
    res.lower_bound = res.exact ? ub_ : lb;
    res.nodes = nodes_;
    res.seconds = timer.ElapsedSeconds();
    res.best_ordering = best_;
    if (use_cache_) res.cache_stats = cache_.stats();
    return res;
  }

 private:
  EliminationOrdering BuildOrdering() const {
    EliminationOrdering sigma(n_);
    std::vector<bool> used(n_, false);
    int pos = n_ - 1;
    for (int v : suffix_) {
      sigma[pos--] = v;
      used[v] = true;
    }
    for (int v = 0; v < n_; ++v) {
      if (!used[v]) sigma[pos--] = v;
    }
    return sigma;
  }

  // Records a new incumbent witnessed by the current suffix and shares it
  // with concurrently racing engines.
  void ImproveUb(int w) {
    ub_ = w;
    best_ = BuildOrdering();
    if (opts_.exchange && opts_.cover_mode == CoverMode::kExact)
      opts_.exchange->PublishUpperBound(w);
  }

  int BagCoverOf(int v) {
    // Scratch bag: this runs once per child per node, and the temporary
    // NeighborBits() materializes otherwise dominates the allocation
    // profile of the search.
    bag_scratch_.AssignAnd(eg_.RawNeighborBits(v), eg_.ActiveBits());
    bag_scratch_.Set(v);
    return eval_.CoverBag(bag_scratch_, opts_.cover_mode, &rng_, nullptr);
  }

  // Greedy cover of the whole active set, memoized per state in exact
  // mode (the greedy tie-breaking draws from rng_, so memoization also
  // makes the bound a function of the state).
  int WholeRemainderCover() {
    if (!use_memos_)
      return eval_.CoverBag(eg_.ActiveBits(), CoverMode::kGreedy, &rng_,
                            nullptr);
    auto [slot, inserted] = all_cover_memo_.TryEmplace(eg_.ActiveBits(), -1);
    if (inserted)
      *slot =
          eval_.CoverBag(eg_.ActiveBits(), CoverMode::kGreedy, &rng_, nullptr);
    return *slot;
  }

  int RemainingLowerBound() {
    if (!use_memos_) return RemainingGhwLowerBound(eg_, index_, &rng_);
    auto [slot, inserted] = hb_memo_.TryEmplace(eg_.ActiveBits(), -1);
    if (inserted) *slot = RemainingGhwLowerBound(eg_, index_, &rng_);
    return *slot;
  }

  void Dfs(int g_val, int f_parent, int prev_vertex, const Bitset& prev_nb,
           bool parent_free) {
    if (budget_.Tick()) return;
    ++nodes_;
    NodesMetric().Increment();
    // Live racing: adopt a better incumbent published by a concurrent
    // engine as the pruning cutoff (sound: every cutoff at f >= ub_ is
    // still justified by the final, witnessed ub_).
    if (opts_.exchange) {
      int inc = opts_.exchange->IncumbentUpperBound();
      if (inc < ub_) ub_ = inc;
    }
    int remaining = eg_.NumActive();
    if (remaining == 0) {
      if (g_val < ub_) {
        ImproveUb(g_val);
      }
      return;
    }
    // Transposition pruning: with exact covers, g is a function of the
    // eliminated set alone, so reaching a set again with g >= the best
    // recorded entry cannot improve on what that visit already explored
    // (its subtree was only cut at f >= ub bounds that still hold).
    if (use_cache_ && cache_.DominatedOrInsert(eg_.ActiveBits(), g_val)) return;
    // PR1 analog: bag covers are monotone under subsets, so covering the
    // whole active set bounds every remaining bag cover.
    int all_cover = WholeRemainderCover();
    int w = std::max(g_val, all_cover);
    if (w < ub_) {
      ImproveUb(w);
    }
    if (all_cover <= g_val) return;  // completions below cannot beat g_val

    int hb = RemainingLowerBound();
    int f = std::max({g_val, hb, f_parent});
    if (f >= ub_) return;

    // Safe reduction: an isolated active vertex always forms the bag {v}
    // with cover 1 <= any width; eliminate it immediately.
    int forced = -1;
    if (opts_.use_simplicial_reduction) {
      for (int v = eg_.ActiveBits().First(); v >= 0;
           v = eg_.ActiveBits().Next(v)) {
        if (eg_.Degree(v) == 0) {
          forced = v;
          break;
        }
      }
    }

    // (cost, vertex) pairs in elimination-candidate order; reused per
    // depth so the hot loop allocates nothing in steady state. Sorting by
    // cost alone keeps the stable order of equal-cost vertices identical
    // to the previous index-based stable sort.
    std::vector<std::pair<int, int>>& children = child_scratch_[suffix_.size()];
    children.clear();
    if (forced >= 0) {
      children.emplace_back(BagCoverOf(forced), forced);
    } else {
      for (int v = eg_.ActiveBits().First(); v >= 0;
           v = eg_.ActiveBits().Next(v)) {
        // Exact bag covers are the expensive part of a node; poll between
        // them so cancellation latency stays bounded by one cover.
        if (budget_.PollDeadline()) return;
        children.emplace_back(BagCoverOf(v), v);
      }
      // Cheapest bags first. Insertion sort: stable like the
      // std::stable_sort it replaces (equal costs keep vertex order) but
      // without the temporary buffer that allocates on every node.
      for (size_t i = 1; i < children.size(); ++i) {
        std::pair<int, int> key = children[i];
        size_t j = i;
        for (; j > 0 && children[j - 1].first > key.first; --j) {
          children[j] = children[j - 1];
        }
        children[j] = key;
      }
    }

    for (const auto& [c, v] : children) {
      if (opts_.use_pr2 && forced < 0 && parent_free && prev_vertex >= 0 &&
          v < prev_vertex && !prev_nb.Test(v)) {
        continue;  // PR2: swap-equivalent ordering explored elsewhere
      }
      if (std::max(g_val, c) >= ub_) continue;
      // Per-depth slot: the child frame reads prev_nb before any deeper
      // frame writes its own (deeper) slot, and siblings overwrite only
      // after the previous child's subtree returned.
      Bitset& nb = nb_scratch_[suffix_.size()];
      nb.AssignAnd(eg_.RawNeighborBits(v), eg_.ActiveBits());
      suffix_.push_back(v);
      eg_.Eliminate(v);
      Dfs(std::max(g_val, c), f, v, nb, forced < 0);
      eg_.UndoElimination();
      suffix_.pop_back();
      if (budget_.Exceeded()) return;
    }
  }

  const Hypergraph& h_;
  GhwSearchOptions opts_;
  Rng rng_;
  SearchBudget budget_;
  IncidenceIndex index_;
  GhwEvaluator eval_;
  EliminationGraph eg_;
  int n_;
  bool use_cache_;
  bool use_memos_;
  int ub_ = 0;
  EliminationOrdering best_;
  std::vector<int> suffix_;
  long nodes_ = 0;
  std::vector<std::vector<std::pair<int, int>>> child_scratch_;
  std::vector<Bitset> nb_scratch_;
  Bitset bag_scratch_{0};
  DecompCache cache_;
  BitsetFlatMap<int> all_cover_memo_;
  BitsetFlatMap<int> hb_memo_;
};

}  // namespace

WidthResult BranchAndBoundGhw(const Hypergraph& h,
                              const GhwSearchOptions& options) {
  WidthResult res = GhwBbSearch(h, options).Run();
  DValidateOrderingWitness(h, res.best_ordering);
  return res;
}

}  // namespace hypertree
