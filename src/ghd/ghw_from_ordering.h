// Generalized hypertree width through elimination orderings
// (thesis ch. 3 + McMahan's bucket-elimination set-covering, §2.5.2).
//
// width(sigma, H) = the largest (optimal) bag cover over the bags that
// bucket elimination produces from sigma on the primal graph; Theorem 3
// proves min over sigma of width(sigma, H) = ghw(H), which makes
// elimination orderings a complete search space for ghw.

#ifndef HYPERTREE_GHD_GHW_FROM_ORDERING_H_
#define HYPERTREE_GHD_GHW_FROM_ORDERING_H_

#include <memory>
#include <vector>

#include "ghd/ghd.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/incidence_index.h"
#include "ordering/ordering.h"
#include "setcover/greedy.h"
#include "util/bitset.h"
#include "util/flat_map.h"
#include "util/rng.h"

namespace hypertree {

/// How bag covers are computed.
enum class CoverMode {
  kGreedy,  // Chvatal greedy (upper bound on the optimal cover)
  kExact,   // branch-and-bound optimum (width(sigma, H), Definition 17)
};

/// Evaluates orderings against a fixed hypergraph. Precomputes the primal
/// graph and caches exact covers across calls (bag sets recur heavily in
/// branch-and-bound / A* searches).
class GhwEvaluator {
 public:
  explicit GhwEvaluator(const Hypergraph& h);

  /// Shares a prebuilt read-only incidence index (must outlive the
  /// evaluator). Passing nullptr builds an owned one.
  GhwEvaluator(const Hypergraph& h, const IncidenceIndex* index);

  /// width of `sigma` under the chosen cover mode. Greedy tie-breaking
  /// uses `rng` when given.
  int EvaluateOrdering(const EliminationOrdering& sigma, CoverMode mode,
                       Rng* rng = nullptr);

  /// Cover size of one bag (vertex set) under `mode`; exact covers are
  /// cached. `chosen` receives the selected hyperedge ids when non-null.
  int CoverBag(const Bitset& bag, CoverMode mode, Rng* rng = nullptr,
               std::vector<int>* chosen = nullptr);

  /// Builds a full GHD from `sigma` (bucket tree + per-bag covers).
  GeneralizedHypertreeDecomposition BuildGhd(const EliminationOrdering& sigma,
                                             CoverMode mode,
                                             Rng* rng = nullptr);

  const Graph& primal() const { return primal_; }
  const Hypergraph& hypergraph() const { return h_; }
  const IncidenceIndex& index() const { return *index_; }

 private:
  const Hypergraph& h_;
  Graph primal_;
  std::vector<Bitset> edge_sets_;
  std::unique_ptr<IncidenceIndex> owned_index_;  // null when shared
  const IncidenceIndex* index_;
  // Reusable cover-candidate scratch: CoverBag restricts the set-cover
  // scans to the edges the incidence index reports as touching the bag.
  Bitset touched_scratch_;
  std::vector<int> active_scratch_;
  GreedyCoverScratch greedy_scratch_;
  BitsetFlatMap<int> exact_cache_;
};

/// Debug-mode search post-condition: rebuilds a GHD from the witness
/// ordering `sigma` and aborts if it violates any GHD condition. No-op
/// when HT_DCHECKs are compiled out, or when `sigma` does not cover the
/// vertex set (aborted searches may return partial witnesses).
void DValidateOrderingWitness(const Hypergraph& h,
                              const EliminationOrdering& sigma);

}  // namespace hypertree

#endif  // HYPERTREE_GHD_GHW_FROM_ORDERING_H_
