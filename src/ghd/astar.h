// A*-ghw: A* search for generalized hypertree width (thesis ch. 9).
//
// Same state space as BB-ghw (elimination prefixes, exact bag covers as
// step costs) explored best-first with f = max(g, h, parent.f); duplicate
// detection merges states with equal eliminated sets. Popped f-values are
// nondecreasing, so interrupted runs report proven ghw lower bounds.

#ifndef HYPERTREE_GHD_ASTAR_H_
#define HYPERTREE_GHD_ASTAR_H_

#include "ghd/branch_and_bound.h"
#include "hypergraph/hypergraph.h"
#include "td/exact.h"

namespace hypertree {

/// Computes ghw(h) by A*; anytime bounds on budget exhaustion.
WidthResult AStarGhw(const Hypergraph& h, const GhwSearchOptions& options = {});

}  // namespace hypertree

#endif  // HYPERTREE_GHD_ASTAR_H_
