#include "ghd/ghd.h"

#include <algorithm>

#include "setcover/exact.h"
#include "util/check.h"

namespace hypertree {

int GeneralizedHypertreeDecomposition::Width() const {
  size_t w = 0;
  for (const auto& l : lambda_) w = std::max(w, l.size());
  return static_cast<int>(w);
}

bool GeneralizedHypertreeDecomposition::IsValidFor(const Hypergraph& h,
                                                   std::string* why) const {
  // Conditions 1 and 2 are the tree-decomposition conditions.
  if (!td_.IsValidForHypergraph(h, why)) return false;
  // Condition 3: chi(p) subset of var(lambda(p)).
  for (int p = 0; p < td_.NumNodes(); ++p) {
    Bitset covered(h.NumVertices());
    for (int e : lambda_[p]) {
      HT_CHECK(e >= 0 && e < h.NumEdges());
      covered |= h.EdgeBits(e);
    }
    if (!td_.Bag(p).IsSubsetOf(covered)) {
      if (why != nullptr)
        *why = "node " + std::to_string(p) + ": chi not covered by lambda";
      return false;
    }
  }
  return true;
}

bool GeneralizedHypertreeDecomposition::IsComplete(const Hypergraph& h) const {
  for (int e = 0; e < h.NumEdges(); ++e) {
    bool ok = false;
    for (int p = 0; p < td_.NumNodes() && !ok; ++p) {
      if (!h.EdgeBits(e).IsSubsetOf(td_.Bag(p))) continue;
      for (int l : lambda_[p]) {
        if (l == e) {
          ok = true;
          break;
        }
      }
    }
    if (!ok) return false;
  }
  return true;
}

void GeneralizedHypertreeDecomposition::MakeComplete(const Hypergraph& h) {
  for (int e = 0; e < h.NumEdges(); ++e) {
    // Find a node whose chi contains the edge and whose lambda lists it.
    int host = -1;
    bool listed = false;
    for (int p = 0; p < td_.NumNodes() && !listed; ++p) {
      if (!h.EdgeBits(e).IsSubsetOf(td_.Bag(p))) continue;
      if (host == -1) host = p;
      for (int l : lambda_[p]) {
        if (l == e) listed = true;
      }
    }
    if (listed) continue;
    HT_CHECK_MSG(host >= 0, "not a GHD of h: hyperedge uncovered");
    Bitset bag(h.NumVertices());
    bag |= h.EdgeBits(e);
    int leaf = td_.AddNode(bag);
    td_.AddTreeEdge(leaf, host);
    lambda_.push_back({e});
  }
}

GeneralizedHypertreeDecomposition SimplifyGhd(
    const Hypergraph& h, const GeneralizedHypertreeDecomposition& ghd) {
  TreeDecomposition simple = SimplifyTreeDecomposition(ghd.td());
  std::vector<Bitset> edge_sets;
  edge_sets.reserve(h.NumEdges());
  for (int e = 0; e < h.NumEdges(); ++e) edge_sets.push_back(h.EdgeBits(e));
  GeneralizedHypertreeDecomposition out(std::move(simple));
  for (int p = 0; p < out.NumNodes(); ++p) {
    std::vector<int> cover;
    ExactSetCover(edge_sets, out.td().Bag(p), &cover);
    out.SetLambda(p, std::move(cover));
  }
  if (ht_internal::kDCheckEnabled) ValidateDecomposition(h, out);
  return out;
}

void ValidateDecomposition(const Hypergraph& h,
                           const GeneralizedHypertreeDecomposition& ghd) {
  std::string why;
  HT_CHECK(ghd.IsValidFor(h, &why)) << "invalid GHD: " << why;
}

}  // namespace hypertree
