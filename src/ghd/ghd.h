// Generalized hypertree decompositions (Definition 13).
//
// A GHD <T, chi, lambda> is a tree decomposition whose every bag chi(p) is
// covered by the hyperedges in its lambda(p) label; its width is the
// largest lambda size. ghw(H) <= hw(H) <= tw(H) + 1, and ghw(H) = 1 iff H
// is alpha-acyclic.

#ifndef HYPERTREE_GHD_GHD_H_
#define HYPERTREE_GHD_GHD_H_

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "td/tree_decomposition.h"

namespace hypertree {

/// A generalized hypertree decomposition.
class GeneralizedHypertreeDecomposition {
 public:
  /// Wraps a tree decomposition skeleton; lambda labels are added per node.
  explicit GeneralizedHypertreeDecomposition(TreeDecomposition td)
      : td_(std::move(td)), lambda_(td_.NumNodes()) {}

  /// The underlying tree decomposition (chi labels + tree).
  const TreeDecomposition& td() const { return td_; }

  /// Number of decomposition nodes.
  int NumNodes() const { return td_.NumNodes(); }

  /// Sets the lambda label (hyperedge ids) of node `p`.
  void SetLambda(int p, std::vector<int> edges) {
    lambda_[p] = std::move(edges);
  }

  /// The lambda label of node `p`.
  const std::vector<int>& Lambda(int p) const { return lambda_[p]; }

  /// Width: max lambda size (0 for an empty decomposition).
  int Width() const;

  /// Checks all three GHD conditions against `h` (Definition 13).
  bool IsValidFor(const Hypergraph& h, std::string* why = nullptr) const;

  /// True if for every hyperedge there is a node p with the edge inside
  /// chi(p) and listed in lambda(p) (Definition 14).
  bool IsComplete(const Hypergraph& h) const;

  /// Transforms into a complete GHD of equal width by attaching one leaf
  /// per uncovered hyperedge (Lemma 2 / Lemma 4.4 of GLS).
  void MakeComplete(const Hypergraph& h);

 private:
  TreeDecomposition td_;
  std::vector<std::vector<int>> lambda_;
};

/// Contracts subsumed bags (SimplifyTreeDecomposition on the chi part) and
/// re-covers every surviving bag exactly. The result is a valid GHD of at
/// most the input width with no adjacent nested bags.
GeneralizedHypertreeDecomposition SimplifyGhd(
    const Hypergraph& h, const GeneralizedHypertreeDecomposition& ghd);

/// Fatal form of IsValidFor: aborts with the violated condition when the
/// decomposition breaks connectedness or cover validity against `h`.
/// Always compiled; the searches invoke it after construction when
/// HT_DCHECKs are enabled (see util/check.h).
void ValidateDecomposition(const Hypergraph& h,
                           const GeneralizedHypertreeDecomposition& ghd);

}  // namespace hypertree

#endif  // HYPERTREE_GHD_GHD_H_
