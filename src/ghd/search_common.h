// Helpers shared by the exact decomposition searches (det-k-decomp,
// BB-ghw and A*-ghw).

#ifndef HYPERTREE_GHD_SEARCH_COMMON_H_
#define HYPERTREE_GHD_SEARCH_COMMON_H_

#include <algorithm>
#include <atomic>
#include <memory>

#include "bounds/lower_bounds.h"
#include "graph/elimination_graph.h"
#include "hypergraph/hypergraph.h"
#include "hypergraph/incidence_index.h"
#include "kernels/kernels.h"
#include "td/exact.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hypertree {

// SearchBudget lives in td/exact.h (shared with the treewidth searches);
// this header keeps only the ghw-specific pruning helpers.

/// Lower bound on the best ghw-width achievable on the remaining (already
/// partially eliminated, hence filled) graph: a minor-min-width treewidth
/// bound L on the filled remaining graph forces a remaining bag with
/// >= L+1 vertices, and covering it needs >= ceil((L+1)/r) hyperedges
/// where r is the largest |edge ∩ active| (thesis §8.1 adapted to the
/// search's residual instances). The max-intersection scan runs as one
/// kernel MaxIntersect over the index's flat edge->vertex arena.
inline int RemainingGhwLowerBound(const EliminationGraph& eg,
                                  const IncidenceIndex& index, Rng* rng) {
  if (eg.NumActive() == 0) return 0;
  const int r = std::max(
      1, kernels::Active().MaxIntersect(
             index.EdgeVarRows(), index.EdgeVarStride(), index.NumEdges(),
             eg.ActiveBits().Words(), eg.ActiveBits().NumWords()));
  int tw_lb = MinorMinWidthLowerBound(eg, rng);
  int lb = (tw_lb + 1 + r - 1) / r;
  return std::max(lb, 1);
}

}  // namespace hypertree

#endif  // HYPERTREE_GHD_SEARCH_COMMON_H_
