// Helpers shared by the exact decomposition searches (det-k-decomp,
// BB-ghw and A*-ghw).

#ifndef HYPERTREE_GHD_SEARCH_COMMON_H_
#define HYPERTREE_GHD_SEARCH_COMMON_H_

#include <algorithm>
#include <atomic>
#include <memory>

#include "bounds/lower_bounds.h"
#include "graph/elimination_graph.h"
#include "hypergraph/hypergraph.h"
#include "td/exact.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hypertree {

/// Unified deadline / node-budget / cancellation bookkeeping for the
/// exact searches. One Tick() per search node; the wall clock is polled
/// every 64 ticks, the node budget and the cancellation token on every
/// tick. Copies share the tick counter and the deadline (det-k's parallel
/// workers draw from one global budget), while the sticky `exceeded` state
/// is per-copy so each worker stops itself exactly once.
class SearchBudget {
 public:
  explicit SearchBudget(const SearchOptions& opts)
      : deadline_(opts.time_limit_seconds),
        max_nodes_(opts.max_nodes),
        cancel_(opts.cancel),
        ticks_(std::make_shared<std::atomic<long>>(0)) {}

  /// Counts one unit of work; returns true once the budget is exhausted.
  bool Tick() {
    if (exceeded_) return true;
    long t = ticks_->fetch_add(1, std::memory_order_relaxed) + 1;
    if (max_nodes_ > 0 && t >= max_nodes_) {
      exceeded_ = true;
    } else if ((t & 63) == 0 && deadline_.Expired()) {
      exceeded_ = true;
    } else if (cancel_.Cancelled()) {
      exceeded_ = true;
    }
    return exceeded_;
  }

  /// Node budget expressed against an externally maintained count (A*
  /// bounds *stored* states, not expanded ones). Also polls the deadline
  /// and the cancellation token. Sticky like Tick().
  bool ExceedsNodeBudget(long count) {
    if (exceeded_) return true;
    if (max_nodes_ > 0 && count > max_nodes_) exceeded_ = true;
    if (cancel_.Cancelled()) exceeded_ = true;
    return exceeded_;
  }

  /// Polls only the wall clock / cancellation (for loops that tick
  /// elsewhere).
  bool PollDeadline() {
    if (exceeded_) return true;
    if (deadline_.Expired() || cancel_.Cancelled()) exceeded_ = true;
    return exceeded_;
  }

  bool Exceeded() const { return exceeded_; }
  void MarkExceeded() { exceeded_ = true; }
  long ticks() const { return ticks_->load(std::memory_order_relaxed); }
  double ElapsedSeconds() const { return deadline_.ElapsedSeconds(); }

 private:
  Deadline deadline_;
  long max_nodes_;
  CancellationToken cancel_;
  std::shared_ptr<std::atomic<long>> ticks_;
  bool exceeded_ = false;
};

/// Lower bound on the best ghw-width achievable on the remaining (already
/// partially eliminated, hence filled) graph: a minor-min-width treewidth
/// bound L on the filled remaining graph forces a remaining bag with
/// >= L+1 vertices, and covering it needs >= ceil((L+1)/r) hyperedges
/// where r is the largest |edge ∩ active| (thesis §8.1 adapted to the
/// search's residual instances).
inline int RemainingGhwLowerBound(const EliminationGraph& eg,
                                  const Hypergraph& h, Rng* rng) {
  if (eg.NumActive() == 0) return 0;
  int r = 1;
  for (int e = 0; e < h.NumEdges(); ++e) {
    r = std::max(r, h.EdgeBits(e).IntersectCount(eg.ActiveBits()));
  }
  int tw_lb = MinorMinWidthLowerBound(eg, rng);
  int lb = (tw_lb + 1 + r - 1) / r;
  return std::max(lb, 1);
}

}  // namespace hypertree

#endif  // HYPERTREE_GHD_SEARCH_COMMON_H_
