// Named relations with the operators the decomposition-based solvers need:
// natural join, semijoin, projection and membership — implemented as a
// flat-storage kernel. Tuples live in one contiguous row-major buffer
// (arity-stride access, no per-tuple heap allocation); join keys are
// hashed in place from row positions (splitmix64-mixed per element, no key
// materialization); semijoin is an in-place swap-compaction; and a lazily
// built per-relation hash index makes Contains O(1) amortized.
//
// Thread-safety contract: concurrent const access (Join / Semijoin /
// Project / Contains / row reads) is safe, including the lazy index build
// (published with a compare-and-swap; losing builders discard their
// copy). Mutation (AddTuple / AddRow / InsertIfAbsent / SemijoinInPlace)
// requires exclusive access, like any standard container.
//
// The kernel feeds the process-wide metrics registry (see
// docs/BENCHMARKS.md): relation.rows_joined, relation.rows_semijoin_dropped,
// relation.probe_collisions and relation.bytes_allocated.

#ifndef HYPERTREE_CSP_RELATION_H_
#define HYPERTREE_CSP_RELATION_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "kernels/kernels.h"
#include "util/check.h"

namespace hypertree {

/// splitmix64 finalizer: a cheap, statistically strong 64-bit mixer
/// (Steele et al.). Used per key element so small dense CSP domains do
/// not collide the way additive FNV-style mixing does. The canonical
/// definition lives in kernels/kernels.h so the SIMD probe kernels and
/// the spill partitioner mix bit-identically.
inline uint64_t SplitMix64(uint64_t x) { return kernels::SplitMix64(x); }

/// Hash of `row[pos[0..k)]` without materializing the key: each element is
/// folded into the running state through a full splitmix64 round.
inline uint64_t HashRowKey(const int* row, const int* pos, int k) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < k; ++i) {
    h = SplitMix64(h + static_cast<uint64_t>(static_cast<uint32_t>(row[pos[i]])));
  }
  return h;
}

/// Hash of `k` contiguous values (identity positions).
inline uint64_t HashRowValues(const int* row, int k) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < k; ++i) {
    h = SplitMix64(h + static_cast<uint64_t>(static_cast<uint32_t>(row[i])));
  }
  return h;
}

/// A relation over CSP variables: a schema (variable ids) plus tuples of
/// values aligned with the schema, stored row-major in one flat buffer.
class Relation {
 public:
  Relation() = default;

  /// Creates an empty relation with the given schema (variable ids must
  /// be distinct — a duplicate column would make join/project positions
  /// ambiguous).
  explicit Relation(std::vector<int> schema) : schema_(std::move(schema)) {
    DCheckSchemaUnique();
  }
  ~Relation();

  Relation(const Relation& other);
  Relation& operator=(const Relation& other);
  Relation(Relation&& other) noexcept;
  Relation& operator=(Relation&& other) noexcept;

  const std::vector<int>& schema() const { return schema_; }
  int Arity() const { return static_cast<int>(schema_.size()); }
  int Size() const { return rows_; }
  bool Empty() const { return rows_ == 0; }

  /// The flat row-major value buffer (Size() * Arity() ints).
  const std::vector<int>& data() const { return data_; }

  /// Pointer to row `i` (valid for Arity() values). Arity-0 relations
  /// return the buffer base for every row.
  const int* Row(int i) const {
    HT_DCHECK_GE(i, 0);
    HT_DCHECK_LT(i, rows_);
    return data_.data() + static_cast<size_t>(i) * schema_.size();
  }

  /// Materializes the tuples as vectors (tests / output paths; O(n)).
  std::vector<std::vector<int>> ToTuples() const;

  /// Appends a tuple (must match the schema arity).
  void AddTuple(const std::vector<int>& tuple);

  /// Appends a row of Arity() values. Inline fast path: bulk loaders
  /// (bag enumeration) append tens of millions of rows; the out-of-line
  /// part only runs while a row index is published.
  void AddRow(const int* row) {
    data_.insert(data_.end(), row, row + schema_.size());
    ++rows_;
    if (index_.load(std::memory_order_relaxed) != nullptr) AddRowToIndex();
  }

  /// Appends the row unless an equal row is already present; returns true
  /// when the row was added. O(1) amortized (keeps the row index fresh),
  /// so tuple deduplication loops are linear, not quadratic.
  bool InsertIfAbsent(const int* row);

  /// Reserves space for `num_rows` rows.
  void Reserve(int num_rows);

  /// Position of variable `var` in the schema, or -1.
  int IndexOf(int var) const;

  /// Natural join with `other` (hash join on the shared variables; output
  /// rows keep this relation's row order, ties in other's row order).
  Relation Join(const Relation& other) const;

  /// Semijoin: keeps the tuples of *this that match some tuple of `other`
  /// on the shared variables.
  Relation Semijoin(const Relation& other) const;

  /// In-place semijoin: filters *this against `other` by swap-compaction
  /// of the flat buffer (no copy of the survivors, row order preserved).
  /// `other` must not alias *this.
  void SemijoinInPlace(const Relation& other);

  /// Projection onto `vars` (must be a subset of the schema; duplicates
  /// are removed, first occurrence wins the output order).
  Relation Project(const std::vector<int>& vars) const;

  /// True if the tuple (over this schema) is present. O(1) amortized via
  /// a lazily built hash index over the rows.
  bool Contains(const std::vector<int>& tuple) const;

  /// Contains() for a raw row of Arity() values.
  bool ContainsRow(const int* row) const;

 private:
  struct RowIndex;
  // Raw-buffer seam for the morsel engine (relation_internal.h): the
  // engine writes join/project output straight into data_ and compacts
  // semijoin survivors in place.
  friend struct RelationInternal;

  // The pre-engine generic operator bodies (row-hash JoinKeyTable path).
  // The public operators delegate to the morsel engine, which falls back
  // here when keys do not pack into single 64-bit words.
  Relation JoinGeneric(const Relation& other) const;
  void SemijoinInPlaceGeneric(const Relation& other);
  Relation ProjectGeneric(const std::vector<int>& vars) const;

  // Below this row count, ContainsRow scans the flat buffer instead of
  // building an index (a contiguous scan beats hashing for the tiny
  // constraint tables bag enumeration probes millions of times).
  static constexpr int kScanThreshold = 16;

  // Returns the up-to-date index, building and publishing it if missing.
  const RowIndex* EnsureIndex() const;
  // Deletes any published index (mutation paths that invalidate it).
  void DropIndex();
  // Probes `idx` for `row`; returns true if an equal row exists.
  bool ProbeIndex(const RowIndex& idx, const int* row) const;
  // Inserts row id `r` into `idx` (caller guarantees capacity and
  // exclusive access). Returns false if an equal row already exists.
  bool InsertIntoIndex(RowIndex* idx, int r, bool check_duplicate) const;
  // Grows `idx` to hold at least one more row at load factor <= 0.7.
  void MaybeGrowIndex(RowIndex* idx) const;
  // Out-of-line tail of AddRow: appends the last row to the published index.
  void AddRowToIndex();

  // Flat-buffer representation invariant: the value buffer holds exactly
  // rows_ * Arity() values. Compiled out under NDEBUG; mutation paths
  // call it on entry and exit.
  void DCheckRep() const {
    HT_DCHECK_EQ(data_.size(), static_cast<size_t>(rows_) * schema_.size());
    HT_DCHECK_GE(rows_, 0);
  }
  // Schema columns must be distinct variable ids (checked on
  // construction; O(arity^2) over the tiny schemas involved).
  void DCheckSchemaUnique() const {
    if (!ht_internal::kDCheckEnabled) return;
    for (size_t i = 0; i < schema_.size(); ++i) {
      for (size_t j = i + 1; j < schema_.size(); ++j) {
        HT_DCHECK_NE(schema_[i], schema_[j])
            << "duplicate variable in relation schema";
      }
    }
  }

  std::vector<int> schema_;
  std::vector<int> data_;  // row-major, rows_ * Arity() values
  int rows_ = 0;           // explicit: arity-0 relations still have rows
  // Lazily built row index; see the thread-safety contract above.
  mutable std::atomic<RowIndex*> index_{nullptr};
};

}  // namespace hypertree

#endif  // HYPERTREE_CSP_RELATION_H_
