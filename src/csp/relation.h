// Named relations with the operators the decomposition-based solvers need:
// natural join, semijoin, projection and selection (all hash-based).

#ifndef HYPERTREE_CSP_RELATION_H_
#define HYPERTREE_CSP_RELATION_H_

#include <vector>

namespace hypertree {

/// A relation over CSP variables: a schema (variable ids) plus tuples of
/// values aligned with the schema.
class Relation {
 public:
  Relation() = default;

  /// Creates an empty relation with the given schema.
  explicit Relation(std::vector<int> schema) : schema_(std::move(schema)) {}

  const std::vector<int>& schema() const { return schema_; }
  const std::vector<std::vector<int>>& tuples() const { return tuples_; }
  int Arity() const { return static_cast<int>(schema_.size()); }
  int Size() const { return static_cast<int>(tuples_.size()); }
  bool Empty() const { return tuples_.empty(); }

  /// Appends a tuple (must match the schema arity).
  void AddTuple(std::vector<int> tuple);

  /// Position of variable `var` in the schema, or -1.
  int IndexOf(int var) const;

  /// Natural join with `other` (hash join on the shared variables).
  Relation Join(const Relation& other) const;

  /// Semijoin: keeps the tuples of *this that match some tuple of `other`
  /// on the shared variables.
  Relation Semijoin(const Relation& other) const;

  /// Projection onto `vars` (must be a subset of the schema; duplicates
  /// are removed).
  Relation Project(const std::vector<int>& vars) const;

  /// True if the tuple (over this schema) is present.
  bool Contains(const std::vector<int>& tuple) const;

 private:
  std::vector<int> schema_;
  std::vector<std::vector<int>> tuples_;
};

}  // namespace hypertree

#endif  // HYPERTREE_CSP_RELATION_H_
