#include "csp/yannakakis.h"

#include <algorithm>
#include <atomic>

#include "csp/morsel_engine.h"
#include "csp/tree_schedule.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace hypertree {

std::optional<std::unordered_map<int, int>> AcyclicSolve(RelationTree tree,
                                                         ThreadPool* pool) {
  int m = static_cast<int>(tree.relations.size());
  if (m == 0) return std::unordered_map<int, int>{};
  HT_CHECK(static_cast<int>(tree.parent.size()) == m);
  // Topological order: parents before children (BFS from the root(s)).
  std::vector<std::vector<int>> children(m);
  for (int p = 0; p < m; ++p) {
    if (tree.parent[p] != -1) children[tree.parent[p]].push_back(p);
  }
  std::vector<int> order;
  order.push_back(tree.root);
  for (size_t i = 0; i < order.size(); ++i) {
    for (int c : children[order[i]]) order.push_back(c);
  }
  HT_CHECK_MSG(static_cast<int>(order.size()) == m,
               "relation tree is not a single tree");

  // Bottom-up semijoin pass: each node filters itself against its fully
  // reduced children (in-place, child-index order). Every visit runs to
  // completion even after a wipeout elsewhere: the filters are
  // deterministic, so the relation contents and the kernel's metrics
  // counters stay bit-identical for any thread count, SAT or UNSAT.
  std::atomic<bool> wiped{false};
  // Within-bag morsel parallelism composes with the across-bag tree
  // schedule: EngineSemijoinInPlace cuts the probe side into morsels and
  // ParallelFor lets idle pool threads steal them, so one huge bag no
  // longer serializes the whole pass. Counter totals and survivors are
  // schedule-independent (see morsel.h), keeping the pass deterministic.
  RunTreeBottomUp(tree.parent, children, pool,
                  [&tree, &children, &wiped, pool](int node) {
    for (int c : children[node]) {
      EngineSemijoinInPlace(&tree.relations[node], tree.relations[c], pool);
    }
    if (tree.relations[node].Empty()) {
      wiped.store(true, std::memory_order_relaxed);
    }
  });
  // Relaxed is sufficient on both ends: the traversal's Wait() already
  // orders every store before this load.
  if (wiped.load(std::memory_order_relaxed) ||
      tree.relations[tree.root].Empty()) {
    return std::nullopt;
  }
  // Top-down semijoin pass (full reduction): each node filters itself
  // against its already reduced parent.
  RunTreeTopDown(tree.parent, children, pool, [&tree, &wiped, pool](int node) {
    if (tree.parent[node] == -1) return;
    EngineSemijoinInPlace(&tree.relations[node],
                          tree.relations[tree.parent[node]], pool);
    if (tree.relations[node].Empty()) {
      wiped.store(true, std::memory_order_relaxed);
    }
  });
  if (wiped.load(std::memory_order_relaxed)) return std::nullopt;
  // Extraction: pick any root tuple, then for each child a tuple agreeing
  // with the values fixed so far (guaranteed to exist after reduction).
  // Fixed values live in a dense array over variable ids: the scan below
  // touches every row element of every relation in the worst case, and a
  // hash lookup per element dominates the whole pass.
  int max_var = -1;
  for (const Relation& rel : tree.relations) {
    for (int v : rel.schema()) max_var = std::max(max_var, v);
  }
  std::vector<int> fixed_val(max_var + 1, 0);
  std::vector<char> is_fixed(max_var + 1, 0);
  std::unordered_map<int, int> assignment;
  for (int node : order) {
    const Relation& rel = tree.relations[node];
    const std::vector<int>& schema = rel.schema();
    const int arity = rel.Arity();
    const int* chosen = nullptr;
    for (int t = 0; t < rel.Size() && chosen == nullptr; ++t) {
      const int* row = rel.Row(t);
      bool ok = true;
      for (int i = 0; i < arity && ok; ++i) {
        const int v = schema[i];
        if (is_fixed[v] && fixed_val[v] != row[i]) ok = false;
      }
      if (ok) chosen = row;
    }
    HT_CHECK_MSG(chosen != nullptr,
                 "full reduction must leave a consistent tuple");
    for (int i = 0; i < arity; ++i) {
      const int v = schema[i];
      is_fixed[v] = 1;
      fixed_val[v] = chosen[i];
      assignment[v] = chosen[i];
    }
  }
  return assignment;
}

std::optional<std::vector<int>> SolveAcyclicCsp(const Csp& csp,
                                                ThreadPool* pool) {
  Hypergraph h = csp.ConstraintHypergraph();
  std::optional<JoinTree> jt = BuildJoinTree(h);
  HT_CHECK_MSG(jt.has_value(), "constraint hypergraph is not alpha-acyclic");
  // Edges of the hypergraph are the constraints first, then the unary
  // "free variable" edges.
  RelationTree tree;
  tree.parent = jt->parent;
  tree.root = jt->root;
  tree.relations.resize(h.NumEdges());
  for (int c = 0; c < csp.NumConstraints(); ++c) {
    tree.relations[c] = csp.GetConstraint(c).relation;
  }
  for (int e = csp.NumConstraints(); e < h.NumEdges(); ++e) {
    // Free-variable edge: a unary relation enumerating the domain.
    std::vector<int> vars = h.EdgeVertices(e);
    HT_CHECK(vars.size() == 1);
    Relation r(vars);
    for (int val = 0; val < csp.DomainSize(vars[0]); ++val) r.AddTuple({val});
    tree.relations[e] = std::move(r);
  }
  auto assignment = AcyclicSolve(std::move(tree), pool);
  if (!assignment.has_value()) return std::nullopt;
  std::vector<int> out(csp.NumVariables(), 0);
  for (auto [var, val] : *assignment) out[var] = val;
  return out;
}

}  // namespace hypertree
