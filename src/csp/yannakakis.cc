#include "csp/yannakakis.h"

#include <algorithm>

#include "util/check.h"

namespace hypertree {

std::optional<std::unordered_map<int, int>> AcyclicSolve(RelationTree tree) {
  int m = static_cast<int>(tree.relations.size());
  if (m == 0) return std::unordered_map<int, int>{};
  HT_CHECK(static_cast<int>(tree.parent.size()) == m);
  // Topological order: parents before children (BFS from the root(s)).
  std::vector<std::vector<int>> children(m);
  for (int p = 0; p < m; ++p) {
    if (tree.parent[p] != -1) children[tree.parent[p]].push_back(p);
  }
  std::vector<int> order;
  order.push_back(tree.root);
  for (size_t i = 0; i < order.size(); ++i) {
    for (int c : children[order[i]]) order.push_back(c);
  }
  HT_CHECK_MSG(static_cast<int>(order.size()) == m,
               "relation tree is not a single tree");

  // Bottom-up semijoin pass.
  for (size_t i = order.size(); i-- > 1;) {
    int node = order[i];
    int parent = tree.parent[node];
    tree.relations[parent] =
        tree.relations[parent].Semijoin(tree.relations[node]);
    if (tree.relations[parent].Empty()) return std::nullopt;
  }
  if (tree.relations[tree.root].Empty()) return std::nullopt;
  // Top-down semijoin pass (full reduction).
  for (int node : order) {
    for (int c : children[node]) {
      tree.relations[c] = tree.relations[c].Semijoin(tree.relations[node]);
      if (tree.relations[c].Empty()) return std::nullopt;
    }
  }
  // Extraction: pick any root tuple, then for each child a tuple agreeing
  // with the values fixed so far (guaranteed to exist after reduction).
  std::unordered_map<int, int> assignment;
  for (int node : order) {
    const Relation& rel = tree.relations[node];
    const std::vector<int>& schema = rel.schema();
    const std::vector<int>* chosen = nullptr;
    for (const auto& t : rel.tuples()) {
      bool ok = true;
      for (size_t i = 0; i < schema.size() && ok; ++i) {
        auto it = assignment.find(schema[i]);
        if (it != assignment.end() && it->second != t[i]) ok = false;
      }
      if (ok) {
        chosen = &t;
        break;
      }
    }
    HT_CHECK_MSG(chosen != nullptr,
                 "full reduction must leave a consistent tuple");
    for (size_t i = 0; i < schema.size(); ++i) {
      assignment[schema[i]] = (*chosen)[i];
    }
  }
  return assignment;
}

std::optional<std::vector<int>> SolveAcyclicCsp(const Csp& csp) {
  Hypergraph h = csp.ConstraintHypergraph();
  std::optional<JoinTree> jt = BuildJoinTree(h);
  HT_CHECK_MSG(jt.has_value(), "constraint hypergraph is not alpha-acyclic");
  // Edges of the hypergraph are the constraints first, then the unary
  // "free variable" edges.
  RelationTree tree;
  tree.parent = jt->parent;
  tree.root = jt->root;
  tree.relations.resize(h.NumEdges());
  for (int c = 0; c < csp.NumConstraints(); ++c) {
    tree.relations[c] = csp.GetConstraint(c).relation;
  }
  for (int e = csp.NumConstraints(); e < h.NumEdges(); ++e) {
    // Free-variable edge: a unary relation enumerating the domain.
    std::vector<int> vars = h.EdgeVertices(e);
    HT_CHECK(vars.size() == 1);
    Relation r(vars);
    for (int val = 0; val < csp.DomainSize(vars[0]); ++val) r.AddTuple({val});
    tree.relations[e] = std::move(r);
  }
  auto assignment = AcyclicSolve(std::move(tree));
  if (!assignment.has_value()) return std::nullopt;
  std::vector<int> out(csp.NumVariables(), 0);
  for (auto [var, val] : *assignment) out[var] = val;
  return out;
}

}  // namespace hypertree
