#include "csp/csp.h"

#include "util/check.h"

namespace hypertree {

void Csp::AddConstraint(std::vector<int> scope, Relation relation,
                        std::string name) {
  HT_CHECK(relation.schema() == scope);
  for (int v : scope) HT_CHECK(v >= 0 && v < NumVariables());
  Constraint c;
  c.scope = std::move(scope);
  c.relation = std::move(relation);
  c.name = name.empty() ? "c" + std::to_string(NumConstraints())
                        : std::move(name);
  constraints_.push_back(std::move(c));
}

Hypergraph Csp::ConstraintHypergraph() const {
  Hypergraph h(NumVariables());
  std::vector<bool> covered(NumVariables(), false);
  for (const Constraint& c : constraints_) {
    h.AddEdge(c.scope, c.name);
    for (int v : c.scope) covered[v] = true;
  }
  for (int v = 0; v < NumVariables(); ++v) {
    if (!covered[v]) h.AddEdge({v}, "free_" + std::to_string(v));
  }
  h.set_name(name_.empty() ? "csp" : name_);
  return h;
}

bool Csp::IsSolution(const std::vector<int>& assignment) const {
  HT_CHECK(static_cast<int>(assignment.size()) == NumVariables());
  for (int v = 0; v < NumVariables(); ++v) {
    if (assignment[v] < 0 || assignment[v] >= domain_sizes_[v]) return false;
  }
  std::vector<int> tuple;
  for (const Constraint& c : constraints_) {
    tuple.clear();
    for (int v : c.scope) tuple.push_back(assignment[v]);
    if (!c.relation.ContainsRow(tuple.data())) return false;
  }
  return true;
}

}  // namespace hypertree
