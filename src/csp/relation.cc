#include "csp/relation.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace hypertree {

namespace {

// FNV-style hash of an int vector (join keys).
struct VecHash {
  size_t operator()(const std::vector<int>& v) const {
    size_t h = 1469598103934665603ULL;
    for (int x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b9;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

// Positions of the shared variables in each schema.
void SharedPositions(const std::vector<int>& a, const std::vector<int>& b,
                     std::vector<int>* pa, std::vector<int>* pb) {
  pa->clear();
  pb->clear();
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[i] == b[j]) {
        pa->push_back(static_cast<int>(i));
        pb->push_back(static_cast<int>(j));
      }
    }
  }
}

std::vector<int> KeyOf(const std::vector<int>& tuple,
                       const std::vector<int>& positions) {
  std::vector<int> key;
  key.reserve(positions.size());
  for (int p : positions) key.push_back(tuple[p]);
  return key;
}

}  // namespace

void Relation::AddTuple(std::vector<int> tuple) {
  HT_CHECK(tuple.size() == schema_.size());
  tuples_.push_back(std::move(tuple));
}

int Relation::IndexOf(int var) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

Relation Relation::Join(const Relation& other) const {
  std::vector<int> pa, pb;
  SharedPositions(schema_, other.schema_, &pa, &pb);
  // Output schema: this schema plus other's non-shared variables.
  std::vector<int> out_schema = schema_;
  std::vector<int> extra_positions;
  for (size_t j = 0; j < other.schema_.size(); ++j) {
    if (IndexOf(other.schema_[j]) == -1) {
      out_schema.push_back(other.schema_[j]);
      extra_positions.push_back(static_cast<int>(j));
    }
  }
  Relation out(out_schema);
  // Build hash on the smaller side keyed by the shared variables.
  std::unordered_map<std::vector<int>, std::vector<const std::vector<int>*>,
                     VecHash>
      index;
  for (const auto& t : other.tuples_) index[KeyOf(t, pb)].push_back(&t);
  for (const auto& t : tuples_) {
    auto it = index.find(KeyOf(t, pa));
    if (it == index.end()) continue;
    for (const std::vector<int>* u : it->second) {
      std::vector<int> merged = t;
      for (int p : extra_positions) merged.push_back((*u)[p]);
      out.tuples_.push_back(std::move(merged));
    }
  }
  return out;
}

Relation Relation::Semijoin(const Relation& other) const {
  std::vector<int> pa, pb;
  SharedPositions(schema_, other.schema_, &pa, &pb);
  if (pa.empty()) {
    // No shared variables: keep everything iff other is non-empty.
    return other.Empty() ? Relation(schema_) : *this;
  }
  std::unordered_set<std::vector<int>, VecHash> keys;
  for (const auto& t : other.tuples_) keys.insert(KeyOf(t, pb));
  Relation out(schema_);
  for (const auto& t : tuples_) {
    if (keys.count(KeyOf(t, pa)) > 0) out.tuples_.push_back(t);
  }
  return out;
}

Relation Relation::Project(const std::vector<int>& vars) const {
  std::vector<int> positions;
  positions.reserve(vars.size());
  for (int v : vars) {
    int idx = IndexOf(v);
    HT_CHECK_MSG(idx >= 0, "projection variable not in schema");
    positions.push_back(idx);
  }
  Relation out(vars);
  std::unordered_set<std::vector<int>, VecHash> seen;
  for (const auto& t : tuples_) {
    std::vector<int> proj = KeyOf(t, positions);
    if (seen.insert(proj).second) out.tuples_.push_back(std::move(proj));
  }
  return out;
}

bool Relation::Contains(const std::vector<int>& tuple) const {
  return std::find(tuples_.begin(), tuples_.end(), tuple) != tuples_.end();
}

}  // namespace hypertree
