#include "csp/relation.h"

#include <cstring>
#include <utility>

#include "csp/morsel_engine.h"
#include "util/check.h"
#include "util/metrics.h"

namespace hypertree {

namespace {

// Hot-path counters, resolved once (see src/util/metrics.h).
metrics::Counter& RowsJoined() {
  static metrics::Counter& c = metrics::GetCounter("relation.rows_joined");
  return c;
}
metrics::Counter& RowsSemijoinDropped() {
  static metrics::Counter& c =
      metrics::GetCounter("relation.rows_semijoin_dropped");
  return c;
}
metrics::Counter& ProbeCollisions() {
  static metrics::Counter& c =
      metrics::GetCounter("relation.probe_collisions");
  return c;
}
metrics::Counter& BytesAllocated() {
  static metrics::Counter& c =
      metrics::GetCounter("relation.bytes_allocated");
  return c;
}

size_t NextPow2AtLeast(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

// Positions of the shared variables in each schema.
void SharedPositions(const std::vector<int>& a, const std::vector<int>& b,
                     std::vector<int>* pa, std::vector<int>* pb) {
  pa->clear();
  pb->clear();
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[i] == b[j]) {
        pa->push_back(static_cast<int>(i));
        pb->push_back(static_cast<int>(j));
      }
    }
  }
}

bool KeysEqual(const int* ra, const int* pa, const int* rb, const int* pb,
               int k) {
  for (int i = 0; i < k; ++i) {
    if (ra[pa[i]] != rb[pb[i]]) return false;
  }
  return true;
}

// A two-level hash table over the rows of a build-side relation, keyed by
// `pos` positions hashed in place: open addressing over *distinct* keys
// (slots hold the first row of a key), with all further rows of the same
// key chained through next_row_. Keeping duplicate keys off the probe
// path matters — decomposition bags routinely hold millions of rows over
// a few thousand connector keys, and a per-row chain would make every
// non-matching probe walk the whole multiplicity class. Rows are inserted
// in reverse so each key's chain lists rows in ascending order
// (deterministic output order).
struct JoinKeyTable {
  // `keys_only` builds a pure key-membership set (semijoins): duplicate
  // keys are skipped and no chains or per-key counts are kept.
  JoinKeyTable(const Relation& rel, const std::vector<int>& pos,
               bool keys_only = false)
      : rel_(rel), pos_(pos) {
    const int rows = rel.Size();
    const int k = static_cast<int>(pos_.size());
    size_t cap = NextPow2AtLeast(static_cast<size_t>(rows) * 2);
    // Load-factor contract: open addressing stays O(1) only while at most
    // half the slots are occupied, and the probe loops terminate only
    // while at least one slot is empty.
    HT_CHECK_GE(cap, static_cast<size_t>(rows) * 2)
        << "JoinKeyTable capacity violates the 0.5 load-factor bound";
    mask_ = cap - 1;
    slot_row_.assign(cap, -1);
    if (!keys_only) {
      next_row_.assign(rows, -1);
      count_.assign(cap, 0);
    }
    // Packed mode: when every key value fits in 64/k bits (small CSP
    // domains over wide connectors — the dominant case), each key packs
    // into one word. Hashing is then a single splitmix round and key
    // equality one integer compare, instead of k gathered loads each.
    // The range check scans the whole flat buffer rather than gathering
    // the key columns: it is contiguous (vectorizable) and at most
    // over-estimates the needed bits.
    uint64_t max_val = 0;
    bool packable = k > 0 && k <= 64 && rows > 0;
    if (packable) {
      const int* p = rel.Row(0);
      const int* end = p + static_cast<size_t>(rows) * rel.Arity();
      int min_val = 0, max_seen = 0;
      for (; p != end; ++p) {
        min_val = std::min(min_val, *p);
        max_seen = std::max(max_seen, *p);
      }
      packable = min_val >= 0;
      max_val = static_cast<uint64_t>(max_seen);
    }
    if (packable) {
      bits_ = 1;
      while ((max_val >> bits_) != 0) ++bits_;
      if (k * bits_ > 64) bits_ = 0;  // does not fit: generic mode
    }
    if (bits_ > 0) {
      slot_key_.assign(cap, 0);
      // Reverse insertion prepends, so each key's chain lists rows in
      // ascending order (keys_only iterates forward; order is moot).
      for (int r = keys_only ? 0 : rows - 1;
           keys_only ? r < rows : r >= 0; keys_only ? ++r : --r) {
        const int* row = rel.Row(r);
        uint64_t key = 0;
        for (int i = 0; i < k; ++i) {
          key = (key << bits_) | static_cast<uint64_t>(row[pos_[i]]);
        }
        size_t slot = SplitMix64(key) & mask_;
        while (slot_row_[slot] != -1 && slot_key_[slot] != key) {
          slot = (slot + 1) & mask_;
        }
        if (keys_only) {
          if (slot_row_[slot] == -1) {
            slot_row_[slot] = r;
            slot_key_[slot] = key;
          }
        } else {
          next_row_[r] = slot_row_[slot];  // -1 for a fresh key
          slot_row_[slot] = r;
          slot_key_[slot] = key;
          ++count_[slot];
        }
      }
    } else {
      for (int r = keys_only ? 0 : rows - 1;
           keys_only ? r < rows : r >= 0; keys_only ? ++r : --r) {
        const int* row = rel.Row(r);
        size_t slot = HashRowKey(row, pos_.data(), k) & mask_;
        while (slot_row_[slot] != -1 &&
               !KeysEqual(rel.Row(slot_row_[slot]), pos_.data(), row,
                          pos_.data(), k)) {
          slot = (slot + 1) & mask_;
        }
        if (keys_only) {
          if (slot_row_[slot] == -1) slot_row_[slot] = r;
        } else {
          next_row_[r] = slot_row_[slot];
          slot_row_[slot] = r;
          ++count_[slot];
        }
      }
    }
    BytesAllocated().Add(static_cast<long>(
        (slot_row_.capacity() + next_row_.capacity() + count_.capacity()) *
            sizeof(int32_t) +
        slot_key_.capacity() * sizeof(uint64_t)));
  }

  // Number of build-side rows whose key equals `row`'s key at `probe_pos`
  // (0 when absent). Does not touch the collision counter: Join uses this
  // for an exact-size pre-pass and counts its probes once, when emitting.
  long Matches(const int* row, const std::vector<int>& probe_pos) const {
    const int k = static_cast<int>(pos_.size());
    if (bits_ > 0) {
      const uint64_t limit = uint64_t{1} << bits_;
      uint64_t key = 0;
      for (int i = 0; i < k; ++i) {
        const int v = row[probe_pos[i]];
        if (v < 0 || static_cast<uint64_t>(v) >= limit) return 0;
        key = (key << bits_) | static_cast<uint64_t>(v);
      }
      size_t slot = SplitMix64(key) & mask_;
      size_t probes = 0;
      while (slot_row_[slot] != -1) {
        if (slot_key_[slot] == key) return count_[slot];
        slot = (slot + 1) & mask_;
        // The increment must stay outside the HT_DCHECK operand: DCHECK
        // operands are not evaluated under NDEBUG, which would freeze the
        // wrap counter. The gate keeps Release codegen free of it.
        if (ht_internal::kDCheckEnabled) ++probes;
        HT_DCHECK_LE(probes, mask_) << "JoinKeyTable probe loop wrapped";
      }
    } else {
      size_t slot = HashRowKey(row, probe_pos.data(), k) & mask_;
      size_t probes = 0;
      while (slot_row_[slot] != -1) {
        if (KeysEqual(row, probe_pos.data(), rel_.Row(slot_row_[slot]),
                      pos_.data(), k)) {
          return count_[slot];
        }
        slot = (slot + 1) & mask_;
        // The increment must stay outside the HT_DCHECK operand: DCHECK
        // operands are not evaluated under NDEBUG, which would freeze the
        // wrap counter. The gate keeps Release codegen free of it.
        if (ht_internal::kDCheckEnabled) ++probes;
        HT_DCHECK_LE(probes, mask_) << "JoinKeyTable probe loop wrapped";
      }
    }
    return 0;
  }

  // First build-side row whose key equals `row`'s key at `probe_pos`, or -1.
  int FindFirst(const int* row, const std::vector<int>& probe_pos) const {
    const int k = static_cast<int>(pos_.size());
    long collisions = 0;
    int found = -1;
    if (bits_ > 0) {
      const uint64_t limit = uint64_t{1} << bits_;
      uint64_t key = 0;
      for (int i = 0; i < k; ++i) {
        const int v = row[probe_pos[i]];
        // A value outside the packed range cannot equal any build-side key.
        if (v < 0 || static_cast<uint64_t>(v) >= limit) return -1;
        key = (key << bits_) | static_cast<uint64_t>(v);
      }
      size_t slot = SplitMix64(key) & mask_;
      while (slot_row_[slot] != -1) {
        if (slot_key_[slot] == key) {
          found = slot_row_[slot];
          break;
        }
        ++collisions;
        HT_DCHECK_LE(collisions, static_cast<long>(mask_))
            << "JoinKeyTable probe loop wrapped";
        slot = (slot + 1) & mask_;
      }
    } else {
      size_t slot = HashRowKey(row, probe_pos.data(), k) & mask_;
      while (slot_row_[slot] != -1) {
        if (KeysEqual(row, probe_pos.data(), rel_.Row(slot_row_[slot]),
                      pos_.data(), k)) {
          found = slot_row_[slot];
          break;
        }
        ++collisions;
        HT_DCHECK_LE(collisions, static_cast<long>(mask_))
            << "JoinKeyTable probe loop wrapped";
        slot = (slot + 1) & mask_;
      }
    }
    if (collisions > 0) ProbeCollisions().Add(collisions);
    return found;
  }

  // Next build-side row with the same key (no comparison needed: chains
  // are per-key by construction).
  int FindNext(int r) const { return next_row_[r]; }

 private:
  const Relation& rel_;
  const std::vector<int>& pos_;
  size_t mask_ = 0;
  int bits_ = 0;  // > 0: packed mode with this many bits per key element
  std::vector<int32_t> slot_row_;
  std::vector<int32_t> next_row_;   // per-key chains (not keys_only)
  std::vector<int32_t> count_;      // rows per distinct key (not keys_only)
  std::vector<uint64_t> slot_key_;  // packed key per slot (packed mode)
};

}  // namespace

// Open-addressing index over whole rows: slots hold row ids (-1 empty),
// probed linearly with splitmix64-mixed row hashes. Immutable once
// published for concurrent readers; mutators keep it fresh in place
// (exclusive access) or drop it.
struct Relation::RowIndex {
  std::vector<int32_t> slots;
  size_t mask = 0;
  size_t size = 0;
};

Relation::~Relation() { DropIndex(); }

Relation::Relation(const Relation& other)
    : schema_(other.schema_), data_(other.data_), rows_(other.rows_) {}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  DropIndex();
  schema_ = other.schema_;
  data_ = other.data_;
  rows_ = other.rows_;
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : schema_(std::move(other.schema_)),
      data_(std::move(other.data_)),
      rows_(other.rows_),
      index_(other.index_.load(std::memory_order_relaxed)) {
  other.index_.store(nullptr, std::memory_order_relaxed);
  other.rows_ = 0;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  DropIndex();
  schema_ = std::move(other.schema_);
  data_ = std::move(other.data_);
  rows_ = other.rows_;
  index_.store(other.index_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  other.index_.store(nullptr, std::memory_order_relaxed);
  other.rows_ = 0;
  return *this;
}

std::vector<std::vector<int>> Relation::ToTuples() const {
  std::vector<std::vector<int>> out;
  out.reserve(rows_);
  for (int r = 0; r < rows_; ++r) {
    out.emplace_back(Row(r), Row(r) + Arity());
  }
  return out;
}

void Relation::AddTuple(const std::vector<int>& tuple) {
  HT_CHECK_EQ(tuple.size(), schema_.size())
      << "tuple arity does not match the relation schema";
  AddRow(tuple.data());
}

void Relation::AddRowToIndex() {
  RowIndex* idx = index_.load(std::memory_order_relaxed);
  // Mutation is exclusive by contract, so the index can be kept fresh
  // in place instead of being rebuilt on the next Contains().
  MaybeGrowIndex(idx);
  InsertIntoIndex(idx, rows_ - 1, /*check_duplicate=*/false);
}

bool Relation::InsertIfAbsent(const int* row) {
  if (ContainsRow(row)) return false;
  AddRow(row);
  return true;
}

void Relation::Reserve(int num_rows) {
  data_.reserve(static_cast<size_t>(num_rows) * schema_.size());
}

int Relation::IndexOf(int var) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

Relation Relation::Join(const Relation& other) const {
  // Single code path for serial and pooled execution: the engine with a
  // null pool runs every morsel on the calling thread.
  return EngineJoin(*this, other, /*pool=*/nullptr);
}

Relation Relation::JoinGeneric(const Relation& other) const {
  DCheckRep();
  other.DCheckRep();
  std::vector<int> pa, pb;
  SharedPositions(schema_, other.schema_, &pa, &pb);
  // Output schema: this schema plus other's non-shared variables.
  std::vector<int> out_schema = schema_;
  std::vector<int> extra_positions;
  for (size_t j = 0; j < other.schema_.size(); ++j) {
    if (IndexOf(other.schema_[j]) == -1) {
      out_schema.push_back(other.schema_[j]);
      extra_positions.push_back(static_cast<int>(j));
    }
  }
  Relation out(std::move(out_schema));
  if (rows_ == 0 || other.rows_ == 0) return out;
  JoinKeyTable table(other, pb);
  // Exact-size pre-pass: join outputs run to gigabytes, where growth by
  // doubling would copy (and page-fault) the whole buffer repeatedly.
  long total = 0;
  for (int t = 0; t < rows_; ++t) total += table.Matches(Row(t), pa);
  out.data_.reserve(static_cast<size_t>(total) * out.schema_.size());
  long emitted = 0;
  for (int t = 0; t < rows_; ++t) {
    const int* row = Row(t);
    for (int u = table.FindFirst(row, pa); u != -1; u = table.FindNext(u)) {
      out.data_.insert(out.data_.end(), row, row + schema_.size());
      const int* urow = other.Row(u);
      for (int p : extra_positions) out.data_.push_back(urow[p]);
      ++out.rows_;
      ++emitted;
    }
  }
  RowsJoined().Add(emitted);
  BytesAllocated().Add(
      static_cast<long>(out.data_.capacity() * sizeof(int)));
  HT_CHECK_EQ(emitted, total)
      << "join emitted a different row count than its exact-size pre-pass";
  out.DCheckRep();
  return out;
}

Relation Relation::Semijoin(const Relation& other) const {
  Relation out(*this);
  out.SemijoinInPlace(other);
  return out;
}

void Relation::SemijoinInPlace(const Relation& other) {
  EngineSemijoinInPlace(this, other, /*pool=*/nullptr);
}

void Relation::SemijoinInPlaceGeneric(const Relation& other) {
  HT_CHECK(this != &other) << "SemijoinInPlace must not alias its argument";
  DCheckRep();
  other.DCheckRep();
  std::vector<int> pa, pb;
  SharedPositions(schema_, other.schema_, &pa, &pb);
  if (pa.empty()) {
    // No shared variables: keep everything iff other is non-empty.
    if (other.Empty() && rows_ > 0) {
      RowsSemijoinDropped().Add(rows_);
      data_.clear();
      rows_ = 0;
      DropIndex();
    }
    return;
  }
  if (rows_ == 0) return;
  DropIndex();
  if (other.rows_ == 0) {
    RowsSemijoinDropped().Add(rows_);
    data_.clear();
    rows_ = 0;
    return;
  }
  JoinKeyTable table(other, pb, /*keys_only=*/true);
  const size_t arity = schema_.size();
  int write = 0;
  for (int t = 0; t < rows_; ++t) {
    const int* row = Row(t);
    if (table.FindFirst(row, pa) == -1) continue;
    if (write != t) {
      std::memmove(data_.data() + static_cast<size_t>(write) * arity, row,
                   arity * sizeof(int));
    }
    ++write;
  }
  RowsSemijoinDropped().Add(rows_ - write);
  HT_CHECK_LE(write, rows_)
      << "semijoin compaction produced more survivors than input rows";
  rows_ = write;
  data_.resize(static_cast<size_t>(write) * arity);
  DCheckRep();
}

Relation Relation::Project(const std::vector<int>& vars) const {
  return EngineProject(*this, vars, /*pool=*/nullptr);
}

Relation Relation::ProjectGeneric(const std::vector<int>& vars) const {
  std::vector<int> positions;
  positions.reserve(vars.size());
  for (int v : vars) {
    int idx = IndexOf(v);
    HT_CHECK_MSG(idx >= 0, "projection variable not in schema");
    positions.push_back(idx);
  }
  Relation out(vars);
  if (rows_ == 0) return out;
  const int k = static_cast<int>(positions.size());
  // Upper-bound reservation: avoids growth reallocation; the unwritten
  // tail is never touched, so it costs address space, not pages.
  out.data_.reserve(static_cast<size_t>(rows_) * k);
  // Open-addressing dedup over the rows already emitted into `out`:
  // candidate keys are hashed straight from this relation's rows.
  size_t cap = NextPow2AtLeast(static_cast<size_t>(rows_) * 2);
  size_t mask = cap - 1;
  std::vector<int32_t> slots(cap, -1);
  std::vector<int> identity(k);
  for (int i = 0; i < k; ++i) identity[i] = i;
  for (int t = 0; t < rows_; ++t) {
    const int* row = Row(t);
    size_t slot = HashRowKey(row, positions.data(), k) & mask;
    bool present = false;
    long collisions = 0;
    while (slots[slot] != -1) {
      if (KeysEqual(out.Row(slots[slot]), identity.data(), row,
                    positions.data(), k)) {
        present = true;
        break;
      }
      ++collisions;
      slot = (slot + 1) & mask;
    }
    if (collisions > 0) ProbeCollisions().Add(collisions);
    if (present) continue;
    slots[slot] = out.rows_;
    for (int i = 0; i < k; ++i) out.data_.push_back(row[positions[i]]);
    ++out.rows_;
  }
  BytesAllocated().Add(static_cast<long>(
      (out.data_.capacity() + slots.capacity()) * sizeof(int)));
  HT_CHECK_LE(out.rows_, rows_)
      << "projection emitted more distinct rows than its input has";
  out.DCheckRep();
  return out;
}

bool Relation::Contains(const std::vector<int>& tuple) const {
  HT_CHECK(tuple.size() == schema_.size());
  return ContainsRow(tuple.data());
}

bool Relation::ContainsRow(const int* row) const {
  if (rows_ == 0) return false;
  // Arity 0: the only possible tuple is the empty one, and `row` may be
  // null (vector<int>{}.data()) — never hand it to memcmp/hash.
  if (schema_.empty()) return true;
  // Tiny relations (typical CSP constraint tables) are cheaper to scan in
  // the flat buffer than to hash-probe; skip the index while none exists.
  // Never building an index for them also keeps bytes_allocated
  // deterministic regardless of lookup pattern.
  const RowIndex* idx = index_.load(std::memory_order_acquire);
  if (idx == nullptr && rows_ <= kScanThreshold) {
    const size_t arity = schema_.size();
    const size_t bytes = arity * sizeof(int);
    for (int r = 0; r < rows_; ++r) {
      if (std::memcmp(Row(r), row, bytes) == 0) return true;
    }
    return false;
  }
  if (idx == nullptr) idx = EnsureIndex();
  return ProbeIndex(*idx, row);
}

const Relation::RowIndex* Relation::EnsureIndex() const {
  RowIndex* idx = index_.load(std::memory_order_acquire);
  if (idx != nullptr) return idx;
  auto* built = new RowIndex;
  size_t cap = NextPow2AtLeast(static_cast<size_t>(rows_) * 2);
  built->mask = cap - 1;
  built->slots.assign(cap, -1);
  for (int r = 0; r < rows_; ++r) {
    InsertIntoIndex(built, r, /*check_duplicate=*/false);
  }
  RowIndex* expected = nullptr;
  if (index_.compare_exchange_strong(expected, built,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    // Count allocation only for the published winner so the counter stays
    // deterministic when concurrent readers race on the first build.
    BytesAllocated().Add(
        static_cast<long>(built->slots.capacity() * sizeof(int32_t)));
    return built;
  }
  delete built;
  return expected;
}

void Relation::DropIndex() {
  RowIndex* idx = index_.load(std::memory_order_relaxed);
  if (idx != nullptr) {
    delete idx;
    index_.store(nullptr, std::memory_order_relaxed);
  }
}

bool Relation::ProbeIndex(const RowIndex& idx, const int* row) const {
  const int arity = Arity();
  size_t slot = HashRowValues(row, arity) & idx.mask;
  long collisions = 0;
  bool found = false;
  while (idx.slots[slot] != -1) {
    const int* cand = Row(idx.slots[slot]);
    if (std::memcmp(cand, row, static_cast<size_t>(arity) * sizeof(int)) ==
        0) {
      found = true;
      break;
    }
    ++collisions;
    slot = (slot + 1) & idx.mask;
  }
  if (collisions > 0) ProbeCollisions().Add(collisions);
  return found;
}

bool Relation::InsertIntoIndex(RowIndex* idx, int r,
                               bool check_duplicate) const {
  const int arity = Arity();
  const int* row = Row(r);
  size_t slot = HashRowValues(row, arity) & idx->mask;
  while (idx->slots[slot] != -1) {
    if (check_duplicate &&
        std::memcmp(Row(idx->slots[slot]), row,
                    static_cast<size_t>(arity) * sizeof(int)) == 0) {
      return false;
    }
    slot = (slot + 1) & idx->mask;
  }
  idx->slots[slot] = r;
  ++idx->size;
  return true;
}

void Relation::MaybeGrowIndex(RowIndex* idx) const {
  if ((idx->size + 1) * 10 <= idx->slots.size() * 7) return;
  RowIndex grown;
  size_t cap = NextPow2AtLeast(idx->slots.size() * 2);
  grown.mask = cap - 1;
  grown.slots.assign(cap, -1);
  for (int32_t r : idx->slots) {
    if (r == -1) continue;
    const int* row = Row(r);
    size_t slot = HashRowValues(row, Arity()) & grown.mask;
    while (grown.slots[slot] != -1) slot = (slot + 1) & grown.mask;
    grown.slots[slot] = r;
  }
  grown.size = idx->size;
  BytesAllocated().Add(
      static_cast<long>(grown.slots.capacity() * sizeof(int32_t)));
  *idx = std::move(grown);
}

}  // namespace hypertree
