// Chronological backtracking: the structure-blind baseline the
// decomposition-based solvers are compared against (worst case d^n).

#ifndef HYPERTREE_CSP_BACKTRACKING_H_
#define HYPERTREE_CSP_BACKTRACKING_H_

#include <optional>
#include <vector>

#include "csp/csp.h"

namespace hypertree {

/// Statistics of a backtracking run.
struct BacktrackStats {
  long nodes = 0;        // assignments tried
  bool aborted = false;  // node budget exhausted before an answer
};

/// Finds one solution by chronological backtracking with constraint checks
/// on fully assigned scopes. `max_nodes` (<= 0: unlimited) bounds the
/// search; on exhaustion returns std::nullopt with stats->aborted set.
std::optional<std::vector<int>> BacktrackingSolve(
    const Csp& csp, long max_nodes = 0, BacktrackStats* stats = nullptr);

/// Counts all solutions (same budget semantics).
long BacktrackingCountSolutions(const Csp& csp, long max_nodes = 0,
                                BacktrackStats* stats = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_BACKTRACKING_H_
