// Adaptive consistency (Dechter & Pearl): solving a CSP directly by
// bucket elimination (thesis §2.5) — the algorithmic origin of the
// tree-decomposition connection. Constraints are partitioned into buckets
// along an elimination ordering; each bucket is joined, its variable
// projected out, and the result dropped into the next bucket. Runtime is
// exponential only in the width of the ordering.

#ifndef HYPERTREE_CSP_ADAPTIVE_CONSISTENCY_H_
#define HYPERTREE_CSP_ADAPTIVE_CONSISTENCY_H_

#include <optional>
#include <vector>

#include "csp/csp.h"
#include "ordering/ordering.h"

namespace hypertree {

/// Work counters for adaptive consistency.
struct AdaptiveConsistencyStats {
  long tuples_materialized = 0;  // rows across all intermediate relations
  int max_relation = 0;          // largest intermediate relation
};

/// Solves `csp` by bucket elimination along `sigma` (processed back to
/// front, like all orderings in this library). Returns a full solution or
/// std::nullopt; never aborts (budget = the ordering's width).
std::optional<std::vector<int>> AdaptiveConsistencySolve(
    const Csp& csp, const EliminationOrdering& sigma,
    AdaptiveConsistencyStats* stats = nullptr);

/// Convenience: min-fill ordering on the constraint hypergraph's primal
/// graph, then AdaptiveConsistencySolve.
std::optional<std::vector<int>> AdaptiveConsistencySolve(
    const Csp& csp, AdaptiveConsistencyStats* stats = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_ADAPTIVE_CONSISTENCY_H_
