// Deterministic parallel traversal of rooted trees/forests over the shared
// ThreadPool. The Yannakakis passes, per-node bag joins and weighted
// counting all reduce to "visit every node, children before parents" (or
// the reverse): independent subtrees can run concurrently as long as the
// parent/child ordering is respected, and the result is schedule-
// independent because each visit only reads relations owned by already-
// visited nodes and writes its own.

#ifndef HYPERTREE_CSP_TREE_SCHEDULE_H_
#define HYPERTREE_CSP_TREE_SCHEDULE_H_

#include <functional>
#include <vector>

namespace hypertree {

class ThreadPool;

/// Calls visit(node) once per node with every child visited before its
/// parent. With a pool (> 1 thread) independent subtrees run in parallel;
/// `visit` must only touch node-owned state plus already-visited children.
/// pool == nullptr (or a 1-thread pool) runs sequentially in reverse
/// BFS-from-the-roots order.
void RunTreeBottomUp(const std::vector<int>& parent,
                     const std::vector<std::vector<int>>& children,
                     ThreadPool* pool, const std::function<void(int)>& visit);

/// Calls visit(node) once per node with every parent visited before its
/// children (parallel across subtrees with a pool, BFS order otherwise).
void RunTreeTopDown(const std::vector<int>& parent,
                    const std::vector<std::vector<int>>& children,
                    ThreadPool* pool, const std::function<void(int)>& visit);

/// Calls visit(i) for i in [0, count) with no ordering constraint
/// (parallel with a pool, ascending order otherwise).
void RunForAll(int count, ThreadPool* pool,
               const std::function<void(int)>& visit);

/// Nestable data-parallel loop: calls visit(i) for i in [0, count) with
/// no ordering constraint, safe to call from *inside* a pool task
/// (unlike RunForAll, which drains the run with pool->Wait() and would
/// deadlock when the calling task itself counts as pending work). The
/// caller participates: it claims indices from a shared cursor alongside
/// helper tasks, so the loop always progresses even when every other
/// pool worker is busy. Helpers that wake after the cursor is exhausted
/// exit without touching visit. The morsel-engine within-bag
/// parallelism primitive.
void ParallelFor(int count, ThreadPool* pool,
                 const std::function<void(int)>& visit);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_TREE_SCHEDULE_H_
