#include "csp/morsel_engine.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <utility>

#include "csp/relation_internal.h"
#include "csp/tree_schedule.h"
#include "kernels/kernels.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace hypertree {

namespace {

// Hot-path counters, resolved once (shared names with relation.cc: the
// registry hands back the same counter object per name).
metrics::Counter& RowsJoined() {
  static metrics::Counter& c = metrics::GetCounter("relation.rows_joined");
  return c;
}
metrics::Counter& RowsSemijoinDropped() {
  static metrics::Counter& c =
      metrics::GetCounter("relation.rows_semijoin_dropped");
  return c;
}
metrics::Counter& ProbeCollisions() {
  static metrics::Counter& c =
      metrics::GetCounter("relation.probe_collisions");
  return c;
}
metrics::Counter& BytesAllocated() {
  static metrics::Counter& c =
      metrics::GetCounter("relation.bytes_allocated");
  return c;
}

// Dense-table span caps: above these the direct-indexed arrays stop
// paying for their footprint (join keeps two int32 arrays per key slot,
// semijoin one bit). Fixed constants so the dense/hash decision — and
// every downstream counter — is deterministic.
constexpr uint64_t kJoinDenseSpanMax = (uint64_t{1} << 20) - 1;
constexpr uint64_t kSemiDenseSpanMax = (uint64_t{1} << 22) - 1;
// Project goes dense when the whole packed-key universe is small
// (k * bits <= kProjectDenseKeyBits): the seen-bitmap is then at most
// 2^22 bits = 512 KiB and needs no key-range pre-pass.
constexpr int kProjectDenseKeyBits = 22;
constexpr int kMaxSpillPartitions = 256;

size_t NextPow2AtLeast(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

// Positions of the shared variables in each schema.
void SharedPositions(const std::vector<int>& a, const std::vector<int>& b,
                     std::vector<int>* pa, std::vector<int>* pb) {
  pa->clear();
  pb->clear();
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      if (a[i] == b[j]) {
        pa->push_back(static_cast<int>(i));
        pb->push_back(static_cast<int>(j));
      }
    }
  }
}

int PosOf(const std::vector<int>& schema, int var) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == var) return static_cast<int>(i);
  }
  return -1;
}

// Uniform chunk iteration over a resident Relation (kMorselRows views
// into the flat buffer, zero copy) or a ChunkedRelation (resident or
// spilled).
struct ChunkSource {
  const Relation* rel = nullptr;
  const ChunkedRelation* ck = nullptr;

  explicit ChunkSource(const Relation& r) : rel(&r) {}
  explicit ChunkSource(const ChunkedRelation& c) {
    if (c.spilled()) {
      ck = &c;
    } else {
      rel = &c.rel();
    }
  }

  const std::vector<int>& schema() const {
    return rel != nullptr ? rel->schema() : ck->schema();
  }
  int arity() const { return static_cast<int>(schema().size()); }
  long rows() const {
    return rel != nullptr ? static_cast<long>(rel->Size()) : ck->TotalRows();
  }
  int nchunks() const {
    if (rel != nullptr) {
      return static_cast<int>((rows() + kMorselRows - 1) / kMorselRows);
    }
    return ck->NumChunks();
  }
  int chunk_rows(int i) const {
    if (rel != nullptr) {
      const long lo = static_cast<long>(i) * kMorselRows;
      return static_cast<int>(std::min<long>(kMorselRows, rows() - lo));
    }
    return ck->ChunkRows(i);
  }
  const int* load(int i, std::vector<int>* scratch) const {
    if (rel != nullptr) {
      if (rel->Arity() == 0 || rel->Empty()) return rel->data().data();
      return rel->Row(i * kMorselRows);
    }
    return ck->LoadChunk(i, scratch);
  }
};

// Full-buffer value range (empty buffer: {0, 0} — the same neutral
// start the pre-engine JoinKeyTable range scan used). The contiguous
// scan vectorizes and at most over-estimates the needed bits.
struct ValueRange {
  int mn = 0;
  int mx = 0;
};

ValueRange ScanValues(const int* p, size_t n) {
  ValueRange v;
  for (size_t i = 0; i < n; ++i) {
    v.mn = std::min(v.mn, p[i]);
    v.mx = std::max(v.mx, p[i]);
  }
  return v;
}

ValueRange ScanSource(const ChunkSource& a) {
  if (a.rel != nullptr) {
    return ScanValues(a.rel->data().data(), a.rel->data().size());
  }
  ValueRange v;
  std::vector<int> scratch;
  const int arity = a.arity();
  for (int i = 0; i < a.nchunks(); ++i) {
    const int rows = a.chunk_rows(i);
    const ValueRange c = ScanValues(a.load(i, &scratch),
                                    static_cast<size_t>(rows) * arity);
    v.mn = std::min(v.mn, c.mn);
    v.mx = std::max(v.mx, c.mx);
  }
  return v;
}

// Bits per packed key element, or 0 when the pair does not pack
// (no shared variables, negative values, > 64 bits total).
int PlanBits(size_t k, ValueRange a, ValueRange b) {
  if (k == 0) return 0;
  if (a.mn < 0 || b.mn < 0) return 0;
  const uint64_t mx = static_cast<uint64_t>(std::max(a.mx, b.mx));
  int bits = 1;
  while ((mx >> bits) != 0) ++bits;
  return static_cast<int>(k) * bits <= 64 ? bits : 0;
}

// Packs every row of `r` (morsel-parallel; each morsel writes a
// disjoint key range and its own min/max slot, combined in morsel
// order, so the result is schedule-independent).
void PackRelationKeys(const Relation& r, const std::vector<int>& pos,
                      int bits, ThreadPool* pool, std::vector<uint64_t>* keys,
                      uint64_t* out_min, uint64_t* out_max) {
  const int rows = r.Size();
  keys->resize(static_cast<size_t>(rows));
  const int k = static_cast<int>(pos.size());
  const int arity = r.Arity();
  const int nm = (rows + kMorselRows - 1) / kMorselRows;
  std::vector<uint64_t> mns(static_cast<size_t>(nm), ~uint64_t{0});
  std::vector<uint64_t> mxs(static_cast<size_t>(nm), 0);
  const kernels::Ops& ops = kernels::Active();
  const int* base = r.data().data();
  uint64_t* kb = keys->data();
  ParallelFor(nm, pool, [&](int m) {
    const int lo = m * kMorselRows;
    const int hi = std::min(lo + kMorselRows, rows);
    ops.PackKeys(kb + lo, base + static_cast<size_t>(lo) * arity, arity,
                 pos.data(), k, bits, hi - lo, &mns[m], &mxs[m]);
  });
  uint64_t mn = ~uint64_t{0};
  uint64_t mx = 0;
  for (int m = 0; m < nm; ++m) {
    mn = std::min(mn, mns[m]);
    mx = std::max(mx, mxs[m]);
  }
  *out_min = mn;
  *out_max = mx;
}

Relation Materialize(const ChunkSource& a) {
  Relation out(a.schema());
  out.Reserve(static_cast<int>(a.rows()));
  std::vector<int> scratch;
  const int arity = a.arity();
  for (int i = 0; i < a.nchunks(); ++i) {
    const int rows = a.chunk_rows(i);
    const int* data = a.load(i, &scratch);
    for (int r = 0; r < rows; ++r) {
      out.AddRow(data + static_cast<size_t>(r) * arity);
    }
  }
  return out;
}

// Per-morsel probe scratch (local to one ParallelFor iteration).
struct ChunkBufs {
  std::vector<uint64_t> keys;
  std::vector<int32_t> vals;
};

// ---------------------------------------------------------------------------
// Join: build table over the build side's packed keys — dense
// (direct-indexed head/count arrays over the key span) or hash (open
// addressing over distinct keys, ProbeKeys kernel) — with ascending
// per-key row chains via reverse insertion, exactly the pre-engine
// output-order contract (probe row order, build ties ascending).
// ---------------------------------------------------------------------------

struct JoinTable {
  int k = 0;
  int bits = 0;
  uint64_t bmin = ~uint64_t{0};
  uint64_t bmax = 0;
  bool dense = false;
  std::vector<int32_t> next;  // ascending per-key chains
  std::vector<int32_t> dense_head;
  std::vector<int32_t> dense_cnt;
  std::vector<uint64_t> slot_keys;
  std::vector<int32_t> slot_vals;  // distinct-key ordinal, -1 empty
  std::vector<int32_t> first;      // first row per distinct key
  std::vector<int32_t> cnt;        // rows per distinct key
  uint64_t mask = 0;
};

JoinTable BuildJoinTable(const Relation& b, const std::vector<int>& pb,
                         int bits, ThreadPool* pool) {
  JoinTable t;
  t.k = static_cast<int>(pb.size());
  t.bits = bits;
  const int rows = b.Size();
  std::vector<uint64_t> keys;
  PackRelationKeys(b, pb, bits, pool, &keys, &t.bmin, &t.bmax);
  const uint64_t span = t.bmax - t.bmin;
  t.next.assign(static_cast<size_t>(rows), -1);
  t.dense = span <= kJoinDenseSpanMax;
  if (t.dense) {
    t.dense_head.assign(static_cast<size_t>(span) + 1, -1);
    t.dense_cnt.assign(static_cast<size_t>(span) + 1, 0);
    for (int r = rows - 1; r >= 0; --r) {
      const size_t idx = static_cast<size_t>(keys[r] - t.bmin);
      t.next[r] = t.dense_head[idx];
      t.dense_head[idx] = r;
      ++t.dense_cnt[idx];
    }
  } else {
    const size_t cap = NextPow2AtLeast(static_cast<size_t>(rows) * 2);
    t.mask = cap - 1;
    t.slot_keys.assign(cap, 0);
    t.slot_vals.assign(cap, -1);
    for (int r = rows - 1; r >= 0; --r) {
      const uint64_t key = keys[r];
      size_t slot = kernels::SplitMix64(key) & t.mask;
      while (t.slot_vals[slot] != -1 && t.slot_keys[slot] != key) {
        slot = (slot + 1) & t.mask;
      }
      if (t.slot_vals[slot] == -1) {
        t.slot_vals[slot] = static_cast<int32_t>(t.first.size());
        t.slot_keys[slot] = key;
        t.first.push_back(r);
        t.cnt.push_back(1);
      } else {
        const int32_t ord = t.slot_vals[slot];
        t.next[r] = t.first[ord];
        t.first[ord] = r;
        ++t.cnt[ord];
      }
    }
  }
  BytesAllocated().Add(static_cast<long>(
      (t.next.capacity() + t.dense_head.capacity() + t.dense_cnt.capacity() +
       t.slot_vals.capacity() + t.first.capacity() + t.cnt.capacity()) *
          sizeof(int32_t) +
      t.slot_keys.capacity() * sizeof(uint64_t)));
  return t;
}

// Exact-size count for one probe chunk. Zone map: a morsel whose packed
// key range misses [bmin, bmax] entirely is skipped without probing.
long CountJoinChunk(const int* data, int rows, int arity, const int* pa,
                    const JoinTable& t, ChunkBufs* bufs) {
  if (rows == 0) return 0;
  bufs->keys.resize(static_cast<size_t>(rows));
  uint64_t mn = 0;
  uint64_t mx = 0;
  const kernels::Ops& ops = kernels::Active();
  ops.PackKeys(bufs->keys.data(), data, static_cast<size_t>(arity), pa, t.k,
               t.bits, rows, &mn, &mx);
  if (mn > t.bmax || mx < t.bmin) {
    MorselsSkipped().Increment();
    return 0;
  }
  MorselsProcessed().Increment();
  long total = 0;
  if (t.dense) {
    for (int r = 0; r < rows; ++r) {
      const uint64_t key = bufs->keys[r];
      if (key < t.bmin || key > t.bmax) continue;
      total += t.dense_cnt[static_cast<size_t>(key - t.bmin)];
    }
  } else {
    bufs->vals.resize(static_cast<size_t>(rows));
    // Count-pass collisions are not charged to relation.probe_collisions
    // (mirrors the pre-engine exact-size pre-pass, which counted probes
    // only when emitting).
    ops.ProbeKeys(bufs->vals.data(), bufs->keys.data(), rows,
                  t.slot_keys.data(), t.slot_vals.data(), t.mask);
    for (int r = 0; r < rows; ++r) {
      const int32_t v = bufs->vals[r];
      if (v >= 0) total += t.cnt[v];
    }
  }
  return total;
}

// Emits one probe chunk's join rows at `out` (row-major, out_arity
// columns). Returns the probe-collision count; *out_emitted gets the
// emitted row count (must equal the chunk's count pre-pass).
long EmitJoinChunk(const int* data, int rows, int arity, const int* pa,
                   const JoinTable& t, const Relation& b,
                   const std::vector<int>& extra, int* out,
                   long* out_emitted, ChunkBufs* bufs) {
  bufs->keys.resize(static_cast<size_t>(rows));
  uint64_t mn = 0;
  uint64_t mx = 0;
  const kernels::Ops& ops = kernels::Active();
  ops.PackKeys(bufs->keys.data(), data, static_cast<size_t>(arity), pa, t.k,
               t.bits, rows, &mn, &mx);
  const size_t nextra = extra.size();
  const size_t out_arity = static_cast<size_t>(arity) + nextra;
  long emitted = 0;
  long collisions = 0;
  auto emit_chain = [&](const int* row, int u) {
    for (; u != -1; u = t.next[u]) {
      std::memcpy(out, row, static_cast<size_t>(arity) * sizeof(int));
      const int* urow = b.Row(u);
      for (size_t j = 0; j < nextra; ++j) out[arity + j] = urow[extra[j]];
      out += out_arity;
      ++emitted;
    }
  };
  if (t.dense) {
    for (int r = 0; r < rows; ++r) {
      const uint64_t key = bufs->keys[r];
      if (key < t.bmin || key > t.bmax) continue;
      emit_chain(data + static_cast<size_t>(r) * arity,
                 t.dense_head[static_cast<size_t>(key - t.bmin)]);
    }
  } else {
    bufs->vals.resize(static_cast<size_t>(rows));
    collisions =
        ops.ProbeKeys(bufs->vals.data(), bufs->keys.data(), rows,
                      t.slot_keys.data(), t.slot_vals.data(), t.mask);
    for (int r = 0; r < rows; ++r) {
      const int32_t v = bufs->vals[r];
      if (v < 0) continue;
      emit_chain(data + static_cast<size_t>(r) * arity, t.first[v]);
    }
  }
  *out_emitted = emitted;
  return collisions;
}

ChunkedRelation JoinImpl(const ChunkSource& a, const Relation& b,
                         ThreadPool* pool, bool allow_spill) {
  const std::vector<int>& sa = a.schema();
  std::vector<int> pa;
  std::vector<int> pb;
  SharedPositions(sa, b.schema(), &pa, &pb);
  std::vector<int> out_schema = sa;
  std::vector<int> extra;
  for (size_t j = 0; j < b.schema().size(); ++j) {
    if (PosOf(sa, b.schema()[j]) == -1) {
      out_schema.push_back(b.schema()[j]);
      extra.push_back(static_cast<int>(j));
    }
  }
  if (a.rows() == 0 || b.Empty()) {
    return ChunkedRelation(Relation(std::move(out_schema)));
  }
  const int bits = PlanBits(pa.size(), ScanSource(a),
                            ScanValues(b.data().data(), b.data().size()));
  if (bits == 0) {
    // Generic fallback: the pre-engine row-hash join.
    if (a.rel != nullptr) {
      return ChunkedRelation(RelationInternal::JoinGeneric(*a.rel, b));
    }
    Relation ra = Materialize(a);
    return ChunkedRelation(RelationInternal::JoinGeneric(ra, b));
  }

  const JoinTable t = BuildJoinTable(b, pb, bits, pool);
  const int nchunks = a.nchunks();
  const int arity = a.arity();
  std::vector<long> counts(static_cast<size_t>(nchunks), 0);
  ParallelFor(nchunks, pool, [&](int i) {
    ChunkBufs bufs;
    std::vector<int> scratch;
    counts[i] = CountJoinChunk(a.load(i, &scratch), a.chunk_rows(i), arity,
                               pa.data(), t, &bufs);
  });
  std::vector<long> offs(static_cast<size_t>(nchunks) + 1, 0);
  for (int i = 0; i < nchunks; ++i) offs[i + 1] = offs[i] + counts[i];
  const long total = offs[nchunks];
  const size_t out_arity = out_schema.size();
  const long long out_bytes =
      static_cast<long long>(total) * static_cast<long long>(out_arity) *
      static_cast<long long>(sizeof(int));
  const long long budget = MemoryBudget();
  std::atomic<long> collisions{0};

  if (allow_spill && budget > 0 && out_bytes > budget) {
    // Larger-than-core output: every chunk spills (the decision is made
    // once, from the exact pre-pass total, so chunk contents never
    // depend on residency or schedule).
    auto file = std::make_shared<SpillFile>();
    file->Open();
    SpillFile* fp = file.get();
    ChunkedRelation out(out_schema, std::move(file));
    out.ResizeChunks(nchunks);
    ChunkedRelation* outp = &out;
    ParallelFor(nchunks, pool, [&](int i) {
      if (counts[i] == 0) {
        outp->SetChunk(i, 0, 0);
        return;
      }
      HT_CHECK_LE(counts[i], static_cast<long>(INT32_MAX))
          << "spilled join chunk exceeds the per-chunk row-count limit";
      ChunkBufs bufs;
      std::vector<int> scratch;
      std::vector<int> buf(static_cast<size_t>(counts[i]) * out_arity);
      long emitted = 0;
      const long c =
          EmitJoinChunk(a.load(i, &scratch), a.chunk_rows(i), arity,
                        pa.data(), t, b, extra, buf.data(), &emitted, &bufs);
      collisions.fetch_add(c, std::memory_order_relaxed);
      HT_CHECK_EQ(emitted, counts[i])
          << "join emitted a different row count than its exact-size "
             "pre-pass";
      // Reserve a disjoint file range and write this chunk's rows.
      // (Allocation order is schedule-dependent; chunk contents and the
      // chunk-index mapping are not.)
      const long long bytes =
          static_cast<long long>(buf.size()) * sizeof(int);
      const long long off = fp->Allocate(bytes);
      fp->WriteAt(off, buf.data(), static_cast<size_t>(bytes));
      outp->SetChunk(i, off, static_cast<int>(counts[i]));
    });
    out.FinishChunks();
    SpillPartitions().Add(nchunks);
    SpillBytes().Add(static_cast<long>(out_bytes));
    RowsJoined().Add(total);
    const long coll = collisions.load(std::memory_order_relaxed);
    if (coll > 0) ProbeCollisions().Add(coll);
    return out;
  }

  Relation out(out_schema);
  std::vector<int>& data = RelationInternal::Data(out);
  HT_CHECK_LE(total, static_cast<long>(INT32_MAX))
      << "resident join output exceeds the row-count limit";
  data.resize(static_cast<size_t>(total) * out_arity);
  RelationInternal::Rows(out) = static_cast<int>(total);
  ParallelFor(nchunks, pool, [&](int i) {
    if (counts[i] == 0) return;
    ChunkBufs bufs;
    std::vector<int> scratch;
    long emitted = 0;
    const long c = EmitJoinChunk(
        a.load(i, &scratch), a.chunk_rows(i), arity, pa.data(), t, b, extra,
        data.data() + static_cast<size_t>(offs[i]) * out_arity, &emitted,
        &bufs);
    collisions.fetch_add(c, std::memory_order_relaxed);
    HT_CHECK_EQ(emitted, counts[i])
        << "join emitted a different row count than its exact-size pre-pass";
  });
  RowsJoined().Add(total);
  BytesAllocated().Add(static_cast<long>(data.capacity() * sizeof(int)));
  const long coll = collisions.load(std::memory_order_relaxed);
  if (coll > 0) ProbeCollisions().Add(coll);
  RelationInternal::CheckRep(out);
  return ChunkedRelation(std::move(out));
}

// ---------------------------------------------------------------------------
// Semijoin.
// ---------------------------------------------------------------------------

// Grace (radix) partitioned build side: partitions the build keys to a
// spill file by the top hash bits, then builds one small key set per
// partition and probes every left morsel against it. keep[] bits are
// only ever set, so the union over partitions is order-independent.
void PartitionedSemijoin(const Relation& left, const std::vector<int>& pa,
                         int bits, const std::vector<uint64_t>& rkeys,
                         uint64_t bmin, uint64_t bmax, long long budget,
                         ThreadPool* pool, std::vector<uint8_t>* keep,
                         std::atomic<long>* collisions) {
  const size_t full_cap = NextPow2AtLeast(rkeys.size() * 2);
  const long long table_bytes = static_cast<long long>(full_cap) * 12;
  int parts = 2;
  while (parts < kMaxSpillPartitions &&
         table_bytes / parts > std::max<long long>(budget / 2, 1)) {
    parts <<= 1;
  }
  int log2p = 0;
  while ((1 << log2p) < parts) ++log2p;
  const int shift = 64 - log2p;

  SpillFile file;
  file.Open();
  constexpr size_t kStageKeys = 1024;
  std::vector<std::vector<uint64_t>> stage(static_cast<size_t>(parts));
  std::vector<std::vector<std::pair<long long, int>>> extents(
      static_cast<size_t>(parts));
  auto flush = [&](int p) {
    std::vector<uint64_t>& s = stage[p];
    if (s.empty()) return;
    const long long bytes =
        static_cast<long long>(s.size()) * sizeof(uint64_t);
    const long long off = file.Allocate(bytes);
    file.WriteAt(off, s.data(), static_cast<size_t>(bytes));
    extents[p].emplace_back(off, static_cast<int>(s.size()));
    s.clear();
  };
  for (const uint64_t key : rkeys) {
    const int p = static_cast<int>(kernels::SplitMix64(key) >> shift);
    stage[p].push_back(key);
    if (stage[p].size() >= kStageKeys) flush(p);
  }
  for (int p = 0; p < parts; ++p) flush(p);
  SpillPartitions().Add(parts);
  SpillBytes().Add(static_cast<long>(rkeys.size() * sizeof(uint64_t)));

  const int rows_l = left.Size();
  const int arity = left.Arity();
  const int nm = (rows_l + kMorselRows - 1) / kMorselRows;
  const int* base = left.data().data();
  const kernels::Ops& ops = kernels::Active();
  std::vector<uint64_t> pkeys;
  for (int p = 0; p < parts; ++p) {
    long nkeys = 0;
    for (const auto& e : extents[p]) nkeys += e.second;
    if (nkeys == 0) continue;
    pkeys.resize(static_cast<size_t>(nkeys));
    long at = 0;
    for (const auto& e : extents[p]) {
      file.ReadAt(e.first, pkeys.data() + at,
                  static_cast<size_t>(e.second) * sizeof(uint64_t));
      at += e.second;
    }
    // Per-partition key set (duplicates skipped).
    const size_t cap = NextPow2AtLeast(static_cast<size_t>(nkeys) * 2);
    const uint64_t mask = cap - 1;
    std::vector<uint64_t> slot_keys(cap, 0);
    std::vector<int32_t> slot_vals(cap, -1);
    for (const uint64_t key : pkeys) {
      size_t slot = kernels::SplitMix64(key) & mask;
      while (slot_vals[slot] != -1 && slot_keys[slot] != key) {
        slot = (slot + 1) & mask;
      }
      if (slot_vals[slot] == -1) {
        slot_vals[slot] = 1;
        slot_keys[slot] = key;
      }
    }
    uint8_t* keepp = keep->data();
    ParallelFor(nm, pool, [&](int m) {
      const int lo = m * kMorselRows;
      const int hi = std::min(lo + kMorselRows, rows_l);
      ChunkBufs bufs;
      bufs.keys.resize(static_cast<size_t>(hi - lo));
      uint64_t mn = 0;
      uint64_t mx = 0;
      ops.PackKeys(bufs.keys.data(), base + static_cast<size_t>(lo) * arity,
                   static_cast<size_t>(arity), pa.data(),
                   static_cast<int>(pa.size()), bits, hi - lo, &mn, &mx);
      if (mn > bmax || mx < bmin) {
        MorselsSkipped().Increment();
        return;
      }
      MorselsProcessed().Increment();
      bufs.vals.resize(static_cast<size_t>(hi - lo));
      const long c =
          ops.ProbeKeys(bufs.vals.data(), bufs.keys.data(), hi - lo,
                        slot_keys.data(), slot_vals.data(), mask);
      collisions->fetch_add(c, std::memory_order_relaxed);
      for (int r = lo; r < hi; ++r) {
        if (bufs.vals[r - lo] >= 0) keepp[r] = 1;
      }
    });
  }
}

void PackedSemijoin(Relation* left, const Relation& right,
                    const std::vector<int>& pa, const std::vector<int>& pb,
                    int bits, ThreadPool* pool) {
  RelationInternal::DropIndex(*left);
  const int rows_l = left->Size();
  const int arity = left->Arity();
  std::vector<uint64_t> rkeys;
  uint64_t bmin = ~uint64_t{0};
  uint64_t bmax = 0;
  PackRelationKeys(right, pb, bits, pool, &rkeys, &bmin, &bmax);
  const uint64_t span = bmax - bmin;
  const long long budget = MemoryBudget();
  const long long dense_bytes =
      static_cast<long long>(span / 64 + 1) * sizeof(uint64_t);
  const bool dense =
      span <= kSemiDenseSpanMax && (budget == 0 || dense_bytes <= budget);
  std::vector<uint8_t> keep(static_cast<size_t>(rows_l), 0);
  std::atomic<long> collisions{0};
  const kernels::Ops& ops = kernels::Active();
  const int* base = left->data().data();
  const int nm = (rows_l + kMorselRows - 1) / kMorselRows;

  if (dense) {
    std::vector<uint64_t> bitmap(static_cast<size_t>(span / 64 + 1), 0);
    for (const uint64_t key : rkeys) {
      const uint64_t idx = key - bmin;
      bitmap[idx >> 6] |= uint64_t{1} << (idx & 63);
    }
    BytesAllocated().Add(
        static_cast<long>(bitmap.capacity() * sizeof(uint64_t)));
    uint8_t* keepp = keep.data();
    ParallelFor(nm, pool, [&](int m) {
      const int lo = m * kMorselRows;
      const int hi = std::min(lo + kMorselRows, rows_l);
      ChunkBufs bufs;
      bufs.keys.resize(static_cast<size_t>(hi - lo));
      uint64_t mn = 0;
      uint64_t mx = 0;
      ops.PackKeys(bufs.keys.data(), base + static_cast<size_t>(lo) * arity,
                   static_cast<size_t>(arity), pa.data(),
                   static_cast<int>(pa.size()), bits, hi - lo, &mn, &mx);
      if (mn > bmax || mx < bmin) {
        MorselsSkipped().Increment();
        return;
      }
      MorselsProcessed().Increment();
      for (int r = lo; r < hi; ++r) {
        const uint64_t key = bufs.keys[r - lo];
        if (key < bmin || key > bmax) continue;
        const uint64_t idx = key - bmin;
        if ((bitmap[idx >> 6] >> (idx & 63)) & 1) keepp[r] = 1;
      }
    });
  } else {
    const size_t cap = NextPow2AtLeast(rkeys.size() * 2);
    const long long hash_bytes = static_cast<long long>(cap) * 12;
    if (budget > 0 && hash_bytes > budget) {
      PartitionedSemijoin(*left, pa, bits, rkeys, bmin, bmax, budget, pool,
                          &keep, &collisions);
    } else {
      const uint64_t mask = cap - 1;
      std::vector<uint64_t> slot_keys(cap, 0);
      std::vector<int32_t> slot_vals(cap, -1);
      for (const uint64_t key : rkeys) {
        size_t slot = kernels::SplitMix64(key) & mask;
        while (slot_vals[slot] != -1 && slot_keys[slot] != key) {
          slot = (slot + 1) & mask;
        }
        if (slot_vals[slot] == -1) {
          slot_vals[slot] = 1;
          slot_keys[slot] = key;
        }
      }
      BytesAllocated().Add(static_cast<long>(
          slot_keys.capacity() * sizeof(uint64_t) +
          slot_vals.capacity() * sizeof(int32_t)));
      uint8_t* keepp = keep.data();
      ParallelFor(nm, pool, [&](int m) {
        const int lo = m * kMorselRows;
        const int hi = std::min(lo + kMorselRows, rows_l);
        ChunkBufs bufs;
        bufs.keys.resize(static_cast<size_t>(hi - lo));
        uint64_t mn = 0;
        uint64_t mx = 0;
        ops.PackKeys(bufs.keys.data(),
                     base + static_cast<size_t>(lo) * arity,
                     static_cast<size_t>(arity), pa.data(),
                     static_cast<int>(pa.size()), bits, hi - lo, &mn, &mx);
        if (mn > bmax || mx < bmin) {
          MorselsSkipped().Increment();
          return;
        }
        MorselsProcessed().Increment();
        bufs.vals.resize(static_cast<size_t>(hi - lo));
        const long c =
            ops.ProbeKeys(bufs.vals.data(), bufs.keys.data(), hi - lo,
                          slot_keys.data(), slot_vals.data(), mask);
        collisions.fetch_add(c, std::memory_order_relaxed);
        for (int r = lo; r < hi; ++r) {
          if (bufs.vals[r - lo] >= 0) keepp[r] = 1;
        }
      });
    }
  }

  // In-order swap compaction (row order preserved), as before.
  std::vector<int>& data = RelationInternal::Data(*left);
  int write = 0;
  for (int t = 0; t < rows_l; ++t) {
    if (keep[t] == 0) continue;
    if (write != t) {
      std::memmove(data.data() + static_cast<size_t>(write) * arity,
                   data.data() + static_cast<size_t>(t) * arity,
                   static_cast<size_t>(arity) * sizeof(int));
    }
    ++write;
  }
  RowsSemijoinDropped().Add(rows_l - write);
  HT_CHECK_LE(write, rows_l)
      << "semijoin compaction produced more survivors than input rows";
  RelationInternal::Rows(*left) = write;
  data.resize(static_cast<size_t>(write) * arity);
  const long coll = collisions.load(std::memory_order_relaxed);
  if (coll > 0) ProbeCollisions().Add(coll);
  RelationInternal::CheckRep(*left);
}

// ---------------------------------------------------------------------------
// Project.
// ---------------------------------------------------------------------------

Relation ProjectImpl(const ChunkSource& a, const std::vector<int>& vars,
                     ThreadPool* pool) {
  const std::vector<int>& sa = a.schema();
  std::vector<int> positions;
  positions.reserve(vars.size());
  for (int v : vars) {
    const int idx = PosOf(sa, v);
    HT_CHECK_MSG(idx >= 0, "projection variable not in schema");
    positions.push_back(idx);
  }
  const int k = static_cast<int>(positions.size());
  const long rows = a.rows();
  if (rows == 0) return Relation(vars);
  const int bits = PlanBits(positions.size(), ScanSource(a), ValueRange{});
  if (bits == 0) {
    if (a.rel != nullptr) {
      return RelationInternal::ProjectGeneric(*a.rel, vars);
    }
    Relation ra = Materialize(a);
    return RelationInternal::ProjectGeneric(ra, vars);
  }

  Relation out(vars);
  std::vector<int>& out_data = RelationInternal::Data(out);
  int& out_rows = RelationInternal::Rows(out);
  const bool dense = k * bits <= kProjectDenseKeyBits;
  const uint64_t vmask =
      bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;

  // Dedup state: seen-bitmap over the whole packed-key universe (dense)
  // or an open-addressed key set (hash). Output values are decoded from
  // the packed key by shifts — no gathered compares, no second read of
  // the input row.
  std::vector<uint64_t> bitmap;
  std::vector<uint64_t> slot_keys;
  std::vector<int32_t> slot_vals;
  uint64_t mask = 0;
  long reserve_rows = rows;
  if (dense) {
    const size_t universe = size_t{1} << (k * bits);
    bitmap.assign((universe + 63) / 64, 0);
    reserve_rows = std::min<long>(rows, static_cast<long>(universe));
  } else {
    const size_t cap = NextPow2AtLeast(static_cast<size_t>(
        std::min<long>(rows, static_cast<long>(INT32_MAX) / 2)) * 2);
    mask = cap - 1;
    slot_keys.assign(cap, 0);
    slot_vals.assign(cap, -1);
  }
  out_data.reserve(static_cast<size_t>(reserve_rows) * k);

  const int nchunks = a.nchunks();
  const int arity = a.arity();
  const kernels::Ops& ops = kernels::Active();
  const long long budget = MemoryBudget();
  // Pre-packing every chunk in parallel keeps the pool busy but holds
  // 8 bytes per input row; stream chunk-by-chunk when the budget (or a
  // missing pool) says no. Both modes insert in global row order, so
  // outputs and counters are identical.
  const long long keys_bytes =
      static_cast<long long>(rows) * static_cast<long long>(sizeof(uint64_t));
  const bool prepack = pool != nullptr && pool->NumThreads() > 1 &&
                       (budget == 0 || keys_bytes <= budget / 2);

  std::vector<std::vector<uint64_t>> chunk_keys;
  if (prepack) {
    chunk_keys.resize(static_cast<size_t>(nchunks));
    ParallelFor(nchunks, pool, [&](int i) {
      std::vector<int> scratch;
      const int n = a.chunk_rows(i);
      chunk_keys[i].resize(static_cast<size_t>(n));
      uint64_t mn = 0;
      uint64_t mx = 0;
      ops.PackKeys(chunk_keys[i].data(), a.load(i, &scratch),
                   static_cast<size_t>(arity), positions.data(), k, bits, n,
                   &mn, &mx);
    });
  }

  long collisions = 0;
  std::vector<int> scratch;
  std::vector<uint64_t> keybuf;
  std::vector<int> decoded(static_cast<size_t>(k));
  for (int i = 0; i < nchunks; ++i) {
    const int n = a.chunk_rows(i);
    const uint64_t* keys;
    if (prepack) {
      keys = chunk_keys[i].data();
    } else {
      keybuf.resize(static_cast<size_t>(n));
      uint64_t mn = 0;
      uint64_t mx = 0;
      ops.PackKeys(keybuf.data(), a.load(i, &scratch),
                   static_cast<size_t>(arity), positions.data(), k, bits, n,
                   &mn, &mx);
      keys = keybuf.data();
    }
    MorselsProcessed().Increment();
    for (int r = 0; r < n; ++r) {
      const uint64_t key = keys[r];
      bool fresh;
      if (dense) {
        uint64_t& word = bitmap[key >> 6];
        const uint64_t bit = uint64_t{1} << (key & 63);
        fresh = (word & bit) == 0;
        word |= bit;
      } else {
        size_t slot = kernels::SplitMix64(key) & mask;
        while (slot_vals[slot] != -1 && slot_keys[slot] != key) {
          ++collisions;
          slot = (slot + 1) & mask;
        }
        fresh = slot_vals[slot] == -1;
        if (fresh) {
          slot_vals[slot] = 1;
          slot_keys[slot] = key;
        }
      }
      if (!fresh) continue;
      for (int c = 0; c < k; ++c) {
        decoded[c] =
            static_cast<int>((key >> ((k - 1 - c) * bits)) & vmask);
      }
      out_data.insert(out_data.end(), decoded.begin(), decoded.end());
      ++out_rows;
    }
    if (prepack) {
      chunk_keys[i].clear();
      chunk_keys[i].shrink_to_fit();
    }
  }
  if (collisions > 0) ProbeCollisions().Add(collisions);
  BytesAllocated().Add(static_cast<long>(
      (out_data.capacity() + slot_vals.capacity()) * sizeof(int) +
      (bitmap.capacity() + slot_keys.capacity()) * sizeof(uint64_t)));
  HT_CHECK_LE(static_cast<long>(out_rows), rows)
      << "projection emitted more distinct rows than its input has";
  RelationInternal::CheckRep(out);
  return out;
}

}  // namespace

Relation EngineJoin(const Relation& a, const Relation& b, ThreadPool* pool) {
  return JoinImpl(ChunkSource(a), b, pool, /*allow_spill=*/false).TakeRel();
}

ChunkedRelation EngineJoinChunked(const ChunkedRelation& a, const Relation& b,
                                  ThreadPool* pool) {
  return JoinImpl(ChunkSource(a), b, pool, /*allow_spill=*/true);
}

void EngineSemijoinInPlace(Relation* left, const Relation& right,
                           ThreadPool* pool) {
  HT_CHECK(left != &right) << "SemijoinInPlace must not alias its argument";
  std::vector<int> pa;
  std::vector<int> pb;
  SharedPositions(left->schema(), right.schema(), &pa, &pb);
  if (!pa.empty() && left->Size() > 0 && right.Size() > 0) {
    const int bits = PlanBits(
        pa.size(),
        ScanValues(left->data().data(), left->data().size()),
        ScanValues(right.data().data(), right.data().size()));
    if (bits > 0) {
      PackedSemijoin(left, right, pa, pb, bits, pool);
      return;
    }
  }
  // Generic fallback (also the empty / no-shared-variable edge cases,
  // which it already handles with the documented counter semantics).
  RelationInternal::SemijoinGeneric(*left, right);
}

Relation EngineProject(const Relation& r, const std::vector<int>& vars,
                       ThreadPool* pool) {
  return ProjectImpl(ChunkSource(r), vars, pool);
}

Relation EngineProjectChunked(const ChunkedRelation& a,
                              const std::vector<int>& vars,
                              ThreadPool* pool) {
  return ProjectImpl(ChunkSource(a), vars, pool);
}

}  // namespace hypertree
