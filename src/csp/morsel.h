// Chunked (morsel) relation infrastructure for the larger-than-core join
// engine: the per-query memory budget, the spill-file abstraction, and
// ChunkedRelation — a relation stored as a sequence of fixed-size row
// chunks that are either resident (a plain Relation) or spilled to a
// temp file in morsel-index order.
//
// Determinism contract (docs/SOLVING.md): every spill decision is a pure
// function of the input sizes and the configured budget — never of
// runtime residency, thread count, or schedule — and chunk contents are
// identical whether they live in RAM or on disk. Answers are therefore
// bit-identical for any --threads N, spill-on and spill-off.
//
// The engine feeds the metrics registry: relation.morsels.processed,
// relation.morsels.skipped (zone-map skips), relation.spill.partitions
// and relation.spill.bytes.

#ifndef HYPERTREE_CSP_MORSEL_H_
#define HYPERTREE_CSP_MORSEL_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "csp/relation.h"
#include "util/metrics.h"

namespace hypertree {

/// Rows per morsel (one work item of the within-bag parallel loops, and
/// one chunk of a spilled ChunkedRelation). Fixed — never derived from
/// the thread count — so the morsel decomposition, the per-morsel
/// zone-map decisions and every counter total are schedule-independent.
inline constexpr int kMorselRows = 4096;

/// Per-query memory budget in bytes (0 = unlimited): the threshold above
/// which join outputs spill to disk and semijoin build tables switch to
/// grace (radix) partitioning. First use resolves HYPERTREE_MEMORY_BUDGET
/// ("268435456", "256m", "4g", ... — suffixes k/m/g) unless a tool
/// already called SetMemoryBudget (--memory-budget beats the env var,
/// like the kernel backend selection).
long long MemoryBudget();

/// Overrides the budget (bytes; 0 = unlimited). Thread-safe; intended
/// for tool startup and tests.
void SetMemoryBudget(long long bytes);

/// Parses a byte size with an optional k/m/g suffix (case-insensitive).
/// Returns false on malformed input or a negative size.
bool ParseByteSize(const std::string& s, long long* out);

/// Directory for spill files: HYPERTREE_SPILL_DIR, else TMPDIR, else
/// /tmp. The engine creates unlinked temp files there, so nothing
/// survives the process whatever the exit path.
std::string SpillDir();

// Engine counters (process-wide, see docs/BENCHMARKS.md).
metrics::Counter& MorselsProcessed();
metrics::Counter& MorselsSkipped();
metrics::Counter& SpillPartitions();
metrics::Counter& SpillBytes();

/// An unlinked temp file with positioned, thread-safe chunk IO: writers
/// reserve disjoint ranges with Allocate() and pwrite them concurrently;
/// readers pread by recorded offset. IO failures are fatal (HT_CHECK) —
/// a partial spill could silently corrupt answers.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Creates (and immediately unlinks) the temp file. Idempotent.
  void Open();
  bool IsOpen() const { return fd_ != -1; }

  /// Reserves `bytes` bytes of file range; returns its start offset.
  long long Allocate(long long bytes);

  void WriteAt(long long offset, const void* data, size_t bytes);
  void ReadAt(long long offset, void* data, size_t bytes) const;

 private:
  int fd_ = -1;
  std::atomic<long long> cursor_{0};
};

/// A relation as a sequence of row chunks: either fully resident (a
/// plain Relation, viewed as kMorselRows-sized chunks) or fully spilled
/// (per-chunk byte ranges in a shared SpillFile, read back in chunk
/// order). Whole-relation residency is decided once, from exact
/// pre-pass sizes — see the determinism contract above.
class ChunkedRelation {
 public:
  ChunkedRelation() = default;

  /// Resident form: wraps the relation, chunked into kMorselRows views.
  explicit ChunkedRelation(Relation rel) : rel_(std::move(rel)) {}

  /// Spilled form over `file` (opened by the caller); chunks are
  /// registered with SetChunk after ResizeChunks.
  ChunkedRelation(std::vector<int> schema, std::shared_ptr<SpillFile> file)
      : spilled_(true), schema_(std::move(schema)), file_(std::move(file)) {}

  bool spilled() const { return spilled_; }
  const std::vector<int>& schema() const {
    return spilled_ ? schema_ : rel_.schema();
  }
  int Arity() const { return static_cast<int>(schema().size()); }
  long TotalRows() const;
  int NumChunks() const;
  int ChunkRows(int i) const;

  /// Pointer to chunk i's row-major data (ChunkRows(i) * Arity()
  /// values). Resident chunks alias the relation buffer; spilled chunks
  /// are read into *scratch. Thread-safe for concurrent chunks.
  const int* LoadChunk(int i, std::vector<int>* scratch) const;

  /// Spilled form: pre-sizes the chunk table so parallel emitters can
  /// SetChunk disjoint slots.
  void ResizeChunks(int n) { chunks_.resize(static_cast<size_t>(n)); }
  void SetChunk(int i, long long offset, int rows) {
    chunks_[static_cast<size_t>(i)] = {offset, rows};
  }
  /// Recomputes the cached row total after SetChunk writes (spilled).
  void FinishChunks();

  /// The resident relation (resident form only).
  const Relation& rel() const {
    HT_CHECK(!spilled_);
    return rel_;
  }
  Relation TakeRel() {
    HT_CHECK(!spilled_);
    return std::move(rel_);
  }

  /// Materializes a spilled relation back into RAM (generic-fallback and
  /// final-answer paths); resident form moves out for free.
  Relation ToRelation() &&;

 private:
  bool spilled_ = false;
  Relation rel_;              // resident form
  std::vector<int> schema_;   // spilled form
  std::shared_ptr<SpillFile> file_;
  struct Chunk {
    long long offset = 0;
    int rows = 0;
  };
  std::vector<Chunk> chunks_;
  long total_rows_ = 0;  // spilled form (resident derives from rel_)
};

}  // namespace hypertree

#endif  // HYPERTREE_CSP_MORSEL_H_
