#include "csp/generators.h"

#include <cmath>
#include <string>

#include "util/check.h"
#include "util/rng.h"

namespace hypertree {

namespace {

// All-different-pair relation over two variables with `d` values.
Relation DisequalityRelation(int u, int v, int d) {
  Relation r({u, v});
  for (int a = 0; a < d; ++a) {
    for (int b = 0; b < d; ++b) {
      if (a != b) r.AddTuple({a, b});
    }
  }
  return r;
}

}  // namespace

Csp AustraliaMapColoring() {
  // 0=WA 1=NT 2=SA 3=Q 4=NSW 5=V 6=TAS
  Csp csp(7, 3);
  csp.set_name("australia");
  const std::pair<int, int> borders[] = {{0, 1}, {0, 2}, {1, 3}, {1, 2},
                                         {3, 2}, {4, 3}, {4, 5}, {4, 2},
                                         {2, 5}};
  for (auto [u, v] : borders) {
    csp.AddConstraint({u, v}, DisequalityRelation(u, v, 3));
  }
  return csp;
}

Csp GraphColoringCsp(const Graph& g, int colors) {
  Csp csp(g.NumVertices(), colors);
  csp.set_name(g.name() + "_" + std::to_string(colors) + "col");
  for (auto [u, v] : g.Edges()) {
    csp.AddConstraint({u, v}, DisequalityRelation(u, v, colors));
  }
  return csp;
}

Csp SatCsp(int num_vars, const std::vector<std::vector<int>>& clauses) {
  Csp csp(num_vars, 2);
  csp.set_name("sat");
  for (const std::vector<int>& clause : clauses) {
    HT_CHECK(!clause.empty());
    std::vector<int> scope;
    for (int lit : clause) {
      int v = std::abs(lit) - 1;
      HT_CHECK(v >= 0 && v < num_vars);
      scope.push_back(v);
    }
    Relation r(scope);
    int k = static_cast<int>(scope.size());
    for (int mask = 0; mask < (1 << k); ++mask) {
      // The combination satisfies the clause iff some literal is true.
      bool sat = false;
      for (int i = 0; i < k && !sat; ++i) {
        bool value = (mask >> i) & 1;
        sat = (clause[i] > 0) == value;
      }
      if (!sat) continue;
      std::vector<int> tuple(k);
      for (int i = 0; i < k; ++i) tuple[i] = (mask >> i) & 1;
      r.AddTuple(std::move(tuple));
    }
    csp.AddConstraint(std::move(scope), std::move(r));
  }
  return csp;
}

Csp RandomCspFromHypergraph(const Hypergraph& h, int domain_size,
                            double tightness, bool plant_solution,
                            uint64_t seed) {
  HT_CHECK(domain_size >= 1);
  HT_CHECK(tightness >= 0.0 && tightness <= 1.0);
  Rng rng(seed);
  Csp csp(h.NumVertices(), domain_size);
  csp.set_name(h.name() + "_csp");
  std::vector<int> planted(h.NumVertices());
  for (int& v : planted) v = rng.UniformInt(domain_size);
  for (int e = 0; e < h.NumEdges(); ++e) {
    std::vector<int> scope = h.EdgeVertices(e);
    int k = static_cast<int>(scope.size());
    Relation r(scope);
    // Enumerate the full cross product; keep each tuple with probability
    // `tightness` (plus the planted tuple when requested). Guard against
    // huge scopes: the generators keep arities small.
    double combos = std::pow(static_cast<double>(domain_size), k);
    HT_CHECK_MSG(combos <= 4e6, "scope too large for dense relation");
    std::vector<int> tuple(k, 0);
    std::vector<int> planted_tuple(k);
    for (int i = 0; i < k; ++i) planted_tuple[i] = planted[scope[i]];
    while (true) {
      bool is_planted = plant_solution && tuple == planted_tuple;
      if (is_planted || rng.Bernoulli(tightness)) r.AddTuple(tuple);
      int i = k - 1;
      while (i >= 0 && ++tuple[i] == domain_size) tuple[i--] = 0;
      if (i < 0) break;
    }
    csp.AddConstraint(std::move(scope), std::move(r), h.EdgeName(e));
  }
  return csp;
}

}  // namespace hypertree
