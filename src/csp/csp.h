// Constraint satisfaction problems (Definition 5) and their constraint
// hypergraphs (Definition 7).

#ifndef HYPERTREE_CSP_CSP_H_
#define HYPERTREE_CSP_CSP_H_

#include <string>
#include <vector>

#include "csp/relation.h"
#include "hypergraph/hypergraph.h"

namespace hypertree {

/// A constraint: a scope plus the relation of allowed value combinations.
struct Constraint {
  std::vector<int> scope;  // variable ids (the relation's schema)
  Relation relation;
  std::string name;
};

/// A CSP <X, D, C> with integer domains {0, ..., domain_size[x]-1}.
class Csp {
 public:
  Csp() = default;

  /// Creates a CSP with `num_variables` variables of the given uniform
  /// domain size.
  Csp(int num_variables, int domain_size)
      : domain_sizes_(num_variables, domain_size) {}

  int NumVariables() const { return static_cast<int>(domain_sizes_.size()); }
  int NumConstraints() const { return static_cast<int>(constraints_.size()); }
  int DomainSize(int var) const { return domain_sizes_[var]; }
  void SetDomainSize(int var, int size) { domain_sizes_[var] = size; }

  /// Adds a constraint; the relation's schema must equal `scope`.
  void AddConstraint(std::vector<int> scope, Relation relation,
                     std::string name = "");

  const Constraint& GetConstraint(int c) const { return constraints_[c]; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// The constraint hypergraph: one vertex per variable, one hyperedge per
  /// constraint scope. Variables in no constraint get a unary hyperedge so
  /// the hypergraph covers all variables.
  Hypergraph ConstraintHypergraph() const;

  /// True if the complete assignment satisfies every constraint.
  bool IsSolution(const std::vector<int>& assignment) const;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  std::vector<int> domain_sizes_;
  std::vector<Constraint> constraints_;
  std::string name_;
};

}  // namespace hypertree

#endif  // HYPERTREE_CSP_CSP_H_
