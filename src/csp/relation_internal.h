// Raw-buffer access seam between Relation and the morsel engine
// (morsel_engine.cc): the engine emits join/project output directly into
// the flat buffer and compacts semijoin survivors in place, which needs
// the private representation. Nothing outside src/csp/ may include this.

#ifndef HYPERTREE_CSP_RELATION_INTERNAL_H_
#define HYPERTREE_CSP_RELATION_INTERNAL_H_

#include <vector>

#include "csp/relation.h"

namespace hypertree {

struct RelationInternal {
  static std::vector<int>& Data(Relation& r) { return r.data_; }
  static const std::vector<int>& Data(const Relation& r) { return r.data_; }
  static int& Rows(Relation& r) { return r.rows_; }
  static void DropIndex(Relation& r) { r.DropIndex(); }
  static void CheckRep(const Relation& r) { r.DCheckRep(); }
  /// The pre-engine generic operator bodies (row-hash JoinKeyTable path);
  /// the engine delegates here when keys do not pack into single words.
  static Relation JoinGeneric(const Relation& a, const Relation& b) {
    return a.JoinGeneric(b);
  }
  static void SemijoinGeneric(Relation& left, const Relation& right) {
    left.SemijoinInPlaceGeneric(right);
  }
  static Relation ProjectGeneric(const Relation& r,
                                 const std::vector<int>& vars) {
    return r.ProjectGeneric(vars);
  }
};

}  // namespace hypertree

#endif  // HYPERTREE_CSP_RELATION_INTERNAL_H_
