// Yannakakis' algorithm (Acyclic Solving, Figure 2.4): semijoin reduction
// over a tree of relations, then top-down extraction of one consistent
// assignment. Runs in O(m * n log n): the polynomial-time "answer" for
// acyclic queries that all decomposition methods reduce to.
//
// Both passes are in-place semijoins on the flat relation kernel, and both
// can run the independent subtrees in parallel over a ThreadPool: a node's
// bottom-up filter only reads its (already reduced) children, a node's
// top-down filter only reads its (already reduced) parent, so the result
// is bit-identical for any thread count (see src/csp/tree_schedule.h).

#ifndef HYPERTREE_CSP_YANNAKAKIS_H_
#define HYPERTREE_CSP_YANNAKAKIS_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "csp/csp.h"
#include "csp/relation.h"
#include "hypergraph/acyclicity.h"

namespace hypertree {

class ThreadPool;

/// A tree of relations (e.g. a join tree with materialized constraint
/// relations, or decomposition bags with their subproblem solutions).
struct RelationTree {
  std::vector<Relation> relations;  // one per node
  std::vector<int> parent;          // -1 at the root
  int root = 0;
};

/// Full-reduction Yannakakis: bottom-up semijoins (emptiness detected),
/// top-down semijoins, then greedy top-down extraction. Returns an
/// assignment var -> value for every variable appearing in some schema, or
/// std::nullopt if the tree has no globally consistent tuple combination.
/// With a pool, independent subtrees are reduced in parallel; the result
/// is identical to the sequential one.
std::optional<std::unordered_map<int, int>> AcyclicSolve(
    RelationTree tree, ThreadPool* pool = nullptr);

/// Convenience for acyclic CSPs: builds the join tree via GYO, attaches
/// the constraint relations, and runs AcyclicSolve. The CSP's constraint
/// hypergraph must be alpha-acyclic. Variables outside all constraints
/// are assigned 0. Returns a full assignment or std::nullopt.
std::optional<std::vector<int>> SolveAcyclicCsp(const Csp& csp,
                                                ThreadPool* pool = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_YANNAKAKIS_H_
