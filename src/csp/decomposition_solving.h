// Solving CSPs from tree decompositions and from complete generalized
// hypertree decompositions (thesis §2.4): materialize one subproblem
// relation per decomposition node, then run Yannakakis on the resulting
// join tree. Runtime O(n d^{w+1}) for a width-w tree decomposition and
// |I|^{k+1} log |I| for a width-k GHD.
//
// All entry points take an optional ThreadPool: the per-node bag joins are
// independent and run in parallel, and the Yannakakis passes parallelize
// across subtrees (deterministic results for any thread count).

#ifndef HYPERTREE_CSP_DECOMPOSITION_SOLVING_H_
#define HYPERTREE_CSP_DECOMPOSITION_SOLVING_H_

#include <optional>
#include <vector>

#include "csp/csp.h"
#include "csp/yannakakis.h"
#include "ghd/ghd.h"
#include "td/tree_decomposition.h"

namespace hypertree {

class ThreadPool;

/// Work counters for the decomposition-based solvers.
struct DecompositionSolveStats {
  long bag_tuples = 0;      // tuples materialized across all bags
  int max_bag_tuples = 0;   // largest single bag relation
};

/// Join-tree-clustering solve: every decomposition bag becomes the
/// relation of all bag assignments consistent with the constraints whose
/// scope lies inside the bag. `td` must be a valid tree decomposition of
/// the CSP's constraint hypergraph.
std::optional<std::vector<int>> SolveViaTreeDecomposition(
    const Csp& csp, const TreeDecomposition& td,
    DecompositionSolveStats* stats = nullptr, ThreadPool* pool = nullptr);

/// GHD solve: the decomposition is completed (Lemma 2), every node's
/// relation is the join of its lambda constraint relations projected onto
/// chi, and Yannakakis finishes the job. `ghd` must be valid for the
/// CSP's constraint hypergraph.
std::optional<std::vector<int>> SolveViaGhd(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd,
    DecompositionSolveStats* stats = nullptr, ThreadPool* pool = nullptr);

/// Materializes the per-bag subproblem relations of `td` as a relation
/// tree (the join tree of the solution-equivalent acyclic CSP). Shared by
/// the solving and counting front ends. With a pool the bags are solved
/// in parallel.
RelationTree BuildRelationTreeFromTd(const Csp& csp,
                                     const TreeDecomposition& td,
                                     ThreadPool* pool = nullptr);

/// Materializes the per-node relations of a (completed copy of) `ghd`,
/// in parallel when a pool is given.
RelationTree BuildRelationTreeFromGhd(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd,
    ThreadPool* pool = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_DECOMPOSITION_SOLVING_H_
