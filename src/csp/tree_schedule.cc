#include "csp/tree_schedule.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "util/check.h"
#include "util/thread_pool.h"

namespace hypertree {

namespace {

// BFS order from the roots (nodes with parent == -1): parents before
// children. Shared by both sequential fallbacks.
std::vector<int> TopDownOrder(const std::vector<int>& parent,
                              const std::vector<std::vector<int>>& children) {
  std::vector<int> order;
  order.reserve(parent.size());
  for (size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] == -1) order.push_back(static_cast<int>(i));
  }
  for (size_t i = 0; i < order.size(); ++i) {
    for (int c : children[order[i]]) order.push_back(c);
  }
  HT_CHECK_MSG(order.size() == parent.size(),
               "tree_schedule: parent/children describe no rooted forest");
  return order;
}

bool Sequential(const std::vector<int>& parent, ThreadPool* pool) {
  return pool == nullptr || pool->NumThreads() <= 1 || parent.size() <= 1;
}

// Debug-only precondition: parent/children must describe the same rooted
// forest — parents in range, no self-loops, every parent/child edge
// mirrored, child counts adding up. The traversals' own countdown logic
// (and the post-condition visited == m) relies on all of this; a
// malformed forest would otherwise hang the pool or skip nodes.
void DCheckForest(const std::vector<int>& parent,
                  const std::vector<std::vector<int>>& children) {
  if (!ht_internal::kDCheckEnabled) return;
  const int m = static_cast<int>(parent.size());
  HT_DCHECK_EQ(children.size(), parent.size())
      << "tree_schedule: parent/children size mismatch";
  size_t edges = 0;
  for (int i = 0; i < m; ++i) {
    const int p = parent[i];
    HT_DCHECK_GE(p, -1) << "tree_schedule: parent id out of range";
    HT_DCHECK_LT(p, m) << "tree_schedule: parent id out of range";
    HT_DCHECK_NE(p, i) << "tree_schedule: node is its own parent";
    for (int c : children[i]) {
      HT_DCHECK_GE(c, 0) << "tree_schedule: child id out of range";
      HT_DCHECK_LT(c, m) << "tree_schedule: child id out of range";
      HT_DCHECK_EQ(parent[c], i)
          << "tree_schedule: child's parent back-pointer disagrees";
    }
    edges += children[i].size();
    if (p >= 0) ++edges;  // counted from both endpoints below
  }
  // Every non-root contributes its parent edge exactly once from each
  // side, so the totals must agree (roots contribute nothing).
  size_t non_roots = 0;
  for (int i = 0; i < m; ++i) {
    if (parent[i] >= 0) ++non_roots;
  }
  HT_DCHECK_EQ(edges, non_roots * 2)
      << "tree_schedule: children lists disagree with parent pointers";
}

}  // namespace

void RunTreeBottomUp(const std::vector<int>& parent,
                     const std::vector<std::vector<int>>& children,
                     ThreadPool* pool,
                     const std::function<void(int)>& visit) {
  int m = static_cast<int>(parent.size());
  if (m == 0) return;
  DCheckForest(parent, children);
  if (Sequential(parent, pool)) {
    std::vector<int> order = TopDownOrder(parent, children);
    for (size_t i = order.size(); i-- > 0;) visit(order[i]);
    return;
  }
  // One countdown per node; a node is ready once all children finished.
  // Tasks submit their parent when they complete its last dependency, so
  // the pool's Wait() (which tracks nested submissions) covers the run.
  std::vector<std::atomic<int>> pending(m);
  for (int i = 0; i < m; ++i) {
    pending[i].store(static_cast<int>(children[i].size()),
                     std::memory_order_relaxed);
  }
  std::atomic<int> visited{0};
  std::function<void(int)> run = [&](int node) {
    visit(node);
    visited.fetch_add(1, std::memory_order_relaxed);
    int p = parent[node];
    if (p >= 0 &&
        pending[p].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pool->Submit([&run, p] { run(p); });
    }
  };
  for (int i = 0; i < m; ++i) {
    if (children[i].empty()) pool->Submit([&run, i] { run(i); });
  }
  pool->Wait();
  // Relaxed: Wait() orders every worker's fetch_add before this load.
  HT_CHECK_MSG(visited.load(std::memory_order_relaxed) == m,
               "tree_schedule: parent/children describe no rooted forest");
}

void RunTreeTopDown(const std::vector<int>& parent,
                    const std::vector<std::vector<int>>& children,
                    ThreadPool* pool,
                    const std::function<void(int)>& visit) {
  int m = static_cast<int>(parent.size());
  if (m == 0) return;
  DCheckForest(parent, children);
  if (Sequential(parent, pool)) {
    for (int node : TopDownOrder(parent, children)) visit(node);
    return;
  }
  std::atomic<int> visited{0};
  std::function<void(int)> run = [&](int node) {
    visit(node);
    visited.fetch_add(1, std::memory_order_relaxed);
    for (int c : children[node]) pool->Submit([&run, c] { run(c); });
  };
  for (int i = 0; i < m; ++i) {
    if (parent[i] == -1) pool->Submit([&run, i] { run(i); });
  }
  pool->Wait();
  // Relaxed: Wait() orders every worker's fetch_add before this load.
  HT_CHECK_MSG(visited.load(std::memory_order_relaxed) == m,
               "tree_schedule: parent/children describe no rooted forest");
}

void RunForAll(int count, ThreadPool* pool,
               const std::function<void(int)>& visit) {
  if (count <= 0) return;
  if (pool == nullptr || pool->NumThreads() <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) visit(i);
    return;
  }
  for (int i = 0; i < count; ++i) {
    pool->Submit([&visit, i] { visit(i); });
  }
  pool->Wait();
}

void ParallelFor(int count, ThreadPool* pool,
                 const std::function<void(int)>& visit) {
  if (count <= 0) return;
  if (pool == nullptr || pool->NumThreads() <= 1 || count == 1) {
    for (int i = 0; i < count; ++i) visit(i);
    return;
  }
  // Shared by the caller and the helper tasks; shared_ptr ownership so a
  // helper that wakes after the caller returned still finds live state
  // (it sees the exhausted cursor and exits without calling visit).
  struct State {
    std::function<void(int)> fn;
    int count = 0;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<State>();
  state->fn = visit;
  state->count = count;
  auto worker = [](const std::shared_ptr<State>& s) {
    for (;;) {
      const int i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->count) return;
      s->fn(i);
      // acq_rel: the caller's predicate load must observe every fn(i)'s
      // writes once done reaches count.
      if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->count) {
        std::lock_guard<std::mutex> lock(s->mu);
        s->cv.notify_all();
      }
    }
  };
  const int helpers = std::min(pool->NumThreads(), count - 1);
  for (int h = 0; h < helpers; ++h) {
    pool->Submit([state, worker] { worker(state); });
  }
  // The caller claims indices too: progress never depends on a pool
  // worker being free (the loop may itself be running inside one).
  worker(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&state] {
    return state->done.load(std::memory_order_acquire) == state->count;
  });
}

}  // namespace hypertree
