#include "csp/decomposition_solving.h"

#include <algorithm>

#include "csp/morsel_engine.h"
#include "csp/tree_schedule.h"
#include "csp/yannakakis.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace hypertree {

namespace {

// Enumerates all assignments of `vars` consistent with the constraints
// whose scope lies inside `vars` (simple backtracking over the bag).
// Constraint membership checks hit the per-relation hash index (O(1)
// amortized), not a tuple scan.
Relation SolveBag(const Csp& csp, const std::vector<int>& vars) {
  // Constraints fully inside the bag, watched by the last bag variable of
  // their scope (by bag position).
  std::vector<int> pos_of_var(csp.NumVariables(), -1);
  for (size_t i = 0; i < vars.size(); ++i) pos_of_var[vars[i]] = static_cast<int>(i);
  std::vector<std::vector<int>> watch(vars.size());
  for (int c = 0; c < csp.NumConstraints(); ++c) {
    const Constraint& con = csp.GetConstraint(c);
    int last = -1;
    bool inside = true;
    for (int v : con.scope) {
      if (pos_of_var[v] == -1) {
        inside = false;
        break;
      }
      last = std::max(last, pos_of_var[v]);
    }
    if (inside && last >= 0) watch[last].push_back(c);
  }
  Relation out(vars);
  const int w = static_cast<int>(vars.size());
  // Bag relations run to millions of rows; growing the flat buffer by
  // doubling would copy (and page-fault) gigabytes. When every domain
  // fits in 64/w bits (small CSP domains — the dominant case), one
  // enumeration records each solution as a packed word (cheap to grow)
  // and then unpacks into an exactly-reserved buffer; otherwise a first
  // counting pass of the same odometer sizes the buffer.
  int bits = 1;
  for (int v : vars) {
    const int top = csp.DomainSize(v) - 1;
    while (top > 0 && (top >> bits) != 0) ++bits;
  }
  const bool packable = w > 0 && w * bits <= 64;
  std::vector<uint64_t> packed;     // packed solutions (packable mode)
  std::vector<uint64_t> prefix(w + 1, 0);  // packed assignment per level
  std::vector<int> assignment(w, 0);
  std::vector<int> scratch;  // reused constraint-tuple buffer
  for (int pass = packable ? 1 : 0; pass < 2; ++pass) {
    long count = 0;
    int level = 0;
    std::vector<int> value(w, -1);
    while (level >= 0) {
      if (level == w) {
        if (packable) {
          packed.push_back(prefix[w]);
        } else if (pass == 0) {
          ++count;
        } else {
          out.AddTuple(assignment);
        }
        --level;
        continue;
      }
      ++value[level];
      if (value[level] >= csp.DomainSize(vars[level])) {
        value[level] = -1;
        --level;
        continue;
      }
      assignment[level] = value[level];
      if (packable) {
        prefix[level + 1] =
            (prefix[level] << bits) | static_cast<uint64_t>(value[level]);
      }
      bool ok = true;
      for (int c : watch[level]) {
        const Constraint& con = csp.GetConstraint(c);
        scratch.clear();
        for (int v : con.scope) scratch.push_back(assignment[pos_of_var[v]]);
        if (!con.relation.ContainsRow(scratch.data())) {
          ok = false;
          break;
        }
      }
      if (ok) ++level;
    }
    if (!packable && pass == 0) out.Reserve(static_cast<int>(count));
  }
  if (packable) {
    out.Reserve(static_cast<int>(packed.size()));
    const uint64_t mask = (uint64_t{1} << bits) - 1;
    for (uint64_t key : packed) {
      for (int i = w - 1; i >= 0; --i) {
        assignment[i] = static_cast<int>(key & mask);
        key >>= bits;
      }
      out.AddRow(assignment.data());
    }
  }
  return out;
}

// Converts a decomposition tree (undirected edges) into parent pointers.
void RootTree(int num_nodes, const std::vector<std::pair<int, int>>& edges,
              std::vector<int>* parent, int* root) {
  std::vector<std::vector<int>> adj(num_nodes);
  for (auto [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  parent->assign(num_nodes, -1);
  *root = 0;
  std::vector<bool> seen(num_nodes, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  while (!stack.empty()) {
    int p = stack.back();
    stack.pop_back();
    for (int q : adj[p]) {
      if (!seen[q]) {
        seen[q] = true;
        (*parent)[q] = p;
        stack.push_back(q);
      }
    }
  }
}

std::optional<std::vector<int>> FinishSolve(const Csp& csp, RelationTree tree,
                                            DecompositionSolveStats* stats,
                                            ThreadPool* pool) {
  if (stats != nullptr) {
    for (const Relation& r : tree.relations) {
      stats->bag_tuples += r.Size();
      stats->max_bag_tuples = std::max(stats->max_bag_tuples, r.Size());
    }
  }
  auto assignment = AcyclicSolve(std::move(tree), pool);
  if (!assignment.has_value()) return std::nullopt;
  std::vector<int> out(csp.NumVariables(), 0);
  for (auto [var, val] : *assignment) out[var] = val;
  HT_CHECK_MSG(csp.IsSolution(out),
               "decomposition solve produced a non-solution");
  return out;
}

}  // namespace

RelationTree BuildRelationTreeFromTd(const Csp& csp,
                                     const TreeDecomposition& td,
                                     ThreadPool* pool) {
  HT_CHECK(td.NumGraphVertices() == csp.NumVariables());
  RelationTree tree;
  tree.relations.resize(td.NumNodes());
  // The bags are independent subproblems: solve them in parallel. Each
  // task writes only its own slot, so results are schedule-independent.
  RunForAll(td.NumNodes(), pool, [&tree, &csp, &td](int p) {
    tree.relations[p] = SolveBag(csp, td.Bag(p).ToVector());
  });
  RootTree(td.NumNodes(), td.TreeEdges(), &tree.parent, &tree.root);
  return tree;
}

RelationTree BuildRelationTreeFromGhd(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd,
    ThreadPool* pool) {
  HT_CHECK(ghd.td().NumGraphVertices() == csp.NumVariables());
  // Work on a completed copy so every constraint participates in some
  // node's join (Lemma 2 keeps the width unchanged).
  GeneralizedHypertreeDecomposition complete = ghd;
  complete.MakeComplete(csp.ConstraintHypergraph());

  // Relations per hyperedge of the constraint hypergraph: the constraints
  // first, then domain enumerations for constraint-free variables.
  Hypergraph h = csp.ConstraintHypergraph();
  auto edge_relation = [&csp, &h](int e) {
    if (e < csp.NumConstraints()) return csp.GetConstraint(e).relation;
    std::vector<int> vars = h.EdgeVertices(e);
    Relation r(vars);
    for (int val = 0; val < csp.DomainSize(vars[0]); ++val) r.AddTuple({val});
    return r;
  };

  RelationTree tree;
  int m = complete.NumNodes();
  tree.relations.resize(m);
  // Per-node bag joins are independent; fan them out over the pool. The
  // join chain runs chunked: intermediates larger than the memory budget
  // spill to disk and the final projection streams them back one morsel
  // at a time, so peak residency is bounded by the budget plus one bag.
  RunForAll(m, pool, [&complete, &edge_relation, &tree, pool](int p) {
    const std::vector<int>& lambda = complete.Lambda(p);
    HT_CHECK_MSG(!lambda.empty() || complete.td().Bag(p).None(),
                 "GHD node with vertices but empty lambda");
    ChunkedRelation acc;
    bool first = true;
    for (int e : lambda) {
      Relation r = edge_relation(e);
      acc = first ? ChunkedRelation(std::move(r))
                  : EngineJoinChunked(acc, r, pool);
      first = false;
    }
    std::vector<int> chi = complete.td().Bag(p).ToVector();
    if (first) {
      // Empty lambda is only legal for an empty bag; its relation is the
      // identity (one empty tuple) so semijoins pass through.
      Relation identity(chi);
      identity.AddTuple({});
      tree.relations[p] = std::move(identity);
    } else {
      tree.relations[p] = EngineProjectChunked(acc, chi, pool);
    }
  });
  RootTree(m, complete.td().TreeEdges(), &tree.parent, &tree.root);
  return tree;
}

std::optional<std::vector<int>> SolveViaTreeDecomposition(
    const Csp& csp, const TreeDecomposition& td,
    DecompositionSolveStats* stats, ThreadPool* pool) {
  return FinishSolve(csp, BuildRelationTreeFromTd(csp, td, pool), stats, pool);
}

std::optional<std::vector<int>> SolveViaGhd(
    const Csp& csp, const GeneralizedHypertreeDecomposition& ghd,
    DecompositionSolveStats* stats, ThreadPool* pool) {
  return FinishSolve(csp, BuildRelationTreeFromGhd(csp, ghd, pool), stats,
                     pool);
}

}  // namespace hypertree
