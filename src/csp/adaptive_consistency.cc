#include "csp/adaptive_consistency.h"

#include <algorithm>

#include "ordering/heuristics.h"
#include "util/check.h"
#include "util/rng.h"

namespace hypertree {

std::optional<std::vector<int>> AdaptiveConsistencySolve(
    const Csp& csp, const EliminationOrdering& sigma,
    AdaptiveConsistencyStats* stats) {
  int n = csp.NumVariables();
  HT_CHECK(IsValidOrdering(sigma, n));
  std::vector<int> pos = OrderingPositions(sigma);

  // Bucket of a relation: its variable eliminated first (max position).
  auto bucket_of = [&pos](const Relation& r) {
    int best = -1;
    for (int v : r.schema()) {
      if (best == -1 || pos[v] > pos[best]) best = v;
    }
    return best;
  };

  std::vector<std::vector<Relation>> buckets(n);
  for (const Constraint& c : csp.constraints()) {
    buckets[bucket_of(c.relation)].push_back(c.relation);
  }

  // Joined bucket relations, kept for back-substitution.
  std::vector<Relation> joined(n);
  std::vector<bool> constrained(n, false);
  for (int i = n - 1; i >= 0; --i) {
    int v = sigma[i];
    if (buckets[v].empty()) continue;
    Relation j = std::move(buckets[v][0]);
    for (size_t k = 1; k < buckets[v].size(); ++k) {
      j = j.Join(buckets[v][k]);
    }
    if (stats != nullptr) {
      stats->tuples_materialized += j.Size();
      stats->max_relation = std::max(stats->max_relation, j.Size());
    }
    if (j.Empty()) return std::nullopt;  // wipeout: unsatisfiable
    constrained[v] = true;
    // Project v out and pass the result down.
    std::vector<int> rest;
    for (int u : j.schema()) {
      if (u != v) rest.push_back(u);
    }
    if (!rest.empty()) {
      Relation p = j.Project(rest);
      buckets[bucket_of(p)].push_back(std::move(p));
    }
    joined[v] = std::move(j);
  }

  // Back-substitution: assign variables in reverse elimination order
  // (front of sigma first); every other variable of joined[v] is already
  // assigned, so a consistent tuple always exists.
  std::vector<int> assignment(n, -1);
  for (int i = 0; i < n; ++i) {
    int v = sigma[i];
    if (!constrained[v]) {
      HT_CHECK(csp.DomainSize(v) > 0);
      assignment[v] = 0;
      continue;
    }
    const Relation& j = joined[v];
    const std::vector<int>& schema = j.schema();
    bool found = false;
    for (int t = 0; t < j.Size() && !found; ++t) {
      const int* row = j.Row(t);
      bool ok = true;
      for (size_t k = 0; k < schema.size() && ok; ++k) {
        if (schema[k] != v && assignment[schema[k]] != row[k]) ok = false;
      }
      if (ok) {
        // Assign only v; every other schema variable is assigned at its
        // own (earlier) turn, keeping the directional-consistency
        // induction clean.
        for (size_t k = 0; k < schema.size(); ++k) {
          if (schema[k] == v) assignment[v] = row[k];
        }
        found = true;
      }
    }
    HT_CHECK_MSG(found, "adaptive consistency back-substitution failed");
  }
  HT_CHECK(csp.IsSolution(assignment));
  return assignment;
}

std::optional<std::vector<int>> AdaptiveConsistencySolve(
    const Csp& csp, AdaptiveConsistencyStats* stats) {
  Rng rng(1);
  Graph primal = csp.ConstraintHypergraph().PrimalGraph();
  return AdaptiveConsistencySolve(csp, MinFillOrdering(primal, &rng), stats);
}

}  // namespace hypertree
