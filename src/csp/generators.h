// CSP instance generators: the motivating workloads of the paper's
// introduction (map coloring, SAT) plus parameterized random CSPs used by
// the benchmarks.

#ifndef HYPERTREE_CSP_GENERATORS_H_
#define HYPERTREE_CSP_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "csp/csp.h"
#include "hypergraph/hypergraph.h"

namespace hypertree {

/// The 3-coloring of Australia (Example 1): 7 variables {WA, NT, SA, Q,
/// NSW, V, TAS}, 9 binary disequality constraints, domain {r, g, b}.
Csp AustraliaMapColoring();

/// Graph k-coloring as a CSP (one disequality constraint per edge).
Csp GraphColoringCsp(const Graph& g, int colors);

/// CNF SAT as a CSP (Example 2): one constraint per clause holding every
/// satisfying combination. Literals use DIMACS convention: +v / -v with
/// v in 1..num_vars.
Csp SatCsp(int num_vars, const std::vector<std::vector<int>>& clauses);

/// Random CSP whose constraint hypergraph is exactly `h`: every hyperedge
/// gets a random relation of the given `tightness` (fraction of allowed
/// tuples). With `plant_solution`, a random global assignment is made
/// satisfying (so decomposition solvers always find it).
Csp RandomCspFromHypergraph(const Hypergraph& h, int domain_size,
                            double tightness, bool plant_solution,
                            uint64_t seed);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_GENERATORS_H_
