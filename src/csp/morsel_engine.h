// The morsel-driven relational engine behind Relation's join / semijoin /
// project operators and the solver layers' pool-aware entry points.
//
// Execution model: the probe side of every operator is cut into fixed
// kMorselRows-row morsels (chunks); each morsel packs its key columns
// into single words through the kernel dispatch table (kernels::Ops
// PackKeys), carries min/max packed-key zone-map metadata, and is
// processed as one work item on the caller's ThreadPool (ParallelFor —
// nestable, so within-bag parallelism composes with the across-bag tree
// schedules). Output concatenation is morsel-index-ordered, so results
// are bit-identical for any thread count.
//
// Key-table modes, chosen per operator from the data:
//   dense   packed-key span small: direct-indexed arrays (bitmap /
//           head+count), no hashing at all — the dominant CSP-bag shape.
//   hash    open-addressed table over distinct packed keys, probed via
//           kernels::Ops ProbeKeys (SIMD splitmix64).
//   generic the pre-engine row-hash path (relation.cc), for keys that
//           do not pack (negative values, > 64 bits total).
//
// Larger-than-core: when the per-query MemoryBudget() is exceeded, join
// outputs spill to a temp file as ChunkedRelation chunks, and semijoin
// build sides grace-partition (radix on the packed-key hash) to disk,
// each partition processed independently. Spill decisions are pure
// functions of exact pre-pass sizes, so answers stay bit-identical
// spill-on and spill-off (docs/SOLVING.md).

#ifndef HYPERTREE_CSP_MORSEL_ENGINE_H_
#define HYPERTREE_CSP_MORSEL_ENGINE_H_

#include <vector>

#include "csp/morsel.h"
#include "csp/relation.h"

namespace hypertree {

class ThreadPool;

/// Natural join (probe side a, build side b); same contract as
/// Relation::Join plus morsel parallelism over `pool` (nullptr: the
/// calling thread processes every morsel). Output is always resident.
Relation EngineJoin(const Relation& a, const Relation& b, ThreadPool* pool);

/// In-place semijoin; same contract as Relation::SemijoinInPlace plus
/// morsel parallelism and the grace-partitioned spill path when the
/// build table exceeds MemoryBudget().
void EngineSemijoinInPlace(Relation* left, const Relation& right,
                           ThreadPool* pool);

/// Projection with dedup; same contract as Relation::Project plus
/// morsel-parallel key packing.
Relation EngineProject(const Relation& r, const std::vector<int>& vars,
                       ThreadPool* pool);

/// Join with a chunked (possibly spilled) probe side: the larger-than-
/// core join-chain primitive. The output spills when its exact
/// pre-pass size exceeds MemoryBudget(), otherwise it is resident.
ChunkedRelation EngineJoinChunked(const ChunkedRelation& a, const Relation& b,
                                  ThreadPool* pool);

/// Projection over a chunked relation, streaming one chunk at a time
/// (peak memory is one chunk plus the dedup table, not the full input).
/// The output (a decomposition bag) is always resident.
Relation EngineProjectChunked(const ChunkedRelation& a,
                              const std::vector<int>& vars, ThreadPool* pool);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_MORSEL_ENGINE_H_
