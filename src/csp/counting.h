// Counting all answers (complete consistent assignments) through
// decompositions: the weighted variant of Yannakakis' algorithm. Counting
// is output-independent — unlike enumeration it stays polynomial for
// bounded width even when there are exponentially many solutions.
//
// The weight aggregation hashes join keys in place on the flat relation
// kernel, and the bottom-up pass parallelizes across independent subtrees
// when given a ThreadPool (deterministic counts for any thread count).

#ifndef HYPERTREE_CSP_COUNTING_H_
#define HYPERTREE_CSP_COUNTING_H_

#include "csp/csp.h"
#include "csp/yannakakis.h"
#include "ghd/ghd.h"
#include "td/tree_decomposition.h"

namespace hypertree {

class ThreadPool;

/// Number of globally consistent tuple combinations of a relation tree
/// with the running-intersection property (= the size of the full join
/// when every node relation is duplicate-free).
long long CountRelationTree(const RelationTree& tree,
                            ThreadPool* pool = nullptr);

/// Number of solutions of `csp`, counted over a valid tree decomposition
/// of its constraint hypergraph.
long long CountViaTreeDecomposition(const Csp& csp,
                                    const TreeDecomposition& td,
                                    ThreadPool* pool = nullptr);

/// Number of solutions of `csp`, counted over a (completed) GHD of its
/// constraint hypergraph.
long long CountViaGhd(const Csp& csp,
                      const GeneralizedHypertreeDecomposition& ghd,
                      ThreadPool* pool = nullptr);

/// Number of solutions of an alpha-acyclic CSP via its join tree.
long long CountAcyclicCsp(const Csp& csp, ThreadPool* pool = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_COUNTING_H_
