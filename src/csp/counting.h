// Counting all answers (complete consistent assignments) through
// decompositions: the weighted variant of Yannakakis' algorithm. Counting
// is output-independent — unlike enumeration it stays polynomial for
// bounded width even when there are exponentially many solutions.

#ifndef HYPERTREE_CSP_COUNTING_H_
#define HYPERTREE_CSP_COUNTING_H_

#include "csp/csp.h"
#include "csp/yannakakis.h"
#include "ghd/ghd.h"
#include "td/tree_decomposition.h"

namespace hypertree {

/// Number of globally consistent tuple combinations of a relation tree
/// with the running-intersection property (= the size of the full join
/// when every node relation is duplicate-free).
long long CountRelationTree(const RelationTree& tree);

/// Number of solutions of `csp`, counted over a valid tree decomposition
/// of its constraint hypergraph.
long long CountViaTreeDecomposition(const Csp& csp,
                                    const TreeDecomposition& td);

/// Number of solutions of `csp`, counted over a (completed) GHD of its
/// constraint hypergraph.
long long CountViaGhd(const Csp& csp,
                      const GeneralizedHypertreeDecomposition& ghd);

/// Number of solutions of an alpha-acyclic CSP via its join tree.
long long CountAcyclicCsp(const Csp& csp);

}  // namespace hypertree

#endif  // HYPERTREE_CSP_COUNTING_H_
