#include "csp/backtracking.h"

#include <algorithm>
#include <limits>

namespace hypertree {

namespace {

class Backtracker {
 public:
  Backtracker(const Csp& csp, long max_nodes)
      : csp_(csp), max_nodes_(max_nodes), n_(csp.NumVariables()) {
    assignment_.assign(n_, -1);
    // Constraints indexed by the variable assigned last in static order
    // (variables are assigned 0, 1, 2, ...), so each check fires exactly
    // once, as soon as its scope is complete.
    watch_.resize(n_);
    for (int c = 0; c < csp_.NumConstraints(); ++c) {
      int last = 0;
      for (int v : csp_.GetConstraint(c).scope) last = std::max(last, v);
      watch_[last].push_back(c);
    }
  }

  // Returns the number of solutions found (stops at `limit` solutions).
  long Search(int var, long limit, std::vector<int>* first_solution) {
    if (aborted_) return 0;
    if (var == n_) {
      if (first_solution != nullptr && solutions_ == 0) {
        *first_solution = assignment_;
      }
      ++solutions_;
      return 1;
    }
    long found = 0;
    for (int val = 0; val < csp_.DomainSize(var); ++val) {
      ++nodes_;
      if (max_nodes_ > 0 && nodes_ > max_nodes_) {
        aborted_ = true;
        return found;
      }
      assignment_[var] = val;
      if (Consistent(var)) {
        found += Search(var + 1, limit, first_solution);
        if (solutions_ >= limit || aborted_) break;
      }
    }
    assignment_[var] = -1;
    return found;
  }

  bool Consistent(int var) const {
    for (int c : watch_[var]) {
      const Constraint& con = csp_.GetConstraint(c);
      scratch_.clear();
      for (int v : con.scope) scratch_.push_back(assignment_[v]);
      if (!con.relation.ContainsRow(scratch_.data())) return false;
    }
    return true;
  }

  long nodes() const { return nodes_; }
  bool aborted() const { return aborted_; }

 private:
  const Csp& csp_;
  long max_nodes_;
  int n_;
  std::vector<int> assignment_;
  mutable std::vector<int> scratch_;  // reused constraint-tuple buffer
  std::vector<std::vector<int>> watch_;
  long nodes_ = 0;
  long solutions_ = 0;
  bool aborted_ = false;
};

}  // namespace

std::optional<std::vector<int>> BacktrackingSolve(const Csp& csp,
                                                  long max_nodes,
                                                  BacktrackStats* stats) {
  Backtracker bt(csp, max_nodes);
  std::vector<int> solution;
  long found = bt.Search(0, /*limit=*/1, &solution);
  if (stats != nullptr) {
    stats->nodes = bt.nodes();
    stats->aborted = bt.aborted();
  }
  if (found > 0) return solution;
  return std::nullopt;
}

long BacktrackingCountSolutions(const Csp& csp, long max_nodes,
                                BacktrackStats* stats) {
  Backtracker bt(csp, max_nodes);
  long found = bt.Search(0, /*limit=*/std::numeric_limits<long>::max(),
                         nullptr);
  if (stats != nullptr) {
    stats->nodes = bt.nodes();
    stats->aborted = bt.aborted();
  }
  return found;
}

}  // namespace hypertree
