#include "csp/counting.h"

#include <algorithm>
#include <vector>

#include "csp/decomposition_solving.h"
#include "csp/morsel.h"
#include "csp/tree_schedule.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace hypertree {

namespace {

size_t NextPow2AtLeast(size_t n) {
  size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

// Open-addressing aggregation of child weights by join key, hashed in
// place from the child's rows (no key materialization). Slots store a
// representative child row id; sums_ accumulates the group weight.
class KeyWeightTable {
 public:
  KeyWeightTable(const Relation& rel, const std::vector<int>& pos)
      : rel_(rel), pos_(pos) {
    size_t cap = NextPow2AtLeast(static_cast<size_t>(rel.Size()) * 2);
    mask_ = cap - 1;
    slots_.assign(cap, -1);
    sums_.assign(cap, 0);
  }

  void Add(int row, long long weight) {
    size_t slot = Find(rel_.Row(row), pos_);
    if (slots_[slot] == -1) slots_[slot] = row;
    sums_[slot] += weight;
  }

  // Aggregated weight of the key read from `row` at `probe_pos` (another
  // relation's positions for the same variables), or 0.
  long long Lookup(const int* row, const std::vector<int>& probe_pos) const {
    size_t slot = Find(row, probe_pos);
    return slots_[slot] == -1 ? 0 : sums_[slot];
  }

 private:
  size_t Find(const int* row, const std::vector<int>& probe_pos) const {
    const int k = static_cast<int>(pos_.size());
    size_t slot = HashRowKey(row, probe_pos.data(), k) & mask_;
    while (slots_[slot] != -1) {
      const int* rep = rel_.Row(slots_[slot]);
      bool equal = true;
      for (int i = 0; i < k && equal; ++i) {
        equal = row[probe_pos[i]] == rep[pos_[i]];
      }
      if (equal) break;
      slot = (slot + 1) & mask_;
    }
    return slot;
  }

  const Relation& rel_;
  const std::vector<int>& pos_;
  size_t mask_ = 0;
  std::vector<int32_t> slots_;
  std::vector<long long> sums_;
};

}  // namespace

long long CountRelationTree(const RelationTree& tree, ThreadPool* pool) {
  int m = static_cast<int>(tree.relations.size());
  if (m == 0) return 1;  // the empty join has exactly one (empty) answer
  std::vector<std::vector<int>> children(m);
  for (int p = 0; p < m; ++p) {
    if (tree.parent[p] != -1) children[tree.parent[p]].push_back(p);
  }

  // weight[p][t] = number of consistent completions of tuple t within the
  // subtree of p. Children are aggregated before their parent runs, so
  // independent subtrees can be processed in parallel.
  std::vector<std::vector<long long>> weight(m);
  RunTreeBottomUp(tree.parent, children, pool,
                  [&tree, &children, &weight, pool](int p) {
    const Relation& rel = tree.relations[p];
    weight[p].assign(rel.Size(), 1);
    for (int c : children[p]) {
      const Relation& crel = tree.relations[c];
      // Aggregate child weights by the shared-variable key.
      std::vector<int> pp, pc;
      for (int pi = 0; pi < rel.Arity(); ++pi) {
        int ci = crel.IndexOf(rel.schema()[pi]);
        if (ci >= 0) {
          pp.push_back(pi);
          pc.push_back(ci);
        }
      }
      KeyWeightTable agg(crel, pc);
      for (int t = 0; t < crel.Size(); ++t) agg.Add(t, weight[c][t]);
      // The per-row multiplies are independent and the table is only
      // read, so the parent's rows fan out by morsel; each index is
      // written exactly once, keeping the products schedule-independent.
      const int rows = rel.Size();
      const int nm = (rows + kMorselRows - 1) / kMorselRows;
      ParallelFor(nm, pool, [&rel, &weight, &agg, &pp, p, rows](int mi) {
        const int lo = mi * kMorselRows;
        const int hi = std::min(lo + kMorselRows, rows);
        for (int t = lo; t < hi; ++t) {
          weight[p][t] *= agg.Lookup(rel.Row(t), pp);
        }
      });
    }
  });
  long long total = 0;
  for (long long w : weight[tree.root]) total += w;
  return total;
}

long long CountViaTreeDecomposition(const Csp& csp,
                                    const TreeDecomposition& td,
                                    ThreadPool* pool) {
  return CountRelationTree(BuildRelationTreeFromTd(csp, td, pool), pool);
}

long long CountViaGhd(const Csp& csp,
                      const GeneralizedHypertreeDecomposition& ghd,
                      ThreadPool* pool) {
  return CountRelationTree(BuildRelationTreeFromGhd(csp, ghd, pool), pool);
}

long long CountAcyclicCsp(const Csp& csp, ThreadPool* pool) {
  Hypergraph h = csp.ConstraintHypergraph();
  std::optional<JoinTree> jt = BuildJoinTree(h);
  HT_CHECK_MSG(jt.has_value(), "constraint hypergraph is not alpha-acyclic");
  RelationTree tree;
  tree.parent = jt->parent;
  tree.root = jt->root;
  tree.relations.resize(h.NumEdges());
  for (int c = 0; c < csp.NumConstraints(); ++c) {
    tree.relations[c] = csp.GetConstraint(c).relation;
  }
  for (int e = csp.NumConstraints(); e < h.NumEdges(); ++e) {
    std::vector<int> vars = h.EdgeVertices(e);
    Relation r(vars);
    for (int val = 0; val < csp.DomainSize(vars[0]); ++val) r.AddTuple({val});
    tree.relations[e] = std::move(r);
  }
  return CountRelationTree(tree, pool);
}

}  // namespace hypertree
