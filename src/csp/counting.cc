#include "csp/counting.h"

#include <unordered_map>
#include <vector>

#include "csp/decomposition_solving.h"
#include "util/check.h"

namespace hypertree {

namespace {

// FNV-style hash for join keys (mirrors relation.cc).
struct VecHash {
  size_t operator()(const std::vector<int>& v) const {
    size_t h = 1469598103934665603ULL;
    for (int x : v) {
      h ^= static_cast<size_t>(x) + 0x9e3779b9;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

std::vector<int> ProjectTuple(const std::vector<int>& tuple,
                              const std::vector<int>& positions) {
  std::vector<int> key;
  key.reserve(positions.size());
  for (int p : positions) key.push_back(tuple[p]);
  return key;
}

}  // namespace

long long CountRelationTree(const RelationTree& tree) {
  int m = static_cast<int>(tree.relations.size());
  if (m == 0) return 1;  // the empty join has exactly one (empty) answer
  std::vector<std::vector<int>> children(m);
  for (int p = 0; p < m; ++p) {
    if (tree.parent[p] != -1) children[tree.parent[p]].push_back(p);
  }
  std::vector<int> order = {tree.root};
  for (size_t i = 0; i < order.size(); ++i) {
    for (int c : children[order[i]]) order.push_back(c);
  }
  HT_CHECK(static_cast<int>(order.size()) == m);

  // weight[p][t] = number of consistent completions of tuple t within the
  // subtree of p. Processed bottom-up.
  std::vector<std::vector<long long>> weight(m);
  for (size_t i = order.size(); i-- > 0;) {
    int p = order[i];
    const Relation& rel = tree.relations[p];
    weight[p].assign(rel.Size(), 1);
    for (int c : children[p]) {
      const Relation& crel = tree.relations[c];
      // Aggregate child weights by the shared-variable key.
      std::vector<int> pp, pc;
      for (int pi = 0; pi < rel.Arity(); ++pi) {
        int ci = crel.IndexOf(rel.schema()[pi]);
        if (ci >= 0) {
          pp.push_back(pi);
          pc.push_back(ci);
        }
      }
      std::unordered_map<std::vector<int>, long long, VecHash> agg;
      for (int t = 0; t < crel.Size(); ++t) {
        agg[ProjectTuple(crel.tuples()[t], pc)] += weight[c][t];
      }
      for (int t = 0; t < rel.Size(); ++t) {
        auto it = agg.find(ProjectTuple(rel.tuples()[t], pp));
        weight[p][t] *= (it == agg.end()) ? 0 : it->second;
      }
    }
  }
  long long total = 0;
  for (long long w : weight[tree.root]) total += w;
  return total;
}

long long CountViaTreeDecomposition(const Csp& csp,
                                    const TreeDecomposition& td) {
  return CountRelationTree(BuildRelationTreeFromTd(csp, td));
}

long long CountViaGhd(const Csp& csp,
                      const GeneralizedHypertreeDecomposition& ghd) {
  return CountRelationTree(BuildRelationTreeFromGhd(csp, ghd));
}

long long CountAcyclicCsp(const Csp& csp) {
  Hypergraph h = csp.ConstraintHypergraph();
  std::optional<JoinTree> jt = BuildJoinTree(h);
  HT_CHECK_MSG(jt.has_value(), "constraint hypergraph is not alpha-acyclic");
  RelationTree tree;
  tree.parent = jt->parent;
  tree.root = jt->root;
  tree.relations.resize(h.NumEdges());
  for (int c = 0; c < csp.NumConstraints(); ++c) {
    tree.relations[c] = csp.GetConstraint(c).relation;
  }
  for (int e = csp.NumConstraints(); e < h.NumEdges(); ++e) {
    std::vector<int> vars = h.EdgeVertices(e);
    Relation r(vars);
    for (int val = 0; val < csp.DomainSize(vars[0]); ++val) r.AddTuple({val});
    tree.relations[e] = std::move(r);
  }
  return CountRelationTree(tree);
}

}  // namespace hypertree
