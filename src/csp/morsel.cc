#include "csp/morsel.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <mutex>

#include "util/check.h"

namespace hypertree {

namespace {

// Budget state mirrors the kernel-backend dispatch pattern: an explicit
// SetMemoryBudget consumes the once-flag, so the environment variable
// never overrides a tool's --memory-budget choice.
std::atomic<long long> g_budget{0};
std::once_flag g_budget_once;

void InitBudgetFromEnvOnce() {
  std::call_once(g_budget_once, [] {
    const char* env = std::getenv("HYPERTREE_MEMORY_BUDGET");
    if (env == nullptr || env[0] == '\0') return;
    long long bytes = 0;
    if (ParseByteSize(env, &bytes)) {
      g_budget.store(bytes, std::memory_order_relaxed);
    } else {
      metrics::GetCounter("relation.spill.bad_env_budget").Increment();
    }
  });
}

}  // namespace

long long MemoryBudget() {
  InitBudgetFromEnvOnce();
  return g_budget.load(std::memory_order_relaxed);
}

void SetMemoryBudget(long long bytes) {
  std::call_once(g_budget_once, [] {});  // explicit choice beats the env
  g_budget.store(bytes < 0 ? 0 : bytes, std::memory_order_relaxed);
}

bool ParseByteSize(const std::string& s, long long* out) {
  if (s.empty()) return false;
  size_t end = s.size();
  long long mult = 1;
  const char last = s[end - 1];
  if (last == 'k' || last == 'K') {
    mult = 1LL << 10;
    --end;
  } else if (last == 'm' || last == 'M') {
    mult = 1LL << 20;
    --end;
  } else if (last == 'g' || last == 'G') {
    mult = 1LL << 30;
    --end;
  }
  if (end == 0) return false;
  long long value = 0;
  for (size_t i = 0; i < end; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    if (value > (1LL << 53)) return false;  // refuse absurd sizes
    value = value * 10 + (s[i] - '0');
  }
  *out = value * mult;
  return true;
}

std::string SpillDir() {
  const char* dir = std::getenv("HYPERTREE_SPILL_DIR");
  if (dir != nullptr && dir[0] != '\0') return dir;
  dir = std::getenv("TMPDIR");
  if (dir != nullptr && dir[0] != '\0') return dir;
  return "/tmp";
}

metrics::Counter& MorselsProcessed() {
  static metrics::Counter& c =
      metrics::GetCounter("relation.morsels.processed");
  return c;
}
metrics::Counter& MorselsSkipped() {
  static metrics::Counter& c = metrics::GetCounter("relation.morsels.skipped");
  return c;
}
metrics::Counter& SpillPartitions() {
  static metrics::Counter& c =
      metrics::GetCounter("relation.spill.partitions");
  return c;
}
metrics::Counter& SpillBytes() {
  static metrics::Counter& c = metrics::GetCounter("relation.spill.bytes");
  return c;
}

SpillFile::~SpillFile() {
  if (fd_ != -1) ::close(fd_);
}

void SpillFile::Open() {
  if (fd_ != -1) return;
  std::string path = SpillDir() + "/ht-spill-XXXXXX";
  // mkstemp wants a mutable template; the string buffer is one.
  fd_ = ::mkstemp(path.data());
  HT_CHECK_MSG(fd_ != -1, "morsel engine: cannot create a spill file");
  // Unlink immediately: the kernel reclaims the blocks when the fd
  // closes, whatever the process exit path.
  ::unlink(path.c_str());
}

long long SpillFile::Allocate(long long bytes) {
  HT_DCHECK_GE(bytes, 0);
  return cursor_.fetch_add(bytes, std::memory_order_relaxed);
}

void SpillFile::WriteAt(long long offset, const void* data, size_t bytes) {
  const char* p = static_cast<const char*>(data);
  size_t left = bytes;
  long long off = offset;
  while (left > 0) {
    const ssize_t n = ::pwrite(fd_, p, left, off);
    HT_CHECK_MSG(n > 0, "morsel engine: spill write failed");
    p += n;
    off += n;
    left -= static_cast<size_t>(n);
  }
}

void SpillFile::ReadAt(long long offset, void* data, size_t bytes) const {
  char* p = static_cast<char*>(data);
  size_t left = bytes;
  long long off = offset;
  while (left > 0) {
    const ssize_t n = ::pread(fd_, p, left, off);
    HT_CHECK_MSG(n > 0, "morsel engine: spill read failed");
    p += n;
    off += n;
    left -= static_cast<size_t>(n);
  }
}

long ChunkedRelation::TotalRows() const {
  return spilled_ ? total_rows_ : static_cast<long>(rel_.Size());
}

int ChunkedRelation::NumChunks() const {
  if (spilled_) return static_cast<int>(chunks_.size());
  return static_cast<int>(
      (static_cast<long>(rel_.Size()) + kMorselRows - 1) / kMorselRows);
}

int ChunkedRelation::ChunkRows(int i) const {
  if (spilled_) return chunks_[static_cast<size_t>(i)].rows;
  const long lo = static_cast<long>(i) * kMorselRows;
  const long hi =
      std::min<long>(lo + kMorselRows, static_cast<long>(rel_.Size()));
  return static_cast<int>(hi - lo);
}

const int* ChunkedRelation::LoadChunk(int i, std::vector<int>* scratch) const {
  if (!spilled_) {
    if (rel_.Arity() == 0 || rel_.Empty()) return rel_.data().data();
    return rel_.Row(i * kMorselRows);
  }
  const Chunk& c = chunks_[static_cast<size_t>(i)];
  const size_t values = static_cast<size_t>(c.rows) * schema_.size();
  scratch->resize(values);
  if (values > 0) {
    file_->ReadAt(c.offset, scratch->data(), values * sizeof(int));
  }
  return scratch->data();
}

void ChunkedRelation::FinishChunks() {
  long total = 0;
  for (const Chunk& c : chunks_) total += c.rows;
  total_rows_ = total;
}

Relation ChunkedRelation::ToRelation() && {
  if (!spilled_) return std::move(rel_);
  Relation out(schema_);
  out.Reserve(static_cast<int>(total_rows_));
  std::vector<int> scratch;
  const int arity = Arity();
  for (int i = 0; i < NumChunks(); ++i) {
    const int rows = ChunkRows(i);
    const int* data = LoadChunk(i, &scratch);
    for (int r = 0; r < rows; ++r) {
      out.AddRow(data + static_cast<size_t>(r) * arity);
    }
  }
  return out;
}

}  // namespace hypertree
