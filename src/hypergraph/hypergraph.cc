#include "hypergraph/hypergraph.h"

#include <algorithm>

#include "hypergraph/incidence_index.h"
#include "util/check.h"

namespace hypertree {

Hypergraph::Hypergraph(int n) : n_(n), incident_(n), vertex_names_(n) {
  for (int v = 0; v < n; ++v) vertex_names_[v] = "x" + std::to_string(v);
}

int Hypergraph::AddEdge(const std::vector<int>& vertices, std::string name) {
  Bitset b(n_);
  for (int v : vertices) {
    HT_CHECK(v >= 0 && v < n_);
    b.Set(v);
  }
  return AddEdgeBits(b, std::move(name));
}

int Hypergraph::AddEdgeBits(const Bitset& vertices, std::string name) {
  HT_CHECK(vertices.size() == n_);
  HT_CHECK_MSG(vertices.Any(), "empty hyperedge");
  int id = static_cast<int>(edges_.size());
  edges_.push_back(vertices);
  for (int v = vertices.First(); v >= 0; v = vertices.Next(v)) {
    incident_[v].push_back(id);
  }
  edge_names_.push_back(name.empty() ? "e" + std::to_string(id)
                                     : std::move(name));
  return id;
}

int Hypergraph::MaxEdgeSize() const {
  int r = 0;
  for (const Bitset& e : edges_) r = std::max(r, e.Count());
  return r;
}

Graph Hypergraph::PrimalGraph() const {
  Graph g(n_);
  for (const Bitset& e : edges_) {
    for (int u = e.First(); u >= 0; u = e.Next(u)) {
      for (int v = e.Next(u); v >= 0; v = e.Next(v)) {
        g.AddEdge(u, v);
      }
    }
  }
  g.set_name(name_.empty() ? "primal" : name_ + "_primal");
  return g;
}

Graph Hypergraph::DualGraph() const {
  int m = NumEdges();
  Graph g(m);
  // The index's intersection-graph rows are exactly the dual adjacency;
  // reading them replaces the O(m^2) pairwise Intersects scans.
  IncidenceIndex index(*this);
  for (int a = 0; a < m; ++a) {
    const Bitset& row = index.EdgeNeighbors(a);
    for (int b = row.Next(a); b >= 0; b = row.Next(b)) g.AddEdge(a, b);
  }
  g.set_name(name_.empty() ? "dual" : name_ + "_dual");
  return g;
}

Hypergraph Hypergraph::InducedSubhypergraph(
    const Bitset& keep, std::vector<int>* edge_origin) const {
  HT_CHECK(keep.size() == n_);
  Hypergraph sub(n_);
  for (int v = 0; v < n_; ++v) sub.vertex_names_[v] = vertex_names_[v];
  if (edge_origin != nullptr) edge_origin->clear();
  for (int e = 0; e < NumEdges(); ++e) {
    Bitset restricted = edges_[e] & keep;
    if (restricted.None()) continue;
    sub.AddEdgeBits(restricted, edge_names_[e]);
    if (edge_origin != nullptr) edge_origin->push_back(e);
  }
  sub.set_name(name_);
  return sub;
}

Hypergraph HypergraphFromGraph(const Graph& g) {
  Hypergraph h(g.NumVertices());
  for (auto [u, v] : g.Edges()) h.AddEdge({u, v});
  h.set_name(g.name());
  return h;
}

}  // namespace hypertree
