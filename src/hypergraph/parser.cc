#include "hypergraph/parser.h"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "util/stringutil.h"

namespace hypertree {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

struct RawEdge {
  std::string name;
  std::vector<std::string> vertices;
};

// Tokenizes `text` into edge statements, skipping comments.
bool ParseStatements(const std::string& text, std::vector<RawEdge>* out,
                     std::string* error) {
  // Strip comment lines.
  std::string clean;
  {
    std::istringstream ls(text);
    std::string line;
    while (std::getline(ls, line)) {
      std::string s = StripString(line);
      if (StartsWith(s, "%") || StartsWith(s, "#") || StartsWith(s, "//"))
        continue;
      clean += line;
      clean += '\n';
    }
  }
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < clean.size() &&
           (std::isspace(static_cast<unsigned char>(clean[i])) ||
            clean[i] == ',' || clean[i] == '.'))
      ++i;
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '[' || c == ']' || c == '\'';
  };
  while (true) {
    skip_ws();
    if (i >= clean.size()) break;
    RawEdge e;
    size_t start = i;
    while (i < clean.size() && is_ident(clean[i])) ++i;
    e.name = clean.substr(start, i - start);
    if (e.name.empty()) {
      SetError(error, "expected edge name at offset " + std::to_string(i));
      return false;
    }
    skip_ws();
    if (i >= clean.size() || clean[i] != '(') {
      SetError(error, "expected '(' after edge name '" + e.name + "'");
      return false;
    }
    ++i;  // consume '('
    while (true) {
      while (i < clean.size() &&
             (std::isspace(static_cast<unsigned char>(clean[i])) ||
              clean[i] == ','))
        ++i;
      if (i < clean.size() && clean[i] == ')') {
        ++i;
        break;
      }
      size_t vstart = i;
      while (i < clean.size() && is_ident(clean[i])) ++i;
      if (i == vstart) {
        SetError(error, "expected vertex name in edge '" + e.name + "'");
        return false;
      }
      e.vertices.push_back(clean.substr(vstart, i - vstart));
    }
    if (e.vertices.empty()) {
      SetError(error, "edge '" + e.name + "' has no vertices");
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

}  // namespace

std::optional<Hypergraph> ReadHypergraphFromString(const std::string& text,
                                                   std::string* error) {
  std::vector<RawEdge> raw;
  if (!ParseStatements(text, &raw, error)) return std::nullopt;
  if (raw.empty()) {
    SetError(error, "no hyperedges found");
    return std::nullopt;
  }
  std::map<std::string, int> vertex_id;
  std::vector<std::string> names;
  for (const RawEdge& e : raw) {
    for (const std::string& v : e.vertices) {
      if (vertex_id.emplace(v, static_cast<int>(names.size())).second) {
        names.push_back(v);
      }
    }
  }
  Hypergraph h(static_cast<int>(names.size()));
  for (size_t v = 0; v < names.size(); ++v)
    h.SetVertexName(static_cast<int>(v), names[v]);
  for (const RawEdge& e : raw) {
    std::vector<int> vs;
    vs.reserve(e.vertices.size());
    for (const std::string& v : e.vertices) vs.push_back(vertex_id[v]);
    h.AddEdge(vs, e.name);
  }
  return h;
}

std::optional<Hypergraph> ReadHypergraph(std::istream& in,
                                         std::string* error) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadHypergraphFromString(buf.str(), error);
}

std::optional<Hypergraph> ReadHypergraphFile(const std::string& path,
                                             std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  auto h = ReadHypergraph(in, error);
  if (h.has_value()) {
    size_t slash = path.find_last_of('/');
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos) stem = stem.substr(0, dot);
    h->set_name(stem);
  }
  return h;
}

void WriteHypergraph(const Hypergraph& h, std::ostream& out) {
  for (int e = 0; e < h.NumEdges(); ++e) {
    out << h.EdgeName(e) << "(";
    std::vector<int> vs = h.EdgeVertices(e);
    for (size_t i = 0; i < vs.size(); ++i) {
      if (i > 0) out << ",";
      out << h.VertexName(vs[i]);
    }
    out << ")";
    out << (e + 1 == h.NumEdges() ? ".\n" : ",\n");
  }
}

}  // namespace hypertree
