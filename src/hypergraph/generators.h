// Hypergraph generators reproducing the public CSP hypergraph benchmark
// families (Vienna CSP hypergraph library style) plus synthetic workloads.
//
// The circuit families (adder_N, bridge_N) are regular constructions: the
// library instances are derived from N-bit ripple-carry adders and N
// bridged circuit blocks, so generated instances exercise the same code
// paths and have the same known widths (adder ghw = 2, bridge ghw = 2).

#ifndef HYPERTREE_HYPERGRAPH_GENERATORS_H_
#define HYPERTREE_HYPERGRAPH_GENERATORS_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"

namespace hypertree {

/// N-bit ripple-carry adder circuit hypergraph (family `adder_N`).
/// Per bit i: variables a_i, b_i, s_i and carries c_i, c_{i+1}; two
/// constraints per bit (sum and carry-out), chained through the carries.
Hypergraph AdderHypergraph(int bits);

/// Chain of N "bridge" blocks (family `bridge_N`): each block is a 4-cycle
/// of binary constraints with a diagonal, bridged to the next block.
Hypergraph BridgeHypergraph(int blocks);

/// Clique hypergraph `clique_N`: one binary constraint per pair of N
/// variables (the primal graph is K_N).
Hypergraph CliqueHypergraph(int n);

/// 2D grid hypergraph `grid2d_N`: N x N variables, binary constraints
/// between horizontal and vertical neighbors.
Hypergraph Grid2DHypergraph(int n);

/// 3D grid hypergraph `grid3d_N`: N x N x N variables, binary constraints
/// along the three axes.
Hypergraph Grid3DHypergraph(int n);

/// Cycle hypergraph: n vertices, n edges of size `arity` wrapping around
/// (arity = 2 gives the plain cycle; larger arities overlap).
Hypergraph CycleHypergraph(int n, int arity);

/// Random CSP-style hypergraph: m hyperedges of cardinality in
/// [min_arity, max_arity] over n vertices, seeded.
Hypergraph RandomHypergraph(int n, int m, int min_arity, int max_arity,
                            uint64_t seed);

/// Random alpha-acyclic hypergraph built top-down from a random join tree:
/// useful for testing acyclic solving (ghw = 1 by construction).
Hypergraph RandomAcyclicHypergraph(int num_edges, int max_arity,
                                   uint64_t seed);

/// A circuit-style hypergraph mimicking the ISCAS `bNN` benchmark family:
/// `gates` gate constraints (arity 2..4, fanin from earlier signals) over
/// `gates + inputs` signal variables, seeded.
Hypergraph CircuitHypergraph(int inputs, int gates, uint64_t seed);

}  // namespace hypertree

#endif  // HYPERTREE_HYPERGRAPH_GENERATORS_H_
