#include "hypergraph/acyclicity.h"

#include <functional>
#include <vector>

#include "hypergraph/incidence_index.h"
#include "util/bitset.h"
#include "util/check.h"

namespace hypertree {

std::vector<std::vector<int>> JoinTree::Children() const {
  std::vector<std::vector<int>> children(parent.size());
  for (size_t e = 0; e < parent.size(); ++e) {
    if (parent[e] >= 0) children[parent[e]].push_back(static_cast<int>(e));
  }
  return children;
}

namespace {

// Runs GYO reduction. Returns true if the hypergraph reduces to nothing
// (alpha-acyclic); fills parent pointers when `parent` is non-null.
//
// Both rules run off the incidence index: rule 1 locates the unique live
// edge of a degree-1 vertex through its incidence row, and rule 2 finds
// containers of rest[e] as the AND of the incidence rows of e's live
// vertices — a live edge f appears in that intersection iff
// rest[e] ⊆ rest[f] (a vertex live in e can never have been dropped from
// a live f that originally contains it, because dropping needs
// occurrence count 1 while e still counts). Parent selection (lowest
// container id) is bit-identical to the old O(m^2) subset scan.
bool GyoReduce(const Hypergraph& h, const IncidenceIndex& index,
               std::vector<int>* parent) {
  int n = h.NumVertices();
  int m = h.NumEdges();
  std::vector<Bitset> rest;  // live part of each edge
  rest.reserve(m);
  for (int e = 0; e < m; ++e) rest.push_back(h.EdgeBits(e));
  Bitset live(m);
  live.SetAll();
  if (parent != nullptr) parent->assign(m, -1);

  // occurrence counts per vertex over live edges (all edges are live and
  // whole at this point, so each count is one incidence-row popcount)
  std::vector<int> occ(n, 0);
  for (int v = 0; v < n; ++v) occ[v] = index.VertexEdges(v).Count();

  Bitset scratch(m);
  bool changed = true;
  int live_edges = m;
  while (changed) {
    changed = false;
    // Rule 1: drop vertices occurring in at most one live edge.
    for (int v = 0; v < n; ++v) {
      if (occ[v] != 1) continue;
      scratch.AssignAnd(index.VertexEdges(v), live);
      for (int e = scratch.First(); e >= 0; e = scratch.Next(e)) {
        if (rest[e].Test(v)) {
          rest[e].Reset(v);
          occ[v] = 0;
          changed = true;
          break;
        }
      }
    }
    // Rule 2: drop edges whose live part is empty or contained in another
    // live edge.
    for (int e = 0; e < m; ++e) {
      if (!live.Test(e)) continue;
      if (rest[e].None()) {
        live.Reset(e);
        --live_edges;
        changed = true;
        continue;
      }
      scratch = live;
      for (int v = rest[e].First(); v >= 0; v = rest[e].Next(v)) {
        scratch &= index.VertexEdges(v);
      }
      scratch.Reset(e);
      int f = scratch.First();
      if (f >= 0) {
        live.Reset(e);
        --live_edges;
        if (parent != nullptr) (*parent)[e] = f;
        for (int v = rest[e].First(); v >= 0; v = rest[e].Next(v)) --occ[v];
        changed = true;
      }
    }
  }
  return live_edges == 0;
}

}  // namespace

bool IsAlphaAcyclic(const Hypergraph& h) {
  if (h.NumEdges() == 0) return true;
  IncidenceIndex index(h);
  return GyoReduce(h, index, nullptr);
}

bool IsAlphaAcyclic(const IncidenceIndex& index) {
  if (index.NumEdges() == 0) return true;
  return GyoReduce(index.hypergraph(), index, nullptr);
}

std::optional<JoinTree> BuildJoinTree(const Hypergraph& h) {
  if (h.NumEdges() == 0) return JoinTree{};
  std::vector<int> parent;
  IncidenceIndex index(h);
  if (!GyoReduce(h, index, &parent)) return std::nullopt;
  // Stitch multiple roots (disconnected components / the final emptied
  // edges) under the first root.
  JoinTree jt;
  jt.parent = std::move(parent);
  for (int e = 0; e < h.NumEdges(); ++e) {
    if (jt.parent[e] == -1) {
      if (jt.root == -1) {
        jt.root = e;
      } else {
        jt.parent[e] = jt.root;
      }
    }
  }
  return jt;
}

bool IsBergeAcyclic(const Hypergraph& h) {
  // The incidence graph has n + m nodes and sum(|e|) edges; it is a
  // forest iff within each connected component #edges = #nodes - 1.
  // Union-find over vertex-nodes and edge-nodes: a cycle is detected the
  // moment an incidence edge joins two already-connected nodes.
  int n = h.NumVertices();
  int m = h.NumEdges();
  std::vector<int> parent(n + m);
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = static_cast<int>(i);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (int e = 0; e < m; ++e) {
    for (int v = h.EdgeBits(e).First(); v >= 0; v = h.EdgeBits(e).Next(v)) {
      int a = find(v);
      int b = find(n + e);
      if (a == b) return false;  // cycle in the incidence graph
      parent[a] = b;
    }
  }
  return true;
}

bool IsBetaAcyclic(const Hypergraph& h) {
  int n = h.NumVertices();
  int m = h.NumEdges();
  std::vector<Bitset> rest;
  rest.reserve(m);
  for (int e = 0; e < m; ++e) rest.push_back(h.EdgeBits(e));
  Bitset live_vertices(n);
  for (int e = 0; e < m; ++e) live_vertices |= rest[e];

  auto is_nest_point = [&](int v) {
    // Edges (restricted to live vertices) containing v must form a chain
    // under inclusion.
    std::vector<const Bitset*> containing;
    for (const Bitset& e : rest) {
      if (e.Test(v)) containing.push_back(&e);
    }
    for (size_t i = 0; i < containing.size(); ++i) {
      for (size_t j = i + 1; j < containing.size(); ++j) {
        if (!containing[i]->IsSubsetOf(*containing[j]) &&
            !containing[j]->IsSubsetOf(*containing[i])) {
          return false;
        }
      }
    }
    return true;
  };

  bool changed = true;
  while (changed && live_vertices.Any()) {
    changed = false;
    for (int v = live_vertices.First(); v >= 0; v = live_vertices.Next(v)) {
      if (is_nest_point(v)) {
        for (Bitset& e : rest) e.Reset(v);
        live_vertices.Reset(v);
        changed = true;
        break;
      }
    }
  }
  return live_vertices.None();
}

bool ValidateJoinTree(const Hypergraph& h, const JoinTree& jt) {
  int m = h.NumEdges();
  if (static_cast<int>(jt.parent.size()) != m) return false;
  if (m == 0) return true;
  if (jt.root < 0 || jt.root >= m) return false;
  // Tree shape: exactly one root, parent pointers acyclic.
  int roots = 0;
  for (int e = 0; e < m; ++e) {
    if (jt.parent[e] == -1) ++roots;
    if (jt.parent[e] == e) return false;
  }
  if (roots != 1 || jt.parent[jt.root] != -1) return false;
  // Acyclic parent chains (walk with step limit).
  for (int e = 0; e < m; ++e) {
    int cur = e, steps = 0;
    while (cur != -1) {
      cur = jt.parent[cur];
      if (++steps > m) return false;
    }
  }
  // Connectedness: for each vertex, the nodes containing it must induce a
  // connected subtree; in a tree this holds iff (#nodes containing v) - 1
  // equals the number of tree edges whose both endpoints contain v.
  for (int v = 0; v < h.NumVertices(); ++v) {
    int nodes = 0, links = 0;
    for (int e = 0; e < m; ++e) {
      if (!h.EdgeBits(e).Test(v)) continue;
      ++nodes;
      int p = jt.parent[e];
      if (p != -1 && h.EdgeBits(p).Test(v)) ++links;
    }
    if (nodes > 0 && links != nodes - 1) return false;
  }
  return true;
}

}  // namespace hypertree
