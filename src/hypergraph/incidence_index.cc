#include "hypergraph/incidence_index.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/metrics.h"

namespace hypertree {

namespace {

// Counters live here because det-k-decomp is the sole client of the
// splitter/generator hot paths; the names follow the detk.* /
// incidence.* observability scheme (docs/BENCHMARKS.md).
metrics::Counter& BuildsMetric() {
  static metrics::Counter& c = metrics::GetCounter("incidence.builds");
  return c;
}
metrics::Counter& BytesMetric() {
  static metrics::Counter& c = metrics::GetCounter("incidence.bytes");
  return c;
}
metrics::Counter& SplitsMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("detk.component_bfs_splits");
  return c;
}
metrics::Counter& ExpansionsMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("detk.component_bfs_expansions");
  return c;
}
metrics::Counter& ComponentsMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("detk.component_bfs_components");
  return c;
}
metrics::Counter& ScratchBytesMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("detk.scratch_bytes_allocated");
  return c;
}
metrics::Counter& CandidateListsMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("incidence.candidate_lists");
  return c;
}

// Reshapes `b` into a cleared `bits`-universe slot, counting the bytes of
// any (re)allocation so steady-state zero-allocation is observable.
void ConfigureSlot(Bitset* b, int bits) {
  if (b->size() != bits) {
    *b = Bitset(bits);
    ScratchBytesMetric().Add(((bits + 63) / 64) * 8);
  } else {
    b->Clear();
  }
}

}  // namespace

namespace {

// Arena row stride for rows of `words` words: single-word rows pack
// contiguously (four rows per 256-bit lane in the AVX2 backend),
// multi-word rows start on a fresh lane.
size_t RowStride(int words) {
  return words <= 1 ? 1 : static_cast<size_t>(kernels::PaddedWords(words));
}

}  // namespace

IncidenceIndex::IncidenceIndex(const Hypergraph& h)
    : h_(h),
      n_(h.NumVertices()),
      m_(h.NumEdges()),
      edge_words_((m_ + 63) / 64),
      vert_words_((n_ + 63) / 64),
      ve_stride_(RowStride(edge_words_)),
      ev_stride_(RowStride(vert_words_)),
      vertex_edge_rows_(static_cast<size_t>(n_) * ve_stride_),
      edge_var_rows_(static_cast<size_t>(m_) * ev_stride_) {
  vertex_edges_.reserve(n_);
  for (int v = 0; v < n_; ++v) vertex_edges_.emplace_back(m_);
  edge_neighbors_.reserve(m_);
  for (int e = 0; e < m_; ++e) edge_neighbors_.emplace_back(m_);
  for (int e = 0; e < m_; ++e) {
    const Bitset& vars = h.EdgeBits(e);
    for (int v = vars.First(); v >= 0; v = vars.Next(v)) {
      vertex_edges_[v].Set(e);
    }
  }
  // Row e of the intersection graph = union of the incidence rows of its
  // vertices (includes e itself: reflexive closure).
  for (int v = 0; v < n_; ++v) {
    const Bitset& row = vertex_edges_[v];
    for (int e = row.First(); e >= 0; e = row.Next(e)) {
      edge_neighbors_[e] |= row;
    }
  }
  // Flat copies of the two hot row families for the kernel layer. The
  // arenas are zero-initialized, so inter-row padding stays zero.
  for (int v = 0; v < n_; ++v) {
    std::memcpy(vertex_edge_rows_.data() + static_cast<size_t>(v) * ve_stride_,
                vertex_edges_[v].Words(),
                sizeof(uint64_t) * static_cast<size_t>(edge_words_));
  }
  for (int e = 0; e < m_; ++e) {
    std::memcpy(edge_var_rows_.data() + static_cast<size_t>(e) * ev_stride_,
                h.EdgeBits(e).Words(),
                sizeof(uint64_t) * static_cast<size_t>(vert_words_));
  }
  BuildsMetric().Increment();
  BytesMetric().Add(static_cast<long>(n_ + m_) * ((m_ + 63) / 64) * 8 +
                    static_cast<long>(vertex_edge_rows_.size() +
                                      edge_var_rows_.size()) *
                        8);
}

void IncidenceIndex::EdgesTouching(const Bitset& vars, Bitset* out) const {
  HT_DCHECK_EQ(out->size(), m_);
  kernels::Active().OrReduceRows(out->MutableWords(), edge_words_,
                                 vertex_edge_rows_.data(), ve_stride_,
                                 vars.Words(), vars.NumWords());
}

void ComponentSplitter::Attach(const IncidenceIndex* index) {
  index_ = index;
  ConfigureSlot(&pending_, index->NumEdges());
  ConfigureSlot(&reach_edges_, index->NumEdges());
  ConfigureSlot(&frontier_vars_, index->NumVertices());
  ConfigureSlot(&next_vars_, index->NumVertices());
  ConfigureSlot(&seen_vars_, index->NumVertices());
}

int ComponentSplitter::Split(const Bitset& comp, const Bitset& sep_vars,
                             std::vector<Bitset>* out, size_t out_base) {
  HT_DCHECK(index_ != nullptr);
  const Hypergraph& h = index_->hypergraph();
  const kernels::Ops& ops = kernels::Active();
  const int edge_words = index_->EdgeWords();
  const int vert_words = index_->VertWords();
  SplitsMetric().Increment();
  // Edges with at least one vertex outside the separator take part in
  // the split; edges fully inside sep_vars vanish (they are covered).
  // One multi-row ANDNOT-emptiness kernel call over the edge->vertex
  // arena replaces the per-edge subset loop.
  ops.FilterRowsNotSubset(pending_.MutableWords(), index_->EdgeVarRows(),
                          index_->EdgeVarStride(), comp.Words(),
                          comp.NumWords(), sep_vars.Words(), vert_words);
  int count = 0;
  long expansions = 0;
  for (int seed = pending_.First(); seed >= 0; seed = pending_.First()) {
    // Acquire the output slot only now (growth may move earlier slots,
    // but none are referenced during the push).
    if (out->size() < out_base + static_cast<size_t>(count) + 1) {
      out->emplace_back(index_->NumEdges());
      ScratchBytesMetric().Add(((index_->NumEdges() + 63) / 64) * 8);
    }
    Bitset& comp_edges = (*out)[out_base + static_cast<size_t>(count)];
    ConfigureSlot(&comp_edges, index_->NumEdges());
    comp_edges.Set(seed);
    pending_.Reset(seed);
    // Word-parallel BFS through the kernel layer: each round is one
    // fused OR-reduce of the frontier's incidence rows masked by the
    // still-unassigned edges, a frontier commit (claim reached edges),
    // and one OR-reduce of the reached edges' vertex rows. Every vertex
    // is expanded at most once per split and every edge joins at most
    // one component, so the whole split is O(sum deg * m/64 +
    // sum |e| * n/64) words instead of the naive O(|comp|^2) subset
    // rounds.
    frontier_vars_.AssignDiff(h.EdgeBits(seed), sep_vars);
    seen_vars_ = frontier_vars_;
    while (frontier_vars_.Any()) {
      bool any = false;
      expansions += ops.OrReduceRowsFiltered(
          reach_edges_.MutableWords(), edge_words, index_->VertexEdgeRows(),
          index_->VertexEdgeStride(), frontier_vars_.Words(),
          frontier_vars_.NumWords(), pending_.Words(), &any);
      if (!any) break;
      ops.FrontierCommit(comp_edges.MutableWords(), pending_.MutableWords(),
                         reach_edges_.Words(), edge_words);
      ops.OrReduceRows(next_vars_.MutableWords(), vert_words,
                       index_->EdgeVarRows(), index_->EdgeVarStride(),
                       reach_edges_.Words(), reach_edges_.NumWords());
      next_vars_ -= sep_vars;
      next_vars_ -= seen_vars_;
      seen_vars_ |= next_vars_;
      std::swap(frontier_vars_, next_vars_);
    }
    ++count;
  }
  ExpansionsMetric().Add(expansions);
  ComponentsMetric().Add(count);
  return count;
}

void CandidateGenerator::Attach(const IncidenceIndex* index) {
  index_ = index;
  ConfigureSlot(&touched_, index->NumEdges());
}

void CandidateGenerator::SortedCandidates(const Bitset& conn,
                                          const Bitset& scope,
                                          std::vector<int>* out) {
  HT_DCHECK(index_ != nullptr);
  CandidateListsMetric().Increment();
  index_->EdgesTouching(scope, &touched_);
  // Batched candidate evaluation: materialize the touched edge ids
  // (ascending) and score them all against the connector set in one
  // kernel call over the edge->vertex arena.
  cand_ids_.clear();
  touched_.AppendTo(&cand_ids_);
  const int k = static_cast<int>(cand_ids_.size());
  if (static_cast<int>(counts_.size()) < k) counts_.resize(k);
  kernels::Active().ScoreRows(counts_.data(), index_->EdgeVarRows(),
                              index_->EdgeVarStride(), cand_ids_.data(), k,
                              conn.Words(), index_->VertWords());
  decorated_.clear();
  for (int i = 0; i < k; ++i) {
    decorated_.emplace_back(counts_[i], cand_ids_[i]);
  }
  // Count descending, edge id ascending: the total order a stable sort
  // by descending count over the ascending edge scan produces.
  std::sort(decorated_.begin(), decorated_.end(),
            [](const std::pair<int, int>& a, const std::pair<int, int>& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  out->clear();
  for (const auto& [count, e] : decorated_) out->push_back(e);
}

std::vector<Bitset> NaiveComponents(const Hypergraph& h, const Bitset& comp,
                                    const Bitset& sep_vars) {
  std::vector<int> pending;
  for (int e = comp.First(); e >= 0; e = comp.Next(e)) {
    if (!h.EdgeBits(e).IsSubsetOf(sep_vars)) pending.push_back(e);
  }
  std::vector<Bitset> out;
  std::vector<bool> assigned(h.NumEdges(), false);
  for (int seed : pending) {
    if (assigned[seed]) continue;
    Bitset comp_edges(h.NumEdges());
    Bitset frontier_vars = h.EdgeBits(seed) - sep_vars;
    comp_edges.Set(seed);
    assigned[seed] = true;
    bool grew = true;
    while (grew) {
      grew = false;
      for (int e : pending) {
        if (assigned[e]) continue;
        Bitset outside = h.EdgeBits(e) - sep_vars;
        if (outside.Intersects(frontier_vars)) {
          comp_edges.Set(e);
          assigned[e] = true;
          frontier_vars |= outside;
          grew = true;
        }
      }
    }
    out.push_back(std::move(comp_edges));
  }
  return out;
}

std::vector<int> NaiveCandidates(const Hypergraph& h, const Bitset& conn,
                                 const Bitset& scope) {
  // Connector counts are computed once per edge, not O(m log m) times
  // inside the sort comparator.
  std::vector<std::pair<int, int>> decorated;
  for (int e = 0; e < h.NumEdges(); ++e) {
    if (h.EdgeBits(e).Intersects(scope)) {
      decorated.emplace_back(h.EdgeBits(e).IntersectCount(conn), e);
    }
  }
  std::stable_sort(decorated.begin(), decorated.end(),
                   [](const std::pair<int, int>& a,
                      const std::pair<int, int>& b) {
                     return a.first > b.first;
                   });
  std::vector<int> out;
  out.reserve(decorated.size());
  for (const auto& [count, e] : decorated) out.push_back(e);
  return out;
}

}  // namespace hypertree
