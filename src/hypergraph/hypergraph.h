// Hypergraphs: the structure of conjunctive queries and CSPs.
//
// Vertices (CSP variables / query variables) are dense ints [0, n); each
// hyperedge (constraint scope / query atom) is a vertex set stored as a
// bitset. Vertex and edge names are kept for parsing/printing benchmark
// instances.

#ifndef HYPERTREE_HYPERGRAPH_HYPERGRAPH_H_
#define HYPERTREE_HYPERGRAPH_HYPERGRAPH_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace hypertree {

/// A hypergraph H = (V, H) with named vertices and hyperedges.
class Hypergraph {
 public:
  Hypergraph() : n_(0) {}

  /// Creates a hypergraph on `n` vertices with default names x0..x{n-1}.
  explicit Hypergraph(int n);

  /// Number of vertices.
  int NumVertices() const { return n_; }

  /// Number of hyperedges.
  int NumEdges() const { return static_cast<int>(edges_.size()); }

  /// Adds a hyperedge over `vertices`; returns its id. Duplicate edges are
  /// allowed (benchmarks contain them); empty edges are rejected.
  int AddEdge(const std::vector<int>& vertices, std::string name = "");

  /// Adds a hyperedge from a bitset; returns its id.
  int AddEdgeBits(const Bitset& vertices, std::string name = "");

  /// The vertex set of edge `e` as a bitset.
  const Bitset& EdgeBits(int e) const { return edges_[e]; }

  /// The vertex set of edge `e` as a sorted list.
  std::vector<int> EdgeVertices(int e) const { return edges_[e].ToVector(); }

  /// Size of edge `e`.
  int EdgeSize(int e) const { return edges_[e].Count(); }

  /// Maximum hyperedge cardinality (the paper's rank / `r`).
  int MaxEdgeSize() const;

  /// Ids of the hyperedges containing vertex `v`.
  const std::vector<int>& IncidentEdges(int v) const { return incident_[v]; }

  /// Number of hyperedges containing vertex `v`.
  int VertexDegree(int v) const {
    return static_cast<int>(incident_[v].size());
  }

  /// The primal (Gaifman) graph: vertices of H, an edge between every two
  /// vertices that co-occur in a hyperedge (Definition 3).
  Graph PrimalGraph() const;

  /// The dual graph: one vertex per hyperedge, edges between hyperedges
  /// sharing a vertex (Definition 4).
  Graph DualGraph() const;

  /// The subhypergraph induced by restricting every edge to `keep` and
  /// dropping edges that become empty. Vertex ids are preserved (universe
  /// size stays n); `edge_origin` (optional) maps new edge ids to old.
  Hypergraph InducedSubhypergraph(const Bitset& keep,
                                  std::vector<int>* edge_origin = nullptr) const;

  /// Name handling.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }
  const std::string& VertexName(int v) const { return vertex_names_[v]; }
  void SetVertexName(int v, std::string name) {
    vertex_names_[v] = std::move(name);
  }
  const std::string& EdgeName(int e) const { return edge_names_[e]; }

 private:
  int n_;
  std::vector<Bitset> edges_;
  std::vector<std::vector<int>> incident_;
  std::vector<std::string> vertex_names_;
  std::vector<std::string> edge_names_;
  std::string name_;
};

/// Views a regular graph as a hypergraph with one binary edge per graph
/// edge (every graph is a hypergraph; Definition 2).
Hypergraph HypergraphFromGraph(const Graph& g);

}  // namespace hypertree

#endif  // HYPERTREE_HYPERGRAPH_HYPERGRAPH_H_
