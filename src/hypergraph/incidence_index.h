// Precomputed incidence structure of a hypergraph, shared read-only by
// the exact decomposition searches.
//
// The inner loops of det-k-decomp, BB-ghw and A*-ghw all reduce to two
// questions about a hypergraph (PAPER.md §5):
//
//   * which edges does this vertex set touch?   (candidate separators,
//     bag-cover candidate generation)
//   * how do a component's edges split against a separator?  (edge
//     components w.r.t. separator vertices)
//
// Both are answered word-parallel from two families of bitset rows built
// once per instance: per-vertex incident-edge sets (rows of the incidence
// matrix, edge-indexed) and per-edge adjacency sets (rows of the
// intersection graph). The index is immutable after construction, so any
// number of search workers can share one instance without synchronization.
//
// ComponentSplitter and CandidateGenerator bundle the reusable scratch
// those queries need; each search worker owns one of each, and in steady
// state neither performs any heap allocation. NaiveComponents /
// NaiveCandidates are the quadratic reference implementations the
// word-parallel versions are randomized-tested against
// (tests/incidence_index_test.cc); they double as the specification of
// the deterministic output order.

#ifndef HYPERTREE_HYPERGRAPH_INCIDENCE_INDEX_H_
#define HYPERTREE_HYPERGRAPH_INCIDENCE_INDEX_H_

#include <utility>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "kernels/kernels.h"
#include "util/bitset.h"

namespace hypertree {

/// Immutable per-instance incidence index: vertex -> incident edges and
/// edge -> intersecting edges, both as edge-universe bitsets.
///
/// Besides the per-row Bitset views, the index keeps the two hot row
/// families in flat row-major word arenas (row r at Rows() + r * Stride())
/// shaped for the kernel layer (src/kernels/kernels.h): single-word rows
/// pack at stride 1 so vector backends process four rows per 256-bit
/// lane, multi-word rows at a whole-lane stride. The arenas are built
/// once and immutable, so any number of search workers — including the
/// batched kernel backend's worker pool — share them without
/// synchronization.
class IncidenceIndex {
 public:
  explicit IncidenceIndex(const Hypergraph& h);

  int NumVertices() const { return n_; }
  int NumEdges() const { return m_; }
  const Hypergraph& hypergraph() const { return h_; }

  /// Edges containing vertex `v` (an m-bit set; row v of the incidence
  /// matrix).
  const Bitset& VertexEdges(int v) const { return vertex_edges_[v]; }

  /// Edges sharing at least one vertex with edge `e`, including `e`
  /// itself (row e of the intersection graph, reflexively closed).
  const Bitset& EdgeNeighbors(int e) const { return edge_neighbors_[e]; }

  /// out := union of VertexEdges(v) over the vertices of `vars` — the
  /// edges touching `vars`. `out` must be an m-bit set; overwritten.
  /// One kernel OR-reduce over the vertex->edges arena.
  void EdgesTouching(const Bitset& vars, Bitset* out) const;

  /// Flat vertex->edges rows: n rows of EdgeWords() words at
  /// VertexEdgeStride() (row v = VertexEdges(v)).
  const uint64_t* VertexEdgeRows() const { return vertex_edge_rows_.data(); }
  size_t VertexEdgeStride() const { return ve_stride_; }

  /// Flat edge->vertices rows: m rows of VertWords() words at
  /// EdgeVarStride() (row e = hypergraph().EdgeBits(e)).
  const uint64_t* EdgeVarRows() const { return edge_var_rows_.data(); }
  size_t EdgeVarStride() const { return ev_stride_; }

  /// Words per edge-universe (m-bit) row / vertex-universe (n-bit) row.
  int EdgeWords() const { return edge_words_; }
  int VertWords() const { return vert_words_; }

 private:
  const Hypergraph& h_;
  int n_;
  int m_;
  int edge_words_;
  int vert_words_;
  size_t ve_stride_;
  size_t ev_stride_;
  std::vector<Bitset> vertex_edges_;
  std::vector<Bitset> edge_neighbors_;
  kernels::WordArena vertex_edge_rows_;
  kernels::WordArena edge_var_rows_;
};

/// Word-parallel edge-component splitting: the edges of `comp` not fully
/// inside the separator, grouped by connectivity through non-separator
/// vertices. One splitter per search worker; Split() reuses the
/// splitter's internal scratch and performs no heap allocation once the
/// output slots exist (slot construction is counted in
/// detk.scratch_bytes_allocated).
class ComponentSplitter {
 public:
  explicit ComponentSplitter(const IncidenceIndex* index = nullptr) {
    if (index != nullptr) Attach(index);
  }

  /// Re-targets the splitter (also sizes the internal scratch).
  void Attach(const IncidenceIndex* index);

  /// Splits the edges of `comp` (an m-bit edge set) against separator
  /// vertices `sep_vars` (an n-bit vertex set). The components are
  /// written into (*out)[out_base], (*out)[out_base+1], ... reusing
  /// existing slots (growing `out` only when needed); the return value
  /// is the component count. Components appear in ascending order of
  /// their lowest edge id, and each component is the same edge set the
  /// naive fixed-point computation produces.
  int Split(const Bitset& comp, const Bitset& sep_vars,
            std::vector<Bitset>* out, size_t out_base = 0);

 private:
  const IncidenceIndex* index_ = nullptr;
  Bitset pending_;        // m: not-yet-assigned component edges
  Bitset reach_edges_;    // m: edges reached by the current frontier
  Bitset frontier_vars_;  // n: vertices discovered last round
  Bitset next_vars_;      // n: vertices discovered this round
  Bitset seen_vars_;      // n: all non-separator vertices of the component
};

/// Sorted candidate-separator generation: edges intersecting `scope`,
/// ordered by |edge ∩ conn| descending, edge id ascending — the exact
/// order det-k-decomp's naive rescan + stable_sort produced. One
/// generator per search worker (owns the decorate-sort scratch).
class CandidateGenerator {
 public:
  explicit CandidateGenerator(const IncidenceIndex* index = nullptr) {
    if (index != nullptr) Attach(index);
  }

  /// Re-targets the generator (also sizes the internal scratch).
  void Attach(const IncidenceIndex* index);

  /// Fills `*out` (cleared first) with the sorted candidate edges.
  void SortedCandidates(const Bitset& conn, const Bitset& scope,
                        std::vector<int>* out);

 private:
  const IncidenceIndex* index_ = nullptr;
  Bitset touched_;  // m: edges intersecting scope
  std::vector<int> cand_ids_;  // touched edge ids, ascending
  std::vector<int> counts_;    // kernel-scored |edge ∩ conn| per candidate
  std::vector<std::pair<int, int>> decorated_;  // (connector count, edge)
};

/// Reference implementation of Split(): the original quadratic
/// fixed-point loop over materialized per-edge outside-vars. Kept as the
/// specification for the randomized equivalence tests.
std::vector<Bitset> NaiveComponents(const Hypergraph& h, const Bitset& comp,
                                    const Bitset& sep_vars);

/// Reference implementation of SortedCandidates(): full edge rescan with
/// connector counts precomputed once (not inside the sort comparator)
/// and a decorate-sort-undecorate. Kept as the specification for the
/// randomized equivalence tests.
std::vector<int> NaiveCandidates(const Hypergraph& h, const Bitset& conn,
                                 const Bitset& scope);

}  // namespace hypertree

#endif  // HYPERTREE_HYPERGRAPH_INCIDENCE_INDEX_H_
