// Reader/writer for the HyperBench / detkdecomp hypergraph format used by
// the public CSP hypergraph benchmark libraries:
//
//   edge_name(vertex, vertex, ...),
//   other_edge(vertex, ...).
//
// Statements are separated by commas; the file ends with a period (both are
// tolerated if missing). '%'-prefixed lines are comments. Vertex names are
// arbitrary identifiers and are interned in order of first appearance.

#ifndef HYPERTREE_HYPERGRAPH_PARSER_H_
#define HYPERTREE_HYPERGRAPH_PARSER_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "hypergraph/hypergraph.h"

namespace hypertree {

/// Parses a hypergraph in HyperBench format from `in`.
std::optional<Hypergraph> ReadHypergraph(std::istream& in,
                                         std::string* error = nullptr);

/// Parses a hypergraph in HyperBench format from a string.
std::optional<Hypergraph> ReadHypergraphFromString(const std::string& text,
                                                   std::string* error = nullptr);

/// Parses a hypergraph from the file at `path`.
std::optional<Hypergraph> ReadHypergraphFile(const std::string& path,
                                             std::string* error = nullptr);

/// Writes `h` in HyperBench format.
void WriteHypergraph(const Hypergraph& h, std::ostream& out);

}  // namespace hypertree

#endif  // HYPERTREE_HYPERGRAPH_PARSER_H_
