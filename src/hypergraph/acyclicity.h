// Alpha-acyclicity via GYO (Graham / Yu-Ozsoyoglu) reduction, and join-tree
// construction for acyclic hypergraphs.
//
// "Question: when can a conjunctive query be answered in polynomial time
// without any decomposition at all? Answer: when it is alpha-acyclic" — the
// base case of the width hierarchy (ghw(H) = 1 iff H is alpha-acyclic).

#ifndef HYPERTREE_HYPERGRAPH_ACYCLICITY_H_
#define HYPERTREE_HYPERGRAPH_ACYCLICITY_H_

#include <optional>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace hypertree {

/// A join tree of an acyclic hypergraph: one node per hyperedge; node e's
/// parent is parent[e] (-1 for the root). For every vertex of the
/// hypergraph, the nodes whose edges contain it form a connected subtree
/// (the join-tree connectedness condition, Definition 8).
struct JoinTree {
  int root = -1;
  std::vector<int> parent;  // parent[e] = parent edge id, -1 for root

  /// Children lists derived from `parent`.
  std::vector<std::vector<int>> Children() const;
};

class IncidenceIndex;

/// True iff `h` is alpha-acyclic (GYO reduction empties it).
bool IsAlphaAcyclic(const Hypergraph& h);

/// Same check reusing a caller-built incidence index (the GYO rules run
/// off incidence rows, so this skips the redundant index build — the
/// portfolio feature extractor calls it on its already-indexed instance).
bool IsAlphaAcyclic(const IncidenceIndex& index);

/// Builds a join tree if `h` is alpha-acyclic and connected enough to admit
/// one; returns std::nullopt for cyclic hypergraphs. Disconnected acyclic
/// hypergraphs get a join tree whose components are stitched under one root
/// (still a valid join tree: the stitched edges share no vertices).
std::optional<JoinTree> BuildJoinTree(const Hypergraph& h);

/// Checks the join-tree conditions for `jt` against `h` (used by tests).
bool ValidateJoinTree(const Hypergraph& h, const JoinTree& jt);

// --- Degrees of acyclicity ------------------------------------------------
//
// Berge-acyclic  =>  gamma-acyclic  =>  beta-acyclic  =>  alpha-acyclic.
// Alpha-acyclicity is the class query answering cares about (ghw = 1), but
// it is not hereditary; the stricter notions are. This library implements
// the endpoints of the hierarchy plus beta.

/// Berge-acyclicity: the bipartite incidence graph has no cycle — i.e. no
/// two hyperedges share two vertices and the edge intersection structure
/// is a forest.
bool IsBergeAcyclic(const Hypergraph& h);

/// Beta-acyclicity: every subhypergraph (subset of edges) is
/// alpha-acyclic. Decided in polynomial time by nest-point elimination
/// (Duris): a vertex is a nest point if the edges containing it form a
/// chain under inclusion; H is beta-acyclic iff repeatedly deleting nest
/// points (and empty edges) empties the vertex set.
bool IsBetaAcyclic(const Hypergraph& h);

}  // namespace hypertree

#endif  // HYPERTREE_HYPERGRAPH_ACYCLICITY_H_
