#include "hypergraph/generators.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace hypertree {

Hypergraph AdderHypergraph(int bits) {
  HT_CHECK(bits >= 1);
  // Gate-level N-bit ripple-carry adder: each full adder is five gates
  //   t1 = a XOR b,  s = t1 XOR cin,  t2 = a AND b,
  //   t3 = t1 AND cin,  cout = t2 OR t3,
  // each contributing a ternary constraint scope. The gate sharing of
  // {a, b} and {t1, cin} makes every bit block cyclic (ghw 2), matching
  // the benchmark library's adder family.
  // Layout per bit i: a=6i, b=6i+1, s=6i+2, t1=6i+3, t2=6i+4, t3=6i+5;
  // carries c_i = 6*bits + i.
  int n = 6 * bits + bits + 1;
  Hypergraph h(n);
  auto a = [](int i) { return 6 * i; };
  auto b = [](int i) { return 6 * i + 1; };
  auto s = [](int i) { return 6 * i + 2; };
  auto t1 = [](int i) { return 6 * i + 3; };
  auto t2 = [](int i) { return 6 * i + 4; };
  auto t3 = [](int i) { return 6 * i + 5; };
  auto c = [bits](int i) { return 6 * bits + i; };
  for (int i = 0; i < bits; ++i) {
    std::string is = std::to_string(i);
    h.SetVertexName(a(i), "a" + is);
    h.SetVertexName(b(i), "b" + is);
    h.SetVertexName(s(i), "s" + is);
    h.SetVertexName(t1(i), "t1_" + is);
    h.SetVertexName(t2(i), "t2_" + is);
    h.SetVertexName(t3(i), "t3_" + is);
  }
  for (int i = 0; i <= bits; ++i) {
    h.SetVertexName(c(i), "c" + std::to_string(i));
  }
  for (int i = 0; i < bits; ++i) {
    std::string is = std::to_string(i);
    h.AddEdge({a(i), b(i), t1(i)}, "xor1_" + is);
    h.AddEdge({t1(i), c(i), s(i)}, "xor2_" + is);
    h.AddEdge({a(i), b(i), t2(i)}, "and1_" + is);
    h.AddEdge({t1(i), c(i), t3(i)}, "and2_" + is);
    h.AddEdge({t2(i), t3(i), c(i + 1)}, "or_" + is);
  }
  h.set_name("adder_" + std::to_string(bits));
  return h;
}

Hypergraph BridgeHypergraph(int blocks) {
  HT_CHECK(blocks >= 1);
  // Each block k has 4 fresh vertices forming a bridged 4-cycle; block k's
  // exit vertex is block k+1's entry vertex.
  // Vertices per block: entry e_k (shared), plus t_k (top), b_k (bottom),
  // exit e_{k+1}.
  int n = 3 * blocks + 1;
  Hypergraph h(n);
  auto entry = [](int k) { return 3 * k; };
  auto top = [](int k) { return 3 * k + 1; };
  auto bot = [](int k) { return 3 * k + 2; };
  for (int k = 0; k < blocks; ++k) {
    int e0 = entry(k), t = top(k), bo = bot(k), e1 = entry(k + 1);
    std::string ks = std::to_string(k);
    h.AddEdge({e0, t}, "up" + ks);
    h.AddEdge({e0, bo}, "down" + ks);
    h.AddEdge({t, e1}, "upexit" + ks);
    h.AddEdge({bo, e1}, "downexit" + ks);
    h.AddEdge({t, bo}, "bridge" + ks);
  }
  h.set_name("bridge_" + std::to_string(blocks));
  return h;
}

Hypergraph CliqueHypergraph(int n) {
  HT_CHECK(n >= 2);
  Hypergraph h(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      h.AddEdge({u, v});
    }
  }
  h.set_name("clique_" + std::to_string(n));
  return h;
}

Hypergraph Grid2DHypergraph(int n) {
  HT_CHECK(n >= 1);
  Hypergraph h(n * n);
  auto id = [n](int r, int c) { return r * n + c; };
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < n; ++c) {
      if (r + 1 < n) h.AddEdge({id(r, c), id(r + 1, c)});
      if (c + 1 < n) h.AddEdge({id(r, c), id(r, c + 1)});
    }
  }
  h.set_name("grid2d_" + std::to_string(n));
  return h;
}

Hypergraph Grid3DHypergraph(int n) {
  HT_CHECK(n >= 1);
  Hypergraph h(n * n * n);
  auto id = [n](int x, int y, int z) { return (x * n + y) * n + z; };
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      for (int z = 0; z < n; ++z) {
        if (x + 1 < n) h.AddEdge({id(x, y, z), id(x + 1, y, z)});
        if (y + 1 < n) h.AddEdge({id(x, y, z), id(x, y + 1, z)});
        if (z + 1 < n) h.AddEdge({id(x, y, z), id(x, y, z + 1)});
      }
    }
  }
  h.set_name("grid3d_" + std::to_string(n));
  return h;
}

Hypergraph CycleHypergraph(int n, int arity) {
  HT_CHECK(n >= 3 && arity >= 2 && arity <= n);
  Hypergraph h(n);
  for (int start = 0; start < n; ++start) {
    std::vector<int> vs(arity);
    for (int i = 0; i < arity; ++i) vs[i] = (start + i) % n;
    h.AddEdge(vs);
  }
  h.set_name("cycle_" + std::to_string(n) + "_r" + std::to_string(arity));
  return h;
}

Hypergraph RandomHypergraph(int n, int m, int min_arity, int max_arity,
                            uint64_t seed) {
  HT_CHECK(n >= 1 && m >= 1);
  HT_CHECK(1 <= min_arity && min_arity <= max_arity && max_arity <= n);
  Rng rng(seed);
  std::vector<std::vector<int>> edges(m);
  std::vector<int> occurrences(n, 0);
  for (int e = 0; e < m; ++e) {
    int arity = rng.UniformRange(min_arity, max_arity);
    // Sample `arity` distinct vertices.
    Bitset used(n);
    while (static_cast<int>(edges[e].size()) < arity) {
      int v = rng.UniformInt(n);
      if (!used.Test(v)) {
        used.Set(v);
        edges[e].push_back(v);
        ++occurrences[v];
      }
    }
  }
  // Decomposition algorithms require every vertex to occur in some edge
  // (uncovered vertices have uncoverable bags). Swap each uncovered vertex
  // into an edge in place of a multiply-covered one.
  long total_slots = 0;
  for (const auto& e : edges) total_slots += static_cast<long>(e.size());
  HT_CHECK_MSG(total_slots >= n,
               "m * arity too small to cover all %d vertices", n);
  for (int v = 0; v < n; ++v) {
    while (occurrences[v] == 0) {
      int e = rng.UniformInt(m);
      for (int& u : edges[e]) {
        if (occurrences[u] >= 2 &&
            std::find(edges[e].begin(), edges[e].end(), v) ==
                edges[e].end()) {
          --occurrences[u];
          u = v;
          ++occurrences[v];
          break;
        }
      }
    }
  }
  Hypergraph h(n);
  for (const auto& vs : edges) h.AddEdge(vs);
  h.set_name("randomcsp_n" + std::to_string(n) + "_m" + std::to_string(m));
  return h;
}

Hypergraph RandomAcyclicHypergraph(int num_edges, int max_arity,
                                   uint64_t seed) {
  HT_CHECK(num_edges >= 1 && max_arity >= 2);
  Rng rng(seed);
  // Build edges along a random tree; each child edge shares a nonempty
  // random subset of its parent's vertices and adds fresh vertices, which
  // makes the result trivially alpha-acyclic (the tree is a join tree).
  std::vector<std::vector<int>> edges;
  int next_vertex = 0;
  {
    int arity = rng.UniformRange(2, max_arity);
    std::vector<int> root(arity);
    for (int i = 0; i < arity; ++i) root[i] = next_vertex++;
    edges.push_back(root);
  }
  for (int e = 1; e < num_edges; ++e) {
    const std::vector<int>& parent =
        edges[rng.UniformInt(static_cast<int>(edges.size()))];
    // Edges can outgrow max_arity by one vertex per generation (see the
    // fresh-vertex guarantee below), so clamp the shared-subset size to
    // keep [shared, max_arity] a valid draw range.
    int shared = rng.UniformRange(
        1, std::min(static_cast<int>(parent.size()), max_arity));
    std::vector<int> vs = parent;
    rng.Shuffle(&vs);
    vs.resize(shared);
    int arity = rng.UniformRange(shared, max_arity);
    // Guarantee at least one fresh vertex so edges are not pure subsets
    // (subsets are fine but fresh vertices grow the instance).
    int fresh = std::max(1, arity - shared);
    for (int i = 0; i < fresh; ++i) vs.push_back(next_vertex++);
    edges.push_back(vs);
  }
  Hypergraph h(next_vertex);
  for (const auto& vs : edges) h.AddEdge(vs);
  h.set_name("acyclic_m" + std::to_string(num_edges));
  return h;
}

Hypergraph CircuitHypergraph(int inputs, int gates, uint64_t seed) {
  HT_CHECK(inputs >= 1 && gates >= inputs);
  Rng rng(seed);
  int n = inputs + gates;
  Hypergraph h(n);
  for (int i = 0; i < inputs; ++i) h.SetVertexName(i, "in" + std::to_string(i));
  for (int g = 0; g < gates; ++g) {
    int out = inputs + g;
    h.SetVertexName(out, "g" + std::to_string(g));
    int fanin = rng.UniformRange(1, 3);
    std::vector<int> vs = {out};
    Bitset used(n);
    used.Set(out);
    // The first `inputs` gates consume one primary input each so that no
    // signal is left outside every constraint.
    if (g < inputs) {
      vs.push_back(g);
      used.Set(g);
    }
    for (int i = 0; i < fanin; ++i) {
      // Prefer recent signals to mimic circuit locality.
      int lo = std::max(0, out - 12);
      int v = rng.UniformRange(lo, out - 1);
      if (!used.Test(v) && static_cast<int>(vs.size()) < 4) {
        used.Set(v);
        vs.push_back(v);
      }
    }
    h.AddEdge(vs, "gate" + std::to_string(g));
  }
  h.set_name("circuit_i" + std::to_string(inputs) + "_g" +
             std::to_string(gates));
  return h;
}

}  // namespace hypertree
