// A* search for treewidth (thesis ch. 5, algorithm A*-tw).
//
// Best-first search over partial elimination orderings with
// f = max(g, h, parent.f): g is the largest elimination degree so far and
// h a minor-min-width bound on the remaining graph. Because the remaining
// graph depends only on the *set* of eliminated vertices, states with
// equal sets are merged (duplicate detection), turning the n! ordering
// tree into the 2^n subset lattice. The f-values of visited states are
// nondecreasing, so an interrupted run still reports a proven lower bound
// (thesis §5.3).

#ifndef HYPERTREE_TD_ASTAR_H_
#define HYPERTREE_TD_ASTAR_H_

#include "graph/graph.h"
#include "td/exact.h"

namespace hypertree {

/// Computes the treewidth of `g` by A*; anytime bounds on budget
/// exhaustion (max_nodes caps the number of stored states).
WidthResult AStarTreewidth(const Graph& g, const SearchOptions& options = {});

}  // namespace hypertree

#endif  // HYPERTREE_TD_ASTAR_H_
