// Shared types for the exact width algorithms (BB and A*).

#ifndef HYPERTREE_TD_EXACT_H_
#define HYPERTREE_TD_EXACT_H_

#include <cstdint>

#include "ordering/ordering.h"
#include "util/rng.h"

namespace hypertree {

/// Outcome of an exact (anytime) width computation.
struct WidthResult {
  int lower_bound = 0;   // proven lower bound on the width
  int upper_bound = 0;   // width of the best decomposition found
  bool exact = false;    // lower_bound == upper_bound proven
  long nodes = 0;        // search nodes expanded
  double seconds = 0.0;  // wall time spent
  EliminationOrdering best_ordering;  // witnesses upper_bound
};

/// Budget/feature knobs for the exact searches.
struct SearchOptions {
  double time_limit_seconds = 0.0;  // <= 0: unlimited
  long max_nodes = 0;               // <= 0: unlimited (A*: max stored states)
  bool use_simplicial_reduction = true;  // thesis §4.4.3
  bool use_pr2 = true;                   // swap pruning rule (thesis §4.4.5)
  bool use_duplicate_detection = true;   // A* only: merge equal eliminated sets
  /// A *known-valid* upper bound used to prime pruning (e.g. from a GA
  /// run). If the search cannot improve on it, `upper_bound` reports this
  /// hint while `best_ordering` keeps the best internally found ordering,
  /// which may be wider. <= 0: compute via min-fill.
  int initial_upper_bound = -1;
  uint64_t seed = 1;                     // tie-breaking seed
};

}  // namespace hypertree

#endif  // HYPERTREE_TD_EXACT_H_
