// Shared types for the exact width algorithms (BB and A*).

#ifndef HYPERTREE_TD_EXACT_H_
#define HYPERTREE_TD_EXACT_H_

#include <cstdint>

#include "ordering/ordering.h"
#include "search/decomp_cache.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hypertree {

/// Outcome of an exact (anytime) width computation.
struct WidthResult {
  int lower_bound = 0;   // proven lower bound on the width
  int upper_bound = 0;   // width of the best decomposition found
  bool exact = false;    // lower_bound == upper_bound proven
  long nodes = 0;        // search nodes expanded
  double seconds = 0.0;  // wall time spent
  EliminationOrdering best_ordering;  // witnesses upper_bound
  DecompCacheStats cache_stats;  // memo/transposition table effectiveness
};

/// Budget/feature knobs for the exact searches.
struct SearchOptions {
  double time_limit_seconds = 0.0;  // <= 0: unlimited
  long max_nodes = 0;               // <= 0: unlimited (A*: max stored states)
  bool use_simplicial_reduction = true;  // thesis §4.4.3
  bool use_pr2 = true;                   // swap pruning rule (thesis §4.4.5)
  bool use_duplicate_detection = true;   // A* only: merge equal eliminated sets
  /// A *known-valid* upper bound used to prime pruning (e.g. from a GA
  /// run). If the search cannot improve on it, `upper_bound` reports this
  /// hint while `best_ordering` keeps the best internally found ordering,
  /// which may be wider. <= 0: compute via min-fill.
  int initial_upper_bound = -1;
  uint64_t seed = 1;                     // tie-breaking seed
  /// Worker threads for the parallel phases (det-k-decomp's root
  /// separator search). <= 0: hardware concurrency. Results are
  /// deterministic regardless of the thread count.
  int threads = 0;
  /// Memoization: det-k's (component, connector, k) subproblem cache and
  /// the BB/A* transposition tables. Off reverts to the seed behavior
  /// (per-run local negative memo only) for ablation/soundness checks.
  bool use_decomp_cache = true;
  /// Cooperative external cancellation; Cancel() makes the search return
  /// its anytime bounds as if the deadline had expired.
  CancellationToken cancel;
};

}  // namespace hypertree

#endif  // HYPERTREE_TD_EXACT_H_
