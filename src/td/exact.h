// Shared types for the exact (anytime) width algorithms: result/options
// structs, the unified SearchBudget, and the cross-engine BoundExchange
// the portfolio racer plugs into.

#ifndef HYPERTREE_TD_EXACT_H_
#define HYPERTREE_TD_EXACT_H_

#include <atomic>
#include <climits>
#include <cstdint>
#include <memory>

#include "ordering/ordering.h"
#include "search/decomp_cache.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hypertree {

/// Outcome of an exact (anytime) width computation.
struct WidthResult {
  int lower_bound = 0;   // proven lower bound on the width
  int upper_bound = 0;   // width of the best decomposition found
  bool exact = false;    // lower_bound == upper_bound proven
  long nodes = 0;        // search nodes expanded
  double seconds = 0.0;  // wall time spent
  EliminationOrdering best_ordering;  // witnesses upper_bound
  DecompCacheStats cache_stats;  // memo/transposition table effectiveness
};

/// Optional cross-search bound exchange. The portfolio's SharedBounds
/// implements this so concurrently racing engines can tighten each
/// other's cutoffs mid-search: searches poll IncumbentUpperBound() to
/// shrink their pruning threshold and publish their own improvements.
/// All methods must be thread-safe; polling happens on search hot paths,
/// so implementations should be a relaxed atomic load. Note that values
/// read from another engine arrive at timing-dependent points — searches
/// driven through an exchange report timing-dependent node counts, so
/// the deterministic racing mode leaves `exchange` null and shares
/// bounds only through the deterministic pre-race prologue
/// (initial_upper_bound) and supersede-cancellation.
class BoundExchange {
 public:
  virtual ~BoundExchange() = default;
  /// Best upper bound (witnessed width) published by any engine;
  /// INT_MAX when none.
  virtual int IncumbentUpperBound() const = 0;
  /// Publishes an improved witnessed width found by this engine.
  virtual void PublishUpperBound(int width) = 0;
  /// Publishes a proven lower bound found by this engine.
  virtual void PublishLowerBound(int bound) = 0;
};

/// Budget/feature knobs for the exact searches.
struct SearchOptions {
  double time_limit_seconds = 0.0;  // <= 0: unlimited
  long max_nodes = 0;               // <= 0: unlimited (A*: max stored states)
  bool use_simplicial_reduction = true;  // thesis §4.4.3
  bool use_pr2 = true;                   // swap pruning rule (thesis §4.4.5)
  bool use_duplicate_detection = true;   // A* only: merge equal eliminated sets
  /// A *known-valid* upper bound used to prime pruning (e.g. from a GA
  /// run). If the search cannot improve on it, `upper_bound` reports this
  /// hint while `best_ordering` keeps the best internally found ordering,
  /// which may be wider. <= 0: compute via min-fill.
  int initial_upper_bound = -1;
  /// Iterative-deepening cap for HypertreeWidth's k loop: stop before
  /// trying k >= max_width (the portfolio caps det-k at the incumbent
  /// shared width, where proving hw <= k cannot improve the race's upper
  /// bound). <= 0: uncapped.
  int max_width = 0;
  uint64_t seed = 1;                     // tie-breaking seed
  /// Worker threads for the parallel phases (det-k-decomp's root
  /// separator search). <= 0: hardware concurrency. Results are
  /// deterministic regardless of the thread count.
  int threads = 0;
  /// Memoization: det-k's (component, connector, k) subproblem cache and
  /// the BB/A* transposition tables. Off reverts to the seed behavior
  /// (per-run local negative memo only) for ablation/soundness checks.
  bool use_decomp_cache = true;
  /// Cooperative external cancellation; Cancel() makes the search return
  /// its anytime bounds as if the deadline had expired.
  CancellationToken cancel;
  /// Live cross-engine bound exchange (nullptr: disabled). Must outlive
  /// the search. See BoundExchange for the determinism caveat.
  BoundExchange* exchange = nullptr;
};

/// Counts cancellation-token polls across all searches, so the portfolio
/// can verify its cancellation latency is bounded by actual poll traffic
/// (satisfying "every inner loop polls the token, not just the budget").
inline metrics::Counter& CancelPollMetric() {
  static metrics::Counter& c = metrics::GetCounter("cancel.poll");
  return c;
}

/// Unified deadline / node-budget / cancellation bookkeeping for the
/// exact searches. One Tick() per search node; the wall clock is polled
/// every 64 ticks, the node budget and the cancellation token on every
/// tick. Copies share the tick counter and the deadline (det-k's parallel
/// workers draw from one global budget), while the sticky `exceeded` state
/// is per-copy so each worker stops itself exactly once.
class SearchBudget {
 public:
  explicit SearchBudget(const SearchOptions& opts)
      : deadline_(opts.time_limit_seconds),
        max_nodes_(opts.max_nodes),
        cancel_(opts.cancel),
        ticks_(std::make_shared<std::atomic<long>>(0)) {}

  /// Counts one unit of work; returns true once the budget is exhausted.
  bool Tick() {
    if (exceeded_) return true;
    long t = ticks_->fetch_add(1, std::memory_order_relaxed) + 1;
    CancelPollMetric().Increment();
    if (max_nodes_ > 0 && t >= max_nodes_) {
      exceeded_ = true;
    } else if ((t & 63) == 0 && deadline_.Expired()) {
      exceeded_ = true;
    } else if (cancel_.Cancelled()) {
      exceeded_ = true;
    }
    return exceeded_;
  }

  /// Node budget expressed against an externally maintained count (A*
  /// bounds *stored* states, not expanded ones). Also polls the deadline
  /// and the cancellation token. Sticky like Tick().
  bool ExceedsNodeBudget(long count) {
    if (exceeded_) return true;
    CancelPollMetric().Increment();
    if (max_nodes_ > 0 && count > max_nodes_) exceeded_ = true;
    if (cancel_.Cancelled()) exceeded_ = true;
    return exceeded_;
  }

  /// Polls only the wall clock / cancellation (for loops that tick
  /// elsewhere).
  bool PollDeadline() {
    if (exceeded_) return true;
    CancelPollMetric().Increment();
    if (deadline_.Expired() || cancel_.Cancelled()) exceeded_ = true;
    return exceeded_;
  }

  bool Exceeded() const { return exceeded_; }
  void MarkExceeded() { exceeded_ = true; }
  long ticks() const { return ticks_->load(std::memory_order_relaxed); }
  double ElapsedSeconds() const { return deadline_.ElapsedSeconds(); }

 private:
  Deadline deadline_;
  long max_nodes_;
  CancellationToken cancel_;
  std::shared_ptr<std::atomic<long>> ticks_;
  bool exceeded_ = false;
};

}  // namespace hypertree

#endif  // HYPERTREE_TD_EXACT_H_
