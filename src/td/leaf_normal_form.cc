#include "td/leaf_normal_form.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace hypertree {

namespace {

// Mutable working copy of a decomposition tree.
struct WorkTree {
  std::vector<Bitset> bags;
  std::vector<std::vector<int>> adj;
  std::vector<bool> alive;
  std::vector<bool> mapped;  // is a leaf introduced for a hyperedge

  int AddNode(const Bitset& bag) {
    bags.push_back(bag);
    adj.emplace_back();
    alive.push_back(true);
    mapped.push_back(false);
    return static_cast<int>(bags.size()) - 1;
  }

  void AddEdge(int a, int b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }

  int LiveDegree(int p) const {
    int d = 0;
    for (int q : adj[p])
      if (alive[q]) ++d;
    return d;
  }
};

}  // namespace

LeafNormalForm TransformLeafNormalForm(const Hypergraph& h,
                                       const TreeDecomposition& td) {
  int n = h.NumVertices();
  HT_CHECK(td.NumGraphVertices() == n);
  WorkTree wt;
  for (int p = 0; p < td.NumNodes(); ++p) wt.AddNode(td.Bag(p));
  for (auto [a, b] : td.TreeEdges()) wt.AddEdge(a, b);

  // Step 2: one fresh leaf per hyperedge, attached to a covering node of
  // the *original* decomposition.
  std::vector<int> leaf_of_edge(h.NumEdges(), -1);
  int original_nodes = td.NumNodes();
  for (int e = 0; e < h.NumEdges(); ++e) {
    int host = -1;
    for (int p = 0; p < original_nodes; ++p) {
      if (h.EdgeBits(e).IsSubsetOf(wt.bags[p])) {
        host = p;
        break;
      }
    }
    HT_CHECK_MSG(host >= 0, "input is not a tree decomposition of h");
    Bitset bag(n);
    bag |= h.EdgeBits(e);
    int leaf = wt.AddNode(bag);
    wt.mapped[leaf] = true;
    wt.AddEdge(leaf, host);
    leaf_of_edge[e] = leaf;
  }

  // Step 3: iteratively delete unmapped leaves.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t p = 0; p < wt.bags.size(); ++p) {
      if (!wt.alive[p] || wt.mapped[p]) continue;
      if (wt.LiveDegree(static_cast<int>(p)) <= 1 &&
          static_cast<int>(wt.bags.size()) > 1) {
        // Keep at least one node alive overall.
        int live = 0;
        for (bool a : wt.alive)
          if (a) ++live;
        if (live > 1) {
          wt.alive[p] = false;
          changed = true;
        }
      }
    }
  }

  // Root the surviving tree at the leaf of hyperedge 0 (arbitrary).
  int root = leaf_of_edge.empty() ? 0 : leaf_of_edge[0];
  int total = static_cast<int>(wt.bags.size());
  std::vector<int> parent(total, -1), depth(total, 0), bfs;
  bfs.push_back(root);
  std::vector<bool> seen(total, false);
  seen[root] = true;
  for (size_t i = 0; i < bfs.size(); ++i) {
    int p = bfs[i];
    for (int q : wt.adj[p]) {
      if (wt.alive[q] && !seen[q]) {
        seen[q] = true;
        parent[q] = p;
        depth[q] = depth[p] + 1;
        bfs.push_back(q);
      }
    }
  }

  // Step 4: shrink inner labels. For each vertex Y, count mapped leaves
  // containing Y inside each subtree; an inner node keeps Y iff at least
  // two "directions" (child subtrees or the up-side) contain such leaves.
  // Process nodes bottom-up using the BFS order reversed.
  for (int y = 0; y < n; ++y) {
    std::vector<int> cnt(total, 0);
    int total_leaves = 0;
    for (int e : h.IncidentEdges(y)) {
      ++cnt[leaf_of_edge[e]];
      ++total_leaves;
    }
    for (size_t i = bfs.size(); i-- > 0;) {
      int p = bfs[i];
      if (parent[p] != -1) cnt[parent[p]] += cnt[p];
    }
    for (int p : bfs) {
      if (wt.mapped[p]) continue;  // leaves keep their labels
      if (!wt.bags[p].Test(y)) continue;
      int directions = (total_leaves - cnt[p] >= 1) ? 1 : 0;
      for (int q : wt.adj[p]) {
        if (wt.alive[q] && parent[q] == p && cnt[q] >= 1) ++directions;
        if (directions >= 2) break;
      }
      if (directions < 2) wt.bags[p].Reset(y);
    }
  }

  // Rebuild a compact TreeDecomposition over the alive nodes.
  LeafNormalForm out{TreeDecomposition(n), 0, {}, {}, {}};
  std::vector<int> new_id(total, -1);
  for (int p : bfs) new_id[p] = out.td.AddNode(wt.bags[p]);
  for (int p : bfs) {
    if (parent[p] != -1) out.td.AddTreeEdge(new_id[p], new_id[parent[p]]);
  }
  out.root = new_id[root];
  out.leaf_of_edge.resize(h.NumEdges());
  for (int e = 0; e < h.NumEdges(); ++e)
    out.leaf_of_edge[e] = new_id[leaf_of_edge[e]];
  out.parent.assign(out.td.NumNodes(), -1);
  out.depth.assign(out.td.NumNodes(), 0);
  for (int p : bfs) {
    if (parent[p] != -1) {
      out.parent[new_id[p]] = new_id[parent[p]];
      out.depth[new_id[p]] = depth[p];
    }
  }
  return out;
}

bool IsLeafNormalForm(const Hypergraph& h, const LeafNormalForm& lnf) {
  const TreeDecomposition& td = lnf.td;
  int m = td.NumNodes();
  // Leaves are exactly the mapped nodes, with bags equal to hyperedges.
  std::vector<bool> is_mapped(m, false);
  for (int e = 0; e < h.NumEdges(); ++e) {
    int leaf = lnf.leaf_of_edge[e];
    if (leaf < 0 || leaf >= m) return false;
    if (is_mapped[leaf]) return false;  // not one-to-one
    is_mapped[leaf] = true;
    Bitset expected(td.NumGraphVertices());
    expected |= h.EdgeBits(e);
    if (td.Bag(leaf) != expected) return false;
  }
  for (int p = 0; p < m; ++p) {
    bool is_leaf =
        td.TreeNeighbors(p).size() <= 1 && m > 1;  // degree-1 node in tree
    if (m == 1) is_leaf = true;
    if (is_leaf != is_mapped[p]) return false;
  }
  // Inner labels: Y present iff >= 2 directions hold mapped leaves with Y.
  for (int p = 0; p < m; ++p) {
    if (is_mapped[p]) continue;
    for (int y = 0; y < td.NumGraphVertices(); ++y) {
      // Count directions with a leaf containing y.
      int directions = 0;
      for (int q : td.TreeNeighbors(p)) {
        // BFS into the q-side of the tree, counting mapped leaves with y.
        std::vector<int> stack = {q};
        std::vector<bool> seen(m, false);
        seen[p] = true;
        seen[q] = true;
        bool found = false;
        while (!stack.empty() && !found) {
          int x = stack.back();
          stack.pop_back();
          if (is_mapped[x] && td.Bag(x).Test(y)) found = true;
          for (int w : td.TreeNeighbors(x)) {
            if (!seen[w]) {
              seen[w] = true;
              stack.push_back(w);
            }
          }
        }
        if (found) ++directions;
      }
      bool should_have = directions >= 2;
      if (td.Bag(p).Test(y) != should_have) return false;
    }
  }
  return true;
}

EliminationOrdering OrderingFromLeafNormalForm(const Hypergraph& h,
                                               const LeafNormalForm& lnf) {
  int n = h.NumVertices();
  // dca(v): deepest common ancestor of the leaves containing v.
  auto lift = [&lnf](int a, int b) {
    while (a != b) {
      if (lnf.depth[a] < lnf.depth[b]) std::swap(a, b);
      a = lnf.parent[a];
      HT_CHECK(a != -1 || lnf.depth[b] == 0);
      if (a == -1) return lnf.root;
    }
    return a;
  };
  std::vector<int> dca_depth(n, 0);
  for (int v = 0; v < n; ++v) {
    const std::vector<int>& edges = h.IncidentEdges(v);
    HT_CHECK_MSG(!edges.empty(), "vertex %d occurs in no hyperedge", v);
    int dca = lnf.leaf_of_edge[edges[0]];
    for (size_t i = 1; i < edges.size(); ++i) {
      dca = lift(dca, lnf.leaf_of_edge[edges[i]]);
    }
    dca_depth[v] = lnf.depth[dca];
  }
  EliminationOrdering sigma(n);
  std::iota(sigma.begin(), sigma.end(), 0);
  std::stable_sort(sigma.begin(), sigma.end(), [&dca_depth](int a, int b) {
    return dca_depth[a] < dca_depth[b];
  });
  return sigma;
}

EliminationOrdering OrderingFromTreeDecomposition(const Hypergraph& h,
                                                  const TreeDecomposition& td) {
  LeafNormalForm lnf = TransformLeafNormalForm(h, td);
  return OrderingFromLeafNormalForm(h, lnf);
}

}  // namespace hypertree
