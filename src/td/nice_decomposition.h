// Nice tree decompositions: the normalized form used by dynamic
// programming over decompositions. Every node is one of
//   leaf       — empty bag,
//   introduce  — child bag plus one vertex,
//   forget     — child bag minus one vertex,
//   join       — two children with identical bags,
// and the root has an empty bag. Any tree decomposition converts into a
// nice one of the same width with O(width * nodes) nodes.
//
// The module also ships a classic consumer: maximum-independent-set DP in
// time O(2^w poly) — the "answer" a treewidth decomposition buys you for
// graph problems, mirroring what Yannakakis buys for queries.

#ifndef HYPERTREE_TD_NICE_DECOMPOSITION_H_
#define HYPERTREE_TD_NICE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "td/tree_decomposition.h"

namespace hypertree {

/// Node kinds of a nice tree decomposition.
enum class NiceNodeType { kLeaf, kIntroduce, kForget, kJoin };

/// A rooted nice tree decomposition.
class NiceTreeDecomposition {
 public:
  struct Node {
    NiceNodeType type;
    Bitset bag;
    int vertex = -1;            // introduced/forgotten vertex
    std::vector<int> children;  // 0 (leaf), 1 (intro/forget) or 2 (join)
  };

  explicit NiceTreeDecomposition(int num_vertices) : n_(num_vertices) {}

  int NumGraphVertices() const { return n_; }
  int NumNodes() const { return static_cast<int>(nodes_.size()); }
  int root() const { return root_; }
  const Node& GetNode(int i) const { return nodes_[i]; }

  /// Width (max bag size - 1).
  int Width() const;

  /// Structural validation: node-type constraints, empty root bag, and the
  /// tree-decomposition conditions against `g`.
  bool IsValidFor(const Graph& g, std::string* why = nullptr) const;

  /// Construction API (used by MakeNice).
  int AddNode(Node node);
  void SetRoot(int r) { root_ = r; }

 private:
  int n_;
  int root_ = -1;
  std::vector<Node> nodes_;
};

/// Converts any valid tree decomposition into a nice one of equal width.
NiceTreeDecomposition MakeNice(const TreeDecomposition& td);

/// Maximum independent set size of `g` by DP over a nice decomposition of
/// it; runtime O(2^w * nodes). `witness` (optional) receives one maximum
/// independent set.
int MaxIndependentSet(const Graph& g, const NiceTreeDecomposition& nice,
                      std::vector<int>* witness = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_TD_NICE_DECOMPOSITION_H_
