#include "td/astar.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "bounds/lower_bounds.h"
#include "graph/elimination_graph.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hypertree {

namespace {

metrics::Counter& PoppedMetric() {
  static metrics::Counter& c = metrics::GetCounter("astar_tw.popped");
  return c;
}

struct State {
  Bitset eliminated;
  int parent = -1;  // arena index
  int vertex = -1;  // vertex eliminated to reach this state
  int g = 0;
  int f = 0;
  int depth = 0;
};

struct QueueEntry {
  int f;
  int depth;
  long order;  // FIFO tie-break for determinism
  int index;
  bool operator<(const QueueEntry& o) const {
    // priority_queue is a max-heap; we want the smallest f first and,
    // among equals, the deepest state (thesis §5.3).
    if (f != o.f) return f > o.f;
    if (depth != o.depth) return depth < o.depth;
    return order > o.order;
  }
};

}  // namespace

WidthResult AStarTreewidth(const Graph& g, const SearchOptions& options) {
  Timer timer;
  WidthResult res;
  int n = g.NumVertices();
  Rng rng(options.seed);
  Deadline deadline(options.time_limit_seconds);

  int lb = n == 0 ? 0 : TreewidthLowerBound(g, &rng);
  EliminationOrdering greedy =
      n == 0 ? EliminationOrdering{} : MinFillOrdering(g, &rng);
  int ub = n == 0 ? 0 : EvaluateOrderingWidth(g, greedy);
  if (options.initial_upper_bound > 0)
    ub = std::min(ub, options.initial_upper_bound);
  res.best_ordering = greedy;
  if (lb >= ub || n == 0) {
    res.lower_bound = res.upper_bound = ub;
    res.exact = true;
    res.seconds = timer.ElapsedSeconds();
    return res;
  }

  std::vector<State> arena;
  std::priority_queue<QueueEntry> open;
  std::unordered_map<Bitset, int> best_g;  // eliminated set -> smallest g
  long push_order = 0;

  State root;
  root.eliminated = Bitset(n);
  root.g = 0;
  root.f = lb;
  arena.push_back(root);
  open.push({lb, 0, push_order++, 0});
  if (options.use_duplicate_detection) best_g[root.eliminated] = 0;

  long popped = 0;
  bool aborted = false;
  int best_f_seen = lb;
  int goal = -1;

  EliminationGraph eg(g);
  auto rebuild = [&eg, n](const Bitset& eliminated) {
    while (eg.UndoDepth() > 0) eg.UndoElimination();
    (void)n;
    for (int v = eliminated.First(); v >= 0; v = eliminated.Next(v)) {
      eg.Eliminate(v);
    }
  };

  while (!open.empty()) {
    CancelPollMetric().Increment();
    if (options.cancel.Cancelled() ||
        ((popped & 63) == 0 && deadline.Expired())) {
      aborted = true;
      break;
    }
    if (options.max_nodes > 0 &&
        static_cast<long>(arena.size()) > options.max_nodes) {
      aborted = true;
      break;
    }
    QueueEntry top = open.top();
    open.pop();
    const State& s = arena[top.index];
    if (top.f != s.f || (options.use_duplicate_detection &&
                         best_g[s.eliminated] < s.g)) {
      continue;  // stale entry
    }
    ++popped;
    PoppedMetric().Increment();
    best_f_seen = std::max(best_f_seen, s.f);
    rebuild(s.eliminated);
    int remaining = eg.NumActive();
    if (s.g >= remaining - 1) {
      goal = top.index;
      break;
    }
    // Simplicial reduction: a simplicial / strongly almost simplicial
    // vertex may be eliminated next without loss of optimality.
    std::vector<int> children;
    if (options.use_simplicial_reduction) {
      for (int v = eg.ActiveBits().First(); v >= 0;
           v = eg.ActiveBits().Next(v)) {
        if (eg.IsSimplicial(v) ||
            (eg.Degree(v) <= s.f && eg.IsAlmostSimplicial(v, nullptr))) {
          children.push_back(v);
          break;
        }
      }
    }
    if (children.empty()) children = eg.ActiveBits().ToVector();

    int parent_index = top.index;
    int parent_g = s.g;
    int parent_f = s.f;
    Bitset parent_set = s.eliminated;  // copy: arena may reallocate below
    int parent_depth = s.depth;
    for (int v : children) {
      CancelPollMetric().Increment();
      if (options.cancel.Cancelled()) {
        aborted = true;
        break;
      }
      int d = eg.Degree(v);
      int child_g = std::max(parent_g, d);
      if (child_g >= ub) continue;
      eg.Eliminate(v);
      int h = MinorMinWidthLowerBound(eg, &rng);
      eg.UndoElimination();
      int f = std::max({child_g, h, parent_f});
      if (f >= ub) continue;
      Bitset child_set = parent_set;
      child_set.Set(v);
      if (options.use_duplicate_detection) {
        auto it = best_g.find(child_set);
        if (it != best_g.end() && it->second <= child_g) continue;
        best_g[child_set] = child_g;
      }
      State t;
      t.eliminated = std::move(child_set);
      t.parent = parent_index;
      t.vertex = v;
      t.g = child_g;
      t.f = f;
      t.depth = parent_depth + 1;
      arena.push_back(std::move(t));
      open.push({f, parent_depth + 1, push_order++,
                 static_cast<int>(arena.size()) - 1});
    }
  }

  res.nodes = popped;
  res.seconds = timer.ElapsedSeconds();
  if (goal >= 0) {
    // Reconstruct ordering: path suffix + arbitrary completion.
    EliminationOrdering sigma(n);
    std::vector<bool> used(n, false);
    std::vector<int> path;
    for (int i = goal; arena[i].parent != -1; i = arena[i].parent) {
      path.push_back(arena[i].vertex);
    }
    std::reverse(path.begin(), path.end());  // elimination order
    int pos = n - 1;
    for (int v : path) {
      sigma[pos--] = v;
      used[v] = true;
    }
    for (int v = 0; v < n; ++v) {
      if (!used[v]) sigma[pos--] = v;
    }
    res.best_ordering = sigma;
    res.upper_bound = arena[goal].g;
    res.lower_bound = arena[goal].g;
    res.exact = true;
  } else if (aborted) {
    res.upper_bound = ub;
    res.lower_bound = best_f_seen;
    res.exact = res.lower_bound >= res.upper_bound;
  } else {
    // Open list exhausted: every state with f < ub was visited, so the
    // greedy upper bound is the treewidth.
    res.upper_bound = ub;
    res.lower_bound = ub;
    res.exact = true;
  }
  return res;
}

}  // namespace hypertree
