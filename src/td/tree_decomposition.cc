#include "td/tree_decomposition.h"

#include <algorithm>
#include <functional>

#include "util/check.h"

namespace hypertree {

int TreeDecomposition::AddNode(const Bitset& bag) {
  HT_CHECK(bag.size() == n_);
  int id = static_cast<int>(bags_.size());
  bags_.push_back(bag);
  tree_adj_.emplace_back();
  return id;
}

void TreeDecomposition::AddTreeEdge(int a, int b) {
  HT_CHECK(a >= 0 && a < NumNodes() && b >= 0 && b < NumNodes() && a != b);
  tree_adj_[a].push_back(b);
  tree_adj_[b].push_back(a);
  edges_.emplace_back(std::min(a, b), std::max(a, b));
}

int TreeDecomposition::Width() const {
  int w = -1;
  for (const Bitset& bag : bags_) w = std::max(w, bag.Count() - 1);
  return w;
}

bool TreeDecomposition::CheckTreeAndConnectedness(std::string* why) const {
  int m = NumNodes();
  if (m == 0) {
    if (why != nullptr) *why = "no nodes";
    return n_ == 0;
  }
  // Tree shape: connected with exactly m-1 edges.
  if (static_cast<int>(edges_.size()) != m - 1) {
    if (why != nullptr) *why = "edge count != nodes - 1";
    return false;
  }
  std::vector<bool> seen(m, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int reached = 1;
  while (!stack.empty()) {
    int p = stack.back();
    stack.pop_back();
    for (int q : tree_adj_[p]) {
      if (!seen[q]) {
        seen[q] = true;
        ++reached;
        stack.push_back(q);
      }
    }
  }
  if (reached != m) {
    if (why != nullptr) *why = "decomposition tree is disconnected";
    return false;
  }
  // Connectedness condition: for each graph vertex, the nodes whose bags
  // contain it induce a connected subtree; in a tree this is equivalent to
  // (#nodes containing v) - 1 == #tree edges with both endpoints
  // containing v.
  for (int v = 0; v < n_; ++v) {
    int nodes = 0;
    for (const Bitset& bag : bags_) {
      if (bag.Test(v)) ++nodes;
    }
    if (nodes == 0) {
      if (why != nullptr)
        *why = "vertex " + std::to_string(v) + " appears in no bag";
      return false;
    }
    int links = 0;
    for (auto [a, b] : edges_) {
      if (bags_[a].Test(v) && bags_[b].Test(v)) ++links;
    }
    if (links != nodes - 1) {
      if (why != nullptr)
        *why = "vertex " + std::to_string(v) + " violates connectedness";
      return false;
    }
  }
  return true;
}

bool TreeDecomposition::IsValidFor(const Graph& g, std::string* why) const {
  HT_CHECK(g.NumVertices() == n_);
  for (auto [u, v] : g.Edges()) {
    bool covered = false;
    for (const Bitset& bag : bags_) {
      if (bag.Test(u) && bag.Test(v)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      if (why != nullptr)
        *why = "edge {" + std::to_string(u) + "," + std::to_string(v) +
               "} not inside any bag";
      return false;
    }
  }
  return CheckTreeAndConnectedness(why);
}

bool TreeDecomposition::IsValidForHypergraph(const Hypergraph& h,
                                             std::string* why) const {
  HT_CHECK(h.NumVertices() == n_);
  for (int e = 0; e < h.NumEdges(); ++e) {
    bool covered = false;
    for (const Bitset& bag : bags_) {
      if (h.EdgeBits(e).IsSubsetOf(bag)) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      if (why != nullptr) *why = "hyperedge " + h.EdgeName(e) + " not covered";
      return false;
    }
  }
  return CheckTreeAndConnectedness(why);
}

TreeDecomposition TreeDecompositionFromEliminationTree(
    const EliminationTree& t) {
  int n = static_cast<int>(t.bags.size());
  TreeDecomposition td(n);
  for (int v = 0; v < n; ++v) td.AddNode(t.bags[v]);
  // Connect each bucket to its parent bucket; buckets without parents are
  // roots of their connected components. Stitch components into one tree
  // (bags of different components share no vertices, so stitching cannot
  // break connectedness).
  int first_root = -1;
  for (int v = 0; v < n; ++v) {
    if (t.parent[v] != -1) {
      td.AddTreeEdge(v, t.parent[v]);
    } else if (first_root == -1) {
      first_root = v;
    } else {
      td.AddTreeEdge(v, first_root);
    }
  }
  return td;
}

TreeDecomposition TreeDecompositionFromOrdering(
    const Graph& g, const EliminationOrdering& sigma) {
  return TreeDecompositionFromEliminationTree(BucketEliminate(g, sigma));
}

TreeDecomposition SimplifyTreeDecomposition(const TreeDecomposition& td) {
  int m = td.NumNodes();
  if (m == 0) return td;
  // Union-find of merged nodes; the representative keeps its bag (merges
  // only happen into supersets, so representatives' bags never change).
  std::vector<int> rep(m);
  for (int i = 0; i < m; ++i) rep[i] = i;
  std::function<int(int)> find = [&rep, &find](int x) {
    return rep[x] == x ? x : rep[x] = find(rep[x]);
  };
  // Work on a mutable edge list; merging a-b replaces a by b everywhere.
  std::vector<std::pair<int, int>> edges = td.TreeEdges();
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [a, b] : edges) {
      int ra = find(a), rb = find(b);
      if (ra == rb) continue;
      if (td.Bag(ra).IsSubsetOf(td.Bag(rb))) {
        rep[ra] = rb;
        changed = true;
      } else if (td.Bag(rb).IsSubsetOf(td.Bag(ra))) {
        rep[rb] = ra;
        changed = true;
      }
    }
  }
  // Renumber surviving representatives and rebuild.
  std::vector<int> new_id(m, -1);
  TreeDecomposition out(td.NumGraphVertices());
  for (int i = 0; i < m; ++i) {
    if (find(i) == i) new_id[i] = out.AddNode(td.Bag(i));
  }
  for (auto [a, b] : edges) {
    int ra = find(a), rb = find(b);
    if (ra != rb) out.AddTreeEdge(new_id[ra], new_id[rb]);
  }
  return out;
}

}  // namespace hypertree
