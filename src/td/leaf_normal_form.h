// The leaf normal form for tree decompositions (thesis ch. 3).
//
// A tree decomposition of a hypergraph is in leaf normal form when its
// leaves are exactly the hyperedges (chi(leaf(h)) = h) and every inner bag
// contains a vertex only if it lies on a path between two leaves holding
// that vertex. Theorem 1: every tree decomposition can be transformed into
// this form without growing any bag, and Lemma 13 then extracts an
// elimination ordering whose bucket-elimination bags stay inside the
// original bags — the key step in proving that elimination orderings are a
// complete search space for generalized hypertree width (Theorems 2/3).

#ifndef HYPERTREE_TD_LEAF_NORMAL_FORM_H_
#define HYPERTREE_TD_LEAF_NORMAL_FORM_H_

#include <vector>

#include "hypergraph/hypergraph.h"
#include "ordering/ordering.h"
#include "td/tree_decomposition.h"

namespace hypertree {

/// Result of the leaf normal form transformation.
struct LeafNormalForm {
  TreeDecomposition td;          // the transformed decomposition
  int root = 0;                  // root node used for depths
  std::vector<int> leaf_of_edge; // node id of leaf(h) per hyperedge
  std::vector<int> parent;       // parent per node (-1 at root)
  std::vector<int> depth;        // node depth from root
};

/// Algorithm Transform Leaf Normal Form (thesis Figure 3.1). `td` must be
/// a valid tree decomposition of `h`. Every output bag is a subset of some
/// input bag (Theorem 1).
LeafNormalForm TransformLeafNormalForm(const Hypergraph& h,
                                       const TreeDecomposition& td);

/// True if `td` satisfies the leaf-normal-form conditions for `h` with the
/// given hyperedge->leaf mapping.
bool IsLeafNormalForm(const Hypergraph& h, const LeafNormalForm& lnf);

/// Derives an elimination ordering from a leaf normal form by sorting
/// vertices by the depth of the deepest common ancestor of the leaves
/// containing them (Lemma 13 / Figure 3.5); bucket-eliminating the result
/// yields bags contained in the original decomposition's bags.
EliminationOrdering OrderingFromLeafNormalForm(const Hypergraph& h,
                                               const LeafNormalForm& lnf);

/// Convenience: the full pipeline of ch. 3 — given any tree decomposition
/// of `h`, returns an ordering sigma with width(sigma, primal) bags inside
/// the original bags (used to realize Theorem 2: ghw is reachable through
/// orderings).
EliminationOrdering OrderingFromTreeDecomposition(const Hypergraph& h,
                                                  const TreeDecomposition& td);

}  // namespace hypertree

#endif  // HYPERTREE_TD_LEAF_NORMAL_FORM_H_
