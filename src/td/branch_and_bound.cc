#include "td/branch_and_bound.h"

#include <algorithm>

#include "bounds/lower_bounds.h"
#include "graph/elimination_graph.h"
#include "ordering/evaluator.h"
#include "ordering/heuristics.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hypertree {

namespace {

metrics::Counter& NodesMetric() {
  static metrics::Counter& c = metrics::GetCounter("bb_tw.nodes");
  return c;
}

class BbSearch {
 public:
  BbSearch(const Graph& g, const SearchOptions& opts)
      : g_(g),
        opts_(opts),
        rng_(opts.seed),
        deadline_(opts.time_limit_seconds),
        eg_(g),
        n_(g.NumVertices()) {}

  WidthResult Run() {
    WidthResult res;
    Timer timer;
    // Initial bounds.
    int lb = n_ == 0 ? 0 : TreewidthLowerBound(g_, &rng_);
    EliminationOrdering greedy = MinFillOrdering(g_, &rng_);
    int greedy_width = n_ == 0 ? 0 : EvaluateOrderingWidth(g_, greedy);
    ub_ = greedy_width;
    best_ = greedy;
    if (opts_.initial_upper_bound > 0 && opts_.initial_upper_bound < ub_) {
      ub_ = opts_.initial_upper_bound;
    }
    if (n_ > 0 && lb < ub_) {
      suffix_.clear();
      Dfs(/*g_val=*/0, /*f_parent=*/lb, /*prev_vertex=*/-1,
          /*prev_nb=*/Bitset(n_), /*parent_free=*/false);
    }
    res.upper_bound = ub_;
    res.exact = !aborted_;
    res.lower_bound = res.exact ? ub_ : lb;
    res.nodes = nodes_;
    res.seconds = timer.ElapsedSeconds();
    res.best_ordering = best_;
    return res;
  }

 private:
  // Builds a full ordering: the current suffix occupies the back positions
  // (eliminated first), remaining vertices fill the front arbitrarily.
  EliminationOrdering BuildOrdering() const {
    EliminationOrdering sigma(n_);
    std::vector<bool> used(n_, false);
    int pos = n_ - 1;
    for (int v : suffix_) {
      sigma[pos--] = v;
      used[v] = true;
    }
    for (int v = 0; v < n_; ++v) {
      if (!used[v]) sigma[pos--] = v;
    }
    return sigma;
  }

  bool BudgetExceeded() {
    if (aborted_) return true;
    CancelPollMetric().Increment();
    if (opts_.cancel.Cancelled()) aborted_ = true;
    if (opts_.max_nodes > 0 && nodes_ >= opts_.max_nodes) aborted_ = true;
    if ((nodes_ & 255) == 0 && deadline_.Expired()) aborted_ = true;
    return aborted_;
  }

  void Dfs(int g_val, int f_parent, int prev_vertex, const Bitset& prev_nb,
           bool parent_free) {
    if (BudgetExceeded()) return;
    ++nodes_;
    NodesMetric().Increment();
    int remaining = eg_.NumActive();
    if (remaining == 0) {
      if (g_val < ub_) {
        ub_ = g_val;
        best_ = BuildOrdering();
      }
      return;
    }
    // PR1: any completion has width at most max(g, remaining - 1).
    int w = std::max(g_val, remaining - 1);
    if (w < ub_) {
      ub_ = w;
      best_ = BuildOrdering();
    }
    if (remaining - 1 <= g_val) return;  // cannot beat g_val below here

    // Remaining-graph lower bound.
    int h = MinorMinWidthLowerBound(eg_, &rng_);
    int f = std::max({g_val, h, f_parent});
    if (f >= ub_) return;

    // Reduction: a simplicial (or strongly almost simplicial) vertex can
    // be eliminated next without loss of optimality.
    int forced = -1;
    if (opts_.use_simplicial_reduction) {
      for (int v = eg_.ActiveBits().First(); v >= 0;
           v = eg_.ActiveBits().Next(v)) {
        if (eg_.IsSimplicial(v) ||
            (eg_.Degree(v) <= f && eg_.IsAlmostSimplicial(v, nullptr))) {
          forced = v;
          break;
        }
      }
    }

    std::vector<int> children;
    if (forced >= 0) {
      children.push_back(forced);
    } else {
      children = eg_.ActiveBits().ToVector();
      std::vector<int> deg(children.size());
      for (size_t i = 0; i < children.size(); ++i)
        deg[i] = eg_.Degree(children[i]);
      std::vector<int> idx(children.size());
      for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
      std::stable_sort(idx.begin(), idx.end(),
                       [&deg](int a, int b) { return deg[a] < deg[b]; });
      std::vector<int> sorted;
      sorted.reserve(children.size());
      for (int i : idx) sorted.push_back(children[i]);
      children = std::move(sorted);
    }

    for (int v : children) {
      // PR2 (swap symmetry, non-adjacent case): if the previous step
      // eliminated u with u and v non-adjacent at that time, orderings
      // "..., u, v" and "..., v, u" have equal width; keep only the one
      // eliminating the smaller id first.
      if (opts_.use_pr2 && forced < 0 && parent_free && prev_vertex >= 0 &&
          v < prev_vertex && !prev_nb.Test(v)) {
        continue;
      }
      int d = eg_.Degree(v);
      if (std::max(g_val, d) >= ub_) continue;
      Bitset nb = eg_.NeighborBits(v);
      suffix_.push_back(v);
      eg_.Eliminate(v);
      Dfs(std::max(g_val, d), f, v, nb, forced < 0);
      eg_.UndoElimination();
      suffix_.pop_back();
      if (aborted_) return;
    }
  }

  const Graph& g_;
  SearchOptions opts_;
  Rng rng_;
  Deadline deadline_;
  EliminationGraph eg_;
  int n_;
  int ub_ = 0;
  EliminationOrdering best_;
  std::vector<int> suffix_;
  long nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

WidthResult BranchAndBoundTreewidth(const Graph& g,
                                    const SearchOptions& options) {
  return BbSearch(g, options).Run();
}

}  // namespace hypertree
