#include "td/nice_decomposition.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace hypertree {

int NiceTreeDecomposition::Width() const {
  int w = -1;
  for (const Node& node : nodes_) w = std::max(w, node.bag.Count() - 1);
  return w;
}

int NiceTreeDecomposition::AddNode(Node node) {
  HT_CHECK(node.bag.size() == n_);
  nodes_.push_back(std::move(node));
  return NumNodes() - 1;
}

bool NiceTreeDecomposition::IsValidFor(const Graph& g,
                                       std::string* why) const {
  auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (root_ < 0 || root_ >= NumNodes()) return fail("missing root");
  if (nodes_[root_].bag.Any()) return fail("root bag not empty");
  // Node-type structure.
  for (int i = 0; i < NumNodes(); ++i) {
    const Node& node = nodes_[i];
    switch (node.type) {
      case NiceNodeType::kLeaf:
        if (!node.children.empty() || node.bag.Any())
          return fail("bad leaf node " + std::to_string(i));
        break;
      case NiceNodeType::kIntroduce: {
        if (node.children.size() != 1 || node.vertex < 0)
          return fail("bad introduce node " + std::to_string(i));
        Bitset expected = nodes_[node.children[0]].bag;
        if (expected.Test(node.vertex))
          return fail("introduce of present vertex at " + std::to_string(i));
        expected.Set(node.vertex);
        if (node.bag != expected)
          return fail("introduce bag mismatch at " + std::to_string(i));
        break;
      }
      case NiceNodeType::kForget: {
        if (node.children.size() != 1 || node.vertex < 0)
          return fail("bad forget node " + std::to_string(i));
        Bitset expected = nodes_[node.children[0]].bag;
        if (!expected.Test(node.vertex))
          return fail("forget of absent vertex at " + std::to_string(i));
        expected.Reset(node.vertex);
        if (node.bag != expected)
          return fail("forget bag mismatch at " + std::to_string(i));
        break;
      }
      case NiceNodeType::kJoin:
        if (node.children.size() != 2 ||
            nodes_[node.children[0]].bag != node.bag ||
            nodes_[node.children[1]].bag != node.bag)
          return fail("bad join node " + std::to_string(i));
        break;
    }
  }
  // Wrap into a TreeDecomposition for the generic condition checks.
  TreeDecomposition td(n_);
  for (int i = 0; i < NumNodes(); ++i) td.AddNode(nodes_[i].bag);
  for (int i = 0; i < NumNodes(); ++i) {
    for (int c : nodes_[i].children) td.AddTreeEdge(i, c);
  }
  return td.IsValidFor(g, why);
}

namespace {

class NiceBuilder {
 public:
  explicit NiceBuilder(const TreeDecomposition& td)
      : td_(td), n_(td.NumGraphVertices()), nice_(td.NumGraphVertices()) {}

  NiceTreeDecomposition Build() {
    if (td_.NumNodes() == 0) {
      int leaf = nice_.AddNode(
          {NiceNodeType::kLeaf, Bitset(n_), -1, {}});
      nice_.SetRoot(leaf);
      return std::move(nice_);
    }
    // Root the decomposition tree at node 0.
    int m = td_.NumNodes();
    parent_.assign(m, -1);
    order_.clear();
    std::vector<bool> seen(m, false);
    order_.push_back(0);
    seen[0] = true;
    for (size_t i = 0; i < order_.size(); ++i) {
      for (int q : td_.TreeNeighbors(order_[i])) {
        if (!seen[q]) {
          seen[q] = true;
          parent_[q] = order_[i];
          order_.push_back(q);
        }
      }
    }
    HT_CHECK_MSG(static_cast<int>(order_.size()) == m,
                 "decomposition tree is disconnected");
    int top = BuildSubtree(0);
    // Forget the top bag down to the empty root.
    Bitset bag = td_.Bag(0);
    int cur = top;
    for (int v = bag.First(); v >= 0; v = bag.Next(v)) {
      Bitset next = nice_.GetNode(cur).bag;
      next.Reset(v);
      cur = nice_.AddNode({NiceNodeType::kForget, next, v, {cur}});
    }
    nice_.SetRoot(cur);
    return std::move(nice_);
  }

 private:
  // Returns a nice node id whose bag equals td.Bag(p).
  int BuildSubtree(int p) {
    std::vector<int> children;
    for (int q : td_.TreeNeighbors(p)) {
      if (parent_[q] == p) children.push_back(q);
    }
    const Bitset& target = td_.Bag(p);
    if (children.empty()) {
      // Leaf: introduce the bag vertex by vertex above an empty leaf.
      int cur = nice_.AddNode({NiceNodeType::kLeaf, Bitset(n_), -1, {}});
      for (int v = target.First(); v >= 0; v = target.Next(v)) {
        Bitset next = nice_.GetNode(cur).bag;
        next.Set(v);
        cur = nice_.AddNode({NiceNodeType::kIntroduce, next, v, {cur}});
      }
      return cur;
    }
    // Morph each child's top bag into target, then join pairwise.
    std::vector<int> tops;
    for (int c : children) {
      int cur = BuildSubtree(c);
      Bitset to_forget = td_.Bag(c) - target;
      for (int v = to_forget.First(); v >= 0; v = to_forget.Next(v)) {
        Bitset next = nice_.GetNode(cur).bag;
        next.Reset(v);
        cur = nice_.AddNode({NiceNodeType::kForget, next, v, {cur}});
      }
      Bitset to_introduce = target - td_.Bag(c);
      for (int v = to_introduce.First(); v >= 0; v = to_introduce.Next(v)) {
        Bitset next = nice_.GetNode(cur).bag;
        next.Set(v);
        cur = nice_.AddNode({NiceNodeType::kIntroduce, next, v, {cur}});
      }
      tops.push_back(cur);
    }
    int combined = tops[0];
    for (size_t i = 1; i < tops.size(); ++i) {
      combined = nice_.AddNode(
          {NiceNodeType::kJoin, target, -1, {combined, tops[i]}});
    }
    return combined;
  }

  const TreeDecomposition& td_;
  int n_;
  NiceTreeDecomposition nice_;
  std::vector<int> parent_;
  std::vector<int> order_;
};

using StateTable = std::unordered_map<Bitset, int>;

}  // namespace

NiceTreeDecomposition MakeNice(const TreeDecomposition& td) {
  return NiceBuilder(td).Build();
}

int MaxIndependentSet(const Graph& g, const NiceTreeDecomposition& nice,
                      std::vector<int>* witness) {
  int m = nice.NumNodes();
  HT_CHECK(m > 0 && g.NumVertices() == nice.NumGraphVertices());
  std::vector<StateTable> tables(m);
  // Post-order: children have larger... children were added before their
  // parents by the builder, so ascending node ids is a valid bottom-up
  // order only for built decompositions; compute a real post-order to be
  // safe with hand-made instances.
  std::vector<int> post;
  {
    std::vector<int> stack = {nice.root()};
    while (!stack.empty()) {
      int p = stack.back();
      stack.pop_back();
      post.push_back(p);
      for (int c : nice.GetNode(p).children) stack.push_back(c);
    }
    std::reverse(post.begin(), post.end());
  }
  int n = g.NumVertices();
  for (int p : post) {
    const NiceTreeDecomposition::Node& node = nice.GetNode(p);
    StateTable& table = tables[p];
    switch (node.type) {
      case NiceNodeType::kLeaf:
        table[Bitset(n)] = 0;
        break;
      case NiceNodeType::kIntroduce: {
        const StateTable& child = tables[node.children[0]];
        int v = node.vertex;
        for (const auto& [set, val] : child) {
          auto it = table.find(set);
          if (it == table.end() || it->second < val) table[set] = val;
          if (!g.NeighborBits(v).Intersects(set)) {
            Bitset with = set;
            with.Set(v);
            auto it2 = table.find(with);
            if (it2 == table.end() || it2->second < val + 1)
              table[with] = val + 1;
          }
        }
        break;
      }
      case NiceNodeType::kForget: {
        const StateTable& child = tables[node.children[0]];
        int v = node.vertex;
        for (const auto& [set, val] : child) {
          Bitset without = set;
          without.Reset(v);
          auto it = table.find(without);
          if (it == table.end() || it->second < val) table[without] = val;
        }
        break;
      }
      case NiceNodeType::kJoin: {
        const StateTable& left = tables[node.children[0]];
        const StateTable& right = tables[node.children[1]];
        for (const auto& [set, lval] : left) {
          auto it = right.find(set);
          if (it != right.end()) {
            table[set] = lval + it->second - set.Count();
          }
        }
        break;
      }
    }
  }
  Bitset empty(n);
  auto it = tables[nice.root()].find(empty);
  HT_CHECK(it != tables[nice.root()].end());
  int best = it->second;

  if (witness != nullptr) {
    witness->clear();
    // Top-down reconstruction: descend with the (set, value) target.
    struct Goal {
      int node;
      Bitset set;
      int value;
    };
    std::vector<Goal> stack = {{nice.root(), empty, best}};
    while (!stack.empty()) {
      Goal goal = stack.back();
      stack.pop_back();
      const NiceTreeDecomposition::Node& node = nice.GetNode(goal.node);
      switch (node.type) {
        case NiceNodeType::kLeaf:
          break;
        case NiceNodeType::kIntroduce: {
          int v = node.vertex;
          if (goal.set.Test(v)) {
            witness->push_back(v);
            Bitset sub = goal.set;
            sub.Reset(v);
            stack.push_back({node.children[0], sub, goal.value - 1});
          } else {
            stack.push_back({node.children[0], goal.set, goal.value});
          }
          break;
        }
        case NiceNodeType::kForget: {
          const StateTable& child = tables[node.children[0]];
          Bitset with = goal.set;
          with.Set(node.vertex);
          auto w = child.find(with);
          if (w != child.end() && w->second == goal.value) {
            stack.push_back({node.children[0], with, goal.value});
          } else {
            stack.push_back({node.children[0], goal.set, goal.value});
          }
          break;
        }
        case NiceNodeType::kJoin: {
          const StateTable& left = tables[node.children[0]];
          const StateTable& right = tables[node.children[1]];
          int lval = left.at(goal.set);
          int rval = right.at(goal.set);
          HT_CHECK(lval + rval - goal.set.Count() == goal.value);
          stack.push_back({node.children[0], goal.set, lval});
          stack.push_back({node.children[1], goal.set, rval});
          break;
        }
      }
    }
    // Vertices inside a join bag are recorded once per branch: dedup.
    std::sort(witness->begin(), witness->end());
    witness->erase(std::unique(witness->begin(), witness->end()),
                   witness->end());
    HT_CHECK(static_cast<int>(witness->size()) == best);
  }
  return best;
}

}  // namespace hypertree
