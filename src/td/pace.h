// PACE 2017 treewidth formats: .gr graphs and .td tree decompositions.
// This is the interchange format of the treewidth OSS ecosystem (htd,
// tamaki, flow-cutter, ...), so decompositions computed here can be
// validated against, and consumed by, those tools.
//
//   .gr :  c comment / p tw <n> <m> / one "<u> <v>" line per edge (1-based)
//   .td :  c comment / s td <bags> <maxbagsize> <n> /
//          b <bagid> <v1> <v2> ... / one "<b1> <b2>" line per tree edge

#ifndef HYPERTREE_TD_PACE_H_
#define HYPERTREE_TD_PACE_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "graph/graph.h"
#include "td/tree_decomposition.h"

namespace hypertree {

/// Parses a PACE .gr graph.
std::optional<Graph> ReadPaceGraph(std::istream& in,
                                   std::string* error = nullptr);

/// Writes `g` in PACE .gr format.
void WritePaceGraph(const Graph& g, std::ostream& out);

/// Parses a PACE .td tree decomposition (for a graph on `num_vertices`).
std::optional<TreeDecomposition> ReadPaceTreeDecomposition(
    std::istream& in, std::string* error = nullptr);

/// Writes `td` in PACE .td format.
void WritePaceTreeDecomposition(const TreeDecomposition& td,
                                std::ostream& out);

}  // namespace hypertree

#endif  // HYPERTREE_TD_PACE_H_
