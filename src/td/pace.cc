#include "td/pace.h"

#include <sstream>

#include "util/stringutil.h"

namespace hypertree {

namespace {
void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}
}  // namespace

std::optional<Graph> ReadPaceGraph(std::istream& in, std::string* error) {
  std::string line;
  std::optional<Graph> g;
  int n = 0;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string s = StripString(line);
    if (s.empty() || s[0] == 'c') continue;
    std::istringstream ls(s);
    if (s[0] == 'p') {
      char p;
      std::string kind;
      long m;
      ls >> p >> kind >> n >> m;
      if (!ls || kind != "tw" || n < 0) {
        SetError(error, "bad problem line at line " + std::to_string(line_no));
        return std::nullopt;
      }
      g.emplace(n);
    } else {
      if (!g.has_value()) {
        SetError(error, "edge before problem line");
        return std::nullopt;
      }
      int u, v;
      ls >> u >> v;
      if (!ls || u < 1 || v < 1 || u > n || v > n) {
        SetError(error, "bad edge at line " + std::to_string(line_no));
        return std::nullopt;
      }
      g->AddEdge(u - 1, v - 1);
    }
  }
  if (!g.has_value()) SetError(error, "missing problem line");
  return g;
}

void WritePaceGraph(const Graph& g, std::ostream& out) {
  out << "c " << (g.name().empty() ? "hypertree" : g.name()) << "\n";
  out << "p tw " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (auto [u, v] : g.Edges()) out << u + 1 << " " << v + 1 << "\n";
}

std::optional<TreeDecomposition> ReadPaceTreeDecomposition(
    std::istream& in, std::string* error) {
  std::string line;
  int bags = 0, n = 0;
  std::optional<TreeDecomposition> td;
  std::vector<bool> seen_bag;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string s = StripString(line);
    if (s.empty() || s[0] == 'c') continue;
    std::istringstream ls(s);
    if (s[0] == 's') {
      char tag;
      std::string kind;
      int maxbag;
      ls >> tag >> kind >> bags >> maxbag >> n;
      if (!ls || kind != "td" || bags < 0 || n < 0) {
        SetError(error, "bad solution line at line " + std::to_string(line_no));
        return std::nullopt;
      }
      td.emplace(n);
      // Pre-create empty bags so tree edges can reference any id.
      for (int b = 0; b < bags; ++b) td->AddNode(Bitset(n));
      seen_bag.assign(bags, false);
    } else if (s[0] == 'b') {
      if (!td.has_value()) {
        SetError(error, "bag before solution line");
        return std::nullopt;
      }
      char tag;
      int id;
      ls >> tag >> id;
      if (!ls || id < 1 || id > bags || seen_bag[id - 1]) {
        SetError(error, "bad bag id at line " + std::to_string(line_no));
        return std::nullopt;
      }
      seen_bag[id - 1] = true;
      int v;
      while (ls >> v) {
        if (v < 1 || v > n) {
          SetError(error, "bag vertex out of range at line " +
                              std::to_string(line_no));
          return std::nullopt;
        }
        td->MutableBag(id - 1)->Set(v - 1);
      }
    } else {
      if (!td.has_value()) {
        SetError(error, "tree edge before solution line");
        return std::nullopt;
      }
      int a, b;
      ls >> a >> b;
      if (!ls || a < 1 || b < 1 || a > bags || b > bags || a == b) {
        SetError(error, "bad tree edge at line " + std::to_string(line_no));
        return std::nullopt;
      }
      td->AddTreeEdge(a - 1, b - 1);
    }
  }
  if (!td.has_value()) SetError(error, "missing solution line");
  return td;
}

void WritePaceTreeDecomposition(const TreeDecomposition& td,
                                std::ostream& out) {
  int maxbag = td.Width() + 1;
  out << "s td " << td.NumNodes() << " " << maxbag << " "
      << td.NumGraphVertices() << "\n";
  for (int p = 0; p < td.NumNodes(); ++p) {
    out << "b " << p + 1;
    for (int v : td.Bag(p).ToVector()) out << " " << v + 1;
    out << "\n";
  }
  for (auto [a, b] : td.TreeEdges()) out << a + 1 << " " << b + 1 << "\n";
}

}  // namespace hypertree
