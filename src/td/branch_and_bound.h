// Branch-and-bound treewidth (QuickBB / BB-tw style; thesis §4.4).
//
// Depth-first search over elimination orderings on a shared elimination
// graph with undo. Prunes with f = max(g, h, parent f) where g is the
// largest elimination degree on the path and h a minor-min-width lower
// bound of the remaining graph; applies simplicial / strongly-almost-
// simplicial reductions, pruning rule PR1 (remaining-size bound) and PR2
// (adjacent-swap symmetry breaking).

#ifndef HYPERTREE_TD_BRANCH_AND_BOUND_H_
#define HYPERTREE_TD_BRANCH_AND_BOUND_H_

#include "graph/graph.h"
#include "td/exact.h"

namespace hypertree {

/// Computes the treewidth of `g` (exact if the budget allows; otherwise an
/// anytime lower/upper bound pair).
WidthResult BranchAndBoundTreewidth(const Graph& g,
                                    const SearchOptions& options = {});

}  // namespace hypertree

#endif  // HYPERTREE_TD_BRANCH_AND_BOUND_H_
