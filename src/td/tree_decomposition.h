// Tree decompositions (Robertson & Seymour; Definition 11).

#ifndef HYPERTREE_TD_TREE_DECOMPOSITION_H_
#define HYPERTREE_TD_TREE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "hypergraph/hypergraph.h"
#include "ordering/bucket_elimination.h"
#include "util/bitset.h"

namespace hypertree {

/// A tree decomposition <T, chi>: a tree whose nodes carry vertex bags.
class TreeDecomposition {
 public:
  /// Creates an empty decomposition for a (hyper)graph on `num_vertices`.
  explicit TreeDecomposition(int num_vertices) : n_(num_vertices) {}

  /// Universe size (vertices of the decomposed graph).
  int NumGraphVertices() const { return n_; }

  /// Number of decomposition nodes.
  int NumNodes() const { return static_cast<int>(bags_.size()); }

  /// Adds a node with bag `bag`; returns its id.
  int AddNode(const Bitset& bag);

  /// Connects decomposition nodes `a` and `b`.
  void AddTreeEdge(int a, int b);

  /// The bag of node `p`.
  const Bitset& Bag(int p) const { return bags_[p]; }

  /// Mutable bag access (leaf-normal-form surgery).
  Bitset* MutableBag(int p) { return &bags_[p]; }

  /// Neighbors of node `p` in the decomposition tree.
  const std::vector<int>& TreeNeighbors(int p) const { return tree_adj_[p]; }

  /// All tree edges (a < b).
  const std::vector<std::pair<int, int>>& TreeEdges() const { return edges_; }

  /// Width: max bag size - 1 (-1 for an empty decomposition).
  int Width() const;

  /// Checks the tree-decomposition conditions against graph `g`:
  /// every edge inside some bag, per-vertex connectedness, tree shape.
  bool IsValidFor(const Graph& g, std::string* why = nullptr) const;

  /// Checks the conditions against hypergraph `h` (every hyperedge inside
  /// some bag; Lemma 1 makes this equivalent to validity for the primal
  /// graph).
  bool IsValidForHypergraph(const Hypergraph& h,
                            std::string* why = nullptr) const;

 private:
  bool CheckTreeAndConnectedness(std::string* why) const;

  int n_;
  std::vector<Bitset> bags_;
  std::vector<std::vector<int>> tree_adj_;
  std::vector<std::pair<int, int>> edges_;
};

/// Converts a bucket tree (vertex elimination output) into a tree
/// decomposition with one node per vertex of the graph.
TreeDecomposition TreeDecompositionFromEliminationTree(
    const EliminationTree& t);

/// Convenience: bucket-eliminates `sigma` on `g` and wraps the result.
TreeDecomposition TreeDecompositionFromOrdering(
    const Graph& g, const EliminationOrdering& sigma);

/// Contracts tree edges whose one endpoint's bag is contained in the
/// other's, repeatedly. Width and validity are preserved; the result has
/// no adjacent subsumed bags (bucket-tree decompositions typically shrink
/// from n nodes to the number of maximal cliques of the filled graph).
TreeDecomposition SimplifyTreeDecomposition(const TreeDecomposition& td);

}  // namespace hypertree

#endif  // HYPERTREE_TD_TREE_DECOMPOSITION_H_
