// Small string helpers shared by the parsers and table printers.

#ifndef HYPERTREE_UTIL_STRINGUTIL_H_
#define HYPERTREE_UTIL_STRINGUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hypertree {

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims);

/// Removes leading and trailing whitespace.
std::string StripString(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

}  // namespace hypertree

#endif  // HYPERTREE_UTIL_STRINGUTIL_H_
