#include "util/metrics.h"

#include <chrono>

namespace hypertree::metrics {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Registry& Registry::Global() {
  // Leaked intentionally: counters may be touched from static destructors
  // and detached worker threads during shutdown.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(name)))
             .first;
  }
  return *it->second;
}

std::vector<Sample> Registry::Snapshot(bool include_zero) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    long v = counter->Value();
    if (v != 0 || include_zero) out.emplace_back(name, v);
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->value_.store(0, std::memory_order_relaxed);
  }
}

size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size();
}

Counter& GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}

ScopedTimer::ScopedTimer(const std::string& name)
    : ScopedTimer(GetCounter(name + ".wall_ns"), GetCounter(name + ".calls")) {
}

ScopedTimer::ScopedTimer(Counter& wall_ns, Counter& calls)
    : wall_ns_(wall_ns), calls_(calls), start_ns_(NowNs()) {}

ScopedTimer::~ScopedTimer() {
  wall_ns_.Add(static_cast<long>(NowNs() - start_ns_));
  calls_.Increment();
}

}  // namespace hypertree::metrics
