// Wall-clock timing and cooperative deadlines for the anytime algorithms.

#ifndef HYPERTREE_UTIL_TIMER_H_
#define HYPERTREE_UTIL_TIMER_H_

#include <chrono>

namespace hypertree {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A deadline the exact search algorithms poll to stop as anytime methods.
/// A non-positive budget means "no deadline".
class Deadline {
 public:
  /// Creates a deadline `budget_seconds` from now (<= 0: never expires).
  explicit Deadline(double budget_seconds = 0.0)
      : budget_seconds_(budget_seconds) {}

  /// True once the budget is exhausted.
  bool Expired() const {
    return budget_seconds_ > 0.0 && timer_.ElapsedSeconds() >= budget_seconds_;
  }

  /// Seconds consumed so far.
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  Timer timer_;
  double budget_seconds_;
};

}  // namespace hypertree

#endif  // HYPERTREE_UTIL_TIMER_H_
