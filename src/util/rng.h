// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (ordering heuristics with random
// tie-breaking, genetic algorithms, workload generators) draw from this
// xoshiro256** generator so experiments are reproducible from a seed.

#ifndef HYPERTREE_UTIL_RNG_H_
#define HYPERTREE_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace hypertree {

/// xoshiro256** seeded through SplitMix64; fast, high-quality, reproducible.
class Rng {
 public:
  /// Seeds the generator deterministically from a single 64-bit value.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    for (int i = 0; i < 4; ++i) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  int UniformInt(int bound) {
    HT_DCHECK(bound > 0);
    // Lemire-style rejection-free-enough bounded draw.
    return static_cast<int>(
        (static_cast<__uint128_t>(Next()) * static_cast<uint64_t>(bound)) >>
        64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int UniformRange(int lo, int hi) {
    HT_DCHECK(lo <= hi);
    return lo + UniformInt(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Approximate standard normal via the sum of 12 uniforms (Irwin-Hall).
  double Gaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += UniformDouble();
    return s - 6.0;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int i = static_cast<int>(v->size()) - 1; i > 0; --i) {
      int j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// A uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n) {
    std::vector<int> p(n);
    for (int i = 0; i < n; ++i) p[i] = i;
    Shuffle(&p);
    return p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace hypertree

#endif  // HYPERTREE_UTIL_RNG_H_
