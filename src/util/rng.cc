#include "util/rng.h"

// Rng is header-only; this translation unit anchors the library target.
namespace hypertree {}
