// A dynamically sized bitset specialized for the vertex/edge sets that
// decomposition algorithms manipulate: unions, intersections, population
// counts, subset tests and iteration over set bits.
//
// std::vector<bool> lacks word-level operations and std::bitset is fixed
// size, so the exact algorithms (branch and bound, A*, det-k-decomp) use
// this type for O(n/64) set algebra.

#ifndef HYPERTREE_UTIL_BITSET_H_
#define HYPERTREE_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/check.h"

namespace hypertree {

/// Dynamically sized bitset with word-parallel set algebra.
class Bitset {
 public:
  Bitset() : size_(0) {}

  /// Creates a bitset holding `size` bits, all zero.
  explicit Bitset(int size) : size_(size), words_((size + 63) / 64, 0) {}

  /// Number of bits (the universe size, not the population count).
  int size() const { return size_; }

  /// Sets bit `i` to one.
  void Set(int i) {
    HT_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i) >> 6] |= uint64_t{1} << (i & 63);
  }

  /// Clears bit `i`.
  void Reset(int i) {
    HT_DCHECK(i >= 0 && i < size_);
    words_[static_cast<size_t>(i) >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Returns whether bit `i` is set.
  bool Test(int i) const {
    HT_DCHECK(i >= 0 && i < size_);
    return (words_[static_cast<size_t>(i) >> 6] >> (i & 63)) & 1;
  }

  /// Clears all bits.
  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Sets all bits in [0, size).
  void SetAll() {
    std::fill(words_.begin(), words_.end(), ~uint64_t{0});
    TrimTail();
  }

  /// Number of set bits.
  int Count() const {
    int c = 0;
    for (uint64_t w : words_) c += __builtin_popcountll(w);
    return c;
  }

  /// True if no bit is set.
  bool None() const {
    for (uint64_t w : words_)
      if (w != 0) return false;
    return true;
  }

  /// True if any bit is set.
  bool Any() const { return !None(); }

  /// Index of the lowest set bit, or -1 if empty.
  int First() const {
    for (size_t i = 0; i < words_.size(); ++i)
      if (words_[i] != 0)
        return static_cast<int>(i * 64 + __builtin_ctzll(words_[i]));
    return -1;
  }

  /// Index of the lowest set bit strictly greater than `i`, or -1.
  int Next(int i) const {
    ++i;
    if (i >= size_) return -1;
    size_t w = static_cast<size_t>(i) >> 6;
    uint64_t cur = words_[w] & (~uint64_t{0} << (i & 63));
    while (true) {
      if (cur != 0) return static_cast<int>(w * 64 + __builtin_ctzll(cur));
      if (++w >= words_.size()) return -1;
      cur = words_[w];
    }
  }

  /// In-place union.
  Bitset& operator|=(const Bitset& o) {
    HT_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  /// In-place intersection.
  Bitset& operator&=(const Bitset& o) {
    HT_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  /// In-place set difference (this \ o).
  Bitset& operator-=(const Bitset& o) {
    HT_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~o.words_[i];
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  bool operator==(const Bitset& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }
  bool operator!=(const Bitset& o) const { return !(*this == o); }

  /// True if this is a subset of `o`.
  bool IsSubsetOf(const Bitset& o) const {
    HT_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & ~o.words_[i]) != 0) return false;
    return true;
  }

  /// True if this and `o` share at least one set bit.
  bool Intersects(const Bitset& o) const {
    HT_DCHECK(size_ == o.size_);
    for (size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & o.words_[i]) != 0) return true;
    return false;
  }

  /// Population count of the intersection, without materializing it.
  int IntersectCount(const Bitset& o) const {
    HT_DCHECK(size_ == o.size_);
    int c = 0;
    for (size_t i = 0; i < words_.size(); ++i)
      c += __builtin_popcountll(words_[i] & o.words_[i]);
    return c;
  }

  /// The set bits as a sorted vector of indices.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(Count());
    for (int i = First(); i >= 0; i = Next(i)) out.push_back(i);
    return out;
  }

  /// Builds a bitset of universe `size` with the given bits set.
  static Bitset FromVector(int size, const std::vector<int>& bits) {
    Bitset b(size);
    for (int i : bits) b.Set(i);
    return b;
  }

  /// Stable 64-bit hash of the contents (for visited-state tables).
  uint64_t Hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(size_);
    for (uint64_t w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  /// Debug rendering, e.g. "{0, 3, 7}".
  std::string ToString() const;

 private:
  void TrimTail() {
    int tail = size_ & 63;
    if (tail != 0 && !words_.empty())
      words_.back() &= (uint64_t{1} << tail) - 1;
  }

  int size_;
  std::vector<uint64_t> words_;
};

}  // namespace hypertree

template <>
struct std::hash<hypertree::Bitset> {
  size_t operator()(const hypertree::Bitset& b) const {
    return static_cast<size_t>(b.Hash());
  }
};

#endif  // HYPERTREE_UTIL_BITSET_H_
