// A dynamically sized bitset specialized for the vertex/edge sets that
// decomposition algorithms manipulate: unions, intersections, population
// counts, subset tests and iteration over set bits.
//
// std::vector<bool> lacks word-level operations and std::bitset is fixed
// size, so the exact algorithms (branch and bound, A*, det-k-decomp) use
// this type for O(n/64) set algebra.

#ifndef HYPERTREE_UTIL_BITSET_H_
#define HYPERTREE_UTIL_BITSET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <vector>

#include "util/check.h"

namespace hypertree {

/// Dynamically sized bitset with word-parallel set algebra.
///
/// Sets of up to 64 elements are stored inline (no heap allocation), which
/// matters because the exact searches copy bitsets on every node: memo
/// table keys, neighborhoods, bag covers. Larger universes fall back to a
/// heap array.
///
/// Heap storage follows the kernel layer's padded-capacity contract
/// (src/kernels/kernels.h): 32-byte aligned, capacity rounded up to a
/// whole number of 4-word (256-bit) lanes, padding words always zero.
/// Every mutator preserves the zero-padding invariant, so Words() can be
/// handed to vector kernels directly.
class Bitset {
 public:
  /// Heap alignment in bytes (one AVX2 lane).
  static constexpr size_t kWordAlignment = 32;

  /// Allocated words for an `nwords`-word set: inline sets stay one
  /// word, heap sets round up to whole 4-word lanes.
  static constexpr int PaddedWords(int nwords) {
    return nwords <= 1 ? nwords : (nwords + 3) & ~3;
  }

  Bitset() : size_(0), nwords_(0), word_(0) {}

  /// Creates a bitset holding `size` bits, all zero.
  explicit Bitset(int size) : size_(size), nwords_((size + 63) / 64) {
    if (nwords_ > 1) {
      heap_ = AllocWords(nwords_);
    } else {
      word_ = 0;
    }
  }

  Bitset(const Bitset& o) : size_(o.size_), nwords_(o.nwords_) {
    if (nwords_ > 1) {
      heap_ = AllocWords(nwords_);
      std::memcpy(heap_, o.heap_, sizeof(uint64_t) * nwords_);
    } else {
      word_ = o.word_;
    }
  }

  Bitset(Bitset&& o) noexcept : size_(o.size_), nwords_(o.nwords_) {
    if (nwords_ > 1) {
      heap_ = o.heap_;
    } else {
      word_ = o.word_;
    }
    o.size_ = 0;
    o.nwords_ = 0;
    o.word_ = 0;
  }

  Bitset& operator=(const Bitset& o) {
    if (this == &o) return *this;
    if (nwords_ == o.nwords_) {  // reuse existing storage
      size_ = o.size_;
      if (nwords_ > 1) {
        std::memcpy(heap_, o.heap_, sizeof(uint64_t) * nwords_);
      } else {
        word_ = o.word_;
      }
      return *this;
    }
    if (nwords_ > 1) FreeWords(heap_);
    size_ = o.size_;
    nwords_ = o.nwords_;
    if (nwords_ > 1) {
      heap_ = AllocWords(nwords_);
      std::memcpy(heap_, o.heap_, sizeof(uint64_t) * nwords_);
    } else {
      word_ = o.word_;
    }
    return *this;
  }

  Bitset& operator=(Bitset&& o) noexcept {
    if (this == &o) return *this;
    if (nwords_ > 1) FreeWords(heap_);
    size_ = o.size_;
    nwords_ = o.nwords_;
    if (nwords_ > 1) {
      heap_ = o.heap_;
    } else {
      word_ = o.word_;
    }
    o.size_ = 0;
    o.nwords_ = 0;
    o.word_ = 0;
    return *this;
  }

  ~Bitset() {
    if (nwords_ > 1) FreeWords(heap_);
  }

  /// Number of bits (the universe size, not the population count).
  int size() const { return size_; }

  /// Sets bit `i` to one.
  void Set(int i) {
    HT_DCHECK(i >= 0 && i < size_);
    words()[static_cast<size_t>(i) >> 6] |= uint64_t{1} << (i & 63);
  }

  /// Clears bit `i`.
  void Reset(int i) {
    HT_DCHECK(i >= 0 && i < size_);
    words()[static_cast<size_t>(i) >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Returns whether bit `i` is set.
  bool Test(int i) const {
    HT_DCHECK(i >= 0 && i < size_);
    return (words()[static_cast<size_t>(i) >> 6] >> (i & 63)) & 1;
  }

  /// Clears all bits.
  void Clear() { std::fill(words(), words() + nwords_, uint64_t{0}); }

  /// Sets all bits in [0, size).
  void SetAll() {
    std::fill(words(), words() + nwords_, ~uint64_t{0});
    TrimTail();
  }

  /// Number of set bits.
  int Count() const {
    const uint64_t* w = words();
    int c = 0;
    for (int i = 0; i < nwords_; ++i) c += __builtin_popcountll(w[i]);
    return c;
  }

  /// True if no bit is set.
  bool None() const {
    const uint64_t* w = words();
    for (int i = 0; i < nwords_; ++i)
      if (w[i] != 0) return false;
    return true;
  }

  /// True if any bit is set.
  bool Any() const { return !None(); }

  /// Index of the lowest set bit, or -1 if empty.
  int First() const {
    const uint64_t* w = words();
    for (int i = 0; i < nwords_; ++i)
      if (w[i] != 0)
        return static_cast<int>(i * 64 + __builtin_ctzll(w[i]));
    return -1;
  }

  /// Index of the lowest set bit strictly greater than `i`, or -1.
  int Next(int i) const {
    ++i;
    if (i >= size_) return -1;
    const uint64_t* ws = words();
    int w = i >> 6;
    uint64_t cur = ws[w] & (~uint64_t{0} << (i & 63));
    while (true) {
      if (cur != 0) return static_cast<int>(w * 64 + __builtin_ctzll(cur));
      if (++w >= nwords_) return -1;
      cur = ws[w];
    }
  }

  /// In-place union.
  Bitset& operator|=(const Bitset& o) {
    HT_DCHECK(size_ == o.size_);
    uint64_t* w = words();
    const uint64_t* ow = o.words();
    for (int i = 0; i < nwords_; ++i) w[i] |= ow[i];
    return *this;
  }

  /// In-place intersection.
  Bitset& operator&=(const Bitset& o) {
    HT_DCHECK(size_ == o.size_);
    uint64_t* w = words();
    const uint64_t* ow = o.words();
    for (int i = 0; i < nwords_; ++i) w[i] &= ow[i];
    return *this;
  }

  /// In-place set difference (this \ o).
  Bitset& operator-=(const Bitset& o) {
    HT_DCHECK(size_ == o.size_);
    uint64_t* w = words();
    const uint64_t* ow = o.words();
    for (int i = 0; i < nwords_; ++i) w[i] &= ~ow[i];
    return *this;
  }

  friend Bitset operator|(Bitset a, const Bitset& b) { return a |= b; }
  friend Bitset operator&(Bitset a, const Bitset& b) { return a &= b; }
  friend Bitset operator-(Bitset a, const Bitset& b) { return a -= b; }

  bool operator==(const Bitset& o) const {
    if (size_ != o.size_) return false;
    const uint64_t* w = words();
    const uint64_t* ow = o.words();
    for (int i = 0; i < nwords_; ++i)
      if (w[i] != ow[i]) return false;
    return true;
  }
  bool operator!=(const Bitset& o) const { return !(*this == o); }

  /// True if this is a subset of `o`.
  bool IsSubsetOf(const Bitset& o) const {
    HT_DCHECK(size_ == o.size_);
    const uint64_t* w = words();
    const uint64_t* ow = o.words();
    for (int i = 0; i < nwords_; ++i)
      if ((w[i] & ~ow[i]) != 0) return false;
    return true;
  }

  /// Non-allocating three-address ops for scratch-arena slots: the
  /// destination must already have the operands' universe size, so the
  /// assignment is a pure word loop (no resize, no heap traffic). The
  /// exact searches run their inner separator/component loops entirely
  /// on preallocated slots through these.

  /// this = a | b.
  void AssignOr(const Bitset& a, const Bitset& b) {
    HT_DCHECK(size_ == a.size_ && size_ == b.size_);
    uint64_t* w = words();
    const uint64_t* aw = a.words();
    const uint64_t* bw = b.words();
    for (int i = 0; i < nwords_; ++i) w[i] = aw[i] | bw[i];
  }

  /// this = a & b.
  void AssignAnd(const Bitset& a, const Bitset& b) {
    HT_DCHECK(size_ == a.size_ && size_ == b.size_);
    uint64_t* w = words();
    const uint64_t* aw = a.words();
    const uint64_t* bw = b.words();
    for (int i = 0; i < nwords_; ++i) w[i] = aw[i] & bw[i];
  }

  /// this = a & ~b.
  void AssignAndNot(const Bitset& a, const Bitset& b) {
    HT_DCHECK(size_ == a.size_ && size_ == b.size_);
    uint64_t* w = words();
    const uint64_t* aw = a.words();
    const uint64_t* bw = b.words();
    for (int i = 0; i < nwords_; ++i) w[i] = aw[i] & ~bw[i];
  }

  /// this = a \ b (alias of AssignAndNot, named for set-difference call
  /// sites).
  void AssignDiff(const Bitset& a, const Bitset& b) { AssignAndNot(a, b); }

  /// this = a & b with a fused population count of the result: one pass
  /// over the words instead of AssignAnd + Count.
  int AssignAndCount(const Bitset& a, const Bitset& b) {
    HT_DCHECK(size_ == a.size_ && size_ == b.size_);
    uint64_t* w = words();
    const uint64_t* aw = a.words();
    const uint64_t* bw = b.words();
    int c = 0;
    for (int i = 0; i < nwords_; ++i) {
      w[i] = aw[i] & bw[i];
      c += __builtin_popcountll(w[i]);
    }
    return c;
  }

  /// True if this \ o is empty (equivalently: this is a subset of o)
  /// without materializing the difference.
  bool AndNotIsEmpty(const Bitset& o) const {
    HT_DCHECK(size_ == o.size_);
    const uint64_t* w = words();
    const uint64_t* ow = o.words();
    for (int i = 0; i < nwords_; ++i) {
      if ((w[i] & ~ow[i]) != 0) return false;
    }
    return true;
  }

  /// True if this ∩ a ∩ ~b is non-empty, i.e. this intersects (a \ b),
  /// without materializing either intermediate.
  bool IntersectsAndNot(const Bitset& a, const Bitset& b) const {
    HT_DCHECK(size_ == a.size_ && size_ == b.size_);
    const uint64_t* w = words();
    const uint64_t* aw = a.words();
    const uint64_t* bw = b.words();
    for (int i = 0; i < nwords_; ++i)
      if ((w[i] & aw[i] & ~bw[i]) != 0) return true;
    return false;
  }

  /// Appends the set bits (ascending) to `out` without clearing it.
  /// Reserves the exact final size first, so repeated calls on hot
  /// paths never reallocate more than once.
  void AppendTo(std::vector<int>* out) const {
    out->reserve(out->size() + static_cast<size_t>(Count()));
    for (int i = First(); i >= 0; i = Next(i)) out->push_back(i);
  }

  /// True if this and `o` share at least one set bit.
  bool Intersects(const Bitset& o) const {
    HT_DCHECK(size_ == o.size_);
    const uint64_t* w = words();
    const uint64_t* ow = o.words();
    for (int i = 0; i < nwords_; ++i)
      if ((w[i] & ow[i]) != 0) return true;
    return false;
  }

  /// Population count of the intersection, without materializing it.
  int IntersectCount(const Bitset& o) const {
    HT_DCHECK(size_ == o.size_);
    const uint64_t* w = words();
    const uint64_t* ow = o.words();
    int c = 0;
    for (int i = 0; i < nwords_; ++i)
      c += __builtin_popcountll(w[i] & ow[i]);
    return c;
  }

  /// The set bits as a sorted vector of indices.
  std::vector<int> ToVector() const {
    std::vector<int> out;
    out.reserve(Count());
    for (int i = First(); i >= 0; i = Next(i)) out.push_back(i);
    return out;
  }

  /// Builds a bitset of universe `size` with the given bits set.
  static Bitset FromVector(int size, const std::vector<int>& bits) {
    Bitset b(size);
    for (int i : bits) b.Set(i);
    return b;
  }

  /// Number of 64-bit words backing the set.
  int NumWords() const { return nwords_; }

  /// The `i`-th backing word (bits [64i, 64i+64)).
  uint64_t Word(int i) const {
    HT_DCHECK(i >= 0 && i < nwords_);
    return words()[i];
  }

  /// Raw backing words for the kernel layer (src/kernels). The buffer
  /// holds PaddedWords(NumWords()) words with zero padding; callers
  /// must preserve both the padding and the tail bits past size().
  const uint64_t* Words() const { return words(); }
  uint64_t* MutableWords() { return words(); }

  /// Stable 64-bit hash of the contents (for visited-state tables).
  uint64_t Hash() const {
    const uint64_t* w = words();
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(size_);
    for (int i = 0; i < nwords_; ++i) {
      h ^= w[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

  /// Debug rendering, e.g. "{0, 3, 7}".
  std::string ToString() const;

 private:
  // Heap blocks are 32-byte aligned and zero-initialized through their
  // padded capacity; writes never touch the padding, so it stays zero
  // for the set's lifetime.
  static uint64_t* AllocWords(int nwords) {
    const size_t cap = static_cast<size_t>(PaddedWords(nwords));
    auto* p = static_cast<uint64_t*>(
        ::operator new(cap * sizeof(uint64_t), std::align_val_t{kWordAlignment}));
    std::memset(p, 0, cap * sizeof(uint64_t));
    return p;
  }
  static void FreeWords(uint64_t* p) noexcept {
    ::operator delete(p, std::align_val_t{kWordAlignment});
  }

  uint64_t* words() { return nwords_ > 1 ? heap_ : &word_; }
  const uint64_t* words() const { return nwords_ > 1 ? heap_ : &word_; }

  void TrimTail() {
    int tail = size_ & 63;
    if (tail != 0) words()[nwords_ - 1] &= (uint64_t{1} << tail) - 1;
  }

  int size_;
  int nwords_;
  union {
    uint64_t word_;    // inline storage when nwords_ <= 1
    uint64_t* heap_;   // owned array when nwords_ > 1
  };
};

}  // namespace hypertree

template <>
struct std::hash<hypertree::Bitset> {
  size_t operator()(const hypertree::Bitset& b) const {
    return static_cast<size_t>(b.Hash());
  }
};

#endif  // HYPERTREE_UTIL_BITSET_H_
