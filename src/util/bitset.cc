#include "util/bitset.h"

#include <sstream>

namespace hypertree {

std::string Bitset::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int i = First(); i >= 0; i = Next(i)) {
    if (!first) os << ", ";
    os << i;
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace hypertree
