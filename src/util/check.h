// Lightweight assertion macros used throughout the library.
//
// The library follows Google-style error handling: logic errors (broken
// invariants, misuse of the API) abort the process with a message, while
// recoverable conditions (bad input files, infeasible parameters) are
// reported through return values.

#ifndef HYPERTREE_UTIL_CHECK_H_
#define HYPERTREE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a message if `cond` is false. Enabled in all build types:
/// decomposition validity bugs must never silently produce wrong widths.
#define HT_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HT_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// HT_CHECK with a printf-style explanation appended to the failure report.
#define HT_CHECK_MSG(cond, ...)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HT_CHECK failed at %s:%d: %s\n  ", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

/// Cheap debug-only check for hot loops.
#ifdef NDEBUG
#define HT_DCHECK(cond) ((void)0)
#else
#define HT_DCHECK(cond) HT_CHECK(cond)
#endif

#endif  // HYPERTREE_UTIL_CHECK_H_
