// Contract macros used throughout the library.
//
// The library follows Google-style error handling: logic errors (broken
// invariants, misuse of the API) abort the process with a message, while
// recoverable conditions (bad input files, infeasible parameters) are
// reported through return values.
//
// Two severity tiers:
//
//   HT_CHECK*   — always on, in every build type. Decomposition validity
//                 bugs must never silently produce wrong widths, so the
//                 cheap structural checks stay enabled in Release.
//   HT_DCHECK*  — compiled out under NDEBUG (zero code emitted). Used on
//                 hot paths (per-row, per-probe) where the check would be
//                 measurable in benchmarks.
//
// Every macro supports a streamed explanation that is only evaluated on
// failure:
//
//   HT_CHECK(rows >= 0) << "relation " << name << " corrupted";
//   HT_CHECK_EQ(data.size(), rows * arity);   // prints both values
//
// The comparison macros (HT_CHECK_EQ/NE/LT/LE/GT/GE and their HT_DCHECK_
// twins) evaluate each operand exactly once and report the observed
// values alongside the failed expression. HT_CHECK_MSG keeps the older
// printf-style form for existing callers.

#ifndef HYPERTREE_UTIL_CHECK_H_
#define HYPERTREE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>

namespace hypertree::ht_internal {

/// True when HT_DCHECK* checks are compiled in. Lets call sites gate
/// expensive debug-only validation (e.g. whole-decomposition checks) on
/// the same switch as the macros: `if (kDCheckEnabled) Validate(...);`.
#ifdef NDEBUG
inline constexpr bool kDCheckEnabled = false;
#else
inline constexpr bool kDCheckEnabled = true;
#endif

/// Collects the streamed failure message; aborts in the destructor. The
/// whole object only exists on the (cold) failure path.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr) {
    stream_ << "HT_CHECK failed at " << file << ":" << line << ": " << expr;
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    if (!separated_) {
      stream_ << "\n  ";
      separated_ = true;
    }
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckFailure() {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

 private:
  std::ostringstream stream_;
  bool separated_ = false;
};

/// Lowest-precedence void conversion: makes the `cond ? (void)0 : ...`
/// ternary in HT_CHECK well-typed while keeping `<<` chaining on the
/// failure branch.
struct Voidify {
  void operator&(const CheckFailure&) {}
};

/// Applies `op` to operands evaluated exactly once. Returns null when the
/// comparison holds, otherwise the observed values rendered as
/// "(a vs. b)" — allocation only happens on the cold failure path.
template <typename A, typename B, typename Op>
std::unique_ptr<std::string> CheckOp(const A& a, const B& b, Op op) {
  if (op(a, b)) return nullptr;
  std::ostringstream os;
  os << "(" << a << " vs. " << b << ") ";
  return std::make_unique<std::string>(os.str());
}

}  // namespace hypertree::ht_internal

/// Aborts with file:line and a streamable message if `cond` is false.
/// Enabled in all build types.
#define HT_CHECK(cond)                                  \
  (cond) ? (void)0                                      \
         : ::hypertree::ht_internal::Voidify() &        \
               ::hypertree::ht_internal::CheckFailure(__FILE__, __LINE__, #cond)

// Shared implementation of the binary comparison checks: operands are
// evaluated exactly once; on failure both observed values are reported
// and the streamed tail (if any) is appended. The `while` runs at most
// once (the failure branch aborts) and, unlike an `if`, cannot capture a
// caller's dangling `else`.
#define HT_CHECK_CMP(a, b, op)                                            \
  while (auto ht_check_detail = ::hypertree::ht_internal::CheckOp(        \
             a, b, [](const auto& x, const auto& y) { return x op y; }))  \
  ::hypertree::ht_internal::Voidify() &                                   \
      ::hypertree::ht_internal::CheckFailure(__FILE__, __LINE__,          \
                                             #a " " #op " " #b)           \
          << *ht_check_detail

#define HT_CHECK_EQ(a, b) HT_CHECK_CMP(a, b, ==)
#define HT_CHECK_NE(a, b) HT_CHECK_CMP(a, b, !=)
#define HT_CHECK_LT(a, b) HT_CHECK_CMP(a, b, <)
#define HT_CHECK_LE(a, b) HT_CHECK_CMP(a, b, <=)
#define HT_CHECK_GT(a, b) HT_CHECK_CMP(a, b, >)
#define HT_CHECK_GE(a, b) HT_CHECK_CMP(a, b, >=)

/// HT_CHECK with a printf-style explanation appended to the failure
/// report (pre-streaming form; new code should stream into HT_CHECK).
#define HT_CHECK_MSG(cond, ...)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "HT_CHECK failed at %s:%d: %s\n  ", __FILE__,    \
                   __LINE__, #cond);                                        \
      std::fprintf(stderr, __VA_ARGS__);                                    \
      std::fprintf(stderr, "\n");                                           \
      std::fflush(stderr);                                                  \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Debug-only variants: compiled out under NDEBUG. The disabled form sits
// in a dead `while (false)` so the operands stay odr-used (no unused-
// variable warnings under -Werror Release builds), streamed tails still
// parse, and the optimizer removes every trace.
#ifdef NDEBUG
#define HT_DCHECK(cond)                                     \
  while (false) ::hypertree::ht_internal::Voidify() &       \
      ::hypertree::ht_internal::CheckFailure("", 0, "")     \
          << static_cast<bool>(cond)
#define HT_DCHECK_EQ(a, b) HT_DCHECK((a) == (b))
#define HT_DCHECK_NE(a, b) HT_DCHECK((a) != (b))
#define HT_DCHECK_LT(a, b) HT_DCHECK((a) < (b))
#define HT_DCHECK_LE(a, b) HT_DCHECK((a) <= (b))
#define HT_DCHECK_GT(a, b) HT_DCHECK((a) > (b))
#define HT_DCHECK_GE(a, b) HT_DCHECK((a) >= (b))
#else
#define HT_DCHECK(cond) HT_CHECK(cond)
#define HT_DCHECK_EQ(a, b) HT_CHECK_EQ(a, b)
#define HT_DCHECK_NE(a, b) HT_CHECK_NE(a, b)
#define HT_DCHECK_LT(a, b) HT_CHECK_LT(a, b)
#define HT_DCHECK_LE(a, b) HT_CHECK_LE(a, b)
#define HT_DCHECK_GT(a, b) HT_CHECK_GT(a, b)
#define HT_DCHECK_GE(a, b) HT_CHECK_GE(a, b)
#endif

#endif  // HYPERTREE_UTIL_CHECK_H_
