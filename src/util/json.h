// A minimal JSON value with *insertion-ordered* objects and a compact,
// deterministic serializer, used by the benchmark record writer and the
// tools' --json output. Field order is preserved exactly as written, so
// two runs that record the same facts produce byte-identical documents
// (modulo the values themselves) and diffs stay readable.
//
// The parser accepts standard JSON (objects, arrays, strings with the
// usual escapes, numbers, booleans, null) and exists mainly so tests can
// verify Dump/Parse round trips and so scripts-side consumers have a
// contract to rely on; it is not a streaming or validating parser for
// untrusted input.

#ifndef HYPERTREE_UTIL_JSON_H_
#define HYPERTREE_UTIL_JSON_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace hypertree {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Json(int i) : type_(Type::kInt), int_(i) {}                    // NOLINT
  Json(long i) : type_(Type::kInt), int_(i) {}                   // NOLINT
  Json(long long i) : type_(Type::kInt), int_(i) {}              // NOLINT
  Json(double d) : type_(Type::kDouble), double_(d) {}           // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}      // NOLINT
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Object field update: appends (key, value) or overwrites an existing
  /// key in place (keeping its original position). Returns *this so
  /// record-building chains.
  Json& Set(const std::string& key, Json value);

  /// Array append.
  Json& Append(Json value);

  /// Object lookup; nullptr when absent (or not an object).
  const Json* Find(const std::string& key) const;

  // Typed accessors (checked loosely: wrong-type access returns the
  // fallback).
  bool AsBool(bool fallback = false) const;
  long AsInt(long fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
  const std::string& AsString() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& fields() const {
    return fields_;
  }

  /// Compact serialization ({"a":1,"b":[true,null]}). Doubles print with
  /// up to 17 significant digits (shortest exact form is not attempted,
  /// but the format is deterministic for a given value).
  std::string Dump() const;

  /// Parses a JSON document. Returns std::nullopt (and sets *error when
  /// non-null) on malformed input or trailing garbage.
  static std::optional<Json> Parse(const std::string& text,
                                   std::string* error = nullptr);

 private:
  void DumpTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  long long int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> fields_;   // kObject
};

}  // namespace hypertree

#endif  // HYPERTREE_UTIL_JSON_H_
