// A process-wide registry of named monotonic counters and scoped
// wall-clock timers, so the search algorithms can report what they did
// (nodes expanded, separator attempts, cache traffic, pool utilization)
// in machine-readable form instead of printf-only.
//
// Design constraints:
//  - Near-zero cost when unread: incrementing a counter is one relaxed
//    atomic add. Callers resolve the counter once (typically into a
//    function-local static reference) and never pay the registry lookup
//    on the hot path.
//  - Thread-safe: counters are atomics; the registry map is guarded by a
//    mutex and hands out stable references (entries are never removed,
//    Reset() only zeroes values).
//  - Deterministic output: Snapshot() returns counters sorted by name, so
//    serialized snapshots are byte-comparable across runs.

#ifndef HYPERTREE_UTIL_METRICS_H_
#define HYPERTREE_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hypertree::metrics {

/// A named monotonic counter. Obtained from the Registry (which owns it
/// and keeps its address stable for the process lifetime).
class Counter {
 public:
  void Add(long delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  long Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  std::string name_;
  std::atomic<long> value_{0};
};

/// One (name, value) pair of a registry snapshot.
using Sample = std::pair<std::string, long>;

/// The process-wide counter registry.
class Registry {
 public:
  /// The global instance (created on first use, never destroyed before
  /// any counter user).
  static Registry& Global();

  /// Returns the counter registered under `name`, creating it on first
  /// use. The reference stays valid for the registry's lifetime.
  Counter& GetCounter(const std::string& name);

  /// All counters sorted by name. `include_zero` keeps entries whose
  /// value is 0 (useful for schema-stable output).
  std::vector<Sample> Snapshot(bool include_zero = false) const;

  /// Zeroes every counter (registrations are kept, references stay
  /// valid).
  void Reset();

  /// Number of registered counters.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  // std::map: node-based, so Counter addresses are stable and snapshots
  // iterate in name order without re-sorting.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
};

/// Shorthand for Registry::Global().GetCounter(name).
Counter& GetCounter(const std::string& name);

/// Measures a wall-clock scope: on destruction adds the elapsed
/// nanoseconds to `<name>.wall_ns` and bumps `<name>.calls`. Scopes nest
/// naturally (each instance accumulates into its own pair of counters).
class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string& name);
  /// Hot-path variant: the caller resolved the counters once already.
  ScopedTimer(Counter& wall_ns, Counter& calls);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Counter& wall_ns_;
  Counter& calls_;
  uint64_t start_ns_;
};

}  // namespace hypertree::metrics

#endif  // HYPERTREE_UTIL_METRICS_H_
