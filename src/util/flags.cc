#include "util/flags.h"

#include <cstdlib>

#include "util/stringutil.h"

namespace hypertree {

Flags Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long Flags::GetInt(const std::string& name, long def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? v : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  return (end != nullptr && *end == '\0') ? v : def;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes";
}

}  // namespace hypertree
