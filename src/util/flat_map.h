// Open-addressing hash map keyed by Bitset.
//
// The exact searches probe their memo tables (cover widths, heuristic
// bounds, transposition values) once or more per generated child, which
// makes the lookup itself a measured hot spot. std::unordered_map pays a
// heap node and a pointer chase per entry; this map stores (key, value)
// slots in one flat array with linear probing, so a hit is typically one
// cache line. Drop-in semantics for the find / try_emplace subset the
// memos use — same keys, same values, same hit/miss pattern, so swapping
// it in changes no observable search behaviour.
//
// Constraints (checked where cheap): keys are non-empty Bitsets (a
// default-constructed Bitset marks an empty slot), no erase.

#ifndef HYPERTREE_UTIL_FLAT_MAP_H_
#define HYPERTREE_UTIL_FLAT_MAP_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitset.h"
#include "util/check.h"

namespace hypertree {

/// Flat linear-probing map from non-empty Bitset keys to values.
template <typename V>
class BitsetFlatMap {
 public:
  BitsetFlatMap() = default;

  /// Pointer to the value for `key`, or nullptr when absent. Stable only
  /// until the next TryEmplace.
  V* Find(const Bitset& key) {
    if (size_ == 0) return nullptr;
    size_t i = Probe(key);
    return slots_[i].key.size() == 0 ? nullptr : &slots_[i].value;
  }

  /// Inserts (key, value) if absent. Returns the value slot and whether
  /// the insert happened; the pointer is stable until the next TryEmplace.
  std::pair<V*, bool> TryEmplace(const Bitset& key, V value) {
    HT_DCHECK(key.size() > 0);
    if ((size_ + 1) * 8 >= slots_.size() * 7) Grow();
    size_t i = Probe(key);
    if (slots_[i].key.size() != 0) return {&slots_[i].value, false};
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
    return {&slots_[i].value, true};
  }

  size_t size() const { return size_; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

 private:
  struct Slot {
    Bitset key;  // size() == 0 marks an empty slot
    V value;
  };

  // Bitset::Hash is a sequential combine with weak low-bit diffusion;
  // finalize with a 64-bit mix so power-of-two masking probes well.
  static size_t Mix(uint64_t h) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }

  // First slot that is empty or holds `key`. Requires capacity > size.
  size_t Probe(const Bitset& key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(key.Hash()) & mask;
    while (slots_[i].key.size() != 0 && !(slots_[i].key == key)) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Grow() {
    const size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    for (Slot& s : old) {
      if (s.key.size() == 0) continue;
      size_t i = Probe(s.key);
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace hypertree

#endif  // HYPERTREE_UTIL_FLAT_MAP_H_
