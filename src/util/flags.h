// A minimal command-line flag parser for the CLI tools (no external
// dependencies): --name=value, --name value, and boolean --name forms.

#ifndef HYPERTREE_UTIL_FLAGS_H_
#define HYPERTREE_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace hypertree {

/// Parsed command line: flag map plus positional arguments.
class Flags {
 public:
  /// Parses argv; flags start with "--". "--x=1" and bare "--x" (value
  /// "true") are accepted; values always attach with '='. Everything else
  /// is positional, so boolean flags can precede positional arguments
  /// without ambiguity.
  static Flags Parse(int argc, char** argv);

  /// True if the flag was present.
  bool Has(const std::string& name) const;

  /// String value (or `def` when absent).
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;

  /// Integer value (or `def` when absent/unparsable).
  long GetInt(const std::string& name, long def = 0) const;

  /// Double value (or `def` when absent/unparsable).
  double GetDouble(const std::string& name, double def = 0.0) const;

  /// Boolean value: present without value, "1", "true", "yes" are true.
  bool GetBool(const std::string& name, bool def = false) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hypertree

#endif  // HYPERTREE_UTIL_FLAGS_H_
