#include "util/thread_pool.h"

#include <algorithm>

#include "util/metrics.h"

namespace hypertree {

namespace {

// Pool utilization is busy_wall_ns / (workers * wall clock): tasks counts
// completed tasks, busy_wall_ns the time workers spent inside them.
metrics::Counter& BusyNsMetric() {
  static metrics::Counter& c = metrics::GetCounter("thread_pool.busy_wall_ns");
  return c;
}
metrics::Counter& TasksMetric() {
  static metrics::Counter& c = metrics::GetCounter("thread_pool.tasks");
  return c;
}

}  // namespace

int ThreadPool::HardwareThreads() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool::ThreadPool(int num_threads) {
  int n = num_threads <= 0 ? HardwareThreads() : num_threads;
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      metrics::ScopedTimer timer(BusyNsMetric(), TasksMetric());
      task();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hypertree
