#include "util/stringutil.h"

#include <cctype>

namespace hypertree {

std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (delims.find(c) != std::string_view::npos) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string StripString(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace hypertree
