// A fixed-size worker pool with a FIFO task queue, plus a shared
// cancellation token the search algorithms poll cooperatively.
//
// The exact decomposition searches fan work out per separator candidate
// (det-k-decomp) and need to (a) wait for a deterministic winner and
// (b) tell superseded workers to stop. Submit/Wait and CancellationToken
// cover exactly that; there is no future/result plumbing — tasks write
// into caller-owned slots.

#ifndef HYPERTREE_UTIL_THREAD_POOL_H_
#define HYPERTREE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hypertree {

/// A copyable flag shared by everyone holding a copy: Cancel() on any copy
/// is visible to Cancelled() on all of them. Default-constructed tokens
/// are independent (never cancelled until their own Cancel()).
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// A token that additionally reports cancelled once any of the input
  /// tokens is. Cancel() on the combined token trips only its own flag;
  /// the inputs are unaffected. Used to merge independent cancellation
  /// sources (e.g. a portfolio supersede token with a server shutdown
  /// token) without polling two tokens on the hot path.
  static CancellationToken AnyOf(const CancellationToken& a,
                                 const CancellationToken& b) {
    CancellationToken t;
    auto watched = std::make_shared<std::vector<Flag>>();
    auto absorb = [&watched](const CancellationToken& src) {
      watched->push_back(src.flag_);
      if (src.watched_ != nullptr) {
        watched->insert(watched->end(), src.watched_->begin(),
                        src.watched_->end());
      }
    };
    absorb(a);
    absorb(b);
    t.watched_ = std::move(watched);
    return t;
  }

  /// Requests cancellation; idempotent and thread-safe.
  void Cancel() { flag_->store(true, std::memory_order_relaxed); }

  /// True once any copy of this token — or, for AnyOf tokens, any watched
  /// input — was cancelled.
  bool Cancelled() const {
    if (flag_->load(std::memory_order_relaxed)) return true;
    if (watched_ != nullptr) {
      for (const Flag& f : *watched_) {
        if (f->load(std::memory_order_relaxed)) return true;
      }
    }
    return false;
  }

 private:
  using Flag = std::shared_ptr<std::atomic<bool>>;

  Flag flag_;
  // Immutable after construction; shared by all copies of an AnyOf token.
  std::shared_ptr<const std::vector<Flag>> watched_;
};

/// Fixed-size thread pool. Tasks run in FIFO submission order (subject to
/// worker availability); Wait() blocks until every submitted task has
/// finished, including tasks submitted from inside other tasks. The
/// destructor drains the queue before joining the workers.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (<= 0: HardwareThreads()).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  int NumThreads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Never blocks (the queue is unbounded).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks (including nested submissions) have
  /// completed.
  void Wait();

  /// std::thread::hardware_concurrency(), with a floor of 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  long pending_ = 0;  // queued + currently running tasks
  bool stop_ = false;
};

}  // namespace hypertree

#endif  // HYPERTREE_UTIL_THREAD_POOL_H_
