#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hypertree {

Json& Json::Set(const std::string& key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::Append(Json value) {
  type_ = Type::kArray;
  items_.push_back(std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::AsBool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

long Json::AsInt(long fallback) const {
  if (type_ == Type::kInt) return static_cast<long>(int_);
  if (type_ == Type::kDouble) return static_cast<long>(double_);
  return fallback;
}

double Json::AsDouble(double fallback) const {
  if (type_ == Type::kDouble) return double_;
  if (type_ == Type::kInt) return static_cast<double>(int_);
  return fallback;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void Json::DumpTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", int_);
      *out += buf;
      break;
    }
    case Type::kDouble: {
      if (!std::isfinite(double_)) {
        *out += "null";  // JSON has no inf/nan
        break;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      // Trim to the shortest representation that parses back exactly.
      for (int prec = 1; prec < 17; ++prec) {
        char probe[40];
        std::snprintf(probe, sizeof(probe), "%.*g", prec, double_);
        if (std::strtod(probe, nullptr) == double_) {
          std::snprintf(buf, sizeof(buf), "%.*g", prec, double_);
          break;
        }
      }
      *out += buf;
      break;
    }
    case Type::kString:
      EscapeTo(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : items_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : fields_) {
        if (!first) out->push_back(',');
        first = false;
        EscapeTo(k, out);
        out->push_back(':');
        v.DumpTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : s_(text), error_(error) {}

  std::optional<Json> Run() {
    auto v = ParseValue();
    if (!v.has_value()) return std::nullopt;
    SkipSpace();
    if (pos_ != s_.size()) return Fail("trailing characters");
    return v;
  }

 private:
  std::optional<Json> Fail(const std::string& msg) {
    if (error_ != nullptr) {
      *error_ = msg + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    size_t len = 0;
    while (w[len] != '\0') ++len;
    if (s_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<Json> ParseValue() {
    SkipSpace();
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto str = ParseString();
      if (!str.has_value()) return std::nullopt;
      return Json(*std::move(str));
    }
    if (ConsumeWord("true")) return Json(true);
    if (ConsumeWord("false")) return Json(false);
    if (ConsumeWord("null")) return Json();
    return ParseNumber();
  }

  std::optional<Json> ParseObject() {
    ++pos_;  // '{'
    Json obj = Json::Object();
    SkipSpace();
    if (Consume('}')) return obj;
    while (true) {
      SkipSpace();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return Fail("expected object key");
      }
      auto key = ParseString();
      if (!key.has_value()) return std::nullopt;
      if (!Consume(':')) return Fail("expected ':'");
      auto value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      obj.Set(*key, *std::move(value));
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Fail("expected ',' or '}'");
    }
  }

  std::optional<Json> ParseArray() {
    ++pos_;  // '['
    Json arr = Json::Array();
    SkipSpace();
    if (Consume(']')) return arr;
    while (true) {
      auto value = ParseValue();
      if (!value.has_value()) return std::nullopt;
      arr.Append(*std::move(value));
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Fail("expected ',' or ']'");
    }
  }

  std::optional<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      char e = s_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) {
            Fail("truncated \\u escape");
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += h - '0';
            } else if (h >= 'a' && h <= 'f') {
              code += 10 + h - 'a';
            } else if (h >= 'A' && h <= 'F') {
              code += 10 + h - 'A';
            } else {
              Fail("bad \\u escape");
              return std::nullopt;
            }
          }
          // UTF-8 encode (surrogate pairs unsupported; the writer never
          // emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("bad escape");
          return std::nullopt;
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> ParseNumber() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    std::string tok = s_.substr(start, pos_ - start);
    if (integral) {
      char* end = nullptr;
      long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end != nullptr && *end == '\0') return Json(v);
    }
    char* end = nullptr;
    double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    return Json(d);
  }

  const std::string& s_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<Json> Json::Parse(const std::string& text, std::string* error) {
  return Parser(text, error).Run();
}

}  // namespace hypertree
