// Graphviz DOT export for graphs, hypergraphs and decompositions —
// the inspection/debugging surface of the library.

#ifndef HYPERTREE_IO_DOT_H_
#define HYPERTREE_IO_DOT_H_

#include <ostream>

#include "ghd/ghd.h"
#include "graph/graph.h"
#include "hd/hypertree_decomposition.h"
#include "hypergraph/hypergraph.h"
#include "td/tree_decomposition.h"

namespace hypertree {

/// Writes `g` as an undirected DOT graph.
void WriteDot(const Graph& g, std::ostream& out);

/// Writes `h` as a bipartite (vertex/edge) DOT graph.
void WriteDot(const Hypergraph& h, std::ostream& out);

/// Writes a tree decomposition with bag labels.
void WriteDot(const TreeDecomposition& td, std::ostream& out);

/// Writes a GHD with chi and lambda labels (edge names from `h`).
void WriteDot(const GeneralizedHypertreeDecomposition& ghd,
              const Hypergraph& h, std::ostream& out);

/// Writes a hypertree decomposition with chi and lambda labels.
void WriteDot(const HypertreeDecomposition& hd, const Hypergraph& h,
              std::ostream& out);

}  // namespace hypertree

#endif  // HYPERTREE_IO_DOT_H_
