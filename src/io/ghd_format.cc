#include "io/ghd_format.h"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "util/stringutil.h"

namespace hypertree {

namespace {
void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}
}  // namespace

void WriteGhd(const GeneralizedHypertreeDecomposition& ghd,
              const Hypergraph& h, std::ostream& out) {
  out << "% ghd of " << (h.name().empty() ? "hypergraph" : h.name()) << "\n";
  out << "s ghd " << ghd.NumNodes() << " " << ghd.Width() << " "
      << h.NumVertices() << " " << h.NumEdges() << "\n";
  for (int p = 0; p < ghd.NumNodes(); ++p) {
    out << "n " << p + 1 << " c";
    for (int v : ghd.td().Bag(p).ToVector()) out << " " << v + 1;
    out << " ; l";
    for (int e : ghd.Lambda(p)) out << " " << e + 1;
    out << "\n";
  }
  for (auto [a, b] : ghd.td().TreeEdges()) {
    out << "e " << a + 1 << " " << b + 1 << "\n";
  }
}

namespace {
std::optional<GeneralizedHypertreeDecomposition> ReadGhdImpl(
    std::istream& in, std::string* error, int* nodes_declared,
    int* nodes_seen) {
  std::string line;
  int nodes = 0, n = 0, m = 0;
  int line_no = 0;
  std::optional<TreeDecomposition> td;
  std::vector<std::vector<int>> lambdas;
  std::vector<bool> seen;
  std::vector<std::pair<int, int>> tree_edges;
  while (std::getline(in, line)) {
    ++line_no;
    std::string s = StripString(line);
    if (s.empty() || s[0] == '%') continue;
    std::istringstream ls(s);
    char tag;
    ls >> tag;
    if (tag == 's') {
      std::string kind;
      int width;
      ls >> kind >> nodes >> width >> n >> m;
      if (!ls || kind != "ghd" || nodes < 0 || n < 0 || m < 0) {
        SetError(error, "bad solution line at line " + std::to_string(line_no));
        return std::nullopt;
      }
      td.emplace(n);
      for (int i = 0; i < nodes; ++i) td->AddNode(Bitset(n));
      lambdas.assign(nodes, {});
      seen.assign(nodes, false);
    } else if (tag == 'n') {
      if (!td.has_value()) {
        SetError(error, "node before solution line");
        return std::nullopt;
      }
      int id;
      char c;
      ls >> id >> c;
      if (!ls || c != 'c' || id < 1 || id > nodes || seen[id - 1]) {
        SetError(error, "bad node line at line " + std::to_string(line_no));
        return std::nullopt;
      }
      seen[id - 1] = true;
      std::string token;
      bool in_lambda = false;
      while (ls >> token) {
        if (token == ";") continue;
        if (token == "l") {
          in_lambda = true;
          continue;
        }
        char* end = nullptr;
        long parsed = std::strtol(token.c_str(), &end, 10);
        if (end == nullptr || *end != '\0') {
          SetError(error, "bad id at line " + std::to_string(line_no));
          return std::nullopt;
        }
        int value = static_cast<int>(parsed);
        if (in_lambda) {
          if (value < 1 || value > m) {
            SetError(error,
                     "lambda id out of range at line " + std::to_string(line_no));
            return std::nullopt;
          }
          lambdas[id - 1].push_back(value - 1);
        } else {
          if (value < 1 || value > n) {
            SetError(error,
                     "chi vertex out of range at line " + std::to_string(line_no));
            return std::nullopt;
          }
          td->MutableBag(id - 1)->Set(value - 1);
        }
      }
    } else if (tag == 'e') {
      if (!td.has_value()) {
        SetError(error, "edge before solution line");
        return std::nullopt;
      }
      int a, b;
      ls >> a >> b;
      if (!ls || a < 1 || b < 1 || a > nodes || b > nodes || a == b) {
        SetError(error, "bad tree edge at line " + std::to_string(line_no));
        return std::nullopt;
      }
      tree_edges.emplace_back(a - 1, b - 1);
    } else {
      SetError(error, "unknown tag at line " + std::to_string(line_no));
      return std::nullopt;
    }
  }
  if (!td.has_value()) {
    SetError(error, "missing solution line");
    return std::nullopt;
  }
  for (auto [a, b] : tree_edges) td->AddTreeEdge(a, b);
  GeneralizedHypertreeDecomposition ghd(std::move(*td));
  for (int p = 0; p < nodes; ++p) ghd.SetLambda(p, std::move(lambdas[p]));
  if (nodes_declared != nullptr) *nodes_declared = nodes;
  if (nodes_seen != nullptr) {
    *nodes_seen = 0;
    for (bool s : seen) {
      if (s) ++*nodes_seen;
    }
  }
  return ghd;
}
}  // namespace

std::optional<GeneralizedHypertreeDecomposition> ReadGhd(std::istream& in,
                                                         std::string* error) {
  return ReadGhdImpl(in, error, nullptr, nullptr);
}

std::string WriteGhdToString(const GeneralizedHypertreeDecomposition& ghd,
                             const Hypergraph& h) {
  std::ostringstream out;
  WriteGhd(ghd, h, out);
  return out.str();
}

std::optional<GeneralizedHypertreeDecomposition> ReadGhdFromString(
    const std::string& text, std::string* error) {
  std::istringstream in(text);
  int declared = 0;
  int seen = 0;
  auto ghd = ReadGhdImpl(in, error, &declared, &seen);
  if (!ghd.has_value()) return std::nullopt;
  if (seen != declared) {
    SetError(error, "incomplete witness: " + std::to_string(seen) + " of " +
                        std::to_string(declared) + " nodes defined");
    return std::nullopt;
  }
  return ghd;
}

}  // namespace hypertree
