#include "io/dot.h"

#include <string>
#include <vector>

namespace hypertree {

namespace {

std::string BagLabel(const Hypergraph* h, const Bitset& bag) {
  std::string label;
  for (int v = bag.First(); v >= 0; v = bag.Next(v)) {
    if (!label.empty()) label += ", ";
    label += h != nullptr ? h->VertexName(v) : "v" + std::to_string(v);
  }
  return "{" + label + "}";
}

std::string LambdaLabel(const Hypergraph& h, const std::vector<int>& lambda) {
  std::string label;
  for (int e : lambda) {
    if (!label.empty()) label += ", ";
    label += h.EdgeName(e);
  }
  return "{" + label + "}";
}

}  // namespace

void WriteDot(const Graph& g, std::ostream& out) {
  out << "graph \"" << g.name() << "\" {\n";
  for (int v = 0; v < g.NumVertices(); ++v) {
    out << "  v" << v << ";\n";
  }
  for (auto [u, v] : g.Edges()) {
    out << "  v" << u << " -- v" << v << ";\n";
  }
  out << "}\n";
}

void WriteDot(const Hypergraph& h, std::ostream& out) {
  out << "graph \"" << h.name() << "\" {\n";
  for (int v = 0; v < h.NumVertices(); ++v) {
    out << "  v" << v << " [label=\"" << h.VertexName(v)
        << "\", shape=circle];\n";
  }
  for (int e = 0; e < h.NumEdges(); ++e) {
    out << "  e" << e << " [label=\"" << h.EdgeName(e)
        << "\", shape=box];\n";
    for (int v : h.EdgeVertices(e)) {
      out << "  e" << e << " -- v" << v << ";\n";
    }
  }
  out << "}\n";
}

void WriteDot(const TreeDecomposition& td, std::ostream& out) {
  out << "graph tree_decomposition {\n  node [shape=box];\n";
  for (int p = 0; p < td.NumNodes(); ++p) {
    out << "  b" << p << " [label=\"" << BagLabel(nullptr, td.Bag(p))
        << "\"];\n";
  }
  for (auto [a, b] : td.TreeEdges()) {
    out << "  b" << a << " -- b" << b << ";\n";
  }
  out << "}\n";
}

void WriteDot(const GeneralizedHypertreeDecomposition& ghd,
              const Hypergraph& h, std::ostream& out) {
  out << "graph ghd {\n  node [shape=box];\n";
  for (int p = 0; p < ghd.NumNodes(); ++p) {
    out << "  b" << p << " [label=\"chi=" << BagLabel(&h, ghd.td().Bag(p))
        << "\\nlambda=" << LambdaLabel(h, ghd.Lambda(p)) << "\"];\n";
  }
  for (auto [a, b] : ghd.td().TreeEdges()) {
    out << "  b" << a << " -- b" << b << ";\n";
  }
  out << "}\n";
}

void WriteDot(const HypertreeDecomposition& hd, const Hypergraph& h,
              std::ostream& out) {
  out << "graph hd {\n  node [shape=box];\n";
  for (int p = 0; p < hd.NumNodes(); ++p) {
    out << "  b" << p << " [label=\"chi=" << BagLabel(&h, hd.Chi(p))
        << "\\nlambda=" << LambdaLabel(h, hd.Lambda(p)) << "\"];\n";
  }
  for (int p = 0; p < hd.NumNodes(); ++p) {
    if (hd.Parent(p) != -1) {
      out << "  b" << hd.Parent(p) << " -- b" << p << ";\n";
    }
  }
  out << "}\n";
}

}  // namespace hypertree
