// A plain-text interchange format for generalized hypertree
// decompositions (in the spirit of detkdecomp's output):
//
//   s ghd <nodes> <width> <vertices> <hyperedges>
//   n <id> c <v1> <v2> ... ; l <e1> <e2> ...
//   e <a> <b>
//
// All ids are 1-based; 'c' lists the chi bag, 'l' the lambda label,
// 'e' lines are decomposition-tree edges. '%'-lines are comments.

#ifndef HYPERTREE_IO_GHD_FORMAT_H_
#define HYPERTREE_IO_GHD_FORMAT_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "ghd/ghd.h"
#include "hypergraph/hypergraph.h"

namespace hypertree {

/// Writes `ghd` (with vertex/edge names from `h` in comments).
void WriteGhd(const GeneralizedHypertreeDecomposition& ghd,
              const Hypergraph& h, std::ostream& out);

/// Parses a GHD; the caller validates it against the hypergraph.
std::optional<GeneralizedHypertreeDecomposition> ReadGhd(
    std::istream& in, std::string* error = nullptr);

/// WriteGhd into a string (the serve cache stores witnesses as text and
/// answers byte-identical hits from it).
std::string WriteGhdToString(const GeneralizedHypertreeDecomposition& ghd,
                             const Hypergraph& h);

/// ReadGhd from a string, additionally requiring that every declared node
/// carried an 'n' line (ReadGhd tolerates omitted nodes as empty-bag
/// nodes; a persisted witness must be complete to round-trip
/// byte-identically).
std::optional<GeneralizedHypertreeDecomposition> ReadGhdFromString(
    const std::string& text, std::string* error = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_IO_GHD_FORMAT_H_
