#include "serve/protocol.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hypertree::serve {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Writes all of `data` (retrying short writes / EINTR).
bool WriteAll(int fd, const char* data, size_t len, std::string* error) {
  size_t off = 0;
  while (off < len) {
    ssize_t w = ::write(fd, data + off, len - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      SetError(error, Errno("write"));
      return false;
    }
    off += static_cast<size_t>(w);
  }
  return true;
}

// Reads exactly `len` bytes. Returns 1 on success, 0 on EOF before the
// first byte, -1 on error or mid-buffer EOF.
int ReadExact(int fd, char* data, size_t len, std::string* error) {
  size_t off = 0;
  while (off < len) {
    ssize_t r = ::read(fd, data + off, len - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      SetError(error, Errno("read"));
      return -1;
    }
    if (r == 0) {
      if (off == 0) return 0;
      SetError(error, "truncated frame (connection closed mid-frame)");
      return -1;
    }
    off += static_cast<size_t>(r);
  }
  return 1;
}

}  // namespace

bool WriteFrame(int fd, const std::string& body, std::string* error) {
  if (body.size() > kMaxFrameBytes) {
    SetError(error, "frame body exceeds " + std::to_string(kMaxFrameBytes) +
                        " bytes");
    return false;
  }
  unsigned char header[4];
  uint32_t len = static_cast<uint32_t>(body.size());
  header[0] = static_cast<unsigned char>(len >> 24);
  header[1] = static_cast<unsigned char>(len >> 16);
  header[2] = static_cast<unsigned char>(len >> 8);
  header[3] = static_cast<unsigned char>(len);
  if (!WriteAll(fd, reinterpret_cast<char*>(header), 4, error)) return false;
  return WriteAll(fd, body.data(), body.size(), error);
}

int ReadFrame(int fd, std::string* body, std::string* error,
              size_t max_frame) {
  unsigned char header[4];
  int r = ReadExact(fd, reinterpret_cast<char*>(header), 4, error);
  if (r <= 0) return r;
  uint32_t len = (static_cast<uint32_t>(header[0]) << 24) |
                 (static_cast<uint32_t>(header[1]) << 16) |
                 (static_cast<uint32_t>(header[2]) << 8) |
                 static_cast<uint32_t>(header[3]);
  if (len > max_frame) {
    SetError(error, "frame of " + std::to_string(len) +
                        " bytes exceeds the " + std::to_string(max_frame) +
                        "-byte limit");
    return -1;
  }
  body->resize(len);
  if (len == 0) return 1;
  r = ReadExact(fd, body->data(), len, error);
  if (r == 0) {
    SetError(error, "truncated frame (connection closed after header)");
    return -1;
  }
  return r;
}

int ListenLoopback(int port, int* bound_port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, Errno("socket"));
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    SetError(error, Errno("bind 127.0.0.1:" + std::to_string(port)));
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) < 0) {
    SetError(error, Errno("listen"));
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      SetError(error, Errno("getsockname"));
      ::close(fd);
      return -1;
    }
    *bound_port = static_cast<int>(ntohs(bound.sin_port));
  }
  return fd;
}

int ConnectLoopback(int port, std::string* error) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    SetError(error, Errno("socket"));
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno == EINTR) continue;
    SetError(error, Errno("connect 127.0.0.1:" + std::to_string(port)));
    ::close(fd);
    return -1;
  }
  return fd;
}

}  // namespace hypertree::serve
