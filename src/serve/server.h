// The decomposition service: request handling (protocol-independent,
// unit-testable) and the socket serve loop behind tools/hypertree_serve.
//
// A request is one JSON object; `op` selects the action:
//
//   {"op":"decompose","instance":"<HyperBench text>","budget_seconds":5}
//   {"op":"ping"}       liveness probe
//   {"op":"stats"}      cache/counter snapshot
//   {"op":"shutdown"}   acknowledge, then stop the serve loop
//
// A decompose answer reports where it came from (`source`): "memory"
// (sharded DecompCache instance entry), "disk" (persistent store), or
// "solved" (portfolio run on a cold miss). All three produce
// byte-identical `witness` text for the same instance — see
// serve/cache_store.h. Only exactly-solved instances are cached; a
// budget-exhausted solve returns status "timeout" with the anytime
// bounds and best witness found, and the next request retries.

#ifndef HYPERTREE_SERVE_SERVER_H_
#define HYPERTREE_SERVE_SERVER_H_

#include <string>

#include "search/decomp_cache.h"
#include "serve/cache_store.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace hypertree::serve {

/// Server configuration (tools/hypertree_serve flags map 1:1).
struct ServerOptions {
  int port = 7411;               // 0: ephemeral (reported by ServeLoop)
  std::string cache_dir;         // empty: no disk level
  long long cache_max_bytes = 0;  // disk-store size cap; 0: uncapped
  std::string metrics_path;      // empty: no NDJSON metrics file
  double default_budget_seconds = 10.0;  // per-request solve budget
  int threads = 0;               // portfolio racing threads; 0: hardware
  int mem_shards = 16;           // DecompCache lock shards
  long max_requests = 0;         // stop after this many requests; 0: run on
};

/// Protocol-independent request handler plus the two cache levels.
/// Thread-compatible: external synchronization required if multiple
/// threads call Handle concurrently (the serve loop is single-threaded;
/// solves parallelize internally).
class DecompositionService {
 public:
  explicit DecompositionService(const ServerOptions& options);

  /// Handles one request document and returns the response document.
  /// Never throws; malformed requests produce {"status":"error",...}.
  /// `cancel` aborts an in-flight solve (the response degrades to
  /// status "timeout" with anytime bounds).
  Json Handle(const Json& request, const CancellationToken& cancel);

  /// One NDJSON metrics record for a handled (request, response) pair:
  /// op/status/source/key/width/wall_ms/solve_ms plus live cache-shard
  /// occupancy. `seq` is the 0-based request ordinal.
  Json MetricsRecord(long seq, const Json& response) const;

  DecompCache& cache() { return cache_; }
  const PersistentCacheStore& store() const { return store_; }

 private:
  Json HandleDecompose(const Json& request, const CancellationToken& cancel);
  Json HandleStats() const;

  ServerOptions options_;
  DecompCache cache_;
  PersistentCacheStore store_;
};

/// Runs the accept/dispatch loop on an already-bound listening socket
/// until a shutdown request arrives, `stop` is cancelled, or
/// `options.max_requests` answers have been sent. Single-threaded;
/// connections are served one at a time (solves use the portfolio's
/// thread pool internally). Appends one NDJSON metrics record per
/// request to `options.metrics_path` when set. Does not close
/// `listen_fd`. Returns 0 on clean shutdown, 1 on listener failure.
int ServeLoop(int listen_fd, DecompositionService& service,
              const ServerOptions& options, const CancellationToken& stop);

/// Binds 127.0.0.1:options.port and runs ServeLoop with SIGINT/SIGTERM
/// mapped onto `stop` cancellation. Returns a process exit code.
int RunServer(const ServerOptions& options);

}  // namespace hypertree::serve

#endif  // HYPERTREE_SERVE_SERVER_H_
