// Wire protocol for the decomposition service: length-prefixed frames
// carrying NDJSON bodies over a loopback TCP socket.
//
// Frame layout: 4-byte big-endian unsigned body length, then exactly
// that many bytes of UTF-8 JSON (one request or response document, no
// trailing newline required). Requests and responses alternate per
// frame on one connection; a client may keep the connection open and
// pipeline sequential requests. See docs/SERVING.md for the request and
// response schemas.

#ifndef HYPERTREE_SERVE_PROTOCOL_H_
#define HYPERTREE_SERVE_PROTOCOL_H_

#include <cstddef>
#include <string>

namespace hypertree::serve {

/// Frames larger than this are rejected on both ends (a malformed or
/// hostile length prefix must not trigger a giant allocation).
inline constexpr size_t kMaxFrameBytes = size_t{64} << 20;

/// Writes one frame to `fd` (handles short writes and EINTR). Returns
/// false and sets `*error` on failure or oversized bodies.
bool WriteFrame(int fd, const std::string& body, std::string* error);

/// Reads one frame from `fd`. Returns 1 and fills `*body` on success, 0
/// on clean EOF at a frame boundary, -1 (with `*error`) on malformed or
/// truncated input.
int ReadFrame(int fd, std::string* body, std::string* error,
              size_t max_frame = kMaxFrameBytes);

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 picks an
/// ephemeral port). Returns the listening fd and stores the bound port
/// in `*bound_port`; -1 with `*error` on failure.
int ListenLoopback(int port, int* bound_port, std::string* error);

/// Connects to 127.0.0.1:`port`. Returns the connected fd, or -1 with
/// `*error`.
int ConnectLoopback(int port, std::string* error);

}  // namespace hypertree::serve

#endif  // HYPERTREE_SERVE_PROTOCOL_H_
