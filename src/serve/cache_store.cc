#include "serve/cache_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "io/ghd_format.h"
#include "td/tree_decomposition.h"
#include "util/check.h"
#include "util/json.h"
#include "util/metrics.h"

namespace hypertree::serve {

namespace {

// One on-disk entry as seen by the eviction scan: its key, the summed
// size of its files, and the meta file's mtime (the LRU recency stamp).
struct DiskEntry {
  std::string key;
  long long bytes = 0;
  std::filesystem::file_time_type mtime;
};

// Enumerates committed entries (those with a .json meta file) under the
// two-hex-digit fanout directories. Unreadable files are skipped — a
// concurrent eviction or an in-flight .tmp rename is not an error.
std::vector<DiskEntry> ScanEntries(const std::string& dir) {
  std::vector<DiskEntry> entries;
  std::error_code ec;
  for (const auto& shard : std::filesystem::directory_iterator(dir, ec)) {
    if (!shard.is_directory(ec)) continue;
    for (const auto& file :
         std::filesystem::directory_iterator(shard.path(), ec)) {
      const std::filesystem::path& p = file.path();
      if (p.extension() != ".json") continue;
      DiskEntry entry;
      entry.key = p.stem().string();
      entry.mtime = std::filesystem::last_write_time(p, ec);
      if (ec) continue;
      entry.bytes = static_cast<long long>(std::filesystem::file_size(p, ec));
      if (ec) continue;
      std::filesystem::path ghd = p;
      ghd.replace_extension(".ghd");
      const auto ghd_bytes = std::filesystem::file_size(ghd, ec);
      if (!ec) entry.bytes += static_cast<long long>(ghd_bytes);
      entries.push_back(std::move(entry));
    }
  }
  return entries;
}

constexpr int kFieldBits = 15;
constexpr int kFieldMask = (1 << kFieldBits) - 1;

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

bool ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return in.good() || in.eof();
}

// Writes `data` to `path` atomically: temp file in the same directory,
// then rename (POSIX rename replaces the target atomically).
bool WriteFileAtomic(const std::string& path, const std::string& data,
                     std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      SetError(error, "cannot open " + tmp + " for writing");
      return false;
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out.good()) {
      SetError(error, "short write to " + tmp);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    SetError(error, "rename " + tmp + " -> " + path + ": " + ec.message());
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace

int PackMeta(const WitnessMeta& meta) {
  HT_CHECK(meta.width >= 0 && meta.width <= kFieldMask)
      << "width out of packable range: " << meta.width;
  HT_CHECK(meta.lower_bound >= 0 && meta.lower_bound <= kFieldMask)
      << "lower bound out of packable range: " << meta.lower_bound;
  return meta.width | (meta.lower_bound << kFieldBits) |
         (meta.exact ? 1 << (2 * kFieldBits) : 0);
}

WitnessMeta UnpackMeta(int packed) {
  WitnessMeta meta;
  meta.width = packed & kFieldMask;
  meta.lower_bound = (packed >> kFieldBits) & kFieldMask;
  meta.exact = ((packed >> (2 * kFieldBits)) & 1) != 0;
  return meta;
}

CachedSubtree SubtreeFromGhd(const GeneralizedHypertreeDecomposition& ghd) {
  const TreeDecomposition& td = ghd.td();
  const int num_nodes = td.NumNodes();
  CachedSubtree subtree;
  subtree.chi.reserve(num_nodes);
  subtree.lambda.reserve(num_nodes);
  subtree.parent.reserve(num_nodes);

  // Iterative DFS from the lowest-index unvisited node of each tree
  // component. Children are pushed in reverse neighbor order so they pop
  // (and get numbered) in ascending-neighbor order: the output order is
  // a pure function of the tree structure, independent of how the GHD's
  // node ids were assigned relative to each other within a visit.
  std::vector<int> order_of(num_nodes, -1);
  for (int root = 0; root < num_nodes; ++root) {
    if (order_of[root] != -1) continue;
    std::vector<std::pair<int, int>> stack;  // (node, parent subtree index)
    stack.emplace_back(root, -1);
    while (!stack.empty()) {
      auto [node, parent_index] = stack.back();
      stack.pop_back();
      if (order_of[node] != -1) continue;
      order_of[node] = static_cast<int>(subtree.chi.size());
      subtree.chi.push_back(td.Bag(node));
      subtree.lambda.push_back(ghd.Lambda(node));
      subtree.parent.push_back(parent_index);
      const std::vector<int>& neighbors = td.TreeNeighbors(node);
      for (auto it = neighbors.rbegin(); it != neighbors.rend(); ++it) {
        if (order_of[*it] == -1) stack.emplace_back(*it, order_of[node]);
      }
    }
  }
  return subtree;
}

GeneralizedHypertreeDecomposition GhdFromSubtree(const CachedSubtree& subtree) {
  const int num_nodes = static_cast<int>(subtree.chi.size());
  HT_CHECK_EQ(subtree.lambda.size(), subtree.chi.size());
  HT_CHECK_EQ(subtree.parent.size(), subtree.chi.size());
  const int num_vertices = num_nodes > 0 ? subtree.chi[0].size() : 0;
  TreeDecomposition td(num_vertices);
  for (int p = 0; p < num_nodes; ++p) td.AddNode(subtree.chi[p]);
  for (int p = 0; p < num_nodes; ++p) {
    if (subtree.parent[p] >= 0) {
      HT_CHECK_LT(subtree.parent[p], p) << "subtree not parent-first";
      td.AddTreeEdge(subtree.parent[p], p);
    }
  }
  GeneralizedHypertreeDecomposition ghd(std::move(td));
  for (int p = 0; p < num_nodes; ++p) ghd.SetLambda(p, subtree.lambda[p]);
  return ghd;
}

std::string CanonicalWitnessText(const CachedSubtree& subtree,
                                 const Hypergraph& h) {
  return WriteGhdToString(GhdFromSubtree(subtree), h);
}

PersistentCacheStore::PersistentCacheStore(std::string dir,
                                           long long max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {}

long long PersistentCacheStore::DiskUsageBytes() const {
  if (!enabled()) return 0;
  long long total = 0;
  for (const DiskEntry& entry : ScanEntries(dir_)) total += entry.bytes;
  return total;
}

void PersistentCacheStore::EvictToCap(const std::string& protect_key) const {
  std::vector<DiskEntry> entries = ScanEntries(dir_);
  long long total = 0;
  for (const DiskEntry& entry : entries) total += entry.bytes;
  if (total <= max_bytes_) return;
  // Oldest recency stamp first; key order breaks mtime ties so the
  // eviction order is deterministic on coarse-mtime filesystems.
  std::sort(entries.begin(), entries.end(),
            [](const DiskEntry& a, const DiskEntry& b) {
              if (a.mtime != b.mtime) return a.mtime < b.mtime;
              return a.key < b.key;
            });
  for (const DiskEntry& entry : entries) {
    if (total <= max_bytes_) break;
    if (entry.key == protect_key) continue;
    // Meta first: Load treats it as the commit marker, so a crash
    // mid-eviction leaves an orphan .ghd (invisible, re-storable), never
    // a meta that points at a deleted witness.
    std::error_code ec;
    std::filesystem::remove(EntryPath(entry.key, ".json"), ec);
    std::filesystem::remove(EntryPath(entry.key, ".ghd"), ec);
    total -= entry.bytes;
    metrics::GetCounter("serve.store.evictions").Increment();
    metrics::GetCounter("serve.store.evicted_bytes").Add(entry.bytes);
  }
}

std::string PersistentCacheStore::EntryPath(const std::string& key,
                                            const char* ext) const {
  // Two-hex-digit fanout keeps any one directory small (256-way split).
  return dir_ + "/" + key.substr(0, 2) + "/" + key + ext;
}

std::optional<StoredWitness> PersistentCacheStore::Load(
    const std::string& key, const std::string& canonical_text,
    std::string* error) const {
  if (!enabled()) return std::nullopt;
  const std::string meta_path = EntryPath(key, ".json");
  std::string meta_text;
  if (!ReadFileToString(meta_path, &meta_text)) return std::nullopt;

  std::string parse_error;
  std::optional<Json> meta_json = Json::Parse(meta_text, &parse_error);
  if (!meta_json.has_value() || !meta_json->is_object()) {
    SetError(error, "corrupt meta " + meta_path + ": " + parse_error);
    return std::nullopt;
  }
  const Json* stored_instance = meta_json->Find("instance");
  if (stored_instance == nullptr ||
      stored_instance->AsString() != canonical_text) {
    // Either truncated meta or a (vanishingly unlikely) hash collision:
    // the entry is not for this instance, so it must not answer.
    SetError(error, "instance text mismatch for key " + key);
    return std::nullopt;
  }

  StoredWitness witness;
  if (const Json* f = meta_json->Find("width")) {
    witness.meta.width = static_cast<int>(f->AsInt());
  }
  if (const Json* f = meta_json->Find("lower_bound")) {
    witness.meta.lower_bound = static_cast<int>(f->AsInt());
  }
  if (const Json* f = meta_json->Find("exact")) {
    witness.meta.exact = f->AsBool();
  }
  if (const Json* f = meta_json->Find("vertices")) {
    witness.vertices = static_cast<int>(f->AsInt());
  }
  if (const Json* f = meta_json->Find("edges")) {
    witness.edges = static_cast<int>(f->AsInt());
  }
  if (const Json* f = meta_json->Find("solver")) {
    witness.solver = f->AsString();
  }

  if (!ReadFileToString(EntryPath(key, ".ghd"), &witness.witness_text)) {
    SetError(error, "meta present but witness missing for key " + key);
    return std::nullopt;
  }
  std::string ghd_error;
  if (!ReadGhdFromString(witness.witness_text, &ghd_error).has_value()) {
    SetError(error, "corrupt witness for key " + key + ": " + ghd_error);
    return std::nullopt;
  }
  // Bump the LRU recency stamp. The stamp lives in the filesystem, so
  // the eviction order survives server restarts. Best-effort: a
  // read-only cache dir still answers hits, it just stops aging.
  std::error_code ec;
  std::filesystem::last_write_time(
      meta_path, std::filesystem::file_time_type::clock::now(), ec);
  return witness;
}

bool PersistentCacheStore::Store(const std::string& key,
                                 const std::string& canonical_text,
                                 const StoredWitness& witness,
                                 std::string* error) const {
  if (!enabled()) return true;
  std::error_code ec;
  std::filesystem::create_directories(dir_ + "/" + key.substr(0, 2), ec);
  if (ec) {
    SetError(error, "create_directories: " + ec.message());
    return false;
  }
  // Witness first, meta last: Load treats the meta file as the commit
  // marker, so a crash between the two writes leaves no visible entry.
  if (!WriteFileAtomic(EntryPath(key, ".ghd"), witness.witness_text, error)) {
    return false;
  }
  Json meta = Json::Object();
  meta.Set("key", key);
  meta.Set("width", witness.meta.width);
  meta.Set("lower_bound", witness.meta.lower_bound);
  meta.Set("exact", witness.meta.exact);
  meta.Set("vertices", witness.vertices);
  meta.Set("edges", witness.edges);
  meta.Set("solver", witness.solver);
  meta.Set("instance", canonical_text);
  if (!WriteFileAtomic(EntryPath(key, ".json"), meta.Dump() + "\n", error)) {
    return false;
  }
  if (max_bytes_ > 0) EvictToCap(key);
  return true;
}

}  // namespace hypertree::serve
