#include "serve/server.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "ghd/ghw_from_ordering.h"
#include "hypergraph/parser.h"
#include "io/ghd_format.h"
#include "ordering/ordering.h"
#include "portfolio/portfolio.h"
#include "serve/instance_hash.h"
#include "serve/protocol.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hypertree::serve {

namespace {

Json ErrorResponse(const std::string& message) {
  metrics::GetCounter("serve.errors").Increment();
  Json resp = Json::Object();
  resp.Set("status", "error");
  resp.Set("error", message);
  return resp;
}

}  // namespace

DecompositionService::DecompositionService(const ServerOptions& options)
    : options_(options),
      cache_(options.mem_shards),
      store_(options.cache_dir, options.cache_max_bytes) {}

Json DecompositionService::Handle(const Json& request,
                                  const CancellationToken& cancel) {
  metrics::GetCounter("serve.requests").Increment();
  if (!request.is_object()) return ErrorResponse("request is not an object");
  const Json* op = request.Find("op");
  if (op == nullptr) return ErrorResponse("missing field: op");
  const std::string& name = op->AsString();
  if (name == "ping") {
    Json resp = Json::Object();
    resp.Set("status", "ok");
    resp.Set("op", "ping");
    return resp;
  }
  if (name == "stats") return HandleStats();
  if (name == "decompose") return HandleDecompose(request, cancel);
  return ErrorResponse("unknown op: " + name);
}

Json DecompositionService::HandleDecompose(const Json& request,
                                           const CancellationToken& cancel) {
  Timer wall;
  const Json* instance = request.Find("instance");
  if (instance == nullptr || instance->AsString().empty()) {
    return ErrorResponse("missing field: instance");
  }
  std::string parse_error;
  std::optional<Hypergraph> parsed =
      ReadHypergraphFromString(instance->AsString(), &parse_error);
  if (!parsed.has_value()) {
    return ErrorResponse("cannot parse instance: " + parse_error);
  }
  if (parsed->NumEdges() == 0) {
    return ErrorResponse("instance has no hyperedges");
  }

  NormalizedInstance norm = NormalizeInstance(*parsed);

  std::string source;
  std::string witness;
  WitnessMeta meta;
  double solve_ms = 0.0;
  bool have_witness = false;

  // Level 1: sharded in-memory instance entries.
  int packed = 0;
  std::shared_ptr<const CachedSubtree> subtree;
  if (cache_.LookupInstance(norm.key_bits, &packed, &subtree) ==
      DecompCache::Outcome::kPositive) {
    source = "memory";
    meta = UnpackMeta(packed);
    witness = CanonicalWitnessText(*subtree, norm.hypergraph);
    have_witness = true;
    metrics::GetCounter("serve.hits_memory").Increment();
  }

  // Level 2: persistent content-addressed store.
  if (!have_witness && store_.enabled()) {
    std::optional<StoredWitness> stored =
        store_.Load(norm.key, norm.canonical_text);
    if (stored.has_value()) {
      source = "disk";
      meta = stored->meta;
      witness = stored->witness_text;
      have_witness = true;
      metrics::GetCounter("serve.hits_disk").Increment();
      // Promote into memory so the next hit skips the disk round trip.
      // The stored text was generated from the canonical subtree, so the
      // round trip re-derives it bit-for-bit.
      std::optional<GeneralizedHypertreeDecomposition> ghd =
          ReadGhdFromString(stored->witness_text);
      if (ghd.has_value()) {
        cache_.InsertInstance(
            norm.key_bits, PackMeta(stored->meta),
            std::make_shared<CachedSubtree>(SubtreeFromGhd(*ghd)));
      }
    }
  }

  // Miss: race the portfolio under the request budget.
  if (!have_witness) {
    double budget = options_.default_budget_seconds;
    if (const Json* b = request.Find("budget_seconds")) {
      budget = b->AsDouble(budget);
    }
    PortfolioOptions popts;
    popts.time_limit_seconds = budget;
    popts.threads = options_.threads;
    popts.cancel = cancel;
    Timer solve_timer;
    PortfolioResult solved = PortfolioGhw(norm.hypergraph, popts);
    solve_ms = solve_timer.ElapsedMillis();
    source = "solved";
    meta.width = solved.result.upper_bound;
    meta.lower_bound = solved.result.lower_bound;
    meta.exact = solved.result.exact;
    if (IsValidOrdering(solved.result.best_ordering,
                        norm.hypergraph.NumVertices())) {
      GhwEvaluator eval(norm.hypergraph);
      auto canonical = std::make_shared<CachedSubtree>(SubtreeFromGhd(
          eval.BuildGhd(solved.result.best_ordering, CoverMode::kExact)));
      witness = CanonicalWitnessText(*canonical, norm.hypergraph);
      have_witness = true;
      if (meta.exact) {
        cache_.InsertInstance(norm.key_bits, PackMeta(meta),
                              std::move(canonical));
        StoredWitness to_store;
        to_store.witness_text = witness;
        to_store.meta = meta;
        to_store.vertices = norm.hypergraph.NumVertices();
        to_store.edges = norm.hypergraph.NumEdges();
        to_store.solver = "portfolio";
        std::string store_error;
        if (!store_.Store(norm.key, norm.canonical_text, to_store,
                          &store_error)) {
          metrics::GetCounter("serve.store_failures").Increment();
          std::fprintf(stderr, "hypertree_serve: %s\n", store_error.c_str());
        }
      }
    }
    metrics::GetCounter(meta.exact ? "serve.misses_solved"
                                   : "serve.timeouts")
        .Increment();
  }

  Json resp = Json::Object();
  resp.Set("status", meta.exact || source != "solved" ? "ok" : "timeout");
  resp.Set("op", "decompose");
  resp.Set("key", norm.key);
  resp.Set("source", source);
  resp.Set("width", meta.width);
  resp.Set("exact", meta.exact);
  resp.Set("lower_bound", meta.lower_bound);
  resp.Set("vertices", norm.hypergraph.NumVertices());
  resp.Set("edges", norm.hypergraph.NumEdges());
  resp.Set("solve_ms", solve_ms);
  resp.Set("wall_ms", wall.ElapsedMillis());
  if (have_witness) resp.Set("witness", witness);
  return resp;
}

Json DecompositionService::HandleStats() const {
  DecompCacheStats stats = cache_.stats();
  Json resp = Json::Object();
  resp.Set("status", "ok");
  resp.Set("op", "stats");
  resp.Set("mem_entries", static_cast<long>(cache_.NumEntries()));
  resp.Set("mem_shards", cache_.num_shards());
  Json shard_entries = Json::Array();
  for (size_t count : cache_.ShardEntryCounts()) {
    shard_entries.Append(static_cast<long>(count));
  }
  resp.Set("shard_entries", std::move(shard_entries));
  resp.Set("cache_hits", stats.hits);
  resp.Set("cache_misses", stats.misses);
  resp.Set("cache_inserts", stats.inserts);
  resp.Set("disk_enabled", store_.enabled());
  if (store_.enabled()) {
    resp.Set("disk_bytes", store_.DiskUsageBytes());
    resp.Set("disk_max_bytes", store_.max_bytes());
  }
  return resp;
}

Json DecompositionService::MetricsRecord(long seq, const Json& response) const {
  Json record = Json::Object();
  record.Set("seq", seq);
  for (const char* field :
       {"op", "status", "source", "key", "width", "exact", "solve_ms",
        "wall_ms"}) {
    if (const Json* value = response.Find(field)) record.Set(field, *value);
  }
  record.Set("mem_entries", static_cast<long>(cache_.NumEntries()));
  Json shard_entries = Json::Array();
  for (size_t count : cache_.ShardEntryCounts()) {
    shard_entries.Append(static_cast<long>(count));
  }
  record.Set("shard_entries", std::move(shard_entries));
  DecompCacheStats stats = cache_.stats();
  record.Set("cache_hits", stats.hits);
  record.Set("cache_misses", stats.misses);
  record.Set("cache_inserts", stats.inserts);
  return record;
}

int ServeLoop(int listen_fd, DecompositionService& service,
              const ServerOptions& options, const CancellationToken& stop) {
  std::ofstream metrics_out;
  if (!options.metrics_path.empty()) {
    metrics_out.open(options.metrics_path, std::ios::app);
    if (!metrics_out) {
      std::fprintf(stderr, "hypertree_serve: cannot open metrics file %s\n",
                   options.metrics_path.c_str());
      return 1;
    }
  }
  long handled = 0;
  bool shutdown = false;
  auto done = [&] {
    return shutdown || stop.Cancelled() ||
           (options.max_requests > 0 && handled >= options.max_requests);
  };
  while (!done()) {
    // Poll with a short timeout so stop-cancellation (signals) is
    // noticed without a pending connection.
    pollfd pfd{listen_fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "hypertree_serve: poll failed\n");
      return 1;
    }
    if (ready == 0) continue;
    int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "hypertree_serve: accept failed\n");
      return 1;
    }
    std::string body;
    while (!done()) {
      std::string frame_error;
      int got = ReadFrame(conn, &body, &frame_error);
      if (got == 0) break;  // client closed cleanly
      if (got < 0) {
        std::fprintf(stderr, "hypertree_serve: %s\n", frame_error.c_str());
        break;
      }
      Json response;
      std::string parse_error;
      std::optional<Json> request = Json::Parse(body, &parse_error);
      if (!request.has_value() || !request->is_object()) {
        response = ErrorResponse("malformed request: " + parse_error);
      } else if (const Json* op = request->Find("op");
                 op != nullptr && op->AsString() == "shutdown") {
        shutdown = true;
        response = Json::Object();
        response.Set("status", "ok");
        response.Set("op", "shutdown");
      } else {
        response = service.Handle(*request, stop);
      }
      if (metrics_out.is_open()) {
        metrics_out << service.MetricsRecord(handled, response).Dump()
                    << "\n";
        metrics_out.flush();
      }
      ++handled;
      std::string write_error;
      if (!WriteFrame(conn, response.Dump(), &write_error)) {
        std::fprintf(stderr, "hypertree_serve: %s\n", write_error.c_str());
        break;
      }
      if (shutdown) break;
    }
    ::close(conn);
  }
  return 0;
}

namespace {

// The signal handler flips the serve loop's stop token. Cancel() is one
// relaxed atomic store through a pre-resolved pointer, which is safe in
// handler context.
CancellationToken* g_signal_stop = nullptr;

extern "C" void ServeSignalHandler(int) {
  if (g_signal_stop != nullptr) g_signal_stop->Cancel();
}

}  // namespace

int RunServer(const ServerOptions& options) {
  std::string error;
  int bound_port = 0;
  int listen_fd = ListenLoopback(options.port, &bound_port, &error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "hypertree_serve: %s\n", error.c_str());
    return 1;
  }
  DecompositionService service(options);
  static CancellationToken stop;
  g_signal_stop = &stop;
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  std::printf("hypertree_serve: listening on 127.0.0.1:%d\n", bound_port);
  std::fflush(stdout);
  int rc = ServeLoop(listen_fd, service, options, stop);
  ::close(listen_fd);
  return rc;
}

}  // namespace hypertree::serve
