#include "serve/instance_hash.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/check.h"

namespace hypertree::serve {

namespace {

// splitmix64 finalizer: the repo's standard strong integer mixer.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t Combine(uint64_t h, uint64_t v) { return Mix64(h ^ Mix64(v)); }

// Order-independent combine for multisets: sort first, then chain.
uint64_t CombineSorted(uint64_t h, std::vector<uint64_t>* values) {
  std::sort(values->begin(), values->end());
  for (uint64_t v : *values) h = Combine(h, v);
  return h;
}

}  // namespace

std::string HashText128(const std::string& text) {
  // Two independent FNV-1a streams with distinct offset bases, each
  // strengthened by a splitmix64 finalizer. Not cryptographic; the disk
  // layer verifies canonical text on hits, so a collision can at worst
  // cost an in-memory mis-hit with probability ~2^-64 per pair.
  constexpr uint64_t kPrime = 0x100000001b3ULL;
  uint64_t a = 0xcbf29ce484222325ULL;
  uint64_t b = 0x6c62272e07bb0142ULL;
  for (unsigned char c : text) {
    a = (a ^ c) * kPrime;
    b = (b ^ (c + 0x9eU)) * kPrime;
  }
  a = Mix64(a ^ Mix64(text.size()));
  b = Mix64(b ^ Mix64(~uint64_t{0} - text.size()));
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return std::string(buf, 32);
}

Bitset KeyToBits(const std::string& key) {
  HT_CHECK_EQ(key.size(), size_t{32}) << "malformed instance key";
  Bitset bits(128);
  for (int half = 0; half < 2; ++half) {
    uint64_t word = 0;
    for (int i = 0; i < 16; ++i) {
      char c = key[static_cast<size_t>(half * 16 + i)];
      uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint64_t>(c - '0');
      } else {
        HT_CHECK(c >= 'a' && c <= 'f') << "malformed instance key";
        digit = static_cast<uint64_t>(c - 'a' + 10);
      }
      word = (word << 4) | digit;
    }
    for (int i = 0; i < 64; ++i) {
      if ((word >> i) & 1) bits.Set(half * 64 + i);
    }
  }
  return bits;
}

NormalizedInstance NormalizeInstance(const Hypergraph& h) {
  const int n = h.NumVertices();
  const int m = h.NumEdges();

  // -- 1. WL color refinement on the incidence structure. --
  std::vector<uint64_t> color(n);
  for (int v = 0; v < n; ++v) {
    std::vector<uint64_t> sizes;
    sizes.reserve(h.IncidentEdges(v).size());
    for (int e : h.IncidentEdges(v)) {
      sizes.push_back(static_cast<uint64_t>(h.EdgeSize(e)));
    }
    color[v] = CombineSorted(Mix64(static_cast<uint64_t>(h.VertexDegree(v))),
                             &sizes);
  }
  std::vector<uint64_t> edge_sig(m);
  for (int round = 0; round < 4; ++round) {
    for (int e = 0; e < m; ++e) {
      std::vector<uint64_t> members;
      members.reserve(static_cast<size_t>(h.EdgeSize(e)));
      for (int v : h.EdgeVertices(e)) members.push_back(color[v]);
      edge_sig[e] = CombineSorted(Mix64(static_cast<uint64_t>(h.EdgeSize(e))),
                                  &members);
    }
    std::vector<uint64_t> next(n);
    for (int v = 0; v < n; ++v) {
      std::vector<uint64_t> sigs;
      sigs.reserve(h.IncidentEdges(v).size());
      for (int e : h.IncidentEdges(v)) sigs.push_back(edge_sig[e]);
      next[v] = CombineSorted(color[v], &sigs);
    }
    color.swap(next);
  }

  // -- 2. Canonical relabeling. --
  std::vector<int> by_rank(n);
  for (int v = 0; v < n; ++v) by_rank[v] = v;
  std::sort(by_rank.begin(), by_rank.end(), [&](int a, int b) {
    if (color[a] != color[b]) return color[a] < color[b];
    return a < b;  // tie-break: see header (best-effort completeness)
  });
  std::vector<int> label(n);
  for (int rank = 0; rank < n; ++rank) label[by_rank[rank]] = rank;

  std::vector<std::vector<int>> edges(m);
  for (int e = 0; e < m; ++e) {
    for (int v : h.EdgeVertices(e)) edges[e].push_back(label[v]);
    std::sort(edges[e].begin(), edges[e].end());
  }
  std::sort(edges.begin(), edges.end(), [](const std::vector<int>& a,
                                           const std::vector<int>& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });

  // -- 3. Canonical hypergraph, text and key. --
  NormalizedInstance out;
  out.hypergraph = Hypergraph(n);
  for (int v = 0; v < n; ++v) {
    std::string vname = "v";
    vname += std::to_string(v + 1);
    out.hypergraph.SetVertexName(v, std::move(vname));
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    std::string ename = "e";
    ename += std::to_string(e + 1);
    out.hypergraph.AddEdge(edges[e], std::move(ename));
  }
  std::string text = "% n=";
  text += std::to_string(n);
  text += " m=";
  text += std::to_string(m);
  for (size_t e = 0; e < edges.size(); ++e) {
    text += "\ne";
    text += std::to_string(e + 1);
    text += "(";
    for (size_t i = 0; i < edges[e].size(); ++i) {
      if (i > 0) text += ",";
      text += "v";
      text += std::to_string(edges[e][i] + 1);
    }
    text += ")";
    text += (e + 1 == edges.size()) ? "." : ",";
  }
  text += "\n";
  out.canonical_text = std::move(text);
  out.key = HashText128(out.canonical_text);
  out.key_bits = KeyToBits(out.key);
  out.hypergraph.set_name(out.key);
  return out;
}

}  // namespace hypertree::serve
