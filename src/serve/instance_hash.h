// Canonical instance normalization and content hashing for the
// decomposition service.
//
// Two requests must share a cache key whenever they describe the same
// hypergraph up to renaming: vertex names, edge names, the order edges
// are listed in and the order vertices are listed inside an edge carry
// no structural information, yet the HyperBench parser interns all of
// them in order of appearance. NormalizeInstance therefore relabels the
// instance canonically:
//
//   1. Weisfeiler-Leman-style color refinement on the incidence
//      structure (vertex color <- multiset of incident edge signatures,
//      edge signature <- multiset of member colors) separates vertices
//      by structural role.
//   2. Vertices are ranked by (final color, original id) and renamed
//      v1..vn in rank order; edges are rewritten over the new labels,
//      member-sorted, and lexicographically sorted (duplicates kept),
//      then renamed e1..em.
//   3. The canonical text is the HyperBench serialization of the result
//      plus an "% n=... m=..." header; the key is a 128-bit hash of it.
//
// Completeness is best-effort: vertices the refinement cannot separate
// fall back to original-id tie-breaking, so two presentations of a
// highly symmetric instance MAY land on different keys (a missed cache
// hit, never a wrong answer; vertices with identical incidence — the
// common symmetric case — canonicalize identically regardless of the
// tie-break). Soundness is by content hash: equal keys mean equal
// canonical text up to a 2^-128-scale hash collision, and the disk
// layer stores the canonical text and verifies it on every hit.

#ifndef HYPERTREE_SERVE_INSTANCE_HASH_H_
#define HYPERTREE_SERVE_INSTANCE_HASH_H_

#include <cstdint>
#include <string>

#include "hypergraph/hypergraph.h"
#include "util/bitset.h"

namespace hypertree::serve {

/// A canonically relabeled instance plus its content-addressed key.
struct NormalizedInstance {
  Hypergraph hypergraph;        // canonical labels; name() == key
  std::string canonical_text;   // deterministic serialization (hashed)
  std::string key;              // 32 lowercase hex digits (128-bit hash)
  Bitset key_bits;              // the same key as a Bitset(128)
};

/// Canonicalizes `h` (see file comment). Deterministic: the same input
/// structure yields byte-identical canonical_text on every run and
/// platform.
NormalizedInstance NormalizeInstance(const Hypergraph& h);

/// 128-bit content hash of `text` as 32 lowercase hex digits. Stable
/// across runs, platforms and builds (pure integer arithmetic, no
/// pointers or std::hash).
std::string HashText128(const std::string& text);

/// Packs the hex key into a Bitset(128) (bit i of word w = bit i of the
/// w-th 64-bit half). Aborts on malformed keys.
Bitset KeyToBits(const std::string& key);

}  // namespace hypertree::serve

#endif  // HYPERTREE_SERVE_INSTANCE_HASH_H_
