#include "hd/hypertree_decomposition.h"

#include <algorithm>

#include "util/check.h"

namespace hypertree {

int HypertreeDecomposition::AddNode(const Bitset& chi, std::vector<int> lambda,
                                    int parent) {
  HT_CHECK(chi.size() == n_);
  HT_CHECK(parent >= -1 && parent < NumNodes());
  HT_CHECK((parent == -1) == (NumNodes() == 0));
  int id = NumNodes();
  chi_.push_back(chi);
  lambda_.push_back(std::move(lambda));
  parent_.push_back(parent);
  children_.emplace_back();
  if (parent >= 0) children_[parent].push_back(id);
  return id;
}

int HypertreeDecomposition::Width() const {
  size_t w = 0;
  for (const auto& l : lambda_) w = std::max(w, l.size());
  return static_cast<int>(w);
}

Bitset HypertreeDecomposition::SubtreeChi(int p) const {
  Bitset acc = chi_[p];
  for (int c : children_[p]) acc |= SubtreeChi(c);
  return acc;
}

bool HypertreeDecomposition::IsValidFor(const Hypergraph& h,
                                        std::string* why) const {
  HT_CHECK(h.NumVertices() == n_);
  int m = NumNodes();
  if (m == 0) {
    if (why != nullptr) *why = "empty decomposition";
    return h.NumVertices() == 0;
  }
  // Condition 1: every hyperedge inside some chi bag.
  for (int e = 0; e < h.NumEdges(); ++e) {
    bool covered = false;
    for (int p = 0; p < m; ++p) {
      if (h.EdgeBits(e).IsSubsetOf(chi_[p])) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      if (why != nullptr) *why = "hyperedge " + h.EdgeName(e) + " uncovered";
      return false;
    }
  }
  // Condition 2: connectedness. With parent pointers, equivalent to:
  // for each vertex v, (#nodes with v) - 1 == #parent links where both
  // endpoints contain v.
  for (int v = 0; v < n_; ++v) {
    int nodes = 0, links = 0;
    for (int p = 0; p < m; ++p) {
      if (!chi_[p].Test(v)) continue;
      ++nodes;
      if (parent_[p] != -1 && chi_[parent_[p]].Test(v)) ++links;
    }
    if (nodes > 0 && links != nodes - 1) {
      if (why != nullptr)
        *why = "vertex " + std::to_string(v) + " violates connectedness";
      return false;
    }
  }
  // Condition 3: chi(p) subset of var(lambda(p)).
  for (int p = 0; p < m; ++p) {
    Bitset covered(n_);
    for (int e : lambda_[p]) covered |= h.EdgeBits(e);
    if (!chi_[p].IsSubsetOf(covered)) {
      if (why != nullptr)
        *why = "node " + std::to_string(p) + ": chi exceeds var(lambda)";
      return false;
    }
  }
  // Condition 4: var(lambda(p)) ∩ chi(T_p) ⊆ chi(p).
  for (int p = 0; p < m; ++p) {
    Bitset lam_vars(n_);
    for (int e : lambda_[p]) lam_vars |= h.EdgeBits(e);
    Bitset sub = SubtreeChi(p);
    lam_vars &= sub;
    if (!lam_vars.IsSubsetOf(chi_[p])) {
      if (why != nullptr)
        *why = "node " + std::to_string(p) + ": descendant condition violated";
      return false;
    }
  }
  return true;
}

void ValidateDecomposition(const Hypergraph& h,
                           const HypertreeDecomposition& hd) {
  std::string why;
  HT_CHECK(hd.IsValidFor(h, &why)) << "invalid hypertree decomposition: "
                                   << why;
}

}  // namespace hypertree
