// Hypertree decompositions (Gottlob, Leone & Scarcello): generalized
// hypertree decompositions satisfying the additional descendant condition
//
//   (4)  var(lambda(p)) ∩ chi(T_p)  ⊆  chi(p)
//
// where T_p is the subtree rooted at p. Condition 4 is what makes
// "hw(H) <= k" decidable in polynomial time for fixed k (unlike ghw), and
// ghw(H) <= hw(H) <= 3*ghw(H) + 1.

#ifndef HYPERTREE_HD_HYPERTREE_DECOMPOSITION_H_
#define HYPERTREE_HD_HYPERTREE_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/bitset.h"

namespace hypertree {

/// A rooted hypertree decomposition.
class HypertreeDecomposition {
 public:
  explicit HypertreeDecomposition(int num_vertices) : n_(num_vertices) {}

  /// Adds a node with chi bag `chi` and lambda label `lambda`; attaches it
  /// under `parent` (-1 for the root). Returns the node id.
  int AddNode(const Bitset& chi, std::vector<int> lambda, int parent);

  int NumNodes() const { return static_cast<int>(chi_.size()); }
  int root() const { return 0; }
  const Bitset& Chi(int p) const { return chi_[p]; }
  const std::vector<int>& Lambda(int p) const { return lambda_[p]; }
  int Parent(int p) const { return parent_[p]; }
  const std::vector<int>& Children(int p) const { return children_[p]; }

  /// Width: max lambda size.
  int Width() const;

  /// Checks conditions 1-3 (GHD) plus the descendant condition 4.
  bool IsValidFor(const Hypergraph& h, std::string* why = nullptr) const;

 private:
  Bitset SubtreeChi(int p) const;

  int n_;
  std::vector<Bitset> chi_;
  std::vector<std::vector<int>> lambda_;
  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
};

/// Fatal form of IsValidFor: aborts with the violated condition when the
/// decomposition breaks any of conditions 1-4 against `h`. Always
/// compiled; det-k-decomp invokes it on success when HT_DCHECKs are
/// enabled (see util/check.h).
void ValidateDecomposition(const Hypergraph& h,
                           const HypertreeDecomposition& hd);

}  // namespace hypertree

#endif  // HYPERTREE_HD_HYPERTREE_DECOMPOSITION_H_
