#include "hd/det_k_decomp.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bounds/ghw_lower_bounds.h"
#include "ghd/search_common.h"
#include "hypergraph/incidence_index.h"
#include "kernels/kernels.h"
#include "search/decomp_cache.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hypertree {

namespace {

// The per-edge-set VarsOfEdges memo is bounded so adversarial instances
// (exponentially many distinct components) cannot grow it without limit;
// at the cap the whole memo is dropped (deterministic, and the hot keys
// repopulate immediately).
constexpr size_t kVarsMemoMaxEntries = 1 << 16;

// Registry counters for the observability layer; resolved once, bumped
// with relaxed atomics on the hot paths.
metrics::Counter& DecomposeCallsMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.decompose_calls");
  return c;
}
metrics::Counter& SeparatorAttemptsMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.separator_attempts");
  return c;
}
metrics::Counter& SpliceMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.cache_splices");
  return c;
}
metrics::Counter& RootTasksMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.root_tasks");
  return c;
}
metrics::Counter& VarsMemoHitsMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.vars_memo_hits");
  return c;
}
metrics::Counter& VarsMemoEvictionsMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.vars_memo_evictions");
  return c;
}
metrics::Counter& ScratchBytesMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("detk.scratch_bytes_allocated");
  return c;
}

// Read-only problem description shared by all search workers. The
// incidence index is immutable, so sharing it across pool threads is
// race-free by construction.
struct DetKContext {
  const Hypergraph& h;
  const IncidenceIndex& index;
  int k;
  int n;
  int m;
  DecompCache* cache;  // nullptr: shared memoization disabled
};

// One det-k search worker. Workers own their node arrays, their
// VarsOfEdges memo and their scratch arena; the (component, connector, k)
// cache and the budget's tick counter are shared through DetKContext /
// SearchBudget. All enumeration orders are deterministic functions of the
// subproblem, so every worker that solves a subproblem positively records
// the *same* witness subtree — which is what makes sharing positive
// entries across threads result-deterministic.
//
// Steady-state allocation discipline: every set the separator-enumeration
// recursion manipulates (scopes, separator vertex unions, connectors,
// component edge sets, candidate lists) lives in a per-depth scratch
// frame that is constructed once and reused; slot construction is the
// only heap traffic and is counted in detk.scratch_bytes_allocated, which
// plateaus once the search reaches its maximum recursion depth.
class DetKWorker {
 public:
  DetKWorker(const DetKContext& ctx, SearchBudget budget,
             std::function<bool()> superseded = nullptr)
      : ctx_(ctx),
        budget_(std::move(budget)),
        superseded_(std::move(superseded)) {
    splitter_.Attach(&ctx.index);
    cand_gen_.Attach(&ctx.index);
  }

  bool aborted() const { return aborted_; }

  // True when the abort came from the superseded check (a lower-index
  // root task already succeeded), not from the budget.
  bool superseded_abort() const { return superseded_abort_; }

  // Tries to decompose `comp` under connecting vertices `conn`; appends
  // decomposition nodes under `parent` on success (rolled back on fail).
  // `depth` selects the scratch frame (root calls pass 0).
  bool Decompose(const Bitset& comp, const Bitset& conn, int parent,
                 int depth) {
    if (BudgetExceeded()) return false;
    if (comp.None()) return true;
    DecomposeCallsMetric().Increment();
    if (ctx_.cache != nullptr) {
      std::shared_ptr<const CachedSubtree> sub;
      switch (ctx_.cache->Lookup(comp, conn, ctx_.k, &sub)) {
        case DecompCache::Outcome::kNegative:
          return false;
        case DecompCache::Outcome::kPositive:
          Splice(*sub, parent);
          return true;
        case DecompCache::Outcome::kUnknown:
          break;
      }
    } else if (LocalFailed(comp, conn)) {
      return false;
    }
    size_t mark = chi_.size();
    bool ok = Search(comp, conn, parent, depth);
    if (ctx_.cache != nullptr) {
      if (ok) {
        ctx_.cache->InsertPositive(comp, conn, ctx_.k, Capture(mark));
      } else if (!aborted_) {
        ctx_.cache->InsertNegative(comp, conn, ctx_.k);
      }
    } else if (!ok && !aborted_) {
      failed_[comp].push_back(conn);
    }
    return ok;
  }

  // Explores the root separators whose lowest-index candidate is
  // candidates[from] (one task of the parallelized top-level loop;
  // mirrors one iteration of EnumerateSeparators at the root).
  bool RootTask(const Bitset& comp, const Bitset& conn, const Bitset& scope,
                const std::vector<int>& candidates, size_t from) {
    if (BudgetExceeded()) return false;
    RootTasksMetric().Increment();
    int e = candidates[from];
    std::vector<int> sep{e};
    return EnumerateSeparators(comp, conn, scope, candidates, from + 1, &sep,
                               ctx_.h.EdgeBits(e), /*parent=*/-1,
                               /*depth=*/0);
  }

  // Sorted candidate separator edges for (comp, conn): edges intersecting
  // the scope, those covering many connector vertices first (generated
  // word-parallel from the incidence index; deterministic count-desc,
  // id-asc order — identical to the old rescan + stable_sort).
  std::vector<int> Candidates(const Bitset& conn, const Bitset& scope) {
    std::vector<int> candidates;
    cand_gen_.SortedCandidates(conn, scope, &candidates);
    return candidates;
  }

  // var(edges), memoized per edge set: the same component/separator edge
  // sets recur on every recursion level. Bounded by kVarsMemoMaxEntries
  // (the whole memo is dropped at the cap; see detk.vars_memo_evictions).
  const Bitset& VarsOfEdges(const Bitset& edges) {
    auto it = vars_memo_.find(edges);
    if (it != vars_memo_.end()) {
      VarsMemoHitsMetric().Increment();
      return it->second;
    }
    if (vars_memo_.size() >= kVarsMemoMaxEntries) {
      VarsMemoEvictionsMetric().Add(static_cast<long>(vars_memo_.size()));
      vars_memo_.clear();
    }
    // One kernel OR-reduce over the index's edge->vertex arena.
    Bitset vars(ctx_.n);
    kernels::Active().OrReduceRows(
        vars.MutableWords(), ctx_.index.VertWords(), ctx_.index.EdgeVarRows(),
        ctx_.index.EdgeVarStride(), edges.Words(), edges.NumWords());
    return vars_memo_.emplace(edges, std::move(vars)).first->second;
  }

  // Recorded decomposition nodes, parent-first.
  std::vector<Bitset> chi_;
  std::vector<std::vector<int>> lambda_;
  std::vector<int> parent_;

 private:
  // Reusable per-recursion-depth scratch frame. References into a frame
  // stay valid while deeper frames are created (std::deque growth does
  // not move elements), and a frame is only written by recursion levels
  // at exactly its depth.
  struct DepthScratch {
    Bitset scope;                  // n bits: var(comp) | conn
    Bitset child_conn;             // n bits: var(child comp) & sep_vars
    std::vector<Bitset> sep_vars;  // per separator size s, slot s (n bits)
    std::vector<int> sep;
    std::vector<int> candidates;
    std::vector<Bitset> comps;     // component slots (m bits)
  };

  DepthScratch& ScratchAt(int depth) {
    while (static_cast<int>(scratch_.size()) <= depth) {
      scratch_.emplace_back();
      DepthScratch& s = scratch_.back();
      s.scope = Bitset(ctx_.n);
      s.child_conn = Bitset(ctx_.n);
      s.sep_vars.reserve(ctx_.k + 2);
      for (int i = 0; i < ctx_.k + 2; ++i) s.sep_vars.emplace_back(ctx_.n);
      ScratchBytesMetric().Add(static_cast<long>(ctx_.k + 4) *
                               ((ctx_.n + 63) / 64) * 8);
    }
    return scratch_[depth];
  }

  bool BudgetExceeded() {
    if (aborted_) return true;
    if (budget_.Tick()) {
      aborted_ = true;
    } else if (superseded_ != nullptr && superseded_()) {
      aborted_ = true;
      superseded_abort_ = true;
    }
    return aborted_;
  }

  // Deadline / cancellation / supersede poll that does NOT consume a
  // node-budget tick: separator attempts between two Decompose calls can
  // be numerous and individually slow (a component split each), so they
  // poll here to bound cancellation latency without changing the
  // semantics of max_nodes.
  bool PollCancelled() {
    if (aborted_) return true;
    if (budget_.PollDeadline()) {
      aborted_ = true;
    } else if (superseded_ != nullptr && superseded_()) {
      aborted_ = true;
      superseded_abort_ = true;
    }
    return aborted_;
  }

  bool LocalFailed(const Bitset& comp, const Bitset& conn) const {
    auto it = failed_.find(comp);
    if (it == failed_.end()) return false;
    for (const Bitset& c : it->second) {
      if (c == conn) return true;
    }
    return false;
  }

  // The separator enumeration for one (comp, conn) subproblem.
  bool Search(const Bitset& comp, const Bitset& conn, int parent, int depth) {
    DepthScratch& s = ScratchAt(depth);
    s.scope.AssignOr(VarsOfEdges(comp), conn);
    cand_gen_.SortedCandidates(conn, s.scope, &s.candidates);
    s.sep.clear();
    s.sep_vars[0].Clear();
    return EnumerateSeparators(comp, conn, s.scope, s.candidates, 0, &s.sep,
                               s.sep_vars[0], parent, depth);
  }

  // Recursively chooses up to k separator edges from candidates[from..).
  // A frame whose partial separator has size s reads `sep_vars` from slot
  // s of its depth's sep_vars stack (or a caller-owned set at the root)
  // and writes the extended union into slot s+1, so no live slot is ever
  // overwritten and the whole enumeration allocates nothing.
  bool EnumerateSeparators(const Bitset& comp, const Bitset& conn,
                           const Bitset& scope,
                           const std::vector<int>& candidates, size_t from,
                           std::vector<int>* sep, const Bitset& sep_vars,
                           int parent, int depth) {
    if (aborted_) return false;
    if (!sep->empty() && conn.IsSubsetOf(sep_vars)) {
      if (TrySeparator(comp, scope, *sep, sep_vars, parent, depth)) {
        return true;
      }
    }
    if (static_cast<int>(sep->size()) == ctx_.k) return false;
    DepthScratch& s = ScratchAt(depth);
    for (size_t i = from; i < candidates.size(); ++i) {
      int e = candidates[i];
      // Each added edge must contribute new scope vertices (otherwise it
      // neither helps covering conn nor splitting comp).
      if (!ctx_.h.EdgeBits(e).IntersectsAndNot(scope, sep_vars)) continue;
      Bitset& next_vars = s.sep_vars[sep->size() + 1];
      next_vars.AssignOr(sep_vars, ctx_.h.EdgeBits(e));
      sep->push_back(e);
      if (EnumerateSeparators(comp, conn, scope, candidates, i + 1, sep,
                              next_vars, parent, depth)) {
        return true;
      }
      sep->pop_back();
      if (aborted_) return false;
    }
    return false;
  }

  bool TrySeparator(const Bitset& comp, const Bitset& scope,
                    const std::vector<int>& sep, const Bitset& sep_vars,
                    int parent, int depth) {
    if (PollCancelled()) return false;
    SeparatorAttemptsMetric().Increment();
    DepthScratch& s = ScratchAt(depth);
    int ncomps = splitter_.Split(comp, sep_vars, &s.comps, 0);
    int comp_size = comp.Count();
    for (int i = 0; i < ncomps; ++i) {
      if (s.comps[i].Count() >= comp_size) return false;  // no progress
    }
    // Create the node; chi = var(lambda) ∩ (var(comp) ∪ conn).
    Bitset chi = sep_vars & scope;
    size_t rollback = chi_.size();
    chi_.push_back(std::move(chi));
    lambda_.push_back(sep);
    parent_.push_back(parent);
    int node = static_cast<int>(rollback);
    for (int i = 0; i < ncomps; ++i) {
      const Bitset& c = s.comps[i];
      s.child_conn.AssignAnd(VarsOfEdges(c), sep_vars);
      if (!Decompose(c, s.child_conn, node, depth + 1)) {
        chi_.resize(rollback);
        lambda_.resize(rollback);
        parent_.resize(rollback);
        return false;
      }
    }
    return true;
  }

  // Copies the nodes appended since `mark` into a relocatable subtree
  // (subtree-relative parents, -1 for the subtree root).
  std::shared_ptr<const CachedSubtree> Capture(size_t mark) const {
    auto sub = std::make_shared<CachedSubtree>();
    size_t count = chi_.size() - mark;
    sub->chi.reserve(count);
    sub->lambda.reserve(count);
    sub->parent.reserve(count);
    for (size_t i = mark; i < chi_.size(); ++i) {
      sub->chi.push_back(chi_[i]);
      sub->lambda.push_back(lambda_[i]);
      int p = parent_[i];
      sub->parent.push_back(p < static_cast<int>(mark)
                                ? -1
                                : p - static_cast<int>(mark));
    }
    return sub;
  }

  // Appends a recorded subtree under `parent`.
  void Splice(const CachedSubtree& sub, int parent) {
    SpliceMetric().Increment();
    int base = static_cast<int>(chi_.size());
    for (size_t i = 0; i < sub.chi.size(); ++i) {
      chi_.push_back(sub.chi[i]);
      lambda_.push_back(sub.lambda[i]);
      parent_.push_back(sub.parent[i] < 0 ? parent : base + sub.parent[i]);
    }
  }

  const DetKContext& ctx_;
  SearchBudget budget_;
  std::function<bool()> superseded_;
  bool aborted_ = false;
  bool superseded_abort_ = false;
  ComponentSplitter splitter_;
  CandidateGenerator cand_gen_;
  std::deque<DepthScratch> scratch_;
  std::unordered_map<Bitset, std::vector<Bitset>> failed_;  // cache-off mode
  std::unordered_map<Bitset, Bitset> vars_memo_;
};

std::optional<HypertreeDecomposition> BuildDecomposition(
    const DetKContext& ctx, const DetKWorker& worker) {
  HypertreeDecomposition hd(ctx.n);
  for (size_t p = 0; p < worker.chi_.size(); ++p) {
    hd.AddNode(worker.chi_[p], worker.lambda_[p], worker.parent_[p]);
  }
  // Every successful det-k run flows through here (including spliced
  // cache witnesses), so this debug check covers conditions 1-4 for all
  // of them.
  if (ht_internal::kDCheckEnabled) ValidateDecomposition(ctx.h, hd);
  return hd;
}

// Runs det-k with the given shared cache (may be null). The top-level
// separator loop is split per lowest-index candidate across the pool;
// the lowest successful index wins regardless of completion order, so
// the result is the one the sequential enumeration would produce.
std::optional<HypertreeDecomposition> RunDetK(const DetKContext& ctx,
                                              const SearchOptions& options,
                                              bool* aborted) {
  SearchBudget budget(options);
  Bitset all_edges(ctx.m);
  all_edges.SetAll();
  Bitset root_conn(ctx.n);

  int threads = options.threads > 0 ? options.threads
                                    : ThreadPool::HardwareThreads();

  if (threads <= 1) {
    DetKWorker worker(ctx, budget);
    bool ok = worker.Decompose(all_edges, root_conn, -1, /*depth=*/0);
    if (aborted != nullptr) *aborted = worker.aborted();
    if (!ok) return std::nullopt;
    return BuildDecomposition(ctx, worker);
  }

  // Root subproblem setup (mirrors DetKWorker::Search at the root).
  DetKWorker scout(ctx, budget);
  Bitset scope = scout.VarsOfEdges(all_edges) | root_conn;
  std::vector<int> candidates = scout.Candidates(root_conn, scope);
  if (candidates.empty()) {
    if (aborted != nullptr) *aborted = false;
    return std::nullopt;
  }

  std::atomic<int> best_index{INT_MAX};
  std::vector<std::unique_ptr<DetKWorker>> workers(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    workers[i] = std::make_unique<DetKWorker>(
        ctx, budget, [&best_index, i] {
          // Relaxed publish/poll is sound: best_index is a monotone
          // minimum, and a stale read only delays a worker's early exit —
          // the witness itself lives in the worker's own slot and is read
          // after pool.Wait(), which supplies the happens-before edge.
          // ht-analyze: allow(relaxed-publish)
          return best_index.load(std::memory_order_relaxed) <
                 static_cast<int>(i);
        });
  }
  {
    ThreadPool pool(threads);
    for (size_t i = 0; i < candidates.size(); ++i) {
      pool.Submit([&best_index, &workers, &all_edges, &root_conn, &scope,
                   &candidates, i] {
        // ht-analyze: allow(relaxed-publish) — stale poll only delays exit
        if (best_index.load(std::memory_order_relaxed) < static_cast<int>(i))
          return;  // already superseded before starting
        if (workers[i]->RootTask(all_edges, root_conn, scope, candidates,
                                 i)) {
          // Monotone-min CAS; winner data is in workers[i], synchronized
          // by Wait().
          // ht-analyze: allow(relaxed-publish)
          int seen = best_index.load(std::memory_order_relaxed);
          while (static_cast<int>(i) < seen &&
                 // ht-analyze: allow(relaxed-publish)
                 !best_index.compare_exchange_weak(
                     seen, static_cast<int>(i), std::memory_order_relaxed)) {
          }
        }
      });
    }
    pool.Wait();
  }

  // Wait() above orders every CAS before this read.
  // ht-analyze: allow(relaxed-publish)
  int winner = best_index.load(std::memory_order_relaxed);
  if (winner != INT_MAX) {
    if (aborted != nullptr) *aborted = false;
    return BuildDecomposition(ctx, *workers[winner]);
  }
  bool any_aborted = false;
  for (const auto& w : workers) {
    if (w->aborted() && !w->superseded_abort()) any_aborted = true;
  }
  if (aborted != nullptr) *aborted = any_aborted;
  return std::nullopt;
}

std::optional<HypertreeDecomposition> DetKDecompImpl(
    const Hypergraph& h, const IncidenceIndex& index, int k,
    const SearchOptions& options, DecompCache* cache, bool* aborted) {
  HT_CHECK_GE(k, 1);
  if (aborted != nullptr) *aborted = false;
  if (h.NumEdges() == 0) {
    return HypertreeDecomposition(h.NumVertices());
  }
  DetKContext ctx{h,
                  index,
                  k,
                  h.NumVertices(),
                  h.NumEdges(),
                  options.use_decomp_cache ? cache : nullptr};
  return RunDetK(ctx, options, aborted);
}

}  // namespace

std::optional<HypertreeDecomposition> DetKDecomp(const Hypergraph& h, int k,
                                                 const SearchOptions& options,
                                                 bool* aborted) {
  DecompCache cache;
  IncidenceIndex index(h);
  return DetKDecompImpl(h, index, k, options, &cache, aborted);
}

WidthResult HypertreeWidth(const Hypergraph& h, const SearchOptions& options,
                           std::optional<HypertreeDecomposition>* witness) {
  WidthResult res;
  Timer timer;
  Rng rng(options.seed);
  int lb = GhwLowerBound(h, &rng);  // ghw <= hw
  int m = h.NumEdges();
  if (m == 0) {
    res.exact = true;
    res.seconds = timer.ElapsedSeconds();
    return res;
  }
  res.lower_bound = lb;
  res.upper_bound = m;  // trivial: one node with all edges
  Deadline deadline(options.time_limit_seconds);
  // One incidence index and one cache for all k iterations: the index is
  // a function of the instance alone, and cache entries are keyed on k,
  // so refutation work at k never contaminates k+1 while the stats
  // aggregate naturally.
  IncidenceIndex index(h);
  DecompCache cache;
  if (options.exchange) options.exchange->PublishLowerBound(lb);
  for (int k = std::max(1, lb); k <= m; ++k) {
    // Width cap: proving hw <= k cannot improve on an upper bound of
    // max_width, so stop before k reaches it (the portfolio seeds this
    // with the prologue incumbent; deterministic, unlike the live poll).
    if (options.max_width > 0 && k >= options.max_width) break;
    // Live racing: skip k values a concurrent engine has already beaten
    // (a hypertree decomposition of width k is also a ghd of width k, so
    // only k < incumbent can improve the race).
    if (options.exchange && k >= options.exchange->IncumbentUpperBound())
      break;
    SearchOptions sub = options;
    if (options.time_limit_seconds > 0) {
      sub.time_limit_seconds =
          options.time_limit_seconds - deadline.ElapsedSeconds();
      if (sub.time_limit_seconds <= 0) break;
    }
    bool aborted = false;
    auto hd = DetKDecompImpl(h, index, k, sub, &cache, &aborted);
    if (hd.has_value()) {
      res.upper_bound = k;
      res.lower_bound = k;
      res.exact = true;
      if (witness != nullptr) *witness = std::move(hd);
      if (options.exchange) options.exchange->PublishUpperBound(k);
      break;
    }
    if (aborted) break;       // budget ran out: bounds only
    res.lower_bound = k + 1;  // hw > k proven
  }
  res.cache_stats = cache.stats();
  res.seconds = timer.ElapsedSeconds();
  return res;
}

}  // namespace hypertree
