#include "hd/det_k_decomp.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bounds/ghw_lower_bounds.h"
#include "ghd/search_common.h"
#include "search/decomp_cache.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hypertree {

namespace {

// Registry counters for the observability layer; resolved once, bumped
// with relaxed atomics on the hot paths.
metrics::Counter& DecomposeCallsMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.decompose_calls");
  return c;
}
metrics::Counter& SeparatorAttemptsMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.separator_attempts");
  return c;
}
metrics::Counter& SpliceMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.cache_splices");
  return c;
}
metrics::Counter& RootTasksMetric() {
  static metrics::Counter& c = metrics::GetCounter("detk.root_tasks");
  return c;
}

// Read-only problem description shared by all search workers.
struct DetKContext {
  const Hypergraph& h;
  int k;
  int n;
  int m;
  DecompCache* cache;  // nullptr: shared memoization disabled
};

// One det-k search worker. Workers own their node arrays and their
// VarsOfEdges memo; the (component, connector, k) cache and the budget's
// tick counter are shared through DetKContext / SearchBudget. All
// enumeration orders are deterministic functions of the subproblem, so
// every worker that solves a subproblem positively records the *same*
// witness subtree — which is what makes sharing positive entries across
// threads result-deterministic.
class DetKWorker {
 public:
  DetKWorker(const DetKContext& ctx, SearchBudget budget,
             std::function<bool()> superseded = nullptr)
      : ctx_(ctx),
        budget_(std::move(budget)),
        superseded_(std::move(superseded)) {}

  bool aborted() const { return aborted_; }

  // True when the abort came from the superseded check (a lower-index
  // root task already succeeded), not from the budget.
  bool superseded_abort() const { return superseded_abort_; }

  // Tries to decompose `comp` under connecting vertices `conn`; appends
  // decomposition nodes under `parent` on success (rolled back on fail).
  bool Decompose(const Bitset& comp, const Bitset& conn, int parent) {
    if (BudgetExceeded()) return false;
    if (comp.None()) return true;
    DecomposeCallsMetric().Increment();
    if (ctx_.cache != nullptr) {
      std::shared_ptr<const CachedSubtree> sub;
      switch (ctx_.cache->Lookup(comp, conn, ctx_.k, &sub)) {
        case DecompCache::Outcome::kNegative:
          return false;
        case DecompCache::Outcome::kPositive:
          Splice(*sub, parent);
          return true;
        case DecompCache::Outcome::kUnknown:
          break;
      }
    } else if (LocalFailed(comp, conn)) {
      return false;
    }
    size_t mark = chi_.size();
    bool ok = Search(comp, conn, parent);
    if (ctx_.cache != nullptr) {
      if (ok) {
        ctx_.cache->InsertPositive(comp, conn, ctx_.k, Capture(mark));
      } else if (!aborted_) {
        ctx_.cache->InsertNegative(comp, conn, ctx_.k);
      }
    } else if (!ok && !aborted_) {
      failed_[comp].push_back(conn);
    }
    return ok;
  }

  // Explores the root separators whose lowest-index candidate is
  // candidates[from] (one task of the parallelized top-level loop;
  // mirrors one iteration of EnumerateSeparators at the root).
  bool RootTask(const Bitset& comp, const Bitset& conn, const Bitset& scope,
                const std::vector<int>& candidates, size_t from) {
    if (BudgetExceeded()) return false;
    RootTasksMetric().Increment();
    int e = candidates[from];
    std::vector<int> sep{e};
    return EnumerateSeparators(comp, conn, scope, candidates, from + 1, &sep,
                               ctx_.h.EdgeBits(e), /*parent=*/-1);
  }

  // Sorted candidate separator edges for (comp, conn): edges intersecting
  // the scope, those covering many connector vertices first. Deterministic
  // (stable sort over the fixed edge order).
  std::vector<int> Candidates(const Bitset& conn, const Bitset& scope) const {
    std::vector<int> candidates;
    for (int e = 0; e < ctx_.m; ++e) {
      if (ctx_.h.EdgeBits(e).Intersects(scope)) candidates.push_back(e);
    }
    std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
      return ctx_.h.EdgeBits(a).IntersectCount(conn) >
             ctx_.h.EdgeBits(b).IntersectCount(conn);
    });
    return candidates;
  }

  // var(edges), memoized per edge set: the same component/separator edge
  // sets recur on every recursion level.
  const Bitset& VarsOfEdges(const Bitset& edges) {
    auto it = vars_memo_.find(edges);
    if (it != vars_memo_.end()) return it->second;
    Bitset vars(ctx_.n);
    for (int e = edges.First(); e >= 0; e = edges.Next(e)) {
      vars |= ctx_.h.EdgeBits(e);
    }
    return vars_memo_.emplace(edges, std::move(vars)).first->second;
  }

  // Recorded decomposition nodes, parent-first.
  std::vector<Bitset> chi_;
  std::vector<std::vector<int>> lambda_;
  std::vector<int> parent_;

 private:
  bool BudgetExceeded() {
    if (aborted_) return true;
    if (budget_.Tick()) {
      aborted_ = true;
    } else if (superseded_ != nullptr && superseded_()) {
      aborted_ = true;
      superseded_abort_ = true;
    }
    return aborted_;
  }

  bool LocalFailed(const Bitset& comp, const Bitset& conn) const {
    auto it = failed_.find(comp);
    if (it == failed_.end()) return false;
    for (const Bitset& c : it->second) {
      if (c == conn) return true;
    }
    return false;
  }

  // The separator enumeration for one (comp, conn) subproblem.
  bool Search(const Bitset& comp, const Bitset& conn, int parent) {
    Bitset scope = VarsOfEdges(comp) | conn;
    std::vector<int> candidates = Candidates(conn, scope);
    std::vector<int> sep;
    return EnumerateSeparators(comp, conn, scope, candidates, 0, &sep,
                               Bitset(ctx_.n), parent);
  }

  // Edge components of `comp` w.r.t. separator vertices `sep_vars`:
  // edges not fully inside sep_vars, grouped by connectivity through
  // vertices outside sep_vars.
  std::vector<Bitset> Components(const Bitset& comp,
                                 const Bitset& sep_vars) const {
    std::vector<int> pending;
    for (int e = comp.First(); e >= 0; e = comp.Next(e)) {
      if (!ctx_.h.EdgeBits(e).IsSubsetOf(sep_vars)) pending.push_back(e);
    }
    std::vector<Bitset> out;
    std::vector<bool> assigned(ctx_.m, false);
    for (int seed : pending) {
      if (assigned[seed]) continue;
      Bitset comp_edges(ctx_.m);
      Bitset frontier_vars = ctx_.h.EdgeBits(seed) - sep_vars;
      comp_edges.Set(seed);
      assigned[seed] = true;
      bool grew = true;
      while (grew) {
        grew = false;
        for (int e : pending) {
          if (assigned[e]) continue;
          Bitset outside = ctx_.h.EdgeBits(e) - sep_vars;
          if (outside.Intersects(frontier_vars)) {
            comp_edges.Set(e);
            assigned[e] = true;
            frontier_vars |= outside;
            grew = true;
          }
        }
      }
      out.push_back(comp_edges);
    }
    return out;
  }

  // Recursively chooses up to k separator edges from candidates[from..).
  bool EnumerateSeparators(const Bitset& comp, const Bitset& conn,
                           const Bitset& scope,
                           const std::vector<int>& candidates, size_t from,
                           std::vector<int>* sep, Bitset sep_vars,
                           int parent) {
    if (aborted_) return false;
    if (!sep->empty() && conn.IsSubsetOf(sep_vars)) {
      if (TrySeparator(comp, scope, *sep, sep_vars, parent)) {
        return true;
      }
    }
    if (static_cast<int>(sep->size()) == ctx_.k) return false;
    for (size_t i = from; i < candidates.size(); ++i) {
      int e = candidates[i];
      // Each added edge must contribute new scope vertices (otherwise it
      // neither helps covering conn nor splitting comp).
      Bitset contrib = ctx_.h.EdgeBits(e) & scope;
      if (contrib.IsSubsetOf(sep_vars)) continue;
      Bitset next_vars = sep_vars | ctx_.h.EdgeBits(e);
      sep->push_back(e);
      if (EnumerateSeparators(comp, conn, scope, candidates, i + 1, sep,
                              next_vars, parent)) {
        return true;
      }
      sep->pop_back();
      if (aborted_) return false;
    }
    return false;
  }

  bool TrySeparator(const Bitset& comp, const Bitset& scope,
                    const std::vector<int>& sep, const Bitset& sep_vars,
                    int parent) {
    SeparatorAttemptsMetric().Increment();
    std::vector<Bitset> comps = Components(comp, sep_vars);
    int comp_size = comp.Count();
    for (const Bitset& c : comps) {
      if (c.Count() >= comp_size) return false;  // no progress
    }
    // Create the node; chi = var(lambda) ∩ (var(comp) ∪ conn).
    Bitset chi = sep_vars & scope;
    size_t rollback = chi_.size();
    chi_.push_back(chi);
    lambda_.push_back(sep);
    parent_.push_back(parent);
    int node = static_cast<int>(rollback);
    for (const Bitset& c : comps) {
      Bitset child_conn = VarsOfEdges(c) & sep_vars;
      if (!Decompose(c, child_conn, node)) {
        chi_.resize(rollback);
        lambda_.resize(rollback);
        parent_.resize(rollback);
        return false;
      }
    }
    return true;
  }

  // Copies the nodes appended since `mark` into a relocatable subtree
  // (subtree-relative parents, -1 for the subtree root).
  std::shared_ptr<const CachedSubtree> Capture(size_t mark) const {
    auto sub = std::make_shared<CachedSubtree>();
    size_t count = chi_.size() - mark;
    sub->chi.reserve(count);
    sub->lambda.reserve(count);
    sub->parent.reserve(count);
    for (size_t i = mark; i < chi_.size(); ++i) {
      sub->chi.push_back(chi_[i]);
      sub->lambda.push_back(lambda_[i]);
      int p = parent_[i];
      sub->parent.push_back(p < static_cast<int>(mark)
                                ? -1
                                : p - static_cast<int>(mark));
    }
    return sub;
  }

  // Appends a recorded subtree under `parent`.
  void Splice(const CachedSubtree& sub, int parent) {
    SpliceMetric().Increment();
    int base = static_cast<int>(chi_.size());
    for (size_t i = 0; i < sub.chi.size(); ++i) {
      chi_.push_back(sub.chi[i]);
      lambda_.push_back(sub.lambda[i]);
      parent_.push_back(sub.parent[i] < 0 ? parent : base + sub.parent[i]);
    }
  }

  const DetKContext& ctx_;
  SearchBudget budget_;
  std::function<bool()> superseded_;
  bool aborted_ = false;
  bool superseded_abort_ = false;
  std::unordered_map<Bitset, std::vector<Bitset>> failed_;  // cache-off mode
  std::unordered_map<Bitset, Bitset> vars_memo_;
};

std::optional<HypertreeDecomposition> BuildDecomposition(
    const DetKContext& ctx, const DetKWorker& worker) {
  HypertreeDecomposition hd(ctx.n);
  for (size_t p = 0; p < worker.chi_.size(); ++p) {
    hd.AddNode(worker.chi_[p], worker.lambda_[p], worker.parent_[p]);
  }
  // Every successful det-k run flows through here (including spliced
  // cache witnesses), so this debug check covers conditions 1-4 for all
  // of them.
  if (ht_internal::kDCheckEnabled) ValidateDecomposition(ctx.h, hd);
  return hd;
}

// Runs det-k with the given shared cache (may be null). The top-level
// separator loop is split per lowest-index candidate across the pool;
// the lowest successful index wins regardless of completion order, so
// the result is the one the sequential enumeration would produce.
std::optional<HypertreeDecomposition> RunDetK(const DetKContext& ctx,
                                              const SearchOptions& options,
                                              bool* aborted) {
  SearchBudget budget(options);
  Bitset all_edges(ctx.m);
  all_edges.SetAll();
  Bitset root_conn(ctx.n);

  int threads = options.threads > 0 ? options.threads
                                    : ThreadPool::HardwareThreads();

  if (threads <= 1) {
    DetKWorker worker(ctx, budget);
    bool ok = worker.Decompose(all_edges, root_conn, -1);
    if (aborted != nullptr) *aborted = worker.aborted();
    if (!ok) return std::nullopt;
    return BuildDecomposition(ctx, worker);
  }

  // Root subproblem setup (mirrors DetKWorker::Search at the root).
  DetKWorker scout(ctx, budget);
  Bitset scope = scout.VarsOfEdges(all_edges) | root_conn;
  std::vector<int> candidates = scout.Candidates(root_conn, scope);
  if (candidates.empty()) {
    if (aborted != nullptr) *aborted = false;
    return std::nullopt;
  }

  std::atomic<int> best_index{INT_MAX};
  std::vector<std::unique_ptr<DetKWorker>> workers(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    workers[i] = std::make_unique<DetKWorker>(
        ctx, budget, [&best_index, i] {
          return best_index.load(std::memory_order_relaxed) <
                 static_cast<int>(i);
        });
  }
  {
    ThreadPool pool(threads);
    for (size_t i = 0; i < candidates.size(); ++i) {
      pool.Submit([&, i] {
        if (best_index.load(std::memory_order_relaxed) < static_cast<int>(i))
          return;  // already superseded before starting
        if (workers[i]->RootTask(all_edges, root_conn, scope, candidates,
                                 i)) {
          int seen = best_index.load(std::memory_order_relaxed);
          while (static_cast<int>(i) < seen &&
                 !best_index.compare_exchange_weak(
                     seen, static_cast<int>(i), std::memory_order_relaxed)) {
          }
        }
      });
    }
    pool.Wait();
  }

  int winner = best_index.load(std::memory_order_relaxed);
  if (winner != INT_MAX) {
    if (aborted != nullptr) *aborted = false;
    return BuildDecomposition(ctx, *workers[winner]);
  }
  bool any_aborted = false;
  for (const auto& w : workers) {
    if (w->aborted() && !w->superseded_abort()) any_aborted = true;
  }
  if (aborted != nullptr) *aborted = any_aborted;
  return std::nullopt;
}

std::optional<HypertreeDecomposition> DetKDecompImpl(
    const Hypergraph& h, int k, const SearchOptions& options,
    DecompCache* cache, bool* aborted) {
  HT_CHECK_GE(k, 1);
  if (aborted != nullptr) *aborted = false;
  if (h.NumEdges() == 0) {
    return HypertreeDecomposition(h.NumVertices());
  }
  DetKContext ctx{h, k, h.NumVertices(), h.NumEdges(),
                  options.use_decomp_cache ? cache : nullptr};
  return RunDetK(ctx, options, aborted);
}

}  // namespace

std::optional<HypertreeDecomposition> DetKDecomp(const Hypergraph& h, int k,
                                                 const SearchOptions& options,
                                                 bool* aborted) {
  DecompCache cache;
  return DetKDecompImpl(h, k, options, &cache, aborted);
}

WidthResult HypertreeWidth(const Hypergraph& h, const SearchOptions& options,
                           std::optional<HypertreeDecomposition>* witness) {
  WidthResult res;
  Timer timer;
  Rng rng(options.seed);
  int lb = GhwLowerBound(h, &rng);  // ghw <= hw
  int m = h.NumEdges();
  if (m == 0) {
    res.exact = true;
    res.seconds = timer.ElapsedSeconds();
    return res;
  }
  res.lower_bound = lb;
  res.upper_bound = m;  // trivial: one node with all edges
  Deadline deadline(options.time_limit_seconds);
  // One cache for all k iterations: entries are keyed on k, so refutation
  // work at k never contaminates k+1, but the stats aggregate naturally.
  DecompCache cache;
  for (int k = std::max(1, lb); k <= m; ++k) {
    SearchOptions sub = options;
    if (options.time_limit_seconds > 0) {
      sub.time_limit_seconds =
          options.time_limit_seconds - deadline.ElapsedSeconds();
      if (sub.time_limit_seconds <= 0) break;
    }
    bool aborted = false;
    auto hd = DetKDecompImpl(h, k, sub, &cache, &aborted);
    if (hd.has_value()) {
      res.upper_bound = k;
      res.lower_bound = k;
      res.exact = true;
      if (witness != nullptr) *witness = std::move(hd);
      break;
    }
    if (aborted) break;       // budget ran out: bounds only
    res.lower_bound = k + 1;  // hw > k proven
  }
  res.cache_stats = cache.stats();
  res.seconds = timer.ElapsedSeconds();
  return res;
}

}  // namespace hypertree
