#include "hd/det_k_decomp.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "bounds/ghw_lower_bounds.h"
#include "util/check.h"
#include "util/timer.h"

namespace hypertree {

namespace {

class DetKSearch {
 public:
  DetKSearch(const Hypergraph& h, int k, const SearchOptions& opts)
      : h_(h),
        k_(k),
        n_(h.NumVertices()),
        m_(h.NumEdges()),
        deadline_(opts.time_limit_seconds),
        max_nodes_(opts.max_nodes) {}

  bool aborted() const { return aborted_; }

  std::optional<HypertreeDecomposition> Run() {
    Bitset all_edges(m_);
    all_edges.SetAll();
    if (!Decompose(all_edges, Bitset(n_), -1)) return std::nullopt;
    // Convert the recorded nodes into a HypertreeDecomposition (nodes were
    // appended parent-first).
    HypertreeDecomposition hd(n_);
    for (size_t p = 0; p < chi_.size(); ++p) {
      hd.AddNode(chi_[p], lambda_[p], parent_[p]);
    }
    return hd;
  }

 private:
  Bitset VarsOfEdges(const Bitset& edges) const {
    Bitset vars(n_);
    for (int e = edges.First(); e >= 0; e = edges.Next(e)) {
      vars |= h_.EdgeBits(e);
    }
    return vars;
  }

  // Edge components of `comp` w.r.t. separator vertices `sep_vars`:
  // edges not fully inside sep_vars, grouped by connectivity through
  // vertices outside sep_vars.
  std::vector<Bitset> Components(const Bitset& comp,
                                 const Bitset& sep_vars) const {
    std::vector<int> pending;
    for (int e = comp.First(); e >= 0; e = comp.Next(e)) {
      if (!h_.EdgeBits(e).IsSubsetOf(sep_vars)) pending.push_back(e);
    }
    std::vector<Bitset> out;
    std::vector<bool> assigned(m_, false);
    for (int seed : pending) {
      if (assigned[seed]) continue;
      Bitset comp_edges(m_);
      Bitset frontier_vars = h_.EdgeBits(seed) - sep_vars;
      comp_edges.Set(seed);
      assigned[seed] = true;
      bool grew = true;
      while (grew) {
        grew = false;
        for (int e : pending) {
          if (assigned[e]) continue;
          Bitset outside = h_.EdgeBits(e) - sep_vars;
          if (outside.Intersects(frontier_vars)) {
            comp_edges.Set(e);
            assigned[e] = true;
            frontier_vars |= outside;
            grew = true;
          }
        }
      }
      out.push_back(comp_edges);
    }
    return out;
  }

  bool Failed(const Bitset& comp, const Bitset& conn) {
    auto it = failed_.find(comp);
    if (it == failed_.end()) return false;
    for (const Bitset& c : it->second) {
      if (c == conn) return true;
    }
    return false;
  }

  bool BudgetExceeded() {
    if (aborted_) return true;
    if ((++ticks_ & 63) == 0 && deadline_.Expired()) aborted_ = true;
    if (max_nodes_ > 0 && ticks_ >= max_nodes_) aborted_ = true;
    return aborted_;
  }

  // Tries to decompose `comp` under connecting vertices `conn`; appends
  // decomposition nodes under `parent` on success (rolled back on fail).
  bool Decompose(const Bitset& comp, const Bitset& conn, int parent) {
    if (BudgetExceeded()) return false;
    if (comp.None()) return true;
    if (Failed(comp, conn)) return false;

    Bitset comp_vars = VarsOfEdges(comp);
    Bitset scope = comp_vars | conn;

    // Candidate separator edges: must intersect the scope.
    std::vector<int> candidates;
    for (int e = 0; e < m_; ++e) {
      if (h_.EdgeBits(e).Intersects(scope)) candidates.push_back(e);
    }
    // Prefer edges covering many connector vertices.
    std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
      return h_.EdgeBits(a).IntersectCount(conn) >
             h_.EdgeBits(b).IntersectCount(conn);
    });

    std::vector<int> sep;
    bool ok = EnumerateSeparators(comp, conn, scope, candidates, 0, &sep,
                                  Bitset(n_), parent);
    if (!ok && !aborted_) failed_[comp].push_back(conn);
    return ok;
  }

  // Recursively chooses up to k_ separator edges from candidates[from..).
  bool EnumerateSeparators(const Bitset& comp, const Bitset& conn,
                           const Bitset& scope,
                           const std::vector<int>& candidates, size_t from,
                           std::vector<int>* sep, Bitset sep_vars,
                           int parent) {
    if (aborted_) return false;
    if (!sep->empty() && conn.IsSubsetOf(sep_vars)) {
      if (TrySeparator(comp, scope, *sep, sep_vars, parent)) {
        return true;
      }
    }
    if (static_cast<int>(sep->size()) == k_) return false;
    for (size_t i = from; i < candidates.size(); ++i) {
      int e = candidates[i];
      // Each added edge must contribute new scope vertices (otherwise it
      // neither helps covering conn nor splitting comp).
      Bitset contrib = h_.EdgeBits(e) & scope;
      if (contrib.IsSubsetOf(sep_vars)) continue;
      Bitset next_vars = sep_vars | h_.EdgeBits(e);
      sep->push_back(e);
      if (EnumerateSeparators(comp, conn, scope, candidates, i + 1, sep,
                              next_vars, parent)) {
        return true;
      }
      sep->pop_back();
      if (aborted_) return false;
    }
    return false;
  }

  bool TrySeparator(const Bitset& comp, const Bitset& scope,
                    const std::vector<int>& sep, const Bitset& sep_vars,
                    int parent) {
    std::vector<Bitset> comps = Components(comp, sep_vars);
    int comp_size = comp.Count();
    for (const Bitset& c : comps) {
      if (c.Count() >= comp_size) return false;  // no progress
    }
    // Create the node; chi = var(lambda) ∩ (var(comp) ∪ conn).
    Bitset chi = sep_vars & scope;
    size_t rollback = chi_.size();
    chi_.push_back(chi);
    lambda_.push_back(sep);
    parent_.push_back(parent);
    int node = static_cast<int>(rollback);
    for (const Bitset& c : comps) {
      Bitset child_conn = VarsOfEdges(c) & sep_vars;
      if (!Decompose(c, child_conn, node)) {
        chi_.resize(rollback);
        lambda_.resize(rollback);
        parent_.resize(rollback);
        return false;
      }
    }
    return true;
  }

  const Hypergraph& h_;
  int k_;
  int n_;
  int m_;
  Deadline deadline_;
  long max_nodes_;
  long ticks_ = 0;
  bool aborted_ = false;
  std::unordered_map<Bitset, std::vector<Bitset>> failed_;
  std::vector<Bitset> chi_;
  std::vector<std::vector<int>> lambda_;
  std::vector<int> parent_;
};

}  // namespace

std::optional<HypertreeDecomposition> DetKDecomp(const Hypergraph& h, int k,
                                                 const SearchOptions& options,
                                                 bool* aborted) {
  HT_CHECK(k >= 1);
  if (h.NumEdges() == 0) {
    if (aborted != nullptr) *aborted = false;
    return HypertreeDecomposition(h.NumVertices());
  }
  DetKSearch search(h, k, options);
  auto result = search.Run();
  if (aborted != nullptr) *aborted = search.aborted();
  return result;
}

WidthResult HypertreeWidth(const Hypergraph& h, const SearchOptions& options,
                           std::optional<HypertreeDecomposition>* witness) {
  WidthResult res;
  Timer timer;
  Rng rng(options.seed);
  int lb = GhwLowerBound(h, &rng);  // ghw <= hw
  int m = h.NumEdges();
  if (m == 0) {
    res.exact = true;
    res.seconds = timer.ElapsedSeconds();
    return res;
  }
  res.lower_bound = lb;
  res.upper_bound = m;  // trivial: one node with all edges
  Deadline deadline(options.time_limit_seconds);
  for (int k = std::max(1, lb); k <= m; ++k) {
    SearchOptions sub = options;
    if (options.time_limit_seconds > 0) {
      sub.time_limit_seconds =
          options.time_limit_seconds - deadline.ElapsedSeconds();
      if (sub.time_limit_seconds <= 0) break;
    }
    bool aborted = false;
    auto hd = DetKDecomp(h, k, sub, &aborted);
    if (hd.has_value()) {
      res.upper_bound = k;
      res.lower_bound = k;
      res.exact = true;
      if (witness != nullptr) *witness = std::move(hd);
      break;
    }
    if (aborted) break;       // budget ran out: bounds only
    res.lower_bound = k + 1;  // hw > k proven
  }
  res.seconds = timer.ElapsedSeconds();
  return res;
}

}  // namespace hypertree
