// det-k-decomp: the canonical decision procedure for hypertree width
// (Gottlob, Leone & Scarcello; the detkdecomp/newdetkdecomp OSS tools).
//
// Decides hw(H) <= k by recursively decomposing edge components: pick a
// separator lambda of at most k hyperedges covering the connecting
// vertices inherited from the parent, set chi = var(lambda) restricted to
// the component, split the remaining edges into subcomponents and recurse.
// Failed (component, connector) pairs are memoized. The normal-form
// theorem of GLS guarantees completeness, and the chi choice makes the
// descendant condition (4) hold by construction.

#ifndef HYPERTREE_HD_DET_K_DECOMP_H_
#define HYPERTREE_HD_DET_K_DECOMP_H_

#include <optional>

#include "hd/hypertree_decomposition.h"
#include "hypergraph/hypergraph.h"
#include "td/exact.h"

namespace hypertree {

/// Decides hw(h) <= k; returns a witness decomposition on success,
/// std::nullopt on failure or budget exhaustion (budget exhaustion also
/// sets *aborted when non-null).
std::optional<HypertreeDecomposition> DetKDecomp(const Hypergraph& h, int k,
                                                 const SearchOptions& options = {},
                                                 bool* aborted = nullptr);

/// Computes hw(h) by trying k = lb, lb+1, ... Returns anytime bounds;
/// `witness` (optional) receives the decomposition of upper_bound width.
WidthResult HypertreeWidth(const Hypergraph& h,
                           const SearchOptions& options = {},
                           std::optional<HypertreeDecomposition>* witness =
                               nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_HD_DET_K_DECOMP_H_
