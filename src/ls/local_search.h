// Local search metaheuristics over elimination orderings: hill climbing,
// simulated annealing, and iterated local search. These are the
// "alternative metaheuristics" direction the thesis' conclusion names as
// future work; they share the GA's search space (ch. 3) and neighborhood
// moves (the ISM/EM/DM mutation operators).

#ifndef HYPERTREE_LS_LOCAL_SEARCH_H_
#define HYPERTREE_LS_LOCAL_SEARCH_H_

#include <cstdint>
#include <functional>

#include "ga/ga.h"
#include "ghd/ghw_from_ordering.h"
#include "graph/graph.h"
#include "hypergraph/hypergraph.h"
#include "ordering/ordering.h"

namespace hypertree {

/// Which metaheuristic to run.
enum class LocalSearchMethod {
  kHillClimbing,        // first-improvement + sideways moves
  kSimulatedAnnealing,  // geometric cooling
  kIterated,            // hill climbing with DM perturbations on stagnation
};

/// Control knobs shared by the three methods.
struct LocalSearchConfig {
  LocalSearchMethod method = LocalSearchMethod::kIterated;
  long max_evaluations = 20000;
  uint64_t seed = 1;
  double time_limit_seconds = 0.0;
  // Simulated annealing schedule.
  double initial_temperature = 2.0;
  double cooling = 0.999;
  // Iterated local search: perturb after this many non-improving moves.
  int stagnation_limit = 200;
};

/// Result of a local search run (fields mirror GaResult).
struct LocalSearchResult {
  int best_fitness = 0;
  EliminationOrdering best;
  long evaluations = 0;
  double seconds = 0.0;
};

/// Runs local search over permutations of {0..num_genes-1} minimizing
/// `fitness` (starting from a random permutation).
LocalSearchResult RunLocalSearch(int num_genes, const FitnessFn& fitness,
                                 const LocalSearchConfig& config);

/// Treewidth upper bounds by local search.
LocalSearchResult LsTreewidth(const Graph& g,
                              const LocalSearchConfig& config = {});

/// ghw upper bounds by local search (greedy covers by default, matching
/// GA-ghw).
LocalSearchResult LsGhw(const Hypergraph& h,
                        const LocalSearchConfig& config = {},
                        CoverMode mode = CoverMode::kGreedy);

}  // namespace hypertree

#endif  // HYPERTREE_LS_LOCAL_SEARCH_H_
