#include "ls/local_search.h"

#include <cmath>

#include "ga/mutation.h"
#include "ordering/evaluator.h"
#include "util/rng.h"
#include "util/timer.h"

namespace hypertree {

namespace {

// Applies one random neighborhood move (ISM or EM, equiprobable).
void RandomMove(EliminationOrdering* p, Rng* rng) {
  Mutate(rng->Bernoulli(0.5) ? MutationOp::kIsm : MutationOp::kEm, p, rng);
}

}  // namespace

LocalSearchResult RunLocalSearch(int num_genes, const FitnessFn& fitness,
                                 const LocalSearchConfig& config) {
  Rng rng(config.seed);
  Timer timer;
  Deadline deadline(config.time_limit_seconds);
  LocalSearchResult res;
  if (num_genes == 0) {
    res.best_fitness = fitness({});
    res.evaluations = 1;
    res.seconds = timer.ElapsedSeconds();
    return res;
  }

  EliminationOrdering current = rng.Permutation(num_genes);
  int current_fit = fitness(current);
  ++res.evaluations;
  res.best = current;
  res.best_fitness = current_fit;

  double temperature = config.initial_temperature;
  int stagnation = 0;
  while (res.evaluations < config.max_evaluations && !deadline.Expired()) {
    EliminationOrdering candidate = current;
    RandomMove(&candidate, &rng);
    int fit = fitness(candidate);
    ++res.evaluations;

    bool accept = false;
    switch (config.method) {
      case LocalSearchMethod::kHillClimbing:
      case LocalSearchMethod::kIterated:
        accept = fit <= current_fit;  // sideways moves keep plateaus alive
        break;
      case LocalSearchMethod::kSimulatedAnnealing: {
        int delta = fit - current_fit;
        accept =
            delta <= 0 || rng.UniformDouble() < std::exp(-delta / temperature);
        temperature *= config.cooling;
        break;
      }
    }
    if (accept) {
      current = std::move(candidate);
      current_fit = fit;
    }
    if (fit < res.best_fitness) {
      res.best_fitness = fit;
      res.best = current;
      stagnation = 0;
    } else {
      ++stagnation;
    }
    if (config.method == LocalSearchMethod::kIterated &&
        stagnation >= config.stagnation_limit) {
      // Perturb the best-known solution with a displacement kick.
      current = res.best;
      Mutate(MutationOp::kDm, &current, &rng);
      current_fit = fitness(current);
      ++res.evaluations;
      stagnation = 0;
    }
  }
  res.seconds = timer.ElapsedSeconds();
  return res;
}

LocalSearchResult LsTreewidth(const Graph& g, const LocalSearchConfig& config) {
  return RunLocalSearch(
      g.NumVertices(),
      [&g](const EliminationOrdering& sigma) {
        return EvaluateOrderingWidth(g, sigma);
      },
      config);
}

LocalSearchResult LsGhw(const Hypergraph& h, const LocalSearchConfig& config,
                        CoverMode mode) {
  GhwEvaluator eval(h);
  Rng cover_rng(config.seed ^ 0xc0ffee);
  return RunLocalSearch(
      h.NumVertices(),
      [&eval, mode, &cover_rng](const EliminationOrdering& sigma) {
        return eval.EvaluateOrdering(sigma, mode, &cover_rng);
      },
      config);
}

}  // namespace hypertree
