// Backend-dispatch kernel layer for the bulk data-parallel primitives
// the decomposition searches and the relational engine run: multi-row
// AND/OR/ANDNOT with fused popcount, N-way OR-reduce over incidence
// rows, batched BFS frontier expansion, batched candidate scoring, and
// the join-engine key primitives (pack row keys into words, probe an
// open-addressed key table).
//
// The API is deliberately GPU-shaped (docs/KERNELS.md):
//
//   * every op is a pure data-parallel function over caller-owned word
//     buffers — no hidden allocation, no retained state, no ordering
//     dependence between output elements;
//   * rows live in flat row-major arenas (row r at rows + r * stride)
//     so a backend can stream, vectorize or shard them without touching
//     the Bitset object layout;
//   * buffers follow the padded-capacity contract: any buffer holding
//     `nwords` logical words is allocated with PaddedWords(nwords)
//     words and the padding words are zero. Bitset heap storage and
//     WordArena both guarantee this, which lets vector backends process
//     whole 256-bit lanes with no scalar tail.
//
// Three backends ship behind runtime dispatch:
//
//   scalar   one word at a time; the bit-identical reference oracle.
//   avx2     explicit 256-bit vectors over the same word layout
//            (compiled with per-function target attributes, selected
//            only when the CPU reports AVX2).
//   batched  shards large row batches across an internal worker pool,
//            delegating the per-row arithmetic to the best SIMD ops.
//            Output slots are disjoint per row, so results are
//            bit-identical regardless of worker count or schedule.
//
// All backends produce byte-identical outputs for identical inputs;
// tests/kernels_equivalence_test.cc hammers that invariant on ragged
// sizes and tests/kernels_tsan_test.cc shares one row arena across
// batched workers under TSan.

#ifndef HYPERTREE_KERNELS_KERNELS_H_
#define HYPERTREE_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace hypertree::kernels {

/// splitmix64 finalizer (Steele et al.): the canonical 64-bit mixer for
/// every hash table in the repo. hypertree::SplitMix64 (csp/relation.h)
/// aliases this definition, and the ProbeKeys kernels reproduce it
/// vector-wide — the three must stay bit-identical or packed-key tables
/// built by one layer become unprobable by another.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Kernel backend identifiers. kAuto resolves at dispatch time to the
/// best backend the CPU supports (avx2 when available, else scalar).
enum class Backend { kScalar = 0, kAvx2 = 1, kBatched = 2, kAuto = 3 };

/// Words per allocation granule: 4 words = 256 bits = one AVX2 lane.
inline constexpr int kWordsPerLane = 4;

/// Allocation capacity (in words) for a buffer of `nwords` logical
/// words under the padded-capacity contract. One-word buffers stay
/// one word (they may live inline in a Bitset); larger buffers round
/// up to a whole number of 256-bit lanes.
constexpr int PaddedWords(int nwords) {
  return nwords <= 1 ? nwords : (nwords + kWordsPerLane - 1) & ~(kWordsPerLane - 1);
}

/// Dispatch table of bulk bitwise primitives. Every function is pure:
/// results depend only on the argument values, never on the backend,
/// the thread count, or call history.
struct Ops {
  const char* name;

  /// dst = OR of rows[v] over the set bits v of `mask` (mask_words
  /// words); dst (nwords logical words) is cleared first. Returns the
  /// number of rows OR'd. The EdgesTouching / VarsOfEdges primitive.
  int (*OrReduceRows)(uint64_t* dst, int nwords, const uint64_t* rows,
                      size_t stride, const uint64_t* mask, int mask_words);

  /// dst = (OR of rows[v] over set bits v of `mask`) & filter, dst
  /// overwritten; *out_any reports whether any bit survived. Returns
  /// the number of rows OR'd. The batched BFS frontier-expansion
  /// primitive (expand a whole frontier, mask by the not-yet-assigned
  /// set, in one call).
  int (*OrReduceRowsFiltered)(uint64_t* dst, int nwords,
                              const uint64_t* rows, size_t stride,
                              const uint64_t* mask, int mask_words,
                              const uint64_t* filter, bool* out_any);

  /// BFS commit: acc |= reach and pending &= ~reach in one pass.
  void (*FrontierCommit)(uint64_t* acc, uint64_t* pending,
                         const uint64_t* reach, int nwords);

  /// For each set bit v of `mask`: sets bit v of out_mask iff
  /// (rows[v] & ~b) is non-empty. out_mask (mask_words words) is
  /// cleared first. Multi-row ANDNOT with fused emptiness test — the
  /// component-split seeding primitive (edges not inside a separator).
  void (*FilterRowsNotSubset)(uint64_t* out_mask, const uint64_t* rows,
                              size_t stride, const uint64_t* mask,
                              int mask_words, const uint64_t* b, int nwords);

  /// counts[i] = popcount(rows[idx[i]] & conn) for i in [0, k); idx ==
  /// nullptr means rows 0..k-1. The batched candidate-evaluation
  /// primitive: many separator/cover candidates scored per call.
  void (*ScoreRows)(int* counts, const uint64_t* rows, size_t stride,
                    const int* idx, int k, const uint64_t* conn, int nwords);

  /// max over r in [0, nrows) of popcount(rows[r] & conn); 0 when
  /// nrows == 0.
  int (*MaxIntersect)(const uint64_t* rows, size_t stride, int nrows,
                      const uint64_t* conn, int nwords);

  /// dst = a & b with fused popcount (dst may alias a or b).
  int (*AndCount)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                  int nwords);

  /// dst = a & ~b with fused popcount (dst may alias a or b).
  int (*AndNotCount)(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                     int nwords);

  /// popcount(a & b) without materializing the intersection.
  int (*IntersectCount)(const uint64_t* a, const uint64_t* b, int nwords);

  /// (a & ~b) == 0, i.e. a is a subset of b.
  bool (*AndNotIsEmpty)(const uint64_t* a, const uint64_t* b, int nwords);

  /// Join-engine key materialization: keys[r] = the k values
  /// rows[r * stride + pos[i]] packed big-endian (pos[0] in the top
  /// bits), `bits` bits per value, for r in [0, nrows). The caller
  /// guarantees every key value lies in [0, 2^bits) and k * bits <= 64.
  /// *out_min / *out_max receive the min / max packed key (the morsel
  /// zone-map metadata); an empty range yields min = ~0, max = 0.
  void (*PackKeys)(uint64_t* keys, const int* rows, size_t stride,
                   const int* pos, int k, int bits, int nrows,
                   uint64_t* out_min, uint64_t* out_max);

  /// Join-engine hash probe: for each packed key keys[r], linear-probes
  /// the open-addressed table (capacity mask + 1 slots, hash =
  /// SplitMix64(key) & mask, slot_vals[s] == -1 marks an empty slot) and
  /// writes the matching slot's value to out_val[r], or -1 when the key
  /// is absent. Returns the total number of occupied non-matching slots
  /// stepped past (the relation.probe_collisions contribution) —
  /// identical for every backend and schedule.
  long (*ProbeKeys)(int32_t* out_val, const uint64_t* keys, int nrows,
                    const uint64_t* slot_keys, const int32_t* slot_vals,
                    uint64_t mask);
};

/// True when the running CPU supports the AVX2 backend.
bool Avx2Available();

/// The backend kAuto resolves to on this machine.
Backend ResolveAuto();

/// Parses "auto" / "scalar" / "avx2" / "batched" (the --kernel-backend
/// flag values). Returns false on anything else.
bool ParseBackend(const std::string& s, Backend* out);

/// Stable lowercase name ("scalar", "avx2", "batched", "auto").
const char* BackendName(Backend b);

/// Selects the process-wide active backend. kAuto (the default) picks
/// ResolveAuto(); requesting kAvx2 on a CPU without AVX2 falls back to
/// scalar (recorded in the kernels.dispatch.* counters). Thread-safe;
/// intended to be called once at startup (tools) or per test.
void SetBackend(Backend b);

/// The currently active backend (after auto resolution).
Backend ActiveBackend();

/// Dispatch table of the active backend. The first call resolves the
/// HYPERTREE_KERNEL_BACKEND environment variable, so tools that never
/// pass --kernel-backend still honor a forced backend (bench smoke).
const Ops& Active();

/// Dispatch table of a specific backend (kAuto resolves first).
/// Requesting kAvx2 without CPU support returns the scalar table.
const Ops& GetOps(Backend b);

/// A 32-byte-aligned, zero-initialized word buffer for row-major
/// kernel arenas. Satisfies the padded-capacity contract for any row
/// layout whose stride is a PaddedWords() multiple (or 1 for packed
/// single-word rows).
class WordArena {
 public:
  WordArena() = default;
  explicit WordArena(size_t nwords);
  WordArena(WordArena&& o) noexcept;
  WordArena& operator=(WordArena&& o) noexcept;
  WordArena(const WordArena&) = delete;
  WordArena& operator=(const WordArena&) = delete;
  ~WordArena();

  uint64_t* data() { return data_; }
  const uint64_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  uint64_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace hypertree::kernels

#endif  // HYPERTREE_KERNELS_KERNELS_H_
