#include "kernels/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>

#include "kernels/kernels_internal.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace hypertree::kernels {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference backend: one word at a time, in ascending row / word
// order. Every other backend is checked byte-for-byte against these.
// ---------------------------------------------------------------------------

namespace scalar {

inline const uint64_t* Row(const uint64_t* rows, size_t stride, int r) {
  return rows + static_cast<size_t>(r) * stride;
}

int OrReduceColumns(uint64_t* dst, int clo, int chi, const uint64_t* rows,
                    size_t stride, const uint64_t* mask, int mask_words) {
  for (int i = clo; i < chi; ++i) dst[i] = 0;
  int nrows = 0;
  for (int w = 0; w < mask_words; ++w) {
    uint64_t m = mask[w];
    while (m != 0) {
      const int v = w * 64 + __builtin_ctzll(m);
      m &= m - 1;
      const uint64_t* row = Row(rows, stride, v);
      for (int i = clo; i < chi; ++i) dst[i] |= row[i];
      ++nrows;
    }
  }
  return nrows;
}

int OrReduceRows(uint64_t* dst, int nwords, const uint64_t* rows,
                 size_t stride, const uint64_t* mask, int mask_words) {
  return OrReduceColumns(dst, 0, nwords, rows, stride, mask, mask_words);
}

int OrReduceRowsFiltered(uint64_t* dst, int nwords, const uint64_t* rows,
                         size_t stride, const uint64_t* mask, int mask_words,
                         const uint64_t* filter, bool* out_any) {
  const int nrows = OrReduceColumns(dst, 0, nwords, rows, stride, mask,
                                    mask_words);
  uint64_t any = 0;
  for (int i = 0; i < nwords; ++i) {
    dst[i] &= filter[i];
    any |= dst[i];
  }
  *out_any = any != 0;
  return nrows;
}

void FrontierCommit(uint64_t* acc, uint64_t* pending, const uint64_t* reach,
                    int nwords) {
  for (int i = 0; i < nwords; ++i) {
    acc[i] |= reach[i];
    pending[i] &= ~reach[i];
  }
}

void FilterRowsNotSubsetRange(uint64_t* out_mask, const uint64_t* rows,
                              size_t stride, const uint64_t* mask, int wlo,
                              int whi, const uint64_t* b, int nwords) {
  for (int w = wlo; w < whi; ++w) {
    uint64_t out = 0;
    uint64_t m = mask[w];
    while (m != 0) {
      const int bit = __builtin_ctzll(m);
      m &= m - 1;
      const uint64_t* row = Row(rows, stride, w * 64 + bit);
      for (int i = 0; i < nwords; ++i) {
        if ((row[i] & ~b[i]) != 0) {
          out |= uint64_t{1} << bit;
          break;
        }
      }
    }
    out_mask[w] = out;
  }
}

void FilterRowsNotSubset(uint64_t* out_mask, const uint64_t* rows,
                         size_t stride, const uint64_t* mask, int mask_words,
                         const uint64_t* b, int nwords) {
  FilterRowsNotSubsetRange(out_mask, rows, stride, mask, 0, mask_words, b,
                           nwords);
}

void ScoreRowsRange(int* counts, const uint64_t* rows, size_t stride,
                    const int* idx, int lo, int hi, const uint64_t* conn,
                    int nwords) {
  for (int i = lo; i < hi; ++i) {
    const uint64_t* row = Row(rows, stride, idx != nullptr ? idx[i] : i);
    int c = 0;
    for (int w = 0; w < nwords; ++w) {
      c += __builtin_popcountll(row[w] & conn[w]);
    }
    counts[i] = c;
  }
}

void ScoreRows(int* counts, const uint64_t* rows, size_t stride,
               const int* idx, int k, const uint64_t* conn, int nwords) {
  ScoreRowsRange(counts, rows, stride, idx, 0, k, conn, nwords);
}

int MaxIntersectRange(const uint64_t* rows, size_t stride, int lo, int hi,
                      const uint64_t* conn, int nwords) {
  int best = 0;
  for (int r = lo; r < hi; ++r) {
    const uint64_t* row = Row(rows, stride, r);
    int c = 0;
    for (int w = 0; w < nwords; ++w) {
      c += __builtin_popcountll(row[w] & conn[w]);
    }
    if (c > best) best = c;
  }
  return best;
}

int MaxIntersect(const uint64_t* rows, size_t stride, int nrows,
                 const uint64_t* conn, int nwords) {
  return MaxIntersectRange(rows, stride, 0, nrows, conn, nwords);
}

int AndCount(uint64_t* dst, const uint64_t* a, const uint64_t* b,
             int nwords) {
  int c = 0;
  for (int i = 0; i < nwords; ++i) {
    dst[i] = a[i] & b[i];
    c += __builtin_popcountll(dst[i]);
  }
  return c;
}

int AndNotCount(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                int nwords) {
  int c = 0;
  for (int i = 0; i < nwords; ++i) {
    dst[i] = a[i] & ~b[i];
    c += __builtin_popcountll(dst[i]);
  }
  return c;
}

int IntersectCount(const uint64_t* a, const uint64_t* b, int nwords) {
  int c = 0;
  for (int i = 0; i < nwords; ++i) c += __builtin_popcountll(a[i] & b[i]);
  return c;
}

bool AndNotIsEmpty(const uint64_t* a, const uint64_t* b, int nwords) {
  for (int i = 0; i < nwords; ++i) {
    if ((a[i] & ~b[i]) != 0) return false;
  }
  return true;
}

void PackKeysRange(uint64_t* keys, const int* rows, size_t stride,
                   const int* pos, int k, int bits, int lo, int hi,
                   uint64_t* out_min, uint64_t* out_max) {
  uint64_t mn = ~uint64_t{0};
  uint64_t mx = 0;
  for (int r = lo; r < hi; ++r) {
    const int* row = rows + static_cast<size_t>(r) * stride;
    uint64_t key = 0;
    for (int i = 0; i < k; ++i) {
      key = (key << bits) |
            static_cast<uint64_t>(static_cast<uint32_t>(row[pos[i]]));
    }
    keys[r] = key;
    mn = std::min(mn, key);
    mx = std::max(mx, key);
  }
  *out_min = mn;
  *out_max = mx;
}

void PackKeys(uint64_t* keys, const int* rows, size_t stride, const int* pos,
              int k, int bits, int nrows, uint64_t* out_min,
              uint64_t* out_max) {
  PackKeysRange(keys, rows, stride, pos, k, bits, 0, nrows, out_min, out_max);
}

long ProbeKeysRange(int32_t* out_val, const uint64_t* keys, int lo, int hi,
                    const uint64_t* slot_keys, const int32_t* slot_vals,
                    uint64_t mask) {
  long collisions = 0;
  for (int r = lo; r < hi; ++r) {
    const uint64_t key = keys[r];
    size_t slot = SplitMix64(key) & mask;
    int32_t val = -1;
    while (slot_vals[slot] != -1) {
      if (slot_keys[slot] == key) {
        val = slot_vals[slot];
        break;
      }
      ++collisions;
      slot = (slot + 1) & mask;
    }
    out_val[r] = val;
  }
  return collisions;
}

long ProbeKeys(int32_t* out_val, const uint64_t* keys, int nrows,
               const uint64_t* slot_keys, const int32_t* slot_vals,
               uint64_t mask) {
  return ProbeKeysRange(out_val, keys, 0, nrows, slot_keys, slot_vals, mask);
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Batched backend: shards large row batches over an internal worker pool
// and delegates the per-shard arithmetic to the best SIMD table. Shards
// write disjoint output slots, so results are bit-identical to the
// scalar oracle regardless of worker count or scheduling.
//
// The pool is module-owned and distinct from the search ThreadPools: a
// batched kernel called from inside a search worker must never Wait()
// on the pool that worker came from (classic nested-wait deadlock).
// ---------------------------------------------------------------------------

namespace batched {

// Below these sizes the task-wave overhead dwarfs the work; delegate to
// the SIMD table in the calling thread. Calibrated from the
// bench_micro_kernels backend sweeps (BM_KernelScoreRows /
// BM_KernelOrReduce / BM_KernelPackKeys / BM_KernelProbeKeys; see
// docs/KERNELS.md, "Calibrating the batched shard thresholds"): one
// wave costs ~5us of submit+wake+wait, and a shape only shards when its
// single-thread SIMD time is at least 4x that, so a second worker
// already wins with a 2x margin. Thresholds stay fixed constants (not
// tuned per machine at runtime) so the shard/no-shard decision — and
// thus the kernels.batched.* counters — is deterministic.
constexpr int kMinRowsToShard = 256;      // floor: a wave needs rows to split
constexpr long kMinWordsToShard = 65536;  // ~0.35ns/word-op -> ~23us of work
constexpr int kMinColumnsToShard = 4096;  // ~50ns/word at bench row counts
constexpr int kMinKeysToShard = 16384;    // ~1.65ns/key packed -> ~27us

ThreadPool& Pool() {
  static ThreadPool* pool =
      new ThreadPool(std::min(8, ThreadPool::HardwareThreads()));
  return *pool;
}

// Serializes task waves so Pool().Wait() only ever waits on this wave's
// shards (concurrent searches can issue batched kernels simultaneously).
std::mutex& WaveMu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

metrics::Counter& WaveCounter() {
  static metrics::Counter& c = metrics::GetCounter("kernels.batched.waves");
  return c;
}

// Splits [0, n) into roughly equal shards and runs `fn(lo, hi)` for each
// on the pool, blocking until all shards finish.
template <typename Fn>
void RunWave(int n, const Fn& fn) {
  ThreadPool& pool = Pool();
  const int nshards = std::min(pool.NumThreads(), n);
  std::lock_guard<std::mutex> lock(WaveMu());
  WaveCounter().Increment();
  for (int s = 0; s < nshards; ++s) {
    const int lo = static_cast<int>(static_cast<long>(n) * s / nshards);
    const int hi = static_cast<int>(static_cast<long>(n) * (s + 1) / nshards);
    pool.Submit([&fn, lo, hi] { fn(lo, hi); });
  }
  pool.Wait();
}

void ScoreRows(int* counts, const uint64_t* rows, size_t stride,
               const int* idx, int k, const uint64_t* conn, int nwords) {
  if (k < kMinRowsToShard ||
      static_cast<long>(k) * nwords < kMinWordsToShard) {
    internal::SimdRaw().ScoreRows(counts, rows, stride, idx, k, conn, nwords);
    return;
  }
  RunWave(k, [&](int lo, int hi) {
    internal::SimdRange().ScoreRowsRange(counts, rows, stride, idx, lo, hi,
                                         conn, nwords);
  });
}

int MaxIntersect(const uint64_t* rows, size_t stride, int nrows,
                 const uint64_t* conn, int nwords) {
  if (nrows < kMinRowsToShard ||
      static_cast<long>(nrows) * nwords < kMinWordsToShard) {
    return internal::SimdRaw().MaxIntersect(rows, stride, nrows, conn,
                                            nwords);
  }
  int shard_best[64] = {};
  std::atomic<int> next{0};
  RunWave(nrows, [&](int lo, int hi) {
    const int slot = next.fetch_add(1, std::memory_order_relaxed);
    shard_best[slot] =
        internal::SimdRange().MaxIntersectRange(rows, stride, lo, hi, conn,
                                                nwords);
  });
  // max() is commutative, so combining in slot order is deterministic
  // even though shard-to-slot assignment is not.
  int best = 0;
  for (int b : shard_best) best = std::max(best, b);
  return best;
}

void FilterRowsNotSubset(uint64_t* out_mask, const uint64_t* rows,
                         size_t stride, const uint64_t* mask, int mask_words,
                         const uint64_t* b, int nwords) {
  if (mask_words * 64 < kMinRowsToShard ||
      static_cast<long>(mask_words) * 64 * nwords < kMinWordsToShard) {
    internal::SimdRaw().FilterRowsNotSubset(out_mask, rows, stride, mask,
                                            mask_words, b, nwords);
    return;
  }
  RunWave(mask_words, [&](int wlo, int whi) {
    internal::SimdRange().FilterRowsNotSubsetRange(out_mask, rows, stride,
                                                   mask, wlo, whi, b, nwords);
  });
}

int OrReduceRows(uint64_t* dst, int nwords, const uint64_t* rows,
                 size_t stride, const uint64_t* mask, int mask_words) {
  if (nwords < kMinColumnsToShard) {
    return internal::SimdRaw().OrReduceRows(dst, nwords, rows, stride, mask,
                                            mask_words);
  }
  // Column sharding: each worker OR-reduces its own word range of every
  // masked row. Only worthwhile on very wide universes (>= 256k bits).
  std::atomic<int> nrows{0};
  RunWave(nwords, [&](int clo, int chi) {
    const int n = internal::SimdRange().OrReduceColumns(dst, clo, chi, rows,
                                                        stride, mask,
                                                        mask_words);
    nrows.store(n, std::memory_order_relaxed);  // identical in every shard
  });
  return nrows.load(std::memory_order_relaxed);
}

int OrReduceRowsFiltered(uint64_t* dst, int nwords, const uint64_t* rows,
                         size_t stride, const uint64_t* mask, int mask_words,
                         const uint64_t* filter, bool* out_any) {
  if (nwords < kMinColumnsToShard) {
    return internal::SimdRaw().OrReduceRowsFiltered(
        dst, nwords, rows, stride, mask, mask_words, filter, out_any);
  }
  const int nrows = OrReduceRows(dst, nwords, rows, stride, mask, mask_words);
  uint64_t any = 0;
  for (int i = 0; i < nwords; ++i) {
    dst[i] &= filter[i];
    any |= dst[i];
  }
  *out_any = any != 0;
  return nrows;
}

void PackKeys(uint64_t* keys, const int* rows, size_t stride, const int* pos,
              int k, int bits, int nrows, uint64_t* out_min,
              uint64_t* out_max) {
  if (nrows < kMinKeysToShard) {
    internal::SimdRaw().PackKeys(keys, rows, stride, pos, k, bits, nrows,
                                 out_min, out_max);
    return;
  }
  uint64_t shard_min[64];
  uint64_t shard_max[64];
  for (int i = 0; i < 64; ++i) {
    shard_min[i] = ~uint64_t{0};
    shard_max[i] = 0;
  }
  std::atomic<int> next{0};
  RunWave(nrows, [&](int lo, int hi) {
    const int slot = next.fetch_add(1, std::memory_order_relaxed);
    internal::SimdRange().PackKeysRange(keys, rows, stride, pos, k, bits, lo,
                                        hi, &shard_min[slot],
                                        &shard_max[slot]);
  });
  // min/max are commutative, so combining in slot order is deterministic
  // even though shard-to-slot assignment is not.
  uint64_t mn = ~uint64_t{0};
  uint64_t mx = 0;
  for (int i = 0; i < 64; ++i) {
    mn = std::min(mn, shard_min[i]);
    mx = std::max(mx, shard_max[i]);
  }
  *out_min = mn;
  *out_max = mx;
}

long ProbeKeys(int32_t* out_val, const uint64_t* keys, int nrows,
               const uint64_t* slot_keys, const int32_t* slot_vals,
               uint64_t mask) {
  if (nrows < kMinKeysToShard) {
    return internal::SimdRaw().ProbeKeys(out_val, keys, nrows, slot_keys,
                                         slot_vals, mask);
  }
  // Collision counts sum commutatively across shards, so the total is
  // schedule-independent.
  std::atomic<long> collisions{0};
  RunWave(nrows, [&](int lo, int hi) {
    const long c = internal::SimdRange().ProbeKeysRange(
        out_val, keys, lo, hi, slot_keys, slot_vals, mask);
    collisions.fetch_add(c, std::memory_order_relaxed);
  });
  return collisions.load(std::memory_order_relaxed);
}

}  // namespace batched

// ---------------------------------------------------------------------------
// Dispatch: public tables wrap the raw backends with per-backend row
// counters (only the row-batch ops count; the single-pair ops are too
// hot for even a relaxed atomic per call).
// ---------------------------------------------------------------------------

template <Backend B>
const Ops& RawFor();

template <>
const Ops& RawFor<Backend::kScalar>() {
  return internal::ScalarRaw();
}
template <>
const Ops& RawFor<Backend::kAvx2>() {
  return internal::Avx2Raw();
}
template <>
const Ops& RawFor<Backend::kBatched>() {
  static const Ops table = [] {
    Ops t = internal::SimdRaw();
    t.name = "batched";
    t.OrReduceRows = batched::OrReduceRows;
    t.OrReduceRowsFiltered = batched::OrReduceRowsFiltered;
    t.FilterRowsNotSubset = batched::FilterRowsNotSubset;
    t.ScoreRows = batched::ScoreRows;
    t.MaxIntersect = batched::MaxIntersect;
    t.PackKeys = batched::PackKeys;
    t.ProbeKeys = batched::ProbeKeys;
    return t;
  }();
  return table;
}

template <Backend B>
metrics::Counter& RowsCounter() {
  static metrics::Counter& c = metrics::GetCounter(
      std::string("kernels.rows.") + BackendName(B));
  return c;
}

template <Backend B>
metrics::Counter& CallsCounter() {
  static metrics::Counter& c = metrics::GetCounter(
      std::string("kernels.calls.") + BackendName(B));
  return c;
}

// Counted façade over a raw backend table. Row-batch ops add the number
// of rows they touched to kernels.rows.<backend> and one call to
// kernels.calls.<backend>; pure word-pair ops pass through uncounted.
template <Backend B>
struct Counted {
  static int OrReduceRows(uint64_t* dst, int nwords, const uint64_t* rows,
                          size_t stride, const uint64_t* mask,
                          int mask_words) {
    const int n = RawFor<B>().OrReduceRows(dst, nwords, rows, stride, mask,
                                           mask_words);
    RowsCounter<B>().Add(n);
    CallsCounter<B>().Increment();
    return n;
  }
  static int OrReduceRowsFiltered(uint64_t* dst, int nwords,
                                  const uint64_t* rows, size_t stride,
                                  const uint64_t* mask, int mask_words,
                                  const uint64_t* filter, bool* out_any) {
    const int n = RawFor<B>().OrReduceRowsFiltered(
        dst, nwords, rows, stride, mask, mask_words, filter, out_any);
    RowsCounter<B>().Add(n);
    CallsCounter<B>().Increment();
    return n;
  }
  static void FilterRowsNotSubset(uint64_t* out_mask, const uint64_t* rows,
                                  size_t stride, const uint64_t* mask,
                                  int mask_words, const uint64_t* b,
                                  int nwords) {
    RawFor<B>().FilterRowsNotSubset(out_mask, rows, stride, mask, mask_words,
                                    b, nwords);
    CallsCounter<B>().Increment();
  }
  static void ScoreRows(int* counts, const uint64_t* rows, size_t stride,
                        const int* idx, int k, const uint64_t* conn,
                        int nwords) {
    RawFor<B>().ScoreRows(counts, rows, stride, idx, k, conn, nwords);
    RowsCounter<B>().Add(k);
    CallsCounter<B>().Increment();
  }
  static int MaxIntersect(const uint64_t* rows, size_t stride, int nrows,
                          const uint64_t* conn, int nwords) {
    const int best = RawFor<B>().MaxIntersect(rows, stride, nrows, conn,
                                              nwords);
    RowsCounter<B>().Add(nrows);
    CallsCounter<B>().Increment();
    return best;
  }
  static void PackKeys(uint64_t* keys, const int* rows, size_t stride,
                       const int* pos, int k, int bits, int nrows,
                       uint64_t* out_min, uint64_t* out_max) {
    RawFor<B>().PackKeys(keys, rows, stride, pos, k, bits, nrows, out_min,
                         out_max);
    RowsCounter<B>().Add(nrows);
    CallsCounter<B>().Increment();
  }
  static long ProbeKeys(int32_t* out_val, const uint64_t* keys, int nrows,
                        const uint64_t* slot_keys, const int32_t* slot_vals,
                        uint64_t mask) {
    const long c = RawFor<B>().ProbeKeys(out_val, keys, nrows, slot_keys,
                                         slot_vals, mask);
    RowsCounter<B>().Add(nrows);
    CallsCounter<B>().Increment();
    return c;
  }

  static const Ops& Table() {
    static const Ops table = [] {
      Ops t = RawFor<B>();
      t.OrReduceRows = &Counted::OrReduceRows;
      t.OrReduceRowsFiltered = &Counted::OrReduceRowsFiltered;
      t.FilterRowsNotSubset = &Counted::FilterRowsNotSubset;
      t.ScoreRows = &Counted::ScoreRows;
      t.MaxIntersect = &Counted::MaxIntersect;
      t.PackKeys = &Counted::PackKeys;
      t.ProbeKeys = &Counted::ProbeKeys;
      return t;
    }();
    return table;
  }
};

// Active backend, as a resolved (never kAuto) enum value; -1 before the
// first SetBackend()/Active() call. The counted dispatch table of the
// active backend is published alongside it so Active() is one acquire
// load (the ops run millions of times per search; re-resolving the
// fallback chain per call would show up in profiles).
std::atomic<int> g_active{-1};
std::atomic<const Ops*> g_active_ops{nullptr};
std::once_flag g_env_once;

// Resolves auto and unsupported-AVX2 fallbacks, records the dispatch
// decision, and publishes the result.
void Publish(Backend requested) {
  Backend b = requested == Backend::kAuto ? ResolveAuto() : requested;
  if (b == Backend::kAvx2 && !Avx2Available()) {
    metrics::GetCounter("kernels.dispatch.avx2_unavailable").Increment();
    b = Backend::kScalar;
  }
  metrics::GetCounter(std::string("kernels.dispatch.") + BackendName(b))
      .Increment();
  g_active.store(static_cast<int>(b), std::memory_order_relaxed);
  g_active_ops.store(&GetOps(b), std::memory_order_release);
}

// First-use initialization from HYPERTREE_KERNEL_BACKEND; a prior
// explicit SetBackend() consumes the once-flag instead, so the
// environment never overrides a tool's --kernel-backend choice.
void InitFromEnvOnce() {
  std::call_once(g_env_once, [] {
    Backend b = Backend::kAuto;
    const char* env = std::getenv("HYPERTREE_KERNEL_BACKEND");
    if (env != nullptr && env[0] != '\0' && !ParseBackend(env, &b)) {
      metrics::GetCounter("kernels.dispatch.bad_env").Increment();
      b = Backend::kAuto;
    }
    Publish(b);
  });
}

}  // namespace

bool Avx2Available() { return internal::HaveAvx2(); }

Backend ResolveAuto() {
  return Avx2Available() ? Backend::kAvx2 : Backend::kScalar;
}

bool ParseBackend(const std::string& s, Backend* out) {
  if (s == "auto") {
    *out = Backend::kAuto;
  } else if (s == "scalar") {
    *out = Backend::kScalar;
  } else if (s == "avx2") {
    *out = Backend::kAvx2;
  } else if (s == "batched") {
    *out = Backend::kBatched;
  } else {
    return false;
  }
  return true;
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kBatched:
      return "batched";
    case Backend::kAuto:
      return "auto";
  }
  return "unknown";
}

void SetBackend(Backend b) {
  std::call_once(g_env_once, [] {});  // explicit choice beats the env var
  Publish(b);
}

Backend ActiveBackend() {
  InitFromEnvOnce();
  return static_cast<Backend>(g_active.load(std::memory_order_relaxed));
}

const Ops& GetOps(Backend b) {
  if (b == Backend::kAuto) b = ResolveAuto();
  if (b == Backend::kAvx2 && !Avx2Available()) b = Backend::kScalar;
  switch (b) {
    case Backend::kAvx2:
      return Counted<Backend::kAvx2>::Table();
    case Backend::kBatched:
      return Counted<Backend::kBatched>::Table();
    default:
      return Counted<Backend::kScalar>::Table();
  }
}

const Ops& Active() {
  InitFromEnvOnce();
  return *g_active_ops.load(std::memory_order_acquire);
}

WordArena::WordArena(size_t nwords) {
  // Arenas always round up to whole 256-bit lanes (even one-word
  // arenas), so vector backends can load any row's lane in bounds.
  size_ = std::max<size_t>(nwords, 1);
  size_ = (size_ + kWordsPerLane - 1) &
          ~static_cast<size_t>(kWordsPerLane - 1);
  data_ = static_cast<uint64_t*>(
      ::operator new(size_ * sizeof(uint64_t), std::align_val_t{32}));
  std::memset(data_, 0, size_ * sizeof(uint64_t));
}

WordArena::WordArena(WordArena&& o) noexcept
    : data_(o.data_), size_(o.size_) {
  o.data_ = nullptr;
  o.size_ = 0;
}

WordArena& WordArena::operator=(WordArena&& o) noexcept {
  if (this == &o) return *this;
  if (data_ != nullptr) ::operator delete(data_, std::align_val_t{32});
  data_ = o.data_;
  size_ = o.size_;
  o.data_ = nullptr;
  o.size_ = 0;
  return *this;
}

WordArena::~WordArena() {
  if (data_ != nullptr) ::operator delete(data_, std::align_val_t{32});
}

namespace internal {

const Ops& ScalarRaw() {
  static const Ops table = {
      "scalar",
      scalar::OrReduceRows,
      scalar::OrReduceRowsFiltered,
      scalar::FrontierCommit,
      scalar::FilterRowsNotSubset,
      scalar::ScoreRows,
      scalar::MaxIntersect,
      scalar::AndCount,
      scalar::AndNotCount,
      scalar::IntersectCount,
      scalar::AndNotIsEmpty,
      scalar::PackKeys,
      scalar::ProbeKeys,
  };
  return table;
}

const RangeOps& ScalarRange() {
  static const RangeOps table = {
      scalar::ScoreRowsRange,
      scalar::MaxIntersectRange,
      scalar::FilterRowsNotSubsetRange,
      scalar::OrReduceColumns,
      scalar::PackKeysRange,
      scalar::ProbeKeysRange,
  };
  return table;
}

const Ops& SimdRaw() {
  static const Ops& table = HaveAvx2() ? Avx2Raw() : ScalarRaw();
  return table;
}

const RangeOps& SimdRange() {
  static const RangeOps& table = HaveAvx2() ? Avx2Range() : ScalarRange();
  return table;
}

}  // namespace internal

}  // namespace hypertree::kernels
