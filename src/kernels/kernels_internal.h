// Internal seams between the kernel backends. The raw tables here are
// uncounted (no metrics): the public dispatch layer in kernels.cc wraps
// them with per-backend row counters, and the batched backend composes
// its shards out of the range primitives without double-counting.
//
// Nothing outside src/kernels/ may include this header.

#ifndef HYPERTREE_KERNELS_KERNELS_INTERNAL_H_
#define HYPERTREE_KERNELS_KERNELS_INTERNAL_H_

#include "kernels/kernels.h"

namespace hypertree::kernels::internal {

/// Half-open range primitives the batched backend shards over workers.
/// Each call touches only its own output slots (counts[lo, hi), out_mask
/// words [wlo, whi), dst words [clo, chi)), so concurrent shards never
/// overlap.
struct RangeOps {
  /// counts[i] = popcount(rows[idx ? idx[i] : i] & conn) for i in [lo, hi).
  void (*ScoreRowsRange)(int* counts, const uint64_t* rows, size_t stride,
                         const int* idx, int lo, int hi, const uint64_t* conn,
                         int nwords);
  /// max over r in [lo, hi) of popcount(rows[r] & conn); 0 for empty range.
  int (*MaxIntersectRange)(const uint64_t* rows, size_t stride, int lo,
                           int hi, const uint64_t* conn, int nwords);
  /// FilterRowsNotSubset restricted to mask words [wlo, whi); writes only
  /// out_mask[wlo, whi).
  void (*FilterRowsNotSubsetRange)(uint64_t* out_mask, const uint64_t* rows,
                                   size_t stride, const uint64_t* mask,
                                   int wlo, int whi, const uint64_t* b,
                                   int nwords);
  /// OR-reduce restricted to dst word columns [clo, chi): dst[clo, chi) =
  /// OR over mask rows of row[clo, chi). Returns the number of rows OR'd
  /// (identical for every column shard).
  int (*OrReduceColumns)(uint64_t* dst, int clo, int chi,
                         const uint64_t* rows, size_t stride,
                         const uint64_t* mask, int mask_words);
  /// PackKeys restricted to rows [lo, hi); writes keys[lo, hi) and the
  /// min / max packed key of that row range (empty: min = ~0, max = 0).
  void (*PackKeysRange)(uint64_t* keys, const int* rows, size_t stride,
                        const int* pos, int k, int bits, int lo, int hi,
                        uint64_t* out_min, uint64_t* out_max);
  /// ProbeKeys restricted to rows [lo, hi); writes out_val[lo, hi) and
  /// returns that range's probe-collision count.
  long (*ProbeKeysRange)(int32_t* out_val, const uint64_t* keys, int lo,
                         int hi, const uint64_t* slot_keys,
                         const int32_t* slot_vals, uint64_t mask);
};

/// Uncounted scalar reference ops (the bit-identity oracle).
const Ops& ScalarRaw();
const RangeOps& ScalarRange();

/// Uncounted AVX2 ops. Defined unconditionally; only valid to call when
/// HaveAvx2() is true (otherwise they are never selected).
const Ops& Avx2Raw();
const RangeOps& Avx2Range();

/// Compile-time + runtime AVX2 availability (false on non-x86 builds).
bool HaveAvx2();

/// The best single-threaded raw table on this machine (AVX2 when
/// available, else scalar). The batched backend delegates per-shard
/// arithmetic here.
const Ops& SimdRaw();
const RangeOps& SimdRange();

}  // namespace hypertree::kernels::internal

#endif  // HYPERTREE_KERNELS_KERNELS_INTERNAL_H_
