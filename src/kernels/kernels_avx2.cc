// AVX2 kernel backend: explicit 256-bit vectors over the 64-bit word
// layout. Compiled with per-function target attributes (no global
// -mavx2), selected at runtime only when the CPU reports AVX2, so the
// same binary runs on any x86-64 machine.
//
// Layout strategy:
//  * multi-word buffers: 256-bit lanes over the full 4-word groups
//    inside `nwords`, scalar tail for the remainder. Correctness never
//    depends on buffer padding — padding only buys alignment.
//  * packed single-word rows (stride == 1, nwords == 1): four rows per
//    vector with a broadcast mask and per-lane popcounts. This is the
//    hot shape for the paper's benchmark instances (n, m <= 64).
//
// Popcounts use the classic nibble-LUT (shuffle + sad) sequence: pure
// integer ops, so every count is bit-identical to the scalar oracle.

#include <algorithm>

#include "kernels/kernels_internal.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HT_KERNELS_HAVE_AVX2_BUILD 1
#include <immintrin.h>
#endif

namespace hypertree::kernels::internal {

#if defined(HT_KERNELS_HAVE_AVX2_BUILD)

#define HT_AVX2 __attribute__((target("avx2")))

namespace {

inline const uint64_t* Row(const uint64_t* rows, size_t stride, int r) {
  return rows + static_cast<size_t>(r) * stride;
}

/// Per-64-bit-lane population counts of v.
HT_AVX2 inline __m256i Popcnt256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

/// Sum of the four 64-bit lanes.
HT_AVX2 inline long Hsum256(__m256i v) {
  uint64_t tmp[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp), v);
  return static_cast<long>(tmp[0] + tmp[1] + tmp[2] + tmp[3]);
}

HT_AVX2 inline int PopcountIntersectRow(const uint64_t* row,
                                        const uint64_t* conn, int nwords) {
  int i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= nwords; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(conn + i));
    acc = _mm256_add_epi64(acc, Popcnt256(_mm256_and_si256(a, b)));
  }
  int c = static_cast<int>(Hsum256(acc));
  for (; i < nwords; ++i) c += __builtin_popcountll(row[i] & conn[i]);
  return c;
}

HT_AVX2 int OrReduceColumns(uint64_t* dst, int clo, int chi,
                            const uint64_t* rows, size_t stride,
                            const uint64_t* mask, int mask_words) {
  for (int i = clo; i < chi; ++i) dst[i] = 0;
  int nrows = 0;
  for (int w = 0; w < mask_words; ++w) {
    uint64_t m = mask[w];
    while (m != 0) {
      const int v = w * 64 + __builtin_ctzll(m);
      m &= m - 1;
      const uint64_t* row = Row(rows, stride, v);
      int i = clo;
      for (; i + 4 <= chi; i += 4) {
        const __m256i d =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        const __m256i r =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_or_si256(d, r));
      }
      for (; i < chi; ++i) dst[i] |= row[i];
      ++nrows;
    }
  }
  return nrows;
}

HT_AVX2 int OrReduceRows(uint64_t* dst, int nwords, const uint64_t* rows,
                         size_t stride, const uint64_t* mask,
                         int mask_words) {
  return OrReduceColumns(dst, 0, nwords, rows, stride, mask, mask_words);
}

HT_AVX2 int OrReduceRowsFiltered(uint64_t* dst, int nwords,
                                 const uint64_t* rows, size_t stride,
                                 const uint64_t* mask, int mask_words,
                                 const uint64_t* filter, bool* out_any) {
  const int nrows =
      OrReduceColumns(dst, 0, nwords, rows, stride, mask, mask_words);
  int i = 0;
  __m256i anyv = _mm256_setzero_si256();
  for (; i + 4 <= nwords; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i f =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(filter + i));
    const __m256i r = _mm256_and_si256(d, f);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    anyv = _mm256_or_si256(anyv, r);
  }
  uint64_t any = _mm256_testz_si256(anyv, anyv) != 0 ? 0 : 1;
  for (; i < nwords; ++i) {
    dst[i] &= filter[i];
    any |= dst[i];
  }
  *out_any = any != 0;
  return nrows;
}

HT_AVX2 void FrontierCommit(uint64_t* acc, uint64_t* pending,
                            const uint64_t* reach, int nwords) {
  int i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(reach + i));
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pending + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_or_si256(a, r));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(pending + i),
                        _mm256_andnot_si256(r, p));
  }
  for (; i < nwords; ++i) {
    acc[i] |= reach[i];
    pending[i] &= ~reach[i];
  }
}

HT_AVX2 inline bool RowNotSubset(const uint64_t* row, const uint64_t* b,
                                 int nwords) {
  int i = 0;
  for (; i + 4 <= nwords; i += 4) {
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    const __m256i bb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i t = _mm256_andnot_si256(bb, r);  // row & ~b
    if (_mm256_testz_si256(t, t) == 0) return true;
  }
  for (; i < nwords; ++i) {
    if ((row[i] & ~b[i]) != 0) return true;
  }
  return false;
}

HT_AVX2 void FilterRowsNotSubsetRange(uint64_t* out_mask,
                                      const uint64_t* rows, size_t stride,
                                      const uint64_t* mask, int wlo, int whi,
                                      const uint64_t* b, int nwords) {
  for (int w = wlo; w < whi; ++w) {
    uint64_t out = 0;
    uint64_t m = mask[w];
    while (m != 0) {
      const int bit = __builtin_ctzll(m);
      m &= m - 1;
      if (RowNotSubset(Row(rows, stride, w * 64 + bit), b, nwords)) {
        out |= uint64_t{1} << bit;
      }
    }
    out_mask[w] = out;
  }
}

HT_AVX2 void FilterRowsNotSubset(uint64_t* out_mask, const uint64_t* rows,
                                 size_t stride, const uint64_t* mask,
                                 int mask_words, const uint64_t* b,
                                 int nwords) {
  FilterRowsNotSubsetRange(out_mask, rows, stride, mask, 0, mask_words, b,
                           nwords);
}

HT_AVX2 void ScoreRowsRange(int* counts, const uint64_t* rows, size_t stride,
                            const int* idx, int lo, int hi,
                            const uint64_t* conn, int nwords) {
  if (stride == 1 && nwords == 1 && idx == nullptr) {
    // Packed single-word rows: four candidates per vector.
    const __m256i c = _mm256_set1_epi64x(static_cast<long long>(conn[0]));
    int i = lo;
    for (; i + 4 <= hi; i += 4) {
      const __m256i r =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + i));
      uint64_t tmp[4];
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp),
                          Popcnt256(_mm256_and_si256(r, c)));
      counts[i] = static_cast<int>(tmp[0]);
      counts[i + 1] = static_cast<int>(tmp[1]);
      counts[i + 2] = static_cast<int>(tmp[2]);
      counts[i + 3] = static_cast<int>(tmp[3]);
    }
    for (; i < hi; ++i) counts[i] = __builtin_popcountll(rows[i] & conn[0]);
    return;
  }
  for (int i = lo; i < hi; ++i) {
    counts[i] = PopcountIntersectRow(
        Row(rows, stride, idx != nullptr ? idx[i] : i), conn, nwords);
  }
}

HT_AVX2 void ScoreRows(int* counts, const uint64_t* rows, size_t stride,
                       const int* idx, int k, const uint64_t* conn,
                       int nwords) {
  ScoreRowsRange(counts, rows, stride, idx, 0, k, conn, nwords);
}

HT_AVX2 int MaxIntersectRange(const uint64_t* rows, size_t stride, int lo,
                              int hi, const uint64_t* conn, int nwords) {
  int best = 0;
  if (stride == 1 && nwords == 1) {
    const __m256i c = _mm256_set1_epi64x(static_cast<long long>(conn[0]));
    __m256i bestv = _mm256_setzero_si256();
    int r = lo;
    for (; r + 4 <= hi; r += 4) {
      const __m256i row =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows + r));
      const __m256i cnt = Popcnt256(_mm256_and_si256(row, c));
      const __m256i gt = _mm256_cmpgt_epi64(cnt, bestv);
      bestv = _mm256_blendv_epi8(bestv, cnt, gt);
    }
    uint64_t tmp[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(tmp), bestv);
    for (uint64_t t : tmp) best = std::max(best, static_cast<int>(t));
    for (; r < hi; ++r) {
      best = std::max(best, __builtin_popcountll(rows[r] & conn[0]));
    }
    return best;
  }
  for (int r = lo; r < hi; ++r) {
    best = std::max(
        best, PopcountIntersectRow(Row(rows, stride, r), conn, nwords));
  }
  return best;
}

HT_AVX2 int MaxIntersect(const uint64_t* rows, size_t stride, int nrows,
                         const uint64_t* conn, int nwords) {
  return MaxIntersectRange(rows, stride, 0, nrows, conn, nwords);
}

HT_AVX2 int AndCount(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                     int nwords) {
  int i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= nwords; i += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i r = _mm256_and_si256(av, bv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    acc = _mm256_add_epi64(acc, Popcnt256(r));
  }
  int c = static_cast<int>(Hsum256(acc));
  for (; i < nwords; ++i) {
    dst[i] = a[i] & b[i];
    c += __builtin_popcountll(dst[i]);
  }
  return c;
}

HT_AVX2 int AndNotCount(uint64_t* dst, const uint64_t* a, const uint64_t* b,
                        int nwords) {
  int i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= nwords; i += 4) {
    const __m256i av =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i r = _mm256_andnot_si256(bv, av);  // a & ~b
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), r);
    acc = _mm256_add_epi64(acc, Popcnt256(r));
  }
  int c = static_cast<int>(Hsum256(acc));
  for (; i < nwords; ++i) {
    dst[i] = a[i] & ~b[i];
    c += __builtin_popcountll(dst[i]);
  }
  return c;
}

HT_AVX2 int IntersectCount(const uint64_t* a, const uint64_t* b, int nwords) {
  return PopcountIntersectRow(a, b, nwords);
}

HT_AVX2 bool AndNotIsEmpty(const uint64_t* a, const uint64_t* b, int nwords) {
  return !RowNotSubset(a, b, nwords);
}

// ---------------------------------------------------------------------------
// Join-engine key primitives. PackKeys gathers four rows' key columns
// per iteration and folds them into packed words with variable-count
// shifts; min/max run in the sign-flipped domain (cmpgt_epi64 is
// signed; XOR with the sign bit makes it an unsigned compare).
// ProbeKeys vectorizes the splitmix64 finalizer four keys at a time
// (64x64 multiply composed from 32x32 partial products) and walks the
// open-addressed slots scalar-wise with the precomputed hashes.
// ---------------------------------------------------------------------------

HT_AVX2 void PackKeysRange(uint64_t* keys, const int* rows, size_t stride,
                           const int* pos, int k, int bits, int lo, int hi,
                           uint64_t* out_min, uint64_t* out_max) {
  uint64_t mn = ~uint64_t{0};
  uint64_t mx = 0;
  int r = lo;
  // Gather indices are signed 32-bit element offsets; delegate the whole
  // range to the scalar tail if the buffer could overflow them.
  const bool fits =
      hi <= 0 || static_cast<size_t>(hi) * stride + stride <
                     (size_t{1} << 31);
  if (k > 0 && fits && hi - lo >= 4) {
    const __m256i vflip = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    __m256i vmn = _mm256_set1_epi64x(0x7fffffffffffffffLL);  // flipped ~0
    __m256i vmx = vflip;                                     // flipped 0
    const __m128i vshift = _mm_cvtsi32_si128(bits);
    const int s = static_cast<int>(stride);
    const __m128i row_step = _mm_setr_epi32(0, s, 2 * s, 3 * s);
    for (; r + 4 <= hi; r += 4) {
      __m256i key = _mm256_setzero_si256();
      const int base = r * s;
      for (int i = 0; i < k; ++i) {
        const __m128i idx =
            _mm_add_epi32(_mm_set1_epi32(base + pos[i]), row_step);
        const __m128i g = _mm_i32gather_epi32(rows, idx, 4);
        key = _mm256_or_si256(_mm256_sll_epi64(key, vshift),
                              _mm256_cvtepu32_epi64(g));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + r), key);
      const __m256i kf = _mm256_xor_si256(key, vflip);
      vmn = _mm256_blendv_epi8(vmn, kf, _mm256_cmpgt_epi64(vmn, kf));
      vmx = _mm256_blendv_epi8(vmx, kf, _mm256_cmpgt_epi64(kf, vmx));
    }
    alignas(32) uint64_t lane[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), vmn);
    for (uint64_t v : lane) {
      mn = std::min(mn, v ^ uint64_t{0x8000000000000000ULL});
    }
    _mm256_store_si256(reinterpret_cast<__m256i*>(lane), vmx);
    for (uint64_t v : lane) {
      mx = std::max(mx, v ^ uint64_t{0x8000000000000000ULL});
    }
    // The vector loop saw at least one key, so the flipped-domain
    // sentinels can no longer win the reduction; mn/mx are real keys.
  }
  for (; r < hi; ++r) {
    const int* row = rows + static_cast<size_t>(r) * stride;
    uint64_t key = 0;
    for (int i = 0; i < k; ++i) {
      key = (key << bits) |
            static_cast<uint64_t>(static_cast<uint32_t>(row[pos[i]]));
    }
    keys[r] = key;
    mn = std::min(mn, key);
    mx = std::max(mx, key);
  }
  *out_min = mn;
  *out_max = mx;
}

HT_AVX2 void PackKeys(uint64_t* keys, const int* rows, size_t stride,
                      const int* pos, int k, int bits, int nrows,
                      uint64_t* out_min, uint64_t* out_max) {
  PackKeysRange(keys, rows, stride, pos, k, bits, 0, nrows, out_min, out_max);
}

/// Per-lane 64x64 -> low-64 multiply from 32x32 partial products
/// (AVX2 has no epi64 multiply).
HT_AVX2 inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

HT_AVX2 long ProbeKeysRange(int32_t* out_val, const uint64_t* keys, int lo,
                            int hi, const uint64_t* slot_keys,
                            const int32_t* slot_vals, uint64_t mask) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i c3 =
      _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL));
  long collisions = 0;
  int r = lo;
  alignas(32) uint64_t h[4];
  for (; r + 4 <= hi; r += 4) {
    __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + r));
    x = _mm256_add_epi64(x, c1);
    x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), c2);
    x = Mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), c3);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    _mm256_store_si256(reinterpret_cast<__m256i*>(h), x);
    for (int t = 0; t < 4; ++t) {
      const uint64_t key = keys[r + t];
      size_t slot = h[t] & mask;
      int32_t val = -1;
      while (slot_vals[slot] != -1) {
        if (slot_keys[slot] == key) {
          val = slot_vals[slot];
          break;
        }
        ++collisions;
        slot = (slot + 1) & mask;
      }
      out_val[r + t] = val;
    }
  }
  for (; r < hi; ++r) {
    const uint64_t key = keys[r];
    size_t slot = SplitMix64(key) & mask;
    int32_t val = -1;
    while (slot_vals[slot] != -1) {
      if (slot_keys[slot] == key) {
        val = slot_vals[slot];
        break;
      }
      ++collisions;
      slot = (slot + 1) & mask;
    }
    out_val[r] = val;
  }
  return collisions;
}

HT_AVX2 long ProbeKeys(int32_t* out_val, const uint64_t* keys, int nrows,
                       const uint64_t* slot_keys, const int32_t* slot_vals,
                       uint64_t mask) {
  return ProbeKeysRange(out_val, keys, 0, nrows, slot_keys, slot_vals, mask);
}

}  // namespace

bool HaveAvx2() {
  static const bool have = __builtin_cpu_supports("avx2") != 0;
  return have;
}

const Ops& Avx2Raw() {
  static const Ops table = {
      "avx2",
      OrReduceRows,
      OrReduceRowsFiltered,
      FrontierCommit,
      FilterRowsNotSubset,
      ScoreRows,
      MaxIntersect,
      AndCount,
      AndNotCount,
      IntersectCount,
      AndNotIsEmpty,
      PackKeys,
      ProbeKeys,
  };
  return table;
}

const RangeOps& Avx2Range() {
  static const RangeOps table = {
      ScoreRowsRange,
      MaxIntersectRange,
      FilterRowsNotSubsetRange,
      OrReduceColumns,
      PackKeysRange,
      ProbeKeysRange,
  };
  return table;
}

#undef HT_AVX2

#else  // !HT_KERNELS_HAVE_AVX2_BUILD

// Non-x86 (or non-GNU) build: the AVX2 backend degrades to the scalar
// reference table and never reports availability.

bool HaveAvx2() { return false; }

const Ops& Avx2Raw() { return ScalarRaw(); }

const RangeOps& Avx2Range() { return ScalarRange(); }

#endif  // HT_KERNELS_HAVE_AVX2_BUILD

}  // namespace hypertree::kernels::internal
