// A tiny in-memory relational database: named tables of integer tuples.
// Substrate for the conjunctive-query frontend (the PODS paper's home
// setting: hypertree decompositions were introduced for Boolean
// conjunctive queries over such databases).

#ifndef HYPERTREE_CQ_DATABASE_H_
#define HYPERTREE_CQ_DATABASE_H_

#include <map>
#include <string>
#include <vector>

namespace hypertree {

/// A database table: fixed arity, rows of ints.
struct Table {
  int arity = 0;
  std::vector<std::vector<int>> rows;
};

/// Named tables.
class Database {
 public:
  /// Adds (or replaces) a table.
  void AddTable(const std::string& name, Table table);

  /// Looks a table up; nullptr if absent.
  const Table* GetTable(const std::string& name) const;

  /// Convenience: creates the table from rows (arity from the first row).
  void AddRows(const std::string& name,
               std::vector<std::vector<int>> rows);

 private:
  std::map<std::string, Table> tables_;
};

}  // namespace hypertree

#endif  // HYPERTREE_CQ_DATABASE_H_
