// Conjunctive-query answering through generalized hypertree
// decompositions: the end-to-end pipeline of the paper. The query's
// hypergraph is decomposed, node relations are materialized as
// pi_chi(join of lambda atoms), Yannakakis reduces the tree, and answers
// are assembled bottom-up with projections onto connector + head
// variables — output-polynomial for bounded-width queries.

#ifndef HYPERTREE_CQ_ANSWER_H_
#define HYPERTREE_CQ_ANSWER_H_

#include <optional>
#include <string>

#include "cq/database.h"
#include "cq/query.h"
#include "csp/relation.h"

namespace hypertree {

class ThreadPool;

/// Work counters for query evaluation.
struct AnswerStats {
  int decomposition_width = 0;
  long intermediate_tuples = 0;  // rows materialized across all nodes
};

/// Evaluates `q` over `db` via a GHD of the query hypergraph. The answer
/// relation's schema lists the head variables by their ids in
/// q.Variables() order; a Boolean query yields an empty-schema relation
/// with one tuple (true) or none (false). Fails (nullopt + error) on
/// missing tables or arity mismatches. With a pool, the per-node bag
/// joins and the Yannakakis passes run in parallel across independent
/// subtrees; the answer relation (schema, tuples and tuple order) is
/// bit-identical for any thread count.
std::optional<Relation> AnswerQuery(const ConjunctiveQuery& q,
                                    const Database& db,
                                    std::string* error = nullptr,
                                    AnswerStats* stats = nullptr,
                                    ThreadPool* pool = nullptr);

/// Reference evaluation: join all atoms directly, project the head
/// (exponential; for tests and tiny queries).
std::optional<Relation> BruteForceAnswer(const ConjunctiveQuery& q,
                                         const Database& db,
                                         std::string* error = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_CQ_ANSWER_H_
