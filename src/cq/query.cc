#include "cq/query.h"

#include <cctype>
#include <map>

#include "util/check.h"
#include "util/stringutil.h"

namespace hypertree {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Parses "name(v1, v2, ...)" starting at *i; advances *i past it.
bool ParseAtom(const std::string& s, size_t* i, Atom* atom,
               std::string* error) {
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i])))
    ++*i;
  size_t start = *i;
  while (*i < s.size() && IsIdentChar(s[*i])) ++*i;
  atom->relation = s.substr(start, *i - start);
  if (atom->relation.empty()) {
    SetError(error, "expected predicate name at offset " + std::to_string(*i));
    return false;
  }
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i])))
    ++*i;
  if (*i >= s.size() || s[*i] != '(') {
    SetError(error, "expected '(' after " + atom->relation);
    return false;
  }
  ++*i;
  atom->vars.clear();
  while (true) {
    while (*i < s.size() &&
           (std::isspace(static_cast<unsigned char>(s[*i])) || s[*i] == ','))
      ++*i;
    if (*i < s.size() && s[*i] == ')') {
      ++*i;
      return true;
    }
    size_t vstart = *i;
    while (*i < s.size() && IsIdentChar(s[*i])) ++*i;
    if (*i == vstart) {
      SetError(error, "expected variable in " + atom->relation);
      return false;
    }
    atom->vars.push_back(s.substr(vstart, *i - vstart));
  }
}

}  // namespace

std::vector<std::string> ConjunctiveQuery::Variables() const {
  std::vector<std::string> out;
  std::map<std::string, bool> seen;
  auto add = [&](const std::string& v) {
    if (!seen[v]) {
      seen[v] = true;
      out.push_back(v);
    }
  };
  for (const std::string& v : head) add(v);
  for (const Atom& a : atoms) {
    for (const std::string& v : a.vars) add(v);
  }
  return out;
}

Hypergraph ConjunctiveQuery::QueryHypergraph() const {
  std::vector<std::string> vars = Variables();
  std::map<std::string, int> id;
  for (size_t i = 0; i < vars.size(); ++i) id[vars[i]] = static_cast<int>(i);
  Hypergraph h(static_cast<int>(vars.size()));
  for (size_t i = 0; i < vars.size(); ++i)
    h.SetVertexName(static_cast<int>(i), vars[i]);
  for (size_t a = 0; a < atoms.size(); ++a) {
    std::vector<int> scope;
    for (const std::string& v : atoms[a].vars) scope.push_back(id[v]);
    h.AddEdge(scope, atoms[a].relation + "#" + std::to_string(a));
  }
  h.set_name("query");
  return h;
}

std::optional<ConjunctiveQuery> ParseConjunctiveQuery(const std::string& text,
                                                      std::string* error) {
  ConjunctiveQuery q;
  size_t i = 0;
  Atom head;
  if (!ParseAtom(text, &i, &head, error)) return std::nullopt;
  q.head = head.vars;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  if (i + 1 >= text.size() || text[i] != ':' || text[i + 1] != '-') {
    SetError(error, "expected ':-' after the head");
    return std::nullopt;
  }
  i += 2;
  while (true) {
    Atom atom;
    if (!ParseAtom(text, &i, &atom, error)) return std::nullopt;
    q.atoms.push_back(std::move(atom));
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) ||
            text[i] == ','))
      ++i;
    if (i >= text.size() || text[i] == '.') break;
  }
  if (q.atoms.empty()) {
    SetError(error, "query has no body atoms");
    return std::nullopt;
  }
  // Safety: every head variable must occur in the body.
  for (const std::string& v : q.head) {
    bool found = false;
    for (const Atom& a : q.atoms) {
      for (const std::string& u : a.vars) {
        if (u == v) found = true;
      }
    }
    if (!found) {
      SetError(error, "head variable " + v + " not bound in the body");
      return std::nullopt;
    }
  }
  return q;
}

}  // namespace hypertree
