#include "cq/database.h"

#include "util/check.h"

namespace hypertree {

void Database::AddTable(const std::string& name, Table table) {
  for (const auto& row : table.rows) {
    HT_CHECK(static_cast<int>(row.size()) == table.arity);
  }
  tables_[name] = std::move(table);
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

void Database::AddRows(const std::string& name,
                       std::vector<std::vector<int>> rows) {
  Table t;
  t.arity = rows.empty() ? 0 : static_cast<int>(rows[0].size());
  t.rows = std::move(rows);
  AddTable(name, std::move(t));
}

}  // namespace hypertree
