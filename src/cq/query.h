// Conjunctive queries in Datalog-ish syntax:
//
//   ans(X, Z) :- r(X, Y), s(Y, Z), t(Z).
//
// The query hypergraph (one vertex per variable, one hyperedge per atom
// scope) is exactly the structure the decomposition algorithms consume;
// acyclic/bounded-width queries are the tractable classes of the paper.

#ifndef HYPERTREE_CQ_QUERY_H_
#define HYPERTREE_CQ_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace hypertree {

/// One query atom: relation name + variable names (repeats allowed).
struct Atom {
  std::string relation;
  std::vector<std::string> vars;
};

/// A conjunctive query: head variables and body atoms.
struct ConjunctiveQuery {
  std::vector<std::string> head;  // empty head = Boolean query
  std::vector<Atom> atoms;

  /// All distinct variable names in order of first appearance
  /// (head first, then body).
  std::vector<std::string> Variables() const;

  /// The query hypergraph; `var_ids` (optional) receives the name->id
  /// mapping implied by Variables().
  Hypergraph QueryHypergraph() const;
};

/// Parses "head(X, Y) :- atom1(X, Z), atom2(Z, Y)." (trailing period
/// optional; any head predicate name is accepted).
std::optional<ConjunctiveQuery> ParseConjunctiveQuery(
    const std::string& text, std::string* error = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_CQ_QUERY_H_
