#include "cq/answer.h"

#include <algorithm>
#include <map>

#include "csp/morsel_engine.h"
#include "csp/tree_schedule.h"
#include "ghd/ghw_from_ordering.h"
#include "ordering/heuristics.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hypertree {

namespace {

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

// Binds atom `a` of `q` to its table: schema = distinct variable ids (in
// first-occurrence order), rows filtered for repeated-variable equality.
bool BindAtom(const Atom& atom, const std::map<std::string, int>& var_id,
              const Database& db, Relation* out, std::string* error) {
  const Table* table = db.GetTable(atom.relation);
  if (table == nullptr) {
    SetError(error, "unknown relation: " + atom.relation);
    return false;
  }
  if (table->arity != static_cast<int>(atom.vars.size())) {
    SetError(error, "arity mismatch for " + atom.relation);
    return false;
  }
  // Distinct variables and the column positions they bind.
  std::vector<int> schema;
  std::vector<int> rep;  // rep[i] = first column with the same variable
  std::vector<int> keep_cols;
  {
    std::map<int, int> first_col;
    rep.resize(atom.vars.size());
    for (size_t i = 0; i < atom.vars.size(); ++i) {
      int v = var_id.at(atom.vars[i]);
      auto it = first_col.find(v);
      if (it == first_col.end()) {
        first_col[v] = static_cast<int>(i);
        rep[i] = static_cast<int>(i);
        schema.push_back(v);
        keep_cols.push_back(static_cast<int>(i));
      } else {
        rep[i] = it->second;
      }
    }
  }
  Relation r(schema);
  std::vector<int> tuple;
  for (const auto& row : table->rows) {
    bool ok = true;
    for (size_t i = 0; i < row.size() && ok; ++i) {
      if (rep[i] != static_cast<int>(i) && row[i] != row[rep[i]]) ok = false;
    }
    if (!ok) continue;
    tuple.clear();
    for (int c : keep_cols) tuple.push_back(row[c]);
    // Deduplicate: repeated rows in the table must not duplicate answers
    // beyond set semantics. InsertIfAbsent keeps this linear via the
    // relation's row index (the old Contains scan was quadratic).
    r.InsertIfAbsent(tuple.data());
  }
  *out = std::move(r);
  return true;
}

}  // namespace

std::optional<Relation> AnswerQuery(const ConjunctiveQuery& q,
                                    const Database& db, std::string* error,
                                    AnswerStats* stats, ThreadPool* pool) {
  std::vector<std::string> vars = q.Variables();
  std::map<std::string, int> var_id;
  for (size_t i = 0; i < vars.size(); ++i) var_id[vars[i]] = static_cast<int>(i);
  std::vector<int> head_ids;
  for (const std::string& v : q.head) head_ids.push_back(var_id[v]);
  {
    std::vector<int> sorted = head_ids;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      SetError(error, "repeated head variables are not supported");
      return std::nullopt;
    }
  }

  // Bind every atom.
  std::vector<Relation> bound(q.atoms.size());
  for (size_t a = 0; a < q.atoms.size(); ++a) {
    if (!BindAtom(q.atoms[a], var_id, db, &bound[a], error)) {
      return std::nullopt;
    }
  }

  // Decompose the query hypergraph (min-fill + exact covers) and complete
  // it so every atom is enforced at some node.
  Hypergraph h = q.QueryHypergraph();
  GhwEvaluator eval(h);
  Rng rng(7);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(sigma, CoverMode::kExact);
  ghd.MakeComplete(h);
  if (stats != nullptr) stats->decomposition_width = ghd.Width();

  int m = ghd.NumNodes();
  // Root the decomposition tree and compute orders.
  std::vector<std::vector<int>> children(m);
  std::vector<int> parent(m, -1), order = {0};
  {
    std::vector<bool> seen(m, false);
    seen[0] = true;
    for (size_t i = 0; i < order.size(); ++i) {
      for (int qn : ghd.td().TreeNeighbors(order[i])) {
        if (!seen[qn]) {
          seen[qn] = true;
          parent[qn] = order[i];
          children[order[i]].push_back(qn);
          order.push_back(qn);
        }
      }
    }
    HT_CHECK(static_cast<int>(order.size()) == m);
  }

  // Node relations: pi_chi(join of lambda atom relations). Independent
  // per node, so the bag joins fan out over the pool; per-node tuple
  // counts are collected into slots and summed afterwards so the stats
  // are deterministic under any schedule.
  std::vector<Relation> rel(m);
  std::vector<long> node_tuples(m, 0);
  RunForAll(m, pool, [&ghd, &bound, &rel, &node_tuples, pool](int p) {
    const std::vector<int>& lambda = ghd.Lambda(p);
    HT_CHECK(!lambda.empty() || ghd.td().Bag(p).None());
    // Chunked join chain: atom-join intermediates beyond the memory
    // budget spill to disk; the projection streams them back morsel by
    // morsel, so only the projected bag is ever fully resident.
    ChunkedRelation acc;
    bool first = true;
    for (int e : lambda) {
      acc = first ? ChunkedRelation(bound[e])
                  : EngineJoinChunked(acc, bound[e], pool);
      first = false;
    }
    std::vector<int> chi = ghd.td().Bag(p).ToVector();
    if (first) {
      rel[p] = Relation(chi);
      rel[p].AddTuple({});
    } else {
      rel[p] = EngineProjectChunked(acc, chi, pool);
    }
    node_tuples[p] = rel[p].Size();
  });

  // Full Yannakakis reduction: in-place semijoins, parallel across
  // independent subtrees (each node only reads already-reduced
  // neighbors; see csp/tree_schedule.h).
  RunTreeBottomUp(parent, children, pool, [&children, &rel, pool](int node) {
    for (int c : children[node]) {
      EngineSemijoinInPlace(&rel[node], rel[c], pool);
    }
  });
  RunTreeTopDown(parent, children, pool, [&parent, &rel, pool](int node) {
    if (parent[node] != -1) {
      EngineSemijoinInPlace(&rel[node], rel[parent[node]], pool);
    }
  });

  // Head variables contained in each subtree.
  Bitset head_bits(h.NumVertices());
  for (int v : head_ids) head_bits.Set(v);
  std::vector<Bitset> sub_head(m, Bitset(h.NumVertices()));
  for (size_t i = order.size(); i-- > 0;) {
    int node = order[i];
    sub_head[node] = ghd.td().Bag(node) & head_bits;
    for (int c : children[node]) sub_head[node] |= sub_head[c];
  }

  // Bottom-up join with projection onto connector + subtree-head vars
  // (children finish before their parent joins them, so subtrees run
  // concurrently).
  std::vector<Relation> answers(m);
  std::vector<long> join_tuples(m, 0);
  RunTreeBottomUp(parent, children, pool,
                  [&parent, &children, &rel, &answers, &join_tuples,
                   &sub_head, &ghd, pool](int node) {
    Relation acc = rel[node];
    for (int c : children[node]) {
      acc = EngineJoin(acc, answers[c], pool);
      join_tuples[node] += acc.Size();
    }
    Bitset keep = sub_head[node];
    if (parent[node] != -1) {
      keep |= ghd.td().Bag(node) & ghd.td().Bag(parent[node]);
    }
    // Projection: keep only schema vars that are in `keep`.
    std::vector<int> proj;
    for (int v : acc.schema()) {
      if (keep.Test(v)) proj.push_back(v);
    }
    answers[node] = acc.Project(proj);
  });
  if (stats != nullptr) {
    for (int p = 0; p < m; ++p) {
      stats->intermediate_tuples += node_tuples[p] + join_tuples[p];
    }
  }

  Relation result = answers[order[0]].Project(head_ids);
  // Boolean query: empty schema — represent "true" as one empty tuple.
  if (head_ids.empty()) {
    Relation boolean(std::vector<int>{});
    bool satisfiable = true;
    for (int p = 0; p < m; ++p) {
      if (rel[p].Empty() && ghd.td().Bag(p).Any()) satisfiable = false;
    }
    if (satisfiable && !answers[order[0]].Empty()) boolean.AddTuple({});
    return boolean;
  }
  return result;
}

std::optional<Relation> BruteForceAnswer(const ConjunctiveQuery& q,
                                         const Database& db,
                                         std::string* error) {
  std::vector<std::string> vars = q.Variables();
  std::map<std::string, int> var_id;
  for (size_t i = 0; i < vars.size(); ++i) var_id[vars[i]] = static_cast<int>(i);
  Relation acc;
  bool first = true;
  for (const Atom& atom : q.atoms) {
    Relation r;
    if (!BindAtom(atom, var_id, db, &r, error)) return std::nullopt;
    acc = first ? std::move(r) : acc.Join(r);
    first = false;
  }
  std::vector<int> head_ids;
  for (const std::string& v : q.head) head_ids.push_back(var_id[v]);
  if (head_ids.empty()) {
    Relation boolean(std::vector<int>{});
    if (!acc.Empty()) boolean.AddTuple({});
    return boolean;
  }
  return acc.Project(head_ids);
}

}  // namespace hypertree
