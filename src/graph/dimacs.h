// DIMACS graph-coloring (.col) format reader and writer.
//
// Format: comment lines start with 'c', one 'p edge <n> <m>' problem line,
// and edge lines 'e <u> <v>' with 1-based vertex ids.

#ifndef HYPERTREE_GRAPH_DIMACS_H_
#define HYPERTREE_GRAPH_DIMACS_H_

#include <istream>
#include <optional>
#include <ostream>
#include <string>

#include "graph/graph.h"

namespace hypertree {

/// Parses a DIMACS .col graph from `in`. On failure returns std::nullopt
/// and, if `error` is non-null, stores a description.
std::optional<Graph> ReadDimacsGraph(std::istream& in,
                                     std::string* error = nullptr);

/// Parses a DIMACS .col graph from the file at `path`.
std::optional<Graph> ReadDimacsGraphFile(const std::string& path,
                                         std::string* error = nullptr);

/// Writes `g` in DIMACS .col format.
void WriteDimacsGraph(const Graph& g, std::ostream& out);

}  // namespace hypertree

#endif  // HYPERTREE_GRAPH_DIMACS_H_
