// Graph generators for the benchmark families.
//
// The structured DIMACS graph-coloring families used in the decomposition
// literature are mathematical constructions, so the generators below
// reproduce those instances exactly: queenN_N is the N x N queens graph,
// mycielK is the iterated Mycielski construction, and the grid graphs are
// plain 2D meshes. Random families (DSJC*, le450_*) are substituted by
// seeded uniform random graphs with matching vertex/edge counts.

#ifndef HYPERTREE_GRAPH_GENERATORS_H_
#define HYPERTREE_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/graph.h"

namespace hypertree {

/// The rows x cols grid (mesh) graph. Treewidth of the n x n grid is n.
Graph GridGraph(int rows, int cols);

/// The n x n queens graph: vertices are board squares, edges join squares
/// that share a row, column, or diagonal (DIMACS queenN_N).
Graph QueensGraph(int n);

/// The Mycielski graph M_k (DIMACS mycielK): M_2 = K_2, and M_{k+1} is the
/// Mycielskian of M_k. Triangle-free with chromatic number k.
Graph MycielskiGraph(int k);

/// Complete graph K_n (treewidth n-1).
Graph CompleteGraph(int n);

/// Cycle C_n (treewidth 2 for n >= 3).
Graph CycleGraph(int n);

/// Path P_n (treewidth 1 for n >= 2).
Graph PathGraph(int n);

/// Uniform random graph with exactly `m` distinct edges (seeded; G(n, m)).
Graph RandomGraph(int n, int m, uint64_t seed);

/// Random k-tree: a maximal graph of treewidth exactly k, optionally with
/// a fraction `keep` of edges retained (keep = 1.0 gives the full k-tree,
/// whose treewidth is exactly k; partial k-trees have treewidth <= k).
Graph RandomKTree(int n, int k, double keep, uint64_t seed);

}  // namespace hypertree

#endif  // HYPERTREE_GRAPH_GENERATORS_H_
