// A mutable view of a graph supporting vertex elimination with undo.
//
// Eliminating a vertex v turns its current neighborhood into a clique and
// removes v (the core step of bucket/vertex elimination, branch-and-bound
// and A* searches over elimination orderings; thesis §2.5.3 / §5.2.1).
// Every elimination is recorded so it can be rolled back in LIFO order,
// which lets the tree searches share one graph object across the whole
// search instead of copying the graph per node.

#ifndef HYPERTREE_GRAPH_ELIMINATION_GRAPH_H_
#define HYPERTREE_GRAPH_ELIMINATION_GRAPH_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/bitset.h"

namespace hypertree {

/// Elimination view over a graph, with LIFO undo.
class EliminationGraph {
 public:
  /// Takes a snapshot of `g`; the original graph is not modified.
  explicit EliminationGraph(const Graph& g);

  /// Number of vertices of the underlying (original) graph.
  int NumVertices() const { return n_; }

  /// Number of vertices still present.
  int NumActive() const { return active_count_; }

  /// True if `v` has not been eliminated.
  bool IsActive(int v) const { return alive_.Test(v); }

  /// Bitset of vertices still present.
  const Bitset& ActiveBits() const { return alive_; }

  /// Current degree of active vertex `v`.
  int Degree(int v) const {
    HT_DCHECK(alive_.Test(v));
    return adj_[v].IntersectCount(alive_);
  }

  /// Current neighborhood of active vertex `v` (materialized bitset).
  Bitset NeighborBits(int v) const {
    HT_DCHECK(alive_.Test(v));
    return adj_[v] & alive_;
  }

  /// Raw adjacency row of `v`, without the active mask applied. May
  /// contain bits of eliminated vertices; intersect with ActiveBits()
  /// before use. Lets allocation-free consumers avoid the temporary
  /// that NeighborBits() materializes.
  const Bitset& RawNeighborBits(int v) const { return adj_[v]; }

  /// Current neighborhood of active vertex `v` as a vertex list.
  std::vector<int> Neighbors(int v) const { return NeighborBits(v).ToVector(); }

  /// True if active vertices `u` and `v` are currently adjacent.
  bool HasEdge(int u, int v) const { return adj_[u].Test(v); }

  /// Number of edges that eliminating `v` would add (non-adjacent
  /// neighbor pairs).
  int FillIn(int v) const;

  /// True if the current neighborhood of `v` is a clique.
  bool IsSimplicial(int v) const;

  /// True if all but one neighbor of `v` form a clique. If so and
  /// `special` is non-null, stores the exempted neighbor.
  bool IsAlmostSimplicial(int v, int* special) const;

  /// Eliminates `v`: connects its neighbors pairwise and removes it.
  /// Returns the degree of `v` at elimination time (the bag size - 1).
  int Eliminate(int v);

  /// Rolls back the most recent un-undone elimination.
  void UndoElimination();

  /// Number of eliminations that can be undone.
  int UndoDepth() const { return static_cast<int>(log_.size()); }

  /// Copies the current (remaining) graph into a standalone Graph whose
  /// vertex ids are remapped to [0, NumActive()); `old_ids` (optional)
  /// receives the original id of each new vertex.
  Graph CurrentGraph(std::vector<int>* old_ids = nullptr) const;

 private:
  struct Record {
    int vertex;
    std::vector<int> neighbors;                 // neighbors at elimination time
    std::vector<std::pair<int, int>> fill;      // edges added by elimination
  };

  int n_;
  int active_count_;
  Bitset alive_;
  std::vector<Bitset> adj_;
  std::vector<Record> log_;
};

}  // namespace hypertree

#endif  // HYPERTREE_GRAPH_ELIMINATION_GRAPH_H_
