#include "graph/elimination_graph.h"

namespace hypertree {

EliminationGraph::EliminationGraph(const Graph& g)
    : n_(g.NumVertices()), active_count_(g.NumVertices()), alive_(n_) {
  alive_.SetAll();
  adj_.reserve(n_);
  for (int v = 0; v < n_; ++v) adj_.push_back(g.NeighborBits(v));
}

int EliminationGraph::FillIn(int v) const {
  Bitset nb = NeighborBits(v);
  int fill = 0;
  for (int a = nb.First(); a >= 0; a = nb.Next(a)) {
    for (int b = nb.Next(a); b >= 0; b = nb.Next(b)) {
      if (!adj_[a].Test(b)) ++fill;
    }
  }
  return fill;
}

bool EliminationGraph::IsSimplicial(int v) const {
  Bitset nb = NeighborBits(v);
  for (int a = nb.First(); a >= 0; a = nb.Next(a)) {
    Bitset rest = nb;
    rest.Reset(a);
    if (!rest.IsSubsetOf(adj_[a])) return false;
  }
  return true;
}

bool EliminationGraph::IsAlmostSimplicial(int v, int* special) const {
  // Collect non-adjacent neighbor pairs; v is almost simplicial iff some
  // single neighbor u participates in every such pair.
  Bitset nb = NeighborBits(v);
  int candidate = -1;
  bool have_bad_pair = false;
  Bitset allowed(n_);
  allowed.SetAll();
  for (int a = nb.First(); a >= 0; a = nb.Next(a)) {
    for (int b = nb.Next(a); b >= 0; b = nb.Next(b)) {
      if (adj_[a].Test(b)) continue;
      if (!have_bad_pair) {
        have_bad_pair = true;
        allowed.Clear();
        allowed.Set(a);
        allowed.Set(b);
      } else {
        Bitset pair(n_);
        pair.Set(a);
        pair.Set(b);
        allowed &= pair;
        if (allowed.None()) return false;
      }
    }
  }
  if (!have_bad_pair) return false;  // simplicial, not *almost* simplicial
  candidate = allowed.First();
  if (special != nullptr) *special = candidate;
  return true;
}

int EliminationGraph::Eliminate(int v) {
  HT_CHECK(alive_.Test(v));
  Record rec;
  rec.vertex = v;
  Bitset nb = NeighborBits(v);
  rec.neighbors = nb.ToVector();
  for (size_t i = 0; i < rec.neighbors.size(); ++i) {
    int a = rec.neighbors[i];
    for (size_t j = i + 1; j < rec.neighbors.size(); ++j) {
      int b = rec.neighbors[j];
      if (!adj_[a].Test(b)) {
        adj_[a].Set(b);
        adj_[b].Set(a);
        rec.fill.emplace_back(a, b);
      }
    }
  }
  // Detach v from its (still-alive) neighbors.
  for (int a : rec.neighbors) adj_[a].Reset(v);
  alive_.Reset(v);
  --active_count_;
  int degree = static_cast<int>(rec.neighbors.size());
  log_.push_back(std::move(rec));
  return degree;
}

void EliminationGraph::UndoElimination() {
  HT_CHECK(!log_.empty());
  Record rec = std::move(log_.back());
  log_.pop_back();
  for (auto [a, b] : rec.fill) {
    adj_[a].Reset(b);
    adj_[b].Reset(a);
  }
  for (int a : rec.neighbors) adj_[a].Set(rec.vertex);
  alive_.Set(rec.vertex);
  ++active_count_;
}

Graph EliminationGraph::CurrentGraph(std::vector<int>* old_ids) const {
  std::vector<int> ids = alive_.ToVector();
  std::vector<int> new_id(n_, -1);
  for (size_t i = 0; i < ids.size(); ++i) new_id[ids[i]] = static_cast<int>(i);
  Graph g(static_cast<int>(ids.size()));
  for (int u : ids) {
    Bitset nb = adj_[u] & alive_;
    for (int v = nb.Next(u); v >= 0; v = nb.Next(v)) {
      g.AddEdge(new_id[u], new_id[v]);
    }
  }
  if (old_ids != nullptr) *old_ids = std::move(ids);
  return g;
}

}  // namespace hypertree
