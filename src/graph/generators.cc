#include "graph/generators.h"

#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace hypertree {

Graph GridGraph(int rows, int cols) {
  HT_CHECK(rows >= 1 && cols >= 1);
  Graph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c));
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1));
    }
  }
  g.set_name("grid" + std::to_string(rows) + "x" + std::to_string(cols));
  return g;
}

Graph QueensGraph(int n) {
  HT_CHECK(n >= 1);
  Graph g(n * n);
  auto id = [n](int r, int c) { return r * n + c; };
  for (int r1 = 0; r1 < n; ++r1) {
    for (int c1 = 0; c1 < n; ++c1) {
      for (int r2 = r1; r2 < n; ++r2) {
        for (int c2 = 0; c2 < n; ++c2) {
          if (r2 == r1 && c2 <= c1) continue;
          bool attack = (r1 == r2) || (c1 == c2) ||
                        (r2 - r1 == c2 - c1) || (r2 - r1 == c1 - c2);
          if (attack) g.AddEdge(id(r1, c1), id(r2, c2));
        }
      }
    }
  }
  g.set_name("queen" + std::to_string(n) + "_" + std::to_string(n));
  return g;
}

Graph MycielskiGraph(int k) {
  HT_CHECK(k >= 2);
  // Start with K_2 and iterate the Mycielskian.
  std::vector<std::pair<int, int>> edges = {{0, 1}};
  int n = 2;
  for (int step = 2; step < k; ++step) {
    // Mycielskian: vertices v_0..v_{n-1}, shadows u_0..u_{n-1}, apex w.
    std::vector<std::pair<int, int>> next = edges;
    for (auto [a, b] : edges) {
      next.emplace_back(a, n + b);
      next.emplace_back(b, n + a);
    }
    int apex = 2 * n;
    for (int i = 0; i < n; ++i) next.emplace_back(n + i, apex);
    edges = std::move(next);
    n = 2 * n + 1;
  }
  Graph g(n);
  for (auto [a, b] : edges) g.AddEdge(a, b);
  g.set_name("myciel" + std::to_string(k));
  return g;
}

Graph CompleteGraph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.AddEdge(u, v);
  g.set_name("K" + std::to_string(n));
  return g;
}

Graph CycleGraph(int n) {
  HT_CHECK(n >= 3);
  Graph g(n);
  for (int v = 0; v < n; ++v) g.AddEdge(v, (v + 1) % n);
  g.set_name("C" + std::to_string(n));
  return g;
}

Graph PathGraph(int n) {
  HT_CHECK(n >= 1);
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.AddEdge(v, v + 1);
  g.set_name("P" + std::to_string(n));
  return g;
}

Graph RandomGraph(int n, int m, uint64_t seed) {
  HT_CHECK(n >= 0);
  HT_CHECK(m <= static_cast<long long>(n) * (n - 1) / 2);
  Graph g(n);
  Rng rng(seed);
  while (g.NumEdges() < m) {
    int u = rng.UniformInt(n);
    int v = rng.UniformInt(n);
    if (u != v) g.AddEdge(u, v);
  }
  g.set_name("random_n" + std::to_string(n) + "_m" + std::to_string(m));
  return g;
}

Graph RandomKTree(int n, int k, double keep, uint64_t seed) {
  HT_CHECK(n >= k + 1);
  Rng rng(seed);
  // Build the full k-tree: start from K_{k+1}; each new vertex is joined to
  // the vertices of a random existing k-clique.
  std::vector<std::vector<int>> cliques;  // k-cliques available for expansion
  std::vector<std::pair<int, int>> edges;
  for (int u = 0; u <= k; ++u)
    for (int v = u + 1; v <= k; ++v) edges.emplace_back(u, v);
  {
    // All k-subsets of the initial K_{k+1}.
    for (int skip = 0; skip <= k; ++skip) {
      std::vector<int> c;
      for (int v = 0; v <= k; ++v)
        if (v != skip) c.push_back(v);
      cliques.push_back(c);
    }
  }
  for (int v = k + 1; v < n; ++v) {
    // Copy: pushing new cliques below may reallocate the vector.
    const std::vector<int> base =
        cliques[rng.UniformInt(static_cast<int>(cliques.size()))];
    for (int u : base) edges.emplace_back(u, v);
    // New k-cliques: base with one vertex replaced by v.
    for (int skip = 0; skip < k; ++skip) {
      std::vector<int> c = base;
      c[skip] = v;
      cliques.push_back(std::move(c));
    }
  }
  Graph g(n);
  for (auto [a, b] : edges) {
    if (keep >= 1.0 || rng.Bernoulli(keep)) g.AddEdge(a, b);
  }
  g.set_name("ktree_n" + std::to_string(n) + "_k" + std::to_string(k));
  return g;
}

}  // namespace hypertree
