// Classic graph algorithms used as building blocks: connectivity,
// degeneracy, greedy cliques.

#ifndef HYPERTREE_GRAPH_ALGORITHMS_H_
#define HYPERTREE_GRAPH_ALGORITHMS_H_

#include <vector>

#include "graph/graph.h"

namespace hypertree {

/// Returns the connected component id of each vertex (ids are dense,
/// starting at 0, assigned in vertex order).
std::vector<int> ConnectedComponents(const Graph& g, int* num_components);

/// True if `g` is connected (the empty graph counts as connected).
bool IsConnected(const Graph& g);

/// Degeneracy of `g` (the max over subgraphs of the min degree); a classic
/// treewidth lower bound. If `order` is non-null, stores a degeneracy
/// ordering (repeatedly removing a minimum-degree vertex).
int Degeneracy(const Graph& g, std::vector<int>* order = nullptr);

/// Size of a clique found greedily (max-degree-first); a treewidth
/// lower bound witness: tw >= clique - 1.
int GreedyCliqueSize(const Graph& g);

}  // namespace hypertree

#endif  // HYPERTREE_GRAPH_ALGORITHMS_H_
