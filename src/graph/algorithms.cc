#include "graph/algorithms.h"

#include <algorithm>

#include "util/bitset.h"

namespace hypertree {

std::vector<int> ConnectedComponents(const Graph& g, int* num_components) {
  int n = g.NumVertices();
  std::vector<int> comp(n, -1);
  int next = 0;
  std::vector<int> stack;
  for (int s = 0; s < n; ++s) {
    if (comp[s] != -1) continue;
    comp[s] = next;
    stack.push_back(s);
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      const Bitset& nb = g.NeighborBits(u);
      for (int v = nb.First(); v >= 0; v = nb.Next(v)) {
        if (comp[v] == -1) {
          comp[v] = next;
          stack.push_back(v);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

bool IsConnected(const Graph& g) {
  int k = 0;
  ConnectedComponents(g, &k);
  return k <= 1;
}

int Degeneracy(const Graph& g, std::vector<int>* order) {
  int n = g.NumVertices();
  Bitset alive(n);
  alive.SetAll();
  std::vector<int> deg(n);
  for (int v = 0; v < n; ++v) deg[v] = g.Degree(v);
  int degeneracy = 0;
  if (order != nullptr) order->clear();
  for (int step = 0; step < n; ++step) {
    int best = -1;
    for (int v = alive.First(); v >= 0; v = alive.Next(v)) {
      if (best == -1 || deg[v] < deg[best]) best = v;
    }
    degeneracy = std::max(degeneracy, deg[best]);
    if (order != nullptr) order->push_back(best);
    alive.Reset(best);
    Bitset nb = g.NeighborBits(best) & alive;
    for (int v = nb.First(); v >= 0; v = nb.Next(v)) --deg[v];
  }
  return degeneracy;
}

int GreedyCliqueSize(const Graph& g) {
  int n = g.NumVertices();
  if (n == 0) return 0;
  int best = 0;
  for (int seed = 0; seed < n; ++seed) {
    // Grow a clique from `seed`, always adding the candidate with the most
    // remaining candidates.
    Bitset cand = g.NeighborBits(seed);
    int size = 1;
    while (cand.Any()) {
      int pick = -1, pick_score = -1;
      for (int v = cand.First(); v >= 0; v = cand.Next(v)) {
        int score = cand.IntersectCount(g.NeighborBits(v));
        if (score > pick_score) {
          pick_score = score;
          pick = v;
        }
      }
      ++size;
      cand &= g.NeighborBits(pick);
    }
    best = std::max(best, size);
    if (best >= n) break;
  }
  return best;
}

}  // namespace hypertree
