#include "graph/graph.h"

namespace hypertree {

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(num_edges_);
  for (int u = 0; u < n_; ++u) {
    for (int v = adj_[u].Next(u); v >= 0; v = adj_[u].Next(v)) {
      out.emplace_back(u, v);
    }
  }
  return out;
}

bool Graph::IsClique(const Bitset& s) const {
  for (int u = s.First(); u >= 0; u = s.Next(u)) {
    for (int v = s.Next(u); v >= 0; v = s.Next(v)) {
      if (!adj_[u].Test(v)) return false;
    }
  }
  return true;
}

}  // namespace hypertree
