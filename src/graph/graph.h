// Simple undirected graphs.
//
// Vertices are dense integers [0, n). The adjacency structure is a bitset
// matrix, which makes the neighborhood algebra used by elimination-based
// decomposition algorithms (clique tests, fill-in counts, subset checks)
// word-parallel.

#ifndef HYPERTREE_GRAPH_GRAPH_H_
#define HYPERTREE_GRAPH_GRAPH_H_

#include <string>
#include <vector>

#include "util/bitset.h"

namespace hypertree {

/// An undirected simple graph over vertices {0, ..., n-1}.
class Graph {
 public:
  Graph() : n_(0), num_edges_(0) {}

  /// Creates an edgeless graph on `n` vertices.
  explicit Graph(int n) : n_(n), num_edges_(0), adj_(n, Bitset(n)) {}

  /// Number of vertices.
  int NumVertices() const { return n_; }

  /// Number of edges.
  int NumEdges() const { return num_edges_; }

  /// Adds edge {u, v}; self-loops and duplicates are ignored.
  void AddEdge(int u, int v) {
    HT_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
    if (u == v || adj_[u].Test(v)) return;
    adj_[u].Set(v);
    adj_[v].Set(u);
    ++num_edges_;
  }

  /// True if {u, v} is an edge.
  bool HasEdge(int u, int v) const {
    HT_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
    return adj_[u].Test(v);
  }

  /// Degree of `v`.
  int Degree(int v) const { return adj_[v].Count(); }

  /// Neighborhood of `v` as a bitset row (do not mutate).
  const Bitset& NeighborBits(int v) const { return adj_[v]; }

  /// Neighborhood of `v` as a sorted vertex list.
  std::vector<int> Neighbors(int v) const { return adj_[v].ToVector(); }

  /// All edges as (u, v) pairs with u < v.
  std::vector<std::pair<int, int>> Edges() const;

  /// True if every pair of vertices in `s` is adjacent.
  bool IsClique(const Bitset& s) const;

  /// Optional human-readable name (instance id in benchmark tables).
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  int n_;
  int num_edges_;
  std::vector<Bitset> adj_;
  std::string name_;
};

}  // namespace hypertree

#endif  // HYPERTREE_GRAPH_GRAPH_H_
