#include "graph/dimacs.h"

#include <fstream>
#include <sstream>

#include "util/stringutil.h"

namespace hypertree {

namespace {
void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}
}  // namespace

std::optional<Graph> ReadDimacsGraph(std::istream& in, std::string* error) {
  std::string line;
  int n = -1;
  std::optional<Graph> g;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string s = StripString(line);
    if (s.empty() || s[0] == 'c') continue;
    std::istringstream ls(s);
    char tag;
    ls >> tag;
    if (tag == 'p') {
      std::string kind;
      long m = 0;
      ls >> kind >> n >> m;
      if (!ls || n < 0) {
        SetError(error, "bad problem line at line " + std::to_string(line_no));
        return std::nullopt;
      }
      g.emplace(n);
    } else if (tag == 'e') {
      if (!g.has_value()) {
        SetError(error, "edge before problem line at line " +
                            std::to_string(line_no));
        return std::nullopt;
      }
      int u = 0, v = 0;
      ls >> u >> v;
      if (!ls || u < 1 || v < 1 || u > n || v > n) {
        SetError(error, "bad edge line at line " + std::to_string(line_no));
        return std::nullopt;
      }
      g->AddEdge(u - 1, v - 1);
    } else {
      SetError(error,
               "unknown line tag '" + std::string(1, tag) + "' at line " +
                   std::to_string(line_no));
      return std::nullopt;
    }
  }
  if (!g.has_value()) SetError(error, "missing problem line");
  return g;
}

std::optional<Graph> ReadDimacsGraphFile(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    SetError(error, "cannot open " + path);
    return std::nullopt;
  }
  auto g = ReadDimacsGraph(in, error);
  if (g.has_value()) {
    // Name the instance after the file stem.
    size_t slash = path.find_last_of('/');
    std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos) stem = stem.substr(0, dot);
    g->set_name(stem);
  }
  return g;
}

void WriteDimacsGraph(const Graph& g, std::ostream& out) {
  out << "c " << (g.name().empty() ? "hypertree graph" : g.name()) << "\n";
  out << "p edge " << g.NumVertices() << " " << g.NumEdges() << "\n";
  for (auto [u, v] : g.Edges()) out << "e " << u + 1 << " " << v + 1 << "\n";
}

}  // namespace hypertree
