#include "setcover/exact.h"

#include <algorithm>

#include "setcover/greedy.h"
#include "util/check.h"

namespace hypertree {

namespace {

struct SearchState {
  const std::vector<Bitset>* sets;       // restricted, domination-free
  std::vector<std::vector<int>> covers;  // element -> set indices covering it
  int max_set_size = 1;
  int best = 0;
  std::vector<int> best_sets;
  std::vector<int> stack;
};

void Dfs(SearchState* st, Bitset* uncovered, int used) {
  if (uncovered->None()) {
    if (used < st->best) {
      st->best = used;
      st->best_sets = st->stack;
    }
    return;
  }
  // Density lower bound.
  int lb = (uncovered->Count() + st->max_set_size - 1) / st->max_set_size;
  if (used + lb >= st->best) return;
  // Branch on the uncovered element with the fewest covering sets.
  int pick = -1, pick_options = 0;
  for (int e = uncovered->First(); e >= 0; e = uncovered->Next(e)) {
    int options = static_cast<int>(st->covers[e].size());
    if (pick == -1 || options < pick_options) {
      pick = e;
      pick_options = options;
    }
  }
  // Candidate sets covering `pick`, largest marginal coverage first.
  std::vector<int> branch = st->covers[pick];
  std::sort(branch.begin(), branch.end(), [&](int a, int b) {
    return (*st->sets)[a].IntersectCount(*uncovered) >
           (*st->sets)[b].IntersectCount(*uncovered);
  });
  for (int s : branch) {
    Bitset next = *uncovered;
    next -= (*st->sets)[s];
    st->stack.push_back(s);
    Dfs(st, &next, used + 1);
    st->stack.pop_back();
    if (used + 1 >= st->best) break;  // deeper branches cannot improve
  }
}

}  // namespace

namespace {

// `active == nullptr` means all candidates. The first step restricts
// candidates to the target and drops empty restrictions, so passing a
// pre-filtered index list (every candidate intersecting the target, in
// ascending order) yields the identical restricted instance and hence a
// bit-identical cover.
int ExactSetCoverImpl(const std::vector<Bitset>& candidates, const int* active,
                      int count, const Bitset& target,
                      std::vector<int>* chosen) {
  if (target.None()) {
    if (chosen != nullptr) chosen->clear();
    return 0;
  }
  // Restrict candidates to the target and remove dominated sets.
  std::vector<Bitset> restricted;
  std::vector<int> origin;
  for (int t = 0; t < count; ++t) {
    int i = active == nullptr ? t : active[t];
    Bitset r = candidates[i] & target;
    if (r.None()) continue;
    restricted.push_back(r);
    origin.push_back(i);
  }
  std::vector<bool> dominated(restricted.size(), false);
  for (size_t i = 0; i < restricted.size(); ++i) {
    if (dominated[i]) continue;
    for (size_t j = 0; j < restricted.size(); ++j) {
      if (i == j || dominated[j]) continue;
      if (restricted[i].IsSubsetOf(restricted[j]) &&
          (restricted[i] != restricted[j] || i > j)) {
        dominated[i] = true;
        break;
      }
    }
  }
  std::vector<Bitset> sets;
  std::vector<int> set_origin;
  for (size_t i = 0; i < restricted.size(); ++i) {
    if (!dominated[i]) {
      sets.push_back(restricted[i]);
      set_origin.push_back(origin[i]);
    }
  }
  HT_CHECK_MSG(!sets.empty(), "target not coverable");

  SearchState st;
  st.sets = &sets;
  st.covers.assign(target.size(), {});
  for (int s = 0; s < static_cast<int>(sets.size()); ++s) {
    st.max_set_size = std::max(st.max_set_size, sets[s].Count());
    for (int e = sets[s].First(); e >= 0; e = sets[s].Next(e)) {
      st.covers[e].push_back(s);
    }
  }
  for (int e = target.First(); e >= 0; e = target.Next(e)) {
    HT_CHECK_MSG(!st.covers[e].empty(), "element %d not coverable", e);
  }
  // Warm start with the greedy solution.
  std::vector<int> greedy_sets;
  int greedy = GreedySetCover(sets, target, nullptr, &greedy_sets);
  st.best = greedy;
  st.best_sets = greedy_sets;

  Bitset uncovered = target;
  Dfs(&st, &uncovered, 0);

  if (chosen != nullptr) {
    chosen->clear();
    for (int s : st.best_sets) chosen->push_back(set_origin[s]);
  }
  return st.best;
}

}  // namespace

int ExactSetCover(const std::vector<Bitset>& candidates, const Bitset& target,
                  std::vector<int>* chosen) {
  return ExactSetCoverImpl(candidates, nullptr,
                           static_cast<int>(candidates.size()), target,
                           chosen);
}

int ExactSetCover(const std::vector<Bitset>& candidates,
                  const std::vector<int>& active, const Bitset& target,
                  std::vector<int>* chosen) {
  return ExactSetCoverImpl(candidates, active.data(),
                           static_cast<int>(active.size()), target, chosen);
}

}  // namespace hypertree
