// Exact minimum set cover by branch and bound.
//
// The thesis' GHD constructions require *exact* bag covers (width under an
// ordering is defined via the optimal cover, Definition 17). The instances
// are bag-sized (tens of elements), so a branch-and-bound with domination
// preprocessing and a density lower bound solves them exactly in
// microseconds; it substitutes the IP solver used in the paper's setup.

#ifndef HYPERTREE_SETCOVER_EXACT_H_
#define HYPERTREE_SETCOVER_EXACT_H_

#include <vector>

#include "util/bitset.h"
#include "util/timer.h"

namespace hypertree {

/// Exact minimum number of candidate sets needed to cover `target`.
/// Stores witness indices in `chosen` if non-null. `ub_hint`, when > 0,
/// primes the incumbent (pass a greedy solution size + its sets to make
/// the search start warm). Requires coverability.
int ExactSetCover(const std::vector<Bitset>& candidates, const Bitset& target,
                  std::vector<int>* chosen = nullptr);

/// Restricted variant: only the candidates listed in `active` (ascending
/// original indices) take part; `chosen` still receives positions into
/// `candidates`. When `active` contains every candidate intersecting
/// `target` the result is bit-identical to the full scan (the first
/// thing the solver does is drop candidates disjoint from the target).
int ExactSetCover(const std::vector<Bitset>& candidates,
                  const std::vector<int>& active, const Bitset& target,
                  std::vector<int>* chosen = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_SETCOVER_EXACT_H_
