#include "setcover/fractional.h"

#include "setcover/simplex.h"
#include "util/check.h"

namespace hypertree {

double FractionalSetCover(const std::vector<Bitset>& candidates,
                          const Bitset& target,
                          std::vector<double>* weights) {
  if (weights != nullptr) weights->assign(candidates.size(), 0.0);
  if (target.None()) return 0.0;
  // Keep only candidates intersecting the target.
  std::vector<int> origin;
  std::vector<Bitset> sets;
  for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
    if (candidates[i].Intersects(target)) {
      sets.push_back(candidates[i] & target);
      origin.push_back(i);
    }
  }
  HT_CHECK_MSG(!sets.empty(), "target not fractionally coverable");
  std::vector<int> elems = target.ToVector();
  int m = static_cast<int>(elems.size());
  int n = static_cast<int>(sets.size());
  std::vector<std::vector<double>> a(m, std::vector<double>(n, 0.0));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      if (sets[j].Test(elems[i])) a[i][j] = 1.0;
    }
  }
  std::vector<double> b(m, 1.0), c(n, 1.0);
  LpResult res = SolveCoverLp(a, b, c);
  HT_CHECK_MSG(res.status == LpResult::Status::kOptimal,
               "cover LP must be feasible and bounded");
  if (weights != nullptr) {
    for (int j = 0; j < n; ++j) (*weights)[origin[j]] = res.x[j];
  }
  return res.objective;
}

}  // namespace hypertree
