// Fractional set cover: the LP relaxation of minimum set cover, whose
// optimum over a bag defines fractional hypertree width (Grohe & Marx).

#ifndef HYPERTREE_SETCOVER_FRACTIONAL_H_
#define HYPERTREE_SETCOVER_FRACTIONAL_H_

#include <vector>

#include "util/bitset.h"

namespace hypertree {

/// Optimal fractional cover weight of `target` using `candidates`:
/// min sum(x_i) s.t. for each t in target, sum over candidates containing
/// t of x_i >= 1, x >= 0. Stores per-candidate weights in `weights` if
/// non-null. Requires coverability; returns 0 for an empty target.
double FractionalSetCover(const std::vector<Bitset>& candidates,
                          const Bitset& target,
                          std::vector<double>* weights = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_SETCOVER_FRACTIONAL_H_
