#include "setcover/greedy.h"

#include "util/check.h"

namespace hypertree {

namespace {

// Specialization for universes of at most 64 elements: the whole scan
// runs on plain words. Pick sequence, tie-breaking draws and the result
// are identical to the general path.
int GreedySetCover1Word(const std::vector<Bitset>& candidates,
                        const Bitset& target, Rng* rng,
                        std::vector<int>* chosen) {
  uint64_t uncovered = target.NumWords() > 0 ? target.Word(0) : 0;
  int m = static_cast<int>(candidates.size());
  int used = 0;
  while (uncovered != 0) {
    int best = -1, best_cover = 0, ties = 0;
    for (int i = 0; i < m; ++i) {
      int cover = __builtin_popcountll(candidates[i].Word(0) & uncovered);
      if (cover > best_cover) {
        best = i;
        best_cover = cover;
        ties = 1;
      } else if (cover == best_cover && cover > 0 && rng != nullptr) {
        ++ties;
        if (rng->UniformInt(ties) == 0) best = i;
      }
    }
    HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
    uncovered &= ~candidates[best].Word(0);
    ++used;
    if (chosen != nullptr) chosen->push_back(best);
  }
  return used;
}

}  // namespace

int GreedySetCover(const std::vector<Bitset>& candidates, const Bitset& target,
                   Rng* rng, std::vector<int>* chosen) {
  if (chosen != nullptr) chosen->clear();
  if (target.NumWords() <= 1) {
    return GreedySetCover1Word(candidates, target, rng, chosen);
  }
  Bitset uncovered = target;
  int used = 0;
  while (uncovered.Any()) {
    int best = -1, best_cover = 0, ties = 0;
    for (int i = 0; i < static_cast<int>(candidates.size()); ++i) {
      int cover = candidates[i].IntersectCount(uncovered);
      if (cover > best_cover) {
        best = i;
        best_cover = cover;
        ties = 1;
      } else if (cover == best_cover && cover > 0 && rng != nullptr) {
        ++ties;
        if (rng->UniformInt(ties) == 0) best = i;
      }
    }
    HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
    uncovered -= candidates[best];
    ++used;
    if (chosen != nullptr) chosen->push_back(best);
  }
  return used;
}

}  // namespace hypertree
