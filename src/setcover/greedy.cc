#include "setcover/greedy.h"

#include <numeric>

#include "kernels/kernels.h"
#include "util/check.h"

namespace hypertree {

namespace {

// Shared scan core: `active == nullptr` scans every candidate, otherwise
// only the `count` listed indices. Pick sequence, tie-breaking draws and
// the result are identical between the two whenever the active list
// contains every candidate intersecting the target — sets that never
// intersect the uncovered remainder score cover == 0, draw no rng ticks
// and can never be picked, so dropping them is invisible.

// Specialization for universes of at most 64 elements: the whole scan
// runs on plain words.
int GreedySetCover1Word(const std::vector<Bitset>& candidates,
                        const int* active, int count, const Bitset& target,
                        Rng* rng, std::vector<int>* chosen) {
  uint64_t uncovered = target.NumWords() > 0 ? target.Word(0) : 0;
  int used = 0;
  if (count <= 64) {
    // Track the still-useful candidates in a word: once a candidate's
    // cover hits zero it stays zero (the uncovered set only shrinks), it
    // can never be picked and never draws a tie-break tick, so dropping
    // it from later rounds changes nothing. Bag covers retire most
    // candidates in the first round, so the later rounds scan a handful.
    uint64_t live = count == 64 ? ~uint64_t{0} : (uint64_t{1} << count) - 1;
    while (uncovered != 0) {
      int best = -1, best_cover = 0, ties = 0;
      for (uint64_t m = live; m != 0; m &= m - 1) {
        int t = __builtin_ctzll(m);
        int i = active == nullptr ? t : active[t];
        int cover = __builtin_popcountll(candidates[i].Word(0) & uncovered);
        if (cover == 0) {
          live &= ~(uint64_t{1} << t);
          continue;
        }
        if (cover > best_cover) {
          best = i;
          best_cover = cover;
          ties = 1;
        } else if (cover == best_cover && rng != nullptr) {
          ++ties;
          if (rng->UniformInt(ties) == 0) best = i;
        }
      }
      HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
      uncovered &= ~candidates[best].Word(0);
      ++used;
      if (chosen != nullptr) chosen->push_back(best);
    }
    return used;
  }
  while (uncovered != 0) {
    int best = -1, best_cover = 0, ties = 0;
    for (int t = 0; t < count; ++t) {
      int i = active == nullptr ? t : active[t];
      int cover = __builtin_popcountll(candidates[i].Word(0) & uncovered);
      if (cover > best_cover) {
        best = i;
        best_cover = cover;
        ties = 1;
      } else if (cover == best_cover && cover > 0 && rng != nullptr) {
        ++ties;
        if (rng->UniformInt(ties) == 0) best = i;
      }
    }
    HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
    uncovered &= ~candidates[best].Word(0);
    ++used;
    if (chosen != nullptr) chosen->push_back(best);
  }
  return used;
}

int GreedySetCoverImpl(const std::vector<Bitset>& candidates,
                       const int* active, int count, const Bitset& target,
                       Rng* rng, std::vector<int>* chosen) {
  if (chosen != nullptr) chosen->clear();
  if (target.NumWords() <= 1) {
    return GreedySetCover1Word(candidates, active, count, target, rng, chosen);
  }
  Bitset uncovered = target;
  int used = 0;
  while (uncovered.Any()) {
    int best = -1, best_cover = 0, ties = 0;
    for (int t = 0; t < count; ++t) {
      int i = active == nullptr ? t : active[t];
      int cover = candidates[i].IntersectCount(uncovered);
      if (cover > best_cover) {
        best = i;
        best_cover = cover;
        ties = 1;
      } else if (cover == best_cover && cover > 0 && rng != nullptr) {
        ++ties;
        if (rng->UniformInt(ties) == 0) best = i;
      }
    }
    HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
    uncovered -= candidates[best];
    ++used;
    if (chosen != nullptr) chosen->push_back(best);
  }
  return used;
}

// Mask-restricted variant: iterates the set bits of `active` each round
// (ascending, matching the vector form) instead of an index list. Split
// like Impl on the universe size so one-word targets stay on plain words.
int GreedySetCoverMask(const std::vector<Bitset>& candidates,
                       const Bitset& active, const Bitset& target, Rng* rng,
                       std::vector<int>* chosen) {
  if (chosen != nullptr) chosen->clear();
  int used = 0;
  const int mask_words = active.NumWords();
  if (target.NumWords() <= 1) {
    uint64_t uncovered = target.NumWords() > 0 ? target.Word(0) : 0;
    while (uncovered != 0) {
      int best = -1, best_cover = 0, ties = 0;
      for (int wi = 0; wi < mask_words; ++wi) {
        for (uint64_t m = active.Word(wi); m != 0; m &= m - 1) {
          int i = wi * 64 + __builtin_ctzll(m);
          int cover = __builtin_popcountll(candidates[i].Word(0) & uncovered);
          if (cover > best_cover) {
            best = i;
            best_cover = cover;
            ties = 1;
          } else if (cover == best_cover && cover > 0 && rng != nullptr) {
            ++ties;
            if (rng->UniformInt(ties) == 0) best = i;
          }
        }
      }
      HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
      uncovered &= ~candidates[best].Word(0);
      ++used;
      if (chosen != nullptr) chosen->push_back(best);
    }
    return used;
  }
  Bitset uncovered = target;
  while (uncovered.Any()) {
    int best = -1, best_cover = 0, ties = 0;
    for (int wi = 0; wi < mask_words; ++wi) {
      for (uint64_t m = active.Word(wi); m != 0; m &= m - 1) {
        int i = wi * 64 + __builtin_ctzll(m);
        int cover = candidates[i].IntersectCount(uncovered);
        if (cover > best_cover) {
          best = i;
          best_cover = cover;
          ties = 1;
        } else if (cover == best_cover && cover > 0 && rng != nullptr) {
          ++ties;
          if (rng->UniformInt(ties) == 0) best = i;
        }
      }
    }
    HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
    uncovered -= candidates[best];
    ++used;
    if (chosen != nullptr) chosen->push_back(best);
  }
  return used;
}

}  // namespace

int GreedySetCover(const std::vector<Bitset>& candidates, const Bitset& target,
                   Rng* rng, std::vector<int>* chosen) {
  return GreedySetCoverImpl(candidates, nullptr,
                            static_cast<int>(candidates.size()), target, rng,
                            chosen);
}

int GreedySetCover(const std::vector<Bitset>& candidates,
                   const std::vector<int>& active, const Bitset& target,
                   Rng* rng, std::vector<int>* chosen) {
  return GreedySetCoverImpl(candidates, active.data(),
                            static_cast<int>(active.size()), target, rng,
                            chosen);
}

int GreedySetCover(const std::vector<Bitset>& candidates, const Bitset& active,
                   const Bitset& target, Rng* rng, std::vector<int>* chosen) {
  return GreedySetCoverMask(candidates, active, target, rng, chosen);
}

int GreedySetCoverRows(const uint64_t* rows, size_t stride, int nrows,
                       const Bitset* active, const Bitset& target, Rng* rng,
                       std::vector<int>* chosen, GreedyCoverScratch* scratch) {
  if (chosen != nullptr) chosen->clear();
  const kernels::Ops& ops = kernels::Active();
  const int nwords = target.NumWords();
  // One-word universes with at most 64 candidates (the benchmark tables'
  // hot shape): one batched kernel scoring pass for the dense first
  // round — four packed rows per vector under AVX2 — then plain-word
  // rounds over the surviving candidates, where a kernel call would
  // cost more than the remaining work. The scan order (ascending bit
  // index), the zero-cover retirement, and the reservoir tie-break
  // draws replicate the list path exactly, so the rng stream is
  // bit-identical across the two shapes.
  if (nwords <= 1 && nrows <= 64) {
    uint64_t uncovered = nwords > 0 ? target.Word(0) : 0;
    uint64_t live;
    if (active != nullptr) {
      live = active->NumWords() > 0 ? active->Word(0) : 0;
    } else {
      live = nrows == 64 ? ~uint64_t{0} : (uint64_t{1} << nrows) - 1;
    }
    std::vector<int>& counts = scratch->counts;
    if (static_cast<int>(counts.size()) < nrows) counts.resize(nrows);
    bool batch = active == nullptr && stride == 1 && nrows > 0;
    int used = 0;
    while (uncovered != 0) {
      int best = -1, best_cover = 0, ties = 0;
      if (batch) {
        ops.ScoreRows(counts.data(), rows, 1, nullptr, nrows, &uncovered, 1);
        batch = false;
        for (uint64_t m = live; m != 0; m &= m - 1) {
          const int i = __builtin_ctzll(m);
          const int cover = counts[i];
          if (cover == 0) {
            live &= ~(uint64_t{1} << i);
            continue;
          }
          if (cover > best_cover) {
            best = i;
            best_cover = cover;
            ties = 1;
          } else if (cover == best_cover && rng != nullptr) {
            ++ties;
            if (rng->UniformInt(ties) == 0) best = i;
          }
        }
      } else {
        for (uint64_t m = live; m != 0; m &= m - 1) {
          const int i = __builtin_ctzll(m);
          const int cover = __builtin_popcountll(
              rows[static_cast<size_t>(i) * stride] & uncovered);
          if (cover == 0) {
            live &= ~(uint64_t{1} << i);
            continue;
          }
          if (cover > best_cover) {
            best = i;
            best_cover = cover;
            ties = 1;
          } else if (cover == best_cover && rng != nullptr) {
            ++ties;
            if (rng->UniformInt(ties) == 0) best = i;
          }
        }
      }
      HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
      uncovered &= ~rows[static_cast<size_t>(best) * stride];
      ++used;
      if (chosen != nullptr) chosen->push_back(best);
    }
    return used;
  }
  std::vector<int>& live = scratch->live;
  std::vector<int>& counts = scratch->counts;
  live.clear();
  if (active != nullptr) {
    active->AppendTo(&live);
  } else {
    live.resize(static_cast<size_t>(nrows));
    std::iota(live.begin(), live.end(), 0);
  }
  if (static_cast<int>(counts.size()) < static_cast<int>(live.size())) {
    counts.resize(live.size());
  }
  scratch->uncovered = target;
  uint64_t* unc = scratch->uncovered.MutableWords();
  // The first round over a full candidate range scores with idx ==
  // nullptr (rows 0..k-1), which lets vector backends stream packed
  // single-word rows four at a time; compaction switches to the index
  // list from round two on.
  bool dense = active == nullptr;
  int used = 0;
  while (scratch->uncovered.Any()) {
    const int k = static_cast<int>(live.size());
    ops.ScoreRows(counts.data(), rows, stride, dense ? nullptr : live.data(),
                  k, unc, nwords);
    int best = -1, best_cover = 0, ties = 0, w = 0;
    for (int t = 0; t < k; ++t) {
      const int cover = counts[t];
      if (cover == 0) continue;  // retired: the uncovered set only shrinks
      const int i = live[t];
      live[w++] = i;
      if (cover > best_cover) {
        best = i;
        best_cover = cover;
        ties = 1;
      } else if (cover == best_cover && rng != nullptr) {
        ++ties;
        if (rng->UniformInt(ties) == 0) best = i;
      }
    }
    live.resize(static_cast<size_t>(w));
    dense = false;
    HT_CHECK_MSG(best >= 0, "target not coverable by candidate sets");
    const uint64_t* row = rows + static_cast<size_t>(best) * stride;
    for (int i = 0; i < nwords; ++i) unc[i] &= ~row[i];
    ++used;
    if (chosen != nullptr) chosen->push_back(best);
  }
  return used;
}

}  // namespace hypertree
