#include "setcover/simplex.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace hypertree {

namespace {

constexpr double kEps = 1e-9;

// Dense tableau simplex on the standard-form problem
//   min c'^T y  s.t.  T y = b,  y >= 0
// with an initial basic feasible solution given by `basis`.
// tableau: rows x (cols + 1); last column is the rhs. The objective row is
// maintained separately as `cost` (reduced costs) and `obj` (negated value).
class Tableau {
 public:
  Tableau(std::vector<std::vector<double>> t, std::vector<int> basis)
      : t_(std::move(t)), basis_(std::move(basis)) {
    rows_ = static_cast<int>(t_.size());
    cols_ = static_cast<int>(t_[0].size()) - 1;
  }

  // Runs simplex iterations for objective `c` (length cols_). Returns
  // false if unbounded. On return the tableau is optimal for c.
  bool Optimize(const std::vector<double>& c) {
    // Build reduced cost row: z_j - c_j using current basis.
    std::vector<double> cost(cols_ + 1, 0.0);
    for (int j = 0; j <= cols_; ++j) {
      double z = 0.0;
      for (int i = 0; i < rows_; ++i) z += c[basis_[i]] * t_[i][j];
      cost[j] = z - (j < cols_ ? c[j] : 0.0);
    }
    int guard = 0;
    const int max_iter = 50 * (rows_ + cols_ + 10);
    while (true) {
      // Bland's rule: entering = smallest index with positive reduced cost.
      int enter = -1;
      for (int j = 0; j < cols_; ++j) {
        if (cost[j] > kEps) {
          enter = j;
          break;
        }
      }
      if (enter == -1) return true;  // optimal
      // Ratio test; Bland tie-break on smallest basis variable.
      int leave = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < rows_; ++i) {
        if (t_[i][enter] > kEps) {
          double ratio = t_[i][cols_] / t_[i][enter];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == -1 || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == -1) return false;  // unbounded
      Pivot(leave, enter, &cost);
      if (++guard > max_iter) {
        // Should not happen with Bland's rule; fail loudly.
        HT_CHECK_MSG(false, "simplex failed to converge");
      }
    }
  }

  double Rhs(int i) const { return t_[i][cols_]; }
  int BasisVar(int i) const { return basis_[i]; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  // Pivot a non-basic artificial out of row i if possible (used between
  // phases); returns true on success or if the row is degenerate-zero.
  bool PivotOutArtificial(int i, int num_real_cols) {
    for (int j = 0; j < num_real_cols; ++j) {
      if (std::fabs(t_[i][j]) > kEps) {
        std::vector<double> dummy(cols_ + 1, 0.0);
        Pivot(i, j, &dummy);
        return true;
      }
    }
    return false;  // row is all zeros over real columns (redundant row)
  }

 private:
  void Pivot(int leave, int enter, std::vector<double>* cost) {
    double p = t_[leave][enter];
    for (int j = 0; j <= cols_; ++j) t_[leave][j] /= p;
    for (int i = 0; i < rows_; ++i) {
      if (i == leave) continue;
      double f = t_[i][enter];
      if (std::fabs(f) < kEps) continue;
      for (int j = 0; j <= cols_; ++j) t_[i][j] -= f * t_[leave][j];
    }
    double f = (*cost)[enter];
    if (std::fabs(f) > kEps) {
      for (int j = 0; j <= cols_; ++j) (*cost)[j] -= f * t_[leave][j];
    }
    basis_[leave] = enter;
  }

  std::vector<std::vector<double>> t_;
  std::vector<int> basis_;
  int rows_, cols_;
};

}  // namespace

LpResult SolveCoverLp(const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& c) {
  int m = static_cast<int>(a.size());
  int n = static_cast<int>(c.size());
  LpResult res;
  if (m == 0) {
    res.status = LpResult::Status::kOptimal;
    res.objective = 0.0;
    res.x.assign(n, 0.0);
    return res;
  }
  HT_CHECK(static_cast<int>(b.size()) == m);
  for (double bi : b) HT_CHECK(bi >= 0.0);
  // Standard form: A x - s + r = b with surplus s >= 0 and artificial
  // r >= 0. Columns: [x (n)] [s (m)] [r (m)] [rhs].
  int cols = n + 2 * m;
  std::vector<std::vector<double>> t(m, std::vector<double>(cols + 1, 0.0));
  std::vector<int> basis(m);
  for (int i = 0; i < m; ++i) {
    HT_CHECK(static_cast<int>(a[i].size()) == n);
    for (int j = 0; j < n; ++j) t[i][j] = a[i][j];
    t[i][n + i] = -1.0;      // surplus
    t[i][n + m + i] = 1.0;   // artificial
    t[i][cols] = b[i];
    basis[i] = n + m + i;
  }
  Tableau tab(std::move(t), std::move(basis));
  // Phase 1: minimize sum of artificials.
  std::vector<double> phase1(cols, 0.0);
  for (int i = 0; i < m; ++i) phase1[n + m + i] = 1.0;
  // Our Optimize minimizes via reduced costs z_j - c_j > 0 entering; this
  // is the standard min-simplex criterion.
  bool ok = tab.Optimize(phase1);
  HT_CHECK(ok);  // phase 1 is always bounded below by 0
  double infeas = 0.0;
  for (int i = 0; i < tab.rows(); ++i) {
    if (tab.BasisVar(i) >= n + m) infeas += tab.Rhs(i);
  }
  if (infeas > 1e-7) {
    res.status = LpResult::Status::kInfeasible;
    return res;
  }
  // Drive any degenerate artificials out of the basis.
  for (int i = 0; i < tab.rows(); ++i) {
    if (tab.BasisVar(i) >= n + m) tab.PivotOutArtificial(i, n + m);
  }
  // Phase 2: real objective. Artificial columns get a prohibitive cost so
  // they can never re-enter the basis (re-entering would silently relax
  // the covering constraints).
  std::vector<double> phase2(cols, 0.0);
  for (int j = 0; j < n; ++j) phase2[j] = c[j];
  for (int i = 0; i < m; ++i) phase2[n + m + i] = 1e9;
  if (!tab.Optimize(phase2)) {
    res.status = LpResult::Status::kUnbounded;
    return res;
  }
  res.status = LpResult::Status::kOptimal;
  res.x.assign(n, 0.0);
  for (int i = 0; i < tab.rows(); ++i) {
    int v = tab.BasisVar(i);
    if (v < n) res.x[v] = tab.Rhs(i);
  }
  res.objective = 0.0;
  for (int j = 0; j < n; ++j) res.objective += c[j] * res.x[j];
  return res;
}

}  // namespace hypertree
