// Greedy set cover (Chvatal / Johnson; thesis Figure 7.2): repeatedly pick
// the candidate set covering the most still-uncovered target elements.
// ln(n)-approximate, and in practice near-optimal on the bag-cover
// instances arising in bucket elimination.

#ifndef HYPERTREE_SETCOVER_GREEDY_H_
#define HYPERTREE_SETCOVER_GREEDY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bitset.h"
#include "util/rng.h"

namespace hypertree {

/// Caller-owned scratch for GreedySetCoverRows (the kernel layer never
/// allocates): the live candidate list, the per-round kernel scores, and
/// the uncovered remainder. One per search worker; reused across calls
/// with no steady-state allocation.
struct GreedyCoverScratch {
  std::vector<int> live;
  std::vector<int> counts;
  Bitset uncovered;
};

/// Covers `target` with sets from `candidates`, greedily. Returns the
/// number of sets used; stores the chosen candidate indices in `chosen`
/// if non-null. Ties are broken randomly when `rng` is non-null, else by
/// lowest index. Requires that the union of candidates contains target.
int GreedySetCover(const std::vector<Bitset>& candidates, const Bitset& target,
                   Rng* rng = nullptr, std::vector<int>* chosen = nullptr);

/// Restricted variant: only the candidates listed in `active` (ascending
/// original indices, typically the edges an incidence index reports as
/// touching the target) are scanned; `chosen` still receives positions
/// into `candidates`. When `active` contains every candidate that
/// intersects `target`, the picks, the rng tie-break draw sequence and
/// the result are bit-identical to the full scan — candidates disjoint
/// from the uncovered remainder score zero and influence nothing.
int GreedySetCover(const std::vector<Bitset>& candidates,
                   const std::vector<int>& active, const Bitset& target,
                   Rng* rng = nullptr, std::vector<int>* chosen = nullptr);

/// Same restriction with the active candidates given as a bitmask over
/// candidate indices, so hot callers can pass an incidence-index row
/// without materializing an index vector first. Scans in ascending index
/// order — picks, draws and result are identical to the vector form over
/// the same active set.
int GreedySetCover(const std::vector<Bitset>& candidates, const Bitset& active,
                   const Bitset& target, Rng* rng = nullptr,
                   std::vector<int>* chosen = nullptr);

/// Kernel-backed greedy cover over a flat row arena (candidate i = row i
/// at rows + i * stride, NumWords(target) words wide — e.g. the
/// incidence index's EdgeVarRows()). Each round scores every live
/// candidate with one batched kernel call (src/kernels), then replays
/// the same ascending pick / tie-break scan as the vector overloads.
/// `active` restricts the scan to the set candidate indices (nullptr:
/// all `nrows`). Candidates whose score hits zero retire permanently —
/// the uncovered set only shrinks, so they can never be picked and never
/// draw a tie-break tick. Picks, rng draw sequence and result are
/// bit-identical to the vector overloads over the same candidate sets.
int GreedySetCoverRows(const uint64_t* rows, size_t stride, int nrows,
                       const Bitset* active, const Bitset& target,
                       Rng* rng, std::vector<int>* chosen,
                       GreedyCoverScratch* scratch);

}  // namespace hypertree

#endif  // HYPERTREE_SETCOVER_GREEDY_H_
