// Greedy set cover (Chvatal / Johnson; thesis Figure 7.2): repeatedly pick
// the candidate set covering the most still-uncovered target elements.
// ln(n)-approximate, and in practice near-optimal on the bag-cover
// instances arising in bucket elimination.

#ifndef HYPERTREE_SETCOVER_GREEDY_H_
#define HYPERTREE_SETCOVER_GREEDY_H_

#include <vector>

#include "util/bitset.h"
#include "util/rng.h"

namespace hypertree {

/// Covers `target` with sets from `candidates`, greedily. Returns the
/// number of sets used; stores the chosen candidate indices in `chosen`
/// if non-null. Ties are broken randomly when `rng` is non-null, else by
/// lowest index. Requires that the union of candidates contains target.
int GreedySetCover(const std::vector<Bitset>& candidates, const Bitset& target,
                   Rng* rng = nullptr, std::vector<int>* chosen = nullptr);

/// Restricted variant: only the candidates listed in `active` (ascending
/// original indices, typically the edges an incidence index reports as
/// touching the target) are scanned; `chosen` still receives positions
/// into `candidates`. When `active` contains every candidate that
/// intersects `target`, the picks, the rng tie-break draw sequence and
/// the result are bit-identical to the full scan — candidates disjoint
/// from the uncovered remainder score zero and influence nothing.
int GreedySetCover(const std::vector<Bitset>& candidates,
                   const std::vector<int>& active, const Bitset& target,
                   Rng* rng = nullptr, std::vector<int>* chosen = nullptr);

/// Same restriction with the active candidates given as a bitmask over
/// candidate indices, so hot callers can pass an incidence-index row
/// without materializing an index vector first. Scans in ascending index
/// order — picks, draws and result are identical to the vector form over
/// the same active set.
int GreedySetCover(const std::vector<Bitset>& candidates, const Bitset& active,
                   const Bitset& target, Rng* rng = nullptr,
                   std::vector<int>* chosen = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_SETCOVER_GREEDY_H_
