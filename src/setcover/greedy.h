// Greedy set cover (Chvatal / Johnson; thesis Figure 7.2): repeatedly pick
// the candidate set covering the most still-uncovered target elements.
// ln(n)-approximate, and in practice near-optimal on the bag-cover
// instances arising in bucket elimination.

#ifndef HYPERTREE_SETCOVER_GREEDY_H_
#define HYPERTREE_SETCOVER_GREEDY_H_

#include <vector>

#include "util/bitset.h"
#include "util/rng.h"

namespace hypertree {

/// Covers `target` with sets from `candidates`, greedily. Returns the
/// number of sets used; stores the chosen candidate indices in `chosen`
/// if non-null. Ties are broken randomly when `rng` is non-null, else by
/// lowest index. Requires that the union of candidates contains target.
int GreedySetCover(const std::vector<Bitset>& candidates, const Bitset& target,
                   Rng* rng = nullptr, std::vector<int>* chosen = nullptr);

}  // namespace hypertree

#endif  // HYPERTREE_SETCOVER_GREEDY_H_
