// A small dense two-phase primal simplex solver for linear programs of the
// form
//
//     minimize    c^T x
//     subject to  A x >= b,   x >= 0,   b >= 0.
//
// This is exactly the shape of the fractional edge-cover LPs that define
// fractional hypertree width; problem sizes are bag-sized (tens of rows
// and columns), so a dense tableau with Bland's anti-cycling rule is both
// simple and fast. Built from scratch: the paper's setup would use an
// external LP/IP solver here.

#ifndef HYPERTREE_SETCOVER_SIMPLEX_H_
#define HYPERTREE_SETCOVER_SIMPLEX_H_

#include <vector>

namespace hypertree {

/// Result of an LP solve.
struct LpResult {
  enum class Status { kOptimal, kInfeasible, kUnbounded };
  Status status = Status::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;  // primal solution (original variables only)
};

/// Solves min c^T x s.t. A x >= b, x >= 0 with b >= 0 componentwise.
/// `a` is row-major with `a.size()` rows and c.size() columns.
LpResult SolveCoverLp(const std::vector<std::vector<double>>& a,
                      const std::vector<double>& b,
                      const std::vector<double>& c);

}  // namespace hypertree

#endif  // HYPERTREE_SETCOVER_SIMPLEX_H_
