// SharedBounds: the atomic bound state racing portfolio engines share.
//
// Engines publish proven lower bounds (max-merged) and witnessed upper
// bounds (min-merged) and may poll the incumbent to prune. An engine that
// *proves* optimality calls Prove(), which cancels every engine with a
// LARGER index via its CancellationToken; lower-indexed engines run to
// completion. That supersede rule is what keeps racing deterministic:
// whether engine i finishes is then independent of thread scheduling (it
// can only be cancelled by provers ordered before it, whose own runs are
// deterministic), so "lowest-indexed prover" — the PR-1 lowest-index-wins
// idiom — names the same winner for every --threads value.

#ifndef HYPERTREE_PORTFOLIO_SHARED_BOUNDS_H_
#define HYPERTREE_PORTFOLIO_SHARED_BOUNDS_H_

#include <atomic>
#include <climits>
#include <mutex>
#include <vector>

#include "td/exact.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hypertree {

/// Thread-safe bound state for one race. All bound reads/writes are
/// lock-free (relaxed atomics: bounds are monotone scalars, so stale
/// reads only delay pruning, never unsound it); only the first-prove
/// timestamp takes a mutex, off the hot path.
class SharedBounds : public BoundExchange {
 public:
  /// `num_engines` fixed for the race; optional seed bounds come from the
  /// deterministic prologue (static lower bound, heuristic incumbent).
  explicit SharedBounds(int num_engines, int lower_bound = 0,
                        int upper_bound = INT_MAX)
      : lb_(lower_bound), ub_(upper_bound), tokens_(num_engines) {}

  // BoundExchange interface (hot path, relaxed atomics).
  int IncumbentUpperBound() const override {
    return ub_.load(std::memory_order_relaxed);
  }
  void PublishUpperBound(int width) override {
    int seen = ub_.load(std::memory_order_relaxed);
    while (width < seen) {
      if (ub_.compare_exchange_weak(seen, width, std::memory_order_relaxed)) {
        ub_updates_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }
  void PublishLowerBound(int bound) override {
    int seen = lb_.load(std::memory_order_relaxed);
    while (bound > seen) {
      if (lb_.compare_exchange_weak(seen, bound, std::memory_order_relaxed)) {
        lb_updates_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  int LowerBound() const { return lb_.load(std::memory_order_relaxed); }

  /// Engine `engine` proved the optimum is `width`: record it as a
  /// candidate winner and cancel every engine ordered after it. Safe to
  /// call from multiple engines; the smallest index wins.
  void Prove(int engine, int width) {
    PublishUpperBound(width);
    PublishLowerBound(width);
    // Relaxed is deliberate on the winner index: best_prover_ is a
    // monotone minimum (CAS only ever lowers it), every engine's witness
    // lives in its own caller-owned slot, and the verdict is read after
    // ThreadPool::Wait(), which provides the publication happens-before.
    // A stale read here only delays supersede-cancellation; it cannot
    // unpublish or tear the result.
    // ht-analyze: allow(relaxed-publish)
    int seen = best_prover_.load(std::memory_order_relaxed);
    while (engine < seen &&
           // ht-analyze: allow(relaxed-publish)
           !best_prover_.compare_exchange_weak(seen, engine,
                                               std::memory_order_relaxed)) {
    }
    for (size_t j = static_cast<size_t>(engine) + 1; j < tokens_.size(); ++j) {
      tokens_[j].Cancel();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (first_prove_seconds_ < 0) {
      first_prove_seconds_ = timer_.ElapsedSeconds();
    }
  }

  /// Lowest engine index that proved optimality so far; INT_MAX if none.
  /// Stale reads only delay pruning; the authoritative read happens after
  /// the race's Wait().
  int BestProver() const {
    // ht-analyze: allow(relaxed-publish)
    return best_prover_.load(std::memory_order_relaxed);
  }

  /// True when some engine ordered before `engine` already proved.
  bool Superseded(int engine) const { return BestProver() < engine; }

  /// The cancellation token engine `engine` must poll.
  CancellationToken TokenFor(int engine) {
    return tokens_[static_cast<size_t>(engine)];
  }

  /// Cancels every engine (race teardown on external abort).
  void CancelAll() {
    for (auto& t : tokens_) t.Cancel();
  }

  long ub_updates() const {
    return ub_updates_.load(std::memory_order_relaxed);
  }
  long lb_updates() const {
    return lb_updates_.load(std::memory_order_relaxed);
  }

  /// Seconds from construction to the race's first optimality proof
  /// (negative when nothing proved yet).
  double FirstProveSeconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_prove_seconds_;
  }

  /// Seconds since construction (for cancel-latency accounting).
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  std::atomic<int> lb_;
  std::atomic<int> ub_;
  std::atomic<int> best_prover_{INT_MAX};
  std::atomic<long> ub_updates_{0};
  std::atomic<long> lb_updates_{0};
  std::vector<CancellationToken> tokens_;
  Timer timer_;
  mutable std::mutex mu_;
  double first_prove_seconds_ = -1.0;
};

}  // namespace hypertree

#endif  // HYPERTREE_PORTFOLIO_SHARED_BOUNDS_H_
