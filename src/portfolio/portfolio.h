// Racing portfolio solver for ghw (ROADMAP: "portfolio layer").
//
// PortfolioGhw races the routed engine lineup concurrently on a
// ThreadPool around a SharedBounds object:
//
//   prologue (deterministic, single-threaded):
//     features -> router -> static lower bound -> heuristic incumbent u0
//   race:
//     every engine starts from the same prologue bounds
//     (initial_upper_bound = u0) under deterministic node/iteration
//     budgets; an engine that PROVES optimality cancels all
//     higher-indexed engines (SharedBounds::Prove)
//   verdict:
//     winner = lowest-indexed prover; its width/nodes and the prologue
//     bounds form the result
//
// Determinism: each engine is a deterministic function of (instance,
// seed, budgets) — single-threaded, no wall-clock-dependent decisions
// until the time-limit backstop fires — and cancellation only ever
// arrives from LOWER-indexed engines, whose outcomes do not depend on
// scheduling either (by induction on the index). Hence the winner, its
// width, its node count, and the witness are identical for every
// --threads value; only per-engine wall times and which losers got
// cancelled early vary, and those are reported as non-compared counters.
//
// Live mode (PortfolioOptions::live_sharing) additionally wires
// SharedBounds into every engine's SearchOptions::exchange so BB/A*
// tighten cutoffs mid-search and det-k skips beaten k values. That is
// faster on wall time but makes node counts timing-dependent, so results
// are flagged non-deterministic.

#ifndef HYPERTREE_PORTFOLIO_PORTFOLIO_H_
#define HYPERTREE_PORTFOLIO_PORTFOLIO_H_

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "portfolio/features.h"
#include "portfolio/router.h"
#include "td/exact.h"

namespace hypertree {

/// Portfolio control knobs.
struct PortfolioOptions {
  /// Wall-clock backstop per engine; <= 0: unlimited. Results stay
  /// deterministic as long as no engine hits it (engines are budgeted by
  /// nodes/iterations first).
  double time_limit_seconds = 10.0;
  /// Total node/evaluation budget for the race; the router splits it
  /// across the lineup (lead prover: half, followers: a sixteenth each),
  /// so the worst case — nobody proves, nothing cancelled — still costs
  /// less than one full single-engine run. <= 0: unlimited.
  long max_nodes = 0;
  /// Racing threads; <= 0: hardware concurrency. Does not change results.
  int threads = 0;
  uint64_t seed = 1;
  /// Share bounds through the live exchange (timing-dependent, see file
  /// comment) instead of only through the deterministic prologue.
  bool live_sharing = false;
  /// Print one per-engine trace line to stderr as the race settles.
  bool trace = false;
  /// External cooperative cancellation (e.g. a serve request deadline or
  /// server shutdown): every engine polls it alongside its supersede
  /// token and the race returns its anytime bounds once it fires. When
  /// it fires mid-race, results are timing-dependent, exactly like the
  /// wall-clock backstop.
  CancellationToken cancel;
};

/// Per-engine outcome, for traces and `portfolio.*` counters.
struct EngineStats {
  EngineKind kind = EngineKind::kBbGhw;
  std::string name;        // EngineName(kind)
  bool ran = false;        // false: superseded before starting
  bool proved = false;     // proved ghw optimality
  bool cancelled = false;  // stopped by a lower-indexed prover
  int width = -1;          // exact-cover width of its witness; -1 if none
  int lower_bound = 0;     // ghw lower bound this engine established
  long nodes = 0;          // nodes / evaluations spent
  double seconds = 0;      // wall time inside the engine
};

/// The race verdict.
struct PortfolioResult {
  WidthResult result;       // aggregate bounds + witness ordering
  int winner = -1;          // lineup index of the winning prover; -1: none
  std::string winner_name;  // EngineName or "prologue"
  InstanceFeatures features;
  RoutingPlan plan;
  std::vector<EngineStats> engines;     // one per lineup slot
  double prologue_seconds = 0;          // features + router + seed bounds
  double cancel_latency_seconds = -1;   // first proof -> race settled; -1 n/a
};

/// Races the routed lineup on `h` and returns the verdict. The result
/// witness ordering always exact-cover-evaluates to result.upper_bound.
PortfolioResult PortfolioGhw(const Hypergraph& h,
                             const PortfolioOptions& options = {});

}  // namespace hypertree

#endif  // HYPERTREE_PORTFOLIO_PORTFOLIO_H_
