// Cheap structural instance features for the portfolio router.
//
// Everything here is derivable from the IncidenceIndex in one pass over
// the edge/vertex incidence bitsets — cheap enough to run before every
// solve (bench_micro_kernels.cc keeps extraction under 1% of a median
// table-8 solve). The features mirror the classes the routing literature
// singles out: bounded intersection and bounded degree (Fischl et al.,
// "General and Fractional Hypertree Decompositions: Hard and Easy
// Cases") admit dedicated fast paths, and alpha-acyclicity pins ghw = 1
// outright.

#ifndef HYPERTREE_PORTFOLIO_FEATURES_H_
#define HYPERTREE_PORTFOLIO_FEATURES_H_

#include <array>

#include "hypergraph/incidence_index.h"

namespace hypertree {

/// Structural features of one hypergraph instance.
struct InstanceFeatures {
  int num_vertices = 0;
  int num_edges = 0;
  int max_arity = 0;      // largest |e|
  double mean_arity = 0;  // average |e|
  int max_degree = 0;     // most edges incident to one vertex
  /// Largest |e ∩ f| over distinct overlapping edge pairs; the
  /// bounded-intersection parameter of the cited hard/easy-case papers.
  int max_intersection = 0;
  /// Edge density of the primal graph: primal edges / (n choose 2).
  double primal_density = 0;
  /// ghw(H) = 1 if and only if this holds (GYO reduction).
  bool alpha_acyclic = false;
  /// arity_histogram[i] counts edges of arity i+1 for i < 7; the last
  /// bucket counts arity >= 8.
  std::array<long, 8> arity_histogram{};
};

/// Extracts the features of `index`'s hypergraph.
InstanceFeatures ExtractFeatures(const IncidenceIndex& index);

}  // namespace hypertree

#endif  // HYPERTREE_PORTFOLIO_FEATURES_H_
