#include "portfolio/portfolio.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "bounds/ghw_lower_bounds.h"
#include "ga/ga_ghw.h"
#include "ga/saiga.h"
#include "ghd/astar.h"
#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "hd/det_k_decomp.h"
#include "ls/local_search.h"
#include "ordering/heuristics.h"
#include "portfolio/shared_bounds.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace hypertree {

namespace {

metrics::Counter& RacesMetric() {
  static metrics::Counter& c = metrics::GetCounter("portfolio.races");
  return c;
}
metrics::Counter& ProofsMetric() {
  static metrics::Counter& c = metrics::GetCounter("portfolio.proofs");
  return c;
}
metrics::Counter& EnginesRacedMetric() {
  static metrics::Counter& c = metrics::GetCounter("portfolio.engines_raced");
  return c;
}
metrics::Counter& EnginesCancelledMetric() {
  static metrics::Counter& c =
      metrics::GetCounter("portfolio.engines_cancelled");
  return c;
}
metrics::Counter& UbUpdatesMetric() {
  static metrics::Counter& c = metrics::GetCounter("portfolio.ub_updates");
  return c;
}
metrics::Counter& LbUpdatesMetric() {
  static metrics::Counter& c = metrics::GetCounter("portfolio.lb_updates");
  return c;
}

// Everything one engine task writes; read only after pool.Wait().
struct EngineOutcome {
  EngineStats stats;
  EliminationOrdering ordering;
  bool has_ordering = false;
  bool proved = false;
  int proved_width = -1;
  DecompCacheStats cache_stats;
};

// Elimination ordering from a hypertree decomposition, width-preserving:
// processing nodes children-before-parent (reverse of the parent-first
// node order) and eliminating each vertex at the highest node containing
// it keeps every elimination bag inside that node's chi, so the exact
// cover of each bag costs at most |lambda| <= k (the classic
// decomposition -> ordering direction of Theorem 3). First-eliminated
// vertices go to the back of sigma, matching the searches' convention.
EliminationOrdering OrderingFromHd(const HypertreeDecomposition& hd, int n) {
  std::vector<char> placed(n, 0);
  std::vector<int> elim;
  elim.reserve(n);
  for (int p = hd.NumNodes() - 1; p >= 0; --p) {
    int parent = hd.Parent(p);
    for (int v = hd.Chi(p).First(); v >= 0; v = hd.Chi(p).Next(v)) {
      if (placed[v]) continue;
      if (parent >= 0 && hd.Chi(parent).Test(v)) continue;  // lives higher up
      placed[v] = 1;
      elim.push_back(v);
    }
  }
  for (int v = 0; v < n; ++v) {
    if (!placed[v]) elim.push_back(v);  // vertices outside every chi
  }
  EliminationOrdering sigma(n);
  int pos = n - 1;
  for (int v : elim) sigma[pos--] = v;
  return sigma;
}

// Runs lineup slot `i` to completion (or cancellation) and fills `out`.
// Engines are single-threaded and node/iteration-budgeted, so `out` is a
// deterministic function of (h, spec, seed, prologue bounds) — never of
// scheduling — unless the wall-clock backstop fires first.
void RunEngine(const Hypergraph& h, const EngineSpec& spec,
               const PortfolioOptions& opts, int static_lb, int prologue_ub,
               CancellationToken token, BoundExchange* exchange,
               EngineOutcome* out) {
  Timer timer;
  long budget_nodes = spec.max_nodes > 0 ? spec.max_nodes : opts.max_nodes;
  switch (spec.kind) {
    case EngineKind::kDetK: {
      SearchOptions sub;
      sub.time_limit_seconds = opts.time_limit_seconds;
      sub.max_nodes = budget_nodes;
      sub.seed = opts.seed;
      sub.threads = 1;
      sub.cancel = token;
      // Proving hw <= k for k >= the incumbent cannot improve the race.
      sub.max_width = prologue_ub;
      sub.exchange = exchange;
      std::optional<HypertreeDecomposition> hd;
      WidthResult r = HypertreeWidth(h, sub, &hd);
      out->stats.nodes = r.nodes;
      out->cache_stats = r.cache_stats;
      if (r.exact) out->stats.width = r.upper_bound;
      if (hd.has_value()) {
        out->ordering = OrderingFromHd(*hd, h.NumVertices());
        out->has_ordering = true;
      }
      // A width-k hypertree decomposition is a width-k ghd, so success at
      // k == the static ghw lower bound proves ghw = k. det-k refutations
      // prove hw > k only — NOT ghw > k — so they contribute no ghw lower
      // bound here.
      out->proved = r.exact && r.upper_bound == static_lb;
      out->proved_width = static_lb;
      out->stats.lower_bound = static_lb;
      break;
    }
    case EngineKind::kBbGhw:
    case EngineKind::kAStarGhw: {
      GhwSearchOptions g;
      g.time_limit_seconds = opts.time_limit_seconds;
      g.max_nodes = budget_nodes;
      g.seed = opts.seed;
      g.threads = 1;
      g.cancel = token;
      g.initial_upper_bound = prologue_ub;
      g.exchange = exchange;
      WidthResult r = spec.kind == EngineKind::kBbGhw ? BranchAndBoundGhw(h, g)
                                                      : AStarGhw(h, g);
      out->stats.width = r.upper_bound;
      out->stats.nodes = r.nodes;
      out->cache_stats = r.cache_stats;
      out->ordering = r.best_ordering;
      out->has_ordering = true;
      out->proved = r.exact;
      out->proved_width = r.upper_bound;
      out->stats.lower_bound = r.lower_bound;
      break;
    }
    case EngineKind::kGaGhw: {
      GaConfig cfg;
      cfg.seed = opts.seed;
      cfg.time_limit_seconds = opts.time_limit_seconds;
      cfg.population_size = 64;
      cfg.max_iterations =
          budget_nodes > 0
              ? static_cast<int>(std::min<long>(64, budget_nodes / 64 + 1))
              : 64;
      GaResult r = GaGhw(h, cfg, CoverMode::kGreedy,
                         /*seed_with_heuristics=*/true);
      out->stats.nodes = r.evaluations;
      out->ordering = r.best;
      out->has_ordering = true;
      out->stats.lower_bound = static_lb;
      break;
    }
    case EngineKind::kSaiga: {
      SaigaConfig cfg;
      cfg.seed = opts.seed;
      cfg.time_limit_seconds = opts.time_limit_seconds;
      cfg.epochs = 4;
      cfg.generations_per_epoch = 10;
      SaigaResult r = SaigaGhw(h, cfg);
      out->stats.nodes = r.ga.evaluations;
      out->ordering = r.ga.best;
      out->has_ordering = true;
      out->stats.lower_bound = static_lb;
      break;
    }
    case EngineKind::kLocalSearch: {
      LocalSearchConfig cfg;
      cfg.seed = opts.seed;
      cfg.time_limit_seconds = opts.time_limit_seconds;
      if (budget_nodes > 0)
        cfg.max_evaluations = std::min<long>(cfg.max_evaluations, budget_nodes);
      LocalSearchResult r = LsGhw(h, cfg);
      out->stats.nodes = r.evaluations;
      out->ordering = r.best;
      out->has_ordering = true;
      out->stats.lower_bound = static_lb;
      break;
    }
  }
  // Heuristic engines prove optimality when their witness meets the
  // static lower bound under exact covers; evaluated in-task so a
  // heuristic prover cancels later engines promptly.
  if (!out->proved && out->has_ordering && spec.kind != EngineKind::kDetK &&
      spec.kind != EngineKind::kBbGhw && spec.kind != EngineKind::kAStarGhw) {
    GhwEvaluator eval(h);
    int w = eval.EvaluateOrdering(out->ordering, CoverMode::kExact);
    out->stats.width = w;
    if (w == static_lb) {
      out->proved = true;
      out->proved_width = w;
    }
  }
  out->stats.seconds = timer.ElapsedSeconds();
}

}  // namespace

PortfolioResult PortfolioGhw(const Hypergraph& h,
                             const PortfolioOptions& options) {
  PortfolioResult pr;
  Timer wall;
  RacesMetric().Increment();
  int n = h.NumVertices();

  // ---- Prologue (deterministic, single-threaded). ----
  Timer prologue_timer;
  IncidenceIndex index(h);
  pr.features = ExtractFeatures(index);
  pr.plan = RouteInstance(pr.features, options.max_nodes);
  if (h.NumEdges() == 0) {
    // Edgeless instances decompose trivially; match HypertreeWidth.
    pr.result.exact = true;
    pr.result.best_ordering.resize(n);
    for (int v = 0; v < n; ++v) pr.result.best_ordering[v] = v;
    pr.winner_name = "prologue";
    pr.prologue_seconds = prologue_timer.ElapsedSeconds();
    pr.result.seconds = wall.ElapsedSeconds();
    return pr;
  }
  Rng rng(options.seed);
  int static_lb = GhwLowerBound(h, &rng);
  GhwEvaluator eval(h, &index);
  EliminationOrdering w0 = MinFillOrdering(eval.primal(), &rng);
  int u0 = eval.EvaluateOrdering(w0, CoverMode::kExact);
  {
    EliminationOrdering md = MinDegreeOrdering(eval.primal(), &rng);
    int w = eval.EvaluateOrdering(md, CoverMode::kExact);
    if (w < u0) {
      u0 = w;
      w0 = std::move(md);
    }
  }
  pr.prologue_seconds = prologue_timer.ElapsedSeconds();

  pr.engines.resize(pr.plan.lineup.size());
  for (size_t i = 0; i < pr.plan.lineup.size(); ++i) {
    pr.engines[i].kind = pr.plan.lineup[i].kind;
    pr.engines[i].name = EngineName(pr.plan.lineup[i].kind);
  }

  if (static_lb >= u0) {
    // The prologue already closed the gap; no race needed.
    pr.result.lower_bound = pr.result.upper_bound = u0;
    pr.result.exact = true;
    pr.result.best_ordering = std::move(w0);
    pr.winner_name = "prologue";
    pr.result.seconds = wall.ElapsedSeconds();
    if (options.trace) {
      std::fprintf(stderr, "portfolio: rule=%s proved in prologue width=%d\n",
                   pr.plan.rule.c_str(), u0);
    }
    return pr;
  }

  // ---- Race. ----
  int threads = options.threads > 0 ? options.threads
                                    : ThreadPool::HardwareThreads();
  SharedBounds shared(static_cast<int>(pr.plan.lineup.size()), static_lb, u0);
  BoundExchange* exchange = options.live_sharing ? &shared : nullptr;
  std::vector<EngineOutcome> outcomes(pr.plan.lineup.size());
  EnginesRacedMetric().Add(static_cast<long>(pr.plan.lineup.size()));
  if (options.trace) {
    std::fprintf(stderr, "portfolio: rule=%s engines=%zu lb=%d u0=%d\n",
                 pr.plan.rule.c_str(), pr.plan.lineup.size(), static_lb, u0);
  }
  {
    ThreadPool pool(std::min<int>(
        threads, static_cast<int>(pr.plan.lineup.size())));
    for (size_t i = 0; i < pr.plan.lineup.size(); ++i) {
      pool.Submit([&outcomes, &pr, &shared, &options, &h, &exchange,
                   static_lb, u0, i] {
        EngineOutcome& out = outcomes[i];
        out.stats = pr.engines[i];
        // Supersede cancellation from lower-indexed provers, merged with
        // the caller's external token (request deadline / shutdown). The
        // exact engines poll the combined token in their inner loops; the
        // heuristic engines bound their run by time_limit_seconds.
        CancellationToken token = CancellationToken::AnyOf(
            shared.TokenFor(static_cast<int>(i)), options.cancel);
        if (token.Cancelled()) {
          out.stats.cancelled = true;
          return;
        }
        out.stats.ran = true;
        RunEngine(h, pr.plan.lineup[i], options, static_lb, u0, token,
                  exchange, &out);
        if (out.proved) {
          out.stats.proved = true;
          shared.Prove(static_cast<int>(i), out.proved_width);
        } else if (token.Cancelled()) {
          out.stats.cancelled = true;
        }
      });
    }
    pool.Wait();
  }

  double settled = shared.ElapsedSeconds();
  double first_prove = shared.FirstProveSeconds();
  if (first_prove >= 0) pr.cancel_latency_seconds = settled - first_prove;
  UbUpdatesMetric().Add(shared.ub_updates());
  LbUpdatesMetric().Add(shared.lb_updates());

  // ---- Verdict (main thread, lineup-index order: deterministic). ----
  long cancelled = 0;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    pr.engines[i] = outcomes[i].stats;
    if (outcomes[i].stats.cancelled) ++cancelled;
  }
  EnginesCancelledMetric().Add(cancelled);

  int winner = -1;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].proved) {
      winner = static_cast<int>(i);
      break;
    }
  }

  if (winner >= 0) {
    ProofsMetric().Increment();
    const EngineOutcome& win = outcomes[winner];
    int w_star = win.proved_width;
    pr.winner = winner;
    pr.winner_name = pr.engines[winner].name;
    pr.result.lower_bound = pr.result.upper_bound = w_star;
    pr.result.exact = true;
    pr.result.nodes = win.stats.nodes;
    pr.result.cache_stats = win.cache_stats;
    // The winner's ordering witnesses w* unless its search only matched
    // the primed incumbent without improving it (the initial_upper_bound
    // hint convention) — in that case w* == u0 and the prologue ordering
    // is the witness.
    int witness_width =
        win.has_ordering
            ? eval.EvaluateOrdering(win.ordering, CoverMode::kExact)
            : u0 + 1;
    if (witness_width == w_star) {
      pr.result.best_ordering = win.ordering;
      pr.engines[winner].width = w_star;
    } else {
      HT_DCHECK(u0 == w_star);
      pr.result.best_ordering = std::move(w0);
    }
  } else {
    // No proof: best witnessed width wins, prologue incumbent included,
    // lowest lineup index breaking ties (no engine was cancelled — only
    // provers cancel — so this scan is schedule-invariant too).
    pr.result.upper_bound = u0;
    pr.result.best_ordering = w0;
    int lb = static_lb;
    for (size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].has_ordering) continue;
      int w = eval.EvaluateOrdering(outcomes[i].ordering, CoverMode::kExact);
      pr.engines[i].width = w;
      if (w < pr.result.upper_bound) {
        pr.result.upper_bound = w;
        pr.result.best_ordering = outcomes[i].ordering;
        pr.winner = static_cast<int>(i);  // best incumbent, not a prover
      }
      lb = std::max(lb, outcomes[i].stats.lower_bound);
      pr.result.nodes += outcomes[i].stats.nodes;
    }
    pr.result.lower_bound = std::min(lb, pr.result.upper_bound);
    pr.result.exact = pr.result.lower_bound == pr.result.upper_bound;
    if (pr.winner >= 0) pr.winner_name = pr.engines[pr.winner].name;
  }
  if (options.trace) {
    for (size_t i = 0; i < pr.engines.size(); ++i) {
      std::fprintf(
          stderr,
          "portfolio: engine %zu %-9s %s nodes=%ld wall=%.1fms width=%d\n", i,
          pr.engines[i].name.c_str(),
          pr.engines[i].proved
              ? "proved"
              : (pr.engines[i].cancelled
                     ? "cancelled"
                     : (pr.engines[i].ran ? "done" : "skipped")),
          pr.engines[i].nodes, pr.engines[i].seconds * 1000.0,
          pr.engines[i].width);
    }
    std::fprintf(stderr,
                 "portfolio: winner=%d (%s) width=%d exact=%d "
                 "cancel_latency=%.1fms\n",
                 pr.winner, pr.winner_name.c_str(), pr.result.upper_bound,
                 pr.result.exact ? 1 : 0,
                 pr.cancel_latency_seconds * 1000.0);
  }
  pr.result.seconds = wall.ElapsedSeconds();
  return pr;
}

}  // namespace hypertree
