#include "portfolio/features.h"

#include <algorithm>

#include "hypergraph/acyclicity.h"
#include "util/bitset.h"

namespace hypertree {

InstanceFeatures ExtractFeatures(const IncidenceIndex& index) {
  const Hypergraph& h = index.hypergraph();
  InstanceFeatures f;
  f.num_vertices = index.NumVertices();
  f.num_edges = index.NumEdges();

  long arity_sum = 0;
  for (int e = 0; e < f.num_edges; ++e) {
    int arity = h.EdgeBits(e).Count();
    arity_sum += arity;
    f.max_arity = std::max(f.max_arity, arity);
    int bucket = std::min(arity, 8) - 1;
    if (bucket >= 0) ++f.arity_histogram[bucket];
    // Pairwise intersections only against higher-indexed overlapping
    // edges (EdgeNeighbors is reflexive and symmetric).
    const Bitset& nb = index.EdgeNeighbors(e);
    for (int g = nb.Next(e); g >= 0; g = nb.Next(g)) {
      f.max_intersection = std::max(
          f.max_intersection, h.EdgeBits(e).IntersectCount(h.EdgeBits(g)));
    }
  }
  f.mean_arity =
      f.num_edges == 0 ? 0.0 : static_cast<double>(arity_sum) / f.num_edges;

  // Primal degree of v = |union of its edges| - 1, accumulated into the
  // primal edge count (each primal edge counted from both endpoints).
  long primal_degree_sum = 0;
  Bitset nb_union(f.num_vertices);
  for (int v = 0; v < f.num_vertices; ++v) {
    f.max_degree = std::max(f.max_degree, index.VertexEdges(v).Count());
    nb_union.Clear();
    const Bitset& edges = index.VertexEdges(v);
    for (int e = edges.First(); e >= 0; e = edges.Next(e)) {
      nb_union |= h.EdgeBits(e);
    }
    int deg = nb_union.Count();
    if (deg > 0) --deg;  // drop v itself
    primal_degree_sum += deg;
  }
  long n = f.num_vertices;
  f.primal_density =
      n < 2 ? 0.0
            : static_cast<double>(primal_degree_sum) / (n * (n - 1));

  f.alpha_acyclic = IsAlphaAcyclic(index);
  return f;
}

}  // namespace hypertree
