// Rule-based instance router: maps InstanceFeatures to a racing lineup
// (which engines, in which supersede-priority order, with which budgets).
//
// The lineup order doubles as the determinism priority: the winner is the
// lowest-indexed prover, so the router puts the engine it expects to
// prove fastest first — then "lowest index wins" and "first to prove"
// almost always coincide and cancellation fires early.

#ifndef HYPERTREE_PORTFOLIO_ROUTER_H_
#define HYPERTREE_PORTFOLIO_ROUTER_H_

#include <string>
#include <vector>

#include "portfolio/features.h"

namespace hypertree {

/// The engines the portfolio can race.
enum class EngineKind {
  kDetK,         // hd/det_k_decomp iterative deepening (hw witness)
  kBbGhw,        // ghd/branch_and_bound, exact covers
  kAStarGhw,     // ghd/astar, exact covers
  kGaGhw,        // ga/ga_ghw, heuristic-seeded
  kSaiga,        // ga/saiga island GA
  kLocalSearch,  // ls/local_search iterated
};

/// Stable display / counter name ("det_k", "bb_ghw", ...).
const char* EngineName(EngineKind kind);

/// One lineup slot: an engine plus its deterministic budget knobs.
struct EngineSpec {
  EngineKind kind;
  /// Node / evaluation budget for this engine; <= 0 means unlimited.
  long max_nodes = 0;
};

/// The router's verdict for one instance.
struct RoutingPlan {
  std::vector<EngineSpec> lineup;  // supersede-priority order
  std::string rule;                // which routing rule fired (for traces)
};

/// Picks the racing lineup for an instance with features `f`.
/// `node_budget` is the portfolio's total node allowance (<= 0:
/// unlimited); the router splits it across the lineup — the lead prover
/// gets half, each follower an eighth — so that on instances where no
/// engine can prove optimality (every engine runs its budget out, nothing
/// gets cancelled) the race still costs no more than one full
/// single-engine run.
RoutingPlan RouteInstance(const InstanceFeatures& f, long node_budget = 0);

}  // namespace hypertree

#endif  // HYPERTREE_PORTFOLIO_ROUTER_H_
