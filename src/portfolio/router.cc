#include "portfolio/router.h"

#include <algorithm>

namespace hypertree {

namespace {

// Budgets are node/iteration counts, so the split is deterministic. The
// floor keeps tiny global budgets from starving followers into uselessness.
constexpr long kMinEngineBudget = 1024;

// Lead prover: half the global budget. Followers: a sixteenth each. With
// a four-engine lineup the worst case (no engine proves, nothing gets
// cancelled) costs ~11/16 of one full single-engine run, so the portfolio
// stays cheaper than the engines it races even on open instances.
void AssignBudgets(RoutingPlan* plan, long node_budget) {
  if (node_budget <= 0) return;
  for (size_t i = 0; i < plan->lineup.size(); ++i) {
    long share = i == 0 ? node_budget / 2 : node_budget / 16;
    plan->lineup[i].max_nodes = std::max(kMinEngineBudget, share);
  }
}

}  // namespace

const char* EngineName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kDetK:
      return "det_k";
    case EngineKind::kBbGhw:
      return "bb_ghw";
    case EngineKind::kAStarGhw:
      return "astar_ghw";
    case EngineKind::kGaGhw:
      return "ga_ghw";
    case EngineKind::kSaiga:
      return "saiga";
    case EngineKind::kLocalSearch:
      return "ls";
  }
  return "unknown";
}

RoutingPlan RouteInstance(const InstanceFeatures& f, long node_budget) {
  RoutingPlan plan;

  // alpha-acyclic: ghw = 1, and det-k at k = 1 is a linear-time GYO-style
  // check that also produces the witness. Nothing else needs to run.
  if (f.alpha_acyclic) {
    plan.rule = "acyclic";
    plan.lineup = {{EngineKind::kDetK}};
    AssignBudgets(&plan, node_budget);
    return plan;
  }

  // Bounded-intersection fast path (Fischl et al.: bounded intersection
  // makes the cover-guess space polynomial, which is exactly the regime
  // where det-k's separator enumeration is cheap). BB still leads: det-k
  // can only *prove* ghw when the width-k hypertree it finds meets the
  // static ghw lower bound, so it rides along as a capped follower that
  // closes hw = ghw = lb instances the lead happens to be slow on.
  if (f.max_intersection <= 2 && f.max_arity <= 4) {
    plan.rule = "bounded-intersection";
    plan.lineup = {{EngineKind::kBbGhw},
                   {EngineKind::kDetK},
                   {EngineKind::kGaGhw}};
    AssignBudgets(&plan, node_budget);
    return plan;
  }

  // Dense primal graphs (cliques and near-cliques): elimination orderings
  // are nearly interchangeable, BB's whole-remainder bound closes the gap
  // fastest and A* duplicates states; keep the lineup small.
  if (f.primal_density > 0.5) {
    plan.rule = "dense";
    plan.lineup = {{EngineKind::kBbGhw},
                   {EngineKind::kDetK},
                   {EngineKind::kGaGhw}};
    AssignBudgets(&plan, node_budget);
    return plan;
  }

  // Large instances: exact searches rarely finish, so lead with the
  // anytime BB for its warm-started bounds and spend the rest of the
  // budget on metaheuristic upper bounds.
  if (f.num_vertices > 64) {
    plan.rule = "large";
    plan.lineup = {{EngineKind::kBbGhw},
                   {EngineKind::kGaGhw},
                   {EngineKind::kSaiga},
                   {EngineKind::kLocalSearch}};
    AssignBudgets(&plan, node_budget);
    return plan;
  }

  // Balanced default: the two complementary exact provers, det-k (which
  // wins when hw = ghw and separators are small), and a GA for
  // incumbents.
  plan.rule = "balanced";
  plan.lineup = {{EngineKind::kBbGhw},
                 {EngineKind::kAStarGhw},
                 {EngineKind::kDetK},
                 {EngineKind::kGaGhw}};
  AssignBudgets(&plan, node_budget);
  return plan;
}

}  // namespace hypertree
