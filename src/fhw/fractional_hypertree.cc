#include "fhw/fractional_hypertree.h"

#include <algorithm>
#include <vector>

#include "ordering/evaluator.h"
#include "ordering/heuristics.h"
#include "setcover/fractional.h"
#include "util/rng.h"

namespace hypertree {

double FractionalWidthOfOrdering(const Hypergraph& h,
                                 const EliminationOrdering& sigma) {
  Graph primal = h.PrimalGraph();
  std::vector<Bitset> edge_sets;
  edge_sets.reserve(h.NumEdges());
  for (int e = 0; e < h.NumEdges(); ++e) edge_sets.push_back(h.EdgeBits(e));
  double width = 0.0;
  for (const std::vector<int>& bag : OrderingBags(primal, sigma)) {
    Bitset bits(h.NumVertices());
    for (int v : bag) bits.Set(v);
    width = std::max(width, FractionalSetCover(edge_sets, bits, nullptr));
  }
  return width;
}

double FhwUpperBound(const Hypergraph& h, int restarts, uint64_t seed) {
  Rng rng(seed);
  Graph primal = h.PrimalGraph();
  double best = FractionalWidthOfOrdering(h, MinFillOrdering(primal, &rng));
  best = std::min(best,
                  FractionalWidthOfOrdering(h, MinDegreeOrdering(primal, &rng)));
  for (int i = 0; i < restarts; ++i) {
    best = std::min(best, FractionalWidthOfOrdering(
                              h, RandomOrdering(h.NumVertices(), &rng)));
  }
  return best;
}

double FractionalEdgeCoverNumber(const Hypergraph& h) {
  std::vector<Bitset> edge_sets;
  edge_sets.reserve(h.NumEdges());
  for (int e = 0; e < h.NumEdges(); ++e) edge_sets.push_back(h.EdgeBits(e));
  Bitset all(h.NumVertices());
  all.SetAll();
  return FractionalSetCover(edge_sets, all, nullptr);
}

}  // namespace hypertree
