// Fractional hypertree width (Grohe & Marx): replace the integral bag
// cover in ghw by its LP relaxation. fhw(H) <= ghw(H) <= hw(H), and
// queries are answerable in |I|^{fhw + O(1)} time.
//
// Exact fhw is NP-hard like ghw; this module computes upper bounds
// through elimination orderings (the same search space, with fractional
// covers per bag) and the global fractional edge-cover number rho*(H)
// that governs the AGM output-size bound.

#ifndef HYPERTREE_FHW_FRACTIONAL_HYPERTREE_H_
#define HYPERTREE_FHW_FRACTIONAL_HYPERTREE_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "ordering/ordering.h"

namespace hypertree {

/// Fractional width of the decomposition bucket elimination builds from
/// `sigma`: the max over bags of the optimal fractional bag cover.
double FractionalWidthOfOrdering(const Hypergraph& h,
                                 const EliminationOrdering& sigma);

/// Upper bound on fhw(h): best fractional width over min-fill, min-degree
/// and `restarts` random orderings (seeded).
double FhwUpperBound(const Hypergraph& h, int restarts, uint64_t seed);

/// The fractional edge-cover number rho*(H) of the whole vertex set (the
/// AGM bound exponent). fhw(H) <= rho*(H) always (single-bag
/// decomposition).
double FractionalEdgeCoverNumber(const Hypergraph& h);

}  // namespace hypertree

#endif  // HYPERTREE_FHW_FRACTIONAL_HYPERTREE_H_
