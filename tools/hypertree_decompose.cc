// hypertree_decompose: compute decompositions and widths of an instance.
//
//   hypertree_decompose [flags] <instance>
//
//   <instance>          HyperBench hypergraph (.hg), DIMACS coloring
//                       graph (.col) or PACE graph (.gr); graphs are
//                       treated as hypergraphs with binary edges.
//   --method=...        bb | astar | ga | saiga | ls | minfill | portfolio
//                       (default bb; --algorithm is an alias)
//   --measure=...       ghw | tw | hw | fhw                     (default ghw)
//   --time-limit=SEC    budget for the exact searches             (default 10)
//   --threads=N         worker threads for the parallel search phases
//                       (default: hardware concurrency)
//   --seed=N            RNG seed                                  (default 1)
//   --output=FILE       write the witness decomposition: .td (PACE, tw
//                       only) or .dot
//   --kernel-backend=.. auto | scalar | avx2 | batched: bitwise kernel
//                       backend for the search inner loops (default
//                       auto; see docs/KERNELS.md). The kernels.*
//                       metrics in --json report the traffic.
//   --quiet             print only the width
//   --json              print one machine-readable JSON record (the
//                       BENCH.json schema, see docs/BENCHMARKS.md) plus
//                       the metrics-registry snapshot instead of text
//   --portfolio-trace   (portfolio only) per-engine race trace on stderr
//   --portfolio-live    (portfolio only) live bound sharing: faster wall
//                       time, timing-dependent node counts

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "fhw/fractional_hypertree.h"
#include "ga/ga_ghw.h"
#include "ga/ga_tw.h"
#include "ga/saiga.h"
#include "ghd/astar.h"
#include "ghd/branch_and_bound.h"
#include "ghd/ghw_from_ordering.h"
#include "graph/dimacs.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/parser.h"
#include "io/dot.h"
#include "io/ghd_format.h"
#include "kernels/kernels.h"
#include "ls/local_search.h"
#include "ordering/evaluator.h"
#include "portfolio/portfolio.h"
#include "ordering/heuristics.h"
#include "td/astar.h"
#include "td/branch_and_bound.h"
#include "td/pace.h"
#include "search/decomp_cache.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace hypertree;

namespace {

/// One BENCH.json-schema record (docs/BENCHMARKS.md) with the full
/// metrics-registry snapshot attached, printed to stdout.
void PrintJsonRecord(const std::string& instance, const std::string& algorithm,
                     int width, bool exact, int lower_bound, long nodes,
                     double wall_ms, const DecompCacheStats& cache_stats,
                     Json extra_counters = Json::Object()) {
  Json counters = Json::Object();
  counters.Set("cache_hits", cache_stats.hits)
      .Set("cache_misses", cache_stats.misses)
      .Set("cache_inserts", cache_stats.inserts);
  for (const auto& [key, value] : extra_counters.fields()) {
    counters.Set(key, value);
  }
  Json metrics_obj = Json::Object();
  for (const auto& [name, value] : metrics::Registry::Global().Snapshot()) {
    metrics_obj.Set(name, value);
  }
  Json rec = Json::Object();
  rec.Set("bench", "hypertree_decompose")
      .Set("instance", instance)
      .Set("algorithm", algorithm)
      .Set("width", width)
      .Set("exact", exact)
      .Set("lower_bound", lower_bound)
      .Set("nodes", nodes)
      .Set("wall_ms", wall_ms)
      .Set("deterministic", exact)
      .Set("counters", std::move(counters))
      .Set("metrics", std::move(metrics_obj));
  std::printf("%s\n", rec.Dump().c_str());
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::optional<Hypergraph> LoadInstance(const std::string& path,
                                       std::string* error) {
  if (EndsWith(path, ".col")) {
    auto g = ReadDimacsGraphFile(path, error);
    if (!g.has_value()) return std::nullopt;
    return HypergraphFromGraph(*g);
  }
  if (EndsWith(path, ".gr")) {
    std::ifstream in(path);
    if (!in) {
      *error = "cannot open " + path;
      return std::nullopt;
    }
    auto g = ReadPaceGraph(in, error);
    if (!g.has_value()) return std::nullopt;
    return HypergraphFromGraph(*g);
  }
  return ReadHypergraphFile(path, error);
}

int Usage() {
  std::fprintf(stderr,
               "usage: hypertree_decompose [--method=bb|astar|ga|saiga|ls|"
               "minfill|portfolio] [--measure=ghw|tw|hw|fhw]\n"
               "       [--time-limit=SEC] [--threads=N] [--seed=N] "
               "[--output=FILE] [--quiet] [--json]\n"
               "       [--kernel-backend=auto|scalar|avx2|batched]\n"
               "       [--portfolio-trace] [--portfolio-live] <instance>\n"
               "       (--algorithm is an alias for --method)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().size() != 1) return Usage();
  std::string error;
  auto h = LoadInstance(flags.positional()[0], &error);
  if (!h.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::string kernel_backend = flags.GetString("kernel-backend");
  if (!kernel_backend.empty()) {
    kernels::Backend kb;
    if (!kernels::ParseBackend(kernel_backend, &kb)) {
      std::fprintf(stderr,
                   "error: unknown --kernel-backend \"%s\" (expected auto, "
                   "scalar, avx2 or batched)\n",
                   kernel_backend.c_str());
      return 2;
    }
    kernels::SetBackend(kb);
  }
  std::string method = flags.GetString("algorithm");
  if (method.empty()) method = flags.GetString("method", "bb");
  std::string measure = flags.GetString("measure", "ghw");
  double budget = flags.GetDouble("time-limit", 10.0);
  int threads = static_cast<int>(
      flags.GetInt("threads", ThreadPool::HardwareThreads()));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  bool quiet = flags.GetBool("quiet");
  bool json = flags.GetBool("json");
  Timer wall;

  GhwEvaluator eval(*h);
  EliminationOrdering witness;
  int width = -1;
  bool exact = false;
  long nodes = 0;
  DecompCacheStats cache_stats;

  if (measure == "fhw") {
    double fhw = FhwUpperBound(*h, 5, seed);
    if (json) {
      // fhw is fractional: report the integer ceiling as the width and
      // the exact value as a counter-style field.
      PrintJsonRecord(h->name(), "fhw_upper",
                      static_cast<int>(std::ceil(fhw)), /*exact=*/false,
                      /*lower_bound=*/-1, /*nodes=*/0, wall.ElapsedMillis(),
                      DecompCacheStats{});
      return 0;
    }
    if (quiet) {
      std::printf("%.4f\n", fhw);
    } else {
      std::printf("instance  : %s\nfhw upper : %.4f\n", h->name().c_str(),
                  fhw);
    }
    return 0;
  }
  if (measure == "hw") {
    SearchOptions opts;
    opts.time_limit_seconds = budget;
    opts.seed = seed;
    opts.threads = threads;
    std::optional<HypertreeDecomposition> hd;
    WidthResult res = HypertreeWidth(*h, opts, &hd);
    if (json) {
      PrintJsonRecord(h->name(), "det_k_hw", res.upper_bound, res.exact,
                      res.lower_bound, res.nodes, res.seconds * 1000.0,
                      res.cache_stats);
    } else if (quiet) {
      std::printf("%d\n", res.upper_bound);
    } else {
      std::printf("instance : %s\nhw       : %d%s (lb %d)\n",
                  h->name().c_str(), res.upper_bound, res.exact ? "" : "*",
                  res.lower_bound);
      std::printf("cache    : %ld hits, %ld misses, %ld inserts\n",
                  res.cache_stats.hits, res.cache_stats.misses,
                  res.cache_stats.inserts);
    }
    std::string out_path = flags.GetString("output");
    if (!out_path.empty() && hd.has_value()) {
      std::ofstream out(out_path);
      WriteDot(*hd, *h, out);
    }
    return 0;
  }

  bool want_tw = measure == "tw";
  std::optional<PortfolioResult> portfolio;
  if (method == "portfolio") {
    if (want_tw) {
      std::fprintf(stderr, "error: --method=portfolio supports ghw only\n");
      return 2;
    }
    PortfolioOptions popts;
    popts.time_limit_seconds = budget;
    popts.threads = threads;
    popts.seed = seed;
    popts.trace = flags.GetBool("portfolio-trace");
    popts.live_sharing = flags.GetBool("portfolio-live");
    portfolio = PortfolioGhw(*h, popts);
    width = portfolio->result.upper_bound;
    exact = portfolio->result.exact;
    witness = portfolio->result.best_ordering;
    nodes = portfolio->result.nodes;
    cache_stats = portfolio->result.cache_stats;
  } else if (method == "bb") {
    if (want_tw) {
      SearchOptions opts;
      opts.time_limit_seconds = budget;
      opts.seed = seed;
      opts.threads = threads;
      WidthResult res = BranchAndBoundTreewidth(eval.primal(), opts);
      width = res.upper_bound;
      exact = res.exact;
      witness = res.best_ordering;
      nodes = res.nodes;
      cache_stats = res.cache_stats;
    } else {
      GhwSearchOptions opts;
      opts.time_limit_seconds = budget;
      opts.seed = seed;
      opts.threads = threads;
      WidthResult res = BranchAndBoundGhw(*h, opts);
      width = res.upper_bound;
      exact = res.exact;
      witness = res.best_ordering;
      nodes = res.nodes;
      cache_stats = res.cache_stats;
    }
  } else if (method == "astar") {
    if (want_tw) {
      SearchOptions opts;
      opts.time_limit_seconds = budget;
      opts.seed = seed;
      opts.threads = threads;
      WidthResult res = AStarTreewidth(eval.primal(), opts);
      width = res.upper_bound;
      exact = res.exact;
      witness = res.best_ordering;
      nodes = res.nodes;
      cache_stats = res.cache_stats;
    } else {
      GhwSearchOptions opts;
      opts.time_limit_seconds = budget;
      opts.seed = seed;
      opts.threads = threads;
      WidthResult res = AStarGhw(*h, opts);
      width = res.upper_bound;
      exact = res.exact;
      witness = res.best_ordering;
      nodes = res.nodes;
      cache_stats = res.cache_stats;
    }
  } else if (method == "ga" || method == "saiga") {
    if (method == "saiga" && !want_tw) {
      SaigaConfig cfg;
      cfg.seed = seed;
      cfg.time_limit_seconds = budget;
      SaigaResult res = SaigaGhw(*h, cfg);
      width = res.ga.best_fitness;
      witness = res.ga.best;
    } else {
      GaConfig cfg;
      cfg.seed = seed;
      cfg.time_limit_seconds = budget;
      GaResult res = want_tw ? GaTreewidth(eval.primal(), cfg) : GaGhw(*h, cfg);
      width = res.best_fitness;
      witness = res.best;
    }
  } else if (method == "ls") {
    LocalSearchConfig cfg;
    cfg.seed = seed;
    cfg.time_limit_seconds = budget;
    LocalSearchResult res =
        want_tw ? LsTreewidth(eval.primal(), cfg) : LsGhw(*h, cfg);
    width = res.best_fitness;
    witness = res.best;
  } else if (method == "minfill") {
    Rng rng(seed);
    witness = MinFillOrdering(eval.primal(), &rng);
    width = want_tw ? EvaluateOrderingWidth(eval.primal(), witness)
                    : eval.EvaluateOrdering(witness, CoverMode::kGreedy, &rng);
  } else {
    return Usage();
  }

  // Re-derive the exact-cover width of the witness ordering for ghw so
  // the reported width always matches the written decomposition.
  if (!want_tw) {
    width = eval.EvaluateOrdering(witness, CoverMode::kExact);
  }
  if (json) {
    std::string algorithm = method + (want_tw ? "_tw" : "_ghw");
    Json extra = Json::Object();
    int lower_bound = -1;
    if (portfolio.has_value()) {
      lower_bound = portfolio->result.lower_bound;
      extra.Set("portfolio_rule", portfolio->plan.rule)
          .Set("portfolio_winner", portfolio->winner)
          .Set("portfolio_winner_name", portfolio->winner_name)
          .Set("portfolio_prologue_ms", portfolio->prologue_seconds * 1000.0)
          .Set("portfolio_cancel_latency_ms",
               portfolio->cancel_latency_seconds * 1000.0);
      for (const auto& e : portfolio->engines) {
        extra.Set("portfolio_" + e.name + "_nodes", e.nodes)
            .Set("portfolio_" + e.name + "_wall_ms", e.seconds * 1000.0)
            .Set("portfolio_" + e.name + "_proved", e.proved)
            .Set("portfolio_" + e.name + "_cancelled", e.cancelled);
      }
    }
    PrintJsonRecord(h->name(), algorithm, width, exact, lower_bound, nodes,
                    wall.ElapsedMillis(), cache_stats, std::move(extra));
  } else if (quiet) {
    std::printf("%d\n", width);
  } else {
    std::printf("instance : %s (%d vertices, %d hyperedges)\n",
                h->name().c_str(), h->NumVertices(), h->NumEdges());
    std::printf("%-9s: %d%s  (method %s)\n", want_tw ? "treewidth" : "ghw",
                width, exact ? "" : "*", method.c_str());
    if (method == "bb" || method == "astar") {
      std::printf("cache    : %ld hits, %ld misses, %ld inserts\n",
                  cache_stats.hits, cache_stats.misses, cache_stats.inserts);
    }
    if (portfolio.has_value()) {
      std::printf("portfolio: rule %s, winner %s, %zu engines, prologue "
                  "%.1fms\n",
                  portfolio->plan.rule.c_str(),
                  portfolio->winner_name.empty() ? "none"
                                                 : portfolio->winner_name.c_str(),
                  portfolio->engines.size(),
                  portfolio->prologue_seconds * 1000.0);
      for (const auto& e : portfolio->engines) {
        std::printf("  %-9s %s  nodes %ld  wall %.1fms\n", e.name.c_str(),
                    e.proved ? "proved" : (e.cancelled ? "cancelled"
                                                       : (e.ran ? "done"
                                                                : "skipped")),
                    e.nodes, e.seconds * 1000.0);
      }
    }
  }

  std::string out_path = flags.GetString("output");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
      return 1;
    }
    TreeDecomposition td = TreeDecompositionFromOrdering(eval.primal(), witness);
    if (EndsWith(out_path, ".td")) {
      WritePaceTreeDecomposition(td, out);
    } else if (EndsWith(out_path, ".ghd")) {
      GeneralizedHypertreeDecomposition ghd =
          eval.BuildGhd(witness, CoverMode::kExact);
      WriteGhd(ghd, *h, out);
    } else if (want_tw) {
      WriteDot(td, out);
    } else {
      GeneralizedHypertreeDecomposition ghd =
          eval.BuildGhd(witness, CoverMode::kExact);
      WriteDot(ghd, *h, out);
    }
    if (!quiet) std::printf("decomposition written to %s\n", out_path.c_str());
  }
  return 0;
}
