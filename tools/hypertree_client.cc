// hypertree_client: one-shot client for the hypertree_serve daemon.
//
//   hypertree_client --port=N decompose <instance.hg> [flags]
//   hypertree_client --port=N ping|stats|shutdown
//
//   --port=N             server port (default 7411)
//   --budget-seconds=S   per-request solve budget (server default if unset)
//   --expect-source=S    fail (exit 3) unless the response's `source`
//                        field equals S (memory|disk|solved)
//   --witness-out=FILE   write the response's witness text to FILE
//   --quiet              suppress the response dump on stdout
//
// Prints the raw JSON response to stdout. Exit codes: 0 ok, 1 transport
// or server error, 2 usage, 3 --expect-source mismatch, 4 the server
// answered status "timeout".

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <unistd.h>

#include "serve/protocol.h"
#include "util/flags.h"
#include "util/json.h"

using namespace hypertree;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: hypertree_client [--port=N] decompose <instance.hg>\n"
               "       hypertree_client [--port=N] ping|stats|shutdown\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.Has("help") || flags.positional().empty()) return Usage();
  const std::string& op = flags.positional()[0];

  Json request = Json::Object();
  request.Set("op", op);
  if (op == "decompose") {
    if (flags.positional().size() != 2) return Usage();
    std::ifstream in(flags.positional()[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "hypertree_client: cannot read %s\n",
                   flags.positional()[1].c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    request.Set("instance", text.str());
    if (flags.Has("budget-seconds")) {
      request.Set("budget_seconds", flags.GetDouble("budget-seconds"));
    }
  } else if (op != "ping" && op != "stats" && op != "shutdown") {
    return Usage();
  }

  const int port = static_cast<int>(flags.GetInt("port", 7411));
  std::string error;
  int fd = serve::ConnectLoopback(port, &error);
  if (fd < 0) {
    std::fprintf(stderr, "hypertree_client: %s\n", error.c_str());
    return 1;
  }
  std::string body;
  int status = 1;
  if (!serve::WriteFrame(fd, request.Dump(), &error) ||
      serve::ReadFrame(fd, &body, &error) != 1) {
    std::fprintf(stderr, "hypertree_client: %s\n", error.c_str());
    ::close(fd);
    return 1;
  }
  ::close(fd);

  std::optional<Json> response = Json::Parse(body, &error);
  if (!response.has_value() || !response->is_object()) {
    std::fprintf(stderr, "hypertree_client: malformed response: %s\n",
                 error.c_str());
    return 1;
  }
  if (!flags.GetBool("quiet")) std::printf("%s\n", response->Dump().c_str());

  const Json* resp_status = response->Find("status");
  const std::string status_text =
      resp_status != nullptr ? resp_status->AsString() : "";
  if (status_text == "ok") {
    status = 0;
  } else if (status_text == "timeout") {
    status = 4;
  } else {
    const Json* message = response->Find("error");
    std::fprintf(stderr, "hypertree_client: server error: %s\n",
                 message != nullptr ? message->AsString().c_str() : "?");
    return 1;
  }

  if (const std::string want = flags.GetString("expect-source");
      !want.empty()) {
    const Json* source = response->Find("source");
    const std::string got = source != nullptr ? source->AsString() : "";
    if (got != want) {
      std::fprintf(stderr,
                   "hypertree_client: expected source %s, server answered "
                   "from %s\n",
                   want.c_str(), got.empty() ? "(none)" : got.c_str());
      return 3;
    }
  }

  if (const std::string out_path = flags.GetString("witness-out");
      !out_path.empty()) {
    const Json* witness = response->Find("witness");
    if (witness == nullptr) {
      std::fprintf(stderr, "hypertree_client: response carries no witness\n");
      return 1;
    }
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    out << witness->AsString();
    if (!out.good()) {
      std::fprintf(stderr, "hypertree_client: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
  }
  return status;
}
