// hypertree_solve: solve (and count solutions of) a random CSP attached
// to a hypergraph instance, via decompositions and via backtracking.
//
//   hypertree_solve [flags] <instance.hg>
//
//   --domain=D        uniform domain size (default 2)
//   --tightness=T     fraction of allowed tuples (default 0.3)
//   --plant           plant a random solution (default off)
//   --seed=N          RNG seed (default 1)
//   --threads=N       worker threads for the hw search and the parallel
//                     td/ghd solving + counting routes (default: hardware
//                     concurrency; 1 runs sequentially — results and the
//                     relation counters are identical either way)
//   --hw              also compute hw via det-k-decomp (parallel) and
//                     report its decomposition cache statistics
//   --count           also count all solutions
//   --route=...       td | ghd | bt | all (default all)
//   --kernel-backend=  auto | scalar | avx2 | batched: bitwise kernel
//                     backend for the decomposition inner loops
//                     (default auto; see docs/KERNELS.md)
//   --memory-budget=B per-query memory budget for the join engine, with
//                     an optional k/m/g suffix ("256m", "4g"). Join
//                     intermediates above it spill to disk; answers are
//                     bit-identical either way (docs/SOLVING.md).
//                     Overrides HYPERTREE_MEMORY_BUDGET; 0 = unlimited.
//   --json            print machine-readable JSON records (the BENCH.json
//                     schema, see docs/BENCHMARKS.md) instead of text

#include <cstdio>
#include <string>

#include "csp/backtracking.h"
#include "csp/counting.h"
#include "csp/decomposition_solving.h"
#include "csp/generators.h"
#include "csp/morsel.h"
#include "ghd/ghw_from_ordering.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/parser.h"
#include "kernels/kernels.h"
#include "ordering/heuristics.h"
#include "td/tree_decomposition.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace hypertree;

namespace {

/// One BENCH.json-schema record (docs/BENCHMARKS.md) printed to stdout.
void PrintJsonRecord(const std::string& instance, const std::string& algorithm,
                     int width, bool exact, int lower_bound, long nodes,
                     double wall_ms, bool deterministic, Json counters) {
  Json rec = Json::Object();
  rec.Set("bench", "hypertree_solve")
      .Set("instance", instance)
      .Set("algorithm", algorithm)
      .Set("width", width)
      .Set("exact", exact)
      .Set("lower_bound", lower_bound)
      .Set("nodes", nodes)
      .Set("wall_ms", wall_ms)
      .Set("deterministic", deterministic)
      .Set("counters", std::move(counters));
  std::printf("%s\n", rec.Dump().c_str());
}

/// Snapshot of the relation kernel counters (docs/BENCHMARKS.md).
struct KernelCounters {
  long rows_joined;
  long rows_semijoin_dropped;
  long probe_collisions;
  long morsels_processed;
  long morsels_skipped;
  long spill_partitions;
  long spill_bytes;

  static KernelCounters Now() {
    return {metrics::GetCounter("relation.rows_joined").Value(),
            metrics::GetCounter("relation.rows_semijoin_dropped").Value(),
            metrics::GetCounter("relation.probe_collisions").Value(),
            MorselsProcessed().Value(),
            MorselsSkipped().Value(),
            SpillPartitions().Value(),
            SpillBytes().Value()};
  }

  /// Adds the delta since `before` to `counters`.
  static void AddDelta(const KernelCounters& before, Json* counters) {
    KernelCounters now = Now();
    counters->Set("rows_joined", now.rows_joined - before.rows_joined)
        .Set("rows_semijoin_dropped",
             now.rows_semijoin_dropped - before.rows_semijoin_dropped)
        .Set("probe_collisions",
             now.probe_collisions - before.probe_collisions)
        .Set("morsels_processed",
             now.morsels_processed - before.morsels_processed)
        .Set("morsels_skipped", now.morsels_skipped - before.morsels_skipped)
        .Set("spill_partitions",
             now.spill_partitions - before.spill_partitions)
        .Set("spill_bytes", now.spill_bytes - before.spill_bytes);
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: hypertree_solve [--domain=D] [--tightness=T] "
                 "[--plant] [--seed=N] [--threads=N] [--hw] [--count] "
                 "[--route=td|ghd|bt|all] "
                 "[--kernel-backend=auto|scalar|avx2|batched] "
                 "[--memory-budget=BYTES[k|m|g]] [--json] "
                 "<instance.hg>\n");
    return 2;
  }
  std::string kernel_backend = flags.GetString("kernel-backend");
  if (!kernel_backend.empty()) {
    kernels::Backend kb;
    if (!kernels::ParseBackend(kernel_backend, &kb)) {
      std::fprintf(stderr,
                   "error: unknown --kernel-backend \"%s\" (expected auto, "
                   "scalar, avx2 or batched)\n",
                   kernel_backend.c_str());
      return 2;
    }
    kernels::SetBackend(kb);
  }
  std::string budget_str = flags.GetString("memory-budget");
  if (!budget_str.empty()) {
    long long budget_bytes = 0;
    if (!ParseByteSize(budget_str, &budget_bytes)) {
      std::fprintf(stderr,
                   "error: bad --memory-budget \"%s\" (expected bytes with "
                   "an optional k/m/g suffix)\n",
                   budget_str.c_str());
      return 2;
    }
    SetMemoryBudget(budget_bytes);
  }
  std::string error;
  auto h = ReadHypergraphFile(flags.positional()[0], &error);
  if (!h.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  int domain = static_cast<int>(flags.GetInt("domain", 2));
  double tightness = flags.GetDouble("tightness", 0.3);
  bool plant = flags.GetBool("plant");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  bool count = flags.GetBool("count");
  int threads = static_cast<int>(
      flags.GetInt("threads", ThreadPool::HardwareThreads()));
  bool want_hw = flags.GetBool("hw");
  std::string route = flags.GetString("route", "all");
  bool json = flags.GetBool("json");

  Csp csp = RandomCspFromHypergraph(*h, domain, tightness, plant, seed);
  if (!json) {
    std::printf("instance : %s (%d vars, %d constraints, domain %d)\n",
                h->name().c_str(), csp.NumVariables(), csp.NumConstraints(),
                domain);
  }

  GhwEvaluator eval(*h);
  Rng rng(seed);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  TreeDecomposition td = TreeDecompositionFromOrdering(eval.primal(), sigma);
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(sigma, CoverMode::kExact);
  if (!json) {
    std::printf("widths   : td %d, ghd %d\n", td.Width(), ghd.Width());
  }
  if (want_hw) {
    SearchOptions sopts;
    sopts.time_limit_seconds = 10.0;
    sopts.seed = seed;
    sopts.threads = threads;
    WidthResult hw = HypertreeWidth(*h, sopts, nullptr);
    if (json) {
      PrintJsonRecord(h->name(), "det_k_hw", hw.upper_bound, hw.exact,
                      hw.lower_bound, hw.nodes, hw.seconds * 1000.0,
                      /*deterministic=*/hw.exact,
                      Json::Object()
                          .Set("cache_hits", hw.cache_stats.hits)
                          .Set("cache_misses", hw.cache_stats.misses)
                          .Set("cache_inserts", hw.cache_stats.inserts));
    } else {
      std::printf("hw       : %d%s (lb %d)\n", hw.upper_bound,
                  hw.exact ? "" : "*", hw.lower_bound);
      std::printf("hw cache : %ld hits, %ld misses, %ld inserts\n",
                  hw.cache_stats.hits, hw.cache_stats.misses,
                  hw.cache_stats.inserts);
    }
  }

  // The solve/count routes share one pool; --threads=1 keeps them
  // sequential (same results, same counters — see csp/yannakakis.h).
  ThreadPool solve_pool(threads);
  ThreadPool* pool = threads > 1 ? &solve_pool : nullptr;

  if (route == "td" || route == "all") {
    KernelCounters before = KernelCounters::Now();
    Timer t;
    DecompositionSolveStats stats;
    auto solution = SolveViaTreeDecomposition(csp, td, &stats, pool);
    double ms = t.ElapsedMillis();
    Json counters = Json::Object()
                        .Set("sat", solution.has_value())
                        .Set("bag_tuples", stats.bag_tuples);
    if (count) {
      counters.Set("solutions",
                   static_cast<long>(CountViaTreeDecomposition(csp, td, pool)));
    }
    KernelCounters::AddDelta(before, &counters);
    if (json) {
      PrintJsonRecord(h->name(), "csp_td", td.Width(), /*exact=*/true,
                      /*lower_bound=*/-1, /*nodes=*/0, ms,
                      /*deterministic=*/true, std::move(counters));
    } else {
      std::printf("td  route: %s (%.1f ms, %ld bag tuples)\n",
                  solution.has_value() ? "SAT" : "UNSAT", ms,
                  stats.bag_tuples);
      if (const Json* n = counters.Find("solutions")) {
        std::printf("td  count: %ld solutions\n", n->AsInt());
      }
    }
  }
  if (route == "ghd" || route == "all") {
    KernelCounters before = KernelCounters::Now();
    Timer t;
    auto solution = SolveViaGhd(csp, ghd, nullptr, pool);
    double ms = t.ElapsedMillis();
    Json counters = Json::Object().Set("sat", solution.has_value());
    if (count) {
      counters.Set("solutions",
                   static_cast<long>(CountViaGhd(csp, ghd, pool)));
    }
    KernelCounters::AddDelta(before, &counters);
    if (json) {
      PrintJsonRecord(h->name(), "csp_ghd", ghd.Width(), /*exact=*/true,
                      /*lower_bound=*/-1, /*nodes=*/0, ms,
                      /*deterministic=*/true, std::move(counters));
    } else {
      std::printf("ghd route: %s (%.1f ms)\n",
                  solution.has_value() ? "SAT" : "UNSAT", ms);
      if (const Json* n = counters.Find("solutions")) {
        std::printf("ghd count: %ld solutions\n", n->AsInt());
      }
    }
  }
  if (route == "bt" || route == "all") {
    Timer t;
    BacktrackStats stats;
    auto solution = BacktrackingSolve(csp, 50000000, &stats);
    double ms = t.ElapsedMillis();
    Json counters = Json::Object()
                        .Set("sat", solution.has_value())
                        .Set("aborted", stats.aborted);
    if (count && !stats.aborted) {
      counters.Set("solutions", BacktrackingCountSolutions(csp, 50000000));
    }
    if (json) {
      PrintJsonRecord(h->name(), "csp_bt", /*width=*/-1, /*exact=*/false,
                      /*lower_bound=*/-1, stats.nodes, ms,
                      /*deterministic=*/!stats.aborted, std::move(counters));
    } else {
      std::printf("bt  route: %s (%.1f ms, %ld nodes%s)\n",
                  solution.has_value() ? "SAT" : "UNSAT", ms, stats.nodes,
                  stats.aborted ? ", aborted" : "");
      if (const Json* n = counters.Find("solutions")) {
        std::printf("bt  count: %ld solutions\n", n->AsInt());
      }
    }
  }
  return 0;
}
