// hypertree_solve: solve (and count solutions of) a random CSP attached
// to a hypergraph instance, via decompositions and via backtracking.
//
//   hypertree_solve [flags] <instance.hg>
//
//   --domain=D        uniform domain size (default 2)
//   --tightness=T     fraction of allowed tuples (default 0.3)
//   --plant           plant a random solution (default off)
//   --seed=N          RNG seed (default 1)
//   --threads=N       worker threads for the hw search (default: hardware
//                     concurrency)
//   --hw              also compute hw via det-k-decomp (parallel) and
//                     report its decomposition cache statistics
//   --count           also count all solutions
//   --route=...       td | ghd | bt | all (default all)

#include <cstdio>
#include <string>

#include "csp/backtracking.h"
#include "csp/counting.h"
#include "csp/decomposition_solving.h"
#include "csp/generators.h"
#include "ghd/ghw_from_ordering.h"
#include "hd/det_k_decomp.h"
#include "hypergraph/parser.h"
#include "ordering/heuristics.h"
#include "td/tree_decomposition.h"
#include "util/flags.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace hypertree;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: hypertree_solve [--domain=D] [--tightness=T] "
                 "[--plant] [--seed=N] [--threads=N] [--hw] [--count] "
                 "[--route=td|ghd|bt|all] <instance.hg>\n");
    return 2;
  }
  std::string error;
  auto h = ReadHypergraphFile(flags.positional()[0], &error);
  if (!h.has_value()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  int domain = static_cast<int>(flags.GetInt("domain", 2));
  double tightness = flags.GetDouble("tightness", 0.3);
  bool plant = flags.GetBool("plant");
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  bool count = flags.GetBool("count");
  int threads = static_cast<int>(
      flags.GetInt("threads", ThreadPool::HardwareThreads()));
  bool want_hw = flags.GetBool("hw");
  std::string route = flags.GetString("route", "all");

  Csp csp = RandomCspFromHypergraph(*h, domain, tightness, plant, seed);
  std::printf("instance : %s (%d vars, %d constraints, domain %d)\n",
              h->name().c_str(), csp.NumVariables(), csp.NumConstraints(),
              domain);

  GhwEvaluator eval(*h);
  Rng rng(seed);
  EliminationOrdering sigma = MinFillOrdering(eval.primal(), &rng);
  TreeDecomposition td = TreeDecompositionFromOrdering(eval.primal(), sigma);
  GeneralizedHypertreeDecomposition ghd =
      eval.BuildGhd(sigma, CoverMode::kExact);
  std::printf("widths   : td %d, ghd %d\n", td.Width(), ghd.Width());
  if (want_hw) {
    SearchOptions sopts;
    sopts.time_limit_seconds = 10.0;
    sopts.seed = seed;
    sopts.threads = threads;
    WidthResult hw = HypertreeWidth(*h, sopts, nullptr);
    std::printf("hw       : %d%s (lb %d)\n", hw.upper_bound,
                hw.exact ? "" : "*", hw.lower_bound);
    std::printf("hw cache : %ld hits, %ld misses, %ld inserts\n",
                hw.cache_stats.hits, hw.cache_stats.misses,
                hw.cache_stats.inserts);
  }

  if (route == "td" || route == "all") {
    Timer t;
    DecompositionSolveStats stats;
    auto solution = SolveViaTreeDecomposition(csp, td, &stats);
    std::printf("td  route: %s (%.1f ms, %ld bag tuples)\n",
                solution.has_value() ? "SAT" : "UNSAT", t.ElapsedMillis(),
                stats.bag_tuples);
    if (count) {
      std::printf("td  count: %lld solutions\n",
                  CountViaTreeDecomposition(csp, td));
    }
  }
  if (route == "ghd" || route == "all") {
    Timer t;
    auto solution = SolveViaGhd(csp, ghd);
    std::printf("ghd route: %s (%.1f ms)\n",
                solution.has_value() ? "SAT" : "UNSAT", t.ElapsedMillis());
    if (count) {
      std::printf("ghd count: %lld solutions\n", CountViaGhd(csp, ghd));
    }
  }
  if (route == "bt" || route == "all") {
    Timer t;
    BacktrackStats stats;
    auto solution = BacktrackingSolve(csp, 50000000, &stats);
    std::printf("bt  route: %s (%.1f ms, %ld nodes%s)\n",
                solution.has_value() ? "SAT" : "UNSAT", t.ElapsedMillis(),
                stats.nodes, stats.aborted ? ", aborted" : "");
    if (count && !stats.aborted) {
      std::printf("bt  count: %ld solutions\n",
                  BacktrackingCountSolutions(csp, 50000000));
    }
  }
  return 0;
}
