// hypertree_serve: long-running decomposition-as-a-service daemon.
//
//   hypertree_serve [flags]
//
//   --port=N             loopback TCP port (default 7411; 0 = ephemeral,
//                        printed on startup)
//   --cache-dir=DIR      persistent content-addressed witness store
//                        (default: none — memory cache only)
//   --cache-max-bytes=B  disk-store size cap with LRU eviction; accepts
//                        k/m/g suffixes (default: 0 = uncapped)
//   --metrics=FILE       append one NDJSON access record per request
//   --budget-seconds=S   default per-request solve budget (default 10)
//   --threads=N          portfolio racing threads (default: hardware)
//   --mem-shards=N       in-memory cache lock shards (default 16)
//   --max-requests=N     exit after N requests (default: run until
//                        shutdown request or SIGTERM/SIGINT)
//
// Protocol: 4-byte big-endian length prefix + JSON body per frame; see
// docs/SERVING.md. Drive it with tools/hypertree_client.

#include <cstdio>

#include "csp/morsel.h"
#include "serve/server.h"
#include "util/flags.h"

using namespace hypertree;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: hypertree_serve [--port=N] [--cache-dir=DIR] "
        "[--cache-max-bytes=B]\n"
        "                       [--metrics=FILE] [--budget-seconds=S]\n"
        "                       [--threads=N] [--mem-shards=N] "
        "[--max-requests=N]\n");
    return 0;
  }
  serve::ServerOptions options;
  options.port = static_cast<int>(flags.GetInt("port", options.port));
  options.cache_dir = flags.GetString("cache-dir");
  const std::string cap = flags.GetString("cache-max-bytes");
  if (!cap.empty() && !ParseByteSize(cap, &options.cache_max_bytes)) {
    std::fprintf(stderr, "error: bad --cache-max-bytes value: %s\n",
                 cap.c_str());
    return 2;
  }
  options.metrics_path = flags.GetString("metrics");
  options.default_budget_seconds =
      flags.GetDouble("budget-seconds", options.default_budget_seconds);
  options.threads = static_cast<int>(flags.GetInt("threads", options.threads));
  options.mem_shards =
      static_cast<int>(flags.GetInt("mem-shards", options.mem_shards));
  options.max_requests = flags.GetInt("max-requests", options.max_requests);
  return serve::RunServer(options);
}
