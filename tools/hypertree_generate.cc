// hypertree_generate: emit benchmark instances.
//
//   hypertree_generate --family=NAME [params] [--format=hg|col|gr|dot]
//
//   Hypergraph families: adder, bridge, clique, grid2d, grid3d, cycle,
//                        random, acyclic, circuit   (--n, --m, --arity,
//                        --seed as applicable)
//   Graph families:      queens, myciel, grid, randomgraph, ktree
//
// Output goes to stdout (HyperBench format for hypergraphs, DIMACS .col /
// PACE .gr for graphs).

#include <cstdio>
#include <iostream>
#include <string>

#include "graph/dimacs.h"
#include "graph/generators.h"
#include "hypergraph/generators.h"
#include "hypergraph/parser.h"
#include "io/dot.h"
#include "td/pace.h"
#include "util/flags.h"

using namespace hypertree;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: hypertree_generate --family=F [--n=N] [--m=M] [--arity=A]\n"
      "       [--seed=S] [--format=hg|col|gr|dot]\n"
      "families: adder bridge clique grid2d grid3d cycle random acyclic\n"
      "          circuit queens myciel grid randomgraph ktree\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  std::string family = flags.GetString("family");
  int n = static_cast<int>(flags.GetInt("n", 5));
  int m = static_cast<int>(flags.GetInt("m", 2 * n));
  int arity = static_cast<int>(flags.GetInt("arity", 3));
  uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  std::string format = flags.GetString("format", "");

  std::optional<Hypergraph> h;
  std::optional<Graph> g;
  if (family == "adder") {
    h = AdderHypergraph(n);
  } else if (family == "bridge") {
    h = BridgeHypergraph(n);
  } else if (family == "clique") {
    h = CliqueHypergraph(n);
  } else if (family == "grid2d") {
    h = Grid2DHypergraph(n);
  } else if (family == "grid3d") {
    h = Grid3DHypergraph(n);
  } else if (family == "cycle") {
    h = CycleHypergraph(n, arity);
  } else if (family == "random") {
    h = RandomHypergraph(n, m, 2, arity, seed);
  } else if (family == "acyclic") {
    h = RandomAcyclicHypergraph(m, arity, seed);
  } else if (family == "circuit") {
    h = CircuitHypergraph(std::max(1, n / 5), n, seed);
  } else if (family == "queens") {
    g = QueensGraph(n);
  } else if (family == "myciel") {
    g = MycielskiGraph(n);
  } else if (family == "grid") {
    g = GridGraph(n, n);
  } else if (family == "randomgraph") {
    g = RandomGraph(n, m, seed);
  } else if (family == "ktree") {
    g = RandomKTree(n, arity, 1.0, seed);
  } else {
    return Usage();
  }

  if (h.has_value()) {
    if (format.empty() || format == "hg") {
      WriteHypergraph(*h, std::cout);
    } else if (format == "dot") {
      WriteDot(*h, std::cout);
    } else if (format == "col") {
      WriteDimacsGraph(h->PrimalGraph(), std::cout);
    } else if (format == "gr") {
      WritePaceGraph(h->PrimalGraph(), std::cout);
    } else {
      return Usage();
    }
  } else {
    if (format.empty() || format == "col") {
      WriteDimacsGraph(*g, std::cout);
    } else if (format == "gr") {
      WritePaceGraph(*g, std::cout);
    } else if (format == "dot") {
      WriteDot(*g, std::cout);
    } else if (format == "hg") {
      WriteHypergraph(HypergraphFromGraph(*g), std::cout);
    } else {
      return Usage();
    }
  }
  return 0;
}
