// Randomized cross-backend equivalence for the kernel layer: every
// kernels::Ops primitive must produce byte-identical outputs (including
// the zero padding of the padded-capacity contract) on scalar, AVX2 and
// batched backends, over ragged universe sizes that hit the word
// boundaries (0, 1, 63, 64, 65, 127 bits) and a multi-lane size (4096
// bits) large enough to cross the batched backend's sharding thresholds.

#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/rng.h"

namespace hypertree {
namespace {

using kernels::Backend;
using kernels::GetOps;
using kernels::Ops;
using kernels::PaddedWords;

int WordsFor(int bits) { return (bits + 63) / 64; }

uint64_t TailMask(int bits) {
  const int rem = bits % 64;
  return rem == 0 ? ~uint64_t{0} : (uint64_t{1} << rem) - 1;
}

// A padded, zero-initialized buffer of `nwords` logical words.
std::vector<uint64_t> PaddedBuffer(int nwords) {
  return std::vector<uint64_t>(
      static_cast<size_t>(PaddedWords(nwords)) + 1, 0);
}

// Random set over `bits` bits, bitset-style (tail bits of the last
// logical word zero, padding zero).
std::vector<uint64_t> RandomSet(int bits, Rng* rng) {
  const int nwords = WordsFor(bits);
  std::vector<uint64_t> out = PaddedBuffer(nwords);
  for (int i = 0; i < nwords; ++i) out[i] = rng->Next();
  if (nwords > 0) out[nwords - 1] &= TailMask(bits);
  return out;
}

// Row-major arena of `nrows` random rows over `bits` bits, packed with
// the same stride rule the incidence index uses (single-word rows pack
// contiguously, larger rows start on a fresh lane).
struct RowArena {
  std::vector<uint64_t> words;
  size_t stride = 1;
  int nrows = 0;
  int nwords = 0;
};

RowArena RandomRows(int bits, int nrows, Rng* rng) {
  RowArena a;
  a.nrows = nrows;
  a.nwords = WordsFor(bits);
  a.stride = a.nwords <= 1 ? 1 : static_cast<size_t>(PaddedWords(a.nwords));
  a.words.assign(std::max<size_t>(1, a.stride * nrows), 0);
  for (int r = 0; r < nrows; ++r) {
    uint64_t* row = a.words.data() + r * a.stride;
    for (int i = 0; i < a.nwords; ++i) row[i] = rng->Next();
    if (a.nwords > 0) row[a.nwords - 1] &= TailMask(bits);
  }
  return a;
}

const Backend kBackends[] = {Backend::kScalar, Backend::kAvx2,
                             Backend::kBatched};

struct Shape {
  int bits;
  int nrows;
};

// The word-boundary shapes plus one multi-lane shape that crosses the
// batched backend's row and word sharding thresholds (1200 rows x 64
// words > kMinRowsToShard / kMinWordsToShard).
const Shape kShapes[] = {{0, 0},  {1, 1},    {63, 7},    {64, 64},
                         {65, 9}, {127, 33}, {4096, 12}, {4096, 1200}};

std::string Label(const Shape& s, Backend b) {
  return std::string(kernels::BackendName(b)) + " bits=" +
         std::to_string(s.bits) + " rows=" + std::to_string(s.nrows);
}

TEST(KernelsEquivalence, AllOpsMatchScalarOnRaggedShapes) {
  Rng rng(20240807);
  for (const Shape& shape : kShapes) {
    const int nwords = WordsFor(shape.bits);
    const int mask_words = WordsFor(shape.nrows);
    for (int trial = 0; trial < 4; ++trial) {
      RowArena rows = RandomRows(shape.bits, shape.nrows, &rng);
      std::vector<uint64_t> mask = RandomSet(shape.nrows, &rng);
      std::vector<uint64_t> conn = RandomSet(shape.bits, &rng);
      std::vector<uint64_t> filt = RandomSet(shape.bits, &rng);
      std::vector<uint64_t> sep = RandomSet(shape.bits, &rng);
      std::vector<int> idx;
      for (int r = 0; r < shape.nrows; ++r) {
        if (rng.UniformInt(2) == 0) idx.push_back(r);
      }

      // Scalar reference results.
      const Ops& ref = GetOps(Backend::kScalar);
      std::vector<uint64_t> ref_or = PaddedBuffer(nwords);
      int ref_or_n = ref.OrReduceRows(ref_or.data(), nwords,
                                      rows.words.data(), rows.stride,
                                      mask.data(), mask_words);
      std::vector<uint64_t> ref_orf = PaddedBuffer(nwords);
      bool ref_any = false;
      int ref_orf_n = ref.OrReduceRowsFiltered(
          ref_orf.data(), nwords, rows.words.data(), rows.stride, mask.data(),
          mask_words, filt.data(), &ref_any);
      std::vector<uint64_t> ref_acc = RandomSet(shape.bits, &rng);
      std::vector<uint64_t> ref_pending = RandomSet(shape.bits, &rng);
      std::vector<uint64_t> acc_seed = ref_acc, pending_seed = ref_pending;
      ref.FrontierCommit(ref_acc.data(), ref_pending.data(), conn.data(),
                         nwords);
      std::vector<uint64_t> ref_notsub = PaddedBuffer(mask_words);
      ref.FilterRowsNotSubset(ref_notsub.data(), rows.words.data(),
                              rows.stride, mask.data(), mask_words, sep.data(),
                              nwords);
      std::vector<int> ref_counts(std::max<size_t>(1, idx.size()), -1);
      ref.ScoreRows(ref_counts.data(), rows.words.data(), rows.stride,
                    idx.data(), static_cast<int>(idx.size()), conn.data(),
                    nwords);
      std::vector<int> ref_counts_dense(std::max(1, shape.nrows), -1);
      ref.ScoreRows(ref_counts_dense.data(), rows.words.data(), rows.stride,
                    nullptr, shape.nrows, conn.data(), nwords);
      int ref_max = ref.MaxIntersect(rows.words.data(), rows.stride,
                                     shape.nrows, conn.data(), nwords);
      std::vector<uint64_t> ref_and = PaddedBuffer(nwords);
      int ref_and_n = ref.AndCount(ref_and.data(), conn.data(), filt.data(),
                                   nwords);
      std::vector<uint64_t> ref_andnot = PaddedBuffer(nwords);
      int ref_andnot_n = ref.AndNotCount(ref_andnot.data(), conn.data(),
                                         filt.data(), nwords);
      int ref_ic = ref.IntersectCount(conn.data(), filt.data(), nwords);
      bool ref_empty = ref.AndNotIsEmpty(conn.data(), filt.data(), nwords);

      for (Backend b : kBackends) {
        const Ops& ops = GetOps(b);
        SCOPED_TRACE(Label(shape, b) + " trial=" + std::to_string(trial));

        std::vector<uint64_t> out = PaddedBuffer(nwords);
        EXPECT_EQ(ref_or_n,
                  ops.OrReduceRows(out.data(), nwords, rows.words.data(),
                                   rows.stride, mask.data(), mask_words));
        EXPECT_EQ(ref_or, out);  // byte-identical, padding included

        out = PaddedBuffer(nwords);
        bool any = !ref_any;
        EXPECT_EQ(ref_orf_n, ops.OrReduceRowsFiltered(
                                 out.data(), nwords, rows.words.data(),
                                 rows.stride, mask.data(), mask_words,
                                 filt.data(), &any));
        EXPECT_EQ(ref_orf, out);
        EXPECT_EQ(ref_any, any);

        std::vector<uint64_t> acc = acc_seed, pending = pending_seed;
        ops.FrontierCommit(acc.data(), pending.data(), conn.data(), nwords);
        EXPECT_EQ(ref_acc, acc);
        EXPECT_EQ(ref_pending, pending);

        out = PaddedBuffer(mask_words);
        ops.FilterRowsNotSubset(out.data(), rows.words.data(), rows.stride,
                                mask.data(), mask_words, sep.data(), nwords);
        EXPECT_EQ(ref_notsub, out);

        std::vector<int> counts(std::max<size_t>(1, idx.size()), -1);
        ops.ScoreRows(counts.data(), rows.words.data(), rows.stride,
                      idx.data(), static_cast<int>(idx.size()), conn.data(),
                      nwords);
        EXPECT_EQ(ref_counts, counts);

        counts.assign(std::max(1, shape.nrows), -1);
        ops.ScoreRows(counts.data(), rows.words.data(), rows.stride, nullptr,
                      shape.nrows, conn.data(), nwords);
        EXPECT_EQ(ref_counts_dense, counts);

        EXPECT_EQ(ref_max, ops.MaxIntersect(rows.words.data(), rows.stride,
                                            shape.nrows, conn.data(), nwords));

        out = PaddedBuffer(nwords);
        EXPECT_EQ(ref_and_n,
                  ops.AndCount(out.data(), conn.data(), filt.data(), nwords));
        EXPECT_EQ(ref_and, out);

        out = PaddedBuffer(nwords);
        EXPECT_EQ(ref_andnot_n, ops.AndNotCount(out.data(), conn.data(),
                                                filt.data(), nwords));
        EXPECT_EQ(ref_andnot, out);

        EXPECT_EQ(ref_ic,
                  ops.IntersectCount(conn.data(), filt.data(), nwords));
        EXPECT_EQ(ref_empty,
                  ops.AndNotIsEmpty(conn.data(), filt.data(), nwords));
      }
    }
  }
}

TEST(KernelsEquivalence, PackAndProbeKeysMatchScalar) {
  // Join-engine key primitives: packed keys, their min/max, the probe
  // ordinals AND the collision count must be backend-identical (the
  // engine's relation.probe_collisions totals are part of the
  // determinism contract, see tests/parallel_yannakakis_test.cc).
  Rng rng(20250808);
  // (arity, k, bits, nrows): nrows > kMinKeysToShard in the last shape
  // exercises the batched backend's wave path; bits=16 with k=4 fills
  // all 64 key bits.
  const int configs[][4] = {
      {1, 1, 1, 0},  {3, 2, 5, 1},    {4, 3, 7, 63},     {5, 4, 16, 1000},
      {2, 1, 20, 64}, {6, 5, 12, 257}, {3, 3, 10, 40000},
  };
  for (const auto& cfg : configs) {
    const int arity = cfg[0], k = cfg[1], bits = cfg[2], nrows = cfg[3];
    std::vector<int> pos;
    for (int i = 0; i < k; ++i) pos.push_back((i * 2) % arity);
    std::vector<int> rows(static_cast<size_t>(nrows) * arity);
    const uint64_t vmax = (uint64_t{1} << bits) - 1;
    for (int& v : rows) {
      v = static_cast<int>(rng.Next() & vmax & 0x7fffffffULL);
    }

    const Ops& ref = GetOps(Backend::kScalar);
    std::vector<uint64_t> ref_keys(std::max(1, nrows), ~uint64_t{0});
    uint64_t ref_mn = 0, ref_mx = 0;
    ref.PackKeys(ref_keys.data(), rows.data(), static_cast<size_t>(arity),
                 pos.data(), k, bits, nrows, &ref_mn, &ref_mx);

    // A hash table over a subset of the keys (every third row), built
    // once: probes hit and miss both.
    size_t cap = 16;
    while (cap < static_cast<size_t>(nrows) * 2) cap <<= 1;
    const uint64_t mask = cap - 1;
    std::vector<uint64_t> slot_keys(cap, 0);
    std::vector<int32_t> slot_vals(cap, -1);
    int32_t next_ord = 0;
    for (int r = 0; r < nrows; r += 3) {
      const uint64_t key = ref_keys[r];
      size_t slot = kernels::SplitMix64(key) & mask;
      while (slot_vals[slot] != -1 && slot_keys[slot] != key) {
        slot = (slot + 1) & mask;
      }
      if (slot_vals[slot] == -1) {
        slot_vals[slot] = next_ord++;
        slot_keys[slot] = key;
      }
    }
    std::vector<int32_t> ref_vals(std::max(1, nrows), -2);
    const long ref_coll =
        ref.ProbeKeys(ref_vals.data(), ref_keys.data(), nrows,
                      slot_keys.data(), slot_vals.data(), mask);

    for (Backend b : kBackends) {
      const Ops& ops = GetOps(b);
      SCOPED_TRACE(std::string(kernels::BackendName(b)) +
                   " arity=" + std::to_string(arity) + " k=" +
                   std::to_string(k) + " bits=" + std::to_string(bits) +
                   " nrows=" + std::to_string(nrows));
      std::vector<uint64_t> keys(std::max(1, nrows), ~uint64_t{0});
      uint64_t mn = 123, mx = 456;
      ops.PackKeys(keys.data(), rows.data(), static_cast<size_t>(arity),
                   pos.data(), k, bits, nrows, &mn, &mx);
      EXPECT_EQ(ref_keys, keys);
      EXPECT_EQ(ref_mn, mn);
      EXPECT_EQ(ref_mx, mx);

      std::vector<int32_t> vals(std::max(1, nrows), -2);
      EXPECT_EQ(ref_coll,
                ops.ProbeKeys(vals.data(), keys.data(), nrows,
                              slot_keys.data(), slot_vals.data(), mask));
      EXPECT_EQ(ref_vals, vals);
    }
  }
}

TEST(KernelsEquivalence, AliasedFusedOpsMatch) {
  // AndCount / AndNotCount allow dst to alias either input.
  Rng rng(7);
  for (int bits : {64, 127, 4096}) {
    const int nwords = WordsFor(bits);
    std::vector<uint64_t> a = RandomSet(bits, &rng);
    std::vector<uint64_t> b = RandomSet(bits, &rng);
    for (Backend back : kBackends) {
      const Ops& ops = GetOps(back);
      std::vector<uint64_t> expect = PaddedBuffer(nwords);
      int n = GetOps(Backend::kScalar)
                  .AndCount(expect.data(), a.data(), b.data(), nwords);
      std::vector<uint64_t> dst = a;
      EXPECT_EQ(n, ops.AndCount(dst.data(), dst.data(), b.data(), nwords));
      EXPECT_EQ(expect, dst) << kernels::BackendName(back);
    }
  }
}

TEST(KernelsDispatch, ParseAndNames) {
  Backend b = Backend::kScalar;
  EXPECT_TRUE(kernels::ParseBackend("auto", &b));
  EXPECT_EQ(Backend::kAuto, b);
  EXPECT_TRUE(kernels::ParseBackend("scalar", &b));
  EXPECT_EQ(Backend::kScalar, b);
  EXPECT_TRUE(kernels::ParseBackend("avx2", &b));
  EXPECT_EQ(Backend::kAvx2, b);
  EXPECT_TRUE(kernels::ParseBackend("batched", &b));
  EXPECT_EQ(Backend::kBatched, b);
  EXPECT_FALSE(kernels::ParseBackend("gpu", &b));
  EXPECT_FALSE(kernels::ParseBackend("", &b));
  for (Backend x : kBackends) {
    Backend parsed = Backend::kAuto;
    EXPECT_TRUE(kernels::ParseBackend(kernels::BackendName(x), &parsed));
    EXPECT_EQ(x, parsed);
  }
}

TEST(KernelsDispatch, SetBackendControlsActive) {
  kernels::SetBackend(Backend::kScalar);
  EXPECT_EQ(Backend::kScalar, kernels::ActiveBackend());
  EXPECT_STREQ("scalar", kernels::Active().name);
  kernels::SetBackend(Backend::kAuto);
  EXPECT_EQ(kernels::ResolveAuto(), kernels::ActiveBackend());
  // AVX2 requests fall back to scalar when the CPU lacks the feature.
  kernels::SetBackend(Backend::kAvx2);
  if (kernels::Avx2Available()) {
    EXPECT_STREQ("avx2", kernels::Active().name);
  } else {
    EXPECT_STREQ("scalar", kernels::Active().name);
  }
  kernels::SetBackend(Backend::kAuto);
}

}  // namespace
}  // namespace hypertree
