#include "ordering/heuristics.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ordering/evaluator.h"

namespace hypertree {
namespace {

class HeuristicSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicSweepTest, AllHeuristicsReturnValidOrderings) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  Graph g = RandomGraph(25, 60, seed * 7 + 1);
  int n = g.NumVertices();
  EXPECT_TRUE(IsValidOrdering(MinFillOrdering(g, &rng), n));
  EXPECT_TRUE(IsValidOrdering(MinDegreeOrdering(g, &rng), n));
  EXPECT_TRUE(IsValidOrdering(MinWidthOrdering(g, &rng), n));
  EXPECT_TRUE(IsValidOrdering(McsOrdering(g, &rng), n));
  EXPECT_TRUE(IsValidOrdering(RandomOrdering(n, &rng), n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicSweepTest, ::testing::Range(0, 8));

TEST(HeuristicsTest, MinFillOptimalOnPath) {
  Rng rng(1);
  Graph g = PathGraph(10);
  EXPECT_EQ(EvaluateOrderingWidth(g, MinFillOrdering(g, &rng)), 1);
}

TEST(HeuristicsTest, MinFillOptimalOnChordal) {
  // Full k-trees are chordal: min-fill finds a perfect elimination
  // ordering with width exactly k.
  Rng rng(2);
  Graph g = RandomKTree(40, 3, 1.0, 9);
  EXPECT_EQ(EvaluateOrderingWidth(g, MinFillOrdering(g, &rng)), 3);
}

TEST(HeuristicsTest, McsOptimalOnChordal) {
  // MCS yields a perfect elimination ordering on chordal graphs.
  Rng rng(3);
  Graph g = RandomKTree(40, 4, 1.0, 10);
  EXPECT_EQ(EvaluateOrderingWidth(g, McsOrdering(g, &rng)), 4);
}

TEST(HeuristicsTest, MinFillBeatsRandomOnGrids) {
  Rng rng(4);
  Graph g = GridGraph(8, 8);
  int fill = EvaluateOrderingWidth(g, MinFillOrdering(g, &rng));
  int worst_random = 0;
  for (int i = 0; i < 5; ++i) {
    worst_random = std::max(
        worst_random, EvaluateOrderingWidth(g, RandomOrdering(64, &rng)));
  }
  EXPECT_LE(fill, worst_random);
  EXPECT_LE(fill, 12);  // min-fill is near-optimal on grids (tw = 8)
  EXPECT_GE(fill, 8);
}

TEST(HeuristicsTest, DeterministicWithoutRng) {
  Graph g = GridGraph(5, 5);
  EXPECT_EQ(MinFillOrdering(g, nullptr), MinFillOrdering(g, nullptr));
  EXPECT_EQ(MinDegreeOrdering(g, nullptr), MinDegreeOrdering(g, nullptr));
}

TEST(HeuristicsTest, CompleteGraphAnyOrderingSameWidth) {
  Rng rng(5);
  Graph g = CompleteGraph(8);
  EXPECT_EQ(EvaluateOrderingWidth(g, MinFillOrdering(g, &rng)), 7);
  EXPECT_EQ(EvaluateOrderingWidth(g, RandomOrdering(8, &rng)), 7);
}

}  // namespace
}  // namespace hypertree
