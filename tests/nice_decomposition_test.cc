#include "td/nice_decomposition.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "ordering/heuristics.h"
#include "util/rng.h"

namespace hypertree {
namespace {

// Brute-force maximum independent set for cross-checking (n <= ~20).
int BruteForceMis(const Graph& g) {
  int n = g.NumVertices();
  int best = 0;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool independent = true;
    for (int u = 0; u < n && independent; ++u) {
      if (!((mask >> u) & 1)) continue;
      for (int v = u + 1; v < n && independent; ++v) {
        if (((mask >> v) & 1) && g.HasEdge(u, v)) independent = false;
      }
    }
    if (independent) best = std::max(best, __builtin_popcount(mask));
  }
  return best;
}

TreeDecomposition Decompose(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  return TreeDecompositionFromOrdering(g, MinFillOrdering(g, &rng));
}

TEST(NiceDecompositionTest, MakeNicePreservesWidthAndValidity) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Graph g = RandomGraph(15, 35, seed);
    TreeDecomposition td = Decompose(g, seed);
    NiceTreeDecomposition nice = MakeNice(td);
    std::string why;
    EXPECT_TRUE(nice.IsValidFor(g, &why)) << "seed " << seed << ": " << why;
    EXPECT_EQ(nice.Width(), td.Width()) << "seed " << seed;
  }
}

TEST(NiceDecompositionTest, RootBagIsEmpty) {
  Graph g = GridGraph(3, 3);
  NiceTreeDecomposition nice = MakeNice(Decompose(g, 3));
  EXPECT_TRUE(nice.GetNode(nice.root()).bag.None());
}

TEST(NiceDecompositionTest, SingleVertexGraph) {
  Graph g(1);
  NiceTreeDecomposition nice = MakeNice(Decompose(g, 1));
  EXPECT_TRUE(nice.IsValidFor(g, nullptr));
  EXPECT_EQ(MaxIndependentSet(g, nice), 1);
}

TEST(NiceDecompositionTest, MisOnKnownGraphs) {
  struct Case {
    Graph g;
    int mis;
  };
  std::vector<Case> cases;
  cases.push_back({PathGraph(7), 4});
  cases.push_back({CycleGraph(7), 3});
  cases.push_back({CompleteGraph(6), 1});
  cases.push_back({GridGraph(3, 3), 5});
  for (auto& c : cases) {
    NiceTreeDecomposition nice = MakeNice(Decompose(c.g, 5));
    std::vector<int> witness;
    EXPECT_EQ(MaxIndependentSet(c.g, nice, &witness), c.mis) << c.g.name();
    // Witness really is independent and of the right size.
    EXPECT_EQ(static_cast<int>(witness.size()), c.mis);
    for (size_t i = 0; i < witness.size(); ++i) {
      for (size_t j = i + 1; j < witness.size(); ++j) {
        EXPECT_FALSE(c.g.HasEdge(witness[i], witness[j]));
      }
    }
  }
}

class MisAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(MisAgreementTest, DpMatchesBruteForce) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  int n = 8 + rng.UniformInt(8);
  int m = rng.UniformInt(n * (n - 1) / 2 + 1);
  Graph g = RandomGraph(n, m, seed * 3 + 1);
  NiceTreeDecomposition nice = MakeNice(Decompose(g, seed));
  ASSERT_TRUE(nice.IsValidFor(g, nullptr));
  std::vector<int> witness;
  int dp = MaxIndependentSet(g, nice, &witness);
  EXPECT_EQ(dp, BruteForceMis(g)) << "seed " << seed;
  for (size_t i = 0; i < witness.size(); ++i) {
    for (size_t j = i + 1; j < witness.size(); ++j) {
      EXPECT_FALSE(g.HasEdge(witness[i], witness[j]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisAgreementTest, ::testing::Range(0, 15));

TEST(NiceDecompositionTest, DisconnectedGraph) {
  Graph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  NiceTreeDecomposition nice = MakeNice(Decompose(g, 7));
  EXPECT_TRUE(nice.IsValidFor(g, nullptr));
  EXPECT_EQ(MaxIndependentSet(g, nice), 4);  // one of each pair + 2 isolated
}

}  // namespace
}  // namespace hypertree
