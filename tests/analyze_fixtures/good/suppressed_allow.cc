// Fixture: one justified suppression per rule. Every construct below
// violates a rule, and every one carries the matching
// `// ht-analyze: allow(<rule>)` escape hatch, so the analyzer must
// report nothing for this file.

#include <atomic>
#include <ostream>
#include <unordered_map>
#include <vector>

struct ThreadPool {
  template <typename F>
  void Submit(F f);
};

std::atomic<int> stop_flag{0};
std::atomic<int> best_width{0};

void Suppressed(ThreadPool& pool, int n) {
  // ht-analyze: allow(pool-capture)
  pool.Submit([&] { (void)n; });
  int i = 0;
  // ht-analyze: allow(dcheck-purity)
  HT_DCHECK_LT(++i, n);
  // ht-analyze: allow(atomic-order)
  stop_flag.store(1);
  // ht-analyze: allow(relaxed-publish)
  best_width.store(n, std::memory_order_relaxed);
  // ht-analyze: allow(no-exceptions)
  throw n;
}

namespace scalar {
inline void Justified(std::vector<int>* out) {
  // ht-analyze: allow(kernel-purity)
  out->push_back(1);
}
}  // namespace scalar

void DumpAnyway(
    const std::unordered_map<int, int>& table,
    std::ostream& os) {
  // ht-analyze: allow(unordered-output)
  for (const auto& kv : table) os << kv.first;
}
