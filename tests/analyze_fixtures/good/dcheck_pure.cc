// Fixture: HT_DCHECK operands that are side-effect free. The
// dcheck-purity rule must stay silent.

struct Stats {
  bool empty() const;
  int size() const;
};

void PureOperands(const Stats& s, int n) {
  int i = 0;
  HT_DCHECK_LT(i, n);
  HT_DCHECK_LE(i + 1, n);
  HT_DCHECK(s.empty() || s.size() > 0);
  HT_DCHECK_EQ(s.size(), n) << "size mismatch";
}
