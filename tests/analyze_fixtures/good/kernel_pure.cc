// Fixture: a pure compute backend. Inside `namespace scalar` the
// kernel-purity rule enforces no allocation/locks/I/O/global state, and
// everything here conforms; outside the backend namespace, coordinator
// code may allocate freely.

#include <vector>

namespace scalar {

// Init-once immutable tables are fine (the dispatch-table idiom).
static const int kShifts[4] = {1, 2, 4, 8};

inline long DotCount(const int* a, const int* b, int n) {
  long acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += static_cast<long>(a[i]) * b[i] + kShifts[i & 3];
  }
  return acc;
}

}  // namespace scalar

// Coordinator-side code outside the backend namespace: allocation is
// allowed here.
inline void Coordinator(std::vector<int>* out) { out->push_back(1); }
