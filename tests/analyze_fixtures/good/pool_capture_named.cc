// Fixture: lambdas handed to the thread pool with every capture named.
// The pool-capture rule must stay silent on all of these.

#include <functional>

struct ThreadPool {
  template <typename F>
  void Submit(F f);
};

template <typename F>
void RunForAll(int count, ThreadPool* pool, F f);

void NamedCaptures(ThreadPool& pool, int n) {
  int total = 0;
  pool.Submit([&total, n] { total += n; });
  pool.Submit([n] { (void)n; });
  RunForAll(n, &pool, [&total](int i) { total += i; });
}

struct Holder {
  ThreadPool* pool_;
  int member_ = 0;
  void Kick() {
    // Init-capture of the needed pointer is explicit, unlike `[this]`.
    pool_->Submit([self = this] { ++self->member_; });
  }
};

// A declaration of a pool entry point is not a call site.
void Submit(std::function<void()> task);
