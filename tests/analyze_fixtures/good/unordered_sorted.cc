// Fixture: unordered-container iteration that only feeds output after
// sorting. The unordered-output rule must stay silent.

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <vector>

void DumpSorted(
    const std::unordered_map<int, int>& table,
    std::ostream& os) {
  // Collecting keys from the unordered map is fine: nothing is emitted
  // inside the unordered loop.
  std::vector<int> keys;
  for (const auto& kv : table) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  // Emitting from the sorted vector is deterministic.
  for (int k : keys) os << k << "\n";
}
