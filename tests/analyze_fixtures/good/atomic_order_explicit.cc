// Fixture: atomic accesses that name their memory order, plus the
// shadowed-name case (a name declared atomic in one scope and plain in
// another must not trip the operator-form heuristics).

#include <atomic>

std::atomic<int> counter{0};
std::atomic<bool> done{false};

void ExplicitOrders() {
  counter.fetch_add(1, std::memory_order_relaxed);
  done.store(true, std::memory_order_release);
  int v = counter.load(std::memory_order_acquire);
  (void)v;
}

// `total` is atomic at file scope elsewhere in some TUs but a plain local
// here; the declaration scan marks the name shadowed and stays silent.
std::atomic<long> total{0};

int ShadowedLocal(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) ++total;
  return total;
}
