// Fixture: range-for over an unordered container whose body emits.
// Iteration order is unspecified, so the output is nondeterministic.
//
// expect-analyze: unordered-output

#include <ostream>
#include <unordered_map>

void Dump(
    const std::unordered_map<int, int>& table,
    std::ostream& os) {
  for (const auto& kv : table) {
    os << kv.first << "=" << kv.second << "\n";
  }
}
