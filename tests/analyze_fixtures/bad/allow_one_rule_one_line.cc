// Fixture: the escape hatch is surgical — one allow names exactly one
// rule and reaches exactly one line (its own or the one directly
// below).
//
// expect-analyze: atomic-order
// expect-analyze: atomic-order
// expect-analyze: atomic-order

#include <atomic>

std::atomic<int> flag{0};

void TwoRulesOneLine(int n) {
  int i = 0;
  // The next line violates both dcheck-purity (++i) and atomic-order
  // (load without an order). Only dcheck-purity is suppressed, so
  // atomic-order must still fire.
  // ht-analyze: allow(dcheck-purity)
  HT_DCHECK_LT(++i, flag.load());
  (void)n;
}

void OneLineOnly() {
  // The allow reaches the line below it, not the one after that: `a`
  // is suppressed, `b` is reported.
  // ht-analyze: allow(atomic-order)
  int a = flag.load();
  int b = flag.load();
  (void)a;
  (void)b;
}

void WrongToolPrefix() {
  // A `lint:` suppression belongs to the determinism lint, not to
  // ht-analyze; it must not silence this rule.
  // lint: allow(atomic-order)
  int c = flag.load();
  (void)c;
}
