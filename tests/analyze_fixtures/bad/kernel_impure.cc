// Fixture: impure constructs inside a compute-backend namespace.
//
// expect-analyze: kernel-purity
// expect-analyze: kernel-purity
// expect-analyze: kernel-purity
// expect-analyze: kernel-purity

#include <cstdio>
#include <mutex>
#include <vector>

namespace scalar {

inline void Impure(std::vector<int>* out, int n) {
  out->push_back(n);
  std::mutex mu;
  static int calls = 0;
  printf("%d %d\n", n, calls);
  (void)mu;
}

}  // namespace scalar

// Outside the backend namespace the same constructs are legal:
inline void HostSide(std::vector<int>* out) { out->push_back(1); }
