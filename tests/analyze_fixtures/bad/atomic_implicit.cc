// Fixture: atomic accesses that hide their memory order (implicit
// seq_cst), including the operator forms, and an atomic-only member
// call (fetch_add) on a receiver whose declaration is out of scan
// reach.
//
// expect-analyze: atomic-order
// expect-analyze: atomic-order
// expect-analyze: atomic-order
// expect-analyze: atomic-order
// expect-analyze: atomic-order
// expect-analyze: atomic-order

#include <atomic>

std::atomic<int> counter{0};
std::atomic<bool> done{false};

void Implicit() {
  int v = counter.load();
  (void)v;
  done.store(true);
  counter++;
  ++counter;
  done = true;
}

void ImplicitViaPointer(std::atomic<int>* x) {
  x->fetch_add(1);
}
