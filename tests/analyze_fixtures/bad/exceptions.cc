// Fixture: exception constructs — the library is contract-checked
// (HT_CHECK aborts), not exception-safe.
//
// expect-analyze: no-exceptions
// expect-analyze: no-exceptions
// expect-analyze: no-exceptions

int Catches(int n) {
  try {
    if (n < 0) throw n;
  } catch (int e) {
    return e;
  }
  return 0;
}
