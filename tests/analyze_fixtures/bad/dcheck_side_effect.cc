// Fixture: HT_DCHECK operands with side effects — they compile to
// nothing under NDEBUG, so the mutation silently vanishes in Release.
//
// expect-analyze: dcheck-purity
// expect-analyze: dcheck-purity
// expect-analyze: dcheck-purity

struct Buffer {
  void clear();
  bool empty() const;
};

void SideEffects(Buffer& buf, int n) {
  int i = 0;
  HT_DCHECK_LE(++i, n);
  HT_DCHECK(i = n);
  HT_DCHECK((buf.clear(), buf.empty()));
}
